/**
 * @file
 * Engine tests for the static concurrency gate (tools/conclint):
 * lock-order inversion cycles with both acquisition paths,
 * blocking-under-lock (direct, interprocedural, and the runtime/
 * reporting exemption), annotation coverage, and the false-positive
 * guards the gate promises — try_to_lock/defer_lock scopes,
 * scoped_lock multi-acquire, lambda bodies attributed to the
 * enclosing function, and ERC_CONCLINT_ALLOW waivers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/conclint/concl_core.h"

namespace cl = erec::conclint;

namespace {

bool
hasKind(const cl::Analysis &a, const std::string &kind)
{
    return std::any_of(a.violations.begin(), a.violations.end(),
                       [&kind](const cl::Violation &v) {
                           return v.kind == kind;
                       });
}

std::vector<cl::Violation>
ofKind(const cl::Analysis &a, const std::string &kind)
{
    std::vector<cl::Violation> out;
    for (const auto &v : a.violations)
        if (v.kind == kind)
            out.push_back(v);
    return out;
}

cl::Analysis
analyzeOne(const std::string &source,
           const std::string &path = "src/demo.cc")
{
    cl::FileSet files;
    files[path] = source;
    return cl::analyze(files);
}

TEST(ConclintTool, CleanSingleLockPasses)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex mu_;
int value_;
void set(int v)
{
    std::lock_guard<std::mutex> lock(mu_);
    value_ = v;
}
)");
    EXPECT_TRUE(a.pass()) << cl::renderText(a);
    EXPECT_EQ(a.mutexCount, 1u);
    EXPECT_EQ(a.lockSiteCount, 1u);
    EXPECT_TRUE(a.edges.empty());
}

TEST(ConclintTool, InversionReportsBothAcquisitionPaths)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex a_;
std::mutex b_;
void lockAB()
{
    std::lock_guard<std::mutex> ga(a_);
    std::lock_guard<std::mutex> gb(b_);
}
void helper()
{
    std::lock_guard<std::mutex> ga(a_);
}
void lockBA()
{
    std::lock_guard<std::mutex> gb(b_);
    helper();
}
)");
    const auto inv = ofKind(a, "lock-order-inversion");
    ASSERT_EQ(inv.size(), 2u) << cl::renderText(a);
    // One violation per direction, each with its own concrete path —
    // the direct a_->b_ order in lockAB, the interprocedural b_->a_
    // order through lockBA -> helper.
    const std::string text = cl::renderText(a);
    EXPECT_NE(text.find("lockAB"), std::string::npos);
    EXPECT_NE(text.find("lockBA"), std::string::npos);
    EXPECT_NE(text.find("helper"), std::string::npos);
    for (const auto &v : inv)
        EXPECT_FALSE(v.path.empty());
    EXPECT_EQ(a.edges.size(), 2u);
}

TEST(ConclintTool, ConsistentNestingIsNotACycle)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex a_;
std::mutex b_;
void first()
{
    std::lock_guard<std::mutex> ga(a_);
    std::lock_guard<std::mutex> gb(b_);
}
void second()
{
    std::lock_guard<std::mutex> ga(a_);
    std::lock_guard<std::mutex> gb(b_);
}
)");
    EXPECT_EQ(a.edges.size(), 1u); // a_ -> b_ only, deduplicated.
    EXPECT_FALSE(hasKind(a, "lock-order-inversion"))
        << cl::renderText(a);
}

TEST(ConclintTool, TryLockAndDeferLockAreNotAcquisitions)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex a_;
std::mutex b_;
void forward()
{
    std::lock_guard<std::mutex> ga(a_);
    std::lock_guard<std::mutex> gb(b_);
}
void probe()
{
    std::lock_guard<std::mutex> gb(b_);
    std::unique_lock<std::mutex> ua(a_, std::try_to_lock);
}
void deferred()
{
    std::lock_guard<std::mutex> gb(b_);
    std::unique_lock<std::mutex> ua(a_, std::defer_lock);
}
)");
    // Only the forward a_ -> b_ edge exists: try_to_lock cannot
    // deadlock and defer_lock does not lock, so neither contributes
    // the reverse edge that would close a cycle.
    ASSERT_EQ(a.edges.size(), 1u) << cl::renderText(a);
    EXPECT_FALSE(hasKind(a, "lock-order-inversion"));
}

TEST(ConclintTool, ScopedLockMultiAcquireIsDeadlockFree)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex a_;
std::mutex b_;
void both()
{
    std::scoped_lock lock(a_, b_);
}
void bothReversed()
{
    std::scoped_lock lock(b_, a_);
}
)");
    // std::lock's deadlock-avoidance makes the argument order of one
    // scoped_lock meaningless: no edges between its own arguments.
    EXPECT_TRUE(a.edges.empty()) << cl::renderText(a);
    EXPECT_FALSE(hasKind(a, "lock-order-inversion"));
    EXPECT_EQ(a.lockSiteCount, 4u);
}

TEST(ConclintTool, ScopedLockHoldsAgainstLaterAcquisitions)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex a_;
std::mutex b_;
std::mutex c_;
void stacked()
{
    std::scoped_lock lock(a_, b_);
    std::lock_guard<std::mutex> gc(c_);
}
)");
    // Both scoped_lock members order against the later c_ guard.
    EXPECT_EQ(a.edges.size(), 2u) << cl::renderText(a);
}

TEST(ConclintTool, SleepUnderLockFlagged)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex mu_;
void f()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
)");
    const auto blocks = ofKind(a, "blocking-under-lock");
    ASSERT_EQ(blocks.size(), 1u) << cl::renderText(a);
    EXPECT_NE(blocks[0].message.find("sleeps"), std::string::npos);
}

TEST(ConclintTool, SleepOutsideLockScopeIsFine)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex mu_;
void f()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
)");
    EXPECT_FALSE(hasKind(a, "blocking-under-lock"))
        << cl::renderText(a);
}

TEST(ConclintTool, ManualUnlockEndsTheHeldScope)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex mu_;
void f()
{
    std::unique_lock<std::mutex> lock(mu_);
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    lock.lock();
}
)");
    EXPECT_FALSE(hasKind(a, "blocking-under-lock"))
        << cl::renderText(a);
}

TEST(ConclintTool, FutureJoinUnderLockFlagged)
{
    const auto a = analyzeOne(R"(
#include <future>
#include <mutex>
std::mutex mu_;
void f(std::future<int> &fut)
{
    std::lock_guard<std::mutex> lock(mu_);
    int v = fut.get();
    (void)v;
}
)");
    const auto blocks = ofKind(a, "blocking-under-lock");
    ASSERT_EQ(blocks.size(), 1u) << cl::renderText(a);
    EXPECT_NE(blocks[0].message.find("future"), std::string::npos);
}

TEST(ConclintTool, UniquePtrGetIsNotAFutureJoin)
{
    const auto a = analyzeOne(R"(
#include <memory>
#include <mutex>
#include <vector>
std::mutex mu_;
std::vector<std::unique_ptr<int>> slots_ ERC_GUARDED_BY(mu_);
int *f(int i)
{
    std::lock_guard<std::mutex> lock(mu_);
    return slots_[i].get();
}
)");
    // `slots_[i].get()` has a bracketed receiver, not a plain
    // identifier: smart-pointer access, not a blocking join.
    EXPECT_FALSE(hasKind(a, "blocking-under-lock"))
        << cl::renderText(a);
}

TEST(ConclintTool, PredicatelessCvWaitFlagged)
{
    const auto a = analyzeOne(R"(
#include <condition_variable>
#include <mutex>
std::mutex mu_;
std::condition_variable cv_;
bool ready_ ERC_GUARDED_BY(mu_);
void bad()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock);
}
)");
    const auto blocks = ofKind(a, "blocking-under-lock");
    ASSERT_EQ(blocks.size(), 1u) << cl::renderText(a);
    EXPECT_NE(blocks[0].message.find("predicate"), std::string::npos);
}

TEST(ConclintTool, PredicatedCvWaitIsFine)
{
    const auto a = analyzeOne(R"(
#include <condition_variable>
#include <mutex>
std::mutex mu_;
std::condition_variable cv_;
bool ready_ ERC_GUARDED_BY(mu_);
void good()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return ready_; });
}
)");
    EXPECT_FALSE(hasKind(a, "blocking-under-lock"))
        << cl::renderText(a);
}

TEST(ConclintTool, RuntimeFilesExemptFromReportsButSummariesFlow)
{
    cl::FileSet files;
    // The blessed queue blocks under its own lock: no report there.
    files["src/elasticrec/runtime/queue.h"] = R"(
#include <condition_variable>
#include <mutex>
struct Queue {
    bool push(int v)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (full_)
            notFull_.wait(lock);
        return true;
    }
    std::mutex mutex_;
    std::condition_variable notFull_;
    bool full_ ERC_GUARDED_BY(mutex_) = false;
};
)";
    // ...but a library caller invoking it under another lock is real.
    files["src/elasticrec/serving/fanout.cc"] = R"(
#include <mutex>
std::mutex tableMu_;
int table_ ERC_GUARDED_BY(tableMu_);
void fanout(Queue &q)
{
    std::lock_guard<std::mutex> lock(tableMu_);
    table_ += 1;
    q.push(table_);
}
)";
    const auto a = cl::analyze(files);
    const auto blocks = ofKind(a, "blocking-under-lock");
    ASSERT_EQ(blocks.size(), 1u) << cl::renderText(a);
    EXPECT_EQ(blocks[0].file, "src/elasticrec/serving/fanout.cc");
    EXPECT_NE(blocks[0].message.find("push"), std::string::npos);
    // The witness path reaches through push into the actual wait.
    EXPECT_GE(blocks[0].path.size(), 2u);
}

TEST(ConclintTool, LambdaBodyAttributesToEnclosingFunction)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex mu_;
void f()
{
    std::lock_guard<std::mutex> lock(mu_);
    auto task = [&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    };
    task();
}
)");
    // The extractor skips lambda bodies as units of `f`, so the sleep
    // is reported against f (the over-approximation the gate
    // documents), not against a phantom anonymous function.
    const auto blocks = ofKind(a, "blocking-under-lock");
    ASSERT_EQ(blocks.size(), 1u) << cl::renderText(a);
    EXPECT_EQ(blocks[0].function, "f");
}

TEST(ConclintTool, AllowWaivesLineAndLineAbove)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex mu_;
void f()
{
    std::lock_guard<std::mutex> lock(mu_);
    // ERC_CONCLINT_ALLOW("test: trailing-comment waiver")
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
)");
    EXPECT_FALSE(hasKind(a, "blocking-under-lock"))
        << cl::renderText(a);
}

TEST(ConclintTool, FunctionLevelAllowExemptsBodyAndSummaries)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex a_;
std::mutex b_;
// ERC_CONCLINT_ALLOW("test: whole function exempt")
void reversed()
{
    std::lock_guard<std::mutex> gb(b_);
    std::lock_guard<std::mutex> ga(a_);
}
void forward()
{
    std::lock_guard<std::mutex> ga(a_);
    std::lock_guard<std::mutex> gb(b_);
}
void caller()
{
    std::lock_guard<std::mutex> ga(a_);
    reversed();
}
)");
    // The exempt function contributes neither direct edges nor
    // summaries through the call in caller().
    ASSERT_EQ(a.edges.size(), 1u) << cl::renderText(a);
    EXPECT_EQ(a.edges[0].from.find("a_") != std::string::npos, true);
    EXPECT_FALSE(hasKind(a, "lock-order-inversion"));
}

TEST(ConclintTool, UnannotatedMutexInLibraryHeaderFlagged)
{
    const auto a = analyzeOne(R"(
#pragma once
#include <mutex>
struct Counter {
    std::mutex mu_;
    int count_ = 0;
};
)",
                              "src/elasticrec/x/counter.h");
    const auto cov = ofKind(a, "unannotated-mutex");
    ASSERT_EQ(cov.size(), 1u) << cl::renderText(a);
    EXPECT_NE(cov[0].message.find("ERC_GUARDED_BY"),
              std::string::npos);
}

TEST(ConclintTool, AnnotatedMutexAndCoverageExemptionPass)
{
    // Annotated member: clean.
    const auto annotated = analyzeOne(R"(
#pragma once
#include <mutex>
struct Counter {
    std::mutex mu_;
    int count_ ERC_GUARDED_BY(mu_) = 0;
};
)",
                                      "src/elasticrec/x/counter.h");
    EXPECT_FALSE(hasKind(annotated, "unannotated-mutex"))
        << cl::renderText(annotated);

    // ERC_CONCLINT_ALLOW on the declaration waives coverage.
    const auto waived = analyzeOne(R"(
#pragma once
#include <mutex>
struct Standalone {
    // ERC_CONCLINT_ALLOW("test: guards external state")
    std::mutex mu_;
};
)",
                                   "src/elasticrec/x/standalone.h");
    EXPECT_FALSE(hasKind(waived, "unannotated-mutex"))
        << cl::renderText(waived);

    // Non-library files are out of scope for coverage.
    const auto test_file = analyzeOne(R"(
#include <mutex>
struct Fixture {
    std::mutex mu_;
};
)",
                                      "tests/fixture_test.cpp");
    EXPECT_FALSE(hasKind(test_file, "unannotated-mutex"));
}

TEST(ConclintTool, UnguardedAccessNeedsLockOrCapabilityAnnotation)
{
    const auto a = analyzeOne(R"(
#pragma once
#include <mutex>
struct Counter {
    void locked() { std::lock_guard<std::mutex> g(mu_); ++count_; }
    void annotated() ERC_REQUIRES(mu_) { ++count_; }
    int racy() { return count_; }
    std::mutex mu_;
    int count_ ERC_GUARDED_BY(mu_) = 0;
};
)",
                              "src/elasticrec/x/counter.h");
    const auto cov = ofKind(a, "unguarded-access");
    ASSERT_EQ(cov.size(), 1u) << cl::renderText(a);
    EXPECT_EQ(cov[0].function, "racy");
}

TEST(ConclintTool, ConstructorsExemptFromUnguardedAccess)
{
    const auto a = analyzeOne(R"(
#pragma once
#include <mutex>
struct Counter {
    Counter(int start) { count_ = start; }
    ~Counter() { count_ = 0; }
    std::mutex mu_;
    int count_ ERC_GUARDED_BY(mu_) = 0;
};
)",
                              "src/elasticrec/x/counter.h");
    EXPECT_FALSE(hasKind(a, "unguarded-access")) << cl::renderText(a);
}

TEST(ConclintTool, JsonRenderingCarriesSchemaAndFindings)
{
    const auto a = analyzeOne(R"(
#include <mutex>
std::mutex mu_;
void f()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
)");
    const std::string json = cl::renderJson(a);
    EXPECT_NE(json.find("\"schema\": \"erec_conclint/v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"pass\": false"), std::string::npos);
    EXPECT_NE(json.find("blocking-under-lock"), std::string::npos);
    EXPECT_NE(json.find("\"path\""), std::string::npos);
}

} // namespace
