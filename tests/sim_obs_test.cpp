/**
 * @file
 * End-to-end telemetry tests: an autoscaled cluster simulation with 1%
 * query tracing must emit a Prometheus export and a JSON-lines trace
 * file that parse cleanly (via the promcheck parser) and cross-check
 * against the run's SimResult — completions, SLA violations and scale
 * events all match — while tracing itself never perturbs the
 * simulation or its determinism.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "elasticrec/core/planner.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/sim/cluster_sim.h"
#include "elasticrec/sim/experiment.h"
#include "tools/promcheck/prom_parser.h"

namespace erec::sim {
namespace {

core::DeploymentPlan
erPlan(const model::DlrmConfig &config, const hw::NodeSpec &node)
{
    core::Planner planner = core::Planner::forPlatform(config, node);
    return planner.planElasticRec({cdfFor(config, 256)});
}

/** A traffic step that forces the HPA to scale up mid-run. */
workload::TrafficPattern
stepTraffic()
{
    return workload::TrafficPattern(
        {{0, 20.0}, {2 * units::kMinute, 60.0}});
}

SimOptions
tracedOptions()
{
    SimOptions opt;
    opt.seed = 7;
    opt.traceSampleEvery = 100; // 1% of queries
    return opt;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

TEST(SimObsTest, ExportedTelemetryCrossChecksSimResult)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plan = erPlan(config, node);
    ClusterSimulation sim(plan, node, stepTraffic(), tracedOptions());
    const auto r = sim.run(6 * units::kMinute);
    ASSERT_GT(r.completed, 0u);
    EXPECT_GT(r.scaleEvents, 0u) << "traffic step must trigger the HPA";

    const auto dir = std::filesystem::temp_directory_path() /
                     "erec_sim_obs_test";
    std::filesystem::remove_all(dir);
    obs::writeMetricsFiles(dir.string(), "run", sim.observability(),
                           {.traces = &sim.traces(),
                            .alerts = &sim.alertEvents()});

    // The Prometheus export parses and passes histogram invariants.
    const auto prom =
        tools::parsePrometheusText(readFile(dir / "run.prom"));
    for (const auto &e : prom.errors)
        ADD_FAILURE() << e;
    ASSERT_TRUE(prom.ok);

    // Counters match the run's own accounting exactly.
    const std::string frontend = plan.frontendShard().name;
    EXPECT_EQ(prom.value("erec_arrivals_total"),
              static_cast<double>(r.arrivals));
    EXPECT_EQ(prom.value("erec_completions_total",
                         {{"deployment", frontend}}),
              static_cast<double>(r.completed));
    EXPECT_EQ(prom.value("erec_sla_violations_total",
                         {{"deployment", frontend}}),
              static_cast<double>(r.slaViolations));

    // Scale events: per-deployment up+down counters sum to the
    // SimResult's totals.
    double exported_events = 0;
    for (const auto &s : prom.samples)
        if (s.name == "erec_hpa_scale_events_total")
            exported_events += s.value;
    EXPECT_EQ(exported_events, static_cast<double>(r.scaleEvents));
    for (const auto &[dep, events] : r.scaleEventsByDeployment) {
        const double up = prom.value("erec_hpa_scale_events_total",
                                     {{"deployment", dep},
                                      {"direction", "up"}});
        const double down = prom.value("erec_hpa_scale_events_total",
                                       {{"deployment", dep},
                                        {"direction", "down"}});
        EXPECT_EQ(up + down, static_cast<double>(events)) << dep;
    }

    // The latency histogram saw every completion.
    EXPECT_EQ(prom.value("erec_latency_ms_count",
                         {{"deployment", frontend}}),
              static_cast<double>(r.completed));

    // The trace file re-reads and matches the in-memory traces.
    const auto traces =
        obs::readTraceJsonLines(readFile(dir / "run_traces.jsonl"));
    EXPECT_EQ(traces.size(), sim.traces().size());
    std::filesystem::remove_all(dir);
}

TEST(SimObsTest, TracesObeySpanInvariants)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    ClusterSimulation sim(erPlan(config, node), node, stepTraffic(),
                          tracedOptions());
    const auto r = sim.run(5 * units::kMinute);

    // 1% sampling: one trace per 100 arrivals, first arrival included.
    ASSERT_GT(r.arrivals, 100u);
    EXPECT_EQ(sim.traces().size(), (r.arrivals - 1) / 100 + 1);

    std::size_t completed_traces = 0;
    for (const auto &trace : sim.traces()) {
        if (!trace.completed)
            continue;
        ++completed_traces;
        EXPECT_GE(trace.completion, trace.arrival);
        SimTime last_start = trace.arrival;
        for (const auto &span : trace.spans) {
            EXPECT_LE(span.start, span.end) << span.name;
            EXPECT_GE(span.start, trace.arrival) << span.name;
            EXPECT_LE(span.end, trace.completion) << span.name;
            EXPECT_GE(span.start, last_start)
                << span.name << ": spans not sorted by start";
            last_start = span.start;
        }
        EXPECT_FALSE(trace.spans.empty());
    }
    EXPECT_GT(completed_traces, 0u);
}

TEST(SimObsTest, TracedRunsAreByteIdenticalForSameSeed)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plan = erPlan(config, node);

    ClusterSimulation a(plan, node, stepTraffic(), tracedOptions());
    ClusterSimulation b(plan, node, stepTraffic(), tracedOptions());
    a.run(4 * units::kMinute);
    b.run(4 * units::kMinute);

    EXPECT_EQ(obs::toPrometheusText(a.observability()),
              obs::toPrometheusText(b.observability()));
    EXPECT_EQ(obs::toTraceJsonLines(a.traces()),
              obs::toTraceJsonLines(b.traces()));
}

TEST(SimObsTest, TracingDoesNotPerturbTheSimulation)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plan = erPlan(config, node);

    SimOptions off;
    off.seed = 7;
    ClusterSimulation base(plan, node, stepTraffic(), off);
    const auto r_off = base.run(4 * units::kMinute);
    ClusterSimulation traced(plan, node, stepTraffic(),
                             tracedOptions());
    const auto r_on = traced.run(4 * units::kMinute);

    EXPECT_EQ(r_off.arrivals, r_on.arrivals);
    EXPECT_EQ(r_off.completed, r_on.completed);
    EXPECT_EQ(r_off.slaViolations, r_on.slaViolations);
    EXPECT_DOUBLE_EQ(r_off.meanLatencyMs, r_on.meanLatencyMs);
    EXPECT_EQ(r_off.peakMemory, r_on.peakMemory);
    EXPECT_EQ(r_off.scaleEvents, r_on.scaleEvents);
}

TEST(SimObsTest, PromcheckRejectsHeaderOnlyFamilies)
{
    const auto result = tools::parsePrometheusText(
        "# HELP erec_ghost A family with no samples.\n"
        "# TYPE erec_ghost gauge\n"
        "# TYPE erec_live counter\n"
        "erec_live 3\n");
    EXPECT_FALSE(result.ok);
    ASSERT_EQ(result.errors.size(), 1u);
    EXPECT_NE(result.errors[0].find("erec_ghost"), std::string::npos);
    EXPECT_NE(result.errors[0].find("no samples"), std::string::npos);
}

TEST(SimObsTest, PodFailureFiresLostQueriesAlert)
{
    // The failure-ablation scenario in miniature: crash a frontend pod
    // mid-run and the default "lost-queries" rule must transition to
    // firing (and stay firing — lost_queries is cumulative), with the
    // transition visible both in the alert log and as exported
    // counters.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plan = erPlan(config, node);
    SimOptions opt;
    opt.seed = 11;
    ClusterSimulation sim(plan, node,
                          workload::TrafficPattern::constant(60.0),
                          opt);
    sim.injectPodFailure(plan.frontendShard().name, units::kMinute, 1);
    sim.run(3 * units::kMinute);
    ASSERT_GT(sim.lostQueries(), 0u)
        << "crash must lose in-flight queries";

    EXPECT_TRUE(sim.slo().firing("lost-queries"));
    std::uint64_t fired = 0, resolved = 0;
    SimTime first_firing = 0;
    for (const auto &e : sim.alertEvents()) {
        if (e.alert != "lost-queries")
            continue;
        if (e.firing) {
            ++fired;
            if (first_firing == 0)
                first_firing = e.time;
            EXPECT_GT(e.value, 0.0);
        } else {
            ++resolved;
        }
    }
    EXPECT_EQ(fired, 1u);
    EXPECT_EQ(resolved, 0u) << "cumulative losses never resolve";
    EXPECT_GE(first_firing, units::kMinute)
        << "alert cannot predate the crash";

    const auto &reg = sim.observability();
    EXPECT_EQ(reg.value("erec_alert_transitions_total",
                        {{"alert", "lost-queries"},
                         {"transition", "firing"}}),
              1.0);
    EXPECT_EQ(reg.value("erec_alert_firing",
                        {{"alert", "lost-queries"}}),
              1.0);
    EXPECT_EQ(reg.value("erec_lost_queries"),
              static_cast<double>(sim.lostQueries()));
}

TEST(SimObsTest, SteadyRunKeepsLostQueriesAlertQuiet)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    SimOptions opt;
    opt.seed = 7;
    ClusterSimulation sim(erPlan(config, node), node,
                          workload::TrafficPattern::constant(20.0),
                          opt);
    sim.run(2 * units::kMinute);
    EXPECT_EQ(sim.lostQueries(), 0u);
    EXPECT_FALSE(sim.slo().firing("lost-queries"));
    for (const auto &e : sim.alertEvents())
        EXPECT_NE(e.alert, "lost-queries");
}

TEST(SimObsTest, ExternalRegistryIsShared)
{
    // A caller-provided registry receives the simulation's metrics, so
    // several components can publish into one scrape surface.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plan = erPlan(config, node);
    auto registry = std::make_shared<obs::Registry>();
    SimOptions opt;
    opt.seed = 7;
    opt.observability = registry;
    ClusterSimulation sim(plan, node,
                          workload::TrafficPattern::constant(20.0),
                          opt);
    const auto r = sim.run(units::kMinute);
    EXPECT_EQ(registry.get(), &sim.observability());
    EXPECT_EQ(registry->value("erec_arrivals_total"),
              static_cast<double>(r.arrivals));
}

} // namespace
} // namespace erec::sim
