/**
 * @file
 * End-to-end telemetry tests: an autoscaled cluster simulation with 1%
 * query tracing must emit a Prometheus export and a JSON-lines trace
 * file that parse cleanly (via the promcheck parser) and cross-check
 * against the run's SimResult — completions, SLA violations and scale
 * events all match — while tracing itself never perturbs the
 * simulation or its determinism.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "elasticrec/core/planner.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/sim/cluster_sim.h"
#include "elasticrec/sim/experiment.h"
#include "tools/promcheck/prom_parser.h"

namespace erec::sim {
namespace {

core::DeploymentPlan
erPlan(const model::DlrmConfig &config, const hw::NodeSpec &node)
{
    core::Planner planner = core::Planner::forPlatform(config, node);
    return planner.planElasticRec({cdfFor(config, 256)});
}

/** A traffic step that forces the HPA to scale up mid-run. */
workload::TrafficPattern
stepTraffic()
{
    return workload::TrafficPattern(
        {{0, 20.0}, {2 * units::kMinute, 60.0}});
}

SimOptions
tracedOptions()
{
    SimOptions opt;
    opt.seed = 7;
    opt.traceSampleEvery = 100; // 1% of queries
    return opt;
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream oss;
    oss << in.rdbuf();
    return oss.str();
}

TEST(SimObsTest, ExportedTelemetryCrossChecksSimResult)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plan = erPlan(config, node);
    ClusterSimulation sim(plan, node, stepTraffic(), tracedOptions());
    const auto r = sim.run(6 * units::kMinute);
    ASSERT_GT(r.completed, 0u);
    EXPECT_GT(r.scaleEvents, 0u) << "traffic step must trigger the HPA";

    const auto dir = std::filesystem::temp_directory_path() /
                     "erec_sim_obs_test";
    std::filesystem::remove_all(dir);
    obs::writeMetricsFiles(dir.string(), "run", sim.observability(),
                           &sim.traces());

    // The Prometheus export parses and passes histogram invariants.
    const auto prom =
        tools::parsePrometheusText(readFile(dir / "run.prom"));
    for (const auto &e : prom.errors)
        ADD_FAILURE() << e;
    ASSERT_TRUE(prom.ok);

    // Counters match the run's own accounting exactly.
    const std::string frontend = plan.frontendShard().name;
    EXPECT_EQ(prom.value("erec_arrivals_total"),
              static_cast<double>(r.arrivals));
    EXPECT_EQ(prom.value("erec_completions_total",
                         {{"deployment", frontend}}),
              static_cast<double>(r.completed));
    EXPECT_EQ(prom.value("erec_sla_violations_total",
                         {{"deployment", frontend}}),
              static_cast<double>(r.slaViolations));

    // Scale events: per-deployment up+down counters sum to the
    // SimResult's totals.
    double exported_events = 0;
    for (const auto &s : prom.samples)
        if (s.name == "erec_hpa_scale_events_total")
            exported_events += s.value;
    EXPECT_EQ(exported_events, static_cast<double>(r.scaleEvents));
    for (const auto &[dep, events] : r.scaleEventsByDeployment) {
        const double up = prom.value("erec_hpa_scale_events_total",
                                     {{"deployment", dep},
                                      {"direction", "up"}});
        const double down = prom.value("erec_hpa_scale_events_total",
                                       {{"deployment", dep},
                                        {"direction", "down"}});
        EXPECT_EQ(up + down, static_cast<double>(events)) << dep;
    }

    // The latency histogram saw every completion.
    EXPECT_EQ(prom.value("erec_latency_ms_count",
                         {{"deployment", frontend}}),
              static_cast<double>(r.completed));

    // The trace file re-reads and matches the in-memory traces.
    const auto traces =
        obs::readTraceJsonLines(readFile(dir / "run_traces.jsonl"));
    EXPECT_EQ(traces.size(), sim.traces().size());
    std::filesystem::remove_all(dir);
}

TEST(SimObsTest, TracesObeySpanInvariants)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    ClusterSimulation sim(erPlan(config, node), node, stepTraffic(),
                          tracedOptions());
    const auto r = sim.run(5 * units::kMinute);

    // 1% sampling: one trace per 100 arrivals, first arrival included.
    ASSERT_GT(r.arrivals, 100u);
    EXPECT_EQ(sim.traces().size(), (r.arrivals - 1) / 100 + 1);

    std::size_t completed_traces = 0;
    for (const auto &trace : sim.traces()) {
        if (!trace.completed)
            continue;
        ++completed_traces;
        EXPECT_GE(trace.completion, trace.arrival);
        SimTime last_start = trace.arrival;
        for (const auto &span : trace.spans) {
            EXPECT_LE(span.start, span.end) << span.name;
            EXPECT_GE(span.start, trace.arrival) << span.name;
            EXPECT_LE(span.end, trace.completion) << span.name;
            EXPECT_GE(span.start, last_start)
                << span.name << ": spans not sorted by start";
            last_start = span.start;
        }
        EXPECT_FALSE(trace.spans.empty());
    }
    EXPECT_GT(completed_traces, 0u);
}

TEST(SimObsTest, TracedRunsAreByteIdenticalForSameSeed)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plan = erPlan(config, node);

    ClusterSimulation a(plan, node, stepTraffic(), tracedOptions());
    ClusterSimulation b(plan, node, stepTraffic(), tracedOptions());
    a.run(4 * units::kMinute);
    b.run(4 * units::kMinute);

    EXPECT_EQ(obs::toPrometheusText(a.observability()),
              obs::toPrometheusText(b.observability()));
    EXPECT_EQ(obs::toTraceJsonLines(a.traces()),
              obs::toTraceJsonLines(b.traces()));
}

TEST(SimObsTest, TracingDoesNotPerturbTheSimulation)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plan = erPlan(config, node);

    SimOptions off;
    off.seed = 7;
    ClusterSimulation base(plan, node, stepTraffic(), off);
    const auto r_off = base.run(4 * units::kMinute);
    ClusterSimulation traced(plan, node, stepTraffic(),
                             tracedOptions());
    const auto r_on = traced.run(4 * units::kMinute);

    EXPECT_EQ(r_off.arrivals, r_on.arrivals);
    EXPECT_EQ(r_off.completed, r_on.completed);
    EXPECT_EQ(r_off.slaViolations, r_on.slaViolations);
    EXPECT_DOUBLE_EQ(r_off.meanLatencyMs, r_on.meanLatencyMs);
    EXPECT_EQ(r_off.peakMemory, r_on.peakMemory);
    EXPECT_EQ(r_off.scaleEvents, r_on.scaleEvents);
}

TEST(SimObsTest, ExternalRegistryIsShared)
{
    // A caller-provided registry receives the simulation's metrics, so
    // several components can publish into one scrape surface.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto plan = erPlan(config, node);
    auto registry = std::make_shared<obs::Registry>();
    SimOptions opt;
    opt.seed = 7;
    opt.observability = registry;
    ClusterSimulation sim(plan, node,
                          workload::TrafficPattern::constant(20.0),
                          opt);
    const auto r = sim.run(units::kMinute);
    EXPECT_EQ(registry.get(), &sim.observability());
    EXPECT_EQ(registry->value("erec_arrivals_total"),
              static_cast<double>(r.arrivals));
}

} // namespace
} // namespace erec::sim
