/**
 * @file
 * Tests for common/ring.h: FIFO order across index wraparound at
 * capacity, growth while the live window straddles the wrap point,
 * at() indexing relative to a wrapped head, and reserve() rounding.
 * The wraparound cases are regression guards — a masking bug in the
 * power-of-two index math only shows once head_ has lapped the buffer.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "elasticrec/common/ring.h"

namespace erec {
namespace {

TEST(RingTest, FifoAcrossWraparoundAtCapacity)
{
    Ring<int> ring;
    ring.reserve(8);
    ASSERT_EQ(ring.capacity(), 8u);

    // Lap the buffer several times at exactly full capacity: each
    // iteration pops one from the front and pushes one at the back, so
    // head_ sweeps the whole index range with count_ == capacity.
    for (int i = 0; i < 8; ++i)
        ring.push(i);
    for (int i = 8; i < 40; ++i) {
        EXPECT_EQ(ring.size(), 8u);
        EXPECT_EQ(ring.front(), i - 8);
        EXPECT_EQ(ring.pop(), i - 8);
        ring.push(i);
        EXPECT_EQ(ring.capacity(), 8u) << "full-capacity cycling must "
                                          "not grow the backing store";
    }
    for (int i = 32; i < 40; ++i)
        EXPECT_EQ(ring.pop(), i);
    EXPECT_TRUE(ring.empty());
}

TEST(RingTest, AtIndexesRelativeToWrappedHead)
{
    Ring<int> ring;
    ring.reserve(8);
    for (int i = 0; i < 8; ++i)
        ring.push(i);
    // Move head_ past the middle so the live window wraps.
    for (int i = 0; i < 6; ++i)
        ring.pop();
    for (int i = 8; i < 13; ++i)
        ring.push(i);
    ASSERT_EQ(ring.size(), 7u);
    for (std::size_t i = 0; i < ring.size(); ++i)
        EXPECT_EQ(ring.at(i), static_cast<int>(i) + 6);
}

TEST(RingTest, GrowthWhileWrappedPreservesFifoOrder)
{
    Ring<int> ring;
    ring.reserve(8);
    for (int i = 0; i < 8; ++i)
        ring.push(i);
    for (int i = 0; i < 5; ++i)
        ring.pop();
    for (int i = 8; i < 13; ++i)
        ring.push(i); // Window now straddles the wrap point.
    ASSERT_EQ(ring.size(), 8u);
    ASSERT_EQ(ring.capacity(), 8u);

    // The next push overflows and re-linearizes into a doubled buffer;
    // the wrapped window must come out in FIFO order.
    ring.push(13);
    EXPECT_EQ(ring.capacity(), 16u);
    std::vector<int> drained;
    while (!ring.empty())
        drained.push_back(ring.pop());
    EXPECT_EQ(drained, (std::vector<int>{5, 6, 7, 8, 9, 10, 11, 12, 13}));
}

TEST(RingTest, ReserveRoundsToPowerOfTwoAndNeverShrinks)
{
    Ring<int> ring;
    EXPECT_EQ(ring.capacity(), 0u);
    ring.reserve(1);
    EXPECT_EQ(ring.capacity(), 8u); // First growth starts at 8.
    ring.reserve(20);
    EXPECT_EQ(ring.capacity(), 32u);
    ring.reserve(4);
    EXPECT_EQ(ring.capacity(), 32u);

    // clear() resets the window but keeps the storage.
    for (int i = 0; i < 10; ++i)
        ring.push(i);
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), 32u);
    ring.push(99);
    EXPECT_EQ(ring.front(), 99);
}

} // namespace
} // namespace erec
