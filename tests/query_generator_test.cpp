/**
 * @file
 * Tests for query generation: the index/offset array layout of
 * Figure 11, pooling factors, ID maps and determinism.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "elasticrec/common/error.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::workload {
namespace {

QueryShape
smallShape()
{
    QueryShape s;
    s.batchSize = 4;
    s.numTables = 3;
    s.gathersPerItem = 8;
    return s;
}

TEST(QueryGeneratorTest, ShapeOfGeneratedQuery)
{
    QueryGenerator gen(smallShape(),
                       std::make_shared<UniformDistribution>(1000));
    const Query q = gen.next(123);
    EXPECT_EQ(q.arrival, 123);
    EXPECT_EQ(q.batchSize, 4u);
    ASSERT_EQ(q.lookups.size(), 3u);
    for (const auto &l : q.lookups) {
        EXPECT_EQ(l.batchSize(), 4u);
        EXPECT_EQ(l.numGathers(), 32u); // 4 items x 8 gathers
        // Offsets must be monotone and start at 0.
        EXPECT_EQ(l.offsets.front(), 0u);
        for (std::size_t i = 1; i < l.offsets.size(); ++i)
            EXPECT_LE(l.offsets[i - 1], l.offsets[i]);
        // Each item contributes exactly gathersPerItem IDs.
        for (std::size_t i = 1; i < l.offsets.size(); ++i)
            EXPECT_EQ(l.offsets[i] - l.offsets[i - 1], 8u);
    }
    EXPECT_EQ(q.totalGathers(), 96u);
}

TEST(QueryGeneratorTest, IdsWithinTableRange)
{
    QueryGenerator gen(smallShape(),
                       std::make_shared<LocalityDistribution>(500, 0.9));
    for (int i = 0; i < 50; ++i) {
        const Query q = gen.next();
        for (const auto &l : q.lookups)
            for (auto id : l.indices)
                ASSERT_LT(id, 500u);
    }
}

TEST(QueryGeneratorTest, QueryIdsIncrement)
{
    QueryGenerator gen(smallShape(),
                       std::make_shared<UniformDistribution>(100));
    EXPECT_EQ(gen.next().id, 0u);
    EXPECT_EQ(gen.next().id, 1u);
    EXPECT_EQ(gen.next().id, 2u);
}

TEST(QueryGeneratorTest, DeterministicForSeed)
{
    QueryGenerator a(smallShape(),
                     std::make_shared<UniformDistribution>(1000), 9);
    QueryGenerator b(smallShape(),
                     std::make_shared<UniformDistribution>(1000), 9);
    const Query qa = a.next();
    const Query qb = b.next();
    EXPECT_EQ(qa.lookups[0].indices, qb.lookups[0].indices);
    EXPECT_EQ(qa.lookups[2].indices, qb.lookups[2].indices);
}

TEST(QueryGeneratorTest, IdMapRemapsRanks)
{
    // Identity map reversed: rank r -> id (N-1-r). With a strongly
    // skewed distribution most samples are rank 0 -> id N-1.
    const std::uint64_t rows = 100;
    QueryShape s = smallShape();
    s.numTables = 1;
    QueryGenerator gen(s,
                       std::make_shared<LocalityDistribution>(
                           rows, 0.99, 0.01),
                       11);
    std::vector<std::uint32_t> reversed(rows);
    std::iota(reversed.begin(), reversed.end(), 0u);
    std::reverse(reversed.begin(), reversed.end());
    gen.setIdMap(0, reversed);

    std::uint64_t high_half = 0, total = 0;
    for (int i = 0; i < 100; ++i) {
        const Query q = gen.next();
        for (auto id : q.lookups[0].indices) {
            ++total;
            if (id >= rows / 2)
                ++high_half;
        }
    }
    // Hot ranks (low) map to high IDs.
    EXPECT_GT(static_cast<double>(high_half) / total, 0.9);
}

TEST(QueryGeneratorTest, PerTableDistributions)
{
    QueryShape s = smallShape();
    s.numTables = 2;
    std::vector<AccessDistributionPtr> dists = {
        std::make_shared<UniformDistribution>(10),
        std::make_shared<UniformDistribution>(100000),
    };
    QueryGenerator gen(s, dists);
    const Query q = gen.next();
    for (auto id : q.lookups[0].indices)
        ASSERT_LT(id, 10u);
    bool saw_large = false;
    for (auto id : q.lookups[1].indices)
        saw_large = saw_large || id >= 10;
    EXPECT_TRUE(saw_large);
}

TEST(QueryGeneratorTest, RejectsBadConfig)
{
    EXPECT_THROW(QueryGenerator(smallShape(),
                                std::vector<AccessDistributionPtr>{}),
                 ConfigError);
    QueryGenerator gen(smallShape(),
                       std::make_shared<UniformDistribution>(10));
    EXPECT_THROW(gen.setIdMap(5, {}), ConfigError);
    EXPECT_THROW(gen.setIdMap(0, std::vector<std::uint32_t>(3)),
                 ConfigError);
}

} // namespace
} // namespace erec::workload
