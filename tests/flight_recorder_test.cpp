/**
 * @file
 * Unit tests for the causal-tracing primitives: interned span names,
 * structural TraceContext span-id encoding, the SPSC SpanRing's
 * overflow-drops contract, the FlightRecorder's deterministic
 * every-Nth sampling and drain protocol, span-tree assembly with its
 * canonical (timestamp-free) text form, and the Perfetto exporter
 * against its own erec_trace/v1 validator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "elasticrec/obs/flight_recorder.h"
#include "elasticrec/obs/perfetto.h"
#include "elasticrec/obs/span_name.h"
#include "elasticrec/obs/span_tree.h"
#include "elasticrec/obs/trace_context.h"

namespace erec::obs {
namespace {

TEST(SpanNameTest, InternIsIdempotentAndResolvable)
{
    const NameId a = internSpanName("test/alpha");
    const NameId b = internSpanName("test/beta");
    EXPECT_NE(a, kInvalidNameId);
    EXPECT_NE(b, kInvalidNameId);
    EXPECT_NE(a, b);
    // Re-interning returns the same id, not a new slot.
    EXPECT_EQ(internSpanName("test/alpha"), a);
    EXPECT_EQ(spanName(a), "test/alpha");
    EXPECT_EQ(spanName(b), "test/beta");
    // Corrupt ids resolve to a sentinel instead of crashing exporters.
    EXPECT_EQ(spanName(kInvalidNameId), "<invalid>");
    EXPECT_EQ(spanName(static_cast<NameId>(1u << 30)), "<invalid>");
}

TEST(TraceContextTest, ChildIdsAreStructuralAndInvertible)
{
    const TraceContext unsampled;
    EXPECT_FALSE(unsampled.sampled());

    const TraceContext root{7, kRootSpanId};
    EXPECT_TRUE(root.sampled());
    EXPECT_EQ(parentSpanId(kRootSpanId), 0u);

    // child(slot) packs the slot into the low byte of a shifted parent
    // id, so ids depend only on the query's path through the stages —
    // never on scheduling — and parentSpanId() inverts the step.
    const TraceContext queue = root.child(0);
    const TraceContext serve = root.child(1);
    EXPECT_EQ(queue.spanId, (kRootSpanId << 8) | 1u);
    EXPECT_EQ(serve.spanId, (kRootSpanId << 8) | 2u);
    EXPECT_EQ(parentSpanId(queue.spanId), kRootSpanId);
    EXPECT_EQ(parentSpanId(serve.spanId), kRootSpanId);
    EXPECT_EQ(queue.traceId, root.traceId);

    // Nesting composes: a grandchild's parent is the child's id.
    const TraceContext gather = serve.child(4);
    EXPECT_EQ(parentSpanId(gather.spanId), serve.spanId);
    EXPECT_EQ(gather.spanId, (serve.spanId << 8) | 5u);
}

TEST(SpanRingTest, OverflowDropsInsteadOfBlocking)
{
    // Capacity rounds up to a power of two.
    SpanRing ring(3);
    EXPECT_EQ(ring.capacity(), 4u);

    SpanEvent e;
    e.traceId = 1;
    for (std::uint64_t i = 0; i < 4; ++i) {
        e.spanId = i + 1;
        EXPECT_TRUE(ring.tryPush(e));
    }
    // A full ring drops and counts; it must never block the producer.
    e.spanId = 99;
    EXPECT_FALSE(ring.tryPush(e));
    EXPECT_FALSE(ring.tryPush(e));
    EXPECT_EQ(ring.drops(), 2u);

    // Draining frees the slots; the dropped events stay dropped.
    std::vector<SpanEvent> out;
    EXPECT_EQ(ring.drainInto(&out), 4u);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out.front().spanId, 1u);
    EXPECT_EQ(out.back().spanId, 4u);
    EXPECT_TRUE(ring.tryPush(e));
    EXPECT_EQ(ring.drops(), 2u);
    out.clear();
    EXPECT_EQ(ring.drainInto(&out), 1u);
    EXPECT_EQ(out.front().spanId, 99u);
}

TEST(FlightRecorderTest, SamplingIsDeterministicEveryNth)
{
    FlightRecorder rec({.sampleEvery = 4});
    ASSERT_TRUE(rec.enabled());
    for (std::uint64_t n = 0; n < 12; ++n) {
        const TraceContext ctx = rec.maybeStartTrace();
        if (n % 4 == 0) {
            // Sampled: traceId encodes the submission index, so reruns
            // of the same workload sample the same queries.
            EXPECT_EQ(ctx.traceId, n + 1);
            EXPECT_EQ(ctx.spanId, kRootSpanId);
        } else {
            EXPECT_FALSE(ctx.sampled());
        }
    }
    EXPECT_EQ(rec.submissions(), 12u);

    // sampleEvery = 0 disables tracing entirely.
    FlightRecorder off({.sampleEvery = 0});
    EXPECT_FALSE(off.enabled());
    EXPECT_FALSE(off.maybeStartTrace().sampled());
    EXPECT_EQ(off.submissions(), 0u);
}

TEST(FlightRecorderTest, BatchTracesCarryTheBatchBit)
{
    FlightRecorder rec({.sampleEvery = 1});
    const TraceContext b0 = rec.startBatchTrace();
    const TraceContext b1 = rec.startBatchTrace();
    EXPECT_NE(b0.traceId & kBatchTraceBit, 0u);
    EXPECT_NE(b1.traceId & kBatchTraceBit, 0u);
    EXPECT_NE(b0.traceId, b1.traceId);
    // Query trace ids never collide with batch ids.
    EXPECT_EQ(rec.maybeStartTrace().traceId & kBatchTraceBit, 0u);
}

TEST(FlightRecorderTest, RecordAndDrainRoundTrip)
{
    const NameId name = internSpanName("test/roundtrip");
    FlightRecorder rec({.sampleEvery = 1, .ringCapacity = 64});
    const TraceContext root = rec.maybeStartTrace();
    ASSERT_TRUE(root.sampled());

    rec.recordSpan(root.child(0), name, 10, 20, /*arg=*/42);
    rec.recordLink(root, name, /*member_trace_id=*/7, 15);

    const auto events = rec.drain();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(rec.ringCount(), 1u);
    EXPECT_EQ(rec.droppedEvents(), 0u);

    const SpanEvent &span = events[0];
    EXPECT_EQ(span.kind, EventKind::Span);
    EXPECT_EQ(span.traceId, root.traceId);
    EXPECT_EQ(span.spanId, root.childSpanId(0));
    EXPECT_EQ(span.parentId, root.spanId);
    EXPECT_EQ(span.startUs, 10);
    EXPECT_EQ(span.endUs, 20);
    EXPECT_EQ(span.arg, 42u);
    EXPECT_EQ(span.name, name);

    const SpanEvent &link = events[1];
    EXPECT_EQ(link.kind, EventKind::Link);
    EXPECT_EQ(link.arg, 7u);
    EXPECT_EQ(link.startUs, 15);

    // Drain moves, not copies: a second drain is empty.
    EXPECT_TRUE(rec.drain().empty());
}

/** Events of one synthetic query trace, in a scrambled record order. */
std::vector<SpanEvent>
syntheticTrace(std::uint64_t trace_id)
{
    const NameId query = internSpanName("test/query");
    const NameId queue = internSpanName("test/queue");
    const NameId serve = internSpanName("test/serve");
    const NameId gather = internSpanName("test/gather");

    const TraceContext root{trace_id, kRootSpanId};
    const auto span = [&](const TraceContext &ctx, NameId n,
                          std::uint64_t arg = 0) {
        SpanEvent e;
        e.traceId = ctx.traceId;
        e.spanId = ctx.spanId;
        e.parentId = parentSpanId(ctx.spanId);
        e.name = n;
        e.arg = arg;
        return e;
    };
    // Recorded out of tree order on purpose: assembly must not depend
    // on the order events were drained in.
    return {span(root.child(1).child(0), gather, 3),
            span(root, query),
            span(root.child(1), serve),
            span(root.child(0), queue)};
}

TEST(SpanTreeTest, AssemblyIsOrderIndependentAndCanonical)
{
    auto events = syntheticTrace(5);
    auto reversed = events;
    std::reverse(reversed.begin(), reversed.end());

    const auto trees = buildSpanTrees(events);
    const auto trees2 = buildSpanTrees(reversed);
    ASSERT_EQ(trees.size(), 1u);
    const SpanTree &tree = trees.front();
    EXPECT_EQ(tree.traceId, 5u);
    EXPECT_FALSE(tree.isBatch());
    ASSERT_EQ(tree.nodes.size(), 4u);
    // Root is the kRootSpanId node; its children sit in slot order.
    EXPECT_EQ(tree.nodes[tree.root].event.spanId, kRootSpanId);
    ASSERT_EQ(tree.nodes[tree.root].children.size(), 2u);

    // The canonical text has structure, names and args — and is
    // byte-identical however the events were interleaved.
    const std::string text = canonicalTreeText(tree);
    EXPECT_EQ(text, canonicalTreeText(trees2.front()));
    EXPECT_NE(text.find("test/query"), std::string::npos);
    EXPECT_NE(text.find("test/gather #3"), std::string::npos);
}

TEST(SpanTreeTest, OrphansAttachToRootAndBatchesStayOutOfForests)
{
    // An orphan (its parent record was dropped in a ring overflow)
    // must still land in the tree, under the root.
    const NameId orphan = internSpanName("test/orphan");
    auto events = syntheticTrace(1);
    SpanEvent lost;
    lost.traceId = 1;
    lost.spanId = 0xDEAD00;
    lost.parentId = 0xDEAD; // Never recorded.
    lost.name = orphan;
    events.push_back(lost);

    // A batch trace rides along in the same drain.
    SpanEvent batch;
    batch.traceId = kBatchTraceBit | 1;
    batch.spanId = kRootSpanId;
    batch.name = internSpanName("test/batch");
    events.push_back(batch);

    const auto trees = buildSpanTrees(events);
    ASSERT_EQ(trees.size(), 2u);
    EXPECT_FALSE(trees[0].isBatch());
    EXPECT_TRUE(trees[1].isBatch());

    const std::string tree_text = canonicalTreeText(trees[0]);
    EXPECT_NE(tree_text.find("test/orphan"), std::string::npos);

    // Batch composition is scheduling-dependent, so the determinism
    // artifact — the forest — excludes batch traces.
    const std::string forest = canonicalForestText(trees);
    EXPECT_EQ(forest.find("test/batch"), std::string::npos);
    EXPECT_NE(forest.find("test/query"), std::string::npos);
}

TEST(PerfettoTest, DrainedEventsExportAndValidate)
{
    const NameId link_name = internSpanName("test/batch_member");
    FlightRecorder rec({.sampleEvery = 1, .ringCapacity = 64});
    const TraceContext root = rec.maybeStartTrace();
    const TraceContext batch = rec.startBatchTrace();
    rec.recordSpan(root, internSpanName("test/query"), 0, 50);
    rec.recordSpan(root.child(0), internSpanName("test/queue"), 0, 10);
    rec.recordSpan(batch, internSpanName("test/batch"), 5, 40);
    rec.recordLink(batch, link_name, root.traceId, 5);

    const std::string json = toPerfettoJson(rec.drain());
    EXPECT_EQ(validatePerfettoJson(json), std::vector<std::string>{});
    // Flow events: the fan-in link renders as a start/finish pair.
    EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);

    // The validator is a real gate: broken input must fail it.
    EXPECT_FALSE(validatePerfettoJson("{\"traceEvents\": [").empty());
}

} // namespace
} // namespace erec::obs
