/**
 * @file
 * Tests for the MLP spec accounting and the real forward pass.
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/model/mlp.h"

namespace erec::model {
namespace {

/** Single-sample forward through the one pointer-based entry point. */
std::vector<float>
forwardOne(const Mlp &m, const std::vector<float> &in)
{
    std::vector<float> out(m.spec().outputDim());
    m.forward(in.data(), 1, out.data());
    return out;
}

TEST(MlpSpecTest, FlopsAndParams)
{
    MlpSpec spec{{256, 128, 32}};
    EXPECT_EQ(spec.inputDim(), 256u);
    EXPECT_EQ(spec.outputDim(), 32u);
    EXPECT_EQ(spec.numLayers(), 2u);
    EXPECT_EQ(spec.flopsPerItem(), 2ull * (256 * 128 + 128 * 32));
    EXPECT_EQ(spec.paramBytes(),
              4ull * (256 * 128 + 128 + 128 * 32 + 32));
    EXPECT_EQ(spec.toString(), "256-128-32");
}

TEST(MlpTest, OutputShapeAndDeterminism)
{
    Mlp a(MlpSpec{{8, 4, 2}}, 5);
    Mlp b(MlpSpec{{8, 4, 2}}, 5);
    std::vector<float> in(8, 0.5f);
    EXPECT_EQ(forwardOne(a, in).size(), 2u);
    EXPECT_EQ(forwardOne(a, in), forwardOne(b, in));
    Mlp c(MlpSpec{{8, 4, 2}}, 6);
    EXPECT_NE(forwardOne(a, in), forwardOne(c, in));
}

TEST(MlpTest, LinearityOfSingleLayer)
{
    // A 1-layer MLP (output layer, no ReLU) is linear: f(2x) = 2 f(x)
    // when biases are zero (they are initialized to zero).
    Mlp m(MlpSpec{{4, 3}}, 11);
    std::vector<float> x = {0.1f, -0.2f, 0.3f, 0.4f};
    std::vector<float> x2 = {0.2f, -0.4f, 0.6f, 0.8f};
    const auto y = forwardOne(m, x);
    const auto y2 = forwardOne(m, x2);
    for (std::size_t i = 0; i < y.size(); ++i)
        EXPECT_NEAR(y2[i], 2 * y[i], 1e-5);
}

TEST(MlpTest, HiddenReluClampsNegative)
{
    // With a large negative input and ReLU hidden layers, the hidden
    // activations saturate at zero, so doubling the input magnitude
    // cannot flip output signs through the hidden layer. Simply check
    // the forward pass produces finite outputs and zero input maps to
    // the bias path (zero, as biases are zero-initialized).
    Mlp m(MlpSpec{{4, 8, 2}}, 13);
    std::vector<float> zero(4, 0.0f);
    const auto y = forwardOne(m, zero);
    for (float v : y)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(MlpTest, BatchForwardMatchesPerItem)
{
    Mlp m(MlpSpec{{6, 5, 3}}, 17);
    std::vector<float> batch_in;
    std::vector<std::vector<float>> items;
    for (int b = 0; b < 4; ++b) {
        std::vector<float> item(6);
        for (int i = 0; i < 6; ++i)
            item[i] = 0.1f * static_cast<float>(b + 1) *
                      static_cast<float>(i - 3);
        items.push_back(item);
        batch_in.insert(batch_in.end(), item.begin(), item.end());
    }
    std::vector<float> batch_out(4 * 3);
    m.forward(batch_in.data(), 4, batch_out.data());
    for (int b = 0; b < 4; ++b) {
        const auto single = forwardOne(m, items[b]);
        for (int o = 0; o < 3; ++o)
            EXPECT_NEAR(batch_out[b * 3 + o], single[o], 1e-5);
    }
}

TEST(MlpTest, RejectsBadSpec)
{
    EXPECT_THROW(Mlp(MlpSpec{{8}}), ConfigError);
    EXPECT_THROW(Mlp(MlpSpec{{8, 0}}), ConfigError);
}

TEST(MlpSpecTest, PaperSpecsFlopOrdering)
{
    // Heavier MLPs (Table I) must have strictly more FLOPs.
    const MlpSpec light{{64, 32, 32}};
    const MlpSpec medium{{256, 128, 32}};
    const MlpSpec heavy{{512, 256, 32}};
    EXPECT_LT(light.flopsPerItem(), medium.flopsPerItem());
    EXPECT_LT(medium.flopsPerItem(), heavy.flopsPerItem());
}

} // namespace
} // namespace erec::model
