/**
 * @file
 * Tests for common/error.h: the ConfigError/InternalError taxonomy,
 * erec::fatal / erec::panic, and the ERC_CHECK / ERC_ASSERT macros
 * (message streaming, location stamping, evaluation discipline).
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "elasticrec/common/error.h"

namespace erec {
namespace {

TEST(ErrorTest, CheckPassesOnTrueCondition)
{
    EXPECT_NO_THROW(ERC_CHECK(1 + 1 == 2, "fine"));
    EXPECT_NO_THROW(ERC_ASSERT(true, "ok"));
}

TEST(ErrorTest, CheckThrowsConfigError)
{
    try {
        ERC_CHECK(false, "the message " << 7);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("the message 7"), std::string::npos);
        EXPECT_NE(what.find("false"), std::string::npos);
        EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
    }
}

TEST(ErrorTest, AssertThrowsInternalError)
{
    try {
        ERC_ASSERT(2 < 1, "broken invariant: x=" << 42);
        FAIL() << "expected InternalError";
    } catch (const InternalError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("broken invariant: x=42"), std::string::npos);
        EXPECT_NE(what.find("2 < 1"), std::string::npos);
        EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
    }
}

TEST(ErrorTest, FatalAndPanicTypes)
{
    EXPECT_THROW(fatal("user error"), ConfigError);
    EXPECT_THROW(panic("library bug"), InternalError);
    // ConfigError is a runtime_error; InternalError is a logic_error,
    // so the two families stay distinguishable at catch sites.
    EXPECT_THROW(fatal("x"), std::runtime_error);
    EXPECT_THROW(panic("x"), std::logic_error);
}

TEST(ErrorTest, MessagesCarryTypePrefix)
{
    try {
        fatal("bad qps");
        FAIL();
    } catch (const ConfigError &e) {
        EXPECT_EQ(std::string(e.what()), "ConfigError: bad qps");
    }
    try {
        panic("bad state");
        FAIL();
    } catch (const InternalError &e) {
        EXPECT_EQ(std::string(e.what()), "InternalError: bad state");
    }
}

TEST(ErrorTest, CheckEvaluatesConditionExactlyOnce)
{
    int evals = 0;
    auto counted = [&evals]() {
        ++evals;
        return true;
    };
    ERC_CHECK(counted(), "never thrown");
    EXPECT_EQ(evals, 1);
    evals = 0;
    ERC_ASSERT(counted(), "never thrown");
    EXPECT_EQ(evals, 1);
}

TEST(ErrorTest, CheckSkipsMessageWhenConditionHolds)
{
    int msg_evals = 0;
    auto stamp = [&msg_evals]() {
        ++msg_evals;
        return "msg";
    };
    ERC_CHECK(true, stamp());
    EXPECT_EQ(msg_evals, 0);
}

TEST(ErrorTest, ErrorsAreCatchableAsStdException)
{
    try {
        ERC_CHECK(false, "via base");
        FAIL();
    } catch (const std::exception &e) {
        EXPECT_NE(std::string(e.what()).find("via base"),
                  std::string::npos);
    }
}

} // namespace
} // namespace erec
