/**
 * @file
 * Tests for the metrics registry and deployment bookkeeping.
 */

#include <gtest/gtest.h>

#include "elasticrec/cluster/deployment.h"
#include "elasticrec/cluster/metrics.h"
#include "elasticrec/common/error.h"

namespace erec::cluster {
namespace {

TEST(MetricsRegistryTest, QpsWindow)
{
    MetricsRegistry m(10 * units::kSecond);
    for (int i = 0; i < 100; ++i)
        m.recordCompletion("svc", i * 100 * units::kMillisecond,
                           units::kMillisecond);
    // 10 completions/sec over the trailing window.
    EXPECT_NEAR(m.qps("svc", 10 * units::kSecond), 10.0, 1.0);
    EXPECT_EQ(m.completions("svc"), 100u);
}

TEST(MetricsRegistryTest, LatencyQuantile)
{
    MetricsRegistry m;
    for (int i = 1; i <= 100; ++i)
        m.recordCompletion("svc", units::kSecond,
                           i * units::kMillisecond);
    const SimTime p95 =
        m.latencyQuantile("svc", units::kSecond, 0.95);
    EXPECT_NEAR(units::toMillis(p95), 95.0, 1.0);
}

TEST(MetricsRegistryTest, UnknownSeriesIsZero)
{
    MetricsRegistry m;
    EXPECT_EQ(m.completions("nope"), 0u);
    EXPECT_EQ(m.slaViolations("nope"), 0u);
    EXPECT_DOUBLE_EQ(m.qps("nope", 0), 0.0);
}

TEST(MetricsRegistryTest, ReadsNeverCreateSeries)
{
    // qps()/latencyQuantile() on an unknown deployment must not insert
    // an empty Series as a side effect: deployments() stays empty and
    // repeated reads keep returning zero.
    MetricsRegistry m;
    EXPECT_DOUBLE_EQ(m.qps("ghost", 10 * units::kSecond), 0.0);
    EXPECT_EQ(m.latencyQuantile("ghost", units::kSecond, 0.95), 0);
    EXPECT_TRUE(m.deployments().empty());
    m.recordCompletion("real", units::kSecond, units::kMillisecond);
    EXPECT_EQ(m.deployments(), std::vector<std::string>{"real"});
}

TEST(MetricsRegistryTest, DeploymentsAreSorted)
{
    MetricsRegistry m;
    m.recordCompletion("zeta", units::kSecond, 1);
    m.recordSlaViolation("alpha");
    m.recordCompletion("mid", units::kSecond, 1);
    const std::vector<std::string> expect = {"alpha", "mid", "zeta"};
    EXPECT_EQ(m.deployments(), expect);
}

TEST(MetricsRegistryTest, MirrorsIntoObservabilityRegistry)
{
    obs::Registry registry;
    MetricsRegistry m;
    m.bindObservability(&registry);
    m.recordCompletion("svc", units::kSecond,
                       5 * units::kMillisecond);
    m.recordCompletion("svc", units::kSecond,
                       800 * units::kMillisecond);
    m.recordSlaViolation("svc");
    EXPECT_DOUBLE_EQ(registry.value("erec_completions_total",
                                    {{"deployment", "svc"}}),
                     2.0);
    EXPECT_DOUBLE_EQ(registry.value("erec_sla_violations_total",
                                    {{"deployment", "svc"}}),
                     1.0);
}

TEST(MetricsRegistryTest, BindRebindsExistingSeries)
{
    // Series created before the bind are published retroactively on
    // their next update; detaching stops publication.
    MetricsRegistry m;
    m.recordCompletion("svc", units::kSecond, units::kMillisecond);
    obs::Registry registry;
    m.bindObservability(&registry);
    m.recordCompletion("svc", 2 * units::kSecond,
                       units::kMillisecond);
    EXPECT_DOUBLE_EQ(registry.value("erec_completions_total",
                                    {{"deployment", "svc"}}),
                     1.0);
    m.bindObservability(nullptr);
    m.recordCompletion("svc", 3 * units::kSecond,
                       units::kMillisecond);
    EXPECT_DOUBLE_EQ(registry.value("erec_completions_total",
                                    {{"deployment", "svc"}}),
                     1.0);
}

TEST(MetricsRegistryTest, SlaViolations)
{
    MetricsRegistry m;
    m.recordSlaViolation("svc");
    m.recordSlaViolation("svc");
    EXPECT_EQ(m.slaViolations("svc"), 2u);
}

TEST(MetricsRegistryTest, Gauges)
{
    MetricsRegistry m;
    EXPECT_DOUBLE_EQ(m.gauge("mem"), 0.0);
    m.setGauge("mem", 42.5);
    EXPECT_DOUBLE_EQ(m.gauge("mem"), 42.5);
}

TEST(DeploymentTest, ClampsDesiredReplicas)
{
    core::ShardSpec spec;
    spec.name = "d";
    Deployment d(spec, 3);
    EXPECT_EQ(d.desiredReplicas(), 3u);
    d.setReplicaBounds(2, 10);
    d.setDesiredReplicas(100);
    EXPECT_EQ(d.desiredReplicas(), 10u);
    d.setDesiredReplicas(0);
    EXPECT_EQ(d.desiredReplicas(), 2u);
    EXPECT_THROW(d.setReplicaBounds(0, 5), ConfigError);
    EXPECT_THROW(d.setReplicaBounds(6, 5), ConfigError);
}

TEST(DeploymentTest, ResourceRequestFromSpec)
{
    core::ShardSpec spec;
    spec.name = "d";
    spec.cpuCores = 4;
    spec.memBytes = 123;
    spec.usesGpu = true;
    const auto req = resourceRequestFor(spec);
    EXPECT_EQ(req.cpuCores, 4u);
    EXPECT_EQ(req.memBytes, 123u);
    EXPECT_TRUE(req.gpu);
}

} // namespace
} // namespace erec::cluster
