/**
 * @file
 * Tests for the architecture gate's engine (tools/archlint/arch_core):
 * include extraction must ignore comments and string literals, the
 * layer check must honor the transitive closure of layers.conf,
 * cycles must be reported with a concrete path, malformed configs
 * must raise erec::ConfigError (the CLI's exit 2), and the JSON
 * rendering is pinned by a golden document (it is uploaded as a CI
 * artifact, so its shape is a contract).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "elasticrec/common/error.h"
#include "tools/archlint/arch_core.h"

namespace erec::archlint {
namespace {

/**
 * The layer DAG used throughout: serving and cluster sit on runtime,
 * runtime on obs and common — so closure(serving) = {runtime, obs,
 * common}, and cluster is *not* reachable from common or serving.
 */
const char *kConf =
    "# test DAG\n"
    "common:\n"
    "obs: common\n"
    "runtime: common obs   # trailing comments are fine\n"
    "serving: runtime\n"
    "cluster: runtime\n"
    "tests: *\n";

std::string
lib(const std::string &module, const std::string &name)
{
    return "src/elasticrec/" + module + "/" + name;
}

TEST(ArchLintTest, ExtractIncludesIgnoresCommentsAndStrings)
{
    const std::string content =
        "#pragma once\n"
        "// #include \"elasticrec/cluster/hpa.h\"\n"
        "/* #include \"elasticrec/cluster/metrics.h\" */\n"
        "#include \"elasticrec/common/units.h\"\n"
        "#include <vector>\n"
        "const char *s = \"#include \\\"elasticrec/sim/pod.h\\\"\";\n"
        "const char *r = R\"(\n"
        "#include \"elasticrec/sim/csv.h\"\n"
        ")\";\n";
    const auto includes = extractIncludes(content);
    ASSERT_EQ(includes.size(), 2u);
    EXPECT_EQ(includes[0].path, "elasticrec/common/units.h");
    EXPECT_EQ(includes[0].line, 4);
    EXPECT_FALSE(includes[0].angled);
    EXPECT_EQ(includes[1].path, "vector");
    EXPECT_TRUE(includes[1].angled);
}

TEST(ArchLintTest, ModuleOfMapsLibraryAndTopLevelPaths)
{
    EXPECT_EQ(moduleOf("src/elasticrec/core/planner.h"), "core");
    EXPECT_EQ(moduleOf("src/elasticrec/obs/slo.cc"), "obs");
    EXPECT_EQ(moduleOf("tools/archlint/arch_core.cc"), "tools");
    EXPECT_EQ(moduleOf("tests/planner_test.cpp"), "tests");
    EXPECT_EQ(moduleOf("bench/bench_util.h"), "bench");
    EXPECT_EQ(moduleOf("./src/elasticrec/hw/network.h"), "hw");
}

TEST(ArchLintTest, ParseLayerConfigBuildsTransitiveClosure)
{
    const auto config = parseLayerConfig(kConf);
    EXPECT_EQ(config.order.size(), 6u);
    EXPECT_TRUE(config.declares("serving"));
    EXPECT_TRUE(config.wildcard.count("tests"));
    // Direct: serving -> runtime only; closure adds obs and common.
    EXPECT_TRUE(config.allows("serving", "runtime"));
    EXPECT_TRUE(config.allows("serving", "obs"));
    EXPECT_TRUE(config.allows("serving", "common"));
    EXPECT_FALSE(config.allows("serving", "cluster"));
    EXPECT_FALSE(config.allows("common", "obs"));
    // Intra-module and wildcard are always allowed.
    EXPECT_TRUE(config.allows("common", "common"));
    EXPECT_TRUE(config.allows("tests", "cluster"));
}

TEST(ArchLintTest, MalformedConfigRaisesConfigError)
{
    // Each of these maps to exit 2 in the CLI (benchdiff convention).
    EXPECT_THROW(parseLayerConfig("common\n"), erec::ConfigError);
    EXPECT_THROW(parseLayerConfig("bad name: common\n"),
                 erec::ConfigError);
    EXPECT_THROW(parseLayerConfig("a:\na:\n"), erec::ConfigError);
    EXPECT_THROW(parseLayerConfig("a: ghost\n"), erec::ConfigError);
    EXPECT_THROW(parseLayerConfig("a: a\n"), erec::ConfigError);
    // The declared DAG itself must be acyclic.
    EXPECT_THROW(parseLayerConfig("a: b\nb: a\n"), erec::ConfigError);
    // Line numbers point at the offending entry.
    try {
        parseLayerConfig("common:\nbroken line\n");
        FAIL() << "expected ConfigError";
    } catch (const erec::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(ArchLintTest, TransitiveClosureEdgesPassTheGate)
{
    const FileSet files = {
        {lib("common", "units.h"), "#pragma once\n"},
        {lib("obs", "metric.h"),
         "#include \"elasticrec/common/units.h\"\n"},
        {lib("runtime", "executor.h"),
         "#include \"elasticrec/obs/metric.h\"\n"},
        // serving -> common is only allowed *transitively* (via
        // runtime -> obs -> common); the gate must accept it.
        {lib("serving", "server.h"),
         "#include \"elasticrec/runtime/executor.h\"\n"
         "#include \"elasticrec/common/units.h\"\n"},
    };
    const auto analysis = analyze(files, parseLayerConfig(kConf));
    EXPECT_TRUE(analysis.pass()) << renderText(analysis);
    EXPECT_EQ(analysis.fileCount, 4u);
    EXPECT_EQ(analysis.edgeCount, 4u);
}

TEST(ArchLintTest, InvertedLayerEdgeFailsTheGate)
{
    // The acceptance demo: common/ reaching up into cluster/ inverts
    // the DAG. Violations make the CLI exit 1 with the path printed.
    const FileSet files = {
        {lib("cluster", "hpa.h"), "#pragma once\n"},
        {lib("common", "units.h"),
         "#pragma once\n#include \"elasticrec/cluster/hpa.h\"\n"},
    };
    const auto analysis = analyze(files, parseLayerConfig(kConf));
    ASSERT_FALSE(analysis.pass());
    ASSERT_EQ(analysis.violations.size(), 1u);
    const Violation &v = analysis.violations[0];
    EXPECT_EQ(v.kind, "layer-edge");
    EXPECT_EQ(v.file, lib("common", "units.h"));
    EXPECT_EQ(v.line, 2);
    EXPECT_EQ(v.fromModule, "common");
    EXPECT_EQ(v.toModule, "cluster");
    // The offending include path is printed in the report.
    EXPECT_NE(renderText(analysis).find("elasticrec/cluster/hpa.h"),
              std::string::npos);
    EXPECT_NE(renderText(analysis).find("FAIL"), std::string::npos);
}

TEST(ArchLintTest, WildcardModulesAreUnconstrained)
{
    const FileSet files = {
        {lib("cluster", "hpa.h"), "#pragma once\n"},
        {"tests/hpa_test.cpp",
         "#include \"elasticrec/cluster/hpa.h\"\n"},
    };
    EXPECT_TRUE(analyze(files, parseLayerConfig(kConf)).pass());
}

TEST(ArchLintTest, UndeclaredModuleFlagged)
{
    const FileSet files = {
        {lib("mystery", "new_thing.h"), "#pragma once\n"},
    };
    const auto analysis = analyze(files, parseLayerConfig(kConf));
    ASSERT_EQ(analysis.violations.size(), 1u);
    EXPECT_EQ(analysis.violations[0].kind, "undeclared-module");
    EXPECT_NE(analysis.violations[0].message.find("mystery"),
              std::string::npos);
}

TEST(ArchLintTest, TwoNodeCycleReportedWithPath)
{
    // Synthetic header cycle (second half of the acceptance demo):
    // a.h <-> b.h must fail the gate with the cycle path printed.
    const FileSet files = {
        {lib("common", "a.h"),
         "#pragma once\n#include \"elasticrec/common/b.h\"\n"},
        {lib("common", "b.h"),
         "#pragma once\n#include \"elasticrec/common/a.h\"\n"},
    };
    const auto analysis = analyze(files, parseLayerConfig(kConf));
    ASSERT_FALSE(analysis.pass());
    ASSERT_EQ(analysis.violations.size(), 1u);
    const Violation &v = analysis.violations[0];
    EXPECT_EQ(v.kind, "include-cycle");
    EXPECT_NE(v.message.find("src/elasticrec/common/a.h -> "
                             "src/elasticrec/common/b.h -> "
                             "src/elasticrec/common/a.h"),
              std::string::npos)
        << v.message;
}

TEST(ArchLintTest, ThreeNodeCycleReportedOnce)
{
    const FileSet files = {
        {lib("common", "a.h"), "#include \"elasticrec/common/b.h\"\n"},
        {lib("common", "b.h"), "#include \"elasticrec/common/c.h\"\n"},
        {lib("common", "c.h"), "#include \"elasticrec/common/a.h\"\n"},
    };
    const auto analysis = analyze(files, parseLayerConfig(kConf));
    ASSERT_EQ(analysis.violations.size(), 1u);
    const std::string &msg = analysis.violations[0].message;
    // The path walks all three members and returns to its start.
    for (const char *member : {"common/a.h", "common/b.h", "common/c.h"})
        EXPECT_NE(msg.find(member), std::string::npos) << msg;
    EXPECT_NE(msg.find("a.h -> "), std::string::npos);
    EXPECT_NE(msg.rfind("-> src/elasticrec/common/a.h"),
              std::string::npos);
}

TEST(ArchLintTest, AcyclicDiamondIsNotACycle)
{
    const FileSet files = {
        {lib("common", "d.h"), "#pragma once\n"},
        {lib("common", "b.h"), "#include \"elasticrec/common/d.h\"\n"},
        {lib("common", "c.h"), "#include \"elasticrec/common/d.h\"\n"},
        {lib("common", "a.h"),
         "#include \"elasticrec/common/b.h\"\n"
         "#include \"elasticrec/common/c.h\"\n"},
    };
    EXPECT_TRUE(analyze(files, parseLayerConfig(kConf)).pass());
}

TEST(ArchLintTest, RelativeAndRootIncludesResolve)
{
    const FileSet files = {
        {"bench/bench_util.h", "#pragma once\n"},
        // Relative include (same directory), tools-rooted include and
        // an unresolvable include (ignored, never an edge).
        {"bench/fig.cpp",
         "#include \"bench_util.h\"\n"
         "#include \"tools/archlint/arch_core.h\"\n"
         "#include \"no/such/file.h\"\n"},
        {"tools/archlint/arch_core.h", "#pragma once\n"},
    };
    const auto analysis = analyze(
        files, parseLayerConfig("bench: *\ntools: *\n"));
    EXPECT_TRUE(analysis.pass());
    EXPECT_EQ(analysis.edgeCount, 2u);
}

TEST(ArchLintTest, JsonRenderingMatchesGolden)
{
    const FileSet files = {
        {lib("cluster", "hpa.h"), "#pragma once\n"},
        {lib("common", "units.h"),
         "#pragma once\n#include \"elasticrec/cluster/hpa.h\"\n"},
    };
    const auto analysis = analyze(files, parseLayerConfig(kConf));
    const std::string expected =
        "{\n"
        "  \"schema\": \"erec_archlint/v1\",\n"
        "  \"files\": 2,\n"
        "  \"edges\": 1,\n"
        "  \"pass\": false,\n"
        "  \"violations\": [\n"
        "    {\n"
        "      \"kind\": \"layer-edge\",\n"
        "      \"file\": \"src/elasticrec/common/units.h\",\n"
        "      \"line\": 2,\n"
        "      \"from\": \"common\",\n"
        "      \"to\": \"cluster\",\n"
        "      \"message\": \"`common` may not include `cluster` "
        "(elasticrec/cluster/hpa.h); allowed for `common`: <nothing> "
        "— add the edge to layers.conf only if the DAG stays acyclic, "
        "else forward-declare or move code down a layer\"\n"
        "    }\n"
        "  ]\n"
        "}\n";
    EXPECT_EQ(renderJson(analysis), expected);

    // Clean trees close the array inline and carry pass=true.
    const auto clean = analyze(
        {{lib("common", "units.h"), "#pragma once\n"}},
        parseLayerConfig(kConf));
    EXPECT_NE(renderJson(clean).find("\"pass\": true"),
              std::string::npos);
    EXPECT_NE(renderJson(clean).find("\"violations\": []"),
              std::string::npos);
}

} // namespace
} // namespace erec::archlint
