/**
 * @file
 * Determinism regression tests: the whole pipeline from a seeded Rng
 * through sampled access counts, the access CDF, the DP partitioner and
 * the deployment planner must produce byte-identical results when run
 * twice from the same seed. This dynamically guards the repo's
 * no-unseeded-randomness lint rule (tools/lint) — any std::rand /
 * random_device / time() sneaking into the pipeline shows up here as a
 * plan diff.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <ios>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "elasticrec/common/rng.h"
#include "elasticrec/core/dp_partitioner.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/embedding/access_cdf.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/model/dlrm_config.h"
#include "elasticrec/workload/access_distribution.h"

namespace erec::core {
namespace {

constexpr std::uint64_t kSeed = 0xE1A57ECu;

/**
 * One full planning run from a fresh seed: sample an access stream,
 * build the per-table CDF, and plan. Everything downstream of `seed`
 * must be a pure function of it.
 */
embedding::AccessCdf
sampledCdf(std::uint64_t seed, std::uint64_t num_rows)
{
    Rng rng(seed);
    workload::LocalityDistribution dist(num_rows, 0.8);
    std::vector<std::uint64_t> counts(num_rows, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[dist.sampleRank(rng)];
    std::sort(counts.begin(), counts.end(),
              std::greater<std::uint64_t>());
    return embedding::AccessCdf::fromSortedCounts(counts, 256);
}

/** Byte-exact serialization of a plan (hexfloat for doubles). */
std::string
serialize(const DeploymentPlan &plan)
{
    std::ostringstream oss;
    oss << std::hexfloat;
    oss << plan.policy << "\n";
    for (const auto &s : plan.shards) {
        oss << s.name << "|" << toString(s.kind) << "|" << s.tableId
            << "|" << s.shardId << "|" << s.beginRow << "|" << s.endRow
            << "|" << s.memBytes << "|" << s.cpuCores << "|" << s.usesGpu
            << "|" << s.qpsPerReplica << "|" << s.serviceLatency << "|"
            << s.expectedGathers;
        for (const auto t : s.stageLatencies)
            oss << "|" << t;
        oss << "|r" << DeploymentPlan::replicasForTarget(s, 5000.0)
            << "\n";
    }
    oss << "mem=" << plan.memoryForTarget(5000.0) << "\n";
    return oss.str();
}

std::string
serialize(const PartitionPlan &plan)
{
    std::ostringstream oss;
    oss << std::hexfloat << plan.cost;
    for (const auto b : plan.boundaries)
        oss << "|" << b;
    return oss.str();
}

TEST(DeterminismTest, SampledCdfIsSeedDeterministic)
{
    const auto a = sampledCdf(kSeed, 50000);
    const auto b = sampledCdf(kSeed, 50000);
    ASSERT_EQ(a.granules(), b.granules());
    for (std::uint32_t g = 0; g <= a.granules(); ++g)
        EXPECT_EQ(a.massAtGranule(g), b.massAtGranule(g)) << "g=" << g;
    // A different seed must actually change the sampled stream,
    // otherwise this test would pass vacuously.
    const auto c = sampledCdf(kSeed + 1, 50000);
    bool any_diff = false;
    for (std::uint32_t g = 0; g <= a.granules() && !any_diff; ++g)
        any_diff = a.massAtGranule(g) != c.massAtGranule(g);
    EXPECT_TRUE(any_diff);
}

TEST(DeterminismTest, DpPartitionerIsDeterministic)
{
    auto run = [](std::uint64_t seed) {
        const auto cdf = sampledCdf(seed, 50000);
        auto cost = [&cdf](std::uint64_t begin, std::uint64_t end) {
            return cdf.massOfRange(begin, end) *
                       static_cast<double>(end - begin) +
                   1000.0;
        };
        DpPartitioner::Options options;
        options.maxShards = 8;
        options.granules = 128;
        DpPartitioner dp(cdf.numRows(), cost, options);
        return serialize(dp.findOptimalPlan());
    };
    EXPECT_EQ(run(kSeed), run(kSeed));
}

TEST(DeterminismTest, PlannerProducesByteIdenticalPlans)
{
    auto run = [](std::uint64_t seed) {
        auto config = model::rm1();
        config.numTables = 2;
        config.rowsPerTable = 50000;
        Planner planner = Planner::forPlatform(config, hw::cpuOnlyNode());
        auto cdf = std::make_shared<const embedding::AccessCdf>(
            sampledCdf(seed, config.rowsPerTable));
        return serialize(planner.planElasticRec({cdf}));
    };
    const std::string first = run(kSeed);
    const std::string second = run(kSeed);
    EXPECT_EQ(first, second);
    EXPECT_FALSE(first.empty());
}

} // namespace
} // namespace erec::core
