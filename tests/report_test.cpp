/**
 * @file
 * Tests for per-stage latency attribution and report rendering
 * (elasticrec/obs/report): span-name normalization, stage aggregation
 * over hand-built traces, alert-log rollups, the text renderers, and a
 * full-simulation cross-check where every query is traced and the
 * attribution totals must match the run's own SimResult accounting.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "elasticrec/core/planner.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/obs/report.h"
#include "elasticrec/sim/cluster_sim.h"
#include "elasticrec/sim/experiment.h"

namespace erec::obs {
namespace {

TEST(StageOfTest, StripsPerDeploymentSegment)
{
    EXPECT_EQ(stageOf("sparse/rm1-sparse-0/queue"), "sparse/queue");
    EXPECT_EQ(stageOf("sparse/rm1-sparse-0/service"), "sparse/service");
    EXPECT_EQ(stageOf("rpc/rm1-sparse-1/request"), "rpc/request");
    EXPECT_EQ(stageOf("rpc/rm1-sparse-1/response"), "rpc/response");
    // One- and two-segment names are already stage names.
    EXPECT_EQ(stageOf("dense/compute"), "dense/compute");
    EXPECT_EQ(stageOf("mono/queue"), "mono/queue");
    EXPECT_EQ(stageOf("merge"), "merge");
}

QueryTrace
completedTrace(std::uint64_t id, SimTime arrival, SimTime completion)
{
    QueryTrace t;
    t.queryId = id;
    t.arrival = arrival;
    t.completion = completion;
    t.completed = true;
    return t;
}

TEST(AttributeStagesTest, AggregatesNormalizedStages)
{
    std::vector<QueryTrace> traces;
    // Query 0: 10 ms end to end; queue 2 ms, two shard RPCs 4 ms each.
    auto a = completedTrace(0, 0, 10 * units::kMillisecond);
    a.addSpan("dense/queue", 0, 2 * units::kMillisecond);
    a.addSpan("rpc/s0/request", 2 * units::kMillisecond,
              6 * units::kMillisecond);
    a.addSpan("rpc/s1/request", 2 * units::kMillisecond,
              6 * units::kMillisecond);
    traces.push_back(a);
    // Query 1: 20 ms end to end; queue 6 ms.
    auto b = completedTrace(1, 100 * units::kMillisecond,
                            120 * units::kMillisecond);
    b.addSpan("dense/queue", 100 * units::kMillisecond,
              106 * units::kMillisecond);
    traces.push_back(b);
    // Query 2: lost — spans must not contribute.
    QueryTrace lost;
    lost.queryId = 2;
    lost.arrival = 200 * units::kMillisecond;
    lost.addSpan("dense/queue", 200 * units::kMillisecond,
                 201 * units::kMillisecond);
    traces.push_back(lost);

    const auto report = attributeStages(traces);
    EXPECT_EQ(report.tracedQueries, 3u);
    EXPECT_EQ(report.completedTraces, 2u);
    EXPECT_EQ(report.lostTraces, 1u);
    EXPECT_DOUBLE_EQ(report.endToEndTotalMs, 30.0);
    EXPECT_DOUBLE_EQ(report.meanEndToEndMs, 15.0);

    ASSERT_EQ(report.stages.size(), 2u);
    // dense/queue: 2 + 6 = 8 ms total, rpc/request: 4 + 4 = 8 ms;
    // equal totals tie-break by name.
    EXPECT_EQ(report.stages[0].stage, "dense/queue");
    EXPECT_EQ(report.stages[0].spans, 2u);
    EXPECT_DOUBLE_EQ(report.stages[0].totalMs, 8.0);
    EXPECT_DOUBLE_EQ(report.stages[0].meanMs, 4.0);
    EXPECT_DOUBLE_EQ(report.stages[0].shareOfEndToEnd, 8.0 / 30.0);
    EXPECT_EQ(report.stages[1].stage, "rpc/request");
    EXPECT_EQ(report.stages[1].spans, 2u);
    EXPECT_DOUBLE_EQ(report.stages[1].totalMs, 8.0);
}

TEST(AttributeStagesTest, OpenSpansStayOutOfSketchesButAreCounted)
{
    std::vector<QueryTrace> traces;
    // A completed trace with one closed span and one span that was
    // still open at export (end precedes start): the open span must
    // not poison the stage statistics with a bogus duration.
    auto a = completedTrace(0, 0, 10 * units::kMillisecond);
    a.addSpan("dense/queue", 0, 2 * units::kMillisecond);
    a.addSpan("dense/compute", 5 * units::kMillisecond, 0);
    traces.push_back(a);
    // A lost trace: every one of its spans is open by definition.
    QueryTrace lost;
    lost.queryId = 1;
    lost.arrival = 50 * units::kMillisecond;
    lost.addSpan("dense/queue", 50 * units::kMillisecond,
                 51 * units::kMillisecond);
    lost.addSpan("rpc/s0/request", 51 * units::kMillisecond,
                 53 * units::kMillisecond);
    traces.push_back(lost);

    const auto report = attributeStages(traces);
    EXPECT_EQ(report.lostTraces, 1u);
    // 1 open span on the completed trace + 2 on the lost trace.
    EXPECT_EQ(report.openSpans, 3u);
    // Only the closed dense/queue span of the completed trace reaches
    // the sketches: no dense/compute stage, no rpc/request stage, and
    // exactly one counted span.
    ASSERT_EQ(report.stages.size(), 1u);
    EXPECT_EQ(report.stages[0].stage, "dense/queue");
    EXPECT_EQ(report.stages[0].spans, 1u);
    EXPECT_DOUBLE_EQ(report.stages[0].totalMs, 2.0);
}

TEST(CriticalPathTest, FollowsTheChildThatBoundsCompletion)
{
    const NameId query = internSpanName("query");
    const NameId rpc = internSpanName("rpc/s0/request");
    const NameId service = internSpanName("sparse/s0/service");
    const NameId dense = internSpanName("dense/compute");

    std::vector<QueryTrace> traces;
    for (int i = 0; i < 2; ++i) {
        auto t = completedTrace(static_cast<std::uint64_t>(i), 0,
                                10 * units::kMillisecond);
        t.traceId = static_cast<std::uint64_t>(i) + 1;
        const std::uint64_t rpc_id = (kRootSpanId << 8) | 3;
        t.addSpan(query, 0, 10 * units::kMillisecond, kRootSpanId, 0);
        // The gather RPC (ends at 9 ms) bounds completion; dense
        // compute (5 ms) does not.
        t.addSpan(rpc, 0, 9 * units::kMillisecond, rpc_id,
                  kRootSpanId);
        t.addSpan(service, 2 * units::kMillisecond,
                  8 * units::kMillisecond, (rpc_id << 8) | 2, rpc_id);
        t.addSpan(dense, 0, 5 * units::kMillisecond,
                  (kRootSpanId << 8) | 2, kRootSpanId);
        traces.push_back(t);
    }
    // A lost trace contributes nothing to critical paths.
    QueryTrace lost;
    lost.queryId = 9;
    traces.push_back(lost);

    const auto report = analyzeCriticalPaths(traces);
    EXPECT_EQ(report.analyzedTraces, 2u);
    ASSERT_EQ(report.chains.size(), 1u);
    // Per-deployment segments normalize away, so many-shard runs
    // aggregate into a handful of readable chains.
    EXPECT_EQ(report.chains[0].chain,
              "query > rpc/request > sparse/service");
    EXPECT_EQ(report.chains[0].count, 2u);
    EXPECT_DOUBLE_EQ(report.chains[0].meanMs, 10.0);
}

TEST(CriticalPathTest, FlatLegacyTracesDegradeToOneHop)
{
    std::vector<QueryTrace> traces;
    auto t = completedTrace(0, 0, 10 * units::kMillisecond);
    t.addSpan("mono/queue", 0, 2 * units::kMillisecond);
    t.addSpan("mono/service", 2 * units::kMillisecond,
              9 * units::kMillisecond);
    traces.push_back(t);

    const auto report = analyzeCriticalPaths(traces);
    ASSERT_EQ(report.chains.size(), 1u);
    EXPECT_EQ(report.chains[0].chain, "mono/service");
}

TEST(AttributeStagesTest, EmptyInputYieldsEmptyReport)
{
    const auto report = attributeStages(std::vector<QueryTrace>{});
    EXPECT_TRUE(report.stages.empty());
    EXPECT_EQ(report.tracedQueries, 0u);
    EXPECT_DOUBLE_EQ(report.endToEndTotalMs, 0.0);
}

TEST(SummarizeAlertsTest, RollsUpTransitionsPerAlert)
{
    std::vector<AlertEvent> events;
    events.push_back({1 * units::kSecond, "a", true, 2.0});
    events.push_back({2 * units::kSecond, "a", false, 0.5});
    events.push_back({3 * units::kSecond, "b", true, 9.0});
    events.push_back({4 * units::kSecond, "a", true, 3.0});

    const auto verdicts = summarizeAlerts(events);
    ASSERT_EQ(verdicts.size(), 2u);
    EXPECT_EQ(verdicts[0].alert, "a");
    EXPECT_EQ(verdicts[0].fired, 2u);
    EXPECT_EQ(verdicts[0].resolved, 1u);
    EXPECT_TRUE(verdicts[0].firingAtEnd);
    EXPECT_EQ(verdicts[1].alert, "b");
    EXPECT_EQ(verdicts[1].fired, 1u);
    EXPECT_EQ(verdicts[1].resolved, 0u);
    EXPECT_TRUE(verdicts[1].firingAtEnd);
    EXPECT_TRUE(summarizeAlerts({}).empty());
}

TEST(ReportRenderTest, SectionsAreSelfDescribing)
{
    std::ostringstream empty_table;
    writeStageTable(empty_table, attributeStages(std::vector<QueryTrace>{}));
    EXPECT_NE(empty_table.str().find("no completed traces"),
              std::string::npos);

    std::ostringstream empty_paths;
    writeCriticalPathTable(empty_paths,
                           analyzeCriticalPaths(std::vector<QueryTrace>{}));
    EXPECT_NE(empty_paths.str().find("no completed traces"),
              std::string::npos);

    std::ostringstream pass;
    writeSloVerdicts(pass, {});
    EXPECT_NE(pass.str().find("PASS"), std::string::npos);

    std::vector<AlertEvent> events = {
        {5 * units::kSecond, "lost-queries", true, 3.0}};
    std::ostringstream verdicts;
    writeSloVerdicts(verdicts, summarizeAlerts(events));
    EXPECT_NE(verdicts.str().find("lost-queries"), std::string::npos);

    std::ostringstream timeline;
    writeAlertTimeline(timeline, events);
    EXPECT_NE(timeline.str().find("FIRING"), std::string::npos);
    std::ostringstream no_timeline;
    writeAlertTimeline(no_timeline, {});
    EXPECT_NE(no_timeline.str().find("empty"), std::string::npos);
}

TEST(ReportSimTest, StageSumsCrossCheckSimResult)
{
    // Trace every query, then the attribution totals are not samples
    // but the exact population the SimResult accounted.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    core::Planner planner = core::Planner::forPlatform(config, node);
    const auto plan = planner.planElasticRec({sim::cdfFor(config, 256)});
    sim::SimOptions opt;
    opt.seed = 11;
    opt.traceSampleEvery = 1;
    sim::ClusterSimulation sim(plan, node,
                               workload::TrafficPattern::constant(25.0),
                               opt);
    const auto r = sim.run(2 * units::kMinute);
    ASSERT_GT(r.completed, 0u);

    const auto report = attributeStages(sim.traces());
    EXPECT_EQ(report.tracedQueries, r.arrivals);
    EXPECT_EQ(report.completedTraces, r.completed);
    EXPECT_EQ(report.lostTraces, r.arrivals - r.completed);

    // Mean end-to-end latency of the traces is the run's mean latency.
    EXPECT_NEAR(report.meanEndToEndMs, r.meanLatencyMs,
                1e-9 * r.meanLatencyMs);
    EXPECT_NEAR(report.endToEndTotalMs,
                r.meanLatencyMs * static_cast<double>(r.completed),
                1e-6 * report.endToEndTotalMs);

    // Every span lies inside its query, so a stage with one span per
    // query (the frontend stages) cannot contribute more than the
    // summed end-to-end latency; fan-out stages (one span per shard
    // RPC) may, which is exactly the overlap the report calls out.
    ASSERT_FALSE(report.stages.empty());
    bool saw_frontend_stage = false;
    for (const auto &stage : report.stages) {
        EXPECT_GT(stage.spans, 0u) << stage.stage;
        if (stage.spans == report.completedTraces) {
            saw_frontend_stage = true;
            EXPECT_LE(stage.totalMs,
                      report.endToEndTotalMs * (1 + 1e-9))
                << stage.stage;
        }
        EXPECT_NEAR(stage.totalMs / report.endToEndTotalMs,
                    stage.shareOfEndToEnd, 1e-12)
            << stage.stage;
    }
    EXPECT_TRUE(saw_frontend_stage);
}

} // namespace
} // namespace erec::obs
