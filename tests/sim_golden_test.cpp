/**
 * @file
 * End-to-end pins on the event-driven simulator core:
 *
 *  - the compat-tick fig19 reproduction must match the pre-refactor
 *    closure engine byte-for-byte (goldens under tests/golden/),
 *  - EventTime sampling must produce the identical SimResult (it only
 *    changes per-pod gauge export),
 *  - the steady query path must be allocation-free (AllocGate pin on
 *    the sim.query_path region).
 *
 * EREC_TEST_GOLDEN_DIR is injected by the build and points at the
 * checked-in golden CSVs.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/model/dlrm_config.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/sim/cluster_sim.h"
#include "elasticrec/sim/csv.h"
#include "elasticrec/sim/experiment.h"
#include "elasticrec/workload/traffic.h"

namespace erec::sim {
namespace {

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing golden file " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

struct Fig19Setup
{
    model::DlrmConfig config = model::rm1();
    hw::NodeSpec node = hw::cpuOnlyNode();
    workload::TrafficPattern traffic =
        workload::TrafficPattern::fig19();
    core::DeploymentPlan elasticRec;
    core::DeploymentPlan modelWise;

    Fig19Setup()
    {
        core::Planner planner = core::Planner::forPlatform(config, node);
        const auto cdf = cdfFor(config, 1024);
        elasticRec = planner.planElasticRec({cdf});
        modelWise = planner.planModelWise();
    }
};

SimOptions
fig19Options()
{
    SimOptions opt;
    opt.seed = 42;
    return opt;
}

std::string
csvOf(const SimResult &result)
{
    std::ostringstream out;
    writeSimResultCsv(out, result);
    return out.str();
}

TEST(SimGoldenTest, Fig19CompatTickIsByteIdentical)
{
    // The event-driven engine must reproduce the closure engine's
    // fig19 output exactly: same schedule order => same FIFO
    // tie-breaks => same RNG draw order => identical CSV bytes.
    const Fig19Setup setup;
    const SimTime duration = 28 * units::kMinute;

    ClusterSimulation er(setup.elasticRec, setup.node, setup.traffic,
                         fig19Options());
    EXPECT_EQ(csvOf(er.run(duration)),
              readFile(std::string(EREC_TEST_GOLDEN_DIR) +
                       "/fig19_elasticrec.csv"));

    ClusterSimulation mw(setup.modelWise, setup.node, setup.traffic,
                         fig19Options());
    EXPECT_EQ(csvOf(mw.run(duration)),
              readFile(std::string(EREC_TEST_GOLDEN_DIR) +
                       "/fig19_modelwise.csv"));
}

TEST(SimGoldenTest, TracingLeavesResultsUntouched)
{
    // Deterministic trace sampling consumes no randomness: a traced
    // run's CSV is identical to the untraced golden.
    const Fig19Setup setup;
    SimOptions opt = fig19Options();
    opt.traceSampleEvery = 100;
    ClusterSimulation er(setup.elasticRec, setup.node, setup.traffic,
                         opt);
    const auto result = er.run(28 * units::kMinute);
    EXPECT_EQ(csvOf(result),
              readFile(std::string(EREC_TEST_GOLDEN_DIR) +
                       "/fig19_elasticrec.csv"));
    EXPECT_FALSE(er.traces().empty());
}

TEST(SimGoldenTest, EventTimeSamplingMatchesCompatTick)
{
    // The modes differ only in per-pod gauge export; every number in
    // the SimResult must be identical.
    const Fig19Setup setup;
    const SimTime duration = 10 * units::kMinute;

    SimOptions compat = fig19Options();
    compat.sampling = SamplingMode::CompatTick;
    ClusterSimulation a(setup.elasticRec, setup.node, setup.traffic,
                        compat);
    const auto ra = a.run(duration);

    SimOptions event_time = fig19Options();
    event_time.sampling = SamplingMode::EventTime;
    ClusterSimulation b(setup.elasticRec, setup.node, setup.traffic,
                        event_time);
    const auto rb = b.run(duration);

    EXPECT_EQ(csvOf(ra), csvOf(rb));
    EXPECT_EQ(ra.arrivals, rb.arrivals);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(ra.slaViolations, rb.slaViolations);
    EXPECT_EQ(ra.meanLatencyMs, rb.meanLatencyMs);
    EXPECT_EQ(ra.p95LatencyOverallMs, rb.p95LatencyOverallMs);
    EXPECT_EQ(ra.peakMemory, rb.peakMemory);
    EXPECT_EQ(ra.scaleEvents, rb.scaleEvents);
    EXPECT_EQ(ra.finalReplicas, rb.finalReplicas);

    // And the mode must actually change the export surface: compat
    // publishes per-pod depth gauges, event-time does not.
    const auto compat_export = obs::toPrometheusText(a.observability());
    const auto event_export = obs::toPrometheusText(b.observability());
    EXPECT_NE(compat_export.find("erec_pod_queue_depth"),
              std::string::npos);
    EXPECT_EQ(event_export.find("erec_pod_queue_depth{"),
              std::string::npos);
}

TEST(SimGoldenTest, SteadyQueryPathIsAllocationFree)
{
    // Warm one simulation past its peak in-flight population, zero the
    // region counters, then keep running: the gated query-path events
    // (arrival, RPC arrival, stage done, component done) must not
    // allocate at all.
    //
    // The warm-up leg runs at twice the measurement rate on the same
    // fixed fleet, so every capacity high-water mark (stage rings,
    // query arena, event heap, rate windows) is set during warm-up —
    // at equal rates the depth maximum keeps creeping up and any new
    // record would allocate once inside the gate.
    const Fig19Setup setup;
    SimOptions opt;
    opt.seed = 7;
    opt.autoscale = false; // fixed fleet: no pod churn
    opt.warmStart = true;  // sized for the 90-QPS warm-up rate
    opt.sampling = SamplingMode::EventTime;
    const workload::TrafficPattern warm_then_measure(
        {{0, 90.0}, {30 * units::kSecond, 45.0}});
    ClusterSimulation er(setup.elasticRec, setup.node,
                         warm_then_measure, opt);
    er.run(30 * units::kSecond);

    resetAllocRegionStats();
    // Same simulation object: the clock, arena and rings carry over,
    // so this second leg is pure steady state.
    const auto result = er.run(90 * units::kSecond);
    EXPECT_GT(result.completed, 1000u);

    bool found = false;
    for (const auto &region : allocRegionStats()) {
        if (std::string(region.name) != "sim.query_path")
            continue;
        found = true;
        EXPECT_GT(region.enters, 0u)
            << "gate never entered: the pin is vacuous";
        EXPECT_EQ(region.allocs, 0u)
            << "query-path events allocated on the steady path";
    }
    EXPECT_TRUE(found) << "sim.query_path region not registered";
}

} // namespace
} // namespace erec::sim
