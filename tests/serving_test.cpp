/**
 * @file
 * Integration tests for the serving layer: the sharded microservice
 * path (bucketize -> per-shard gather RPC -> merge -> interaction) must
 * produce outputs numerically identical to the monolithic server, for
 * sorted and unsorted tables, across partition plans.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "elasticrec/embedding/frequency_tracker.h"
#include "elasticrec/serving/monolithic_server.h"
#include "elasticrec/serving/stack_builder.h"

namespace erec::serving {
namespace {

model::DlrmConfig
tinyConfig(std::uint32_t tables = 3)
{
    auto c = model::rm1();
    c.name = "tiny";
    c.rowsPerTable = 500;
    c.numTables = tables;
    c.poolingFactor = 6;
    c.batchSize = 4;
    return c;
}

workload::Query
makeQuery(const model::DlrmConfig &config, std::uint64_t seed)
{
    workload::QueryShape shape;
    shape.batchSize = config.batchSize;
    shape.numTables = config.numTables;
    shape.gathersPerItem = config.poolingFactor;
    workload::QueryGenerator gen(
        shape,
        std::make_shared<workload::LocalityDistribution>(
            config.rowsPerTable, 0.9),
        seed);
    return gen.next();
}

class ShardedEquivalence
    : public ::testing::TestWithParam<std::vector<std::uint64_t>>
{
};

TEST_P(ShardedEquivalence, MatchesMonolithicIdentityOrder)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);
    MonolithicServer mono(dlrm);
    auto stack =
        buildElasticRecStack(dlrm, {TablePlan{.boundaries = GetParam()}});

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto q = makeQuery(config, seed);
        const auto expect = mono.serve(q);
        const auto got = stack.frontend->serve(q);
        ASSERT_EQ(expect.size(), got.size());
        for (std::size_t i = 0; i < expect.size(); ++i)
            EXPECT_NEAR(expect[i], got[i], 1e-5) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(
    PartitionPlans, ShardedEquivalence,
    ::testing::Values(std::vector<std::uint64_t>{500},
                      std::vector<std::uint64_t>{50, 500},
                      std::vector<std::uint64_t>{10, 100, 500},
                      std::vector<std::uint64_t>{1, 2, 3, 250, 500}));

TEST(ServingTest, MatchesMonolithicWithHotnessPermutation)
{
    // Full production flow: record access history, sort by hotness,
    // partition in sorted space, bucketize via the inverse
    // permutation — results must still match the monolithic server.
    const auto config = tinyConfig(2);
    auto dlrm = std::make_shared<model::Dlrm>(config);
    MonolithicServer mono(dlrm);

    embedding::FrequencyTracker tracker(config.rowsPerTable);
    for (std::uint64_t seed = 100; seed < 120; ++seed) {
        const auto q = makeQuery(config, seed);
        for (const auto &l : q.lookups)
            tracker.recordAll(l.indices);
    }
    const auto perm = tracker.sortPermutation();
    auto stack = buildElasticRecStack(
        dlrm, {TablePlan{.boundaries = {30, 150, 500}, .sortPerm = perm}});

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto q = makeQuery(config, seed);
        const auto expect = mono.serve(q);
        const auto got = stack.frontend->serve(q);
        for (std::size_t i = 0; i < expect.size(); ++i)
            EXPECT_NEAR(expect[i], got[i], 1e-5) << "seed " << seed;
    }
}

TEST(ServingTest, PerTablePlansAndPerms)
{
    const auto config = tinyConfig(2);
    auto dlrm = std::make_shared<model::Dlrm>(config);
    MonolithicServer mono(dlrm);

    std::vector<std::uint32_t> identity(config.rowsPerTable);
    std::iota(identity.begin(), identity.end(), 0u);
    auto reversed = identity;
    std::reverse(reversed.begin(), reversed.end());

    auto stack = buildElasticRecStack(
        dlrm,
        {TablePlan{.boundaries = {100, 500}, .sortPerm = identity},
         TablePlan{.boundaries = {250, 400, 500}, .sortPerm = reversed}});
    const auto q = makeQuery(config, 9);
    const auto expect = mono.serve(q);
    const auto got = stack.frontend->serve(q);
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_NEAR(expect[i], got[i], 1e-5);
}

TEST(ServingTest, SparseShardLoadAccounting)
{
    const auto config = tinyConfig(1);
    auto dlrm = std::make_shared<model::Dlrm>(config);
    auto stack =
        buildElasticRecStack(dlrm, {TablePlan{.boundaries = {50, 500}}});
    const auto q = makeQuery(config, 3);
    stack.frontend->serve(q);
    std::uint64_t gathered = 0;
    for (const auto &s : stack.shards[0])
        gathered += s->rowsGathered();
    EXPECT_EQ(gathered, q.lookups[0].numGathers());
}

TEST(ServingTest, ShardMemoryTilesTable)
{
    const auto config = tinyConfig(1);
    auto dlrm = std::make_shared<model::Dlrm>(config);
    auto stack = buildElasticRecStack(
        dlrm, {TablePlan{.boundaries = {50, 200, 500}}});
    Bytes total = 0;
    for (const auto &s : stack.shards[0])
        total += s->memBytes();
    EXPECT_EQ(total, dlrm->table(0)->totalBytes());
}

TEST(ServingTest, MonolithicMemBytes)
{
    const auto config = tinyConfig(2);
    auto dlrm = std::make_shared<model::Dlrm>(config);
    MonolithicServer mono(dlrm);
    EXPECT_EQ(mono.memBytes(), config.totalParamBytes());
}

TEST(ServingTest, PaperScaleVirtualTablesEquivalence)
{
    // Full paper-scale RM1 table geometry (20M rows x dim 32) with
    // virtual (hash-synthesized) storage: the complete microservice
    // data path runs on a laptop and still matches the monolithic
    // forward bit for bit.
    auto config = model::rm1();
    config.numTables = 2; // keep runtime modest; geometry unchanged
    auto dlrm = std::make_shared<model::Dlrm>(
        config, embedding::Storage::Virtual);
    MonolithicServer mono(dlrm);

    // Paper-like partitioning points in sorted space.
    const std::vector<std::uint64_t> boundaries = {
        600'000, 2'000'000, 12'000'000, 20'000'000};
    auto stack =
        buildElasticRecStack(dlrm, {TablePlan{.boundaries = boundaries}});

    workload::QueryShape shape;
    shape.batchSize = config.batchSize;
    shape.numTables = config.numTables;
    shape.gathersPerItem = config.poolingFactor;
    workload::QueryGenerator gen(
        shape,
        std::make_shared<workload::LocalityDistribution>(
            config.rowsPerTable, config.localityP),
        12345);

    const auto q = gen.next();
    const auto expect = mono.serve(q);
    const auto got = stack.frontend->serve(q);
    ASSERT_EQ(expect.size(), got.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_NEAR(expect[i], got[i], 1e-5);
}

} // namespace
} // namespace erec::serving
