/**
 * @file
 * Unit tests for the statistics primitives: running moments, exact and
 * windowed percentiles, rate windows, time series and histograms.
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/common/stats.h"

namespace erec {
namespace {

TEST(RunningStatTest, MomentsOfKnownSequence)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
    // Sample variance of this classic sequence is 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStatTest, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatTest, ResetClearsState)
{
    RunningStat s;
    s.add(10.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.sum(), 0.0);
}

TEST(PercentileTrackerTest, ExactQuantiles)
{
    PercentileTracker t;
    for (int i = 1; i <= 100; ++i)
        t.add(static_cast<double>(i));
    EXPECT_NEAR(t.quantile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(t.quantile(1.0), 100.0, 1e-9);
    EXPECT_NEAR(t.p50(), 50.5, 1e-9);
    EXPECT_NEAR(t.quantile(0.95), 95.05, 1e-9);
    EXPECT_NEAR(t.mean(), 50.5, 1e-9);
}

TEST(PercentileTrackerTest, InterleavedAddAndQuery)
{
    PercentileTracker t;
    t.add(5.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 5.0);
    t.add(1.0);
    t.add(9.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(t.quantile(0.0), 1.0);
}

TEST(PercentileTrackerTest, EmptyReturnsZero)
{
    PercentileTracker t;
    EXPECT_EQ(t.quantile(0.5), 0.0);
    EXPECT_EQ(t.mean(), 0.0);
}

TEST(WindowedPercentileTest, ExpiresOldSamples)
{
    WindowedPercentile w(10 * units::kSecond);
    w.add(0, 100.0);
    w.add(5 * units::kSecond, 200.0);
    w.add(12 * units::kSecond, 300.0);
    // At t = 14s the window is [4s, 14s]: the sample at t = 0 is gone.
    EXPECT_DOUBLE_EQ(w.quantile(14 * units::kSecond, 0.0), 200.0);
    EXPECT_DOUBLE_EQ(w.quantile(14 * units::kSecond, 1.0), 300.0);
    // At t = 30s everything has expired.
    EXPECT_DOUBLE_EQ(w.quantile(30 * units::kSecond, 0.5), 0.0);
}

TEST(RateWindowTest, RateOverWindow)
{
    RateWindow r(10 * units::kSecond);
    for (int i = 0; i < 50; ++i)
        r.add(i * 200 * units::kMillisecond); // 5 events/sec for 10s
    EXPECT_NEAR(r.rate(10 * units::kSecond), 5.0, 0.3);
    EXPECT_EQ(r.total(), 50u);
    // After a long quiet period the rate decays to zero.
    EXPECT_NEAR(r.rate(60 * units::kSecond), 0.0, 1e-9);
    EXPECT_EQ(r.total(), 50u);
}

TEST(RateWindowTest, BatchCounts)
{
    RateWindow r(units::kSecond);
    r.add(0, 10);
    EXPECT_NEAR(r.rate(0), 10.0, 1e-9);
}

TEST(TimeSeriesTest, MaxAndMean)
{
    TimeSeries s;
    s.add(0, 1.0);
    s.add(1, 5.0);
    s.add(2, 3.0);
    EXPECT_DOUBLE_EQ(s.maxValue(), 5.0);
    EXPECT_DOUBLE_EQ(s.meanValue(), 3.0);
    EXPECT_EQ(s.size(), 3u);
}

TEST(HistogramTest, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.add(-1.0);  // underflow
    h.add(0.0);   // bucket 0
    h.add(9.99);  // bucket 9
    h.add(10.0);  // overflow (hi is exclusive)
    h.add(5.5);   // bucket 5
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_DOUBLE_EQ(h.bucketLow(5), 5.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(5), 6.0);
}

TEST(HistogramTest, RejectsEmptyRange)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), ConfigError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), ConfigError);
}

} // namespace
} // namespace erec
