/**
 * @file
 * Tests for the partitioned (sharded) table view: range math, shard
 * lookup, permutation composition and shard-local gathers.
 */

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "elasticrec/common/error.h"
#include "elasticrec/embedding/sharded_table.h"

namespace erec::embedding {
namespace {

std::shared_ptr<EmbeddingTable>
makeTable(std::uint64_t rows = 10, std::uint32_t dim = 4)
{
    return std::make_shared<EmbeddingTable>(rows, dim);
}

TEST(ShardedTableTest, RangesAndBytes)
{
    ShardedTable st(makeTable(10, 4), {}, {6, 10});
    EXPECT_EQ(st.numShards(), 2u);
    EXPECT_EQ(st.shardRange(0).begin, 0u);
    EXPECT_EQ(st.shardRange(0).end, 6u);
    EXPECT_EQ(st.shardRange(1).begin, 6u);
    EXPECT_EQ(st.shardRange(1).end, 10u);
    EXPECT_EQ(st.shardBytes(0), 6u * 16);
    EXPECT_EQ(st.shardBytes(1), 4u * 16);
}

TEST(ShardedTableTest, ShardOfRankAndLocalId)
{
    ShardedTable st(makeTable(10, 4), {}, {6, 10});
    EXPECT_EQ(st.shardOfRank(0), 0u);
    EXPECT_EQ(st.shardOfRank(5), 0u);
    EXPECT_EQ(st.shardOfRank(6), 1u);
    EXPECT_EQ(st.shardOfRank(9), 1u);
    EXPECT_EQ(st.localId(5), 5u);
    EXPECT_EQ(st.localId(6), 0u);
    EXPECT_EQ(st.localId(9), 3u);
}

TEST(ShardedTableTest, IdentityPermutationOriginalIds)
{
    ShardedTable st(makeTable(10, 4), {}, {10});
    for (std::uint32_t r = 0; r < 10; ++r)
        EXPECT_EQ(st.originalId(r), r);
}

TEST(ShardedTableTest, PermutationMapsRankToOriginal)
{
    // Reverse permutation: rank r holds original row 9-r.
    std::vector<std::uint32_t> perm(10);
    for (std::uint32_t i = 0; i < 10; ++i)
        perm[i] = 9 - i;
    ShardedTable st(makeTable(10, 4), perm, {5, 10});
    EXPECT_EQ(st.originalId(0), 9u);
    EXPECT_EQ(st.originalId(9), 0u);
}

TEST(ShardedTableTest, GatherPoolUsesPermutedRows)
{
    auto table = makeTable(10, 4);
    std::vector<std::uint32_t> perm(10);
    for (std::uint32_t i = 0; i < 10; ++i)
        perm[i] = 9 - i;
    ShardedTable st(table, perm, {5, 10});

    // Shard 1 covers ranks [5, 10) = original rows {4,3,2,1,0}.
    // Gather local IDs {0, 2} in shard 1 = ranks {5, 7} = rows {4, 2}.
    std::vector<std::uint32_t> local = {0, 2};
    std::vector<std::uint32_t> offsets = {0};
    std::vector<float> out(4);
    st.gatherPool(1, {local, offsets}, out.data());
    for (std::uint32_t d = 0; d < 4; ++d)
        EXPECT_FLOAT_EQ(out[d], table->at(4, d) + table->at(2, d));
}

TEST(ShardedTableTest, GatherEscapingShardThrows)
{
    ShardedTable st(makeTable(10, 4), {}, {5, 10});
    std::vector<std::uint32_t> local = {5}; // shard 0 has rows [0, 5)
    std::vector<std::uint32_t> offsets = {0};
    std::vector<float> out(4);
    EXPECT_THROW(st.gatherPool(0, {local, offsets}, out.data()),
                 ConfigError);
}

TEST(ShardedTableTest, ShardGathersEqualWholeTableGather)
{
    // Partition-invariance: gathering rank IDs through shards and
    // summing equals gathering the same rows from the whole table.
    auto table = makeTable(20, 8);
    std::vector<std::uint32_t> perm(20);
    std::iota(perm.begin(), perm.end(), 0u);
    std::reverse(perm.begin(), perm.end());
    ShardedTable st(table, perm, {7, 13, 20});

    const std::vector<std::uint32_t> ranks = {0, 3, 8, 12, 13, 19, 6};
    // Whole-table reference: sum original rows for all ranks.
    std::vector<float> expect(8, 0.0f);
    for (auto r : ranks) {
        for (std::uint32_t d = 0; d < 8; ++d)
            expect[d] += table->at(st.originalId(r), d);
    }
    // Shard-wise: bucket the ranks by shard, gather each, sum.
    std::vector<float> got(8, 0.0f);
    for (std::uint32_t s = 0; s < st.numShards(); ++s) {
        std::vector<std::uint32_t> local;
        for (auto r : ranks)
            if (st.shardOfRank(r) == s)
                local.push_back(static_cast<std::uint32_t>(
                    st.localId(r)));
        if (local.empty())
            continue;
        std::vector<std::uint32_t> offsets = {0};
        std::vector<float> part(8);
        st.gatherPool(s, {local, offsets}, part.data());
        for (int d = 0; d < 8; ++d)
            got[d] += part[d];
    }
    for (int d = 0; d < 8; ++d)
        EXPECT_FLOAT_EQ(got[d], expect[d]);
}

TEST(ShardedTableTest, RejectsBadBoundaries)
{
    EXPECT_THROW(ShardedTable(makeTable(10, 4), {}, {}), ConfigError);
    EXPECT_THROW(ShardedTable(makeTable(10, 4), {}, {5, 5, 10}),
                 ConfigError);
    EXPECT_THROW(ShardedTable(makeTable(10, 4), {}, {5, 9}),
                 ConfigError);
    EXPECT_THROW(ShardedTable(makeTable(10, 4),
                              std::vector<std::uint32_t>(3), {10}),
                 ConfigError);
}

} // namespace
} // namespace erec::embedding
