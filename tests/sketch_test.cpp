// Tests for the streaming quantile sketch: relative-error bound against
// exact quantiles, lossless merging, allocation behaviour after warm-up,
// input hygiene (NaN / negatives), and sliding-window semantics.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/common/rng.h"
#include "elasticrec/common/units.h"
#include "elasticrec/obs/sketch.h"

namespace {

using erec::SimTime;
using erec::obs::QuantileSketch;
using erec::obs::WindowedQuantileSketch;
namespace units = erec::units;

double
exactQuantile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    const auto rank = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    return samples[rank];
}

std::vector<double>
lognormalSamples(std::size_t n)
{
    erec::Rng rng(1234);
    std::vector<double> samples;
    samples.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // Box-Muller from two uniforms: heavy-ish latency-like tail.
        const double u1 = std::max(rng.uniform(), 1e-12);
        const double u2 = rng.uniform();
        const double z =
            std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307 * u2);
        samples.push_back(std::exp(0.7 * z) * 50.0);
    }
    return samples;
}

TEST(QuantileSketch, RelativeErrorBoundOnSkewedWorkload)
{
    const auto samples = lognormalSamples(20000);
    QuantileSketch sketch(0.01);
    for (double x : samples)
        sketch.insert(x);
    ASSERT_EQ(sketch.count(), samples.size());
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        const double exact = exactQuantile(samples, q);
        const double approx = sketch.quantile(q);
        EXPECT_NEAR(approx, exact, 0.02 * exact)
            << "q=" << q << " exact=" << exact;
    }
}

TEST(QuantileSketch, RelativeErrorBoundOnUniformGrid)
{
    QuantileSketch sketch(0.01);
    std::vector<double> samples;
    for (int i = 1; i <= 10000; ++i) {
        samples.push_back(static_cast<double>(i));
        sketch.insert(static_cast<double>(i));
    }
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
        const double exact = exactQuantile(samples, q);
        EXPECT_NEAR(sketch.quantile(q), exact, 0.02 * exact) << "q=" << q;
    }
}

TEST(QuantileSketch, MergedPodSketchesEqualDeploymentSketch)
{
    const auto samples = lognormalSamples(6000);
    // Deployment-level sketch fed the union of all samples.
    QuantileSketch whole(0.01);
    for (double x : samples)
        whole.insert(x);
    // Three "pod" sketches fed disjoint interleaved shards, merged.
    QuantileSketch pods[3] = {QuantileSketch(0.01), QuantileSketch(0.01),
                              QuantileSketch(0.01)};
    for (std::size_t i = 0; i < samples.size(); ++i)
        pods[i % 3].insert(samples[i]);
    QuantileSketch merged(0.01);
    for (const auto &pod : pods)
        merged.merge(pod);

    EXPECT_EQ(merged.count(), whole.count());
    // Sums differ only by float accumulation order across pods.
    EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9 * whole.sum());
    for (double q = 0.0; q <= 1.0; q += 0.01)
        EXPECT_DOUBLE_EQ(merged.quantile(q), whole.quantile(q)) << "q=" << q;
}

TEST(QuantileSketch, MergeRejectsMismatchedAccuracy)
{
    QuantileSketch a(0.01);
    QuantileSketch b(0.02);
    EXPECT_THROW(a.merge(b), erec::ConfigError);
}

TEST(QuantileSketch, NoAllocationAfterWarmup)
{
    const auto samples = lognormalSamples(5000);
    QuantileSketch sketch(0.01);
    for (double x : samples)
        sketch.insert(x);
    const std::size_t warm = sketch.bucketArraySize();
    // Replaying values inside the seen range must not grow the bucket
    // array: insert stays O(1) with no per-sample allocation.
    for (double x : samples)
        sketch.insert(x);
    EXPECT_EQ(sketch.bucketArraySize(), warm);
}

TEST(QuantileSketch, NanDroppedNegativeSaturatesToZero)
{
    QuantileSketch sketch;
    sketch.insert(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(sketch.count(), 0u);
    EXPECT_EQ(sketch.sum(), 0.0);

    sketch.insert(-5.0);
    sketch.insert(10.0);
    EXPECT_EQ(sketch.count(), 2u);
    EXPECT_DOUBLE_EQ(sketch.sum(), 10.0); // negative saturated, not added
    EXPECT_DOUBLE_EQ(sketch.quantile(0.0), 0.0);
    EXPECT_FALSE(std::isnan(sketch.quantile(0.5)));
}

TEST(QuantileSketch, EmptyAndClear)
{
    QuantileSketch sketch;
    EXPECT_EQ(sketch.quantile(0.5), 0.0);
    sketch.insert(3.0);
    sketch.clear();
    EXPECT_EQ(sketch.count(), 0u);
    EXPECT_EQ(sketch.sum(), 0.0);
    EXPECT_EQ(sketch.quantile(0.99), 0.0);
}

TEST(QuantileSketch, MeanAndMaxTrackExactValues)
{
    QuantileSketch sketch;
    EXPECT_EQ(sketch.mean(), 0.0);
    EXPECT_EQ(sketch.maxValue(), 0.0);
    sketch.insert(2.0);
    sketch.insert(4.0);
    sketch.insert(12.0);
    // Exact, not bucket-quantized: (2 + 4 + 12) / 3 and max 12.
    EXPECT_DOUBLE_EQ(sketch.mean(), 6.0);
    EXPECT_DOUBLE_EQ(sketch.maxValue(), 12.0);

    // Merge folds per-thread maxima into the true tail.
    QuantileSketch other;
    other.insert(100.0);
    sketch.merge(other);
    EXPECT_DOUBLE_EQ(sketch.maxValue(), 100.0);
    EXPECT_DOUBLE_EQ(sketch.mean(), 118.0 / 4.0);

    sketch.clear();
    EXPECT_EQ(sketch.mean(), 0.0);
    EXPECT_EQ(sketch.maxValue(), 0.0);
}

TEST(QuantileSketch, RejectsBadAccuracy)
{
    EXPECT_THROW(QuantileSketch(0.0), erec::ConfigError);
    EXPECT_THROW(QuantileSketch(1.0), erec::ConfigError);
}

TEST(WindowedQuantileSketch, OldSamplesExpire)
{
    WindowedQuantileSketch sketch(10 * units::kSecond);
    // A burst of slow samples early, then fast samples much later.
    for (int i = 0; i < 100; ++i)
        sketch.add(i * units::kMillisecond, 500.0);
    const SimTime later = 60 * units::kSecond;
    for (int i = 0; i < 100; ++i)
        sketch.add(later + i * units::kMillisecond, 10.0);
    // At `later` the early burst has left the window entirely.
    EXPECT_EQ(sketch.count(later + units::kSecond), 100u);
    EXPECT_NEAR(sketch.quantile(later + units::kSecond, 0.95), 10.0, 0.5);
}

TEST(WindowedQuantileSketch, WindowCoversRecentSamples)
{
    WindowedQuantileSketch sketch(30 * units::kSecond);
    for (int i = 0; i < 30; ++i)
        sketch.add(i * units::kSecond, static_cast<double>(i + 1));
    const SimTime now = 29 * units::kSecond;
    // All 30 samples are within the trailing 30 s window.
    EXPECT_EQ(sketch.count(now), 30u);
    EXPECT_NEAR(sketch.quantile(now, 1.0), 30.0, 0.02 * 30.0);
    EXPECT_NEAR(sketch.quantile(now, 0.0), 1.0, 0.02 * 1.0);
}

TEST(WindowedQuantileSketch, Deterministic)
{
    auto run = [] {
        WindowedQuantileSketch sketch(5 * units::kSecond, 4);
        const auto samples = lognormalSamples(2000);
        for (std::size_t i = 0; i < samples.size(); ++i)
            sketch.add(static_cast<SimTime>(i) * 10 * units::kMillisecond,
                       samples[i]);
        return sketch.quantile(20 * units::kSecond, 0.95);
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(WindowedQuantileSketch, RejectsBadConfig)
{
    EXPECT_THROW(WindowedQuantileSketch(0), erec::ConfigError);
    EXPECT_THROW(WindowedQuantileSketch(units::kSecond, 1),
                 erec::ConfigError);
}

} // namespace
