/**
 * @file
 * Tests for the deployment planners: ElasticRec shard generation,
 * model-wise baseline, the GPU-cache variant, and the plan-level
 * properties the paper's evaluation depends on (hot shards need more
 * replicas, ElasticRec consumes less memory at equal target QPS, the
 * sorting ablation degrades the plan).
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/sim/experiment.h"

namespace erec::core {
namespace {

model::DlrmConfig
smallConfig()
{
    auto c = model::rm1();
    c.numTables = 2;
    return c;
}

TEST(PlannerTest, ElasticRecPlanShape)
{
    const auto config = smallConfig();
    Planner planner(config, hw::cpuOnlyNode());
    const auto plan = planner.planElasticRec({sim::cdfFor(config)});
    EXPECT_EQ(plan.policy, "elasticrec");

    // Exactly one dense shard plus >= 1 sparse shard per table.
    int dense = 0;
    std::vector<int> per_table(config.numTables, 0);
    for (const auto &s : plan.shards) {
        if (s.kind == ShardKind::Dense)
            ++dense;
        else if (s.kind == ShardKind::SparseEmbedding)
            ++per_table[s.tableId];
    }
    EXPECT_EQ(dense, 1);
    for (auto n : per_table)
        EXPECT_GE(n, 1);

    // Sparse shards tile the table exactly.
    for (std::uint32_t t = 0; t < config.numTables; ++t) {
        const auto shards = plan.tableShards(t);
        std::uint64_t expect_begin = 0;
        for (const auto *s : shards) {
            EXPECT_EQ(s->beginRow, expect_begin);
            expect_begin = s->endRow;
        }
        EXPECT_EQ(expect_begin, config.rowsPerTable);
    }
}

TEST(PlannerTest, ShardGathersSumToTableGathers)
{
    const auto config = smallConfig();
    Planner planner(config, hw::cpuOnlyNode());
    const auto plan = planner.planElasticRec({sim::cdfFor(config)});
    for (std::uint32_t t = 0; t < config.numTables; ++t) {
        double total = 0;
        for (const auto *s : plan.tableShards(t))
            total += s->expectedGathers;
        EXPECT_NEAR(total,
                    static_cast<double>(
                        config.gathersPerQueryPerTable()),
                    1.0);
    }
}

TEST(PlannerTest, HotterShardsNeedMoreReplicas)
{
    const auto config = smallConfig();
    Planner planner(config, hw::cpuOnlyNode());
    const auto plan = planner.planElasticRec({sim::cdfFor(config)});
    const auto shards = plan.tableShards(0);
    ASSERT_GE(shards.size(), 2u);
    // Shard 0 (hottest) must demand at least as many replicas as the
    // coldest shard, and strictly lower per-replica QPS.
    const auto hot = DeploymentPlan::replicasForTarget(*shards.front(),
                                                       100.0);
    const auto cold = DeploymentPlan::replicasForTarget(*shards.back(),
                                                        100.0);
    EXPECT_GE(hot, cold);
    EXPECT_LT(shards.front()->qpsPerReplica,
              shards.back()->qpsPerReplica);
}

TEST(PlannerTest, ModelWisePlan)
{
    const auto config = smallConfig();
    Planner planner(config, hw::cpuOnlyNode());
    const auto plan = planner.planModelWise();
    ASSERT_EQ(plan.shards.size(), 1u);
    const auto &mono = plan.shards[0];
    EXPECT_EQ(mono.kind, ShardKind::Monolithic);
    EXPECT_EQ(mono.memBytes,
              config.totalParamBytes() +
                  planner.options().minMemAlloc);
    ASSERT_EQ(mono.stageLatencies.size(), 2u);
    EXPECT_EQ(mono.serviceLatency,
              mono.stageLatencies[0] + mono.stageLatencies[1]);
    // Throughput set by the slower stage.
    const double expect_qps =
        1.0 / units::toSeconds(std::max(mono.stageLatencies[0],
                                        mono.stageLatencies[1]));
    EXPECT_NEAR(mono.qpsPerReplica, expect_qps, expect_qps * 0.01);
}

TEST(PlannerTest, ElasticRecUsesLessMemoryAtEqualTarget)
{
    // The paper's headline property, at paper scale (RM1).
    const auto config = model::rm1();
    Planner planner(config, hw::cpuOnlyNode());
    const auto er = planner.planElasticRec({sim::cdfFor(config)});
    const auto mw = planner.planModelWise();
    for (double target : {100.0, 200.0, 400.0}) {
        EXPECT_LT(er.memoryForTarget(target),
                  mw.memoryForTarget(target))
            << "target " << target;
    }
}

TEST(PlannerTest, SortingAblationDegradesPlan)
{
    // Figure 8(a) vs 8(b): partitioning an unsorted table loses the
    // hot/cold separation, costing memory at equal target QPS.
    const auto config = model::rm1();
    Planner sorted(config, hw::cpuOnlyNode());
    PlannerOptions opt;
    opt.sortTables = false;
    Planner unsorted(config, hw::cpuOnlyNode(), opt);
    const auto cdf = sim::cdfFor(config);
    const auto plan_sorted = sorted.planElasticRec({cdf});
    const auto plan_unsorted = unsorted.planElasticRec({cdf});
    EXPECT_LT(plan_sorted.memoryForTarget(100.0),
              plan_unsorted.memoryForTarget(100.0));
}

TEST(PlannerTest, ForceShardsOverridesDp)
{
    const auto config = smallConfig();
    PlannerOptions opt;
    opt.forceShards = 7;
    Planner planner(config, hw::cpuOnlyNode(), opt);
    const auto plan = planner.planElasticRec({sim::cdfFor(config)});
    EXPECT_EQ(plan.tableShards(0).size(), 7u);
}

TEST(PlannerTest, GpuCacheFasterThanPlainModelWise)
{
    const auto config = model::rm1();
    Planner planner = Planner::forPlatform(config, hw::cpuGpuNode());
    const auto mw = planner.planModelWise();
    const auto cache = planner.planModelWiseGpuCache(0.9);
    EXPECT_GT(cache.frontendShard().qpsPerReplica,
              mw.frontendShard().qpsPerReplica);
    EXPECT_LT(cache.memoryForTarget(200.0),
              mw.memoryForTarget(200.0));
}

TEST(PlannerTest, GpuCacheRequiresGpu)
{
    Planner planner(smallConfig(), hw::cpuOnlyNode());
    EXPECT_THROW(planner.planModelWiseGpuCache(0.9), ConfigError);
    Planner gpu = Planner::forPlatform(smallConfig(), hw::cpuGpuNode());
    EXPECT_THROW(gpu.planModelWiseGpuCache(0.0), ConfigError);
    EXPECT_THROW(gpu.planModelWiseGpuCache(1.0), ConfigError);
}

TEST(PlannerTest, DenseShardUsesGpuOnGpuPlatform)
{
    Planner gpu = Planner::forPlatform(smallConfig(), hw::cpuGpuNode());
    const auto plan = gpu.planElasticRec({sim::cdfFor(smallConfig())});
    EXPECT_TRUE(plan.frontendShard().usesGpu);
    for (const auto &s : plan.shards) {
        if (s.kind == ShardKind::SparseEmbedding) {
            EXPECT_FALSE(s.usesGpu);
        }
    }
}

TEST(PlannerTest, ReplicasForTargetMath)
{
    ShardSpec spec;
    spec.qpsPerReplica = 30.0;
    EXPECT_EQ(DeploymentPlan::replicasForTarget(spec, 100.0), 4u);
    EXPECT_EQ(DeploymentPlan::replicasForTarget(spec, 30.0), 1u);
    EXPECT_EQ(DeploymentPlan::replicasForTarget(spec, 1.0), 1u);
}

TEST(PlannerTest, DefaultOptionsPerPlatform)
{
    EXPECT_EQ(defaultPlannerOptions(hw::cpuOnlyNode()).sparseCores, 1u);
    EXPECT_EQ(defaultPlannerOptions(hw::cpuGpuNode()).sparseCores, 2u);
}

TEST(PlannerTest, RejectsBadCdfSets)
{
    const auto config = smallConfig();
    Planner planner(config, hw::cpuOnlyNode());
    EXPECT_THROW(planner.planElasticRec({}), ConfigError);
    EXPECT_THROW(planner.planElasticRec({nullptr}), ConfigError);
}

TEST(PlannerTest, ColumnWisePlanShape)
{
    const auto config = smallConfig();
    Planner planner(config, hw::cpuOnlyNode());
    const auto plan = planner.planColumnWise(4);
    EXPECT_EQ(plan.policy, "column-wise");
    // One dense shard + 4 column shards per table.
    EXPECT_EQ(plan.shards.size(),
              1u + 4u * config.numTables);
    for (const auto &s : plan.shards) {
        if (s.kind != ShardKind::SparseEmbedding)
            continue;
        // Every column shard spans all rows and sees the full n_t.
        EXPECT_EQ(s.endRow - s.beginRow, config.rowsPerTable);
        EXPECT_NEAR(s.expectedGathers,
                    static_cast<double>(
                        config.gathersPerQueryPerTable()),
                    1e-6);
    }
}

TEST(PlannerTest, ColumnWiseCannotBeatRowWise)
{
    // Column shards all scale together, so at equal target QPS the
    // hotness-partitioned plan must be at least as memory-efficient.
    const auto config = model::rm1();
    Planner planner(config, hw::cpuOnlyNode());
    const auto row = planner.planElasticRec({sim::cdfFor(config)});
    for (std::uint32_t columns : {2u, 4u, 8u}) {
        const auto col = planner.planColumnWise(columns);
        EXPECT_LE(row.memoryForTarget(100.0),
                  col.memoryForTarget(100.0))
            << columns << " columns";
    }
}

TEST(PlannerTest, ColumnWiseRejectsBadCounts)
{
    Planner planner(smallConfig(), hw::cpuOnlyNode());
    EXPECT_THROW(planner.planColumnWise(0), ConfigError);
    EXPECT_THROW(planner.planColumnWise(33), ConfigError);
    EXPECT_THROW(planner.planColumnWise(5), ConfigError); // 32 % 5 != 0
}

TEST(PlannerTest, HotCacheExtensionShape)
{
    const auto config = smallConfig();
    Planner planner = Planner::forPlatform(config, hw::cpuGpuNode());
    const auto cdf = sim::cdfFor(config);
    const std::uint64_t hot = 1'000'000;
    const auto plan = planner.planElasticRecHotCache({cdf}, hot);
    EXPECT_EQ(plan.policy, "elasticrec-hot-cache");

    // The dense shard absorbs the hot prefixes into its memory.
    const auto &dense = plan.frontendShard();
    EXPECT_GT(dense.memBytes,
              config.denseParamBytes() +
                  hot * Bytes{config.embeddingDim} * 4);

    // Cold shards tile exactly [hot, rowsPerTable).
    for (std::uint32_t t = 0; t < config.numTables; ++t) {
        const auto shards = plan.tableShards(t);
        ASSERT_GE(shards.size(), 1u);
        EXPECT_EQ(shards.front()->beginRow, hot);
        EXPECT_EQ(shards.back()->endRow, config.rowsPerTable);
    }
}

TEST(PlannerTest, HotCacheBeatsPlainElasticRecWhenSkewed)
{
    // With P = 90% and a hot prefix covering most gathers, the
    // extension should not be worse than plain ElasticRec on memory.
    const auto config = model::rm1();
    Planner planner = Planner::forPlatform(config, hw::cpuGpuNode());
    const auto cdf = sim::cdfFor(config);
    const auto er = planner.planElasticRec({cdf});
    const auto hot = planner.planElasticRecHotCache({cdf}, 3'000'000);
    EXPECT_LE(hot.memoryForTarget(200.0), er.memoryForTarget(200.0));
}

TEST(PlannerTest, HotCacheValidation)
{
    const auto config = smallConfig();
    Planner cpu(config, hw::cpuOnlyNode());
    const auto cdf = sim::cdfFor(config);
    EXPECT_THROW(cpu.planElasticRecHotCache({cdf}, 1000), ConfigError);

    Planner gpu = Planner::forPlatform(config, hw::cpuGpuNode());
    EXPECT_THROW(gpu.planElasticRecHotCache({cdf}, 0), ConfigError);
    EXPECT_THROW(gpu.planElasticRecHotCache({cdf},
                                            config.rowsPerTable),
                 ConfigError);
    // Exceeding half the HBM capacity is rejected (32 tables x 3M
    // rows x 128 B = 11.4 GiB > 8 GiB).
    const auto wide = model::rm2();
    Planner gpu_wide = Planner::forPlatform(wide, hw::cpuGpuNode());
    EXPECT_THROW(gpu_wide.planElasticRecHotCache({sim::cdfFor(wide)},
                                                 3'000'000),
                 ConfigError);
}

} // namespace
} // namespace erec::core
