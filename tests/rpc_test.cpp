/**
 * @file
 * Tests for RPC message wire-size accounting and channel latency.
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/rpc/channel.h"
#include "elasticrec/rpc/message.h"

namespace erec::rpc {
namespace {

TEST(MessageTest, GatherRequestBytes)
{
    GatherRequest req;
    req.numIndices = 100;
    req.numOffsets = 32;
    EXPECT_EQ(req.wireBytes(), kMessageHeaderBytes + 4 * (100 + 32));
}

TEST(MessageTest, GatherResponseBytes)
{
    GatherResponse resp;
    resp.batch = 32;
    resp.dim = 32;
    EXPECT_EQ(resp.wireBytes(), kMessageHeaderBytes + 4 * 32 * 32);
}

TEST(MessageTest, InferenceMessages)
{
    InferenceRequest req;
    req.batch = 32;
    req.denseDim = 256;
    req.totalIndices = 4096;
    EXPECT_EQ(req.wireBytes(),
              kMessageHeaderBytes + 4ull * 32 * 256 + 4ull * 4096);
    InferenceResponse resp;
    resp.batch = 32;
    EXPECT_EQ(resp.wireBytes(), kMessageHeaderBytes + 4 * 32);
}

TEST(ChannelTest, OneWayIncludesAllTerms)
{
    hw::NetworkLink link(1e9, 100);
    Channel ch(link, 2e9, 150);
    // 1 MB: serialization 500 us + base 100 us + transfer 1000 us +
    // per-call 150 us.
    EXPECT_EQ(ch.oneWay(1'000'000), 150 + 500 + 100 + 1000);
}

TEST(ChannelTest, RoundTripIsBothLegs)
{
    hw::NetworkLink link(1e9, 100);
    Channel ch(link, 2e9, 150);
    EXPECT_EQ(ch.roundTrip(1000, 2000),
              ch.oneWay(1000) + ch.oneWay(2000));
}

TEST(ChannelTest, LargerMessagesTakeLonger)
{
    Channel ch(hw::NetworkLink(hw::cpuOnlyNode()));
    EXPECT_LT(ch.oneWay(100), ch.oneWay(1'000'000));
}

TEST(ChannelTest, RejectsBadParameters)
{
    hw::NetworkLink link(1e9, 0);
    EXPECT_THROW(Channel(link, 0.0, 10), ConfigError);
    EXPECT_THROW(Channel(link, 1e9, -5), ConfigError);
}

TEST(ChannelTest, BatchedCallsPayOverheadOnce)
{
    Channel ch(hw::NetworkLink(1e9, 100), 2e9, 150);
    // A batch of one is exactly an individual call.
    EXPECT_EQ(ch.batchedOneWay(1, 1000), ch.oneWay(1000));
    EXPECT_EQ(ch.batchedRoundTrip(1, 1000, 2000),
              ch.roundTrip(1000, 2000));
    // Coalescing n requests beats n individual calls: the per-call
    // stack overhead and base link latency are paid once per leg.
    EXPECT_LT(ch.batchedRoundTrip(8, 1000, 2000),
              8 * ch.roundTrip(1000, 2000));
    // The saving is exactly (n - 1) fixed costs per leg when the
    // variable costs scale linearly in bytes.
    EXPECT_EQ(ch.batchedOneWay(4, 1000),
              ch.oneWay(4 * 1000));
    EXPECT_THROW(ch.batchedOneWay(0, 1000), ConfigError);
    EXPECT_THROW(ch.batchedRoundTrip(0, 1000, 2000), ConfigError);
}

TEST(ChannelTest, ElasticRecOverheadRegime)
{
    // The per-query communication overhead added by ElasticRec's RPC
    // fan-out should be in the tens-of-milliseconds regime the paper
    // reports (31 ms CPU-only / 60 ms CPU-GPU) when accumulated over a
    // query's gather round trips, not per message.
    Channel ch(hw::NetworkLink(hw::cpuOnlyNode()));
    GatherRequest req;
    req.numIndices = 4096;
    req.numOffsets = 32;
    GatherResponse resp;
    resp.batch = 32;
    resp.dim = 32;
    const SimTime rt = ch.roundTrip(req.wireBytes(), resp.wireBytes());
    // One shard round trip costs single-digit milliseconds at most.
    EXPECT_LT(rt, 10 * units::kMillisecond);
    EXPECT_GT(rt, 100); // and is not free
}

} // namespace
} // namespace erec::rpc
