/**
 * @file
 * Integration tests for the concurrent serving runtime: the executor
 * determinism contract (serial mode byte-identical to the pre-executor
 * path, concurrent mode bit-identical to serial), the dispatcher's
 * batching statistics, and a many-client stress run that gives TSan a
 * real concurrent serving workload to chew on.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "elasticrec/cluster/deployment.h"
#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/runtime/executor.h"
#include "elasticrec/serving/stack_builder.h"

namespace erec::serving {
namespace {

model::DlrmConfig
tinyConfig()
{
    auto c = model::rm1();
    c.name = "tiny";
    c.rowsPerTable = 500;
    c.numTables = 3;
    c.poolingFactor = 6;
    c.batchSize = 4;
    return c;
}

workload::Query
makeQuery(const model::DlrmConfig &config, std::uint64_t seed)
{
    workload::QueryShape shape;
    shape.batchSize = config.batchSize;
    shape.numTables = config.numTables;
    shape.gathersPerItem = config.poolingFactor;
    workload::QueryGenerator gen(
        shape,
        std::make_shared<workload::LocalityDistribution>(
            config.rowsPerTable, 0.9),
        seed);
    return gen.next();
}

ElasticRecStack
makeStack(const std::shared_ptr<const model::Dlrm> &dlrm,
          std::size_t workers, bool with_executor = true)
{
    StackOptions options;
    options.observability = std::make_shared<obs::Registry>();
    if (with_executor) {
        runtime::ExecutorOptions exec_opts;
        exec_opts.workers = workers;
        exec_opts.maxBatchSize = 4;
        exec_opts.maxBatchDelayUs = 100;
        options.executor =
            std::make_shared<runtime::Executor>(exec_opts);
    }
    return buildElasticRecStack(
        dlrm, {TablePlan{.boundaries = {10, 100, 500}}}, options);
}

TEST(RuntimeServingTest, SerialExecutorByteIdenticalToNoExecutorPath)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);
    auto plain = makeStack(dlrm, 0, /*with_executor=*/false);
    auto serial = makeStack(dlrm, 0);
    ASSERT_TRUE(serial.executor->serial());
    ASSERT_NE(serial.dispatcher, nullptr);

    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto q = makeQuery(config, seed);
        const auto expect = plain.frontend->serve(q);
        const auto got = serial.submit(q).get();
        ASSERT_EQ(expect.size(), got.size());
        // Exact float equality: the serial executor must not change a
        // single bit relative to the pre-executor serving path.
        for (std::size_t i = 0; i < expect.size(); ++i)
            EXPECT_EQ(expect[i], got[i]) << "seed " << seed;
    }
}

TEST(RuntimeServingTest, ConcurrentGathersBitIdenticalToSerial)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);
    auto serial = makeStack(dlrm, 0);
    auto concurrent = makeStack(dlrm, 2);
    ASSERT_FALSE(concurrent.executor->serial());

    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const auto q = makeQuery(config, seed);
        const auto expect = serial.submit(q).get();
        const auto got = concurrent.submit(q).get();
        ASSERT_EQ(expect.size(), got.size());
        // Parallel per-shard partials are merged in fixed shard order,
        // so even FP accumulation must match bit for bit.
        for (std::size_t i = 0; i < expect.size(); ++i)
            EXPECT_EQ(expect[i], got[i]) << "seed " << seed;
    }
}

TEST(RuntimeServingTest, SteadyStateServingDoesNotAllocateInGates)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);
    auto stack = makeStack(dlrm, 2);

    // Warm-up: the first queries grow the batch buffers, queue ring
    // and pool slots to steady-state capacity.
    // (drain() is terminal, so quiesce by getting every future: the
    // pump has finished a batch before its futures resolve.)
    for (std::uint64_t seed = 1; seed <= 16; ++seed)
        stack.submit(makeQuery(config, seed)).get();

    // Steady state: every AllocGate region (queue push/pop, pool
    // dequeue, dispatcher pump bookkeeping, embedding gathers) must
    // observe zero allocations — the dynamic form of the erec_hotpath
    // static contract, and the claim behind the bench's
    // allocs_per_query=0 perf-gate override.
    resetAllocRegionStats();
    for (std::uint64_t seed = 100; seed < 132; ++seed)
        stack.submit(makeQuery(config, seed)).get();
    stack.dispatcher->drain();

    std::uint64_t enters = 0;
    for (const auto &r : allocRegionStats()) {
        EXPECT_EQ(r.allocs, 0u) << "region " << r.name
                                << " allocated on the steady path";
        enters += r.enters;
    }
    // Prove the gates were exercised rather than trivially idle.
    EXPECT_GT(enters, 0u);
}

TEST(RuntimeServingTest, ManyClientsStressConcurrentStack)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);
    auto stack = makeStack(dlrm, 2);
    // Size probe goes through the dispatcher too: with pump loops
    // occupying the pool, an external thread must not call the
    // frontend's parallelFor path directly (see QueryDispatcher docs).
    const std::size_t out_size =
        stack.submit(makeQuery(config, 99)).get().size();

    constexpr int kClients = 4;
    constexpr int kQueriesPerClient = 32;
    std::atomic<int> bad{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&, c] {
            for (int i = 0; i < kQueriesPerClient; ++i) {
                const auto q = makeQuery(
                    config,
                    static_cast<std::uint64_t>(c * 1000 + i + 1));
                const auto out = stack.submit(q).get();
                if (out.size() != out_size)
                    bad.fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(bad.load(), 0);

    stack.dispatcher->drain();
    // Client queries plus the one size probe.
    EXPECT_EQ(stack.dispatcher->queriesServed(),
              static_cast<std::uint64_t>(kClients * kQueriesPerClient) +
                  1);
    const auto hist = stack.dispatcher->batchSizeHistogram();
    std::uint64_t hist_batches = 0, hist_queries = 0;
    for (std::size_t k = 0; k < hist.size(); ++k) {
        hist_batches += hist[k];
        hist_queries += hist[k] * (k + 1);
    }
    EXPECT_EQ(hist_batches, stack.dispatcher->batchesServed());
    EXPECT_EQ(hist_queries, stack.dispatcher->queriesServed());
    EXPECT_GE(stack.dispatcher->meanBatchSize(), 1.0);

    // Publishing the runtime stats must land the executor and
    // dispatcher gauge families in the registry.
    stack.publishStats();
    const auto text = obs::toPrometheusText(*stack.observability);
    EXPECT_NE(text.find("erec_executor_workers"), std::string::npos);
    EXPECT_NE(text.find("erec_serving_queries_served"),
              std::string::npos);
    EXPECT_NE(text.find("erec_serving_batches"), std::string::npos);
}

TEST(RuntimeServingTest, DispatcherSurfacesServeExceptions)
{
    runtime::ExecutorOptions exec_opts;
    exec_opts.workers = 1;
    auto executor = std::make_shared<runtime::Executor>(exec_opts);
    QueryDispatcher dispatcher(
        [](const workload::Query &) -> std::vector<float> {
            throw std::runtime_error("serve boom");
        },
        executor);
    auto fut = dispatcher.submit(makeQuery(tinyConfig(), 1));
    EXPECT_THROW(fut.get(), std::runtime_error);
    dispatcher.drain();
    EXPECT_EQ(dispatcher.queriesServed(), 1u);
}

TEST(RuntimeServingTest, ParallelForCoversIndexSpaceOnceEachMode)
{
    for (const std::size_t workers : {0UL, 2UL}) {
        runtime::ExecutorOptions exec_opts;
        exec_opts.workers = workers;
        runtime::Executor executor(exec_opts);
        std::vector<std::atomic<int>> hits(97);
        executor.parallelFor(hits.size(), [&hits](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1) << "workers=" << workers;
    }
}

TEST(RuntimeServingTest, ExecutorOptionsFollowShardCpuRequest)
{
    core::ShardSpec spec;
    spec.cpuCores = 3;
    EXPECT_EQ(cluster::executorOptionsFor(spec).workers, 3u);
    spec.cpuCores = 0; // Fractional-core requests round up to one.
    EXPECT_EQ(cluster::executorOptionsFor(spec).workers, 1u);
}

} // namespace
} // namespace erec::serving
