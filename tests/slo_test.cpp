// Tests for the SLO alert engine: rule grammar, hold-for firing
// semantics, transition counters/log, and the alert JSONL round trip.

#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/common/units.h"
#include "elasticrec/obs/metric.h"
#include "elasticrec/obs/slo.h"

namespace {

using erec::SimTime;
using erec::obs::AlertEvent;
using erec::obs::AlertRule;
using erec::obs::parseAlertRule;
using erec::obs::Registry;
using erec::obs::SignalKind;
using erec::obs::SloSignal;
using erec::obs::SloTracker;
namespace units = erec::units;

TEST(AlertRuleGrammar, ParsesP95WithHold)
{
    const AlertRule rule =
        parseAlertRule("dense-p95", "p95(dense) > 260ms for 5s");
    EXPECT_EQ(rule.signal.kind, SignalKind::P95);
    EXPECT_EQ(rule.signal.target, "dense");
    EXPECT_DOUBLE_EQ(rule.threshold, 260.0);
    EXPECT_EQ(rule.holdFor, 5 * units::kSecond);
}

TEST(AlertRuleGrammar, ParsesSecondsThresholdAsMillis)
{
    const AlertRule rule = parseAlertRule("p", "p95(rm1) > 0.4s");
    EXPECT_DOUBLE_EQ(rule.threshold, 400.0);
    EXPECT_EQ(rule.holdFor, 0);
}

TEST(AlertRuleGrammar, ParsesPercentAsFraction)
{
    const AlertRule rule =
        parseAlertRule("ratio", "violation_ratio(rm1) > 1%");
    EXPECT_EQ(rule.signal.kind, SignalKind::ViolationRatio);
    EXPECT_DOUBLE_EQ(rule.threshold, 0.01);
}

TEST(AlertRuleGrammar, ParsesBareSignals)
{
    const AlertRule lost = parseAlertRule("lost", "lost_queries > 0");
    EXPECT_EQ(lost.signal.kind, SignalKind::LostQueries);
    EXPECT_TRUE(lost.signal.target.empty());
    EXPECT_DOUBLE_EQ(lost.threshold, 0.0);

    const AlertRule qps = parseAlertRule("qps", "qps(sparse-0) > 120");
    EXPECT_EQ(qps.signal.kind, SignalKind::Qps);
    EXPECT_EQ(qps.signal.target, "sparse-0");

    const AlertRule gauge =
        parseAlertRule("mem", "gauge(memory_gib) > 80 for 500ms");
    EXPECT_EQ(gauge.signal.kind, SignalKind::GaugeValue);
    EXPECT_EQ(gauge.signal.target, "memory_gib");
    EXPECT_EQ(gauge.holdFor, 500 * units::kMillisecond);
}

TEST(AlertRuleGrammar, RejectsMalformedRules)
{
    EXPECT_THROW(parseAlertRule("x", "p96(dense) > 1"),
                 erec::ConfigError);
    EXPECT_THROW(parseAlertRule("x", "p95(dense) < 1"),
                 erec::ConfigError);
    EXPECT_THROW(parseAlertRule("x", "p95(dense) > "), erec::ConfigError);
    EXPECT_THROW(parseAlertRule("x", "p95(dense) > 1 for 5"),
                 erec::ConfigError);
    EXPECT_THROW(parseAlertRule("x", "p95(dense) > 1 forever"),
                 erec::ConfigError);
    EXPECT_THROW(parseAlertRule("x", "p95 > 1"), erec::ConfigError);
    EXPECT_THROW(parseAlertRule("", "lost_queries > 0"),
                 erec::ConfigError);
}

/** Tracker wired to a mutable map of signal values. */
struct Harness
{
    std::map<std::string, double> values;
    SloTracker tracker{[this](const SloSignal &signal, SimTime) {
        const std::string key =
            std::string(toString(signal.kind)) + ":" + signal.target;
        const auto it = values.find(key);
        return it == values.end() ? 0.0 : it->second;
    }};
};

TEST(SloTracker, FiresAfterHoldAndResolves)
{
    Harness h;
    h.tracker.addRule("p95", "p95(dense) > 100ms for 3s");

    h.values["p95:dense"] = 150.0;
    h.tracker.evaluate(1 * units::kSecond);
    EXPECT_FALSE(h.tracker.firing("p95")) << "hold-for not elapsed yet";
    h.tracker.evaluate(2 * units::kSecond);
    EXPECT_FALSE(h.tracker.firing("p95"));
    h.tracker.evaluate(4 * units::kSecond);
    EXPECT_TRUE(h.tracker.firing("p95")) << "breach held for 3s";

    h.values["p95:dense"] = 50.0;
    h.tracker.evaluate(5 * units::kSecond);
    EXPECT_FALSE(h.tracker.firing("p95"));

    ASSERT_EQ(h.tracker.events().size(), 2u);
    EXPECT_EQ(h.tracker.events()[0].alert, "p95");
    EXPECT_TRUE(h.tracker.events()[0].firing);
    EXPECT_EQ(h.tracker.events()[0].time, 4 * units::kSecond);
    EXPECT_DOUBLE_EQ(h.tracker.events()[0].value, 150.0);
    EXPECT_FALSE(h.tracker.events()[1].firing);
    EXPECT_EQ(h.tracker.events()[1].time, 5 * units::kSecond);
}

TEST(SloTracker, InterruptedBreachRestartsHold)
{
    Harness h;
    h.tracker.addRule("p95", "p95(dense) > 100ms for 3s");

    h.values["p95:dense"] = 150.0;
    h.tracker.evaluate(0);
    h.tracker.evaluate(2 * units::kSecond);
    h.values["p95:dense"] = 50.0; // dip below before the hold elapses
    h.tracker.evaluate(3 * units::kSecond);
    h.values["p95:dense"] = 150.0;
    h.tracker.evaluate(4 * units::kSecond);
    h.tracker.evaluate(6 * units::kSecond);
    EXPECT_FALSE(h.tracker.firing("p95")) << "hold restarted at t=4s";
    h.tracker.evaluate(7 * units::kSecond);
    EXPECT_TRUE(h.tracker.firing("p95"));
}

TEST(SloTracker, ZeroHoldFiresImmediately)
{
    Harness h;
    h.tracker.addRule("lost", "lost_queries > 0");
    h.values["lost_queries:"] = 1.0;
    h.tracker.evaluate(7 * units::kSecond);
    EXPECT_TRUE(h.tracker.firing("lost"));
}

TEST(SloTracker, ExportsTransitionCountersAndFiringGauge)
{
    Harness h;
    Registry registry;
    h.tracker.addRule("lost", "lost_queries > 0");
    h.tracker.bindObservability(&registry);

    h.values["lost_queries:"] = 2.0;
    h.tracker.evaluate(units::kSecond);
    EXPECT_EQ(registry.value("erec_alert_firing", {{"alert", "lost"}}),
              1.0);
    EXPECT_EQ(registry.value("erec_alert_transitions_total",
                             {{"alert", "lost"},
                              {"transition", "firing"}}),
              1.0);

    h.values["lost_queries:"] = 0.0;
    h.tracker.evaluate(2 * units::kSecond);
    EXPECT_EQ(registry.value("erec_alert_firing", {{"alert", "lost"}}),
              0.0);
    EXPECT_EQ(registry.value("erec_alert_transitions_total",
                             {{"alert", "lost"},
                              {"transition", "resolved"}}),
              1.0);
}

TEST(SloTracker, ResetClearsStateButKeepsRules)
{
    Harness h;
    h.tracker.addRule("lost", "lost_queries > 0");
    h.values["lost_queries:"] = 1.0;
    h.tracker.evaluate(units::kSecond);
    ASSERT_TRUE(h.tracker.firing("lost"));

    h.tracker.reset();
    EXPECT_FALSE(h.tracker.firing("lost"));
    EXPECT_TRUE(h.tracker.events().empty());
    EXPECT_EQ(h.tracker.ruleCount(), 1u);

    h.tracker.evaluate(units::kSecond);
    EXPECT_TRUE(h.tracker.firing("lost")) << "rules survive reset";
}

TEST(SloTracker, RejectsDuplicateRuleNames)
{
    Harness h;
    h.tracker.addRule("lost", "lost_queries > 0");
    EXPECT_THROW(h.tracker.addRule("lost", "lost_queries > 1"),
                 erec::ConfigError);
}

TEST(AlertJson, RoundTrips)
{
    const std::vector<AlertEvent> events = {
        {5 * units::kSecond, "frontend-p95", true, 312.5},
        {9 * units::kSecond, "frontend-p95", false, 87.25},
        {12 * units::kSecond, "lost-queries", true, 3.0},
    };
    const std::string text = erec::obs::toAlertJsonLines(events);
    const auto parsed = erec::obs::readAlertJsonLines(text);
    ASSERT_EQ(parsed.size(), events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(parsed[i].time, events[i].time);
        EXPECT_EQ(parsed[i].alert, events[i].alert);
        EXPECT_EQ(parsed[i].firing, events[i].firing);
        EXPECT_DOUBLE_EQ(parsed[i].value, events[i].value);
    }
    // Writing the parsed events again is byte-identical.
    EXPECT_EQ(erec::obs::toAlertJsonLines(parsed), text);
}

TEST(AlertJson, RejectsMalformedLines)
{
    EXPECT_THROW(erec::obs::readAlertJsonLines("{\"alert\":\"x\"}"),
                 erec::ConfigError);
    EXPECT_THROW(
        erec::obs::readAlertJsonLines(
            "{\"t_us\":1,\"alert\":\"x\",\"state\":\"bad\",\"value\":0}"),
        erec::ConfigError);
}

} // namespace
