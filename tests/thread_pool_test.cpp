/**
 * @file
 * Tests for runtime::ThreadPool: drain-on-shutdown must lose no task,
 * task exceptions must surface at future.get() (not kill a worker),
 * and onWorkerThread() must identify pool threads for the nested
 * fork-join degradation in Executor::parallelFor.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/runtime/thread_pool.h"

namespace erec::runtime {
namespace {

TEST(ThreadPoolTest, SubmitDeliversResultsThroughFutures)
{
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
    EXPECT_EQ(pool.numThreads(), 2u);
}

TEST(ThreadPoolTest, ShutdownDrainsEveryQueuedTask)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        // Queue far more tasks than workers; none may be dropped when
        // the destructor runs while most are still queued.
        for (int i = 0; i < 200; ++i)
            pool.submit([&ran] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(50));
                ran.fetch_add(1, std::memory_order_relaxed);
            });
    }
    EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolTest, TaskExceptionSurfacesAtGetAndWorkerSurvives)
{
    ThreadPool pool(1);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("task boom"); });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The worker that ran the throwing task must still serve others.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
    // The executed counter is bumped just after the future becomes
    // ready; give the worker a moment to finish its bookkeeping.
    for (int spin = 0; pool.tasksExecuted() < 2 && spin < 1000; ++spin)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(pool.tasksExecuted(), 2u);
}

TEST(ThreadPoolTest, OnWorkerThreadDistinguishesPoolThreads)
{
    EXPECT_FALSE(ThreadPool::onWorkerThread());
    ThreadPool pool(1);
    EXPECT_TRUE(pool.submit([] {
                        return ThreadPool::onWorkerThread();
                    }).get());
    EXPECT_FALSE(ThreadPool::onWorkerThread());
}

TEST(ThreadPoolTest, ConcurrentSubmittersAllComplete)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    std::vector<std::thread> clients;
    for (int c = 0; c < 4; ++c)
        clients.emplace_back([&pool, &ran] {
            std::vector<std::future<void>> futures;
            for (int i = 0; i < 50; ++i)
                futures.push_back(pool.submit([&ran] {
                    ran.fetch_add(1, std::memory_order_relaxed);
                }));
            for (auto &f : futures)
                f.get();
        });
    for (auto &t : clients)
        t.join();
    EXPECT_EQ(ran.load(), 4 * 50);
    EXPECT_EQ(pool.tasksExecuted(), 4u * 50u);
    EXPECT_EQ(pool.queueDepth(), 0u);
}

TEST(ThreadPoolTest, RejectsZeroWorkers)
{
    EXPECT_THROW(ThreadPool(0), ConfigError);
}

} // namespace
} // namespace erec::runtime
