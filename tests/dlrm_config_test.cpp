/**
 * @file
 * Tests for the Table II workload configs and the Figure 3-style FLOP /
 * memory accounting.
 */

#include <gtest/gtest.h>

#include "elasticrec/model/dlrm_config.h"

namespace erec::model {
namespace {

TEST(DlrmConfigTest, TableIIParameters)
{
    const auto m1 = rm1();
    EXPECT_EQ(m1.bottomMlp.toString(), "256-128-32");
    EXPECT_EQ(m1.topMlp.toString(), "256-64-1");
    EXPECT_EQ(m1.numTables, 10u);
    EXPECT_EQ(m1.rowsPerTable, 20'000'000u);
    EXPECT_EQ(m1.embeddingDim, 32u);
    EXPECT_EQ(m1.poolingFactor, 128u);
    EXPECT_DOUBLE_EQ(m1.localityP, 0.90);

    const auto m2 = rm2();
    EXPECT_EQ(m2.topMlp.toString(), "512-128-1");
    EXPECT_EQ(m2.numTables, 32u);

    const auto m3 = rm3();
    EXPECT_EQ(m3.bottomMlp.toString(), "2560-512-32");
    EXPECT_EQ(m3.poolingFactor, 32u);
}

TEST(DlrmConfigTest, GathersPerQuery)
{
    EXPECT_EQ(rm1().gathersPerQueryPerTable(), 128u * 32);
    EXPECT_EQ(rm3().gathersPerQueryPerTable(), 32u * 32);
}

TEST(DlrmConfigTest, SparseFlopsAreSmallFraction)
{
    // Figure 3(a): sparse layers account for a minority of FLOPs
    // (RM2's 32 tables make it the largest of the three).
    for (const auto &config : tableIIModels()) {
        EXPECT_LT(config.sparseFlopsFraction(), 0.40) << config.name;
    }
    // And RM3 (heavy MLPs, small pooling) is the smallest.
    EXPECT_LT(rm3().sparseFlopsFraction(), rm1().sparseFlopsFraction());
}

TEST(DlrmConfigTest, DenseMemoryIsNegligible)
{
    // Figure 3(a): dense layers hold well under 1% of parameters.
    for (const auto &config : tableIIModels()) {
        EXPECT_LT(config.denseMemoryFraction(), 0.01) << config.name;
        EXPECT_GT(config.denseMemoryFraction(), 0.0);
    }
}

TEST(DlrmConfigTest, EmbeddingBytes)
{
    // 20M rows x 32 floats = 2.56 GB per table; RM1 has 10 tables.
    EXPECT_EQ(rm1().tableBytes(), 20'000'000ull * 128);
    EXPECT_EQ(rm1().embeddingBytes(), 10 * rm1().tableBytes());
    EXPECT_EQ(rm2().embeddingBytes(), 32 * rm2().tableBytes());
}

TEST(DlrmConfigTest, TouchFractionMatchesPaperClaim)
{
    // Section III-A: a pooling factor of ~100 touches ~0.001% of the
    // table per inference.
    const double f = rm1().embeddingTouchFraction();
    EXPECT_LT(f, 1e-5);
    EXPECT_GT(f, 1e-6);
}

TEST(DlrmConfigTest, InteractionDim)
{
    // RM1: 11 feature vectors -> 55 pairs + 32 bottom outputs.
    EXPECT_EQ(rm1().interactionOutputDim(), 55u + 32);
}

TEST(DlrmConfigTest, MicrobenchmarkVariants)
{
    const auto light = microBenchmark(MlpSize::Light,
                                      LocalityLevel::High);
    const auto heavy = microBenchmark(MlpSize::Heavy,
                                      LocalityLevel::High);
    EXPECT_LT(light.denseFlopsPerQuery(), heavy.denseFlopsPerQuery());
    EXPECT_EQ(light.numTables, 10u);

    const auto low = microBenchmark(MlpSize::Medium, LocalityLevel::Low);
    EXPECT_DOUBLE_EQ(low.localityP, 0.10);
    EXPECT_DOUBLE_EQ(localityValue(LocalityLevel::Medium), 0.50);

    const auto n16 = microBenchmark(MlpSize::Medium,
                                    LocalityLevel::High, 16);
    EXPECT_EQ(n16.numTables, 16u);
    EXPECT_NE(n16.name.find("N16"), std::string::npos);
}

TEST(DlrmConfigTest, SparseTrafficPerQuery)
{
    // RM1: 4096 gathers x 10 tables x 128 B rows.
    EXPECT_EQ(rm1().sparseTrafficPerQuery(),
              4096ull * 10 * 128);
}

} // namespace
} // namespace erec::model
