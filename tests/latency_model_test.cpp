/**
 * @file
 * Tests for the hardware platform specs, the roofline latency model and
 * the network link.
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/hw/latency_model.h"
#include "elasticrec/hw/network.h"
#include "elasticrec/hw/platform.h"

namespace erec::hw {
namespace {

TEST(PlatformTest, PaperNodeSpecs)
{
    const auto cpu = cpuOnlyNode();
    EXPECT_EQ(cpu.cpu.logicalCores, 64u); // dual socket x 32 threads
    EXPECT_EQ(cpu.cpu.memCapacity, 384 * units::kGiB);
    EXPECT_DOUBLE_EQ(cpu.cpu.memBandwidth, 256e9);
    EXPECT_FALSE(cpu.hasGpu);
    EXPECT_DOUBLE_EQ(cpu.netBandwidth, 10e9 / 8.0);

    const auto gpu = cpuGpuNode();
    EXPECT_EQ(gpu.cpu.logicalCores, 32u);
    EXPECT_EQ(gpu.cpu.memCapacity, 120 * units::kGiB);
    EXPECT_TRUE(gpu.hasGpu);
    EXPECT_EQ(gpu.gpu.hbmCapacity, 16 * units::kGiB);
    EXPECT_GT(gpu.costUnits, cpu.costUnits);
}

TEST(LatencyModelTest, DenseCpuScalesWithFlopsAndCores)
{
    LatencyModel lat(cpuOnlyNode());
    const auto t1 = lat.denseCpuTime(1'000'000'000, 8);
    const auto t2 = lat.denseCpuTime(2'000'000'000, 8);
    const auto t3 = lat.denseCpuTime(1'000'000'000, 16);
    EXPECT_GT(t2, t1);
    EXPECT_LT(t3, t1);
    // Dispatch floor: even tiny work pays the framework overhead.
    const auto floor = lat.denseCpuTime(1, 64);
    EXPECT_GE(floor, units::fromMillis(
                         cpuOnlyNode().cpu.denseDispatchUs / 1000.0));
}

TEST(LatencyModelTest, GatherScalesWithCountAndDim)
{
    LatencyModel lat(cpuOnlyNode());
    const auto small = lat.gatherCpuTime(100, 128, 2);
    const auto more = lat.gatherCpuTime(10000, 128, 2);
    const auto wider = lat.gatherCpuTime(10000, 2048, 2);
    EXPECT_GT(more, small);
    EXPECT_GT(wider, more); // larger rows -> more memory traffic
}

TEST(LatencyModelTest, BandwidthShareScalesWithCores)
{
    LatencyModel lat(cpuOnlyNode());
    EXPECT_NEAR(lat.randomBandwidthShare(64),
                256e9 * cpuOnlyNode().cpu.randomAccessEfficiency, 1e-3);
    EXPECT_NEAR(lat.randomBandwidthShare(32),
                lat.randomBandwidthShare(64) / 2, 1e-3);
}

TEST(LatencyModelTest, GpuPathRequiresGpu)
{
    LatencyModel cpu(cpuOnlyNode());
    EXPECT_THROW(cpu.denseGpuTime(1000, 100), ConfigError);
    EXPECT_THROW(cpu.gatherGpuTime(10, 128), ConfigError);

    LatencyModel gpu(cpuGpuNode());
    EXPECT_GT(gpu.denseGpuTime(1'000'000, 1000), 0);
}

TEST(LatencyModelTest, GpuDenseFasterThanCpuForHeavyMlp)
{
    // RM3-scale dense work: the T4 should beat the host CPU clearly.
    LatencyModel gpu(cpuGpuNode());
    LatencyModel cpu(cpuOnlyNode());
    const std::uint64_t flops = 89'000'000; // ~RM3 per query
    EXPECT_LT(gpu.denseGpuTime(flops, 100'000),
              cpu.denseCpuTime(flops, 64));
}

TEST(LatencyModelTest, CachedGatherBeatsPlainCpuGather)
{
    // Section VI-E: a 90%-hit GPU cache reduces embedding latency by
    // roughly 47%.
    LatencyModel lat(cpuGpuNode());
    const std::size_t n = 4096;
    const auto plain = lat.gatherCpuTime(n, 128, 32);
    const auto cached = lat.cachedGatherTime(n, 0.9, 128, 32);
    EXPECT_LT(cached, plain);
    const double reduction =
        1.0 - static_cast<double>(cached) / static_cast<double>(plain);
    EXPECT_GT(reduction, 0.25);
    EXPECT_LT(reduction, 0.75);
}

TEST(LatencyModelTest, CachedGatherFullHitHasNoCpuTerm)
{
    LatencyModel lat(cpuGpuNode());
    const auto full = lat.cachedGatherTime(4096, 1.0, 128, 32);
    const auto partial = lat.cachedGatherTime(4096, 0.5, 128, 32);
    EXPECT_LT(full, partial);
}

TEST(NetworkLinkTest, TransferTime)
{
    NetworkLink link(1e9, 100); // 1 GB/s, 100 us base
    EXPECT_EQ(link.transferTime(0), 100);
    // 1 MB at 1 GB/s = 1 ms.
    EXPECT_EQ(link.transferTime(1'000'000), 100 + 1000);
}

TEST(NetworkLinkTest, FromNodeSpec)
{
    NetworkLink link(cpuOnlyNode());
    EXPECT_DOUBLE_EQ(link.bandwidth(), 10e9 / 8.0);
    EXPECT_EQ(link.baseLatency(), 100);
}

TEST(NetworkLinkTest, RejectsBadParameters)
{
    EXPECT_THROW(NetworkLink(0.0, 10), ConfigError);
    EXPECT_THROW(NetworkLink(1e9, -1), ConfigError);
}

} // namespace
} // namespace erec::hw
