/**
 * @file
 * Integration tests for the cluster simulation: steady-state tracking,
 * autoscaling reaction to traffic changes, SLA behaviour, and the
 * relative ElasticRec-vs-baseline properties the paper's Figure 19
 * demonstrates.
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/hw/platform.h"
#include "elasticrec/sim/cluster_sim.h"
#include "elasticrec/sim/experiment.h"

namespace erec::sim {
namespace {

core::DeploymentPlan
erPlan(const model::DlrmConfig &config, const hw::NodeSpec &node)
{
    core::Planner planner = core::Planner::forPlatform(config, node);
    return planner.planElasticRec({cdfFor(config, 256)});
}

core::DeploymentPlan
mwPlan(const model::DlrmConfig &config, const hw::NodeSpec &node)
{
    core::Planner planner = core::Planner::forPlatform(config, node);
    return planner.planModelWise();
}

SimOptions
fastOptions()
{
    SimOptions opt;
    opt.seed = 7;
    return opt;
}

ExperimentOptions
steadyOptions(SimTime duration)
{
    ExperimentOptions opt;
    opt.duration = duration;
    opt.sim = fastOptions();
    return opt;
}

TEST(ClusterSimTest, SteadyStateTracksTarget)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto result = runSteadyState(erPlan(config, node), node, 50.0,
                                       steadyOptions(60 * units::kSecond));
    EXPECT_NEAR(result.achievedQps, 50.0, 5.0);
    EXPECT_LT(result.p95LatencyMs, 400.0);
    EXPECT_LT(result.slaViolationFraction, 0.05);
}

TEST(ClusterSimTest, ModelWiseSteadyStateAlsoTracks)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto result = runSteadyState(mwPlan(config, node), node, 50.0,
                                       steadyOptions(60 * units::kSecond));
    EXPECT_NEAR(result.achievedQps, 50.0, 5.0);
}

TEST(ClusterSimTest, ElasticRecUsesLessMemoryUnderSim)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto er = runSteadyState(erPlan(config, node), node, 100.0,
                                   steadyOptions(30 * units::kSecond));
    const auto mw = runSteadyState(mwPlan(config, node), node, 100.0,
                                   steadyOptions(30 * units::kSecond));
    EXPECT_LT(er.staticView.memory, mw.staticView.memory);
    EXPECT_LE(er.staticView.nodes, mw.staticView.nodes);
}

TEST(ClusterSimTest, AutoscaleFollowsTrafficStep)
{
    // Step from 20 to 60 QPS: the autoscaler must converge to the new
    // target within a few sync periods.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    workload::TrafficPattern traffic(
        {{0, 20.0}, {2 * units::kMinute, 60.0}});
    SimOptions opt = fastOptions();
    ClusterSimulation sim(erPlan(config, node), node, traffic, opt);
    const auto r = sim.run(8 * units::kMinute);

    // Average achieved rate over the last two minutes ~ 60 QPS.
    double tail_sum = 0;
    int tail_n = 0;
    for (const auto &[t, v] : r.achievedQps.points()) {
        if (t >= 6 * units::kMinute) {
            tail_sum += v;
            ++tail_n;
        }
    }
    ASSERT_GT(tail_n, 0);
    EXPECT_NEAR(tail_sum / tail_n, 60.0, 6.0);
    // Replica count must have grown.
    EXPECT_GT(r.readyReplicas.points().back().second,
              r.readyReplicas.points().front().second);
}

TEST(ClusterSimTest, ScaleInAfterTrafficDrop)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    workload::TrafficPattern traffic(
        {{0, 80.0}, {2 * units::kMinute, 10.0}});
    SimOptions opt = fastOptions();
    ClusterSimulation sim(erPlan(config, node), node, traffic, opt);
    const auto r = sim.run(12 * units::kMinute);
    const double start_mem = r.memoryGiB.points().front().second;
    const double end_mem = r.memoryGiB.points().back().second;
    EXPECT_LT(end_mem, start_mem);
}

TEST(ClusterSimTest, Figure19RelativeBehaviour)
{
    // Shortened Figure 19: ElasticRec must beat model-wise on peak
    // memory and SLA violations under the same dynamic traffic.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto traffic = workload::TrafficPattern::fig19(
        10.0, 60.0, 3, 2 * units::kMinute, 8 * units::kMinute,
        10 * units::kMinute);
    SimOptions opt = fastOptions();

    ClusterSimulation er(erPlan(config, node), node, traffic, opt);
    const auto er_result = er.run(12 * units::kMinute);
    ClusterSimulation mw(mwPlan(config, node), node, traffic, opt);
    const auto mw_result = mw.run(12 * units::kMinute);

    EXPECT_LT(er_result.peakMemory, mw_result.peakMemory);
    EXPECT_LE(er_result.slaViolations, mw_result.slaViolations);
    EXPECT_EQ(er_result.completed, mw_result.completed);
}

TEST(ClusterSimTest, DeterministicForSeed)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    const auto traffic = workload::TrafficPattern::constant(30.0);
    SimOptions opt = fastOptions();
    ClusterSimulation a(erPlan(config, node), node, traffic, opt);
    ClusterSimulation b(erPlan(config, node), node, traffic, opt);
    const auto ra = a.run(2 * units::kMinute);
    const auto rb = b.run(2 * units::kMinute);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_DOUBLE_EQ(ra.meanLatencyMs, rb.meanLatencyMs);
    EXPECT_EQ(ra.peakMemory, rb.peakMemory);
}

TEST(ClusterSimTest, FixedReplicasAreRespected)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    auto plan = mwPlan(config, node);
    SimOptions opt = fastOptions();
    opt.autoscale = false;
    ClusterSimulation sim(plan, node,
                          workload::TrafficPattern::constant(10.0),
                          opt);
    sim.setFixedReplicas(plan.shards[0].name, 3);
    const auto r = sim.run(units::kMinute);
    EXPECT_EQ(r.finalReplicas.at(plan.shards[0].name), 3u);
}

TEST(ClusterSimTest, ColdStartDelaysServingAfterScaleUp)
{
    // With warmStart off, the first pod must come up before any query
    // completes; completions then proceed.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    SimOptions opt = fastOptions();
    opt.warmStart = true;
    ClusterSimulation sim(mwPlan(config, node), node,
                          workload::TrafficPattern::constant(20.0),
                          opt);
    const auto r = sim.run(units::kMinute);
    EXPECT_GT(r.completed, 0u);
}

TEST(ClusterSimTest, RecoversFromPodFailures)
{
    // Crash two dense pods mid-run: queued work is re-dispatched,
    // in-flight work is lost, and the reconciler restores capacity so
    // throughput recovers by the end of the run.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    SimOptions opt = fastOptions();
    ClusterSimulation sim(erPlan(config, node), node,
                          workload::TrafficPattern::constant(60.0),
                          opt);
    sim.injectPodFailure("dense", 2 * units::kMinute, 2);
    const auto r = sim.run(8 * units::kMinute);

    EXPECT_GT(sim.lostQueries(), 0u);
    EXPECT_GT(r.completed, 0u);
    // Tail throughput back at target after recovery.
    double tail_sum = 0;
    int tail_n = 0;
    for (const auto &[t, v] : r.achievedQps.points()) {
        if (t >= 6 * units::kMinute) {
            tail_sum += v;
            ++tail_n;
        }
    }
    ASSERT_GT(tail_n, 0);
    EXPECT_NEAR(tail_sum / tail_n, 60.0, 6.0);
}

TEST(ClusterSimTest, FailureLosesBoundedWork)
{
    // Only work resident in the crashed pod can be lost.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    SimOptions opt = fastOptions();
    opt.autoscale = false;
    auto plan = mwPlan(config, node);
    ClusterSimulation sim(plan, node,
                          workload::TrafficPattern::constant(40.0),
                          opt);
    sim.setFixedReplicas(plan.shards[0].name, 4);
    sim.injectPodFailure(plan.shards[0].name, units::kMinute, 1);
    const auto r = sim.run(4 * units::kMinute);
    EXPECT_GT(r.completed, 0u);
    // A single pod crash loses at most its in-service pipeline depth
    // (two stages) at the instant of the crash... plus nothing else.
    EXPECT_LE(sim.lostQueries(), 4u);
}

TEST(ClusterSimTest, QueryConservation)
{
    // Every arrival is either completed, lost to a crash, or still in
    // flight when the clock stops. With ample capacity and quiescent
    // tail time, arrivals == completions exactly.
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    SimOptions opt = fastOptions();
    // Stop traffic early so in-flight work drains before the end.
    workload::TrafficPattern traffic(
        {{0, 50.0}, {3 * units::kMinute, 0.0}});
    ClusterSimulation sim(erPlan(config, node), node, traffic, opt);
    const auto r = sim.run(5 * units::kMinute);
    EXPECT_GT(r.arrivals, 0u);
    EXPECT_EQ(r.arrivals, r.completed + sim.lostQueries());
}

TEST(ClusterSimTest, QueryConservationWithFailures)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    SimOptions opt = fastOptions();
    workload::TrafficPattern traffic(
        {{0, 50.0}, {3 * units::kMinute, 0.0}});
    ClusterSimulation sim(erPlan(config, node), node, traffic, opt);
    sim.injectPodFailure("dense", units::kMinute, 1);
    sim.injectPodFailure("t0-s0", 90 * units::kSecond, 1);
    const auto r = sim.run(6 * units::kMinute);
    // Crashed sparse legs orphan their whole query: completed + lost
    // legs can undercount queries, so conservation holds as an
    // inequality with a small orphan remainder.
    EXPECT_LE(r.completed, r.arrivals);
    EXPECT_GE(r.completed + sim.lostQueries(), r.arrivals - 50);
}

TEST(ClusterSimTest, FailureOfUnknownDeploymentThrows)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    ClusterSimulation sim(mwPlan(config, node), node,
                          workload::TrafficPattern::constant(10.0),
                          fastOptions());
    EXPECT_THROW(sim.injectPodFailure("nope", units::kSecond),
                 InternalError);
}

} // namespace
} // namespace erec::sim
