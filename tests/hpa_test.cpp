/**
 * @file
 * Tests for the Horizontal Pod Autoscaler control law (Section IV-D).
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/cluster/hpa.h"

namespace erec::cluster {
namespace {

HpaPolicy
qpsPolicy(double target)
{
    HpaPolicy p;
    p.metric = HpaMetric::QpsPerReplica;
    p.target = target;
    return p;
}

TEST(HpaTest, ScalesUpProportionally)
{
    Hpa hpa(qpsPolicy(100.0));
    // 4 replicas at 150 QPS each -> desired = ceil(4 * 1.5) = 6.
    EXPECT_EQ(hpa.reconcile(0, 4, 150.0), 6u);
}

TEST(HpaTest, DeadBandHolds)
{
    Hpa hpa(qpsPolicy(100.0));
    EXPECT_EQ(hpa.reconcile(0, 4, 105.0), 4u); // within 10% tolerance
    EXPECT_EQ(hpa.reconcile(0, 4, 95.0), 4u);
}

TEST(HpaTest, ScaleUpRateLimited)
{
    Hpa hpa(qpsPolicy(100.0));
    // Measured 100x over target would naively ask for 400 replicas;
    // the Kubernetes-style policy caps at max(2x, +4).
    EXPECT_EQ(hpa.reconcile(0, 4, 10000.0), 8u);
    // For tiny deployments the +4 term dominates.
    Hpa hpa2(qpsPolicy(100.0));
    EXPECT_EQ(hpa2.reconcile(0, 1, 10000.0), 5u);
}

TEST(HpaTest, ScaleDownStabilized)
{
    HpaPolicy p = qpsPolicy(100.0);
    p.stabilizationWindow = 60 * units::kSecond;
    Hpa hpa(p);
    // High recommendation at t=0.
    EXPECT_EQ(hpa.reconcile(0, 4, 200.0), 8u);
    // Load drops; within the window the earlier recommendation (8)
    // floors the scale-down, but current=8 caps it at 8.
    EXPECT_EQ(hpa.reconcile(15 * units::kSecond, 8, 10.0), 8u);
    // After the window expires the scale-down proceeds.
    EXPECT_EQ(hpa.reconcile(120 * units::kSecond, 8, 10.0), 1u);
}

TEST(HpaTest, NeverBelowOneReplica)
{
    Hpa hpa(qpsPolicy(100.0));
    EXPECT_GE(hpa.reconcile(1000 * units::kSecond, 1, 0.001), 1u);
}

TEST(HpaTest, LatencyMetricSameLaw)
{
    HpaPolicy p;
    p.metric = HpaMetric::TailLatency;
    p.target = 260000.0; // 260 ms in us (65% of a 400 ms SLA)
    Hpa hpa(p);
    // Measured P95 of 520 ms -> ratio 2 -> double the replicas.
    EXPECT_EQ(hpa.reconcile(0, 3, 520000.0), 6u);
}

TEST(HpaTest, RejectsBadPolicy)
{
    HpaPolicy p;
    p.target = 0.0;
    EXPECT_THROW(Hpa{p}, ConfigError);
    HpaPolicy q;
    q.tolerance = 1.5;
    EXPECT_THROW(Hpa{q}, ConfigError);
}

TEST(HpaTest, ReconcileRequiresReplicas)
{
    Hpa hpa(qpsPolicy(10.0));
    EXPECT_THROW(hpa.reconcile(0, 0, 5.0), ConfigError);
}

} // namespace
} // namespace erec::cluster
