/**
 * @file
 * Tests for the kernel-backend registry (src/elasticrec/kernels): the
 * cross-backend bit-identity contract — every SIMD backend must match
 * the scalar reference byte for byte, including ragged bags, empty
 * bags, duplicate indices, remapped (hotness-sorted) slices and
 * dimensions that are not a multiple of any vector width — plus the
 * runtime dispatch rules (env selection, graceful ISA fallback,
 * rejection of unknown names).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/common/rng.h"
#include "elasticrec/kernels/kernel_backend.h"
#include "elasticrec/kernels/registry.h"

namespace erec::kernels {
namespace {

/** Random row-major table storage in the embedding init range. */
std::vector<float>
randomRows(std::uint64_t rows, std::uint32_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> data(rows * dim);
    for (auto &v : data)
        v = static_cast<float>(rng.uniform(-0.05, 0.05));
    return data;
}

/** Ragged per-item bags: sizes cycle 0, 1, 3, 17, ... (empty bags and
 *  duplicate indices included), indices random within `rankCount`. */
struct RequestStorage
{
    std::vector<std::uint32_t> indices;
    std::vector<std::uint32_t> offsets;

    RequestStorage(std::size_t batch, std::uint64_t rank_count,
                   std::uint64_t seed)
    {
        Rng rng(seed);
        const std::size_t bag_sizes[] = {0, 1, 3, 17, 64, 5};
        for (std::size_t b = 0; b < batch; ++b) {
            offsets.push_back(
                static_cast<std::uint32_t>(indices.size()));
            const std::size_t bag = bag_sizes[b % 6];
            for (std::size_t g = 0; g < bag; ++g)
                indices.push_back(static_cast<std::uint32_t>(
                    rng.uniformInt(rank_count)));
            if (bag >= 2) // Force a duplicate into every real bag.
                indices.back() = indices[indices.size() - 2];
        }
    }

    GatherRequest view() const { return {indices, offsets}; }
};

bool
bytesEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) ==
               0;
}

TEST(KernelBackendTest, GatherBitIdenticalAcrossBackends)
{
    // Dims cover vector-width multiples (32..256) and ugly tails (1,
    // 7, 17, 100 — not a multiple of 8 or 16 lanes).
    for (const std::uint32_t dim : {1u, 7u, 17u, 32u, 100u, 128u, 256u}) {
        const std::uint64_t rows = 512;
        const auto data = randomRows(rows, dim, /*seed=*/dim);
        TableSlice slice;
        slice.rows = data.data();
        slice.dim = dim;
        slice.rankCount = rows;
        slice.storageRows = rows;

        const RequestStorage req(/*batch=*/13, rows, /*seed=*/99);
        std::vector<float> expect(13 * dim, -1.0f);
        const std::size_t gathered =
            scalarBackend().gatherSumPool(slice, req.view(),
                                          expect.data());
        EXPECT_EQ(gathered, req.indices.size());

        for (const KernelBackend *backend : availableBackends()) {
            std::vector<float> got(13 * dim, 1.0f);
            EXPECT_EQ(backend->gatherSumPool(slice, req.view(),
                                             got.data()),
                      req.indices.size());
            EXPECT_TRUE(bytesEqual(got, expect))
                << backend->name() << " diverges from scalar at dim "
                << dim;
        }
    }
}

TEST(KernelBackendTest, GatherBitIdenticalOnRemappedShardSlice)
{
    // A hotness-sorted shard: ranks [100, 300) of a 512-row table,
    // remapped through a reversing permutation.
    const std::uint32_t dim = 96;
    const std::uint64_t rows = 512;
    const auto data = randomRows(rows, dim, 4);
    std::vector<std::uint32_t> remap(rows);
    for (std::uint64_t r = 0; r < rows; ++r)
        remap[r] = static_cast<std::uint32_t>(rows - 1 - r);

    TableSlice slice;
    slice.rows = data.data();
    slice.dim = dim;
    slice.rankBase = 100;
    slice.rankCount = 200;
    slice.remap = remap.data();
    slice.storageRows = rows;

    const RequestStorage req(/*batch=*/7, /*rank_count=*/200,
                             /*seed=*/5);
    std::vector<float> expect(7 * dim);
    scalarBackend().gatherSumPool(slice, req.view(), expect.data());
    // Spot-check the remap is actually exercised: item 1 gathers one
    // rank i, whose storage row must be remap[100 + i].
    const std::uint32_t i1 = req.indices[req.offsets[1]];
    for (std::uint32_t d = 0; d < dim; ++d)
        ASSERT_FLOAT_EQ(expect[dim + d],
                        data[std::size_t(remap[100 + i1]) * dim + d]);

    for (const KernelBackend *backend : availableBackends()) {
        std::vector<float> got(7 * dim, 1.0f);
        backend->gatherSumPool(slice, req.view(), got.data());
        EXPECT_TRUE(bytesEqual(got, expect)) << backend->name();
    }
}

TEST(KernelBackendTest, GatherRejectsBadRequests)
{
    const std::uint32_t dim = 8;
    const auto data = randomRows(16, dim, 2);
    TableSlice slice;
    slice.rows = data.data();
    slice.dim = dim;
    slice.rankCount = 16;
    slice.storageRows = 16;
    std::vector<float> out(2 * dim);

    for (const KernelBackend *backend : availableBackends()) {
        // Empty batch.
        EXPECT_THROW(backend->gatherSumPool(slice, GatherRequest{},
                                            out.data()),
                     ConfigError)
            << backend->name();
        // Rank escaping the slice.
        const std::vector<std::uint32_t> bad_idx = {16};
        const std::vector<std::uint32_t> off = {0};
        EXPECT_THROW(backend->gatherSumPool(slice, {bad_idx, off},
                                            out.data()),
                     ConfigError)
            << backend->name();
        // Non-monotone offsets.
        const std::vector<std::uint32_t> idx = {1, 2};
        const std::vector<std::uint32_t> bad_off = {2, 0};
        EXPECT_THROW(backend->gatherSumPool(slice, {idx, bad_off},
                                            out.data()),
                     ConfigError)
            << backend->name();
    }
}

TEST(KernelBackendTest, GemmBitIdenticalAcrossBackends)
{
    // Output widths cover tile multiples and tails; both activations.
    for (const std::size_t n : {1ul, 5ul, 33ul, 100ul, 128ul}) {
        const std::size_t m = 9, k = 37;
        Rng rng(n);
        std::vector<float> a(m * k), w(k * n), bias(n);
        for (auto &v : a)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (auto &v : w)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
        for (auto &v : bias)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));

        for (const bool relu : {false, true}) {
            std::vector<float> expect(m * n, -9.0f);
            scalarBackend().gemmBiasAct(a.data(), w.data(),
                                        bias.data(), m, k, n, relu,
                                        expect.data());
            if (relu) {
                for (const float v : expect)
                    ASSERT_GE(v, 0.0f);
            }
            for (const KernelBackend *backend : availableBackends()) {
                std::vector<float> got(m * n, 9.0f);
                backend->gemmBiasAct(a.data(), w.data(), bias.data(),
                                     m, k, n, relu, got.data());
                EXPECT_TRUE(bytesEqual(got, expect))
                    << backend->name() << " diverges at n=" << n
                    << " relu=" << relu;
            }
        }
    }
}

TEST(KernelRegistryTest, ScalarAlwaysRegisteredFirst)
{
    const auto &backends = availableBackends();
    ASSERT_FALSE(backends.empty());
    EXPECT_STREQ(backends.front()->name(), "scalar");
    EXPECT_EQ(findBackend("scalar"), backends.front());
    EXPECT_EQ(findBackend("riscv-v"), nullptr);
    // bestBackend is the widest (last) entry, and what "" resolves to
    // when no env override is set in the test environment.
    EXPECT_STREQ(bestBackend().name(), backends.back()->name());
}

TEST(KernelRegistryTest, ResolveNamePicksEnvThenWidest)
{
    const std::vector<std::string> usable = {"scalar", "avx2"};
    // No request, no env: widest wins.
    EXPECT_EQ(detail::resolveName("", nullptr, usable), "avx2");
    // Env selects when no explicit request.
    EXPECT_EQ(detail::resolveName("", "scalar", usable), "scalar");
    // An explicit request (StackOptions) beats the env.
    EXPECT_EQ(detail::resolveName("scalar", "avx2", usable), "scalar");
    EXPECT_EQ(detail::resolveName("avx2", nullptr, usable), "avx2");
}

TEST(KernelRegistryTest, KnownButUnsupportedNameDegradesGracefully)
{
    // An operator pinning avx512 fleet-wide must not crash hosts
    // without the ISA: known names fall back to the widest usable.
    const std::vector<std::string> usable = {"scalar", "avx2"};
    EXPECT_EQ(detail::resolveName("avx512", nullptr, usable), "avx2");
    EXPECT_EQ(detail::resolveName("", "avx512", usable), "avx2");
    EXPECT_EQ(detail::resolveName("avx2", nullptr, {"scalar"}),
              "scalar");
}

TEST(KernelRegistryTest, UnknownNameIsConfigError)
{
    const std::vector<std::string> usable = {"scalar"};
    EXPECT_THROW(detail::resolveName("turbo9000", nullptr, usable),
                 ConfigError);
    EXPECT_THROW(detail::resolveName("", "turbo9000", usable),
                 ConfigError);
    EXPECT_THROW(detail::resolveName("", nullptr, {}), ConfigError);
    // resolveBackend wires the same rejection through the registry.
    EXPECT_THROW(resolveBackend("turbo9000"), ConfigError);
}

} // namespace
} // namespace erec::kernels
