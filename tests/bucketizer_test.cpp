/**
 * @file
 * Tests for the bucketization algorithm (Section IV-C, Figure 11):
 * per-shard index/offset splitting, shard-local ID rebasing, inverse
 * permutation handling, and the round-trip property that bucketized
 * gathers reconstruct the original lookup.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "elasticrec/common/error.h"
#include "elasticrec/common/rng.h"
#include "elasticrec/core/bucketizer.h"

namespace erec::core {
namespace {

TEST(BucketizerTest, Figure11StyleExample)
{
    // A 10-row table split into shard A = rows [0, 6) and shard B =
    // rows [6, 10), two batch items.
    Bucketizer bucketizer({6, 10});
    workload::SparseLookup in;
    in.indices = {1, 7, 5, 9, 8, 3};
    in.offsets = {0, 2}; // item 0: {1, 7}; item 1: {5, 9, 8, 3}

    const auto out = bucketizer.bucketize(in);
    ASSERT_EQ(out.size(), 2u);

    // Shard A keeps original IDs (base 0).
    EXPECT_EQ(out[0].indices, (std::vector<std::uint32_t>{1, 5, 3}));
    EXPECT_EQ(out[0].offsets, (std::vector<std::uint32_t>{0, 1}));

    // Shard B IDs are rebased by subtracting the size of shard A (6),
    // exactly the Figure 11 step.
    EXPECT_EQ(out[1].indices, (std::vector<std::uint32_t>{1, 3, 2}));
    EXPECT_EQ(out[1].offsets, (std::vector<std::uint32_t>{0, 1}));
}

TEST(BucketizerTest, EveryShardKeepsFullBatchOffsets)
{
    Bucketizer bucketizer({2, 4, 8});
    workload::SparseLookup in;
    in.indices = {0, 1}; // all gathers land in shard 0
    in.offsets = {0, 1};
    const auto out = bucketizer.bucketize(in);
    ASSERT_EQ(out.size(), 3u);
    for (const auto &shard : out)
        EXPECT_EQ(shard.offsets.size(), 2u);
    EXPECT_TRUE(out[1].indices.empty());
    EXPECT_TRUE(out[2].indices.empty());
}

TEST(BucketizerTest, ShardOfUsesBoundaries)
{
    Bucketizer bucketizer({6, 10});
    EXPECT_EQ(bucketizer.shardOf(0), 0u);
    EXPECT_EQ(bucketizer.shardOf(5), 0u);
    EXPECT_EQ(bucketizer.shardOf(6), 1u);
    EXPECT_EQ(bucketizer.shardOf(9), 1u);
    EXPECT_EQ(bucketizer.numShards(), 2u);
}

TEST(BucketizerTest, InversePermutationRoutesByHotness)
{
    // 4 rows; hotness ranks: id 2 -> rank 0, id 0 -> 1, id 3 -> 2,
    // id 1 -> 3. Shard 0 covers ranks [0, 2) = ids {2, 0}.
    std::vector<std::uint32_t> inv = {1, 3, 0, 2};
    Bucketizer bucketizer({2, 4}, inv);
    EXPECT_EQ(bucketizer.shardOf(2), 0u);
    EXPECT_EQ(bucketizer.shardOf(0), 0u);
    EXPECT_EQ(bucketizer.shardOf(3), 1u);
    EXPECT_EQ(bucketizer.shardOf(1), 1u);

    workload::SparseLookup in;
    in.indices = {0, 1, 2, 3};
    in.offsets = {0};
    const auto out = bucketizer.bucketize(in);
    // Shard 0 sees ranks {1, 0} -> local {1, 0}.
    EXPECT_EQ(out[0].indices, (std::vector<std::uint32_t>{1, 0}));
    // Shard 1 sees ranks {3, 2} -> local {1, 0}.
    EXPECT_EQ(out[1].indices, (std::vector<std::uint32_t>{1, 0}));
}

TEST(BucketizerTest, RoundTripPreservesEveryGather)
{
    // Property: the multiset of (shard base + local id) over all shard
    // outputs equals the multiset of input ranks, per batch item.
    Rng rng(17);
    const std::uint64_t rows = 500;
    std::vector<std::uint64_t> boundaries = {50, 120, 300, 500};
    Bucketizer bucketizer(boundaries);

    for (int trial = 0; trial < 20; ++trial) {
        workload::SparseLookup in;
        const int batch = 1 + static_cast<int>(rng.uniformInt(
                                  std::uint64_t{5}));
        for (int b = 0; b < batch; ++b) {
            in.offsets.push_back(
                static_cast<std::uint32_t>(in.indices.size()));
            const int gathers = static_cast<int>(
                rng.uniformInt(std::uint64_t{16}));
            for (int g = 0; g < gathers; ++g)
                in.indices.push_back(static_cast<std::uint32_t>(
                    rng.uniformInt(rows)));
        }
        const auto out = bucketizer.bucketize(in);

        for (int b = 0; b < batch; ++b) {
            // Reconstruct this item's gathers from all shards.
            std::multiset<std::uint32_t> reconstructed;
            for (std::uint32_t s = 0; s < out.size(); ++s) {
                const std::uint64_t base =
                    s == 0 ? 0 : boundaries[s - 1];
                const std::size_t begin = out[s].offsets[b];
                const std::size_t end =
                    (static_cast<std::size_t>(b) + 1 <
                     out[s].offsets.size())
                        ? out[s].offsets[b + 1]
                        : out[s].indices.size();
                for (std::size_t i = begin; i < end; ++i)
                    reconstructed.insert(static_cast<std::uint32_t>(
                        base + out[s].indices[i]));
            }
            std::multiset<std::uint32_t> original;
            const std::size_t begin = in.offsets[b];
            const std::size_t end =
                (static_cast<std::size_t>(b) + 1 < in.offsets.size())
                    ? in.offsets[b + 1]
                    : in.indices.size();
            for (std::size_t i = begin; i < end; ++i)
                original.insert(in.indices[i]);
            EXPECT_EQ(reconstructed, original)
                << "trial " << trial << " item " << b;
        }
    }
}

TEST(BucketizerTest, LocalIdsWithinShardRange)
{
    Bucketizer bucketizer({100, 350, 1000});
    workload::SparseLookup in;
    Rng rng(23);
    in.offsets = {0};
    for (int i = 0; i < 200; ++i)
        in.indices.push_back(
            static_cast<std::uint32_t>(rng.uniformInt(
                std::uint64_t{1000})));
    const auto out = bucketizer.bucketize(in);
    const std::vector<std::uint64_t> sizes = {100, 250, 650};
    for (std::uint32_t s = 0; s < 3; ++s)
        for (auto id : out[s].indices)
            ASSERT_LT(id, sizes[s]);
}

TEST(BucketizerTest, RejectsBadInputs)
{
    EXPECT_THROW(Bucketizer({}), ConfigError);
    EXPECT_THROW(Bucketizer({5, 5}), ConfigError);
    EXPECT_THROW(Bucketizer({10}, std::vector<std::uint32_t>(3)),
                 ConfigError);
    Bucketizer ok({10});
    EXPECT_THROW(ok.shardOf(10), ConfigError);
    workload::SparseLookup bad;
    bad.indices = {11};
    bad.offsets = {0};
    EXPECT_THROW(ok.bucketize(bad), ConfigError);
}

} // namespace
} // namespace erec::core
