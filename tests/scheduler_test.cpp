/**
 * @file
 * Tests for bin-packing pod replicas onto nodes (Figures 15/18 input).
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/cluster/scheduler.h"

namespace erec::cluster {
namespace {

PodRequest
pod(std::uint32_t cores, Bytes mem, bool gpu = false)
{
    return {"d", ResourceRequest{cores, mem, gpu}};
}

TEST(SchedulerTest, PacksByCores)
{
    Scheduler s(hw::cpuOnlyNode()); // 64 cores, 384 GiB
    // 10 pods x 16 cores = 160 cores -> ceil(160/64) = 3 nodes.
    std::vector<PodRequest> pods(10, pod(16, units::kGiB));
    const auto packing = s.pack(pods);
    EXPECT_EQ(packing.numNodes(), 3u);
}

TEST(SchedulerTest, PacksByMemory)
{
    Scheduler s(hw::cpuOnlyNode());
    // 4 pods x 200 GiB exceed a 384 GiB node pairwise.
    std::vector<PodRequest> pods(4, pod(1, 200 * units::kGiB));
    EXPECT_EQ(s.pack(pods).numNodes(), 4u);
}

TEST(SchedulerTest, MixedSizesFirstFitDecreasing)
{
    Scheduler s(hw::cpuOnlyNode());
    // Two big (250 GiB) + four small (100 GiB): FFD pairs each big
    // with one small (350 <= 384) and packs remaining smalls together.
    std::vector<PodRequest> pods;
    pods.push_back(pod(1, 250 * units::kGiB));
    for (int i = 0; i < 4; ++i)
        pods.push_back(pod(1, 100 * units::kGiB));
    pods.push_back(pod(1, 250 * units::kGiB));
    const auto packing = s.pack(pods);
    EXPECT_EQ(packing.numNodes(), 3u);
    EXPECT_EQ(packing.totalMemory(), 900 * units::kGiB);
}

TEST(SchedulerTest, OneGpuPodPerNode)
{
    Scheduler s(hw::cpuGpuNode());
    std::vector<PodRequest> pods(3, pod(4, units::kGiB, true));
    EXPECT_EQ(s.pack(pods).numNodes(), 3u);
    // CPU pods can share those nodes.
    pods.push_back(pod(4, units::kGiB, false));
    EXPECT_EQ(s.pack(pods).numNodes(), 3u);
}

TEST(SchedulerTest, RejectsImpossiblePods)
{
    Scheduler s(hw::cpuOnlyNode());
    EXPECT_THROW(s.pack({pod(128, units::kGiB)}), ConfigError);
    EXPECT_THROW(s.pack({pod(1, 500 * units::kGiB)}), ConfigError);
    EXPECT_THROW(s.pack({pod(1, units::kGiB, true)}), ConfigError);
}

TEST(SchedulerTest, EmptyListPacksZeroNodes)
{
    Scheduler s(hw::cpuOnlyNode());
    EXPECT_EQ(s.pack({}).numNodes(), 0u);
}

TEST(SchedulerTest, AssignmentsCoverEveryPod)
{
    Scheduler s(hw::cpuOnlyNode());
    std::vector<PodRequest> pods(17, pod(8, 10 * units::kGiB));
    const auto packing = s.pack(pods);
    std::size_t assigned = 0;
    for (const auto &node : packing.nodes) {
        assigned += node.podIndices.size();
        EXPECT_LE(node.usedCores, 64u);
        EXPECT_LE(node.usedMem, 384 * units::kGiB);
    }
    EXPECT_EQ(assigned, pods.size());
}

TEST(SchedulerTest, PackDeployments)
{
    Scheduler s(hw::cpuOnlyNode());
    core::ShardSpec spec;
    spec.name = "x";
    spec.cpuCores = 32;
    spec.memBytes = units::kGiB;
    Deployment d(spec, 1);
    const auto packing = s.packDeployments({{&d, 5}});
    // 5 pods x 32 cores -> 3 nodes.
    EXPECT_EQ(packing.numNodes(), 3u);
}

} // namespace
} // namespace erec::cluster
