/**
 * @file
 * Tests for the query arena: slot recycling without aliasing, fan-in
 * leg accounting, dead-query semantics, and allocation-free reuse.
 */

#include <gtest/gtest.h>

#include <vector>

#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/sim/query_arena.h"

namespace erec::sim {
namespace {

TEST(QueryArenaTest, AllocateInitializesEveryField)
{
    QueryArena arena;
    const auto slot =
        arena.allocate(123, 3, nullptr, obs::TraceContext{});
    EXPECT_EQ(arena.arrival(slot), 123);
    EXPECT_EQ(arena.lastDone(slot), 0);
    EXPECT_FALSE(arena.dead(slot));
    EXPECT_EQ(arena.trace(slot), nullptr);
    EXPECT_EQ(arena.liveCount(), 1u);
}

TEST(QueryArenaTest, LegAccountingReleasesOnLastLeg)
{
    QueryArena arena;
    const auto slot =
        arena.allocate(10, 3, nullptr, obs::TraceContext{});
    arena.noteDone(slot, 50);
    EXPECT_FALSE(arena.accountLeg(slot));
    arena.noteDone(slot, 40); // earlier leg must not regress lastDone
    EXPECT_FALSE(arena.accountLeg(slot));
    arena.noteDone(slot, 90);
    EXPECT_TRUE(arena.accountLeg(slot));
    EXPECT_EQ(arena.lastDone(slot), 90);
    arena.release(slot);
    EXPECT_EQ(arena.liveCount(), 0u);
}

TEST(QueryArenaTest, ReuseDoesNotAliasLiveSlots)
{
    QueryArena arena;
    const auto a = arena.allocate(1, 1, nullptr, obs::TraceContext{});
    const auto b = arena.allocate(2, 2, nullptr, obs::TraceContext{});
    EXPECT_NE(a, b);
    arena.noteDone(a, 100);
    arena.release(a);
    // The recycled slot re-initializes; the live slot is untouched.
    const auto c = arena.allocate(3, 1, nullptr, obs::TraceContext{});
    EXPECT_EQ(c, a); // LIFO free list hands the hot slot back
    EXPECT_EQ(arena.arrival(c), 3);
    EXPECT_EQ(arena.lastDone(c), 0);
    EXPECT_EQ(arena.arrival(b), 2);
    EXPECT_FALSE(arena.accountLeg(b));
    EXPECT_TRUE(arena.accountLeg(b));
}

TEST(QueryArenaTest, DeadSlotStaysDeadUntilReleased)
{
    QueryArena arena;
    const auto slot =
        arena.allocate(5, 2, nullptr, obs::TraceContext{});
    arena.markDead(slot);
    EXPECT_FALSE(arena.accountLeg(slot));
    EXPECT_TRUE(arena.dead(slot));
    EXPECT_TRUE(arena.accountLeg(slot));
    arena.release(slot);
    // Recycled: the dead flag must not leak into the next query.
    const auto next =
        arena.allocate(6, 1, nullptr, obs::TraceContext{});
    EXPECT_EQ(next, slot);
    EXPECT_FALSE(arena.dead(next));
}

TEST(QueryArenaTest, GrowthPreservesLiveSlots)
{
    QueryArena arena;
    std::vector<std::uint32_t> slots;
    // Far past the initial capacity: force several doublings while
    // every slot stays live.
    for (SimTime i = 0; i < 1000; ++i)
        slots.push_back(
            arena.allocate(i, 1, nullptr, obs::TraceContext{}));
    ASSERT_GE(arena.capacity(), 1000u);
    for (SimTime i = 0; i < 1000; ++i)
        EXPECT_EQ(arena.arrival(slots[static_cast<std::size_t>(i)]), i);
    EXPECT_EQ(arena.liveCount(), 1000u);
}

TEST(QueryArenaTest, SteadyStateRecyclingDoesNotAllocate)
{
    QueryArena arena;
    static AllocRegion region("test.query_arena");
    // Warm up: reach the peak in-flight population once.
    std::vector<std::uint32_t> warm;
    for (SimTime i = 0; i < 100; ++i)
        warm.push_back(
            arena.allocate(i, 1, nullptr, obs::TraceContext{}));
    for (const auto s : warm)
        arena.release(s);
    region.reset();
    std::vector<std::uint32_t> live;
    live.reserve(100);
    {
        AllocGate gate(region);
        for (int round = 0; round < 50; ++round) {
            live.clear();
            for (SimTime i = 0; i < 100; ++i)
                live.push_back(arena.allocate(
                    i, 1, nullptr, obs::TraceContext{}));
            for (const auto s : live)
                arena.release(s);
        }
    }
    EXPECT_EQ(region.allocs(), 0u);
}

} // namespace
} // namespace erec::sim
