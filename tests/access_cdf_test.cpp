/**
 * @file
 * Tests for the AccessCdf used by the deployment-cost model.
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/embedding/access_cdf.h"

namespace erec::embedding {
namespace {

TEST(AccessCdfTest, FromSortedCountsExact)
{
    // 4 rows with counts 40, 30, 20, 10 -> cumulative 0.4/0.7/0.9/1.0.
    AccessCdf cdf = AccessCdf::fromSortedCounts({40, 30, 20, 10}, 4);
    EXPECT_DOUBLE_EQ(cdf.massOfTopRows(0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.massOfTopRows(1), 0.4);
    EXPECT_DOUBLE_EQ(cdf.massOfTopRows(2), 0.7);
    EXPECT_DOUBLE_EQ(cdf.massOfTopRows(3), 0.9);
    EXPECT_DOUBLE_EQ(cdf.massOfTopRows(4), 1.0);
    EXPECT_DOUBLE_EQ(cdf.massOfRange(1, 3), 0.5);
}

TEST(AccessCdfTest, RejectsUnsortedCounts)
{
    EXPECT_THROW(AccessCdf::fromSortedCounts({10, 40}, 2), ConfigError);
}

TEST(AccessCdfTest, RejectsZeroMass)
{
    EXPECT_THROW(AccessCdf::fromSortedCounts({0, 0, 0}, 3), ConfigError);
}

TEST(AccessCdfTest, GranuleCompressionInterpolates)
{
    // 100 rows, each with identical counts -> mass is linear; a
    // 10-granule compression must still be exact under interpolation.
    std::vector<std::uint64_t> counts(100, 7);
    AccessCdf cdf = AccessCdf::fromSortedCounts(counts, 10);
    EXPECT_EQ(cdf.granules(), 10u);
    EXPECT_EQ(cdf.rowsPerGranule(), 10u);
    for (std::uint64_t x = 0; x <= 100; x += 7) {
        EXPECT_NEAR(cdf.massOfTopRows(x), x / 100.0, 1e-12)
            << "x=" << x;
    }
}

TEST(AccessCdfTest, FromMassFunction)
{
    const std::uint64_t rows = 1000;
    AccessCdf cdf = AccessCdf::fromMassFunction(
        rows,
        [rows](std::uint64_t x) {
            const double u = static_cast<double>(x) / rows;
            return u * u * (3 - 2 * u); // smoothstep, monotone
        },
        64);
    EXPECT_DOUBLE_EQ(cdf.massOfTopRows(0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.massOfTopRows(rows), 1.0);
    EXPECT_NEAR(cdf.massOfTopRows(500), 0.5, 1e-3);
    double prev = 0;
    for (std::uint64_t x = 0; x <= rows; x += 50) {
        const double m = cdf.massOfTopRows(x);
        EXPECT_GE(m, prev);
        prev = m;
    }
}

TEST(AccessCdfTest, GranuleHelpers)
{
    std::vector<std::uint64_t> counts(100, 1);
    AccessCdf cdf = AccessCdf::fromSortedCounts(counts, 4);
    EXPECT_EQ(cdf.rowsAtGranule(0), 0u);
    EXPECT_EQ(cdf.rowsAtGranule(2), 50u);
    EXPECT_EQ(cdf.rowsAtGranule(4), 100u);
    EXPECT_EQ(cdf.granuleForRows(50), 2u);
    EXPECT_EQ(cdf.granuleForRows(100), 4u);
    EXPECT_EQ(cdf.granuleForRows(1000), 4u);
}

TEST(AccessCdfTest, MoreGranulesThanRowsClamps)
{
    AccessCdf cdf = AccessCdf::fromSortedCounts({5, 3, 2}, 1000);
    EXPECT_EQ(cdf.granules(), 3u);
    EXPECT_DOUBLE_EQ(cdf.massOfTopRows(1), 0.5);
}

TEST(AccessCdfTest, LocalityPMatchesConstruction)
{
    const std::uint64_t rows = 10000;
    AccessCdf cdf = AccessCdf::fromMassFunction(
        rows,
        [rows](std::uint64_t x) {
            // Top 10% covers 90%.
            const double u = static_cast<double>(x) / rows;
            if (u <= 0.1)
                return 0.9 * (u / 0.1);
            return 0.9 + 0.1 * (u - 0.1) / 0.9;
        },
        100);
    EXPECT_NEAR(cdf.localityP(), 0.9, 1e-9);
}

TEST(AccessCdfTest, MassOfRangeRejectsInvertedRange)
{
    AccessCdf cdf = AccessCdf::fromSortedCounts({2, 1}, 2);
    EXPECT_THROW(cdf.massOfRange(2, 1), ConfigError);
}

} // namespace
} // namespace erec::embedding
