/**
 * @file
 * Tests for the load-balancing strategies (the Linkerd stand-in):
 * correctness of each policy and a statistical balance property suite.
 */

#include <gtest/gtest.h>

#include <map>

#include "elasticrec/cluster/load_balancer.h"
#include "elasticrec/common/error.h"

namespace erec::cluster {
namespace {

std::vector<LbCandidate>
uniformCandidates(std::uint32_t n, std::uint32_t load = 0)
{
    std::vector<LbCandidate> c;
    for (std::uint32_t i = 0; i < n; ++i)
        c.push_back({i, load});
    return c;
}

TEST(LoadBalancerTest, RoundRobinCycles)
{
    LoadBalancer lb(LbPolicy::RoundRobin);
    const auto c = uniformCandidates(3);
    EXPECT_EQ(lb.pick(c), 0u);
    EXPECT_EQ(lb.pick(c), 1u);
    EXPECT_EQ(lb.pick(c), 2u);
    EXPECT_EQ(lb.pick(c), 0u);
}

TEST(LoadBalancerTest, RoundRobinHandlesShrinkingSet)
{
    LoadBalancer lb(LbPolicy::RoundRobin);
    auto c = uniformCandidates(4);
    lb.pick(c);
    lb.pick(c);
    c.pop_back();
    // Must stay within the new set.
    for (int i = 0; i < 10; ++i)
        EXPECT_LT(lb.pick(c), 3u);
}

TEST(LoadBalancerTest, LeastLoadedPicksMinimum)
{
    LoadBalancer lb(LbPolicy::LeastLoaded);
    std::vector<LbCandidate> c = {{0, 5}, {1, 2}, {2, 7}};
    EXPECT_EQ(lb.pick(c), 1u);
    c[1].inFlight = 100;
    EXPECT_EQ(lb.pick(c), 0u);
}

TEST(LoadBalancerTest, P2CPrefersLessLoaded)
{
    LoadBalancer lb(LbPolicy::PowerOfTwoChoices, 3);
    // One overloaded replica among two: the idle one must win nearly
    // always (it wins every duel it takes part in, and is sampled with
    // probability 1 when n == 2).
    std::vector<LbCandidate> c = {{0, 100}, {1, 0}};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(lb.pick(c), 1u);
}

TEST(LoadBalancerTest, P2CSingleCandidate)
{
    LoadBalancer lb(LbPolicy::PowerOfTwoChoices);
    EXPECT_EQ(lb.pick({{7, 3}}), 7u);
}

TEST(LoadBalancerTest, EmptyCandidatesThrow)
{
    for (auto policy : {LbPolicy::RoundRobin, LbPolicy::LeastLoaded,
                        LbPolicy::PowerOfTwoChoices}) {
        LoadBalancer lb(policy);
        EXPECT_THROW(lb.pick({}), ConfigError) << toString(policy);
    }
}

TEST(LoadBalancerTest, PolicyNames)
{
    EXPECT_STREQ(toString(LbPolicy::RoundRobin), "round-robin");
    EXPECT_STREQ(toString(LbPolicy::LeastLoaded), "least-loaded");
    EXPECT_STREQ(toString(LbPolicy::PowerOfTwoChoices), "p2c");
}

// Statistical balance: with idle replicas, every policy must spread
// picks roughly evenly.
class LbBalance : public ::testing::TestWithParam<LbPolicy>
{
};

TEST_P(LbBalance, SpreadsAcrossIdleReplicas)
{
    LoadBalancer lb(GetParam(), 11);
    const std::uint32_t n = 8;
    std::map<std::uint32_t, int> hits;
    const int trials = 8000;
    for (int i = 0; i < trials; ++i) {
        // Keep loads equal so the pick is purely the spread policy
        // (least-loaded needs tie-break coverage: first index wins, so
        // exempt it below).
        auto c = uniformCandidates(n);
        ++hits[lb.pick(c)];
    }
    if (GetParam() == LbPolicy::LeastLoaded) {
        // Deterministic tie-break: always index 0.
        EXPECT_EQ(hits[0], trials);
        return;
    }
    for (std::uint32_t i = 0; i < n; ++i) {
        EXPECT_GT(hits[i], trials / n / 2) << "replica " << i;
        EXPECT_LT(hits[i], trials / n * 2) << "replica " << i;
    }
}

TEST_P(LbBalance, TracksLoadWhenFeedbackApplied)
{
    // Closed loop: picks increment the chosen replica's load, a random
    // replica occasionally drains. No replica should end up with more
    // than half the total load under load-aware policies.
    if (GetParam() == LbPolicy::RoundRobin)
        GTEST_SKIP() << "round-robin is load-oblivious";
    LoadBalancer lb(GetParam(), 13);
    Rng rng(7);
    std::vector<LbCandidate> c = uniformCandidates(6);
    std::uint32_t total = 0;
    for (int i = 0; i < 3000; ++i) {
        const auto idx = lb.pick(c);
        ++c[idx].inFlight;
        ++total;
        const auto drain = rng.uniformInt(std::uint64_t{6});
        if (c[drain].inFlight > 0) {
            --c[drain].inFlight;
            --total;
        }
    }
    for (const auto &cand : c)
        EXPECT_LT(cand.inFlight, std::max(10u, total / 2 + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Policies, LbBalance,
    ::testing::Values(LbPolicy::RoundRobin, LbPolicy::LeastLoaded,
                      LbPolicy::PowerOfTwoChoices),
    [](const ::testing::TestParamInfo<LbPolicy> &info) {
        std::string name = toString(info.param);
        for (auto &ch : name)
            if (ch == '-')
                ch = '_';
        return name;
    });

} // namespace
} // namespace erec::cluster
