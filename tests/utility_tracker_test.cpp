/**
 * @file
 * Tests for the memory-utility tracker behind Figures 14 and 17.
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/core/utility_tracker.h"

namespace erec::core {
namespace {

TEST(UtilityTrackerTest, CountsDistinctTouches)
{
    UtilityTracker t({4, 10});
    t.recordRank(0);
    t.recordRank(0); // duplicate: still one distinct row
    t.recordRank(3);
    t.recordRank(7);
    EXPECT_EQ(t.touchedRows(0), 2u);
    EXPECT_EQ(t.touchedRows(1), 1u);
    EXPECT_DOUBLE_EQ(t.shardUtility(0), 0.5);
    EXPECT_DOUBLE_EQ(t.shardUtility(1), 1.0 / 6.0);
    EXPECT_DOUBLE_EQ(t.overallUtility(), 0.3);
}

TEST(UtilityTrackerTest, ShardRowMath)
{
    UtilityTracker t({4, 10});
    EXPECT_EQ(t.numShards(), 2u);
    EXPECT_EQ(t.shardRows(0), 4u);
    EXPECT_EQ(t.shardRows(1), 6u);
}

TEST(UtilityTrackerTest, MonolithicLayout)
{
    UtilityTracker t({100});
    for (std::uint64_t r = 0; r < 6; ++r)
        t.recordRank(r);
    EXPECT_DOUBLE_EQ(t.shardUtility(0), 0.06);
    EXPECT_DOUBLE_EQ(t.overallUtility(), 0.06);
}

TEST(UtilityTrackerTest, RecordRanksBatch)
{
    UtilityTracker t({5, 10});
    t.recordRanks({0, 1, 9});
    EXPECT_EQ(t.touchedRows(0), 2u);
    EXPECT_EQ(t.touchedRows(1), 1u);
}

TEST(UtilityTrackerTest, HotShardHasHigherUtility)
{
    // Property from the paper: with skewed access, the hot shard's
    // utility exceeds the cold shard's.
    UtilityTracker t({10, 100});
    // Touch all of shard 0 and a single row of shard 1.
    for (std::uint64_t r = 0; r < 10; ++r)
        t.recordRank(r);
    t.recordRank(50);
    EXPECT_GT(t.shardUtility(0), t.shardUtility(1));
}

TEST(UtilityTrackerTest, RejectsBadInputs)
{
    EXPECT_THROW(UtilityTracker({}), ConfigError);
    EXPECT_THROW(UtilityTracker({5, 5}), ConfigError);
    UtilityTracker t({10});
    EXPECT_THROW(t.recordRank(10), ConfigError);
    EXPECT_THROW(t.shardUtility(1), ConfigError);
}

} // namespace
} // namespace erec::core
