/**
 * @file
 * Tests for the access-frequency history and the hotness sort
 * preprocessing step (Figure 8).
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/common/rng.h"
#include "elasticrec/embedding/frequency_tracker.h"
#include "elasticrec/workload/access_distribution.h"

namespace erec::embedding {
namespace {

TEST(FrequencyTrackerTest, CountsAccesses)
{
    FrequencyTracker t(4);
    t.recordAll({0, 1, 1, 3, 3, 3});
    EXPECT_EQ(t.count(0), 1u);
    EXPECT_EQ(t.count(1), 2u);
    EXPECT_EQ(t.count(2), 0u);
    EXPECT_EQ(t.count(3), 3u);
    EXPECT_EQ(t.totalAccesses(), 6u);
}

TEST(FrequencyTrackerTest, SortPermutationOrdersByHotness)
{
    FrequencyTracker t(4);
    t.recordAll({0, 1, 1, 3, 3, 3});
    const auto perm = t.sortPermutation();
    // Hottest first: row 3 (3 hits), row 1 (2), row 0 (1), row 2 (0).
    EXPECT_EQ(perm, (std::vector<std::uint32_t>{3, 1, 0, 2}));
}

TEST(FrequencyTrackerTest, TiesBrokenById)
{
    FrequencyTracker t(3);
    t.recordAll({2, 0});
    const auto perm = t.sortPermutation();
    EXPECT_EQ(perm, (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(FrequencyTrackerTest, InverseUndoesPermutation)
{
    FrequencyTracker t(5);
    t.recordAll({4, 4, 4, 2, 2, 0});
    const auto perm = t.sortPermutation();
    const auto inv = FrequencyTracker::invertPermutation(perm);
    for (std::uint32_t rank = 0; rank < perm.size(); ++rank)
        EXPECT_EQ(inv[perm[rank]], rank);
}

TEST(FrequencyTrackerTest, TopRowsCoverage)
{
    FrequencyTracker t(10);
    // Row 7 gets 90 hits, the rest 10 spread out.
    for (int i = 0; i < 90; ++i)
        t.record(7);
    for (std::uint32_t r = 0; r < 10; ++r)
        t.record(r);
    EXPECT_NEAR(t.topRowsCoverage(1), 0.91, 1e-9);
    EXPECT_NEAR(t.topRowsCoverage(10), 1.0, 1e-9);
}

TEST(FrequencyTrackerTest, BuildCdfMatchesCoverage)
{
    FrequencyTracker t(100);
    Rng rng(13);
    workload::LocalityDistribution dist(100, 0.9);
    for (int i = 0; i < 100000; ++i)
        t.record(static_cast<std::uint32_t>(dist.sampleRank(rng)));
    const AccessCdf cdf = t.buildCdf(100);
    // The measured CDF should recover the distribution's P = 0.9 over
    // the top 10% of (sorted) rows.
    EXPECT_NEAR(cdf.massOfTopRows(10), 0.9, 0.02);
    EXPECT_NEAR(cdf.localityP(), 0.9, 0.02);
}

TEST(FrequencyTrackerTest, CdfBeforeRecordingThrows)
{
    FrequencyTracker t(10);
    EXPECT_THROW(t.buildCdf(), ConfigError);
}

TEST(FrequencyTrackerTest, OutOfRangeThrows)
{
    FrequencyTracker t(10);
    EXPECT_THROW(t.record(10), ConfigError);
    EXPECT_THROW(t.count(11), ConfigError);
}

} // namespace
} // namespace erec::embedding
