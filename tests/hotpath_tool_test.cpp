/**
 * @file
 * Engine tests for the hot-path discipline gate (tools/hotpath):
 * annotation parsing, call-graph reachability with concrete paths,
 * ALLOW suppression at both line and function level, false-positive
 * guards for comments/strings/preprocessor text, the runtime/ mutex
 * exemption, and the JSON rendering contract CI consumes.
 */

#include <gtest/gtest.h>

#include "tools/hotpath/hotpath_core.h"

namespace hp = erec::hotpath;

namespace {

/** Minimal annotated header: push/popBatch style hot roots. */
const char *kHotHeader = R"(#pragma once
#define ERC_HOT_PATH
#define ERC_HOT_PATH_ALLOW(reason)
namespace demo {
ERC_HOT_PATH
void serve(int n);
}
)";

hp::Analysis
analyzeSource(const std::string &source)
{
    hp::FileSet files;
    files["src/demo.h"] = kHotHeader;
    files["src/demo.cc"] = source;
    return hp::analyze(files);
}

TEST(HotpathTool, CleanHotFunctionPasses)
{
    const auto a = analyzeSource(R"(
namespace demo {
void serve(int n)
{
    int total = 0;
    for (int i = 0; i < n; ++i)
        total += i;
    (void)total;
}
}
)");
    EXPECT_EQ(a.rootCount, 1u);
    EXPECT_TRUE(a.pass()) << hp::renderText(a);
}

TEST(HotpathTool, DirectAllocationFlagged)
{
    const auto a = analyzeSource(R"(
namespace demo {
void serve(int n)
{
    int *p = new int[n];
    delete[] p;
}
}
)");
    ASSERT_EQ(a.violations.size(), 1u) << hp::renderText(a);
    EXPECT_EQ(a.violations[0].kind, "heap-alloc");
    EXPECT_EQ(a.violations[0].function, "serve");
}

TEST(HotpathTool, TransitiveReachabilityReportsCallPath)
{
    const auto a = analyzeSource(R"(
namespace demo {
static int sink[8];
static int cursor = 0;
void leaf(int v)
{
    sink[cursor++ & 7] = v;
    throw v;
}
void middle(int v) { leaf(v); }
void serve(int n) { middle(n); }
}
)");
    ASSERT_EQ(a.violations.size(), 1u) << hp::renderText(a);
    const auto &v = a.violations[0];
    EXPECT_EQ(v.kind, "throw");
    EXPECT_EQ(v.root, "serve");
    ASSERT_EQ(v.path.size(), 3u);
    EXPECT_EQ(v.path[0], "serve");
    EXPECT_EQ(v.path[1], "middle");
    EXPECT_EQ(v.path[2], "leaf");
}

TEST(HotpathTool, UnreachableFunctionsAreNotScanned)
{
    const auto a = analyzeSource(R"(
#include <vector>
namespace demo {
void coldSetup(std::vector<int> *v) { v->push_back(1); }
void serve(int n) { (void)n; }
}
)");
    EXPECT_TRUE(a.pass()) << hp::renderText(a);
}

TEST(HotpathTool, TrailingCommentAllowSuppressesLine)
{
    const auto a = analyzeSource(R"(
#include <vector>
namespace demo {
void serve(int n)
{
    std::vector<int> scratch;
    scratch.reserve(8); // ERC_HOT_PATH_ALLOW("reserve-once: amortized")
    (void)n;
}
}
)");
    EXPECT_TRUE(a.pass()) << hp::renderText(a);
}

TEST(HotpathTool, PrecedingLineAllowSuppressesNextLine)
{
    const auto a = analyzeSource(R"(
#include <vector>
namespace demo {
void serve(std::vector<int> *out)
{
    // ERC_HOT_PATH_ALLOW("bounded by shard count, reuses capacity")
    out->push_back(1);
}
}
)");
    EXPECT_TRUE(a.pass()) << hp::renderText(a);
}

TEST(HotpathTool, AllowDoesNotLeakPastTheNextLine)
{
    const auto a = analyzeSource(R"(
#include <vector>
namespace demo {
void serve(std::vector<int> *out)
{
    out->reserve(4); // ERC_HOT_PATH_ALLOW("warm-up only")
    out->push_back(1);
    out->push_back(2);
}
}
)");
    // The marker covers its own line and the next; the second
    // push_back still fails.
    ASSERT_EQ(a.violations.size(), 1u) << hp::renderText(a);
    EXPECT_EQ(a.violations[0].kind, "container-growth");
}

TEST(HotpathTool, FunctionLevelAllowExemptsAndStopsTraversal)
{
    const auto a = analyzeSource(R"(
#include <vector>
namespace demo {
std::vector<int> g;
void helper() { g.push_back(1); }
// ERC_HOT_PATH_ALLOW("driver-side: shares a base name with a root")
void serve(int n)
{
    g.push_back(n);
    helper();
}
}
)");
    // serve is exempt and traversal stops there, so helper (only
    // reachable through serve) is never scanned either.
    EXPECT_TRUE(a.pass()) << hp::renderText(a);
}

TEST(HotpathTool, CommentsAndStringsDoNotFlag)
{
    const auto a = analyzeSource(R"(
namespace demo {
const char *describe() { return "calls new and push_back"; }
void serve(int n)
{
    // This comment mentions new, throw and std::cout freely.
    const char *what = describe();
    (void)what;
    (void)n;
}
}
)");
    EXPECT_TRUE(a.pass()) << hp::renderText(a);
}

TEST(HotpathTool, AnnotationInCommentCreatesNoRoot)
{
    hp::FileSet files;
    files["src/demo.h"] = R"(#pragma once
#define ERC_HOT_PATH
namespace demo {
// A doc mention of ERC_HOT_PATH (this marker) is not an annotation.
void notHot(int n);
}
)";
    files["src/demo.cc"] = R"(
#include <vector>
namespace demo {
void notHot(int n)
{
    std::vector<int> v;
    v.push_back(n);
}
}
)";
    const auto a = hp::analyze(files);
    EXPECT_EQ(a.rootCount, 0u);
    EXPECT_TRUE(a.pass()) << hp::renderText(a);
}

TEST(HotpathTool, MutexLockExemptInRuntimeOnly)
{
    const char *body = R"(
#include <mutex>
namespace demo {
std::mutex m;
ERC_HOT_PATH
void serve(int n)
{
    std::lock_guard<std::mutex> guard(m);
    (void)n;
}
}
)";
    const std::string with_macros =
        std::string("#define ERC_HOT_PATH\n") + body;

    hp::FileSet runtime_files;
    runtime_files["src/elasticrec/runtime/q.cc"] = with_macros;
    EXPECT_TRUE(hp::analyze(runtime_files).pass());

    hp::FileSet serving_files;
    serving_files["src/elasticrec/serving/q.cc"] = with_macros;
    const auto a = hp::analyze(serving_files);
    ASSERT_EQ(a.violations.size(), 1u) << hp::renderText(a);
    EXPECT_EQ(a.violations[0].kind, "mutex-lock");
}

TEST(HotpathTool, BlockingIoAndStringAllocFlagged)
{
    const auto a = analyzeSource(R"(
#include <iostream>
#include <string>
namespace demo {
void serve(int n)
{
    std::cout << n;
    std::string label = std::to_string(n);
    (void)label;
}
}
)");
    ASSERT_EQ(a.violations.size(), 2u) << hp::renderText(a);
    EXPECT_EQ(a.violations[0].kind, "blocking-io");
    EXPECT_EQ(a.violations[1].kind, "string-alloc");
}

TEST(HotpathTool, ExtractorHandlesCtorInitListAndTrailingTokens)
{
    const auto defs = hp::extractFunctions("src/x.cc", R"(
struct Widget
{
    explicit Widget(int n) : size_(n), data_{n, n} {}
    int size() const noexcept { return size_; }
    auto doubled() const -> int { return size_ * 2; }
    int size_;
    int data_[2];
};
int freeFn(int v)
{
    auto lambda = [v](int x) { return x + v; };
    return lambda(v);
}
)");
    ASSERT_EQ(defs.size(), 4u);
    EXPECT_EQ(defs[0].name, "Widget");
    EXPECT_EQ(defs[1].name, "size");
    EXPECT_EQ(defs[2].name, "doubled");
    // The lambda body belongs to freeFn, not a separate definition.
    EXPECT_EQ(defs[3].name, "freeFn");
}

TEST(HotpathTool, QualifiedDefinitionNamesAreReported)
{
    const auto defs = hp::extractFunctions("src/x.cc", R"(
namespace outer {
struct S { void method(); };
void S::method() {}
}
)");
    ASSERT_EQ(defs.size(), 1u);
    EXPECT_EQ(defs[0].name, "method");
    EXPECT_EQ(defs[0].display, "S::method");
}

TEST(HotpathTool, JsonRenderingContract)
{
    const auto a = analyzeSource(R"(
namespace demo {
void serve(int n) { int *p = new int[n]; delete[] p; }
}
)");
    const std::string json = hp::renderJson(a);
    EXPECT_NE(json.find("\"schema\": \"erec_hotpath/v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"pass\": false"), std::string::npos);
    EXPECT_NE(json.find("\"kind\": \"heap-alloc\""), std::string::npos);
    EXPECT_NE(json.find("\"path\": [\"serve\"]"),
              std::string::npos);

    const auto clean = analyzeSource(R"(
namespace demo {
void serve(int n) { (void)n; }
}
)");
    EXPECT_NE(hp::renderJson(clean).find("\"pass\": true"),
              std::string::npos);
}

TEST(HotpathTool, TextRenderingSummarizesCounts)
{
    const auto a = analyzeSource(R"(
namespace demo {
void serve(int n) { (void)n; }
}
)");
    const std::string text = hp::renderText(a);
    EXPECT_NE(text.find("PASS"), std::string::npos);
    EXPECT_NE(text.find("1 hot roots"), std::string::npos);
}

} // namespace
