/**
 * @file
 * Tests for the discrete-event queue: time ordering, the documented
 * FIFO tie-break contract (determinism under permuted insertion),
 * boundary semantics and delay validation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/sim/event_queue.h"

namespace erec::sim {
namespace {

/** Records every dispatched event in execution order. */
struct RecordingSink final : EventSink
{
    std::vector<EventRecord> events;

    void
    onEvent(const EventRecord &event) override
    {
        events.push_back(event);
    }
};

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue q;
    RecordingSink sink;
    q.schedule(30, EventType::kGeneric, 3);
    q.schedule(10, EventType::kGeneric, 1);
    q.schedule(20, EventType::kGeneric, 2);
    q.runUntil(100, sink);
    ASSERT_EQ(sink.events.size(), 3u);
    EXPECT_EQ(sink.events[0].a, 1u);
    EXPECT_EQ(sink.events[1].a, 2u);
    EXPECT_EQ(sink.events[2].a, 3u);
    EXPECT_EQ(q.now(), 100);
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueueTest, FifoAtSameTick)
{
    EventQueue q;
    RecordingSink sink;
    for (std::uint64_t i = 0; i < 5; ++i)
        q.schedule(10, EventType::kGeneric, i);
    q.runUntil(10, sink);
    ASSERT_EQ(sink.events.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        EXPECT_EQ(sink.events[i].a, i);
}

TEST(EventQueueTest, TieBreakIsScheduleOrderUnderPermutedInsertion)
{
    // The contract: same-time events run in schedule() call order, no
    // matter how calls at *other* times interleave or how the heap
    // happens to lay records out. Interleave three timestamps in every
    // permutation of a fixed insertion pattern and require the
    // execution order to be identical each time.
    const std::vector<SimTime> times = {20, 10, 20, 30, 10, 20,
                                        30, 10, 30, 20, 10, 30};
    std::vector<std::size_t> perm(times.size());
    for (std::size_t i = 0; i < perm.size(); ++i)
        perm[i] = i;

    // Expected: stable sort of the pattern by time. Payload `a` below
    // is the schedule-call index, so within one timestamp the expected
    // `a` sequence is ascending call order.
    std::vector<std::vector<std::uint64_t>> seen;
    for (int round = 0; round < 24; ++round) {
        EventQueue q;
        RecordingSink sink;
        // A different insertion interleaving each round: rotate the
        // permutation, but schedule-call order *within* one timestamp
        // is always the order the rotated sequence visits it.
        std::rotate(perm.begin(), perm.begin() + 1, perm.end());
        std::vector<std::uint64_t> call_index_at(times.size());
        std::uint64_t call = 0;
        for (const std::size_t idx : perm) {
            call_index_at[idx] = call;
            q.schedule(times[idx], EventType::kGeneric, call);
            ++call;
        }
        q.runUntil(100, sink);
        ASSERT_EQ(sink.events.size(), times.size());
        // Within each timestamp, execution must follow call order.
        std::uint64_t prev_call = 0;
        SimTime prev_time = -1;
        for (const auto &ev : sink.events) {
            EXPECT_GE(ev.time, prev_time);
            if (ev.time == prev_time)
                EXPECT_GT(ev.a, prev_call)
                    << "same-time events ran out of schedule order";
            prev_time = ev.time;
            prev_call = ev.a;
        }
    }
}

TEST(EventQueueTest, EventsMayScheduleEvents)
{
    // A sink that reschedules: each kGeneric with a > 0 schedules a
    // follow-up at now + 5 with a - 1.
    struct Chain final : EventSink
    {
        EventQueue *q = nullptr;
        int fired = 0;

        void
        onEvent(const EventRecord &event) override
        {
            ++fired;
            if (event.a > 0)
                q->scheduleAfter(5, EventType::kGeneric, event.a - 1);
        }
    };
    EventQueue q;
    Chain sink;
    sink.q = &q;
    q.schedule(5, EventType::kGeneric, 1);
    q.runUntil(9, sink);
    EXPECT_EQ(sink.fired, 1);
    q.runUntil(10, sink);
    EXPECT_EQ(sink.fired, 2);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary)
{
    EventQueue q;
    RecordingSink sink;
    q.schedule(10, EventType::kGeneric);
    q.schedule(11, EventType::kGeneric);
    q.runUntil(10, sink); // inclusive boundary
    EXPECT_EQ(sink.events.size(), 1u);
    EXPECT_EQ(q.now(), 10);
    EXPECT_FALSE(q.empty());
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, ClockNeverGoesBackwards)
{
    EventQueue q;
    RecordingSink sink;
    q.schedule(50, EventType::kGeneric);
    q.runUntil(100, sink);
    EXPECT_THROW(q.schedule(99, EventType::kGeneric), ConfigError);
    EXPECT_THROW(q.scheduleAfter(-1, EventType::kGeneric), ConfigError);
}

TEST(EventQueueTest, ScheduleAfterRejectsOverflowingDelay)
{
    EventQueue q;
    RecordingSink sink;
    q.schedule(100, EventType::kGeneric);
    q.runUntil(100, sink);
    // now + delay would wrap past SimTime's maximum: must throw, not
    // silently schedule in the past.
    EXPECT_THROW(
        q.scheduleAfter(std::numeric_limits<SimTime>::max() - 99,
                        EventType::kGeneric),
        ConfigError);
    // The largest representable delay is still accepted.
    q.scheduleAfter(std::numeric_limits<SimTime>::max() - 100,
                    EventType::kGeneric);
    EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RunOneReturnsFalseWhenEmpty)
{
    EventQueue q;
    RecordingSink sink;
    EXPECT_FALSE(q.runOne(sink));
    q.schedule(1, EventType::kGeneric);
    EXPECT_TRUE(q.runOne(sink));
    EXPECT_FALSE(q.runOne(sink));
    EXPECT_EQ(q.now(), 1);
}

TEST(EventQueueTest, PayloadWordsRoundTrip)
{
    EventQueue q;
    RecordingSink sink;
    q.schedule(1, EventType::kRpcArrive, 0xDEADBEEFu, 7u);
    q.runOne(sink);
    ASSERT_EQ(sink.events.size(), 1u);
    EXPECT_EQ(sink.events[0].type, EventType::kRpcArrive);
    EXPECT_EQ(sink.events[0].a, 0xDEADBEEFu);
    EXPECT_EQ(sink.events[0].b, 7u);
}

} // namespace
} // namespace erec::sim
