/**
 * @file
 * Tests for the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/sim/event_queue.h"

namespace erec::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100);
    EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueueTest, FifoAtSameTick)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&order, i]() { order.push_back(i); });
    q.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, EventsMayScheduleEvents)
{
    EventQueue q;
    int fired = 0;
    q.schedule(5, [&]() {
        ++fired;
        q.scheduleAfter(5, [&]() { ++fired; });
    });
    q.runUntil(9);
    EXPECT_EQ(fired, 1);
    q.runUntil(10);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(11, [&]() { ++fired; });
    q.runUntil(10); // inclusive boundary
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(q.now(), 10);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, ClockNeverGoesBackwards)
{
    EventQueue q;
    q.schedule(50, []() {});
    q.runUntil(100);
    EXPECT_THROW(q.schedule(99, []() {}), ConfigError);
    EXPECT_THROW(q.scheduleAfter(-1, []() {}), ConfigError);
}

TEST(EventQueueTest, RunOneReturnsFalseWhenEmpty)
{
    EventQueue q;
    EXPECT_FALSE(q.runOne());
    q.schedule(1, []() {});
    EXPECT_TRUE(q.runOne());
    EXPECT_FALSE(q.runOne());
}

} // namespace
} // namespace erec::sim
