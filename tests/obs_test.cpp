/**
 * @file
 * Unit tests for the observability layer: metric registry semantics,
 * histogram bucket boundaries, Prometheus text rendering (escaping,
 * labels, cumulative buckets), trace JSON-lines round-trips and tracer
 * sampling invariants, and the erec_trace/v1 schema validator over
 * causal (span-id-carrying) traces.
 */

#include <gtest/gtest.h>

#include <limits>

#include "elasticrec/common/error.h"
#include "elasticrec/obs/export.h"
#include "elasticrec/obs/metric.h"
#include "elasticrec/obs/span_name.h"
#include "elasticrec/obs/trace.h"
#include "elasticrec/obs/trace_schema.h"

namespace erec::obs {
namespace {

TEST(HistogramTest, BucketBoundariesAreInclusiveUpper)
{
    // Prometheus semantics: bucket i counts bounds[i-1] < x <= bounds[i].
    Histogram h({1.0, 2.0, 5.0});
    h.observe(0.5); // <= 1.0 -> bucket 0
    h.observe(1.0); // == 1.0 -> bucket 0 (upper bound inclusive)
    h.observe(1.5); // -> bucket 1
    h.observe(2.0); // == 2.0 -> bucket 1
    h.observe(5.0); // == 5.0 -> bucket 2
    h.observe(9.0); // > 5.0 -> +Inf overflow bucket
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u); // +Inf
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 9.0);
}

TEST(HistogramTest, NanDroppedAndNegativesSaturateToZero)
{
    Histogram h({1.0, 2.0});
    h.observe(std::numeric_limits<double>::quiet_NaN());
    EXPECT_EQ(h.count(), 0u) << "NaN must not be counted";
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    // A negative latency is a clock artifact; it lands in the lowest
    // bucket as 0 instead of corrupting the sum.
    h.observe(-5.0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, RejectsNonIncreasingBounds)
{
    EXPECT_THROW(Histogram({1.0, 1.0}), ConfigError);
    EXPECT_THROW(Histogram({2.0, 1.0}), ConfigError);
    EXPECT_THROW(Histogram({}), ConfigError);
}

TEST(RegistryTest, HandlesAreStableAndKeyedByLabels)
{
    Registry r;
    Counter &a = r.counter("erec_x_total", "help", {{"d", "one"}});
    Counter &b = r.counter("erec_x_total", "help", {{"d", "two"}});
    Counter &a2 = r.counter("erec_x_total", "help", {{"d", "one"}});
    EXPECT_EQ(&a, &a2);
    EXPECT_NE(&a, &b);
    a.inc();
    a.inc(2.5);
    EXPECT_DOUBLE_EQ(r.value("erec_x_total", {{"d", "one"}}), 3.5);
    EXPECT_DOUBLE_EQ(r.value("erec_x_total", {{"d", "two"}}), 0.0);
}

TEST(RegistryTest, AbsentSeriesReadsZeroWithoutInserting)
{
    Registry r;
    EXPECT_DOUBLE_EQ(r.value("erec_missing", {{"d", "x"}}), 0.0);
    EXPECT_TRUE(r.families().empty());
}

TEST(RegistryTest, KindConflictAndBadNamesThrow)
{
    Registry r;
    r.counter("erec_x_total", "help");
    EXPECT_THROW(r.gauge("erec_x_total", "help"), ConfigError);
    EXPECT_THROW(r.counter("0bad", "help"), ConfigError);
    EXPECT_THROW(r.counter("has space", "help"), ConfigError);
    EXPECT_THROW(r.counter("erec_l", "help", {{"0bad", "v"}}),
                 ConfigError);
}

TEST(RegistryTest, RemoveDropsOnlyTheNamedChild)
{
    Registry r;
    r.gauge("erec_g", "help", {{"pod", "pod-0"}}).set(1);
    r.gauge("erec_g", "help", {{"pod", "pod-1"}}).set(2);
    r.remove("erec_g", {{"pod", "pod-0"}});
    EXPECT_DOUBLE_EQ(r.value("erec_g", {{"pod", "pod-0"}}), 0.0);
    EXPECT_DOUBLE_EQ(r.value("erec_g", {{"pod", "pod-1"}}), 2.0);
    r.remove("erec_g", {{"pod", "pod-9"}}); // absent: no-op
    r.remove("erec_nope", {});              // absent family: no-op
}

TEST(ExportTest, EscapesLabelValues)
{
    EXPECT_EQ(escapeLabelValue("plain"), "plain");
    EXPECT_EQ(escapeLabelValue("a\\b"), "a\\\\b");
    EXPECT_EQ(escapeLabelValue("a\"b"), "a\\\"b");
    EXPECT_EQ(escapeLabelValue("a\nb"), "a\\nb");
}

TEST(ExportTest, PrometheusTextRendersFamiliesAndLabels)
{
    Registry r;
    r.counter("erec_done_total", "Work done.", {{"deployment", "d\"1"}})
        .inc(3);
    r.gauge("erec_depth", "Queue depth.").set(7);
    const std::string text = toPrometheusText(r);
    EXPECT_NE(text.find("# HELP erec_done_total Work done.\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE erec_done_total counter\n"),
              std::string::npos);
    EXPECT_NE(
        text.find("erec_done_total{deployment=\"d\\\"1\"} 3\n"),
        std::string::npos);
    EXPECT_NE(text.find("# TYPE erec_depth gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("erec_depth 7\n"), std::string::npos);
}

TEST(ExportTest, PrometheusHistogramIsCumulativeWithInf)
{
    Registry r;
    Histogram &h =
        r.histogram("erec_lat_ms", "Latency.", {1.0, 2.0});
    h.observe(0.5);
    h.observe(1.5);
    h.observe(99.0);
    const std::string text = toPrometheusText(r);
    EXPECT_NE(text.find("erec_lat_ms_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("erec_lat_ms_bucket{le=\"2\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("erec_lat_ms_bucket{le=\"+Inf\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("erec_lat_ms_count 3\n"), std::string::npos);
    EXPECT_NE(text.find("erec_lat_ms_sum 101\n"), std::string::npos);
}

TEST(TracerTest, SamplesEveryNthDeterministically)
{
    Tracer t(3);
    ASSERT_TRUE(t.enabled());
    int sampled = 0;
    for (int i = 0; i < 10; ++i) {
        QueryTrace *trace = t.maybeSample(i * 100);
        if (i % 3 == 0) {
            ASSERT_NE(trace, nullptr) << "arrival " << i;
            EXPECT_EQ(trace->queryId, static_cast<std::uint64_t>(i));
            ++sampled;
        } else {
            EXPECT_EQ(trace, nullptr) << "arrival " << i;
        }
    }
    EXPECT_EQ(sampled, 4);
    EXPECT_EQ(t.seen(), 10u);
    EXPECT_EQ(t.traces().size(), 4u);
}

TEST(TracerTest, DisabledTracerSamplesNothing)
{
    Tracer t(0);
    EXPECT_FALSE(t.enabled());
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(t.maybeSample(i), nullptr);
    EXPECT_TRUE(t.traces().empty());
}

TEST(TracerTest, FinishStampsCompletionAndSortsSpans)
{
    Tracer t(1);
    QueryTrace *trace = t.maybeSample(100);
    ASSERT_NE(trace, nullptr);
    trace->addSpan("late", 300, 400);
    trace->addSpan("early", 100, 200);
    t.finish(trace, 450);
    EXPECT_TRUE(trace->completed);
    EXPECT_EQ(trace->completion, 450);
    ASSERT_EQ(trace->spans.size(), 2u);
    EXPECT_EQ(trace->spans[0].name, "early");
    EXPECT_EQ(trace->spans[1].name, "late");
}

TEST(TracerTest, ResetMidRunDropsTracesAndRestartsSampling)
{
    Tracer t(2);
    for (int i = 0; i < 5; ++i) {
        QueryTrace *trace = t.maybeSample(i * 10);
        if (trace != nullptr)
            t.finish(trace, i * 10 + 5);
    }
    ASSERT_EQ(t.traces().size(), 3u); // arrivals 0, 2, 4
    t.reset();
    EXPECT_EQ(t.seen(), 0u);
    EXPECT_TRUE(t.traces().empty());
    // The very next arrival is sampled again, as at a fresh start.
    EXPECT_NE(t.maybeSample(1000), nullptr);
    EXPECT_EQ(t.maybeSample(1010), nullptr);
    EXPECT_EQ(t.traces().front().queryId, 0u);
}

TEST(TracerTest, UnfinishedTraceRecordsALostQuery)
{
    Tracer t(1);
    QueryTrace *trace = t.maybeSample(500);
    ASSERT_NE(trace, nullptr);
    trace->addSpan("sparse/s0/queue", 500, 900);
    // The pod crashed: finish() is never called.
    EXPECT_FALSE(trace->completed);
    EXPECT_EQ(trace->completion, 0);
    ASSERT_EQ(trace->spans.size(), 1u);
    EXPECT_EQ(trace->spans[0].end, 900);
}

TEST(TracerTest, FinishKeepsEqualStartSpanInsertionOrder)
{
    // Parallel fan-out spans start at the same instant; the sort must
    // be stable so traced runs stay byte-reproducible.
    Tracer t(1);
    QueryTrace *trace = t.maybeSample(0);
    ASSERT_NE(trace, nullptr);
    trace->addSpan("rpc/s1/request", 100, 300);
    trace->addSpan("rpc/s0/request", 100, 200);
    trace->addSpan("dense/queue", 0, 100);
    t.finish(trace, 400);
    ASSERT_EQ(trace->spans.size(), 3u);
    EXPECT_EQ(trace->spans[0].name, "dense/queue");
    EXPECT_EQ(trace->spans[1].name, "rpc/s1/request");
    EXPECT_EQ(trace->spans[2].name, "rpc/s0/request");
}

TEST(ExportTest, SkipsFamiliesWithNoChildren)
{
    // remove() can empty a family (last pod gauge gone); the export
    // must not emit a header-only family, which promcheck rejects.
    Registry r;
    r.gauge("erec_pod_busy", "Busy.", {{"pod", "p0"}}).set(1);
    r.counter("erec_done_total", "Done.").inc();
    r.remove("erec_pod_busy", {{"pod", "p0"}});
    const std::string text = toPrometheusText(r);
    EXPECT_EQ(text.find("erec_pod_busy"), std::string::npos);
    EXPECT_NE(text.find("erec_done_total"), std::string::npos);
}

TEST(ExportTest, TraceJsonLinesRoundTrip)
{
    std::deque<QueryTrace> traces;
    QueryTrace a;
    a.queryId = 7;
    a.arrival = 1000;
    a.completion = 5000;
    a.completed = true;
    a.addSpan("dense/queue", 1000, 1200);
    a.addSpan("sparse/t0-s1/service", 1200, 4000);
    traces.push_back(a);
    QueryTrace b; // lost query: never completed, no spans
    b.queryId = 8;
    b.arrival = 2000;
    traces.push_back(b);

    const std::string text = toTraceJsonLines(traces);
    const auto back = readTraceJsonLines(text);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].queryId, 7u);
    EXPECT_EQ(back[0].arrival, 1000);
    EXPECT_EQ(back[0].completion, 5000);
    EXPECT_TRUE(back[0].completed);
    ASSERT_EQ(back[0].spans.size(), 2u);
    EXPECT_EQ(back[0].spans[0].name, "dense/queue");
    EXPECT_EQ(back[0].spans[0].start, 1000);
    EXPECT_EQ(back[0].spans[0].end, 1200);
    EXPECT_EQ(back[0].spans[1].name, "sparse/t0-s1/service");
    EXPECT_FALSE(back[1].completed);
    EXPECT_TRUE(back[1].spans.empty());

    // Writing the parsed traces again is byte-identical.
    std::deque<QueryTrace> again(back.begin(), back.end());
    EXPECT_EQ(toTraceJsonLines(again), text);
}

TEST(ExportTest, CausalTraceRoundTripKeepsIdsAndValidates)
{
    const NameId query = internSpanName("query");
    const NameId rpc = internSpanName("rpc/t0-s0/request");

    std::deque<QueryTrace> traces;
    QueryTrace t;
    t.queryId = 4;
    t.traceId = 5;
    t.arrival = 1000;
    t.completion = 9000;
    t.completed = true;
    t.addSpan(query, 1000, 9000, kRootSpanId, 0);
    t.addSpan(rpc, 1500, 8000, (kRootSpanId << 8) | 3, kRootSpanId);
    traces.push_back(t);

    // The causal fields survive the JSON-lines round trip.
    const auto back = readTraceJsonLines(toTraceJsonLines(traces));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].traceId, 5u);
    ASSERT_EQ(back[0].spans.size(), 2u);
    EXPECT_EQ(back[0].spans[0].spanId, kRootSpanId);
    EXPECT_EQ(back[0].spans[0].parentId, 0u);
    EXPECT_EQ(back[0].spans[1].spanId, (kRootSpanId << 8) | 3);
    EXPECT_EQ(back[0].spans[1].parentId, kRootSpanId);

    // And the round-tripped trace satisfies erec_trace/v1.
    EXPECT_EQ(validateTraceSchema(back), std::vector<std::string>{});
}

TEST(TraceSchemaTest, FlagsStructuralViolations)
{
    std::vector<QueryTrace> traces;
    QueryTrace t;
    t.queryId = 1;
    t.arrival = 100;
    t.completion = 50; // Completion precedes arrival.
    t.completed = true;
    t.addSpan("backwards", 400, 300);             // end < start
    t.addSpan("late", 500, 600);                  // outlives completion
    auto &orphan = t.spans.emplace_back();
    orphan.name = "orphan";
    orphan.spanId = 99;
    orphan.parentId = 42; // Parent never recorded; trace is completed.
    traces.push_back(t);

    const auto errors = validateTraceSchema(traces);
    EXPECT_GE(errors.size(), 4u);

    // The same dangling parent is legitimate on an *open* trace: the
    // enclosing spans only close at completion, so mid-flight exports
    // must not be rejected for them.
    traces[0].completed = false;
    traces[0].spans.erase(traces[0].spans.begin()); // Drop end<start.
    const auto open_errors = validateTraceSchema(traces);
    EXPECT_EQ(open_errors, std::vector<std::string>{});
}

TEST(ExportTest, TraceReaderRejectsMalformedInput)
{
    EXPECT_THROW(readTraceJsonLines("not json\n"), ConfigError);
    EXPECT_THROW(readTraceJsonLines("{\"query_id\":1\n"), ConfigError);
    EXPECT_THROW(readTraceJsonLines("{\"mystery_key\":1}\n"),
                 ConfigError);
}

TEST(ExportTest, JsonEscapesSpanNames)
{
    std::deque<QueryTrace> traces;
    QueryTrace a;
    a.queryId = 1;
    a.addSpan("we\"ird\\name", 0, 1);
    traces.push_back(a);
    const std::string text = toTraceJsonLines(traces);
    EXPECT_NE(text.find("we\\\"ird\\\\name"), std::string::npos);
    const auto back = readTraceJsonLines(text);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].spans[0].name, "we\"ird\\name");
}

} // namespace
} // namespace erec::obs
