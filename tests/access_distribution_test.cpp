/**
 * @file
 * Tests for the access distributions, including a parameterized
 * property suite checking that every distribution's analytic CDF
 * agrees with its empirical sampling behaviour — the invariant the
 * paper's cost model (Algorithm 1, line 11) depends on.
 */

#include <gtest/gtest.h>

#include <memory>

#include "elasticrec/common/error.h"
#include "elasticrec/workload/access_distribution.h"

namespace erec::workload {
namespace {

TEST(LocalityDistributionTest, TopTenPercentCoversP)
{
    for (double p : {0.10, 0.50, 0.90, 0.94}) {
        LocalityDistribution d(100000, p);
        EXPECT_NEAR(d.massOfTopRows(10000), p, 1e-9) << "P=" << p;
        EXPECT_NEAR(d.localityP(), p, 1e-9);
    }
}

TEST(LocalityDistributionTest, CdfEndpoints)
{
    LocalityDistribution d(1000, 0.9);
    EXPECT_DOUBLE_EQ(d.massOfTopRows(0), 0.0);
    EXPECT_DOUBLE_EQ(d.massOfTopRows(1000), 1.0);
    EXPECT_DOUBLE_EQ(d.massOfTopRows(5000), 1.0);
}

TEST(LocalityDistributionTest, RejectsBadParameters)
{
    EXPECT_THROW(LocalityDistribution(0, 0.9), ConfigError);
    EXPECT_THROW(LocalityDistribution(10, 0.0), ConfigError);
    EXPECT_THROW(LocalityDistribution(10, 1.0), ConfigError);
    EXPECT_THROW(LocalityDistribution(10, 0.9, 1.5), ConfigError);
}

TEST(ZipfDistributionTest, HeadIsHotterThanTail)
{
    ZipfDistribution d(10000, 1.0);
    const double head = d.massOfTopRows(100);
    const double tail = d.massOfTopRows(10000) - d.massOfTopRows(9900);
    EXPECT_GT(head, tail * 10);
}

TEST(ZipfDistributionTest, SampleMatchesPmfForSmallTable)
{
    // For a 4-row zipf(1.0): masses ~ 1, 1/2, 1/3, 1/4 normalized.
    ZipfDistribution d(4, 1.0);
    Rng rng(3);
    std::vector<int> counts(4, 0);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[d.sampleRank(rng)];
    const double h = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
    for (int k = 0; k < 4; ++k) {
        const double expect = (1.0 / (k + 1)) / h;
        EXPECT_NEAR(static_cast<double>(counts[k]) / n, expect, 0.01)
            << "rank " << k;
    }
}

TEST(PiecewiseCdfDistributionTest, InterpolatesAnchors)
{
    PiecewiseCdfDistribution d(
        1000, {{0.0, 0.0}, {0.1, 0.8}, {1.0, 1.0}});
    EXPECT_NEAR(d.massOfTopRows(100), 0.8, 1e-9);
    EXPECT_NEAR(d.massOfTopRows(50), 0.4, 1e-9);  // linear in segment
    EXPECT_NEAR(d.massOfTopRows(550), 0.9, 1e-9); // midpoint of tail
}

TEST(PiecewiseCdfDistributionTest, RejectsNonMonotoneAnchors)
{
    EXPECT_THROW(PiecewiseCdfDistribution(
                     100, {{0.0, 0.0}, {0.5, 0.9}, {0.4, 0.95}, {1.0, 1.0}}),
                 ConfigError);
}

TEST(UniformDistributionTest, LinearCdf)
{
    UniformDistribution d(1000);
    EXPECT_NEAR(d.massOfTopRows(100), 0.1, 1e-12);
    EXPECT_NEAR(d.localityP(), 0.1, 1e-12);
}

// ---------------------------------------------------------------------
// Property suite: analytic CDF == empirical sampling distribution.
// ---------------------------------------------------------------------

struct DistCase
{
    const char *name;
    std::shared_ptr<const AccessDistribution> dist;
};

class CdfConsistency : public ::testing::TestWithParam<DistCase>
{
};

TEST_P(CdfConsistency, AnalyticCdfMatchesEmpirical)
{
    const auto &dist = *GetParam().dist;
    const std::uint64_t rows = dist.numRows();
    Rng rng(1234);
    const int n = 300000;
    std::vector<std::uint32_t> counts(rows, 0);
    for (int i = 0; i < n; ++i)
        ++counts[dist.sampleRank(rng)];

    // Compare at several row-prefix checkpoints.
    for (double frac : {0.001, 0.01, 0.1, 0.3, 0.7}) {
        const auto x = static_cast<std::uint64_t>(
            frac * static_cast<double>(rows));
        if (x == 0)
            continue;
        std::uint64_t covered = 0;
        for (std::uint64_t r = 0; r < x; ++r)
            covered += counts[r];
        const double empirical = static_cast<double>(covered) / n;
        EXPECT_NEAR(empirical, dist.massOfTopRows(x), 0.02)
            << GetParam().name << " at prefix " << frac;
    }
}

TEST_P(CdfConsistency, CdfIsMonotone)
{
    const auto &dist = *GetParam().dist;
    const std::uint64_t rows = dist.numRows();
    double prev = 0.0;
    for (std::uint64_t x = 0; x <= rows; x += std::max<std::uint64_t>(
                                             1, rows / 257)) {
        const double m = dist.massOfTopRows(x);
        EXPECT_GE(m, prev - 1e-12);
        EXPECT_GE(m, 0.0);
        EXPECT_LE(m, 1.0);
        prev = m;
    }
}

TEST_P(CdfConsistency, SamplesInRange)
{
    const auto &dist = *GetParam().dist;
    Rng rng(77);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(dist.sampleRank(rng), dist.numRows());
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, CdfConsistency,
    ::testing::Values(
        DistCase{"locality90",
                 std::make_shared<LocalityDistribution>(5000, 0.90)},
        DistCase{"locality50",
                 std::make_shared<LocalityDistribution>(5000, 0.50)},
        DistCase{"locality10",
                 std::make_shared<LocalityDistribution>(5000, 0.10)},
        DistCase{"zipf1.0",
                 std::make_shared<ZipfDistribution>(5000, 1.0)},
        DistCase{"zipf0.8",
                 std::make_shared<ZipfDistribution>(5000, 0.8)},
        DistCase{"uniform",
                 std::make_shared<UniformDistribution>(5000)},
        DistCase{"piecewise",
                 std::make_shared<PiecewiseCdfDistribution>(
                     5000,
                     std::vector<PiecewiseCdfDistribution::Anchor>{
                         {0.0, 0.0}, {0.05, 0.6}, {0.1, 0.8},
                         {0.5, 0.95}, {1.0, 1.0}})}),
    [](const ::testing::TestParamInfo<DistCase> &info) {
        std::string name = info.param.name;
        for (auto &c : name)
            if (c == '.')
                c = '_';
        return name;
    });

TEST(ZipfDistributionTest, LargeTableSamplingIsFast)
{
    // Rejection-inversion should handle paper-scale tables; this test
    // simply exercises the path (speed asserted by not timing out).
    ZipfDistribution d(20'000'000, 0.99);
    Rng rng(5);
    std::uint64_t acc = 0;
    for (int i = 0; i < 100000; ++i)
        acc += d.sampleRank(rng);
    EXPECT_GT(acc, 0u);
}

} // namespace
} // namespace erec::workload
