/**
 * @file
 * Tests for the executable DLRM model: output validity, determinism,
 * and the decomposition used by the dense shard (runBottom +
 * interactAndPredict must equal forward).
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/model/dlrm.h"

namespace erec::model {
namespace {

DlrmConfig
tinyConfig()
{
    DlrmConfig c = rm1();
    c.name = "tiny";
    c.rowsPerTable = 1000;
    c.numTables = 4;
    c.poolingFactor = 8;
    c.batchSize = 4;
    return c;
}

workload::Query
makeQuery(const DlrmConfig &config, std::uint64_t seed = 1)
{
    workload::QueryShape shape;
    shape.batchSize = config.batchSize;
    shape.numTables = config.numTables;
    shape.gathersPerItem = config.poolingFactor;
    workload::QueryGenerator gen(
        shape,
        std::make_shared<workload::UniformDistribution>(
            config.rowsPerTable),
        seed);
    return gen.next();
}

TEST(DlrmTest, OutputsAreProbabilities)
{
    const auto config = tinyConfig();
    Dlrm model(config);
    const auto q = makeQuery(config);
    const auto in = model.syntheticDenseInput(q.id, q.batchSize);
    const auto probs = model.forward(in, q.lookups, q.batchSize);
    ASSERT_EQ(probs.size(), config.batchSize);
    for (float p : probs) {
        EXPECT_GT(p, 0.0f);
        EXPECT_LT(p, 1.0f);
    }
}

TEST(DlrmTest, DeterministicForSeed)
{
    const auto config = tinyConfig();
    Dlrm a(config, embedding::Storage::Materialized, 7);
    Dlrm b(config, embedding::Storage::Materialized, 7);
    const auto q = makeQuery(config);
    const auto in = a.syntheticDenseInput(q.id, q.batchSize);
    EXPECT_EQ(a.forward(in, q.lookups, q.batchSize),
              b.forward(in, q.lookups, q.batchSize));
}

TEST(DlrmTest, DifferentLookupsChangeOutput)
{
    const auto config = tinyConfig();
    Dlrm model(config);
    const auto q1 = makeQuery(config, 1);
    const auto q2 = makeQuery(config, 2);
    const auto in = model.syntheticDenseInput(0, config.batchSize);
    EXPECT_NE(model.forward(in, q1.lookups, config.batchSize),
              model.forward(in, q2.lookups, config.batchSize));
}

TEST(DlrmTest, DecompositionMatchesForward)
{
    // The dense-shard path (runBottom + local gathers +
    // interactAndPredict) must be numerically identical to forward().
    const auto config = tinyConfig();
    Dlrm model(config);
    const auto q = makeQuery(config);
    const auto in = model.syntheticDenseInput(q.id, q.batchSize);

    const auto bottom = model.runBottom(in, q.batchSize);
    std::vector<std::vector<float>> pooled(config.numTables);
    for (std::uint32_t t = 0; t < config.numTables; ++t) {
        pooled[t].assign(q.batchSize * config.embeddingDim, 0.0f);
        model.table(t)->gatherPool(q.lookups[t].view(),
                                   pooled[t].data());
    }
    const auto via_parts =
        model.interactAndPredict(bottom, pooled, q.batchSize);
    const auto direct = model.forward(in, q.lookups, q.batchSize);
    ASSERT_EQ(via_parts.size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i)
        EXPECT_FLOAT_EQ(via_parts[i], direct[i]);
}

TEST(DlrmTest, VirtualStorageWorksEndToEnd)
{
    auto config = tinyConfig();
    Dlrm model(config, embedding::Storage::Virtual);
    const auto q = makeQuery(config);
    const auto in = model.syntheticDenseInput(q.id, q.batchSize);
    const auto probs = model.forward(in, q.lookups, q.batchSize);
    for (float p : probs) {
        EXPECT_GT(p, 0.0f);
        EXPECT_LT(p, 1.0f);
    }
}

TEST(DlrmTest, RejectsMismatchedInputs)
{
    const auto config = tinyConfig();
    Dlrm model(config);
    const auto q = makeQuery(config);
    EXPECT_THROW(model.forward(std::vector<float>(3), q.lookups,
                               config.batchSize),
                 ConfigError);
    EXPECT_THROW(model.table(config.numTables), ConfigError);
}

TEST(DlrmTest, RejectsBottomDimMismatch)
{
    DlrmConfig c = tinyConfig();
    c.bottomMlp = MlpSpec{{64, 16}}; // output 16 != embedding dim 32
    EXPECT_THROW(Dlrm{c}, ConfigError);
}

} // namespace
} // namespace erec::model
