/**
 * @file
 * Concurrency tests for the mutex-protected state introduced with the
 * thread-annotation layer: the logging sink and the node registry.
 * These mostly exist to give TSan builds (-DELASTICREC_SANITIZE=thread)
 * real cross-thread traffic to check; single-threaded correctness is
 * covered by logging_test.cpp.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/common/logging.h"
#include "elasticrec/hw/platform.h"

namespace erec {
namespace {

TEST(ThreadSafetyTest, ConcurrentLoggingThroughSink)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Info);
    std::atomic<std::size_t> records{0};
    std::atomic<std::size_t> bytes{0};
    setLogSink([&records, &bytes](LogLevel, const std::string &msg) {
        // Touch the payload so a torn message is visible to TSan.
        bytes.fetch_add(msg.size(), std::memory_order_relaxed);
        records.fetch_add(1, std::memory_order_relaxed);
    });

    constexpr int kThreads = 8;
    constexpr int kPerThread = 200;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t] {
            for (int i = 0; i < kPerThread; ++i)
                ERC_LOG_INFO << "t" << t << "-i" << i;
        });
    }
    // Churn the level and the sink's serialization from the main thread
    // while workers log.
    for (int i = 0; i < 100; ++i)
        setLogLevel(LogLevel::Info);
    for (auto &th : threads)
        th.join();

    setLogSink(nullptr);
    setLogLevel(before);
    EXPECT_EQ(records.load(), static_cast<std::size_t>(kThreads) *
                                  kPerThread);
    EXPECT_GT(bytes.load(), 0u);
}

TEST(ThreadSafetyTest, ConcurrentRegistryReadersAndWriters)
{
    auto &registry = hw::NodeRegistry::instance();
    constexpr int kWriters = 4;
    constexpr int kReaders = 4;
    constexpr int kOps = 200;

    std::vector<std::thread> threads;
    threads.reserve(kWriters + kReaders);
    for (int w = 0; w < kWriters; ++w) {
        threads.emplace_back([&registry, w] {
            for (int i = 0; i < kOps; ++i) {
                auto spec = hw::cpuOnlyNode();
                spec.costUnits = w + i * 0.001;
                registry.registerNode(
                    "tsan-node-" + std::to_string(w), spec);
            }
        });
    }
    for (int r = 0; r < kReaders; ++r) {
        threads.emplace_back([&registry] {
            for (int i = 0; i < kOps; ++i) {
                if (registry.hasNode("cpu"))
                    (void)registry.nodeByName("cpu");
                (void)registry.nodeNames();
            }
        });
    }
    for (auto &th : threads)
        th.join();

    for (int w = 0; w < kWriters; ++w)
        EXPECT_TRUE(registry.hasNode("tsan-node-" + std::to_string(w)));
    EXPECT_EQ(registry.nodeByName("cpu").name, "xeon6242-dual");
}

TEST(ThreadSafetyTest, RegistryPreSeededWithPaperPlatforms)
{
    EXPECT_EQ(hw::nodeByName("cpu").name, "xeon6242-dual");
    EXPECT_EQ(hw::nodeByName("cpu-gpu").name, "n1-standard-32-t4");
    EXPECT_THROW(hw::nodeByName("no-such-platform"), ConfigError);
}

} // namespace
} // namespace erec
