/**
 * @file
 * Tests for the simulated pod: queueing, multi-stage pipelining,
 * jitter, lifecycle and drain semantics.
 */

#include <gtest/gtest.h>

#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/sim/pod.h"

namespace erec::sim {
namespace {

WorkItem
item(std::vector<SimTime> &done, double jitter = 1.0)
{
    WorkItem w;
    w.jitter = jitter;
    w.onDone = [&done](SimTime t) { done.push_back(t); };
    return w;
}

TEST(PodTest, SingleStageFifoQueueing)
{
    EventQueue q;
    Pod pod(1, {100});
    pod.markReady();
    std::vector<SimTime> done;
    pod.submit(q, item(done));
    pod.submit(q, item(done));
    pod.submit(q, item(done));
    EXPECT_EQ(pod.inFlight(), 3u);
    q.runUntil(1000);
    // Serial service: completions at 100, 200, 300.
    EXPECT_EQ(done, (std::vector<SimTime>{100, 200, 300}));
    EXPECT_EQ(pod.served(), 3u);
    EXPECT_EQ(pod.inFlight(), 0u);
}

TEST(PodTest, TwoStagePipelineThroughput)
{
    // Stages of 100 and 50: latency = 150, but steady-state spacing is
    // governed by the slower stage (100) — the Figure 4 premise.
    EventQueue q;
    Pod pod(1, {100, 50});
    pod.markReady();
    std::vector<SimTime> done;
    for (int i = 0; i < 4; ++i)
        pod.submit(q, item(done));
    q.runUntil(10000);
    EXPECT_EQ(done,
              (std::vector<SimTime>{150, 250, 350, 450}));
}

TEST(PodTest, SlowSecondStageGovernsToo)
{
    EventQueue q;
    Pod pod(1, {50, 100});
    pod.markReady();
    std::vector<SimTime> done;
    for (int i = 0; i < 3; ++i)
        pod.submit(q, item(done));
    q.runUntil(10000);
    // First completion at 150; subsequent at +100 each.
    EXPECT_EQ(done, (std::vector<SimTime>{150, 250, 350}));
}

TEST(PodTest, JitterScalesServiceTime)
{
    EventQueue q;
    Pod pod(1, {100});
    pod.markReady();
    std::vector<SimTime> done;
    pod.submit(q, item(done, 2.0));
    q.runUntil(10000);
    EXPECT_EQ(done, (std::vector<SimTime>{200}));
}

TEST(PodTest, SubmitRequiresReady)
{
    EventQueue q;
    Pod pod(1, {100});
    std::vector<SimTime> done;
    EXPECT_THROW(pod.submit(q, item(done)), ConfigError);
}

TEST(PodTest, StealQueuedLeavesInService)
{
    EventQueue q;
    Pod pod(1, {100});
    pod.markReady();
    std::vector<SimTime> done;
    for (int i = 0; i < 5; ++i)
        pod.submit(q, item(done));
    // One item is in service, four are queued.
    auto stolen = pod.stealQueued();
    EXPECT_EQ(stolen.size(), 4u);
    EXPECT_EQ(pod.inFlight(), 1u);
    pod.markTerminating();
    EXPECT_FALSE(pod.drained());
    q.runUntil(1000);
    EXPECT_TRUE(pod.drained());
    EXPECT_EQ(done.size(), 1u);
}

TEST(PodTest, RejectsEmptyStages)
{
    EXPECT_THROW(Pod(1, {}), ConfigError);
    EXPECT_THROW(Pod(1, {0}), ConfigError);
}

TEST(PodTest, ManyItemsThroughputMatchesBottleneck)
{
    EventQueue q;
    Pod pod(1, {10, 30, 20});
    pod.markReady();
    std::vector<SimTime> done;
    const int n = 100;
    for (int i = 0; i < n; ++i)
        pod.submit(q, item(done));
    q.runUntil(100000);
    ASSERT_EQ(done.size(), static_cast<std::size_t>(n));
    // Steady-state inter-completion gap equals the slowest stage (30).
    for (std::size_t i = 10; i < done.size(); ++i)
        EXPECT_EQ(done[i] - done[i - 1], 30);
}

TEST(PodTest, CrashReturnsQueuedAndLosesInService)
{
    EventQueue q;
    Pod pod(1, {100});
    pod.markReady();
    std::vector<SimTime> done;
    for (int i = 0; i < 5; ++i)
        pod.submit(q, item(done));
    // One in service + four queued; crash returns the four.
    auto requeue = pod.crash();
    EXPECT_EQ(requeue.size(), 4u);
    EXPECT_EQ(pod.state(), PodState::Crashed);
    EXPECT_FALSE(pod.removable()); // in-service event still pending
    q.runUntil(1000);
    // The in-service item died with the pod: no completion fired.
    EXPECT_TRUE(done.empty());
    EXPECT_EQ(pod.lostItems(), 1u);
    EXPECT_TRUE(pod.removable());
}

TEST(PodTest, CrashLosesMidPipelineWork)
{
    EventQueue q;
    Pod pod(1, {100, 100});
    pod.markReady();
    std::vector<SimTime> done;
    for (int i = 0; i < 3; ++i)
        pod.submit(q, item(done));
    // Advance so item 0 sits in stage 2 and item 1 in stage 1.
    q.runUntil(150);
    auto requeue = pod.crash();
    EXPECT_EQ(requeue.size(), 1u); // item 2 still queued at stage 1
    q.runUntil(5000);
    EXPECT_TRUE(done.empty());
    EXPECT_EQ(pod.lostItems(), 2u);
    EXPECT_TRUE(pod.removable());
}

TEST(PodTest, CrashOnIdlePodIsImmediatelyRemovable)
{
    EventQueue q;
    Pod pod(1, {100});
    pod.markReady();
    auto requeue = pod.crash();
    EXPECT_TRUE(requeue.empty());
    EXPECT_TRUE(pod.removable());
    EXPECT_EQ(pod.lostItems(), 0u);
}

} // namespace
} // namespace erec::sim
