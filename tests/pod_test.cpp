/**
 * @file
 * Tests for the simulated pod: queueing, multi-stage pipelining,
 * jitter, lifecycle and drain semantics, driven through the POD event
 * queue and a recording PodSink.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/sim/pod.h"

namespace erec::sim {
namespace {

/** Routes kStageDone events back to their pod and records the sink
 *  notifications, standing in for the cluster simulation. */
struct PodHarness final : EventSink, PodSink
{
    EventQueue q;
    std::vector<SimTime> started;
    std::vector<SimTime> done;
    std::uint64_t lost = 0;

    void
    onEvent(const EventRecord &event) override
    {
        ASSERT_EQ(event.type, EventType::kStageDone);
        reinterpret_cast<Pod *>(static_cast<std::uintptr_t>(event.a))
            ->stageDone(q, *this,
                        static_cast<std::size_t>(event.b));
    }

    void
    workStarted(const WorkItem &, SimTime start) override
    {
        started.push_back(start);
    }

    void
    workDone(const WorkItem &, SimTime t) override
    {
        done.push_back(t);
    }

    void workLost(const WorkItem &) override { ++lost; }

    void submit(Pod &pod, double jitter = 1.0)
    {
        WorkItem w;
        w.jitter = jitter;
        w.t0 = q.now();
        pod.submit(q, *this, w);
    }

    void run(SimTime end) { q.runUntil(end, *this); }
};

TEST(PodTest, SingleStageFifoQueueing)
{
    PodHarness h;
    Pod pod(1, {100});
    pod.markReady();
    for (int i = 0; i < 3; ++i)
        h.submit(pod);
    EXPECT_EQ(pod.inFlight(), 3u);
    h.run(1000);
    // Serial service: completions at 100, 200, 300.
    EXPECT_EQ(h.done, (std::vector<SimTime>{100, 200, 300}));
    // Queue-exit times: item 0 starts immediately, the rest as the
    // stage frees up.
    EXPECT_EQ(h.started, (std::vector<SimTime>{0, 100, 200}));
    EXPECT_EQ(pod.served(), 3u);
    EXPECT_EQ(pod.inFlight(), 0u);
}

TEST(PodTest, TwoStagePipelineThroughput)
{
    // Stages of 100 and 50: latency = 150, but steady-state spacing is
    // governed by the slower stage (100) — the Figure 4 premise.
    PodHarness h;
    Pod pod(1, {100, 50});
    pod.markReady();
    for (int i = 0; i < 4; ++i)
        h.submit(pod);
    h.run(10000);
    EXPECT_EQ(h.done, (std::vector<SimTime>{150, 250, 350, 450}));
}

TEST(PodTest, SlowSecondStageGovernsToo)
{
    PodHarness h;
    Pod pod(1, {50, 100});
    pod.markReady();
    for (int i = 0; i < 3; ++i)
        h.submit(pod);
    h.run(10000);
    // First completion at 150; subsequent at +100 each.
    EXPECT_EQ(h.done, (std::vector<SimTime>{150, 250, 350}));
}

TEST(PodTest, JitterScalesServiceTime)
{
    PodHarness h;
    Pod pod(1, {100});
    pod.markReady();
    h.submit(pod, 2.0);
    h.run(10000);
    EXPECT_EQ(h.done, (std::vector<SimTime>{200}));
}

TEST(PodTest, SubmitRequiresReady)
{
    PodHarness h;
    Pod pod(1, {100});
    EXPECT_THROW(h.submit(pod), ConfigError);
}

TEST(PodTest, StealQueuedLeavesInService)
{
    PodHarness h;
    Pod pod(1, {100});
    pod.markReady();
    for (int i = 0; i < 5; ++i)
        h.submit(pod);
    // One item is in service, four are queued.
    auto stolen = pod.stealQueued();
    EXPECT_EQ(stolen.size(), 4u);
    EXPECT_EQ(pod.inFlight(), 1u);
    pod.markTerminating();
    EXPECT_FALSE(pod.drained());
    h.run(1000);
    EXPECT_TRUE(pod.drained());
    EXPECT_EQ(h.done.size(), 1u);
}

TEST(PodTest, RejectsEmptyStages)
{
    EXPECT_THROW(Pod(1, {}), ConfigError);
    EXPECT_THROW(Pod(1, {0}), ConfigError);
}

TEST(PodTest, ManyItemsThroughputMatchesBottleneck)
{
    PodHarness h;
    Pod pod(1, {10, 30, 20});
    pod.markReady();
    const int n = 100;
    for (int i = 0; i < n; ++i)
        h.submit(pod);
    h.run(100000);
    ASSERT_EQ(h.done.size(), static_cast<std::size_t>(n));
    // Steady-state inter-completion gap equals the slowest stage (30).
    for (std::size_t i = 10; i < h.done.size(); ++i)
        EXPECT_EQ(h.done[i] - h.done[i - 1], 30);
}

TEST(PodTest, CrashReturnsQueuedAndLosesInService)
{
    PodHarness h;
    Pod pod(1, {100});
    pod.markReady();
    for (int i = 0; i < 5; ++i)
        h.submit(pod);
    // One in service + four queued; crash returns the four.
    auto requeue = pod.crash(h);
    EXPECT_EQ(requeue.size(), 4u);
    EXPECT_EQ(pod.state(), PodState::Crashed);
    EXPECT_FALSE(pod.removable()); // in-service event still pending
    h.run(1000);
    // The in-service item died with the pod: no completion fired, and
    // its loss was reported when the stage event landed.
    EXPECT_TRUE(h.done.empty());
    EXPECT_EQ(h.lost, 1u);
    EXPECT_EQ(pod.lostItems(), 1u);
    EXPECT_TRUE(pod.removable());
}

TEST(PodTest, CrashLosesMidPipelineWork)
{
    PodHarness h;
    Pod pod(1, {100, 100});
    pod.markReady();
    for (int i = 0; i < 3; ++i)
        h.submit(pod);
    // Advance so item 0 sits in stage 2 and item 1 in stage 1.
    h.run(150);
    auto requeue = pod.crash(h);
    EXPECT_EQ(requeue.size(), 1u); // item 2 still queued at stage 1
    h.run(5000);
    EXPECT_TRUE(h.done.empty());
    EXPECT_EQ(pod.lostItems(), 2u);
    EXPECT_EQ(h.lost, 2u);
    EXPECT_TRUE(pod.removable());
}

TEST(PodTest, CrashOnIdlePodIsImmediatelyRemovable)
{
    PodHarness h;
    Pod pod(1, {100});
    pod.markReady();
    auto requeue = pod.crash(h);
    EXPECT_TRUE(requeue.empty());
    EXPECT_TRUE(pod.removable());
    EXPECT_EQ(pod.lostItems(), 0u);
}

TEST(PodTest, WorkItemPayloadRidesThrough)
{
    // The sink, not the pod, owns item semantics: ctx/dep/kind must
    // come back exactly as submitted.
    struct PayloadSink final : EventSink, PodSink
    {
        EventQueue q;
        WorkItem last = {};

        void
        onEvent(const EventRecord &event) override
        {
            reinterpret_cast<Pod *>(
                static_cast<std::uintptr_t>(event.a))
                ->stageDone(q, *this,
                            static_cast<std::size_t>(event.b));
        }
        void workStarted(const WorkItem &, SimTime) override {}
        void
        workDone(const WorkItem &item, SimTime) override
        {
            last = item;
        }
        void workLost(const WorkItem &) override {}
    };
    PayloadSink sink;
    Pod pod(1, {10});
    pod.markReady();
    WorkItem w;
    w.ctx = 42;
    w.dep = 3;
    w.kind = WorkKind::SparseLeg;
    w.t0 = 0;
    pod.submit(sink.q, sink, w);
    sink.q.runUntil(100, sink);
    EXPECT_EQ(sink.last.ctx, 42u);
    EXPECT_EQ(sink.last.dep, 3u);
    EXPECT_EQ(sink.last.kind, WorkKind::SparseLeg);
    EXPECT_EQ(sink.last.svcStart, 0);
}

} // namespace
} // namespace erec::sim
