/**
 * @file
 * Tests for the profiling-based QPS regression model (Figure 9).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "elasticrec/common/error.h"
#include "elasticrec/core/qps_model.h"
#include "elasticrec/hw/platform.h"

namespace erec::core {
namespace {

TEST(QpsModelTest, InterpolatesProfilePoints)
{
    QpsModel m({{1, 1000}, {100, 100}, {10000, 1}});
    EXPECT_NEAR(m.qps(1), 1000, 1e-9);
    EXPECT_NEAR(m.qps(100), 100, 1e-9);
    EXPECT_NEAR(m.qps(10000), 1, 1e-9);
    // Log-log interpolation between (1,1000) and (100,100) is a power
    // law with slope -0.5: qps(10) = 1000 * 10^-0.5.
    EXPECT_NEAR(m.qps(10), 1000 / std::sqrt(10.0), 1e-6);
}

TEST(QpsModelTest, ClampsBelowRange)
{
    QpsModel m({{10, 500}, {100, 50}});
    EXPECT_NEAR(m.qps(0.0), 500, 1e-9);
    EXPECT_NEAR(m.qps(5.0), 500, 1e-9);
}

TEST(QpsModelTest, ExtrapolatesAboveRangeWithLastSlope)
{
    // Slope -1 in the last segment: doubling gathers halves QPS.
    QpsModel m({{1, 1000}, {100, 100}, {200, 50}});
    EXPECT_NEAR(m.qps(400), 25, 1e-6);
}

TEST(QpsModelTest, ServiceTimeIsInverseQps)
{
    QpsModel m({{1, 1000}, {100, 10}});
    EXPECT_EQ(m.serviceTime(100), units::fromSeconds(0.1));
}

TEST(QpsModelTest, RejectsBadProfiles)
{
    EXPECT_THROW(QpsModel({{1, 100}}), ConfigError);
    EXPECT_THROW(QpsModel({{1, 100}, {1, 50}}), ConfigError);
    EXPECT_THROW(QpsModel({{1, 100}, {2, 0}}), ConfigError);
}

TEST(QpsModelTest, ProfiledCurveIsMonotoneDecreasing)
{
    hw::LatencyModel lat(hw::cpuOnlyNode());
    const auto m = QpsModel::profile(lat, 128, 1, 65536, 5000);
    double prev = 1e18;
    for (const auto &p : m.points()) {
        EXPECT_LT(p.qps, prev);
        prev = p.qps;
    }
    EXPECT_GE(m.points().size(), 10u);
}

TEST(QpsModelTest, ProfiledCurveHasFigure9Shape)
{
    // Flat (overhead-bound) head, then declining with gather count.
    hw::LatencyModel lat(hw::cpuOnlyNode());
    const auto m = QpsModel::profile(lat, 128, 1, 65536, 5000);
    const double q1 = m.qps(1);
    const double q100 = m.qps(100);
    const double q10000 = m.qps(10000);
    // Head: within 2x of the zero-gather ceiling.
    EXPECT_GT(q100, q1 / 2);
    // Tail: at least an order of magnitude below the head.
    EXPECT_LT(q10000, q1 / 10);
}

TEST(QpsModelTest, LargerRowsLowerQps)
{
    // Figure 9: larger embedding dimensions shift the curve down.
    hw::LatencyModel lat(hw::cpuOnlyNode());
    const auto dim32 = QpsModel::profile(lat, 32 * 4, 1, 65536);
    const auto dim512 = QpsModel::profile(lat, 512 * 4, 1, 65536);
    EXPECT_GT(dim32.qps(50000), dim512.qps(50000));
}

} // namespace
} // namespace erec::core
