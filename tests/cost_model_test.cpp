/**
 * @file
 * Tests for the deployment-cost model (Algorithm 1): n_s estimation via
 * the CDF, replica counts, capacity and total cost.
 */

#include <gtest/gtest.h>

#include <memory>

#include "elasticrec/common/error.h"
#include "elasticrec/core/cost_model.h"

namespace erec::core {
namespace {

std::shared_ptr<const embedding::AccessCdf>
linearCdf(std::uint64_t rows)
{
    return std::make_shared<embedding::AccessCdf>(
        embedding::AccessCdf::fromMassFunction(
            rows,
            [rows](std::uint64_t x) {
                return static_cast<double>(x) /
                       static_cast<double>(rows);
            },
            std::min<std::uint32_t>(256, rows)));
}

std::shared_ptr<const QpsModel>
flatQps(double qps)
{
    // Constant QPS regardless of gathers.
    return std::make_shared<QpsModel>(
        std::vector<ProfilePoint>{{1, qps}, {1e9, qps}});
}

CostModelParams
params()
{
    CostModelParams p;
    p.targetTraffic = 1000;
    p.gathersPerQuery = 4096;
    p.rowBytes = 128;
    p.minMemAlloc = 1000;
    return p;
}

TEST(CostModelTest, ShardGathersFollowCdf)
{
    CostModel m(linearCdf(1000), flatQps(100), params());
    // Linear CDF: rows [0, 500) hold half the mass.
    EXPECT_NEAR(m.shardGathers(0, 500), 2048, 2);
    EXPECT_NEAR(m.shardGathers(0, 1000), 4096, 1e-6);
    EXPECT_NEAR(m.shardGathers(250, 750), 2048, 2);
}

TEST(CostModelTest, ReplicasCeilAndFloor)
{
    auto p = params();
    CostModel m(linearCdf(100), flatQps(300), p);
    // 1000 / 300 = 3.33 -> ceil 4.
    EXPECT_DOUBLE_EQ(m.replicas(0, 100), 4.0);

    CostModel cheap(linearCdf(100), flatQps(5000), p);
    // 1000 / 5000 = 0.2 -> floored at one replica.
    EXPECT_DOUBLE_EQ(cheap.replicas(0, 100), 1.0);

    p.ceilReplicas = false;
    CostModel frac(linearCdf(100), flatQps(300), p);
    EXPECT_NEAR(frac.replicas(0, 100), 1000.0 / 300.0, 1e-9);
}

TEST(CostModelTest, CapacityIsRowsTimesBytes)
{
    CostModel m(linearCdf(100), flatQps(100), params());
    EXPECT_EQ(m.capacity(10, 60), 50u * 128);
}

TEST(CostModelTest, CostIsReplicasTimesShardSize)
{
    CostModel m(linearCdf(100), flatQps(250), params());
    // replicas = ceil(1000/250) = 4; size = 100*128 + 1000.
    EXPECT_DOUBLE_EQ(m.cost(0, 100), 4.0 * (100 * 128 + 1000));
}

TEST(CostModelTest, HotShardCostsMoreReplicasThanColdShard)
{
    // Skewed CDF: top 10% of rows hold 90% of mass; a load-dependent
    // QPS model then demands more replicas for the hot shard.
    const std::uint64_t rows = 1000;
    auto cdf = std::make_shared<embedding::AccessCdf>(
        embedding::AccessCdf::fromMassFunction(
            rows,
            [rows](std::uint64_t x) {
                const double u =
                    static_cast<double>(x) / static_cast<double>(rows);
                return u <= 0.1 ? 9.0 * u : 0.9 + (u - 0.1) / 9.0;
            },
            200));
    // QPS inversely proportional to gathers.
    auto qps = std::make_shared<QpsModel>(
        std::vector<ProfilePoint>{{1, 100000}, {100000, 1}});
    CostModel m(cdf, qps, params());
    EXPECT_GT(m.replicas(0, 100), m.replicas(100, 1000));
}

TEST(CostModelTest, SubadditivityOfCapacity)
{
    // Splitting a range never changes total capacity.
    CostModel m(linearCdf(1000), flatQps(100), params());
    EXPECT_EQ(m.capacity(0, 1000),
              m.capacity(0, 400) + m.capacity(400, 1000));
}

TEST(CostModelTest, RejectsInvalidRanges)
{
    CostModel m(linearCdf(100), flatQps(100), params());
    EXPECT_THROW(m.cost(50, 50), ConfigError);
    EXPECT_THROW(m.cost(60, 50), ConfigError);
    EXPECT_THROW(m.cost(0, 101), ConfigError);
}

TEST(CostModelTest, RejectsBadConstruction)
{
    EXPECT_THROW(CostModel(nullptr, flatQps(10), params()),
                 ConfigError);
    EXPECT_THROW(CostModel(linearCdf(10), nullptr, params()),
                 ConfigError);
    auto p = params();
    p.targetTraffic = 0;
    EXPECT_THROW(CostModel(linearCdf(10), flatQps(10), p), ConfigError);
}

} // namespace
} // namespace erec::core
