/**
 * @file
 * Tests for the repo linter's rule engine (tools/lint/lint_core): each
 * rule must fire on a seeded violation, stay quiet on the blessed
 * idioms, respect file classes and honor allow() suppressions.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "tools/lint/lint_core.h"

namespace erec::lint {
namespace {

bool
hasRule(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    return std::any_of(diags.begin(), diags.end(),
                       [&rule](const Diagnostic &d) {
                           return d.rule == rule;
                       });
}

TEST(LintToolTest, ClassifiesPathsByTopLevelDirectory)
{
    EXPECT_EQ(classifyPath("src/elasticrec/core/planner.cc"),
              FileClass::LibrarySource);
    EXPECT_EQ(classifyPath("/root/repo/src/elasticrec/core/planner.h"),
              FileClass::LibraryHeader);
    EXPECT_EQ(classifyPath("tests/planner_test.cpp"),
              FileClass::TestSource);
    EXPECT_EQ(classifyPath("bench/bench_util.h"), FileClass::BenchSource);
    EXPECT_EQ(classifyPath("examples/quickstart.cpp"),
              FileClass::ExampleSource);
    EXPECT_EQ(classifyPath("docs/notes.md"), FileClass::Skip);
    EXPECT_EQ(classifyPath("src/elasticrec/core/CMakeLists.txt"),
              FileClass::Skip);
}

TEST(LintToolTest, RawThrowCaughtInLibraryCode)
{
    const std::string bad = "void f() { throw 1; }\n";
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.cc", bad),
                        "raw-throw"));
    // Allowed in its blessed home and outside the library.
    EXPECT_FALSE(hasRule(lintContent("src/elasticrec/common/error.h",
                                     "#pragma once\nnamespace erec {}\n" +
                                         bad),
                         "raw-throw"));
    EXPECT_FALSE(hasRule(lintContent("tests/a_test.cpp", bad),
                         "raw-throw"));
}

TEST(LintToolTest, ThrowInCommentsAndStringsIgnored)
{
    const std::string ok =
        "// this function throws via erec::fatal\n"
        "/* never throw raw */\n"
        "const char *s = \"throw\";\n";
    EXPECT_FALSE(hasRule(lintContent("src/elasticrec/x/a.cc", ok),
                         "raw-throw"));
}

TEST(LintToolTest, UnseededRandomnessCaughtEverywhere)
{
    for (const char *path :
         {"src/elasticrec/x/a.cc", "tests/a_test.cpp", "bench/b.cpp",
          "examples/e.cpp"}) {
        EXPECT_TRUE(hasRule(
            lintContent(path, "int x = std::rand();\n"),
            "unseeded-random"))
            << path;
    }
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.cc",
                                    "std::random_device rd;\n"),
                        "unseeded-random"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.cc",
                                    "auto t = time(nullptr);\n"),
                        "unseeded-random"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.cc",
                                    "srand(42);\n"),
                        "unseeded-random"));
    // The seeded-RNG home is exempt; erec::Rng usage is fine anywhere.
    EXPECT_FALSE(hasRule(lintContent("src/elasticrec/common/rng.cc",
                                     "std::random_device rd;\n"),
                         "unseeded-random"));
    EXPECT_FALSE(hasRule(lintContent("src/elasticrec/x/a.cc",
                                     "Rng rng(7); rng.uniform();\n"),
                         "unseeded-random"));
}

TEST(LintToolTest, WindowedPercentileOnlyInItsStatsHome)
{
    const std::string use = "WindowedPercentile p(window);\n";
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.cc", use),
                        "windowed-percentile"));
    EXPECT_TRUE(hasRule(lintContent("bench/b.cpp", use),
                        "windowed-percentile"));
    // Blessed home and its tests keep exercising the class directly.
    EXPECT_FALSE(hasRule(lintContent("src/elasticrec/common/stats.cc",
                                     use),
                         "windowed-percentile"));
    EXPECT_FALSE(hasRule(lintContent("tests/stats_test.cpp", use),
                         "windowed-percentile"));
    // Mentions in comments don't count.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "// replaces WindowedPercentile with a sketch\n"),
        "windowed-percentile"));
}

TEST(LintToolTest, RawThreadOnlyInRuntimeModule)
{
    const std::string bad = "std::thread t([] {});\n";
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/serving/a.cc", bad),
                        "raw-thread"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.h",
                                    "#pragma once\nnamespace erec {}\n" +
                                        bad),
                        "raw-thread"));
    EXPECT_TRUE(
        hasRule(lintContent("bench/b.cpp", bad), "raw-thread"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.cc",
                                    "std::jthread t([] {});\n"),
                        "raw-thread"));
    // The pool's own implementation is the blessed home.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/runtime/thread_pool.cc", bad),
        "raw-thread"));
    // Tests may spawn threads freely to exercise concurrency.
    EXPECT_FALSE(hasRule(lintContent("tests/pool_test.cpp", bad),
                         "raw-thread"));
    // Suppressible like every line rule.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "std::thread t; // erec-lint: allow(raw-thread)\n"),
        "raw-thread"));
    // Mentions in comments/strings are stripped before matching.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "// std::thread is banned here\nint x;\n"),
        "raw-thread"));
}

TEST(LintToolTest, RawSleepBannedInLibraryCode)
{
    const std::string bad =
        "std::this_thread::sleep_for(std::chrono::milliseconds(5));\n";
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/serving/a.cc", bad),
                        "raw-sleep"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.h",
                                    "#pragma once\nnamespace erec {}\n"
                                    "std::this_thread::sleep_until(t);\n"),
                        "raw-sleep"));
    // runtime/ gets no free pass: its waits go through condition
    // variables with deadlines, not raw sleeps.
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/runtime/thread_pool.cc", bad),
        "raw-sleep"));
    // Tests and benches pace themselves however they like.
    EXPECT_FALSE(hasRule(lintContent("tests/a_test.cpp", bad),
                         "raw-sleep"));
    EXPECT_FALSE(hasRule(lintContent("bench/b.cpp", bad), "raw-sleep"));
    // Suppressible like every line rule.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "std::this_thread::sleep_for(d); "
                    "// erec-lint: allow(raw-sleep)\n"),
        "raw-sleep"));
    // Mentions in comments are stripped before matching.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "// std::this_thread::sleep_for is banned here\n"),
        "raw-sleep"));
}

TEST(LintToolTest, RawIntrinsicsOnlyInKernelsModule)
{
    const std::string inc = "#include <immintrin.h>\n";
    const std::string type = "__m256 v = _mm256_setzero_ps();\n";
    const std::string call =
        "_mm_prefetch(reinterpret_cast<const char *>(p), _MM_HINT_T0);\n";
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/embedding/a.cc", inc),
                        "raw-intrinsics"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/model/a.cc", type),
                        "raw-intrinsics"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.cc", call),
                        "raw-intrinsics"));
    EXPECT_TRUE(hasRule(lintContent("bench/b.cpp", type),
                        "raw-intrinsics"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.h",
                                    "#pragma once\nnamespace erec {}\n"
                                    "__m512 acc;\n"),
                        "raw-intrinsics"));
    // The kernels module is the blessed home of vector code.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/kernels/backend_avx2.cc",
                    inc + type + call),
        "raw-intrinsics"));
    // Tests compare backends through the registry; the rule does not
    // police them (they have no reason to use intrinsics anyway).
    EXPECT_FALSE(hasRule(lintContent("tests/kernels_test.cpp", type),
                         "raw-intrinsics"));
    // Mentions in comments are stripped before matching.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "// uses _mm256_add_ps( under the hood\nint x;\n"),
        "raw-intrinsics"));
}

TEST(LintToolTest, IostreamOnlyOutsideLibrary)
{
    const std::string inc = "#include <iostream>\n";
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.cc", inc),
                        "iostream-in-library"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.cc",
                                    "std::cerr << 1;\n"),
                        "iostream-in-library"));
    EXPECT_FALSE(hasRule(lintContent("examples/demo.cpp", inc),
                         "iostream-in-library"));
    EXPECT_FALSE(hasRule(lintContent("bench/b.cpp", inc),
                         "iostream-in-library"));
}

TEST(LintToolTest, SimStdFunctionOnlyOutsideSimHeaders)
{
    const std::string bad =
        "#pragma once\nstruct S { std::function<void()> cb; };\n";
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/sim/event_queue.h", bad),
        "sim-std-function"));
    // Only sim/ library headers are in scope: the event engine's POD
    // dispatch contract does not bind the rest of the library, sim
    // sources, or tests.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/runtime/thread_pool.h", bad),
        "sim-std-function"));
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/sim/cluster_sim.cc",
                    "std::function<void()> cb;\n"),
        "sim-std-function"));
    EXPECT_FALSE(hasRule(lintContent("tests/sim_test.cpp",
                                     "std::function<void()> cb;\n"),
                         "sim-std-function"));
    // Mentions in comments are stripped before matching.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/sim/pod.h",
                    "#pragma once\n// std::function<void()> is banned\n"),
        "sim-std-function"));
    // Escape hatch for a deliberate exception.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/sim/hook.h",
                    "#pragma once\nstd::function<void()> cb; "
                    "// erec-lint: allow(sim-std-function)\n"),
        "sim-std-function"));
}

TEST(LintToolTest, HeaderHygiene)
{
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.h",
                                    "namespace erec {}\n"),
                        "header-pragma-once"));
    EXPECT_TRUE(hasRule(lintContent("src/elasticrec/x/a.h",
                                    "#pragma once\nint x;\n"),
                        "header-namespace"));
    const std::string good =
        "// comment first is fine\n#pragma once\nnamespace erec {}\n";
    const auto diags = lintContent("src/elasticrec/x/a.h", good);
    EXPECT_FALSE(hasRule(diags, "header-pragma-once"));
    EXPECT_FALSE(hasRule(diags, "header-namespace"));
    // Non-library headers need the pragma but not the namespace.
    EXPECT_TRUE(hasRule(lintContent("bench/util.h", "int x;\n"),
                        "header-pragma-once"));
    EXPECT_FALSE(hasRule(lintContent("bench/util.h", "int x;\n"),
                         "header-namespace"));
}

TEST(LintToolTest, AllowCommentSuppresses)
{
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "throw 1; // erec-lint: allow(raw-throw)\n"),
        "raw-throw"));
    // Suppressing one rule does not blanket-suppress others.
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "throw std::rand(); // erec-lint: allow(raw-throw)\n"),
        "unseeded-random"));
    // File-scoped suppression for the header rules.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/macros.h",
                    "#pragma once\n// erec-lint: allow(header-namespace)\n"
                    "#define FOO 1\n"),
        "header-namespace"));
}

TEST(LintToolTest, ExcessDefaultParamsFiresOnThreeDefaults)
{
    const std::string hdr = "#pragma once\nnamespace erec {\n";
    // Three defaulted parameters: fires.
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "void f(int a = 1, double b = 2.0,\n"
                          "       bool c = true);\n}\n"),
        "excess-default-params"));
    // Two defaults: fine.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "void f(int a, int b = 1, int c = 2);\n}\n"),
        "excess-default-params"));
    // Library headers only; sources and benches are exempt.
    const std::string three =
        "void f(int a = 1, int b = 2, int c = 3);\n";
    EXPECT_FALSE(hasRule(lintContent("src/elasticrec/x/a.cc", three),
                         "excess-default-params"));
    EXPECT_FALSE(hasRule(
        lintContent("bench/util.h", "#pragma once\n" + three),
        "excess-default-params"));
}

TEST(LintToolTest, ExcessDefaultParamsIgnoresNonDefaultEquals)
{
    const std::string hdr = "#pragma once\nnamespace erec {\n";
    // `= default`, `= 0` and comparison operators are not defaults.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "struct S {\n"
                          "  S &operator=(const S &) = default;\n"
                          "  virtual void v() = 0;\n"
                          "  bool ok(int a, int b) { return a == b &&\n"
                          "      a <= b && a >= b && a != b; }\n"
                          "};\n}\n"),
        "excess-default-params"));
    // Defaults hidden inside nested braces (designated initializers)
    // don't count against the enclosing group.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "inline int g() {\n"
                          "  return h({.a = 1, .b = 2, .c = 3});\n"
                          "}\n}\n"),
        "excess-default-params"));
    // Multi-line declarations still count across lines and report the
    // line that opens the parameter list.
    const auto diags = lintContent(
        "src/elasticrec/x/a.h",
        hdr + "void f(\n    int a = 1,\n    int b = 2,\n"
              "    int c = 3);\n}\n");
    ASSERT_TRUE(hasRule(diags, "excess-default-params"));
    for (const auto &d : diags) {
        if (d.rule == "excess-default-params") {
            EXPECT_EQ(d.line, 3);
        }
    }
}

TEST(LintToolTest, ExcessDefaultParamsSuppressible)
{
    const std::string hdr = "#pragma once\nnamespace erec {\n";
    EXPECT_FALSE(hasRule(
        lintContent(
            "src/elasticrec/x/a.h",
            hdr +
                "void f(int a = 1, // erec-lint: allow(excess-default-params)\n"
                "       int b = 2, int c = 3);\n}\n"),
        "excess-default-params"));
}

TEST(LintToolTest, UnannotatedMutexCaughtInLibraryHeaders)
{
    const std::string hdr = "#pragma once\nnamespace erec {\n";
    const auto diags = lintContent(
        "src/elasticrec/x/a.h",
        hdr + "class C {\n  mutable std::mutex mutex_;\n"
              "  int v_ = 0;\n};\n}\n");
    ASSERT_TRUE(hasRule(diags, "unannotated-mutex"));
    for (const auto &d : diags) {
        if (d.rule == "unannotated-mutex") {
            EXPECT_EQ(d.line, 4);
            EXPECT_NE(d.message.find("mutex_"), std::string::npos);
        }
    }
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "class C {\n  std::shared_mutex lock_;\n};\n}\n"),
        "unannotated-mutex"));
}

TEST(LintToolTest, UnannotatedMutexQuietWhenGuarded)
{
    const std::string hdr = "#pragma once\nnamespace erec {\n";
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "class C {\n  mutable std::mutex mutex_;\n"
                          "  int v_ ERC_GUARDED_BY(mutex_) = 0;\n"
                          "};\n}\n"),
        "unannotated-mutex"));
    // ERC_PT_GUARDED_BY (pointee guarded) satisfies the rule too.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "class C {\n  std::mutex m_;\n"
                          "  int *p_ ERC_PT_GUARDED_BY(m_) = nullptr;\n"
                          "};\n}\n"),
        "unannotated-mutex"));
    // A GUARDED_BY tied to a *different* mutex does not cover this one.
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "class C {\n  std::mutex a_;\n  std::mutex b_;\n"
                          "  int v_ ERC_GUARDED_BY(a_) = 0;\n"
                          "};\n}\n"),
        "unannotated-mutex"));
}

TEST(LintToolTest, UnannotatedMutexScopeAndExemptions)
{
    const std::string body =
        "class C {\n  mutable std::mutex mutex_;\n};\n";
    const std::string hdr = "#pragma once\nnamespace erec {\n";
    // Lock holders are not mutex members.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "inline void f() {\n"
                          "  std::unique_lock<std::mutex> lock(m);\n"
                          "}\n}\n"),
        "unannotated-mutex"));
    // Headers only; .cc internals and non-library code are free.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.cc", body), "unannotated-mutex"));
    EXPECT_FALSE(hasRule(lintContent("tests/a_test.cpp", body),
                         "unannotated-mutex"));
    // runtime/ pool internals are the blessed concurrency module.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/runtime/a.h", hdr + body + "}\n"),
        "unannotated-mutex"));
    // allow() suppression on the member's line.
    EXPECT_FALSE(hasRule(
        lintContent(
            "src/elasticrec/x/a.h",
            hdr + "class C {\n"
                  "  std::mutex m_; // erec-lint: allow(unannotated-mutex)\n"
                  "};\n}\n"),
        "unannotated-mutex"));
}

TEST(LintToolTest, HotPathAnnotationMustPrecedeDeclarator)
{
    const std::string hdr = "#pragma once\nnamespace erec {\n";
    // The blessed form: annotation directly before a declaration.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "ERC_HOT_PATH\nvoid serve(int n);\n}\n"),
        "hot-path-annotation"));
    // Same line is fine too.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "ERC_HOT_PATH void serve(int n);\n}\n"),
        "hot-path-annotation"));
    // Annotating a variable derives no analyzer root: flagged.
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "ERC_HOT_PATH\nint counter = 0;\n}\n"),
        "hot-path-annotation"));
    // A dangling annotation at the end of a scope: flagged.
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "namespace erec {\nERC_HOT_PATH\n}\n"),
        "hot-path-annotation"));
    // Mentions inside comments are not annotations.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "// ERC_HOT_PATH marks hot roots.\n"
                          "int counter = 0;\n}\n"),
        "hot-path-annotation"));
    // The defining header is exempt (it #defines the macro).
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/common/hotpath.h",
                    "#pragma once\n#define ERC_HOT_PATH\n"
                    "#define ERC_HOT_PATH_ALLOW(reason)\n"
                    "namespace erec {}\n"),
        "hot-path-annotation"));
}

TEST(LintToolTest, HotPathAllowRequiresReason)
{
    const std::string hdr = "#pragma once\nnamespace erec {\n";
    // The waiver is the documentation: a reason string is mandatory.
    EXPECT_FALSE(hasRule(
        lintContent(
            "src/elasticrec/x/a.cc",
            "namespace erec {\nvoid f(std::vector<int> *v) {\n"
            "  v->reserve(8); // ERC_HOT_PATH_ALLOW(\"warm-up only\")\n"
            "}\n}\n"),
        "hot-path-annotation"));
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "namespace erec {\nvoid f(std::vector<int> *v) {\n"
                    "  v->reserve(8); // ERC_HOT_PATH_ALLOW(\"\")\n"
                    "}\n}\n"),
        "hot-path-annotation"));
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/x/a.cc",
                    "namespace erec {\nvoid f(std::vector<int> *v) {\n"
                    "  v->reserve(8); // ERC_HOT_PATH_ALLOW()\n"
                    "}\n}\n"),
        "hot-path-annotation"));
    // The rule itself honors erec-lint allow() like every other rule.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/x/a.h",
                    hdr + "ERC_HOT_PATH // erec-lint: "
                          "allow(hot-path-annotation)\n"
                          "int counter = 0;\n}\n"),
        "hot-path-annotation"));
}

TEST(LintToolTest, TraceNameLiteralCatchesStringSpanNames)
{
    // Inline literal on a record call in library code: flagged.
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/serving/a.cc",
                    "namespace erec {\nvoid f(R *r, Ctx c) {\n"
                    "  r->recordSpan(c, \"serving/forward\", 0, 1);\n"
                    "}\n}\n"),
        "trace-name-literal"));
    // std::string temporary selects the legacy allocating overload.
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/sim/a.cc",
                    "namespace erec {\nvoid f(T *t) {\n"
                    "  t->addSpan(std::string(\"queue\"), 0, 1);\n"
                    "}\n}\n"),
        "trace-name-literal"));
    // Formatter-wrapped call: the literal lands on a continuation line.
    EXPECT_TRUE(hasRule(
        lintContent("src/elasticrec/sim/a.cc",
                    "namespace erec {\nvoid f(T *t) {\n"
                    "  t->addSpan(\n      \"mono/queue\",\n"
                    "      start, end);\n}\n}\n"),
        "trace-name-literal"));
    // Interned NameId argument: clean.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/serving/a.cc",
                    "namespace erec {\nconst obs::NameId kName =\n"
                    "    obs::internSpanName(\"serving/forward\");\n"
                    "void f(R *r, Ctx c) {\n"
                    "  r->recordSpan(c, kName, 0, 1);\n}\n}\n"),
        "trace-name-literal"));
    // A prose mention in a comment can't trip the rule.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/serving/a.cc",
                    "namespace erec {\n"
                    "// Call recordSpan(ctx, \"name\", ...) here.\n"
                    "int x = 0;\n}\n"),
        "trace-name-literal"));
    // obs/trace.h declares the legacy string overload itself: exempt.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/obs/trace.h",
                    "#pragma once\nnamespace erec {\nstruct T {\n"
                    "  void addSpan(std::string n, int s, int e);\n"
                    "};\n}\n"),
        "trace-name-literal"));
    // Tests and benches may use the string overload freely.
    EXPECT_FALSE(hasRule(
        lintContent("tests/a_test.cpp",
                    "t.addSpan(std::string(\"x\"), 0, 1);\n"),
        "trace-name-literal"));
    // Suppressible like every other rule.
    EXPECT_FALSE(hasRule(
        lintContent("src/elasticrec/sim/a.cc",
                    "namespace erec {\nvoid f(T *t) {\n"
                    "  t->addSpan(std::string(\"q\"), 0, 1); "
                    "// erec-lint: allow(trace-name-literal)\n"
                    "}\n}\n"),
        "trace-name-literal"));
}

TEST(LintToolTest, DiagnosticsCarryLocation)
{
    const auto diags = lintContent("src/elasticrec/x/a.cc",
                                   "int a;\nthrow 1;\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].line, 2);
    EXPECT_EQ(diags[0].rule, "raw-throw");
    EXPECT_NE(formatDiagnostic(diags[0]).find("a.cc:2: [raw-throw]"),
              std::string::npos);
}

} // namespace
} // namespace erec::lint
