/**
 * @file
 * Tests for runtime::BatchQueue: coalescing respects maxBatchSize and
 * FIFO order, the linger delay flushes short batches, the capacity
 * bound backpressures producers, and close() drains cleanly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/runtime/batch_queue.h"

namespace erec::runtime {
namespace {

BatchQueueOptions
opts(std::size_t capacity, std::size_t max_batch,
     std::chrono::microseconds delay)
{
    BatchQueueOptions o;
    o.capacity = capacity;
    o.maxBatchSize = max_batch;
    o.maxBatchDelay = delay;
    return o;
}

TEST(BatchQueueTest, CoalescesFifoUpToMaxBatchSize)
{
    BatchQueue<int> q(opts(64, 4, std::chrono::microseconds(0)));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(q.push(i));
    EXPECT_EQ(q.depth(), 10u);

    std::vector<int> seen;
    std::vector<std::size_t> batch_sizes;
    std::vector<int> batch;
    while (seen.size() < 10) {
        q.popBatch(&batch);
        ASSERT_FALSE(batch.empty());
        ASSERT_LE(batch.size(), 4u);
        batch_sizes.push_back(batch.size());
        seen.insert(seen.end(), batch.begin(), batch.end());
    }
    // Everything queued, in order, with full batches first.
    const std::vector<int> expect = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    EXPECT_EQ(seen, expect);
    EXPECT_EQ(batch_sizes, (std::vector<std::size_t>{4, 4, 2}));
    EXPECT_EQ(q.totalPushed(), 10u);
}

TEST(BatchQueueTest, LingerDelayCollectsLateArrivals)
{
    BatchQueue<int> q(opts(64, 4, std::chrono::milliseconds(200)));
    ASSERT_TRUE(q.push(1));
    std::thread late([&q] {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        q.push(2);
        q.push(3);
    });
    // popBatch holds a short batch and lingers: the late pushes land
    // well inside the 200 ms window and must join this batch.
    std::vector<int> batch;
    q.popBatch(&batch);
    late.join();
    EXPECT_EQ(batch, (std::vector<int>{1, 2, 3}));
}

TEST(BatchQueueTest, ZeroDelayFlushesShortBatchImmediately)
{
    BatchQueue<int> q(opts(64, 8, std::chrono::microseconds(0)));
    ASSERT_TRUE(q.push(42));
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<int> batch;
    q.popBatch(&batch);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(batch, (std::vector<int>{42}));
    EXPECT_LT(elapsed, std::chrono::seconds(5)); // No linger stall.
}

TEST(BatchQueueTest, FullBatchReturnsWithoutWaitingForDelay)
{
    // With maxBatchSize items already queued the linger must not run:
    // an (absurd) hour-long delay would hang the test otherwise.
    BatchQueue<int> q(opts(64, 2, std::chrono::hours(1)));
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));
    std::vector<int> batch;
    q.popBatch(&batch);
    EXPECT_EQ(batch, (std::vector<int>{1, 2}));
}

TEST(BatchQueueTest, CapacityBoundBackpressuresProducer)
{
    BatchQueue<int> q(opts(2, 2, std::chrono::microseconds(0)));
    std::atomic<int> produced{0};
    std::thread producer([&] {
        for (int i = 0; i < 10; ++i) {
            ASSERT_TRUE(q.push(i)); // Blocks while at capacity.
            produced.fetch_add(1, std::memory_order_relaxed);
        }
    });
    std::vector<int> seen;
    std::vector<int> batch;
    while (seen.size() < 10) {
        // The bound holds at every observation point.
        EXPECT_LE(q.depth(), 2u);
        q.popBatch(&batch);
        seen.insert(seen.end(), batch.begin(), batch.end());
    }
    producer.join();
    EXPECT_EQ(produced.load(), 10);
    EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), 0), 45);
}

TEST(BatchQueueTest, CloseRejectsPushesAndDrainsBacklog)
{
    BatchQueue<int> q(opts(64, 4, std::chrono::microseconds(0)));
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(3)); // Rejected, not queued.
    std::vector<int> batch;
    q.popBatch(&batch);
    EXPECT_EQ(batch, (std::vector<int>{1, 2}));
    q.popBatch(&batch);
    EXPECT_TRUE(batch.empty()); // Closed and drained.
    EXPECT_EQ(q.totalPushed(), 2u);
}

// The drain-then-empty shutdown contract (documented on popBatch):
// residual items queued before close() drain in FIFO order across as
// many batches as needed, post-close pops never linger for
// maxBatchDelay, and once drained every further pop returns empty.
TEST(BatchQueueTest, ShutdownDrainsResidualItemsThenStaysEmpty)
{
    // A long linger delay that a post-close pop must NOT pay.
    BatchQueue<int> q(opts(64, 4, std::chrono::seconds(5)));
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(q.push(i));
    q.close();

    std::vector<int> seen;
    std::vector<int> batch;
    const auto start = std::chrono::steady_clock::now();
    for (;;) {
        q.popBatch(&batch);
        if (batch.empty())
            break;
        EXPECT_LE(batch.size(), 4u);
        seen.insert(seen.end(), batch.begin(), batch.end());
    }
    const auto elapsed = std::chrono::steady_clock::now() - start;

    std::vector<int> expected(10);
    std::iota(expected.begin(), expected.end(), 0);
    EXPECT_EQ(seen, expected);
    // 10 items / maxBatchSize 4 => a short final batch of 2, which a
    // closed queue must flush immediately instead of waiting out the
    // 5 s delay for producers that can never arrive.
    EXPECT_LT(elapsed, std::chrono::seconds(1));

    // Drained is terminal: every subsequent pop is empty.
    q.popBatch(&batch);
    EXPECT_TRUE(batch.empty());
    q.popBatch(&batch);
    EXPECT_TRUE(batch.empty());
    // close() is idempotent and does not disturb the drained state.
    q.close();
    q.popBatch(&batch);
    EXPECT_TRUE(batch.empty());
}

TEST(BatchQueueTest, CloseWakesBlockedConsumer)
{
    BatchQueue<int> q(opts(64, 4, std::chrono::microseconds(0)));
    std::thread consumer([&q] {
        std::vector<int> batch;
        q.popBatch(&batch);
        EXPECT_TRUE(batch.empty());
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.close();
    consumer.join();
}

TEST(BatchQueueTest, RejectsBadOptions)
{
    EXPECT_THROW(BatchQueue<int>(
                     opts(0, 4, std::chrono::microseconds(0))),
                 ConfigError);
    EXPECT_THROW(BatchQueue<int>(
                     opts(4, 0, std::chrono::microseconds(0))),
                 ConfigError);
    EXPECT_THROW(BatchQueue<int>(
                     opts(4, 4, std::chrono::microseconds(-1))),
                 ConfigError);
}

} // namespace
} // namespace erec::runtime
