/**
 * @file
 * Tests for traffic patterns and the Poisson arrival process.
 */

#include <gtest/gtest.h>

#include <limits>

#include "elasticrec/common/error.h"
#include "elasticrec/workload/traffic.h"

namespace erec::workload {
namespace {

TEST(TrafficPatternTest, ConstantRate)
{
    const auto p = TrafficPattern::constant(42.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(0), 42.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(100 * units::kMinute), 42.0);
}

TEST(TrafficPatternTest, StepLookup)
{
    TrafficPattern p({{0, 10.0},
                      {10 * units::kSecond, 20.0},
                      {20 * units::kSecond, 5.0}});
    EXPECT_DOUBLE_EQ(p.qpsAt(0), 10.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(9 * units::kSecond), 10.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(10 * units::kSecond), 20.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(19 * units::kSecond), 20.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(25 * units::kSecond), 5.0);
    EXPECT_EQ(p.lastChange(), 20 * units::kSecond);
}

TEST(TrafficPatternTest, Fig19Schedule)
{
    const auto p = TrafficPattern::fig19();
    // Base rate before the ramp.
    EXPECT_DOUBLE_EQ(p.qpsAt(0), 20.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(4 * units::kMinute), 20.0);
    // Five equal increments between minutes 5 and 20.
    EXPECT_DOUBLE_EQ(p.qpsAt(5 * units::kMinute), 36.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(8 * units::kMinute + 1), 52.0);
    // Peak before the drop.
    EXPECT_DOUBLE_EQ(p.qpsAt(23 * units::kMinute), 100.0);
    // Back to base at minute 24.
    EXPECT_DOUBLE_EQ(p.qpsAt(24 * units::kMinute), 20.0);
}

TEST(TrafficPatternTest, DiurnalRaisedCosine)
{
    TrafficPattern::DiurnalOptions d;
    d.troughQps = 100.0;
    d.peakQps = 500.0;
    d.period = 4 * units::kMinute;
    d.step = units::kSecond;
    d.duration = 8 * units::kMinute;
    const auto p = TrafficPattern::diurnal(d);

    // Trough at the cycle boundaries, peak at half period, midpoint
    // of the swing at the quarter points.
    EXPECT_DOUBLE_EQ(p.qpsAt(0), 100.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(2 * units::kMinute), 500.0);
    EXPECT_NEAR(p.qpsAt(units::kMinute), 300.0, 1e-9);
    EXPECT_NEAR(p.qpsAt(3 * units::kMinute), 300.0, 1e-9);
    // Cycles repeat across the full schedule.
    EXPECT_DOUBLE_EQ(p.qpsAt(4 * units::kMinute), 100.0);
    EXPECT_DOUBLE_EQ(p.qpsAt(6 * units::kMinute), 500.0);
    // The rate never leaves the [trough, peak] envelope.
    for (SimTime t = 0; t < d.duration; t += d.step) {
        EXPECT_GE(p.qpsAt(t), d.troughQps);
        EXPECT_LE(p.qpsAt(t), d.peakQps);
    }
}

TEST(TrafficPatternTest, DiurnalRejectsBadOptions)
{
    TrafficPattern::DiurnalOptions d;
    d.troughQps = -1.0;
    EXPECT_THROW(TrafficPattern::diurnal(d), ConfigError);
    d = {};
    d.peakQps = d.troughQps - 1.0;
    EXPECT_THROW(TrafficPattern::diurnal(d), ConfigError);
    d = {};
    d.step = 0;
    EXPECT_THROW(TrafficPattern::diurnal(d), ConfigError);
    d = {};
    d.period = d.step / 2;
    EXPECT_THROW(TrafficPattern::diurnal(d), ConfigError);
    d = {};
    d.duration = 0;
    EXPECT_THROW(TrafficPattern::diurnal(d), ConfigError);
}

TEST(TrafficPatternTest, RejectsBadSteps)
{
    EXPECT_THROW(TrafficPattern({}), ConfigError);
    EXPECT_THROW(TrafficPattern({{10, 1.0}, {10, 2.0}}), ConfigError);
    EXPECT_THROW(TrafficPattern({{0, -1.0}}), ConfigError);
}

TEST(PoissonArrivalsTest, RateMatchesPattern)
{
    PoissonArrivals arrivals(TrafficPattern::constant(100.0), 5);
    SimTime t = 0;
    int count = 0;
    const SimTime horizon = 100 * units::kSecond;
    while (true) {
        t = arrivals.nextAfter(t);
        if (t > horizon)
            break;
        ++count;
    }
    // ~100 QPS x 100 s = 10000 arrivals, Poisson sd = 100.
    EXPECT_NEAR(count, 10000, 400);
}

TEST(PoissonArrivalsTest, ArrivalsStrictlyIncrease)
{
    PoissonArrivals arrivals(TrafficPattern::fig19(), 7);
    SimTime t = 0;
    for (int i = 0; i < 10000; ++i) {
        const SimTime next = arrivals.nextAfter(t);
        ASSERT_GT(next, t);
        t = next;
    }
}

TEST(PoissonArrivalsTest, RespectsRateChange)
{
    // 10 QPS for 10 s then 100 QPS for 10 s.
    TrafficPattern p({{0, 10.0}, {10 * units::kSecond, 100.0}});
    PoissonArrivals arrivals(p, 11);
    int low = 0, high = 0;
    SimTime t = 0;
    while (true) {
        t = arrivals.nextAfter(t);
        if (t > 20 * units::kSecond)
            break;
        if (t <= 10 * units::kSecond)
            ++low;
        else
            ++high;
    }
    EXPECT_NEAR(low, 100, 40);
    EXPECT_NEAR(high, 1000, 150);
}

TEST(PoissonArrivalsTest, ZeroRateForeverReturnsNever)
{
    TrafficPattern p({{0, 10.0}, {units::kMinute, 0.0}});
    PoissonArrivals arrivals(p, 3);
    SimTime t = 0;
    // Drain the active period...
    while (true) {
        const SimTime next = arrivals.nextAfter(t);
        if (next == std::numeric_limits<SimTime>::max())
            break;
        ASSERT_LE(next, units::kMinute + units::kSecond);
        t = next;
    }
    // ...after which, from any point past the last boundary, the
    // process reports "never" stably.
    EXPECT_EQ(arrivals.nextAfter(2 * units::kMinute),
              std::numeric_limits<SimTime>::max());
    EXPECT_EQ(arrivals.nextAfter(2 * units::kMinute),
              std::numeric_limits<SimTime>::max());
}

TEST(TrafficPatternTest, RandomWalkStaysInBounds)
{
    const auto p = TrafficPattern::randomWalk(
        40.0, 10.0, 100.0, 30 * units::kSecond, 30 * units::kMinute,
        9);
    EXPECT_DOUBLE_EQ(p.qpsAt(0), 40.0);
    for (const auto &s : p.steps()) {
        EXPECT_GE(s.qps, 10.0);
        EXPECT_LE(s.qps, 100.0);
    }
    // 60 steps over 30 minutes at 30 s.
    EXPECT_EQ(p.steps().size(), 60u);
}

TEST(TrafficPatternTest, RandomWalkDeterministicPerSeed)
{
    const auto a = TrafficPattern::randomWalk(
        40.0, 10.0, 100.0, units::kMinute, 10 * units::kMinute, 4);
    const auto b = TrafficPattern::randomWalk(
        40.0, 10.0, 100.0, units::kMinute, 10 * units::kMinute, 4);
    const auto c = TrafficPattern::randomWalk(
        40.0, 10.0, 100.0, units::kMinute, 10 * units::kMinute, 5);
    for (std::size_t i = 0; i < a.steps().size(); ++i)
        EXPECT_DOUBLE_EQ(a.steps()[i].qps, b.steps()[i].qps);
    bool differs = false;
    for (std::size_t i = 0; i < a.steps().size(); ++i)
        differs = differs || a.steps()[i].qps != c.steps()[i].qps;
    EXPECT_TRUE(differs);
}

TEST(TrafficPatternTest, RandomWalkRejectsBadArgs)
{
    EXPECT_THROW(TrafficPattern::randomWalk(5.0, 10.0, 100.0,
                                            units::kSecond,
                                            units::kMinute),
                 ConfigError);
    EXPECT_THROW(TrafficPattern::randomWalk(50.0, 10.0, 100.0, 0,
                                            units::kMinute),
                 ConfigError);
}

} // namespace
} // namespace erec::workload
