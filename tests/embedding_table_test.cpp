/**
 * @file
 * Tests for embedding table storage and the gather+pool kernel, in both
 * materialized and virtual storage modes.
 */

#include <gtest/gtest.h>

#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/embedding/embedding_table.h"

namespace erec::embedding {
namespace {

TEST(EmbeddingTableTest, ByteAccounting)
{
    EmbeddingTable t(1000, 32);
    EXPECT_EQ(t.rowBytes(), 128u);
    EXPECT_EQ(t.totalBytes(), 128000u);
    EmbeddingTable v(20'000'000, 32, Storage::Virtual);
    EXPECT_EQ(v.totalBytes(), 20'000'000ull * 128);
}

TEST(EmbeddingTableTest, GatherPoolSumsRows)
{
    EmbeddingTable t(16, 4);
    // Batch of 2: item 0 gathers rows {1, 3}, item 1 gathers {2}.
    std::vector<std::uint32_t> indices = {1, 3, 2};
    std::vector<std::uint32_t> offsets = {0, 2};
    std::vector<float> out(2 * 4);
    EXPECT_EQ(t.gatherPool({indices, offsets}, out.data()), 3u);
    for (std::uint32_t d = 0; d < 4; ++d) {
        EXPECT_FLOAT_EQ(out[d], t.at(1, d) + t.at(3, d));
        EXPECT_FLOAT_EQ(out[4 + d], t.at(2, d));
    }
}

TEST(EmbeddingTableTest, EmptyItemPoolsToZero)
{
    EmbeddingTable t(8, 4);
    // Item 0 has no gathers, item 1 gathers row 5.
    std::vector<std::uint32_t> indices = {5};
    std::vector<std::uint32_t> offsets = {0, 0};
    std::vector<float> out(2 * 4, 99.0f);
    t.gatherPool({indices, offsets}, out.data());
    for (std::uint32_t d = 0; d < 4; ++d) {
        EXPECT_FLOAT_EQ(out[d], 0.0f);
        EXPECT_FLOAT_EQ(out[4 + d], t.at(5, d));
    }
}

TEST(EmbeddingTableTest, VirtualRowsAreDeterministic)
{
    EmbeddingTable a(1000, 8, Storage::Virtual, 7);
    EmbeddingTable b(1000, 8, Storage::Virtual, 7);
    std::vector<float> ra(8), rb(8);
    a.readRow(123, ra.data());
    b.readRow(123, rb.data());
    EXPECT_EQ(ra, rb);
    // Different seed -> different values.
    EmbeddingTable c(1000, 8, Storage::Virtual, 8);
    std::vector<float> rc(8);
    c.readRow(123, rc.data());
    EXPECT_NE(ra, rc);
}

TEST(EmbeddingTableTest, VirtualGatherMatchesReadRow)
{
    EmbeddingTable t(100, 4, Storage::Virtual);
    std::vector<std::uint32_t> indices = {10, 20};
    std::vector<std::uint32_t> offsets = {0};
    std::vector<float> out(4);
    t.gatherPool({indices, offsets}, out.data());
    std::vector<float> r10(4), r20(4);
    t.readRow(10, r10.data());
    t.readRow(20, r20.data());
    for (int d = 0; d < 4; ++d)
        EXPECT_FLOAT_EQ(out[d], r10[d] + r20[d]);
}

TEST(EmbeddingTableTest, ValuesInInitRange)
{
    EmbeddingTable t(100, 16);
    for (std::uint64_t r = 0; r < 100; ++r) {
        for (std::uint32_t d = 0; d < 16; ++d) {
            EXPECT_GE(t.at(r, d), -0.05f);
            EXPECT_LE(t.at(r, d), 0.05f);
        }
    }
}

TEST(EmbeddingTableTest, RejectsOutOfRangeAccess)
{
    EmbeddingTable t(10, 4);
    std::vector<float> row(4);
    EXPECT_THROW(t.readRow(10, row.data()), ConfigError);
    std::vector<std::uint32_t> indices = {10};
    std::vector<std::uint32_t> offsets = {0};
    std::vector<float> out(4);
    EXPECT_THROW(t.gatherPool({indices, offsets}, out.data()),
                 ConfigError);
}

TEST(EmbeddingTableTest, RejectsOversizedMaterialization)
{
    EXPECT_THROW(EmbeddingTable(100'000'000, 64),
                 ConfigError);
}

TEST(EmbeddingTableTest, GatherTraffic)
{
    EmbeddingTable t(10, 32);
    EXPECT_EQ(t.gatherTrafficBytes(100), 100u * 128);
}

} // namespace
} // namespace erec::embedding
