/**
 * @file
 * Tests for the DP table partitioner (Algorithm 2), including an exact
 * reproduction of the paper's Figure 10 worked example and a
 * brute-force optimality check over random cost functions.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>

#include "elasticrec/common/error.h"
#include "elasticrec/common/rng.h"
#include "elasticrec/core/dp_partitioner.h"

namespace erec::core {
namespace {

/**
 * The Figure 10 toy cost function: COST(k, j) = (j - k + 1)^2 / k with
 * 1-based inclusive indices. Our ranges are 0-based half-open [b, e),
 * so k = b + 1 and j = e.
 */
double
fig10Cost(std::uint64_t b, std::uint64_t e)
{
    const double len = static_cast<double>(e - b);
    return len * len / static_cast<double>(b + 1);
}

TEST(DpPartitionerTest, Figure10Example)
{
    DpPartitioner::Options opt;
    opt.maxShards = 3;
    opt.granules = 5; // exact row-level candidates
    DpPartitioner dp(5, fig10Cost, opt);

    const PartitionPlan plan = dp.planWithShards(3);
    // The paper derives Mem[3][5] = 4 with partitioning points
    // [1, 3, 5]: shards E[1], E[2,3], E[4,5].
    EXPECT_DOUBLE_EQ(plan.cost, 4.0);
    EXPECT_EQ(plan.boundaries,
              (std::vector<std::uint64_t>{1, 3, 5}));
}

TEST(DpPartitionerTest, Figure10SingleShardInitialization)
{
    DpPartitioner::Options opt;
    opt.maxShards = 3;
    opt.granules = 5;
    DpPartitioner dp(5, fig10Cost, opt);
    // Mem[1][5] = COST(1, 5) = 25.
    const PartitionPlan one = dp.planWithShards(1);
    EXPECT_DOUBLE_EQ(one.cost, 25.0);
    EXPECT_EQ(one.boundaries, (std::vector<std::uint64_t>{5}));
}

TEST(DpPartitionerTest, FindOptimalPicksCheapestShardCount)
{
    DpPartitioner::Options opt;
    opt.maxShards = 5;
    opt.granules = 5;
    DpPartitioner dp(5, fig10Cost, opt);
    const auto frontier = dp.costFrontier();
    ASSERT_EQ(frontier.size(), 5u);
    const auto best = dp.findOptimalPlan();
    for (const auto &plan : frontier)
        EXPECT_LE(best.cost, plan.cost + 1e-12);
    // Frontier entry s has exactly s+1 shards.
    for (std::size_t s = 0; s < frontier.size(); ++s)
        EXPECT_EQ(frontier[s].numShards(), s + 1);
}

TEST(DpPartitionerTest, BoundariesAlwaysCoverTable)
{
    DpPartitioner::Options opt;
    opt.maxShards = 4;
    opt.granules = 16;
    DpPartitioner dp(1000, fig10Cost, opt);
    for (std::uint32_t s = 1; s <= 4; ++s) {
        const auto plan = dp.planWithShards(s);
        EXPECT_EQ(plan.numShards(), s);
        EXPECT_EQ(plan.boundaries.back(), 1000u);
        for (std::size_t i = 1; i < plan.boundaries.size(); ++i)
            EXPECT_GT(plan.boundaries[i], plan.boundaries[i - 1]);
    }
}

/** Brute-force optimum over all compositions of `rows` into shards. */
double
bruteForceBest(std::uint64_t rows, std::uint32_t max_shards,
               const ShardCostFn &cost)
{
    double best = std::numeric_limits<double>::infinity();
    std::function<void(std::uint64_t, std::uint32_t, double)> rec =
        [&](std::uint64_t begin, std::uint32_t shards_left,
            double acc) {
            if (begin == rows) {
                best = std::min(best, acc);
                return;
            }
            if (shards_left == 0)
                return;
            for (std::uint64_t end = begin + 1; end <= rows; ++end)
                rec(end, shards_left - 1, acc + cost(begin, end));
        };
    rec(0, max_shards, 0.0);
    return best;
}

class DpOptimality : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DpOptimality, MatchesBruteForceOnRandomCosts)
{
    const std::uint64_t seed = GetParam();
    Rng rng(seed);
    const std::uint64_t rows = 9;
    const std::uint32_t max_shards = 4;
    // Random positive cost per (begin, end) pair, fixed by seed.
    std::vector<std::vector<double>> table(
        rows + 1, std::vector<double>(rows + 1, 0.0));
    for (std::uint64_t b = 0; b < rows; ++b)
        for (std::uint64_t e = b + 1; e <= rows; ++e)
            table[b][e] = rng.uniform(0.1, 10.0);
    auto cost = [&table](std::uint64_t b, std::uint64_t e) {
        return table[b][e];
    };

    DpPartitioner::Options opt;
    opt.maxShards = max_shards;
    opt.granules = static_cast<std::uint32_t>(rows);
    DpPartitioner dp(rows, cost, opt);
    const auto plan = dp.findOptimalPlan();
    const double brute = bruteForceBest(rows, max_shards, cost);
    EXPECT_NEAR(plan.cost, brute, 1e-9) << "seed " << seed;

    // The plan's claimed cost must equal its recomputed cost.
    double recomputed = 0.0;
    std::uint64_t begin = 0;
    for (auto end : plan.boundaries) {
        recomputed += cost(begin, end);
        begin = end;
    }
    EXPECT_NEAR(plan.cost, recomputed, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DpOptimality,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(DpPartitionerTest, GranuleModeRespectsCandidates)
{
    // With 4 granules over 100 rows, boundaries fall on multiples of 25.
    DpPartitioner::Options opt;
    opt.maxShards = 3;
    opt.granules = 4;
    DpPartitioner dp(100, fig10Cost, opt);
    const auto plan = dp.planWithShards(2);
    for (auto b : plan.boundaries)
        EXPECT_EQ(b % 25, 0u);
}

TEST(DpPartitionerTest, ExplicitCandidates)
{
    DpPartitioner dp(100, fig10Cost, {10, 60, 100}, 3);
    const auto plan = dp.findOptimalPlan();
    for (auto b : plan.boundaries) {
        EXPECT_TRUE(b == 10 || b == 60 || b == 100);
    }
    EXPECT_EQ(plan.boundaries.back(), 100u);
}

TEST(DpPartitionerTest, RejectsBadInputs)
{
    EXPECT_THROW(DpPartitioner(0, fig10Cost), ConfigError);
    EXPECT_THROW(DpPartitioner(10, nullptr), ConfigError);
    EXPECT_THROW(DpPartitioner(10, fig10Cost, {5, 9}, 2), ConfigError);
    DpPartitioner dp(10, fig10Cost);
    EXPECT_THROW(dp.planWithShards(0), ConfigError);
    EXPECT_THROW(dp.planWithShards(999), ConfigError);
}

TEST(DpPartitionerTest, MoreShardsNeverIncreaseCostWhenFree)
{
    // With a cost function that is additive and size-proportional,
    // adding shards is never worse (and typically equal); the frontier
    // must be non-increasing.
    auto additive = [](std::uint64_t b, std::uint64_t e) {
        return static_cast<double>(e - b);
    };
    DpPartitioner::Options opt;
    opt.maxShards = 6;
    opt.granules = 12;
    DpPartitioner dp(12, additive, opt);
    const auto frontier = dp.costFrontier();
    for (std::size_t i = 1; i < frontier.size(); ++i)
        EXPECT_LE(frontier[i].cost, frontier[i - 1].cost + 1e-12);
}

} // namespace
} // namespace erec::core
