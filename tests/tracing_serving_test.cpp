/**
 * @file
 * Integration tests for causal tracing through the concurrent serving
 * stack: TraceContext propagation from QueryDispatcher::submit through
 * BatchQueue coalescing into the shard servers, fan-in links from
 * batch traces to their sampled members, the workers=0 vs workers=4
 * byte-identical canonical-forest gate (which also gives TSan a real
 * producer/consumer workload over the span rings), ring-overflow
 * drop accounting through the stack, and the allocation-free steady
 * path with tracing on.
 */

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/obs/span_name.h"
#include "elasticrec/obs/span_tree.h"
#include "elasticrec/runtime/executor.h"
#include "elasticrec/serving/stack_builder.h"

namespace erec::serving {
namespace {

model::DlrmConfig
tinyConfig()
{
    auto c = model::rm1();
    c.name = "tiny";
    c.rowsPerTable = 500;
    c.numTables = 3;
    c.poolingFactor = 6;
    c.batchSize = 4;
    return c;
}

workload::Query
makeQuery(const model::DlrmConfig &config, std::uint64_t seed)
{
    workload::QueryShape shape;
    shape.batchSize = config.batchSize;
    shape.numTables = config.numTables;
    shape.gathersPerItem = config.poolingFactor;
    workload::QueryGenerator gen(
        shape,
        std::make_shared<workload::LocalityDistribution>(
            config.rowsPerTable, 0.9),
        seed);
    return gen.next();
}

ElasticRecStack
makeTracedStack(const std::shared_ptr<const model::Dlrm> &dlrm,
                std::size_t workers, std::uint64_t sample_every,
                std::size_t ring_capacity = 4096)
{
    StackOptions options;
    options.observability = std::make_shared<obs::Registry>();
    runtime::ExecutorOptions exec_opts;
    exec_opts.workers = workers;
    exec_opts.maxBatchSize = 4;
    exec_opts.maxBatchDelayUs = 100;
    options.executor = std::make_shared<runtime::Executor>(exec_opts);
    options.traceSampleEvery = sample_every;
    options.traceRingCapacity = ring_capacity;
    return buildElasticRecStack(
        dlrm, {TablePlan{.boundaries = {10, 100, 500}}}, options);
}

/** Name of a node's span, resolved from the process-wide table. */
const std::string &
nameOf(const obs::SpanNode &node)
{
    return obs::spanName(node.event.name);
}

TEST(TracingServingTest, ContextPropagatesThroughBatchQueueToShards)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);
    auto stack = makeTracedStack(dlrm, 2, /*sample_every=*/1);
    ASSERT_NE(stack.recorder, nullptr);

    constexpr std::uint64_t kQueries = 16;
    std::vector<std::future<std::vector<float>>> futures;
    for (std::uint64_t seed = 1; seed <= kQueries; ++seed)
        futures.push_back(stack.submit(makeQuery(config, seed)));
    for (auto &f : futures)
        f.get();
    stack.dispatcher->drain();

    const auto trees = obs::buildSpanTrees(stack.recorder->drain());

    // Every query was sampled; batch traces ride along at the end
    // (their trace-id bit sorts them after all query ids).
    ASSERT_GE(trees.size(), kQueries);
    std::map<std::uint64_t, const obs::SpanTree *> queries;
    std::uint64_t sampled_links = 0;
    for (const auto &tree : trees) {
        if (tree.isBatch()) {
            // Fan-in links point at sampled member query traces.
            for (const auto &link : tree.links) {
                EXPECT_GE(link.arg, 1u);
                EXPECT_LE(link.arg, kQueries);
                ++sampled_links;
            }
            continue;
        }
        queries.emplace(tree.traceId, &tree);
    }
    ASSERT_EQ(queries.size(), kQueries);
    // Every member query appears in exactly one coalesced batch.
    EXPECT_EQ(sampled_links, kQueries);

    for (std::uint64_t id = 1; id <= kQueries; ++id) {
        const obs::SpanTree &tree = *queries.at(id);
        const obs::SpanNode &root = tree.nodes[tree.root];
        EXPECT_EQ(nameOf(root), "serving/query");
        EXPECT_EQ(root.event.spanId, obs::kRootSpanId);

        // The dispatcher skeleton: queue wait + serve under the root.
        ASSERT_EQ(root.children.size(), 2u);
        const obs::SpanNode &queue = tree.nodes[root.children[0]];
        const obs::SpanNode &serve = tree.nodes[root.children[1]];
        EXPECT_EQ(nameOf(queue), "serving/queue");
        EXPECT_EQ(nameOf(serve), "serving/serve");

        // The context crossed the BatchQueue into the dense server:
        // bottom MLP plus at least one shard gather hang off serve.
        ASSERT_GE(serve.children.size(), 2u);
        EXPECT_EQ(nameOf(tree.nodes[serve.children[0]]),
                  "serving/mlp_bottom");
        for (std::size_t i = 1; i < serve.children.size(); ++i)
            EXPECT_EQ(nameOf(tree.nodes[serve.children[i]]),
                      "rpc/gather");
    }
}

TEST(TracingServingTest, EveryNthSamplingHoldsThroughTheStack)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);
    auto stack = makeTracedStack(dlrm, 0, /*sample_every=*/4);
    for (std::uint64_t seed = 1; seed <= 16; ++seed)
        stack.submit(makeQuery(config, seed)).get();
    stack.dispatcher->drain();

    std::uint64_t query_trees = 0;
    for (const auto &tree :
         obs::buildSpanTrees(stack.recorder->drain()))
        query_trees += tree.isBatch() ? 0 : 1;
    EXPECT_EQ(query_trees, 4u); // Submissions 0, 4, 8, 12.
}

/** Canonical forest of one traced run at the given worker count. */
std::string
runForest(const model::DlrmConfig &config,
          const std::shared_ptr<const model::Dlrm> &dlrm,
          std::size_t workers)
{
    auto stack = makeTracedStack(dlrm, workers, /*sample_every=*/1);
    std::vector<std::future<std::vector<float>>> futures;
    for (std::uint64_t seed = 1; seed <= 32; ++seed)
        futures.push_back(stack.submit(makeQuery(config, seed)));
    for (auto &f : futures)
        f.get();
    stack.dispatcher->drain();
    return obs::canonicalForestText(
        obs::buildSpanTrees(stack.recorder->drain()));
}

TEST(TracingServingTest, ForestByteIdenticalSerialVsFourWorkers)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);

    // Span ids are slot-derived and sampling follows submission order,
    // so the canonical forest — structure, names, args; no timestamps,
    // no batch traces — must not move by a byte when the dispatcher
    // goes from inline serving to four pump workers. Under TSan this
    // doubles as the race check on concurrent ring producers vs the
    // drain consumer.
    const std::string serial = runForest(config, dlrm, 0);
    const std::string concurrent = runForest(config, dlrm, 4);
    EXPECT_FALSE(serial.empty());
    EXPECT_NE(serial.find("serving/query"), std::string::npos);
    EXPECT_NE(serial.find("serving/mlp_bottom"), std::string::npos);
    EXPECT_EQ(serial, concurrent);
}

TEST(TracingServingTest, RingOverflowDropsAreCountedNotFatal)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);
    // A 4-event ring cannot hold even one query's spans; serving must
    // still complete every query and account the overflow.
    auto stack = makeTracedStack(dlrm, 0, /*sample_every=*/1,
                                 /*ring_capacity=*/4);
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        EXPECT_FALSE(stack.submit(makeQuery(config, seed)).get().empty());
    stack.dispatcher->drain();
    EXPECT_GT(stack.recorder->droppedEvents(), 0u);
}

TEST(TracingServingTest, SteadyStateTracedServingDoesNotAllocateInGates)
{
    const auto config = tinyConfig();
    auto dlrm = std::make_shared<model::Dlrm>(config);
    auto stack = makeTracedStack(dlrm, 2, /*sample_every=*/1);

    // Warm-up grows queue/pool/ring capacity to steady state.
    for (std::uint64_t seed = 1; seed <= 16; ++seed)
        stack.submit(makeQuery(config, seed)).get();

    // With every query traced, the AllocGate regions must still see
    // zero allocations: span records are fixed-size pushes into
    // pre-registered rings — the dynamic half of the bench's
    // allocs_per_query=0 gate with --trace-sample on.
    resetAllocRegionStats();
    for (std::uint64_t seed = 100; seed < 132; ++seed)
        stack.submit(makeQuery(config, seed)).get();
    stack.dispatcher->drain();

    std::uint64_t enters = 0;
    for (const auto &r : allocRegionStats()) {
        EXPECT_EQ(r.allocs, 0u) << "region " << r.name
                                << " allocated on the traced path";
        enters += r.enters;
    }
    EXPECT_GT(enters, 0u);
}

} // namespace
} // namespace erec::serving
