/**
 * @file
 * Tests for the experiment harness helpers: CDF construction, static
 * deployment evaluation and the utility measurement of Figures 14/17.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "elasticrec/hw/platform.h"
#include "elasticrec/sim/csv.h"
#include "elasticrec/sim/experiment.h"

namespace erec::sim {
namespace {

TEST(ExperimentTest, CdfForMatchesConfigLocality)
{
    const auto config = model::rm1();
    const auto cdf = cdfFor(config, 512);
    EXPECT_EQ(cdf->numRows(), config.rowsPerTable);
    EXPECT_NEAR(cdf->localityP(), config.localityP, 0.01);
}

TEST(ExperimentTest, StaticDeploymentConsistency)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    core::Planner planner(config, node);
    const auto plan = planner.planElasticRec({cdfFor(config)});
    const auto view =
        evaluateStatic(plan, node, 100.0, {.utilization = 1.0});

    EXPECT_EQ(view.policy, "elasticrec");
    EXPECT_EQ(view.memory, plan.memoryForTarget(100.0));
    std::uint32_t total = 0;
    for (const auto &[name, replicas] : view.replicas)
        total += replicas;
    EXPECT_EQ(total, view.totalReplicas);
    EXPECT_GT(view.nodes, 0u);
}

TEST(ExperimentTest, HigherTargetNeedsMoreResources)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    core::Planner planner(config, node);
    const auto plan = planner.planElasticRec({cdfFor(config)});
    const auto lo = evaluateStatic(plan, node, 50.0);
    const auto hi = evaluateStatic(plan, node, 400.0);
    EXPECT_LT(lo.memory, hi.memory);
    EXPECT_LT(lo.totalReplicas, hi.totalReplicas);
    EXPECT_LE(lo.nodes, hi.nodes);
}

TEST(ExperimentTest, UtilityHotShardsHigher)
{
    // Figures 14/17 property: with the paper's partitioning, hotter
    // shards show monotonically higher utility, and the monolithic
    // layout's overall utility is low.
    auto config = model::rm1();
    config.rowsPerTable = 1'000'000; // shrink for test speed
    const std::vector<std::uint64_t> boundaries = {
        20000, 100000, 400000, 1'000'000};
    const auto report =
        measureUtility(config, boundaries, {}, 100.0, {.numQueries = 50});
    ASSERT_EQ(report.shardUtility.size(), 4u);
    // Non-increasing hot-to-cold, strictly hotter head than tail.
    for (std::size_t s = 1; s < report.shardUtility.size(); ++s)
        EXPECT_GE(report.shardUtility[s - 1],
                  report.shardUtility[s] - 1e-12);
    EXPECT_GT(report.shardUtility.front(),
              report.shardUtility.back() * 5);

    const auto mono = measureUtility(config, {config.rowsPerTable}, {},
                                     100.0, {.numQueries = 50});
    EXPECT_LT(mono.shardUtility[0], 0.30);
    EXPECT_NEAR(mono.overallUtility, report.overallUtility, 0.02);
}

TEST(ExperimentTest, UtilityReplicaCounts)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    core::Planner planner(config, node);
    const auto plan = planner.planElasticRec({cdfFor(config)});
    const auto shards = plan.tableShards(0);
    std::vector<std::uint64_t> boundaries;
    for (const auto *s : shards)
        boundaries.push_back(s->endRow);
    const auto report = measureUtility(config, boundaries, shards, 100.0,
                                       {.numQueries = 50});
    ASSERT_EQ(report.shardReplicas.size(), shards.size());
    // Hottest shard gets at least as many replicas as the coldest.
    EXPECT_GE(report.shardReplicas.front(),
              report.shardReplicas.back());
}

TEST(ExperimentTest, SteadyStateReportsViolationFraction)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    core::Planner planner(config, node);
    const auto plan = planner.planModelWise();
    const auto result = runSteadyState(
        plan, node, 30.0, {.duration = 30 * units::kSecond});
    EXPECT_GE(result.slaViolationFraction, 0.0);
    EXPECT_LE(result.slaViolationFraction, 1.0);
    EXPECT_GT(result.achievedQps, 0.0);
}

TEST(ExperimentTest, CsvExportAlignsSeries)
{
    const auto config = model::rm1();
    const auto node = hw::cpuOnlyNode();
    core::Planner planner(config, node);
    const auto plan = planner.planModelWise();
    SimOptions opt;
    opt.seed = 3;
    ClusterSimulation sim(plan, node,
                          workload::TrafficPattern::constant(20.0),
                          opt);
    const auto r = sim.run(30 * units::kSecond);

    std::ostringstream oss;
    writeSimResultCsv(oss, r);
    std::istringstream iss(oss.str());
    std::string line;
    ASSERT_TRUE(std::getline(iss, line));
    EXPECT_EQ(line,
              "time_s,target_qps,achieved_qps,memory_gib,p95_ms,"
              "replicas,nodes");
    std::size_t rows = 0;
    while (std::getline(iss, line)) {
        ++rows;
        // Every row has exactly 6 commas.
        EXPECT_EQ(std::count(line.begin(), line.end(), ','), 6);
    }
    EXPECT_EQ(rows, r.targetQps.size());
}

} // namespace
} // namespace erec::sim
