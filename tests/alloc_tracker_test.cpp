/**
 * @file
 * Tests for the dynamic hot-path counterpart (common/alloc_tracker.h):
 * the counting operator-new/delete replacements, AllocGate scoping,
 * the named-region registry, and concurrent gates on worker threads
 * (the TSan job runs this suite to certify the relaxed-atomic region
 * accumulators).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string_view>
#include <thread>
#include <vector>

#include "elasticrec/common/alloc_tracker.h"

namespace {

/**
 * Regions register into a process-global list and are never removed,
 * so every test region lives as a function-local static.
 */
erec::AllocRegion &
testRegion()
{
    static erec::AllocRegion region("alloc-tracker-test");
    return region;
}

/**
 * Defeat allocation elision: the pointer escapes through an atomic
 * (stores may come from several test threads at once).
 */
std::atomic<void *> g_sink{nullptr};

void
allocateOnce(std::size_t bytes)
{
    char *p = new char[bytes];
    g_sink.store(p, std::memory_order_relaxed);
    delete[] p;
}

TEST(AllocTracker, ReplacementOperatorsAreInstalled)
{
    EXPECT_TRUE(erec::allocTrackerInstalled());
}

TEST(AllocTracker, ThreadCountersAreMonotoneAndCountNewDelete)
{
    const auto before = erec::threadAllocCounts();
    allocateOnce(64);
    const auto after = erec::threadAllocCounts();
    // Exactly one new[]/delete[] pair ran between the snapshots; the
    // counters may also see incidental allocations (none here, but >=
    // keeps the test robust against library internals).
    EXPECT_GE(after.allocs, before.allocs + 1);
    EXPECT_GE(after.deallocs, before.deallocs + 1);
    EXPECT_GE(after.bytes, before.bytes + 64);
}

TEST(AllocTracker, GateChargesAllocationsToItsRegion)
{
    erec::AllocRegion &region = testRegion();
    region.reset();
    {
        erec::AllocGate gate(region);
        allocateOnce(128);
        EXPECT_GE(gate.allocsInScope(), 1u);
    }
    EXPECT_EQ(region.enters(), 1u);
    EXPECT_GE(region.allocs(), 1u);
    EXPECT_GE(region.bytes(), 128u);
}

TEST(AllocTracker, GateStaysAtZeroWhenTheScopeDoesNotAllocate)
{
    erec::AllocRegion &region = testRegion();
    region.reset();
    {
        erec::AllocGate gate(region);
        int local = 7;
        g_sink.store(&local, std::memory_order_relaxed);
        EXPECT_EQ(gate.allocsInScope(), 0u);
    }
    EXPECT_EQ(region.enters(), 1u);
    EXPECT_EQ(region.allocs(), 0u);
    EXPECT_EQ(region.bytes(), 0u);
}

TEST(AllocTracker, AllocationsOutsideTheGateAreNotCharged)
{
    erec::AllocRegion &region = testRegion();
    region.reset();
    allocateOnce(64); // before the gate
    {
        erec::AllocGate gate(region);
        int local = 0;
        g_sink.store(&local, std::memory_order_relaxed);
    }
    allocateOnce(64); // after the gate
    EXPECT_EQ(region.allocs(), 0u);
}

TEST(AllocTracker, ResetZerosTheAccumulators)
{
    erec::AllocRegion &region = testRegion();
    region.reset();
    {
        erec::AllocGate gate(region);
        allocateOnce(32);
    }
    ASSERT_GE(region.allocs(), 1u);
    region.reset();
    EXPECT_EQ(region.enters(), 0u);
    EXPECT_EQ(region.allocs(), 0u);
    EXPECT_EQ(region.bytes(), 0u);
}

TEST(AllocTracker, RegistryListsRegionsAndGlobalResetClearsThem)
{
    erec::AllocRegion &region = testRegion();
    erec::resetAllocRegionStats();
    {
        erec::AllocGate gate(region);
        allocateOnce(16);
    }
    bool found = false;
    for (const auto &stats : erec::allocRegionStats()) {
        if (std::string_view(stats.name) == "alloc-tracker-test") {
            found = true;
            EXPECT_EQ(stats.enters, 1u);
            EXPECT_GE(stats.allocs, 1u);
        }
    }
    EXPECT_TRUE(found);

    erec::resetAllocRegionStats();
    for (const auto &stats : erec::allocRegionStats()) {
        EXPECT_EQ(stats.allocs, 0u) << stats.name;
        EXPECT_EQ(stats.enters, 0u) << stats.name;
    }
}

TEST(AllocTracker, GateObservesOnlyItsOwnThread)
{
    erec::AllocRegion &region = testRegion();
    region.reset();

    // The helper thread is spawned *before* the gate opens (std::thread
    // construction allocates its shared state on the spawning thread)
    // and coordinates through atomics so the gated scope itself runs
    // nothing but the flag handshake.
    std::atomic<bool> go{false};
    std::atomic<bool> done{false};
    std::thread other([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        allocateOnce(1024);
        done.store(true, std::memory_order_release);
    });
    {
        erec::AllocGate gate(region);
        go.store(true, std::memory_order_release);
        while (!done.load(std::memory_order_acquire)) {
        }
        EXPECT_EQ(gate.allocsInScope(), 0u);
    }
    other.join();
    EXPECT_EQ(region.allocs(), 0u);
}

TEST(AllocTracker, ConcurrentGatesAccumulateExactly)
{
    erec::AllocRegion &region = testRegion();
    region.reset();

    constexpr int kThreads = 4;
    constexpr int kAllocsPerThread = 250;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&region] {
            for (int i = 0; i < kAllocsPerThread; ++i) {
                erec::AllocGate gate(region);
                allocateOnce(8);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    // Each iteration performs exactly one new[]/delete[] inside its
    // gate, so the region total is exact — this is the assertion the
    // TSan job certifies for the relaxed-atomic accumulators.
    EXPECT_EQ(region.enters(),
              static_cast<std::uint64_t>(kThreads) * kAllocsPerThread);
    EXPECT_EQ(region.allocs(),
              static_cast<std::uint64_t>(kThreads) * kAllocsPerThread);
    EXPECT_GE(region.bytes(),
              static_cast<std::uint64_t>(kThreads) * kAllocsPerThread * 8);
}

} // namespace
