/**
 * @file
 * Unit tests for the console table / CSV renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "elasticrec/common/error.h"
#include "elasticrec/common/table_printer.h"

namespace erec {
namespace {

TEST(TablePrinterTest, FormatsHelpers)
{
    EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::num(std::int64_t{42}), "42");
    EXPECT_EQ(TablePrinter::ratio(2.25), "2.25x");
    EXPECT_EQ(TablePrinter::percent(0.94), "94.0%");
}

TEST(TablePrinterTest, RejectsMismatchedRow)
{
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), ConfigError);
}

TEST(TablePrinterTest, PrintsAlignedTable)
{
    TablePrinter t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| longer"), std::string::npos);
    // Every line should have equal width.
    std::istringstream iss(out);
    std::string line;
    std::size_t width = 0;
    while (std::getline(iss, line)) {
        if (width == 0)
            width = line.size();
        EXPECT_EQ(line.size(), width);
    }
}

TEST(TablePrinterTest, CsvOutput)
{
    TablePrinter t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, RowCount)
{
    TablePrinter t({"h"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow({"r"});
    EXPECT_EQ(t.rows(), 1u);
}

} // namespace
} // namespace erec
