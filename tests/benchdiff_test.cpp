/**
 * @file
 * Tests for the perf-gate comparator (tools/benchdiff): JSON parsing,
 * tolerance parsing, and the regression verdict per sweep point.
 */

#include <gtest/gtest.h>

#include <string>

#include "elasticrec/common/error.h"
#include "tools/benchdiff/benchdiff_core.h"

namespace erec::benchdiff {
namespace {

std::string
benchJson(double qps1, double qps2)
{
    return "{\n  \"bench\": \"serving_throughput\",\n"
           "  \"quick\": true,\n  \"sweep\": [\n"
           "    {\"threads\": 1, \"qps\": " +
           std::to_string(qps1) +
           ", \"p50_ms\": 1.5},\n"
           "    {\"threads\": 4, \"qps\": " +
           std::to_string(qps2) +
           ", \"p50_ms\": 2.0}\n  ],\n  \"scaling\": 2.0\n}\n";
}

TEST(BenchdiffJsonTest, ParsesBenchDocument)
{
    const auto doc = parseJson(benchJson(1000, 2500));
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    const auto *bench = doc.find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->string, "serving_throughput");
    EXPECT_TRUE(doc.find("quick")->boolean);
    const auto *sweep = doc.find("sweep");
    ASSERT_EQ(sweep->kind, JsonValue::Kind::Array);
    ASSERT_EQ(sweep->array.size(), 2u);
    EXPECT_DOUBLE_EQ(sweep->array[0].find("qps")->number, 1000.0);
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(BenchdiffJsonTest, ParsesEscapesNegativesAndNulls)
{
    const auto doc = parseJson(
        R"({"s": "a\"b\nc", "neg": -2.5e2, "none": null, "empty": {}})");
    EXPECT_EQ(doc.find("s")->string, "a\"b\nc");
    EXPECT_DOUBLE_EQ(doc.find("neg")->number, -250.0);
    EXPECT_EQ(doc.find("none")->kind, JsonValue::Kind::Null);
    EXPECT_TRUE(doc.find("empty")->object.empty());
}

TEST(BenchdiffJsonTest, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{\"a\": 1} trailing"), ConfigError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), ConfigError);
    EXPECT_THROW(parseJson("[1, 2"), ConfigError);
    EXPECT_THROW(parseJson("{\"s\": \"unterminated}"), ConfigError);
    EXPECT_THROW(parseJson(""), ConfigError);
    EXPECT_THROW(parseJson("nope"), ConfigError);
}

TEST(BenchdiffToleranceTest, AcceptsPercentAndFraction)
{
    EXPECT_DOUBLE_EQ(parseTolerance("15%"), 0.15);
    EXPECT_DOUBLE_EQ(parseTolerance("0.15"), 0.15);
    EXPECT_DOUBLE_EQ(parseTolerance("0%"), 0.0);
    EXPECT_THROW(parseTolerance("abc"), ConfigError);
    EXPECT_THROW(parseTolerance("1.5"), ConfigError);
    EXPECT_THROW(parseTolerance("-5%"), ConfigError);
    EXPECT_THROW(parseTolerance(""), ConfigError);
}

TEST(BenchdiffCompareTest, WithinToleranceAndFasterPass)
{
    const auto baseline = parseJson(benchJson(1000, 2500));
    // One point 10% down (inside 15%), one point faster.
    const auto report = compare(
        baseline, parseJson(benchJson(900, 4000)), 0.15);
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(report.points.size(), 2u);
    EXPECT_FALSE(report.points[0].regressed);
    EXPECT_FALSE(report.points[1].regressed);
    EXPECT_NE(formatReport(report).find("PASS"), std::string::npos);
}

TEST(BenchdiffCompareTest, RegressionBeyondToleranceFails)
{
    const auto baseline = parseJson(benchJson(1000, 2500));
    const auto report = compare(
        baseline, parseJson(benchJson(700, 2500)), 0.15);
    EXPECT_FALSE(report.pass);
    EXPECT_TRUE(report.points[0].regressed);
    EXPECT_FALSE(report.points[1].regressed);
    EXPECT_NEAR(report.points[0].ratio, 0.7, 1e-9);
    EXPECT_NE(formatReport(report).find("FAIL"), std::string::npos);
    EXPECT_NE(formatReport(report).find("REGRESSED"),
              std::string::npos);
}

TEST(BenchdiffCompareTest, ExactlyAtToleranceBoundaryPasses)
{
    const auto baseline = parseJson(benchJson(1000, 2500));
    // 850 == 1000 * (1 - 0.15): the gate fails strictly below.
    const auto report = compare(
        baseline, parseJson(benchJson(850, 2500)), 0.15);
    EXPECT_TRUE(report.pass);
}

TEST(BenchdiffCompareTest, MissingBaselinePointFails)
{
    const auto baseline = parseJson(benchJson(1000, 2500));
    const auto current = parseJson(
        R"({"sweep": [{"threads": 1, "qps": 1000}]})");
    const auto report = compare(baseline, current, 0.15);
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(report.points.size(), 2u);
    EXPECT_TRUE(report.points[1].missing);
    EXPECT_NE(formatReport(report).find("MISSING"), std::string::npos);
}

TEST(BenchdiffCompareTest, ExtraCurrentPointsIgnored)
{
    const auto baseline = parseJson(
        R"({"sweep": [{"threads": 1, "qps": 1000}]})");
    // Current sweeps more thread counts than the baseline knows.
    const auto report = compare(
        baseline, parseJson(benchJson(1000, 1)), 0.15);
    EXPECT_TRUE(report.pass);
    EXPECT_EQ(report.points.size(), 1u);
}

TEST(BenchdiffCompareTest, RejectsDocumentsWithoutSweep)
{
    const auto good = parseJson(benchJson(1000, 2500));
    EXPECT_THROW(compare(parseJson("{}"), good, 0.15), ConfigError);
    EXPECT_THROW(compare(good, parseJson(R"({"sweep": []})"), 0.15),
                 ConfigError);
    EXPECT_THROW(
        compare(good,
                parseJson(R"({"sweep": [{"threads": 1}]})"), 0.15),
        ConfigError);
    // Duplicate thread counts are ambiguous.
    EXPECT_THROW(
        compare(parseJson(R"({"sweep": [{"threads": 1, "qps": 1},
                                        {"threads": 1, "qps": 2}]})"),
                good, 0.15),
        ConfigError);
}

TEST(BenchdiffCompareTest, CustomSweepKeyMatchesPoints)
{
    // The kernel bench keys its sweep on "point" ids, not "threads".
    const auto baseline = parseJson(
        R"({"sweep": [{"point": 0, "qps": 10}, {"point": 4, "qps": 5}]})");
    const auto good = compare(
        baseline,
        parseJson(R"({"sweep": [{"point": 0, "qps": 12},
                                {"point": 4, "qps": 5}]})"),
        0.15, {}, "point");
    EXPECT_TRUE(good.pass);
    EXPECT_EQ(good.keyName, "point");
    ASSERT_EQ(good.points.size(), 2u);
    EXPECT_EQ(good.points[1].keyValue, 4u);
    EXPECT_NE(formatReport(good).find("point=4"), std::string::npos);

    // A current run missing a baseline point id fails.
    const auto missing = compare(
        baseline, parseJson(R"({"sweep": [{"point": 0, "qps": 12}]})"),
        0.15, {}, "point");
    EXPECT_FALSE(missing.pass);
    EXPECT_TRUE(missing.points[1].missing);

    // Entries lacking the configured key are a schema error.
    EXPECT_THROW(
        compare(baseline,
                parseJson(R"({"sweep": [{"threads": 1, "qps": 9}]})"),
                0.15, {}, "point"),
        ConfigError);
}

std::string
benchJsonWithAllocs(double qps1, double qps2, double a1, double a2)
{
    return "{\n  \"sweep\": [\n"
           "    {\"threads\": 1, \"qps\": " +
           std::to_string(qps1) +
           ", \"allocs_per_query\": " + std::to_string(a1) +
           "},\n"
           "    {\"threads\": 4, \"qps\": " +
           std::to_string(qps2) +
           ", \"allocs_per_query\": " + std::to_string(a2) +
           "}\n  ]\n}\n";
}

TEST(BenchdiffMetricToleranceTest, ParsesNameEqualsTolerance)
{
    const auto exact = parseMetricTolerance("allocs_per_query=0");
    EXPECT_EQ(exact.first, "allocs_per_query");
    EXPECT_DOUBLE_EQ(exact.second, 0.0);

    const auto loose = parseMetricTolerance("p50_ms=10%");
    EXPECT_EQ(loose.first, "p50_ms");
    EXPECT_DOUBLE_EQ(loose.second, 0.10);

    EXPECT_THROW(parseMetricTolerance("allocs_per_query"), ConfigError);
    EXPECT_THROW(parseMetricTolerance("=0"), ConfigError);
    EXPECT_THROW(parseMetricTolerance("allocs_per_query=abc"),
                 ConfigError);
}

TEST(BenchdiffMetricToleranceTest, ExactZeroGatePassesAtZero)
{
    const auto baseline =
        parseJson(benchJsonWithAllocs(1000, 2500, 0, 0));
    const auto current =
        parseJson(benchJsonWithAllocs(1100, 2600, 0, 0));
    const auto report = compare(baseline, current, 0.15,
                                {{"allocs_per_query", 0.0}});
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(report.points.size(), 2u);
    ASSERT_EQ(report.points[0].metrics.size(), 1u);
    EXPECT_EQ(report.points[0].metrics[0].name, "allocs_per_query");
    EXPECT_FALSE(report.points[0].metrics[0].regressed);
}

TEST(BenchdiffMetricToleranceTest, ExactZeroGateFailsOnAnyAllocation)
{
    const auto baseline =
        parseJson(benchJsonWithAllocs(1000, 2500, 0, 0));
    // QPS is fine; a single steady-state allocation per query fails.
    const auto current =
        parseJson(benchJsonWithAllocs(1100, 2600, 0, 1));
    const auto report = compare(baseline, current, 0.15,
                                {{"allocs_per_query", 0.0}});
    EXPECT_FALSE(report.pass);
    EXPECT_FALSE(report.points[1].metrics.empty());
    EXPECT_TRUE(report.points[1].metrics[0].regressed);
    EXPECT_NE(formatReport(report).find("REGRESSED"),
              std::string::npos);
}

TEST(BenchdiffMetricToleranceTest, LowerIsBetterWithNonzeroTolerance)
{
    const auto baseline =
        parseJson(benchJsonWithAllocs(1000, 2500, 10, 10));
    // +5% is inside a 10% band; improvement is always fine.
    const auto ok = compare(
        baseline, parseJson(benchJsonWithAllocs(1000, 2500, 10.5, 2)),
        0.15, {{"allocs_per_query", 0.10}});
    EXPECT_TRUE(ok.pass);
    // +50% is out.
    const auto bad = compare(
        baseline, parseJson(benchJsonWithAllocs(1000, 2500, 15, 10)),
        0.15, {{"allocs_per_query", 0.10}});
    EXPECT_FALSE(bad.pass);
}

TEST(BenchdiffMetricToleranceTest, MetricMissingFromCurrentFails)
{
    const auto baseline =
        parseJson(benchJsonWithAllocs(1000, 2500, 0, 0));
    // A current run that silently drops the metric must not pass the
    // gate by omission.
    const auto current = parseJson(benchJson(1100, 2600));
    const auto report = compare(baseline, current, 0.15,
                                {{"allocs_per_query", 0.0}});
    EXPECT_FALSE(report.pass);
    ASSERT_FALSE(report.points[0].metrics.empty());
    EXPECT_TRUE(report.points[0].metrics[0].missing);
    EXPECT_NE(formatReport(report).find("MISSING"), std::string::npos);
}

TEST(BenchdiffMetricToleranceTest, MetricMissingFromBaselineIsConfigError)
{
    // Gating on a metric the baseline never recorded is an operator
    // mistake (exit 2), not a regression verdict.
    const auto baseline = parseJson(benchJson(1000, 2500));
    const auto current =
        parseJson(benchJsonWithAllocs(1000, 2500, 0, 0));
    EXPECT_THROW(compare(baseline, current, 0.15,
                         {{"allocs_per_query", 0.0}}),
                 ConfigError);
}

} // namespace
} // namespace erec::benchdiff
