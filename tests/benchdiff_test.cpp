/**
 * @file
 * Tests for the perf-gate comparator (tools/benchdiff): JSON parsing,
 * tolerance parsing, and the regression verdict per sweep point.
 */

#include <gtest/gtest.h>

#include <string>

#include "elasticrec/common/error.h"
#include "tools/benchdiff/benchdiff_core.h"

namespace erec::benchdiff {
namespace {

std::string
benchJson(double qps1, double qps2)
{
    return "{\n  \"bench\": \"serving_throughput\",\n"
           "  \"quick\": true,\n  \"sweep\": [\n"
           "    {\"threads\": 1, \"qps\": " +
           std::to_string(qps1) +
           ", \"p50_ms\": 1.5},\n"
           "    {\"threads\": 4, \"qps\": " +
           std::to_string(qps2) +
           ", \"p50_ms\": 2.0}\n  ],\n  \"scaling\": 2.0\n}\n";
}

TEST(BenchdiffJsonTest, ParsesBenchDocument)
{
    const auto doc = parseJson(benchJson(1000, 2500));
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    const auto *bench = doc.find("bench");
    ASSERT_NE(bench, nullptr);
    EXPECT_EQ(bench->string, "serving_throughput");
    EXPECT_TRUE(doc.find("quick")->boolean);
    const auto *sweep = doc.find("sweep");
    ASSERT_EQ(sweep->kind, JsonValue::Kind::Array);
    ASSERT_EQ(sweep->array.size(), 2u);
    EXPECT_DOUBLE_EQ(sweep->array[0].find("qps")->number, 1000.0);
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(BenchdiffJsonTest, ParsesEscapesNegativesAndNulls)
{
    const auto doc = parseJson(
        R"({"s": "a\"b\nc", "neg": -2.5e2, "none": null, "empty": {}})");
    EXPECT_EQ(doc.find("s")->string, "a\"b\nc");
    EXPECT_DOUBLE_EQ(doc.find("neg")->number, -250.0);
    EXPECT_EQ(doc.find("none")->kind, JsonValue::Kind::Null);
    EXPECT_TRUE(doc.find("empty")->object.empty());
}

TEST(BenchdiffJsonTest, RejectsMalformedInput)
{
    EXPECT_THROW(parseJson("{\"a\": 1} trailing"), ConfigError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), ConfigError);
    EXPECT_THROW(parseJson("[1, 2"), ConfigError);
    EXPECT_THROW(parseJson("{\"s\": \"unterminated}"), ConfigError);
    EXPECT_THROW(parseJson(""), ConfigError);
    EXPECT_THROW(parseJson("nope"), ConfigError);
}

TEST(BenchdiffToleranceTest, AcceptsPercentAndFraction)
{
    EXPECT_DOUBLE_EQ(parseTolerance("15%"), 0.15);
    EXPECT_DOUBLE_EQ(parseTolerance("0.15"), 0.15);
    EXPECT_DOUBLE_EQ(parseTolerance("0%"), 0.0);
    EXPECT_THROW(parseTolerance("abc"), ConfigError);
    EXPECT_THROW(parseTolerance("1.5"), ConfigError);
    EXPECT_THROW(parseTolerance("-5%"), ConfigError);
    EXPECT_THROW(parseTolerance(""), ConfigError);
}

TEST(BenchdiffCompareTest, WithinToleranceAndFasterPass)
{
    const auto baseline = parseJson(benchJson(1000, 2500));
    // One point 10% down (inside 15%), one point faster.
    const auto report = compare(
        baseline, parseJson(benchJson(900, 4000)), 0.15);
    EXPECT_TRUE(report.pass);
    ASSERT_EQ(report.points.size(), 2u);
    EXPECT_FALSE(report.points[0].regressed);
    EXPECT_FALSE(report.points[1].regressed);
    EXPECT_NE(formatReport(report).find("PASS"), std::string::npos);
}

TEST(BenchdiffCompareTest, RegressionBeyondToleranceFails)
{
    const auto baseline = parseJson(benchJson(1000, 2500));
    const auto report = compare(
        baseline, parseJson(benchJson(700, 2500)), 0.15);
    EXPECT_FALSE(report.pass);
    EXPECT_TRUE(report.points[0].regressed);
    EXPECT_FALSE(report.points[1].regressed);
    EXPECT_NEAR(report.points[0].ratio, 0.7, 1e-9);
    EXPECT_NE(formatReport(report).find("FAIL"), std::string::npos);
    EXPECT_NE(formatReport(report).find("REGRESSED"),
              std::string::npos);
}

TEST(BenchdiffCompareTest, ExactlyAtToleranceBoundaryPasses)
{
    const auto baseline = parseJson(benchJson(1000, 2500));
    // 850 == 1000 * (1 - 0.15): the gate fails strictly below.
    const auto report = compare(
        baseline, parseJson(benchJson(850, 2500)), 0.15);
    EXPECT_TRUE(report.pass);
}

TEST(BenchdiffCompareTest, MissingBaselinePointFails)
{
    const auto baseline = parseJson(benchJson(1000, 2500));
    const auto current = parseJson(
        R"({"sweep": [{"threads": 1, "qps": 1000}]})");
    const auto report = compare(baseline, current, 0.15);
    EXPECT_FALSE(report.pass);
    ASSERT_EQ(report.points.size(), 2u);
    EXPECT_TRUE(report.points[1].missing);
    EXPECT_NE(formatReport(report).find("MISSING"), std::string::npos);
}

TEST(BenchdiffCompareTest, ExtraCurrentPointsIgnored)
{
    const auto baseline = parseJson(
        R"({"sweep": [{"threads": 1, "qps": 1000}]})");
    // Current sweeps more thread counts than the baseline knows.
    const auto report = compare(
        baseline, parseJson(benchJson(1000, 1)), 0.15);
    EXPECT_TRUE(report.pass);
    EXPECT_EQ(report.points.size(), 1u);
}

TEST(BenchdiffCompareTest, RejectsDocumentsWithoutSweep)
{
    const auto good = parseJson(benchJson(1000, 2500));
    EXPECT_THROW(compare(parseJson("{}"), good, 0.15), ConfigError);
    EXPECT_THROW(compare(good, parseJson(R"({"sweep": []})"), 0.15),
                 ConfigError);
    EXPECT_THROW(
        compare(good,
                parseJson(R"({"sweep": [{"threads": 1}]})"), 0.15),
        ConfigError);
    // Duplicate thread counts are ambiguous.
    EXPECT_THROW(
        compare(parseJson(R"({"sweep": [{"threads": 1, "qps": 1},
                                        {"threads": 1, "qps": 2}]})"),
                good, 0.15),
        ConfigError);
}

} // namespace
} // namespace erec::benchdiff
