/**
 * @file
 * Tests for the synthesized dataset shapes of Figure 6.
 */

#include <gtest/gtest.h>

#include "elasticrec/workload/datasets.h"

namespace erec::workload {
namespace {

TEST(DatasetsTest, LocalityMatchesPublishedShape)
{
    // MovieLens: top 10% of items cover 94% of accesses (Section V-C).
    // Tolerance covers the integer rounding of "top 10% of rows".
    EXPECT_NEAR(movieLens().distribution->localityP(), 0.94, 1e-3);
    EXPECT_NEAR(amazonBooks().distribution->localityP(), 0.85, 1e-3);
    EXPECT_NEAR(criteo().distribution->localityP(), 0.90, 1e-3);
}

TEST(DatasetsTest, DescriptorsConsistent)
{
    for (const auto &shape : allDatasetShapes()) {
        EXPECT_EQ(shape.distribution->numRows(), shape.numRows);
        EXPECT_NEAR(shape.distribution->localityP(), shape.localityP,
                    1e-3)
            << shape.name;
    }
}

TEST(DatasetsTest, ThreeShapesInFigureOrder)
{
    const auto shapes = allDatasetShapes();
    ASSERT_EQ(shapes.size(), 3u);
    EXPECT_EQ(shapes[0].name, "amazon-books");
    EXPECT_EQ(shapes[1].name, "criteo");
    EXPECT_EQ(shapes[2].name, "movielens");
}

TEST(DatasetsTest, SortedFrequencyCurveDecreases)
{
    const auto shape = movieLens();
    const auto curve =
        sortedFrequencyCurve(*shape.distribution, 1'000'000, 32);
    ASSERT_GE(curve.size(), 10u);
    // Ranks strictly increase; expected counts broadly decrease
    // (power-law head to tail, allowing small local noise from
    // piecewise anchors).
    EXPECT_GT(curve.front().second, curve.back().second * 10);
    for (std::size_t i = 1; i < curve.size(); ++i)
        EXPECT_GT(curve[i].first, curve[i - 1].first);
}

TEST(DatasetsTest, CurveMassSumsToTotal)
{
    // Expected per-row count at rank r times the number of rows in the
    // neighbourhood should integrate to roughly the total accesses;
    // check the head bucket explicitly: count at rank 0 equals mass of
    // the first row times the total.
    const auto shape = criteo();
    const auto curve =
        sortedFrequencyCurve(*shape.distribution, 1'000'000, 16);
    const double head_mass = shape.distribution->massOfTopRows(1);
    EXPECT_NEAR(curve.front().second, head_mass * 1'000'000, 1e-6);
}

} // namespace
} // namespace erec::workload
