/**
 * @file
 * Unit tests for erec::Rng: determinism, stream independence, and the
 * statistical sanity of each sampler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "elasticrec/common/error.h"
#include "elasticrec/common/rng.h"

namespace erec {
namespace {

TEST(RngTest, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias)
{
    Rng rng(11);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(std::uint64_t{10})];
    for (int c : counts) {
        // Each bucket should hold ~10% of samples.
        EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
    }
}

TEST(RngTest, UniformIntInclusiveRange)
{
    Rng rng(13);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(std::int64_t{-2}, std::int64_t{2});
        ASSERT_GE(v, -2);
        ASSERT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, ExponentialMeanMatchesRate)
{
    Rng rng(17);
    const double rate = 4.0;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(RngTest, NormalMomentsMatch)
{
    Rng rng(19);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(3.0, 2.0);
        sum += x;
        sq += x * x;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 3.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, PoissonSmallAndLargeMeans)
{
    Rng rng(23);
    for (double mean : {0.5, 5.0, 50.0, 200.0}) {
        double sum = 0.0;
        const int n = 50000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(rng.poisson(mean));
        EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05)
            << "mean=" << mean;
    }
}

TEST(RngTest, PoissonZeroMeanIsZero)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(31);
    int heads = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        if (rng.bernoulli(0.3))
            ++heads;
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(RngTest, SplitStreamsAreIndependent)
{
    Rng parent(5);
    Rng child = parent.split();
    // Child and parent should produce different streams.
    int equal = 0;
    for (int i = 0; i < 1000; ++i)
        if (parent.next() == child.next())
            ++equal;
    EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntRejectsZero)
{
    Rng rng(37);
    EXPECT_THROW(rng.uniformInt(std::uint64_t{0}), InternalError);
}

} // namespace
} // namespace erec
