/**
 * @file
 * Tests for the logging facility and the error-handling macros.
 */

#include <gtest/gtest.h>

#include "elasticrec/common/error.h"
#include "elasticrec/common/logging.h"

namespace erec {
namespace {

TEST(LoggingTest, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(LoggingTest, LogLineStreamsWithoutCrashing)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Off);
    ERC_LOG_INFO << "value=" << 42 << " pi=" << 3.14;
    ERC_LOG_ERROR << "suppressed too";
    setLogLevel(before);
}

TEST(ErrorTest, CheckThrowsConfigError)
{
    EXPECT_NO_THROW(ERC_CHECK(1 + 1 == 2, "fine"));
    try {
        ERC_CHECK(false, "the message " << 7);
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("the message 7"), std::string::npos);
        EXPECT_NE(what.find("false"), std::string::npos);
        EXPECT_NE(what.find("logging_test.cpp"), std::string::npos);
    }
}

TEST(ErrorTest, AssertThrowsInternalError)
{
    EXPECT_NO_THROW(ERC_ASSERT(true, "ok"));
    EXPECT_THROW(ERC_ASSERT(false, "bug"), InternalError);
}

TEST(ErrorTest, FatalAndPanicTypes)
{
    EXPECT_THROW(fatal("user error"), ConfigError);
    EXPECT_THROW(panic("library bug"), InternalError);
    // ConfigError is a runtime_error; InternalError is a logic_error.
    EXPECT_THROW(fatal("x"), std::runtime_error);
    EXPECT_THROW(panic("x"), std::logic_error);
}

} // namespace
} // namespace erec
