/**
 * @file
 * Tests for the logging facility: level filtering, the streaming
 * LogLine interface, and the pluggable mutex-guarded sink.
 * (Error-macro coverage lives in error_test.cpp.)
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "elasticrec/common/logging.h"

namespace erec {
namespace {

/** Installs a capturing sink for the test's lifetime. */
class SinkCapture
{
  public:
    SinkCapture()
    {
        setLogSink([this](LogLevel level, const std::string &msg) {
            records_.emplace_back(level, msg);
        });
    }

    ~SinkCapture() { setLogSink(nullptr); }

    const std::vector<std::pair<LogLevel, std::string>> &
    records() const
    {
        return records_;
    }

  private:
    std::vector<std::pair<LogLevel, std::string>> records_;
};

TEST(LoggingTest, LevelRoundTrip)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(before);
}

TEST(LoggingTest, LogLineStreamsWithoutCrashing)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Off);
    ERC_LOG_INFO << "value=" << 42 << " pi=" << 3.14;
    ERC_LOG_ERROR << "suppressed too";
    setLogLevel(before);
}

TEST(LoggingTest, SinkReceivesFilteredRecords)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Warn);
    {
        SinkCapture capture;
        ERC_LOG_DEBUG << "dropped";
        ERC_LOG_INFO << "dropped too";
        ERC_LOG_WARN << "kept " << 1;
        ERC_LOG_ERROR << "kept " << 2;
        ASSERT_EQ(capture.records().size(), 2u);
        EXPECT_EQ(capture.records()[0].first, LogLevel::Warn);
        EXPECT_EQ(capture.records()[0].second, "kept 1");
        EXPECT_EQ(capture.records()[1].first, LogLevel::Error);
        EXPECT_EQ(capture.records()[1].second, "kept 2");
    }
    setLogLevel(before);
}

TEST(LoggingTest, ResettingSinkRestoresStderrPath)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Off);
    {
        SinkCapture capture;
    }
    // Sink removed; this must not reach a dangling capture vector.
    ERC_LOG_ERROR << "after reset";
    setLogLevel(before);
}

TEST(LoggingTest, LevelNames)
{
    EXPECT_STREQ(logLevelName(LogLevel::Debug), "DEBUG");
    EXPECT_STREQ(logLevelName(LogLevel::Info), "INFO");
    EXPECT_STREQ(logLevelName(LogLevel::Warn), "WARN");
    EXPECT_STREQ(logLevelName(LogLevel::Error), "ERROR");
    EXPECT_STREQ(logLevelName(LogLevel::Off), "OFF");
}

} // namespace
} // namespace erec
