/**
 * @file
 * Unit tests for time/byte unit conversions and formatting.
 */

#include <gtest/gtest.h>

#include "elasticrec/common/units.h"

namespace erec {
namespace {

TEST(UnitsTest, TimeConversions)
{
    EXPECT_EQ(units::kSecond, 1000000);
    EXPECT_DOUBLE_EQ(units::toSeconds(2 * units::kSecond), 2.0);
    EXPECT_DOUBLE_EQ(units::toMillis(units::kSecond), 1000.0);
    EXPECT_EQ(units::fromSeconds(1.5), 1500000);
    EXPECT_EQ(units::fromMillis(2.5), 2500);
    EXPECT_EQ(units::kMinute, 60 * units::kSecond);
}

TEST(UnitsTest, RoundTripSeconds)
{
    for (double s : {0.001, 0.5, 1.0, 123.456}) {
        EXPECT_NEAR(units::toSeconds(units::fromSeconds(s)), s, 1e-6);
    }
}

TEST(UnitsTest, ByteConversions)
{
    EXPECT_EQ(units::kMiB, 1024ull * 1024ull);
    EXPECT_DOUBLE_EQ(units::toGiB(2 * units::kGiB), 2.0);
    EXPECT_DOUBLE_EQ(units::toMiB(units::kGiB), 1024.0);
}

TEST(UnitsTest, FormatBytesPicksSuffix)
{
    EXPECT_EQ(units::formatBytes(512), "512 B");
    EXPECT_EQ(units::formatBytes(2 * units::kKiB), "2.00 KiB");
    EXPECT_EQ(units::formatBytes(3 * units::kMiB), "3.00 MiB");
    EXPECT_EQ(units::formatBytes(5 * units::kGiB), "5.00 GiB");
    EXPECT_EQ(units::formatBytes(units::kGiB + units::kGiB / 2),
              "1.50 GiB");
}

} // namespace
} // namespace erec
