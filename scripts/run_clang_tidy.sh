#!/usr/bin/env bash
# Run clang-tidy over all library sources using the compile database of
# the build tree given as $1. Skips gracefully (exit 0 with a notice)
# when clang-tidy is not installed, so the `lint` target still runs the
# custom erec_lint rules on machines without LLVM.
set -euo pipefail

build_dir="${1:?usage: run_clang_tidy.sh <build-dir>}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

tidy="$(command -v clang-tidy || true)"
if [[ -z "$tidy" ]]; then
    echo "run_clang_tidy.sh: clang-tidy not found; skipping (erec_lint still ran)"
    exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
    echo "run_clang_tidy.sh: $build_dir/compile_commands.json missing;" \
         "configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 1
fi

mapfile -t files < <(find "$repo_root/src" -name '*.cc' | sort)
echo "run_clang_tidy.sh: checking ${#files[@]} files with $tidy"
# -quiet keeps output to actual diagnostics; WarningsAsErrors in
# .clang-tidy turns any diagnostic into a non-zero exit.
"$tidy" -quiet -p "$build_dir" "${files[@]}"
echo "run_clang_tidy.sh: clean"
