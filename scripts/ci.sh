#!/usr/bin/env bash
# Local CI matrix: the same gates .github/workflows/ci.yml runs,
# sequentially, stopping at the first failure. Use this when iterating
# without a GitHub runner.
set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"

echo "=== CI job 1/8: RelWithDebInfo + -Werror + ctest ==="
"$here/check.sh" build

echo "=== CI job 2/8: ASan+UBSan + ctest ==="
"$here/check.sh" asan

echo "=== CI job 3/8: TSan + ctest, then lint ==="
"$here/check.sh" tsan
"$here/check.sh" lint

echo "=== CI job 4/8: architecture gate (archlint + header check) ==="
"$here/check.sh" arch

echo "=== CI job 5/8: hot-path discipline gate ==="
"$here/check.sh" hotpath

echo "=== CI job 6/8: telemetry smoke ==="
"$here/check.sh" smoke

echo "=== CI job 7/8: serving throughput + perf gate ==="
"$here/check.sh" bench

echo "=== CI job 8/8: kernel-backend sweep + perf gate ==="
"$here/check.sh" kernels

echo "=== CI matrix green ==="
