#!/usr/bin/env bash
# Local CI matrix: the same gates .github/workflows/ci.yml runs,
# sequentially, stopping at the first failure. Use this when iterating
# without a GitHub runner.
set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"

echo "=== CI job 1/11: RelWithDebInfo + -Werror + ctest ==="
"$here/check.sh" build

echo "=== CI job 2/11: ASan+UBSan + ctest ==="
"$here/check.sh" asan

echo "=== CI job 3/11: TSan + ctest, then lint ==="
"$here/check.sh" tsan
"$here/check.sh" lint

echo "=== CI job 4/11: architecture gate (archlint + header check) ==="
"$here/check.sh" arch

echo "=== CI job 5/11: hot-path discipline gate ==="
"$here/check.sh" hotpath

echo "=== CI job 6/11: concurrency-discipline gate (conclint) ==="
"$here/check.sh" concurrency

echo "=== CI job 7/11: TSan stress (concurrency test subset) ==="
"$here/check.sh" tsan-stress

echo "=== CI job 8/11: telemetry smoke ==="
"$here/check.sh" smoke

echo "=== CI job 9/11: serving throughput + perf gate ==="
"$here/check.sh" bench

echo "=== CI job 10/11: kernel-backend sweep + perf gate ==="
"$here/check.sh" kernels

echo "=== CI job 11/11: simulator-core throughput + perf gate ==="
"$here/check.sh" sim

echo "=== CI matrix green ==="
