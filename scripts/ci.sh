#!/usr/bin/env bash
# Local CI matrix: the same three gates .github/workflows/ci.yml runs,
# sequentially, stopping at the first failure. Use this when iterating
# without a GitHub runner.
set -euo pipefail

here="$(cd "$(dirname "$0")" && pwd)"

echo "=== CI job 1/4: RelWithDebInfo + -Werror + ctest ==="
"$here/check.sh" build

echo "=== CI job 2/4: ASan+UBSan + ctest ==="
"$here/check.sh" asan

echo "=== CI job 3/4: TSan + ctest, then lint ==="
"$here/check.sh" tsan
"$here/check.sh" lint

echo "=== CI job 4/4: telemetry smoke ==="
"$here/check.sh" smoke

echo "=== CI matrix green ==="
