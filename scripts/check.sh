#!/usr/bin/env bash
# One-stop correctness gate. Runs one stage per invocation:
#
#   scripts/check.sh build   # RelWithDebInfo + -Werror, full ctest
#   scripts/check.sh asan    # ASan+UBSan build, full ctest
#   scripts/check.sh tsan    # TSan build, full ctest
#   scripts/check.sh lint    # erec_lint + clang-tidy (if installed)
#   scripts/check.sh arch    # include-graph / layer-DAG gate + header check
#   scripts/check.sh hotpath # ERC_HOT_PATH static allocation/blocking gate
#   scripts/check.sh concurrency # lock-order / blocking-under-lock gate
#   scripts/check.sh tsan-stress # TSan repeat-run of the concurrency tests
#   scripts/check.sh smoke   # run example + fig bench, validate telemetry
#   scripts/check.sh bench   # serving throughput sweep + benchdiff gate
#   scripts/check.sh kernels # kernel-backend sweep + benchdiff gate
#   scripts/check.sh sim     # simulator-core throughput + benchdiff gate
#   scripts/check.sh all     # every stage above, in order
#
# Each stage uses its own build tree (build-check-<stage>) so stages
# never poison each other's CMake cache. CI runs the same stages; see
# .github/workflows/ci.yml and scripts/ci.sh. When ccache is installed
# it is wired in as the compiler launcher automatically (CI installs
# it via ccache-action; locally it is optional).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

# Belt-and-braces hang guard: per-test TIMEOUT properties exist in
# tests/CMakeLists.txt, but older build trees may predate them.
ctest_timeout=300

cmake_launcher_args=()
if command -v ccache >/dev/null 2>&1; then
    cmake_launcher_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

configure_build_test() {
    local tree="$1"
    shift
    cmake -B "$tree" -S "$repo_root" "${cmake_launcher_args[@]}" "$@"
    cmake --build "$tree" -j "$jobs"
    ctest --test-dir "$tree" --output-on-failure -j "$jobs" \
        --timeout "$ctest_timeout"
}

stage_build() {
    configure_build_test "$repo_root/build-check-release" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DELASTICREC_WERROR=ON
}

stage_asan() {
    configure_build_test "$repo_root/build-check-asan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DELASTICREC_SANITIZE="address;undefined"
}

stage_tsan() {
    configure_build_test "$repo_root/build-check-tsan" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DELASTICREC_SANITIZE=thread
}

stage_lint() {
    local tree="$repo_root/build-check-release"
    cmake -B "$tree" -S "$repo_root" "${cmake_launcher_args[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DELASTICREC_WERROR=ON
    cmake --build "$tree" -j "$jobs" --target lint
}

# Architecture gate: extract the include graph of all first-party
# code, enforce the layer DAG in tools/archlint/layers.conf (plus
# acyclicity), and compile every src/elasticrec header standalone
# (archlint_headers). Runs from the repo root so quoted includes
# resolve. Set ELASTICREC_ARCH_OUT to keep the JSON report (CI
# uploads archlint.json as an artifact next to the bench/telemetry
# ones); by default a temp dir is used and removed.
stage_arch() {
    local tree="$repo_root/build-check-release"
    cmake -B "$tree" -S "$repo_root" "${cmake_launcher_args[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DELASTICREC_WERROR=ON
    cmake --build "$tree" -j "$jobs" \
        --target erec_archlint archlint_headers
    local out
    if [ -n "${ELASTICREC_ARCH_OUT:-}" ]; then
        out="$ELASTICREC_ARCH_OUT"
        mkdir -p "$out"
    else
        out="$(mktemp -d)"
        trap 'rm -rf "$out"' RETURN
    fi
    local archlint=("$tree/tools/archlint/erec_archlint"
        --root src --root tools --root bench --root tests
        --root examples
        --config "$repo_root/tools/archlint/layers.conf")
    (cd "$repo_root" && "${archlint[@]}" --format text)
    (cd "$repo_root" && "${archlint[@]}" --format json) \
        > "$out/archlint.json"
}

# Perf-regression gate: run the concurrent serving throughput sweep
# (quick mode, 1%-sampled causal tracing on) and compare its QPS per
# worker count against the checked-in conservative baseline with
# erec_benchdiff. Two exact gates ride along: allocs_per_query must
# stay 0 *with tracing on* (the flight recorder's rings are hot-path
# clean), and trace_overhead_pct — the traced-vs-untraced QPS delta —
# must stay at or below the 5% baseline ceiling. Then self-test the
# trace gate by inflating trace_overhead_pct in a copy of the current
# results: a gate that cannot fail is not a gate. Set
# ELASTICREC_BENCH_OUT to keep BENCH_serving.json (CI uploads it as an
# artifact); by default a temp dir is used and removed.
stage_bench() {
    local tree="$repo_root/build-check-release"
    cmake -B "$tree" -S "$repo_root" "${cmake_launcher_args[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DELASTICREC_WERROR=ON
    cmake --build "$tree" -j "$jobs" \
        --target serving_throughput erec_benchdiff
    local out
    if [ -n "${ELASTICREC_BENCH_OUT:-}" ]; then
        out="$ELASTICREC_BENCH_OUT"
        mkdir -p "$out"
    else
        out="$(mktemp -d)"
        trap 'rm -rf "$out"' RETURN
    fi
    local benchdiff="$tree/tools/benchdiff/erec_benchdiff"
    "$tree/bench/serving_throughput" --quick --trace-sample 100 \
        --out "$out/BENCH_serving.json"
    "$benchdiff" \
        "$repo_root/bench/baselines/BENCH_serving.json" \
        "$out/BENCH_serving.json" --tolerance 15% \
        --metric-tolerance allocs_per_query=0 \
        --metric-tolerance trace_overhead_pct=0

    # Trace-gate self-test: rewrite the overhead of every sweep entry
    # to 3x the 5% baseline ceiling and assert the gate exits 1.
    sed 's/"trace_overhead_pct": [0-9.]*/"trace_overhead_pct": 15.0/' \
        "$out/BENCH_serving.json" > "$out/BENCH_serving_inflated.json"
    local rc=0
    "$benchdiff" \
        "$repo_root/bench/baselines/BENCH_serving.json" \
        "$out/BENCH_serving_inflated.json" --tolerance 15% \
        --metric-tolerance allocs_per_query=0 \
        --metric-tolerance trace_overhead_pct=0 \
        > "$out/benchdiff-inflated.txt" 2>&1 || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "bench self-test: expected exit 1 on inflated" \
            "trace_overhead_pct, got $rc" >&2
        cat "$out/benchdiff-inflated.txt" >&2
        exit 1
    fi
}

# Kernel-backend perf gate: run the per-backend gather-pool / GEMM
# sweep (quick mode) and compare the scalar points against the
# checked-in conservative baseline with erec_benchdiff, keyed on the
# "point" id and gating allocs_per_call at exactly zero. Then
# self-test the gate with a throttled run: a gate that cannot fail is
# not a gate. Set ELASTICREC_KERNELS_OUT to keep BENCH_kernels.json
# (CI uploads it as an artifact); by default a temp dir is used and
# removed.
stage_kernels() {
    local tree="$repo_root/build-check-release"
    cmake -B "$tree" -S "$repo_root" "${cmake_launcher_args[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DELASTICREC_WERROR=ON
    cmake --build "$tree" -j "$jobs" \
        --target kernel_bench erec_benchdiff
    local out
    if [ -n "${ELASTICREC_KERNELS_OUT:-}" ]; then
        out="$ELASTICREC_KERNELS_OUT"
        mkdir -p "$out"
    else
        out="$(mktemp -d)"
        trap 'rm -rf "$out"' RETURN
    fi
    local benchdiff="$tree/tools/benchdiff/erec_benchdiff"
    "$tree/bench/kernel_bench" --json "$out/BENCH_kernels.json" --quick
    "$benchdiff" \
        "$repo_root/bench/baselines/BENCH_kernels.json" \
        "$out/BENCH_kernels.json" --key point --tolerance 40% \
        --metric-tolerance allocs_per_call=0

    # Throttled self-test: 500 us of sleep per rep dominates the
    # small-dim gather points (whose real work is tens of us), pinning
    # at least point 0 far below its baseline floor, so the gate must
    # exit 1 — proof the gate can actually fail.
    "$tree/bench/kernel_bench" --json "$out/BENCH_kernels_throttled.json" \
        --quick --throttle-us 500
    local rc=0
    "$benchdiff" \
        "$repo_root/bench/baselines/BENCH_kernels.json" \
        "$out/BENCH_kernels_throttled.json" --key point \
        --tolerance 40% --metric-tolerance allocs_per_call=0 \
        > "$out/benchdiff-throttled.txt" 2>&1 || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "kernels self-test: expected exit 1 on throttled run," \
            "got $rc" >&2
        cat "$out/benchdiff-throttled.txt" >&2
        exit 1
    fi
}

# Simulator-core perf gate: sim_throughput drives the discrete-event
# engine through the diurnal trace on both deployment plans and
# benchdiff compares simulated-queries-per-wall-second against
# bench/baselines/BENCH_sim.json, with allocs_per_query pinned at
# exactly zero (the gated query path must not heap-allocate; DESIGN.md
# section 13). Also self-tests the gate with a throttled run that must
# fail: a gate that cannot fail is not a gate. Set ELASTICREC_SIM_OUT
# to keep BENCH_sim.json (CI uploads it as an artifact); by default a
# temp dir is used and removed.
stage_sim() {
    local tree="$repo_root/build-check-release"
    cmake -B "$tree" -S "$repo_root" "${cmake_launcher_args[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DELASTICREC_WERROR=ON
    cmake --build "$tree" -j "$jobs" \
        --target sim_throughput erec_benchdiff
    local out
    if [ -n "${ELASTICREC_SIM_OUT:-}" ]; then
        out="$ELASTICREC_SIM_OUT"
        mkdir -p "$out"
    else
        out="$(mktemp -d)"
        trap 'rm -rf "$out"' RETURN
    fi
    local benchdiff="$tree/tools/benchdiff/erec_benchdiff"
    "$tree/bench/sim_throughput" --quick --out "$out/BENCH_sim.json"
    "$benchdiff" \
        "$repo_root/bench/baselines/BENCH_sim.json" \
        "$out/BENCH_sim.json" --key point --tolerance 60% \
        --metric-tolerance allocs_per_query=0

    # Throttled self-test: 50 ms of sleep per simulated second turns
    # the ~32k sim-queries/s ElasticRec point into a few thousand —
    # far below the baseline floor on any machine — so the gate must
    # exit 1, proof it can actually fail.
    "$tree/bench/sim_throughput" --queries 50000 --throttle-us 50000 \
        --out "$out/BENCH_sim_throttled.json"
    local rc=0
    "$benchdiff" \
        "$repo_root/bench/baselines/BENCH_sim.json" \
        "$out/BENCH_sim_throttled.json" --key point \
        --tolerance 60% --metric-tolerance allocs_per_query=0 \
        > "$out/benchdiff-throttled.txt" 2>&1 || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "sim self-test: expected exit 1 on throttled run," \
            "got $rc" >&2
        cat "$out/benchdiff-throttled.txt" >&2
        exit 1
    fi
}

# Hot-path discipline gate: erec_hotpath extracts the ERC_HOT_PATH
# roots and the intra-repo call graph and flags heap allocation,
# blocking I/O, throw and non-try locking in every transitively
# reachable function (DESIGN.md section 10). Also self-tests the
# analyzer against a seeded violation: a gate that cannot fail is not
# a gate. Set ELASTICREC_HOTPATH_OUT to keep the JSON report (CI
# uploads hotpath.json as an artifact); by default a temp dir is used
# and removed.
stage_hotpath() {
    local tree="$repo_root/build-check-release"
    cmake -B "$tree" -S "$repo_root" "${cmake_launcher_args[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DELASTICREC_WERROR=ON
    cmake --build "$tree" -j "$jobs" --target erec_hotpath
    local out
    if [ -n "${ELASTICREC_HOTPATH_OUT:-}" ]; then
        out="$ELASTICREC_HOTPATH_OUT"
        mkdir -p "$out"
    else
        out="$(mktemp -d)"
        trap 'rm -rf "$out"' RETURN
    fi
    local hotpath="$tree/tools/hotpath/erec_hotpath"
    (cd "$repo_root" && "$hotpath" --root src --format text)
    (cd "$repo_root" && "$hotpath" --root src --format json) \
        > "$out/hotpath.json"

    # Seeded-violation self-test: a hot root reaching a push_back two
    # calls away must fail with a concrete call path.
    local seed="$out/hotpath-selftest"
    mkdir -p "$seed/src"
    cat > "$seed/src/seeded.h" <<'SEED'
#pragma once
#define ERC_HOT_PATH
namespace seeded {
ERC_HOT_PATH
void serve(int n);
}
SEED
    cat > "$seed/src/seeded.cc" <<'SEED'
#include "seeded.h"
#include <vector>
namespace seeded {
static std::vector<int> sink;
void helper(int n) { sink.push_back(n); }
void serve(int n) { helper(n); }
} // namespace seeded
SEED
    local rc=0
    (cd "$seed" && "$hotpath" --root src) > "$seed/report.txt" 2>&1 \
        || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "hotpath self-test: expected exit 1 on seeded violation," \
            "got $rc" >&2
        cat "$seed/report.txt" >&2
        exit 1
    fi
    if ! grep -q "serve -> helper" "$seed/report.txt"; then
        echo "hotpath self-test: report lacks the call path" >&2
        cat "$seed/report.txt" >&2
        exit 1
    fi
}

# Static concurrency-discipline gate: erec_conclint builds the
# lock-acquisition graph from every scoped-lock site, reports
# lock-order inversion cycles with both concrete acquisition paths,
# flags blocking calls (sleeps, I/O, predicate-less cv waits, future
# joins, transitively blocking callees) inside held-lock scopes, and
# enforces ERC_GUARDED_BY annotation coverage (DESIGN.md section 14).
# Also self-tests the analyzer against a seeded two-lock inversion: a
# gate that cannot fail is not a gate. Set ELASTICREC_CONCLINT_OUT to
# keep the JSON report (CI uploads conclint.json as the
# concurrency-report artifact); by default a temp dir is used and
# removed.
stage_concurrency() {
    local tree="$repo_root/build-check-release"
    cmake -B "$tree" -S "$repo_root" "${cmake_launcher_args[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DELASTICREC_WERROR=ON
    cmake --build "$tree" -j "$jobs" --target erec_conclint
    local out
    if [ -n "${ELASTICREC_CONCLINT_OUT:-}" ]; then
        out="$ELASTICREC_CONCLINT_OUT"
        mkdir -p "$out"
    else
        out="$(mktemp -d)"
        trap 'rm -rf "$out"' RETURN
    fi
    local conclint="$tree/tools/conclint/erec_conclint"
    (cd "$repo_root" && "$conclint" --root src --format text)
    (cd "$repo_root" && "$conclint" --root src --format json) \
        > "$out/conclint.json"

    # Seeded-violation self-test: two functions acquiring the same
    # mutex pair in opposite orders — one of them through a helper —
    # must fail and print both acquisition call paths.
    local seed="$out/conclint-selftest"
    mkdir -p "$seed/src"
    cat > "$seed/src/inverted.cc" <<'SEED'
#include <mutex>
namespace seeded {
std::mutex a_;
std::mutex b_;
void lockAB()
{
    std::lock_guard<std::mutex> ga(a_);
    std::lock_guard<std::mutex> gb(b_);
}
void helper()
{
    std::lock_guard<std::mutex> ga(a_);
}
void lockBA()
{
    std::lock_guard<std::mutex> gb(b_);
    helper();
}
} // namespace seeded
SEED
    local rc=0
    (cd "$seed" && "$conclint" --root src) > "$seed/report.txt" 2>&1 \
        || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "conclint self-test: expected exit 1 on seeded" \
            "inversion, got $rc" >&2
        cat "$seed/report.txt" >&2
        exit 1
    fi
    if ! grep -q "lockAB" "$seed/report.txt" ||
        ! grep -q "lockBA" "$seed/report.txt" ||
        ! grep -q "helper" "$seed/report.txt"; then
        echo "conclint self-test: report lacks one of the two" \
            "acquisition call paths" >&2
        cat "$seed/report.txt" >&2
        exit 1
    fi
}

# Dynamic counterpart of the concurrency gate: rebuild the concurrency
# test subset under ThreadSanitizer and run it repeatedly
# (--repeat until-fail:3) with zero suppressions, so real interleaved
# executions back the lexical lock-graph model. Reuses the tsan stage's
# build tree.
stage_tsan_stress() {
    local tree="$repo_root/build-check-tsan"
    cmake -B "$tree" -S "$repo_root" "${cmake_launcher_args[@]}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DELASTICREC_SANITIZE=thread
    cmake --build "$tree" -j "$jobs" --target \
        thread_pool_test batch_queue_test runtime_serving_test \
        tracing_serving_test alloc_tracker_test
    ctest --test-dir "$tree" --output-on-failure -j "$jobs" \
        --timeout "$ctest_timeout" \
        -R '^(thread_pool_test|batch_queue_test|runtime_serving_test|tracing_serving_test|alloc_tracker_test)$' \
        --repeat until-fail:3
}

# End-to-end smoke: run the quickstart example and the Figure 19 bench
# with --metrics-out and full causal tracing (--trace-sample 100 =
# every 100th query), validate every emitted telemetry file
# (Prometheus text, trace/alert JSON-lines against erec_trace/v1, and
# the Perfetto export) with promcheck, then render the run report —
# stage sketches plus the critical-path table — and gate on the
# "lost-queries" alert — steady fig19 traffic must never lose a query.
# (The SLA-ratio and p95 alerts legitimately fire during fig19's
# traffic spike, so they don't gate.) Set ELASTICREC_SMOKE_OUT to keep
# the telemetry + report (CI uploads it as an artifact, including the
# Perfetto trace for ui.perfetto.dev); by default a temp dir is used
# and removed.
stage_smoke() {
    local tree="$repo_root/build-check-release"
    cmake -B "$tree" -S "$repo_root" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DELASTICREC_WERROR=ON
    cmake --build "$tree" -j "$jobs" \
        --target quickstart fig19_dynamic_traffic promcheck erec_report
    local out
    if [ -n "${ELASTICREC_SMOKE_OUT:-}" ]; then
        out="$ELASTICREC_SMOKE_OUT"
        mkdir -p "$out"
    else
        out="$(mktemp -d)"
        trap 'rm -rf "$out"' RETURN
    fi
    "$tree/examples/quickstart" --metrics-out "$out"
    "$tree/bench/fig19_dynamic_traffic" --metrics-out "$out" \
        --trace-sample 100
    "$tree/tools/promcheck/promcheck" "$out"/*.prom "$out"/*.jsonl \
        "$out"/*_perfetto.json
    "$tree/tools/report/erec_report" "$out" \
        --fail-on-alert lost-queries | tee "$out/report.txt"
}

stage="${1:-all}"
case "$stage" in
  build) stage_build ;;
  asan) stage_asan ;;
  tsan) stage_tsan ;;
  lint) stage_lint ;;
  arch) stage_arch ;;
  hotpath) stage_hotpath ;;
  concurrency) stage_concurrency ;;
  tsan-stress) stage_tsan_stress ;;
  smoke) stage_smoke ;;
  bench) stage_bench ;;
  kernels) stage_kernels ;;
  sim) stage_sim ;;
  all)
    stage_build
    stage_asan
    stage_tsan
    stage_lint
    stage_arch
    stage_hotpath
    stage_concurrency
    stage_tsan_stress
    stage_smoke
    stage_bench
    stage_kernels
    stage_sim
    ;;
  *)
    echo "usage: check.sh [build|asan|tsan|lint|arch|hotpath|concurrency|tsan-stress|smoke|bench|kernels|sim|all]" >&2
    exit 2
    ;;
esac
echo "check.sh: stage '$stage' passed"
