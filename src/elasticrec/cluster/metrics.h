#pragma once

/**
 * @file
 * Prometheus-style metrics registry: per-deployment QPS windows, tail
 * latency percentiles, and gauges (memory consumption, replica counts).
 * The HPA controller and the experiment harnesses read metrics from
 * here exclusively, mirroring how the paper's setup scrapes custom
 * statistics from a Prometheus metrics server.
 */

#include <cstdint>
#include <map>
#include <string>

#include "elasticrec/common/stats.h"
#include "elasticrec/common/units.h"

namespace erec::cluster {

class MetricsRegistry
{
  public:
    /**
     * @param rate_window Window for QPS measurement.
     * @param latency_window Window for tail-latency percentiles.
     */
    explicit MetricsRegistry(
        SimTime rate_window = 10 * units::kSecond,
        SimTime latency_window = 30 * units::kSecond);

    /** Record one completed request with its end-to-end latency. */
    void recordCompletion(const std::string &deployment, SimTime now,
                          SimTime latency);

    /** Record an SLA violation (completion later than the SLA bound). */
    void recordSlaViolation(const std::string &deployment);

    /** Queries per second completed by a deployment, trailing window. */
    double qps(const std::string &deployment, SimTime now);

    /** Latency quantile of a deployment over the trailing window. */
    SimTime latencyQuantile(const std::string &deployment, SimTime now,
                            double q);

    /** Total completions since start. */
    std::uint64_t completions(const std::string &deployment) const;

    /** Total SLA violations since start. */
    std::uint64_t slaViolations(const std::string &deployment) const;

    /** Set a named gauge (e.g. memory bytes, replica count). */
    void setGauge(const std::string &name, double value);

    /** Read a gauge (0 when never set). */
    double gauge(const std::string &name) const;

  private:
    struct Series
    {
        Series(SimTime rate_window, SimTime latency_window)
            : rate(rate_window), latency(latency_window)
        {}
        RateWindow rate;
        WindowedPercentile latency;
        std::uint64_t slaViolations = 0;
    };

    Series &series(const std::string &deployment);

    SimTime rateWindow_;
    SimTime latencyWindow_;
    std::map<std::string, Series> series_;
    std::map<std::string, double> gauges_;
};

} // namespace erec::cluster
