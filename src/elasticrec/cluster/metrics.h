#pragma once

/**
 * @file
 * Prometheus-style metrics registry: per-deployment QPS windows, tail
 * latency percentiles, and gauges (memory consumption, replica counts).
 * The HPA controller and the experiment harnesses read metrics from
 * here exclusively, mirroring how the paper's setup scrapes custom
 * statistics from a Prometheus metrics server.
 *
 * When bound to an obs::Registry (bindObservability), every completion
 * and SLA violation is additionally published as exportable labelled
 * metrics (erec_completions_total, erec_sla_violations_total and the
 * erec_latency_ms histogram), so a run's telemetry can be dumped in
 * Prometheus text format.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "elasticrec/common/stats.h"
#include "elasticrec/common/units.h"
#include "elasticrec/obs/metric.h"
#include "elasticrec/obs/sketch.h"

namespace erec::cluster {

class MetricsRegistry
{
  public:
    /**
     * @param rate_window Window for QPS measurement.
     * @param latency_window Window for tail-latency percentiles.
     */
    explicit MetricsRegistry(
        SimTime rate_window = 10 * units::kSecond,
        SimTime latency_window = 30 * units::kSecond);

    /**
     * Mirror completions / SLA violations / latency samples into an
     * exportable registry. Pass nullptr to detach. The registry must
     * outlive this object (or the next bind).
     */
    void bindObservability(obs::Registry *registry);

    /** Per-deployment series, exposed as an opaque handle so hot
     *  recording paths can skip the by-name map lookup. */
    struct Series
    {
        Series(SimTime rate_window, SimTime latency_window)
            : rate(rate_window), latency(latency_window)
        {}
        RateWindow rate;
        // Streaming sketch, not a raw sample store: latencyQuantile sits
        // on the HPA evaluation path and must stay O(1) per completion.
        obs::WindowedQuantileSketch latency;
        std::uint64_t slaViolations = 0;
        // Resolved obs handles; null when no registry is bound.
        obs::Counter *obsCompletions = nullptr;
        obs::Counter *obsSlaViolations = nullptr;
        obs::Histogram *obsLatencyMs = nullptr;
    };

    /**
     * Find-or-create a deployment's series and return a stable handle
     * (map nodes don't move). Creation binds the exportable counters,
     * so resolve handles lazily — at first record, not up front — to
     * keep the export's registration order equal to the by-name path.
     */
    // ERC_HOT_PATH_ALLOW("handle resolution is lazy first-touch: one find-or-create per deployment over a run, then callers record through the cached pointer")
    Series &seriesFor(const std::string &deployment)
    {
        return series(deployment);
    }

    /** Record one completed request with its end-to-end latency. */
    void recordCompletion(const std::string &deployment, SimTime now,
                          SimTime latency);

    /** Handle-based variant for per-event recording paths. */
    void recordCompletion(Series &s, SimTime now, SimTime latency);

    /** Record an SLA violation (completion later than the SLA bound). */
    void recordSlaViolation(const std::string &deployment);

    /** Handle-based variant for per-event recording paths. */
    void recordSlaViolation(Series &s);

    /**
     * Queries per second completed by a deployment, trailing window.
     * Unknown deployments read as 0 and are not created.
     */
    double qps(const std::string &deployment, SimTime now);

    /**
     * Latency quantile of a deployment over the trailing window.
     * Unknown deployments read as 0 and are not created.
     */
    SimTime latencyQuantile(const std::string &deployment, SimTime now,
                            double q);

    /** Total completions since start. */
    std::uint64_t completions(const std::string &deployment) const;

    /** Total SLA violations since start. */
    std::uint64_t slaViolations(const std::string &deployment) const;

    /** Names of deployments that have recorded at least one sample. */
    std::vector<std::string> deployments() const;

    /** Set a named gauge (e.g. memory bytes, replica count). */
    void setGauge(const std::string &name, double value);

    /** Read a gauge (0 when never set). */
    double gauge(const std::string &name) const;

  private:
    Series &series(const std::string &deployment);
    void bindSeries(const std::string &deployment, Series &s);

    SimTime rateWindow_;
    SimTime latencyWindow_;
    obs::Registry *obs_ = nullptr;
    std::map<std::string, Series> series_;
    std::map<std::string, double> gauges_;
};

} // namespace erec::cluster
