#pragma once

/**
 * @file
 * Deployment bookkeeping: a deployment is the unit Kubernetes scales —
 * one per shard type in ElasticRec, one per whole model in the
 * baseline. It tracks the desired replica count (set by the HPA) and
 * the identities of its pods (owned by the simulator).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "elasticrec/core/planner.h"
#include "elasticrec/runtime/executor.h"

namespace erec::cluster {

/** Resource request of one pod, derived from its shard spec. */
struct ResourceRequest
{
    std::uint32_t cpuCores = 1;
    Bytes memBytes = 0;
    bool gpu = false;
};

/** Build the pod resource request for a shard spec. */
ResourceRequest resourceRequestFor(const core::ShardSpec &spec);

/**
 * Size a pod's serving executor from its shard spec: one worker per
 * requested CPU core (so a replica actually exploits the cores the
 * scheduler bin-packs for it), with the default batching knobs. This
 * is the bridge between the planner's per-shard resource math and the
 * functional runtime — bench/serving_throughput uses it to run a
 * planned deployment on real threads.
 */
runtime::ExecutorOptions executorOptionsFor(const core::ShardSpec &spec);

class Deployment
{
  public:
    Deployment(core::ShardSpec spec, std::uint32_t initial_replicas);

    const std::string &name() const { return spec_.name; }
    const core::ShardSpec &spec() const { return spec_; }
    ResourceRequest request() const { return resourceRequestFor(spec_); }

    std::uint32_t desiredReplicas() const { return desired_; }
    void setDesiredReplicas(std::uint32_t n);

    /** Bounds enforced on the desired count. */
    std::uint32_t minReplicas() const { return minReplicas_; }
    std::uint32_t maxReplicas() const { return maxReplicas_; }
    void setReplicaBounds(std::uint32_t min_r, std::uint32_t max_r);

  private:
    core::ShardSpec spec_;
    std::uint32_t desired_;
    std::uint32_t minReplicas_ = 1;
    std::uint32_t maxReplicas_ = 256;
};

} // namespace erec::cluster
