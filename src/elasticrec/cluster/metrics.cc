#include "elasticrec/cluster/metrics.h"

namespace erec::cluster {

MetricsRegistry::MetricsRegistry(SimTime rate_window, SimTime latency_window)
    : rateWindow_(rate_window), latencyWindow_(latency_window)
{
}

MetricsRegistry::Series &
MetricsRegistry::series(const std::string &deployment)
{
    auto it = series_.find(deployment);
    if (it == series_.end()) {
        it = series_
                 .emplace(deployment,
                          Series(rateWindow_, latencyWindow_))
                 .first;
    }
    return it->second;
}

void
MetricsRegistry::recordCompletion(const std::string &deployment,
                                  SimTime now, SimTime latency)
{
    auto &s = series(deployment);
    s.rate.add(now);
    s.latency.add(now, static_cast<double>(latency));
}

void
MetricsRegistry::recordSlaViolation(const std::string &deployment)
{
    ++series(deployment).slaViolations;
}

double
MetricsRegistry::qps(const std::string &deployment, SimTime now)
{
    return series(deployment).rate.rate(now);
}

SimTime
MetricsRegistry::latencyQuantile(const std::string &deployment,
                                 SimTime now, double q)
{
    return static_cast<SimTime>(
        series(deployment).latency.quantile(now, q));
}

std::uint64_t
MetricsRegistry::completions(const std::string &deployment) const
{
    const auto it = series_.find(deployment);
    return it == series_.end() ? 0 : it->second.rate.total();
}

std::uint64_t
MetricsRegistry::slaViolations(const std::string &deployment) const
{
    const auto it = series_.find(deployment);
    return it == series_.end() ? 0 : it->second.slaViolations;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    gauges_[name] = value;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

} // namespace erec::cluster
