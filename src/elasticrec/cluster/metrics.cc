#include "elasticrec/cluster/metrics.h"

namespace erec::cluster {

MetricsRegistry::MetricsRegistry(SimTime rate_window, SimTime latency_window)
    : rateWindow_(rate_window), latencyWindow_(latency_window)
{
}

void
MetricsRegistry::bindObservability(obs::Registry *registry)
{
    obs_ = registry;
    for (auto &[name, s] : series_) {
        if (obs_ == nullptr) {
            s.obsCompletions = nullptr;
            s.obsSlaViolations = nullptr;
            s.obsLatencyMs = nullptr;
        } else {
            bindSeries(name, s);
        }
    }
}

void
MetricsRegistry::bindSeries(const std::string &deployment, Series &s)
{
    const obs::Labels labels = {{"deployment", deployment}};
    s.obsCompletions =
        &obs_->counter("erec_completions_total",
                       "Completed queries per deployment.", labels);
    s.obsSlaViolations = &obs_->counter(
        "erec_sla_violations_total",
        "Completions that exceeded the SLA bound.", labels);
    s.obsLatencyMs = &obs_->histogram(
        "erec_latency_ms", "End-to-end query latency in milliseconds.",
        obs::defaultLatencyBucketsMs(), labels);
}

MetricsRegistry::Series &
MetricsRegistry::series(const std::string &deployment)
{
    auto it = series_.find(deployment);
    if (it == series_.end()) {
        it = series_
                 .emplace(deployment,
                          Series(rateWindow_, latencyWindow_))
                 .first;
        if (obs_ != nullptr)
            bindSeries(deployment, it->second);
    }
    return it->second;
}

// ERC_HOT_PATH_ALLOW("metrics recording: series binding and window growth are cold/amortized (lazy first-touch registration, recycled sample windows); the sim's AllocGate pins the gated query path at zero at runtime")
void
MetricsRegistry::recordCompletion(const std::string &deployment,
                                  SimTime now, SimTime latency)
{
    recordCompletion(series(deployment), now, latency);
}

// ERC_HOT_PATH_ALLOW("metrics recording: series binding and window growth are cold/amortized (lazy first-touch registration, recycled sample windows); the sim's AllocGate pins the gated query path at zero at runtime")
void
MetricsRegistry::recordCompletion(Series &s, SimTime now,
                                  SimTime latency)
{
    s.rate.add(now);
    s.latency.add(now, static_cast<double>(latency));
    if (s.obsCompletions != nullptr) {
        s.obsCompletions->inc();
        s.obsLatencyMs->observe(static_cast<double>(latency) /
                                static_cast<double>(units::kMillisecond));
    }
}

// ERC_HOT_PATH_ALLOW("metrics recording: series binding and window growth are cold/amortized (lazy first-touch registration, recycled sample windows); the sim's AllocGate pins the gated query path at zero at runtime")
void
MetricsRegistry::recordSlaViolation(const std::string &deployment)
{
    recordSlaViolation(series(deployment));
}

// ERC_HOT_PATH_ALLOW("metrics recording: series binding and window growth are cold/amortized (lazy first-touch registration, recycled sample windows); the sim's AllocGate pins the gated query path at zero at runtime")
void
MetricsRegistry::recordSlaViolation(Series &s)
{
    ++s.slaViolations;
    if (s.obsSlaViolations != nullptr)
        s.obsSlaViolations->inc();
}

double
MetricsRegistry::qps(const std::string &deployment, SimTime now)
{
    const auto it = series_.find(deployment);
    return it == series_.end() ? 0.0 : it->second.rate.rate(now);
}

SimTime
MetricsRegistry::latencyQuantile(const std::string &deployment,
                                 SimTime now, double q)
{
    const auto it = series_.find(deployment);
    if (it == series_.end())
        return 0;
    return static_cast<SimTime>(it->second.latency.quantile(now, q));
}

std::uint64_t
MetricsRegistry::completions(const std::string &deployment) const
{
    const auto it = series_.find(deployment);
    return it == series_.end() ? 0 : it->second.rate.total();
}

std::uint64_t
MetricsRegistry::slaViolations(const std::string &deployment) const
{
    const auto it = series_.find(deployment);
    return it == series_.end() ? 0 : it->second.slaViolations;
}

std::vector<std::string>
MetricsRegistry::deployments() const
{
    std::vector<std::string> names;
    names.reserve(series_.size());
    for (const auto &[name, s] : series_)
        names.push_back(name);
    return names;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    gauges_[name] = value;
}

double
MetricsRegistry::gauge(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

} // namespace erec::cluster
