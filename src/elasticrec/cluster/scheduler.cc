#include "elasticrec/cluster/scheduler.h"

#include <algorithm>
#include <numeric>

#include "elasticrec/common/error.h"

namespace erec::cluster {

Bytes
Packing::totalMemory() const
{
    Bytes total = 0;
    for (const auto &n : nodes)
        total += n.usedMem;
    return total;
}

Scheduler::Scheduler(hw::NodeSpec node) : node_(std::move(node))
{
}

bool
Scheduler::fits(const NodeAssignment &na, const ResourceRequest &r) const
{
    if (na.usedCores + r.cpuCores > node_.cpu.logicalCores)
        return false;
    if (na.usedMem + r.memBytes > node_.cpu.memCapacity)
        return false;
    if (r.gpu && (!node_.hasGpu || na.gpuUsed))
        return false;
    return true;
}

Packing
Scheduler::pack(const std::vector<PodRequest> &pods) const
{
    // Validate that every pod can fit *some* node.
    for (const auto &p : pods) {
        ERC_CHECK(p.resources.cpuCores <= node_.cpu.logicalCores,
                  "pod of " << p.deployment << " requests "
                            << p.resources.cpuCores
                            << " cores, node has "
                            << node_.cpu.logicalCores);
        ERC_CHECK(p.resources.memBytes <= node_.cpu.memCapacity,
                  "pod of " << p.deployment << " requests "
                            << units::formatBytes(p.resources.memBytes)
                            << ", node has "
                            << units::formatBytes(node_.cpu.memCapacity));
        ERC_CHECK(!p.resources.gpu || node_.hasGpu,
                  "pod of " << p.deployment
                            << " requests a GPU on a CPU-only node");
    }

    // First-fit-decreasing by memory, then cores.
    std::vector<std::uint32_t> order(pods.size());
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         if (pods[a].resources.memBytes !=
                             pods[b].resources.memBytes)
                             return pods[a].resources.memBytes >
                                    pods[b].resources.memBytes;
                         return pods[a].resources.cpuCores >
                                pods[b].resources.cpuCores;
                     });

    Packing packing;
    for (auto idx : order) {
        const auto &req = pods[idx].resources;
        NodeAssignment *slot = nullptr;
        for (auto &na : packing.nodes) {
            if (fits(na, req)) {
                slot = &na;
                break;
            }
        }
        if (slot == nullptr) {
            packing.nodes.emplace_back();
            slot = &packing.nodes.back();
        }
        slot->podIndices.push_back(idx);
        slot->usedCores += req.cpuCores;
        slot->usedMem += req.memBytes;
        slot->gpuUsed = slot->gpuUsed || req.gpu;
    }
    return packing;
}

Packing
Scheduler::packDeployments(
    const std::vector<std::pair<const Deployment *, std::uint32_t>>
        &deployments) const
{
    std::vector<PodRequest> pods;
    for (const auto &[dep, replicas] : deployments) {
        ERC_CHECK(dep != nullptr, "null deployment");
        for (std::uint32_t i = 0; i < replicas; ++i)
            pods.push_back({dep->name(), dep->request()});
    }
    return pack(pods);
}

} // namespace erec::cluster
