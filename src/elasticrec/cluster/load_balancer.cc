#include "elasticrec/cluster/load_balancer.h"

#include "elasticrec/common/error.h"

namespace erec::cluster {

const char *
toString(LbPolicy policy)
{
    switch (policy) {
      case LbPolicy::RoundRobin: return "round-robin";
      case LbPolicy::LeastLoaded: return "least-loaded";
      case LbPolicy::PowerOfTwoChoices: return "p2c";
    }
    return "?";
}

LoadBalancer::LoadBalancer(LbPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed)
{
}

std::uint32_t
LoadBalancer::pick(const std::vector<LbCandidate> &candidates)
{
    ERC_CHECK(!candidates.empty(), "no ready replicas to route to");
    switch (policy_) {
      case LbPolicy::RoundRobin: {
        const auto &c = candidates[rrCursor_++ % candidates.size()];
        return c.index;
      }
      case LbPolicy::LeastLoaded: {
        const LbCandidate *best = &candidates.front();
        for (const auto &c : candidates)
            if (c.inFlight < best->inFlight)
                best = &c;
        return best->index;
      }
      case LbPolicy::PowerOfTwoChoices: {
        if (candidates.size() == 1)
            return candidates.front().index;
        const auto a = rng_.uniformInt(
            static_cast<std::uint64_t>(candidates.size()));
        auto b = rng_.uniformInt(
            static_cast<std::uint64_t>(candidates.size() - 1));
        if (b >= a)
            ++b; // distinct second sample
        const auto &ca = candidates[a];
        const auto &cb = candidates[b];
        return ca.inFlight <= cb.inFlight ? ca.index : cb.index;
      }
    }
    panic("unknown load-balancing policy");
}

} // namespace erec::cluster
