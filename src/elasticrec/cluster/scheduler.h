#pragma once

/**
 * @file
 * Cluster scheduler: first-fit-decreasing bin packing of pod replicas
 * onto homogeneous nodes, respecting core, memory and GPU constraints.
 * Used to answer "how many server nodes does this deployment need?"
 * (Figures 15 and 18).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "elasticrec/cluster/deployment.h"
#include "elasticrec/hw/platform.h"

namespace erec::cluster {

/** One pod to place. */
struct PodRequest
{
    std::string deployment;
    ResourceRequest resources;
};

/** Result of packing onto one node. */
struct NodeAssignment
{
    std::vector<std::uint32_t> podIndices; //!< Into the input pod list.
    std::uint32_t usedCores = 0;
    Bytes usedMem = 0;
    bool gpuUsed = false;
};

/** Full packing result. */
struct Packing
{
    std::vector<NodeAssignment> nodes;

    std::uint32_t numNodes() const
    {
        return static_cast<std::uint32_t>(nodes.size());
    }

    /** Aggregate memory requested across all pods. */
    Bytes totalMemory() const;
};

class Scheduler
{
  public:
    explicit Scheduler(hw::NodeSpec node);

    /**
     * Pack the pods onto as few nodes as first-fit-decreasing (by
     * memory, then cores) achieves. Throws ConfigError if any single
     * pod cannot fit an empty node.
     */
    Packing pack(const std::vector<PodRequest> &pods) const;

    /**
     * Convenience: expand (deployment, replicas) pairs into pods and
     * pack them.
     */
    Packing packDeployments(
        const std::vector<std::pair<const Deployment *, std::uint32_t>>
            &deployments) const;

    const hw::NodeSpec &node() const { return node_; }

  private:
    bool fits(const NodeAssignment &na, const ResourceRequest &r) const;

    hw::NodeSpec node_;
};

} // namespace erec::cluster
