#pragma once

/**
 * @file
 * Horizontal Pod Autoscaler (Section IV-D).
 *
 * ElasticRec drives sparse shards with a throughput-centric target (the
 * shard's stress-tested QPS_max per replica) and dense shards with a
 * latency-centric target (65% of the SLA). Scaling follows the
 * Kubernetes HPA control law:
 *
 *   desired = ceil(current * measured / target)
 *
 * with a +/- tolerance dead band and a scale-down stabilization window
 * (scale-down uses the maximum desired count recommended over the
 * window, mirroring Kubernetes' behaviour).
 */

#include <cstdint>
#include <deque>
#include <string>

#include "elasticrec/common/units.h"
#include "elasticrec/obs/metric.h"

namespace erec::cluster {

/** What the HPA measures. */
enum class HpaMetric
{
    /** Queries/sec per ready replica vs. a QPS_max target. */
    QpsPerReplica,
    /** P95 latency of the deployment vs. a latency target. */
    TailLatency,
};

struct HpaPolicy
{
    HpaMetric metric = HpaMetric::QpsPerReplica;
    /** Target value: QPS_max (queries/sec) or latency target (us). */
    double target = 1.0;
    /** Dead band: no action when |measured/target - 1| <= tolerance. */
    double tolerance = 0.10;
    /** Controller sync period. */
    SimTime syncPeriod = 15 * units::kSecond;
    /** Scale-down stabilization window. */
    SimTime stabilizationWindow = 180 * units::kSecond;
    /**
     * Scale-up rate limit per sync period, mirroring the Kubernetes
     * default scaling policy (at most double, or +4 pods, whichever is
     * larger). Prevents queue-buildup latency spikes from exploding
     * the replica count in one step.
     */
    double maxScaleUpFactor = 2.0;
    std::uint32_t maxScaleUpPods = 4;
};

class Hpa
{
  public:
    explicit Hpa(HpaPolicy policy);

    const HpaPolicy &policy() const { return policy_; }

    /**
     * Publish scale decisions to an exportable registry under the
     * given deployment label: the measured metric value every
     * reconcile, and a scale-event counter (with direction) plus the
     * triggering metric value whenever the desired count changes.
     * Pass nullptr to detach. The registry must outlive this object.
     */
    void bindObservability(obs::Registry *registry,
                           const std::string &deployment);

    /**
     * One reconcile step.
     *
     * @param now Current simulated time.
     * @param current Current (ready) replica count.
     * @param measured Measured metric value (QPS per replica, or P95
     *        latency in SimTime us depending on the policy metric).
     * @return The new desired replica count.
     */
    std::uint32_t reconcile(SimTime now, std::uint32_t current,
                            double measured);

    /** Desired-count increases / decreases across reconciles. */
    std::uint64_t scaleUpEvents() const { return scaleUpEvents_; }
    std::uint64_t scaleDownEvents() const { return scaleDownEvents_; }

  private:
    HpaPolicy policy_;
    /** (time, recommendation) history for scale-down stabilization. */
    std::deque<std::pair<SimTime, std::uint32_t>> history_;
    /** Last desired count, for scale-event edge detection. */
    std::uint32_t lastDesired_ = 0;
    bool hasLastDesired_ = false;
    std::uint64_t scaleUpEvents_ = 0;
    std::uint64_t scaleDownEvents_ = 0;
    // Resolved obs handles; null when no registry is bound.
    obs::Counter *obsScaleUp_ = nullptr;
    obs::Counter *obsScaleDown_ = nullptr;
    obs::Gauge *obsMetricValue_ = nullptr;
    obs::Gauge *obsTriggerValue_ = nullptr;
};

} // namespace erec::cluster
