#pragma once

/**
 * @file
 * Load-balancing strategies for routing requests across a deployment's
 * ready replicas — the stand-in for the paper's Linkerd layer. Three
 * production policies are provided:
 *
 *  - RoundRobin: classic rotation, oblivious to load.
 *  - LeastLoaded: full scan for the replica with the fewest in-flight
 *    requests (what a service mesh with perfect information would do).
 *  - PowerOfTwoChoices: Linkerd's actual default — sample two random
 *    replicas and pick the less loaded, giving near-optimal balance
 *    at O(1) cost.
 *
 * The balancer is deliberately decoupled from the pod type: callers
 * present candidates as (index, inFlight) pairs and get the chosen
 * index back, which keeps the policy unit-testable in isolation.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "elasticrec/common/rng.h"

namespace erec::cluster {

enum class LbPolicy
{
    RoundRobin,
    LeastLoaded,
    PowerOfTwoChoices,
};

const char *toString(LbPolicy policy);

/** A routable replica: caller-assigned index and current load. */
struct LbCandidate
{
    std::uint32_t index;
    std::uint32_t inFlight;
};

class LoadBalancer
{
  public:
    explicit LoadBalancer(LbPolicy policy, std::uint64_t seed = 1);

    LbPolicy policy() const { return policy_; }

    /**
     * Pick one candidate. Returns the chosen candidate's `index`.
     * The candidate list must be non-empty.
     */
    std::uint32_t pick(const std::vector<LbCandidate> &candidates);

  private:
    LbPolicy policy_;
    Rng rng_;
    std::uint64_t rrCursor_ = 0;
};

} // namespace erec::cluster
