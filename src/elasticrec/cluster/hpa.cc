#include "elasticrec/cluster/hpa.h"

#include <algorithm>
#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::cluster {

Hpa::Hpa(HpaPolicy policy) : policy_(policy)
{
    ERC_CHECK(policy_.target > 0, "HPA target must be positive");
    ERC_CHECK(policy_.tolerance >= 0 && policy_.tolerance < 1,
              "HPA tolerance must be in [0, 1)");
    ERC_CHECK(policy_.syncPeriod > 0, "sync period must be positive");
}

void
Hpa::bindObservability(obs::Registry *registry,
                       const std::string &deployment)
{
    if (registry == nullptr) {
        obsScaleUp_ = nullptr;
        obsScaleDown_ = nullptr;
        obsMetricValue_ = nullptr;
        obsTriggerValue_ = nullptr;
        return;
    }
    obsScaleUp_ = &registry->counter(
        "erec_hpa_scale_events_total",
        "Desired-replica changes decided by the HPA.",
        {{"deployment", deployment}, {"direction", "up"}});
    obsScaleDown_ = &registry->counter(
        "erec_hpa_scale_events_total",
        "Desired-replica changes decided by the HPA.",
        {{"deployment", deployment}, {"direction", "down"}});
    obsMetricValue_ = &registry->gauge(
        "erec_hpa_metric_value",
        "Metric value observed at the last HPA reconcile.",
        {{"deployment", deployment}});
    obsTriggerValue_ = &registry->gauge(
        "erec_hpa_scale_trigger_value",
        "Metric value that triggered the last scale event.",
        {{"deployment", deployment}});
}

std::uint32_t
Hpa::reconcile(SimTime now, std::uint32_t current, double measured)
{
    ERC_CHECK(current >= 1, "reconcile requires at least one replica");
    const double ratio = measured / policy_.target;

    std::uint32_t recommendation = current;
    if (std::abs(ratio - 1.0) > policy_.tolerance) {
        recommendation = static_cast<std::uint32_t>(std::max(
            1.0, std::ceil(static_cast<double>(current) * ratio)));
    }

    // Rate-limit scale-up per sync period (Kubernetes default policy).
    const auto cap = std::max<std::uint32_t>(
        static_cast<std::uint32_t>(std::ceil(
            static_cast<double>(current) * policy_.maxScaleUpFactor)),
        current + policy_.maxScaleUpPods);
    recommendation = std::min(recommendation, cap);

    // Record and trim the recommendation history.
    history_.emplace_back(now, recommendation);
    const SimTime cutoff = now - policy_.stabilizationWindow;
    while (!history_.empty() && history_.front().first < cutoff)
        history_.pop_front();

    std::uint32_t desired;
    if (recommendation >= current) {
        desired = recommendation; // Scale up (or hold) immediately.
    } else {
        // Scale-down stabilization: act on the *highest* recommendation
        // within the window to avoid flapping.
        std::uint32_t stabilized = recommendation;
        for (const auto &[t, r] : history_)
            stabilized = std::max(stabilized, r);
        desired = std::min(stabilized, current);
    }

    if (obsMetricValue_ != nullptr)
        obsMetricValue_->set(measured);

    // Edge-detect desired-count changes so one decision (which may take
    // several syncs to realize as ready pods) counts as one event.
    if (!hasLastDesired_) {
        hasLastDesired_ = true;
        lastDesired_ = current;
    }
    if (desired != lastDesired_) {
        const bool up = desired > lastDesired_;
        if (up)
            ++scaleUpEvents_;
        else
            ++scaleDownEvents_;
        if (obsScaleUp_ != nullptr) {
            (up ? obsScaleUp_ : obsScaleDown_)->inc();
            obsTriggerValue_->set(measured);
        }
        lastDesired_ = desired;
    }
    return desired;
}

} // namespace erec::cluster
