#include "elasticrec/cluster/hpa.h"

#include <algorithm>
#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::cluster {

Hpa::Hpa(HpaPolicy policy) : policy_(policy)
{
    ERC_CHECK(policy_.target > 0, "HPA target must be positive");
    ERC_CHECK(policy_.tolerance >= 0 && policy_.tolerance < 1,
              "HPA tolerance must be in [0, 1)");
    ERC_CHECK(policy_.syncPeriod > 0, "sync period must be positive");
}

std::uint32_t
Hpa::reconcile(SimTime now, std::uint32_t current, double measured)
{
    ERC_CHECK(current >= 1, "reconcile requires at least one replica");
    const double ratio = measured / policy_.target;

    std::uint32_t recommendation = current;
    if (std::abs(ratio - 1.0) > policy_.tolerance) {
        recommendation = static_cast<std::uint32_t>(std::max(
            1.0, std::ceil(static_cast<double>(current) * ratio)));
    }

    // Rate-limit scale-up per sync period (Kubernetes default policy).
    const auto cap = std::max<std::uint32_t>(
        static_cast<std::uint32_t>(std::ceil(
            static_cast<double>(current) * policy_.maxScaleUpFactor)),
        current + policy_.maxScaleUpPods);
    recommendation = std::min(recommendation, cap);

    // Record and trim the recommendation history.
    history_.emplace_back(now, recommendation);
    const SimTime cutoff = now - policy_.stabilizationWindow;
    while (!history_.empty() && history_.front().first < cutoff)
        history_.pop_front();

    if (recommendation >= current)
        return recommendation; // Scale up (or hold) immediately.

    // Scale-down stabilization: act on the *highest* recommendation
    // within the window to avoid flapping.
    std::uint32_t stabilized = recommendation;
    for (const auto &[t, r] : history_)
        stabilized = std::max(stabilized, r);
    return std::min(stabilized, current);
}

} // namespace erec::cluster
