#include "elasticrec/cluster/deployment.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::cluster {

ResourceRequest
resourceRequestFor(const core::ShardSpec &spec)
{
    ResourceRequest req;
    req.cpuCores = spec.cpuCores;
    req.memBytes = spec.memBytes;
    req.gpu = spec.usesGpu;
    return req;
}

runtime::ExecutorOptions
executorOptionsFor(const core::ShardSpec &spec)
{
    runtime::ExecutorOptions opts;
    opts.workers = std::max(1u, spec.cpuCores);
    return opts;
}

Deployment::Deployment(core::ShardSpec spec, std::uint32_t initial_replicas)
    : spec_(std::move(spec)), desired_(std::max(1u, initial_replicas))
{
}

void
Deployment::setDesiredReplicas(std::uint32_t n)
{
    desired_ = std::clamp(n, minReplicas_, maxReplicas_);
}

void
Deployment::setReplicaBounds(std::uint32_t min_r, std::uint32_t max_r)
{
    ERC_CHECK(min_r >= 1 && min_r <= max_r,
              "invalid replica bounds [" << min_r << ", " << max_r << "]");
    minReplicas_ = min_r;
    maxReplicas_ = max_r;
    desired_ = std::clamp(desired_, minReplicas_, maxReplicas_);
}

} // namespace erec::cluster
