#include "elasticrec/serving/dense_shard_server.h"

#include "elasticrec/common/error.h"

namespace erec::serving {

DenseShardServer::DenseShardServer(
    std::shared_ptr<const model::Dlrm> dlrm,
    std::vector<core::Bucketizer> bucketizers,
    std::vector<std::vector<std::shared_ptr<SparseShardServer>>> shards)
    : dlrm_(std::move(dlrm)), bucketizers_(std::move(bucketizers)),
      shards_(std::move(shards))
{
    ERC_CHECK(dlrm_ != nullptr, "null model");
    const auto tables = dlrm_->config().numTables;
    ERC_CHECK(bucketizers_.size() == tables,
              "need one bucketizer per table");
    ERC_CHECK(shards_.size() == tables,
              "need one shard list per table");
    for (std::uint32_t t = 0; t < tables; ++t) {
        ERC_CHECK(shards_[t].size() == bucketizers_[t].numShards(),
                  "table " << t << ": shard server count ("
                           << shards_[t].size()
                           << ") must match bucketizer shards ("
                           << bucketizers_[t].numShards() << ")");
        for (const auto &s : shards_[t])
            ERC_CHECK(s != nullptr, "null shard server for table " << t);
    }
}

void
DenseShardServer::attachExecutor(
    std::shared_ptr<runtime::Executor> executor)
{
    executor_ = std::move(executor);
}

std::vector<float>
DenseShardServer::serve(const std::vector<float> &dense_in,
                        const std::vector<workload::SparseLookup> &lookups,
                        std::size_t batch) const
{
    const auto &config = dlrm_->config();
    ERC_CHECK(lookups.size() == config.numTables,
              "need one lookup set per table");
    const std::uint32_t dim = config.embeddingDim;
    served_.fetch_add(1, std::memory_order_relaxed);

    std::vector<float> bottom;
    std::vector<std::vector<float>> pooled(config.numTables);

    if (executor_ != nullptr && !executor_->serial()) {
        // Concurrent path: bucketize sequentially (cheap and
        // deterministic), then fan the bottom MLP plus every non-empty
        // shard gather out over the executor. Partials land in
        // per-shard buffers and are merged afterwards in fixed (table,
        // shard) order, so the floating-point accumulation order — and
        // therefore every output byte — matches the serial path.
        std::vector<std::vector<workload::SparseLookup>> buckets(
            config.numTables);
        struct GatherJob
        {
            std::uint32_t table;
            std::uint32_t shard;
        };
        std::vector<GatherJob> jobs;
        for (std::uint32_t t = 0; t < config.numTables; ++t) {
            buckets[t] = bucketizers_[t].bucketize(lookups[t]);
            for (std::uint32_t s = 0; s < buckets[t].size(); ++s)
                if (!buckets[t][s].indices.empty())
                    jobs.push_back({t, s});
        }
        std::vector<std::vector<float>> parts(jobs.size());
        executor_->parallelFor(jobs.size() + 1, [&](std::size_t i) {
            if (i == 0) {
                bottom = dlrm_->runBottom(dense_in, batch);
                return;
            }
            const GatherJob &job = jobs[i - 1];
            parts[i - 1] = shards_[job.table][job.shard]->gather(
                buckets[job.table][job.shard]);
        });
        for (std::uint32_t t = 0; t < config.numTables; ++t)
            pooled[t].assign(batch * dim, 0.0f);
        for (std::size_t j = 0; j < jobs.size(); ++j) {
            auto &dst = pooled[jobs[j].table];
            for (std::size_t i = 0; i < dst.size(); ++i)
                dst[i] += parts[j][i];
        }
        return dlrm_->interactAndPredict(bottom, pooled, batch);
    }

    // Serial path (no executor, or a serial one): the pre-executor
    // code, byte for byte.
    // (1) Bottom MLP runs concurrently with the gather RPCs in the real
    // system; functionally it is just computed first here.
    bottom = dlrm_->runBottom(dense_in, batch);

    // (2)+(3) Bucketize, gather from every shard, and merge. Sum
    // pooling distributes over the shard partition, so the per-table
    // pooled output is the elementwise sum of the shard responses.
    for (std::uint32_t t = 0; t < config.numTables; ++t) {
        const auto buckets = bucketizers_[t].bucketize(lookups[t]);
        pooled[t].assign(batch * dim, 0.0f);
        for (std::uint32_t s = 0; s < buckets.size(); ++s) {
            if (buckets[s].indices.empty())
                continue; // No gathers land in this shard: skip the RPC.
            const auto part = shards_[t][s]->gather(buckets[s]);
            for (std::size_t i = 0; i < pooled[t].size(); ++i)
                pooled[t][i] += part[i];
        }
    }

    // (4) Feature interaction + top MLP + sigmoid.
    return dlrm_->interactAndPredict(bottom, pooled, batch);
}

std::vector<float>
DenseShardServer::serve(const workload::Query &query) const
{
    const auto dense_in =
        dlrm_->syntheticDenseInput(query.id, query.batchSize);
    return serve(dense_in, query.lookups, query.batchSize);
}

} // namespace erec::serving
