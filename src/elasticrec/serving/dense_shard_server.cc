#include "elasticrec/serving/dense_shard_server.h"

#include "elasticrec/common/error.h"
#include "elasticrec/kernels/registry.h"

namespace erec::serving {

namespace {

/** One fan-out unit of the concurrent path: (table, shard). */
struct GatherJob
{
    std::uint32_t table;
    std::uint32_t shard;
};

/**
 * Per-thread reusable serve() buffers. Buckets, jobs and partial-merge
 * buffers keep their capacity across queries, so a warm serving
 * thread's bucketize/gather/merge machinery allocates nothing; only
 * the model-compute calls (runBottom, interactAndPredict) and the
 * returned prediction vector still own allocations.
 */
struct ServeScratch
{
    /** Concurrent path: per-table bucketized lookups. */
    std::vector<std::vector<workload::SparseLookup>> buckets;
    std::vector<GatherJob> jobs;
    /** Concurrent path: one pooled partial per gather job. */
    std::vector<std::vector<float>> parts;
    /** Serial path: one buckets buffer, reused table by table. */
    std::vector<workload::SparseLookup> serialBuckets;
    /** Serial path: one shard partial, reused shard by shard. */
    std::vector<float> serialPart;
    /** Both paths: per-table pooled embeddings. */
    std::vector<std::vector<float>> pooled;
};

thread_local ServeScratch t_scratch;

// Interned once at static-init time; hot-path records carry the ids.
const obs::NameId kMlpBottomName =
    obs::internSpanName("serving/mlp_bottom");
const obs::NameId kRpcGatherName = obs::internSpanName("rpc/gather");

/** Child slots under the serving/serve span: slot 0 = bottom MLP,
 *  slot 1+j = gather job j. Slots above the encoding's 254-child
 *  budget are not recorded (they would alias); real configurations
 *  stay far below it. */
constexpr unsigned kMlpBottomSlot = 0;
constexpr unsigned kMaxGatherSlots = 253;

constexpr std::uint64_t
gatherArg(std::uint32_t table, std::uint32_t shard)
{
    return (static_cast<std::uint64_t>(table) << 16) | shard;
}

} // namespace

DenseShardServer::DenseShardServer(
    std::shared_ptr<const model::Dlrm> dlrm,
    std::vector<core::Bucketizer> bucketizers,
    std::vector<std::vector<std::shared_ptr<SparseShardServer>>> shards,
    const kernels::KernelBackend *backend)
    : dlrm_(std::move(dlrm)), bucketizers_(std::move(bucketizers)),
      shards_(std::move(shards)),
      backend_(backend != nullptr ? backend : &kernels::defaultBackend())
{
    ERC_CHECK(dlrm_ != nullptr, "null model");
    const auto tables = dlrm_->config().numTables;
    ERC_CHECK(bucketizers_.size() == tables,
              "need one bucketizer per table");
    ERC_CHECK(shards_.size() == tables,
              "need one shard list per table");
    for (std::uint32_t t = 0; t < tables; ++t) {
        ERC_CHECK(shards_[t].size() == bucketizers_[t].numShards(),
                  "table " << t << ": shard server count ("
                           << shards_[t].size()
                           << ") must match bucketizer shards ("
                           << bucketizers_[t].numShards() << ")");
        for (const auto &s : shards_[t])
            ERC_CHECK(s != nullptr, "null shard server for table " << t);
    }
}

void
DenseShardServer::attachExecutor(
    std::shared_ptr<runtime::Executor> executor)
{
    executor_ = std::move(executor);
}

void
DenseShardServer::attachRecorder(
    std::shared_ptr<obs::FlightRecorder> recorder)
{
    recorder_ = std::move(recorder);
}

std::vector<float>
DenseShardServer::serve(const std::vector<float> &dense_in,
                        const std::vector<workload::SparseLookup> &lookups,
                        std::size_t batch,
                        const obs::TraceContext &ctx) const
{
    const auto &config = dlrm_->config();
    ERC_CHECK(lookups.size() == config.numTables,
              "need one lookup set per table");
    const std::uint32_t dim = config.embeddingDim;
    served_.fetch_add(1, std::memory_order_relaxed);
    const bool traced = recorder_ != nullptr && ctx.sampled();

    // Arena-style per-thread scratch (refit to this model's table
    // count each call): allocation-free once warm.
    ServeScratch &s = t_scratch;
    std::vector<float> bottom;
    s.pooled.resize(config.numTables); // ERC_HOT_PATH_ALLOW("refit to table count; no-op for a warm thread")

    if (executor_ != nullptr && !executor_->serial()) {
        // Concurrent path: bucketize sequentially (cheap and
        // deterministic), then fan the bottom MLP plus every non-empty
        // shard gather out over the executor. Partials land in
        // per-shard buffers and are merged afterwards in fixed (table,
        // shard) order, so the floating-point accumulation order — and
        // therefore every output byte — matches the serial path.
        s.buckets.resize(config.numTables); // ERC_HOT_PATH_ALLOW("refit to table count; no-op for a warm thread")
        s.jobs.clear();
        for (std::uint32_t t = 0; t < config.numTables; ++t) {
            bucketizers_[t].bucketizeInto(lookups[t], &s.buckets[t]);
            for (std::uint32_t sh = 0; sh < s.buckets[t].size(); ++sh)
                if (!s.buckets[t][sh].indices.empty())
                    s.jobs.push_back({t, sh}); // ERC_HOT_PATH_ALLOW("bounded by total shard count; capacity reused across queries")
        }
        s.parts.resize(s.jobs.size()); // ERC_HOT_PATH_ALLOW("refit to job count; no-op for a warm thread")
        executor_->parallelFor(s.jobs.size() + 1, [&](std::size_t i) {
            if (i == 0) {
                const std::int64_t t0 =
                    traced ? recorder_->nowUs() : 0;
                bottom = dlrm_->runBottom(dense_in, batch, *backend_);
                if (traced)
                    recorder_->recordSpan(ctx.child(kMlpBottomSlot),
                                          kMlpBottomName, t0,
                                          recorder_->nowUs());
                return;
            }
            const GatherJob &job = s.jobs[i - 1];
            // Gather job j gets child slot 1 + j, mirroring the serial
            // path's enumeration exactly: the same query produces the
            // same span ids under any worker count.
            const bool span = traced && i - 1 < kMaxGatherSlots;
            const obs::TraceContext rpc =
                span ? ctx.child(1 + static_cast<unsigned>(i - 1))
                     : obs::TraceContext{};
            const std::int64_t t0 = span ? recorder_->nowUs() : 0;
            shards_[job.table][job.shard]->gatherInto(
                s.buckets[job.table][job.shard], &s.parts[i - 1], rpc);
            if (span)
                recorder_->recordSpan(rpc, kRpcGatherName, t0,
                                      recorder_->nowUs(),
                                      gatherArg(job.table, job.shard));
        });
        for (std::uint32_t t = 0; t < config.numTables; ++t)
            s.pooled[t].assign(batch * dim, 0.0f);
        for (std::size_t j = 0; j < s.jobs.size(); ++j) {
            auto &dst = s.pooled[s.jobs[j].table];
            for (std::size_t i = 0; i < dst.size(); ++i)
                dst[i] += s.parts[j][i];
        }
        return dlrm_->interactAndPredict(bottom, s.pooled, batch,
                                         *backend_);
    }

    // Serial path (no executor, or a serial one): same computation in
    // the same order as the pre-executor code.
    // (1) Bottom MLP runs concurrently with the gather RPCs in the real
    // system; functionally it is just computed first here.
    {
        const std::int64_t t0 = traced ? recorder_->nowUs() : 0;
        bottom = dlrm_->runBottom(dense_in, batch, *backend_);
        if (traced)
            recorder_->recordSpan(ctx.child(kMlpBottomSlot),
                                  kMlpBottomName, t0,
                                  recorder_->nowUs());
    }

    // (2)+(3) Bucketize, gather from every shard, and merge. Sum
    // pooling distributes over the shard partition, so the per-table
    // pooled output is the elementwise sum of the shard responses.
    // Non-empty shards are visited in the same (table, shard) order the
    // concurrent path enumerates its jobs, so gather span slots match.
    std::size_t gather_slot = 0;
    for (std::uint32_t t = 0; t < config.numTables; ++t) {
        bucketizers_[t].bucketizeInto(lookups[t], &s.serialBuckets);
        s.pooled[t].assign(batch * dim, 0.0f);
        for (std::uint32_t sh = 0; sh < s.serialBuckets.size(); ++sh) {
            if (s.serialBuckets[sh].indices.empty())
                continue; // No gathers land in this shard: skip the RPC.
            const bool span = traced && gather_slot < kMaxGatherSlots;
            const obs::TraceContext rpc =
                span ? ctx.child(
                           1 + static_cast<unsigned>(gather_slot))
                     : obs::TraceContext{};
            const std::int64_t t0 = span ? recorder_->nowUs() : 0;
            shards_[t][sh]->gatherInto(s.serialBuckets[sh],
                                       &s.serialPart, rpc);
            if (span)
                recorder_->recordSpan(rpc, kRpcGatherName, t0,
                                      recorder_->nowUs(),
                                      gatherArg(t, sh));
            ++gather_slot;
            for (std::size_t i = 0; i < s.pooled[t].size(); ++i)
                s.pooled[t][i] += s.serialPart[i];
        }
    }

    // (4) Feature interaction + top MLP + sigmoid.
    return dlrm_->interactAndPredict(bottom, s.pooled, batch, *backend_);
}

std::vector<float>
DenseShardServer::serve(const workload::Query &query) const
{
    const auto dense_in =
        dlrm_->syntheticDenseInput(query.id, query.batchSize);
    return serve(dense_in, query.lookups, query.batchSize, query.trace);
}

} // namespace erec::serving
