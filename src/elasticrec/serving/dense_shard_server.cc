#include "elasticrec/serving/dense_shard_server.h"

#include "elasticrec/common/error.h"

namespace erec::serving {

DenseShardServer::DenseShardServer(
    std::shared_ptr<const model::Dlrm> dlrm,
    std::vector<core::Bucketizer> bucketizers,
    std::vector<std::vector<std::shared_ptr<SparseShardServer>>> shards)
    : dlrm_(std::move(dlrm)), bucketizers_(std::move(bucketizers)),
      shards_(std::move(shards))
{
    ERC_CHECK(dlrm_ != nullptr, "null model");
    const auto tables = dlrm_->config().numTables;
    ERC_CHECK(bucketizers_.size() == tables,
              "need one bucketizer per table");
    ERC_CHECK(shards_.size() == tables,
              "need one shard list per table");
    for (std::uint32_t t = 0; t < tables; ++t) {
        ERC_CHECK(shards_[t].size() == bucketizers_[t].numShards(),
                  "table " << t << ": shard server count ("
                           << shards_[t].size()
                           << ") must match bucketizer shards ("
                           << bucketizers_[t].numShards() << ")");
        for (const auto &s : shards_[t])
            ERC_CHECK(s != nullptr, "null shard server for table " << t);
    }
}

std::vector<float>
DenseShardServer::serve(const std::vector<float> &dense_in,
                        const std::vector<workload::SparseLookup> &lookups,
                        std::size_t batch) const
{
    const auto &config = dlrm_->config();
    ERC_CHECK(lookups.size() == config.numTables,
              "need one lookup set per table");
    const std::uint32_t dim = config.embeddingDim;
    ++served_;

    // (1) Bottom MLP runs concurrently with the gather RPCs in the real
    // system; functionally it is just computed first here.
    auto bottom = dlrm_->runBottom(dense_in, batch);

    // (2)+(3) Bucketize, gather from every shard, and merge. Sum
    // pooling distributes over the shard partition, so the per-table
    // pooled output is the elementwise sum of the shard responses.
    std::vector<std::vector<float>> pooled(config.numTables);
    for (std::uint32_t t = 0; t < config.numTables; ++t) {
        const auto buckets = bucketizers_[t].bucketize(lookups[t]);
        pooled[t].assign(batch * dim, 0.0f);
        for (std::uint32_t s = 0; s < buckets.size(); ++s) {
            if (buckets[s].indices.empty())
                continue; // No gathers land in this shard: skip the RPC.
            const auto part = shards_[t][s]->gather(buckets[s]);
            for (std::size_t i = 0; i < pooled[t].size(); ++i)
                pooled[t][i] += part[i];
        }
    }

    // (4) Feature interaction + top MLP + sigmoid.
    return dlrm_->interactAndPredict(bottom, pooled, batch);
}

std::vector<float>
DenseShardServer::serve(const workload::Query &query) const
{
    const auto dense_in =
        dlrm_->syntheticDenseInput(query.id, query.batchSize);
    return serve(dense_in, query.lookups, query.batchSize);
}

} // namespace erec::serving
