#pragma once

/**
 * @file
 * Sparse embedding shard microservice (Section IV-A): owns one
 * partitioned slice of a hotness-sorted embedding table and answers
 * gather requests carrying shard-local index IDs (the output of the
 * bucketizer). This is the functional (real data) execution path; the
 * cluster simulator separately charges its latency via the planner's
 * shard specs.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/embedding/sharded_table.h"
#include "elasticrec/obs/flight_recorder.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::serving {

class SparseShardServer
{
  public:
    /**
     * @param table The partitioned table this shard belongs to.
     * @param shard_id Which shard of the table this server owns.
     * @param backend Kernel backend gathers execute on; null selects
     *        the process-wide dispatched default.
     */
    SparseShardServer(std::shared_ptr<const embedding::ShardedTable> table,
                      std::uint32_t shard_id,
                      const kernels::KernelBackend *backend = nullptr);

    std::uint32_t shardId() const { return shardId_; }
    embedding::ShardRange range() const;
    Bytes memBytes() const;

    /**
     * Serve one gather request: shard-local indices + full-batch
     * offsets, returning one pooled vector per batch item
     * (batch x dim floats). Thread-safe: the table is immutable and
     * the load counter is atomic, so executor workers may gather from
     * one shard concurrently.
     */
    ERC_HOT_PATH
    std::vector<float>
    gather(const workload::SparseLookup &local_lookup) const;

    /**
     * gather() into a caller-owned buffer (resized to batch x dim) so
     * a warm caller pays no allocation — the dense frontend's serving
     * variant. Results are identical to gather().
     */
    ERC_HOT_PATH
    void gatherInto(const workload::SparseLookup &local_lookup,
                    std::vector<float> *pooled,
                    const obs::TraceContext &ctx = {}) const;

    /**
     * Attach a flight recorder: traced gather calls (sampled ctx)
     * record a `sparse/gather` service span under the caller's RPC
     * span, tagged with this shard's id. Not thread-safe; attach
     * before serving starts.
     */
    void attachRecorder(std::shared_ptr<obs::FlightRecorder> recorder);

    /** Total rows gathered by this server so far (load accounting). */
    std::uint64_t rowsGathered() const
    {
        return rowsGathered_.load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<const embedding::ShardedTable> table_;
    std::uint32_t shardId_;
    const kernels::KernelBackend *backend_;
    std::shared_ptr<obs::FlightRecorder> recorder_;
    mutable std::atomic<std::uint64_t> rowsGathered_{0};
};

} // namespace erec::serving
