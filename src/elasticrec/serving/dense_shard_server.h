#pragma once

/**
 * @file
 * Dense DNN shard microservice: the front-end of an ElasticRec
 * deployment (Section IV-A, "Life of an inference query").
 *
 * On each query it (1) runs the bottom MLP over the dense features,
 * (2) bucketizes the sparse index/offset arrays per embedding shard and
 * issues gather RPCs, (3) merges the shard responses (sum pooling is
 * additive across shards), and (4) runs feature interaction + top MLP
 * to produce click probabilities.
 *
 * This class implements the functional path with real floats and
 * in-process calls to SparseShardServer instances; the simulator models
 * the same flow's timing at cluster scale.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/core/bucketizer.h"
#include "elasticrec/model/dlrm.h"
#include "elasticrec/obs/flight_recorder.h"
#include "elasticrec/runtime/executor.h"
#include "elasticrec/serving/sparse_shard_server.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::serving {

class DenseShardServer
{
  public:
    /**
     * @param dlrm The model whose dense parts this shard runs.
     * @param bucketizers One per table, built from that table's
     *        partitioning points and inverse hotness permutation.
     * @param shards shards[t][s] serves table t's shard s.
     * @param backend Kernel backend the MLP GEMMs execute on; null
     *        selects the process-wide dispatched default. (Each sparse
     *        shard carries its own backend handle for gathers.)
     */
    DenseShardServer(
        std::shared_ptr<const model::Dlrm> dlrm,
        std::vector<core::Bucketizer> bucketizers,
        std::vector<std::vector<std::shared_ptr<SparseShardServer>>>
            shards,
        const kernels::KernelBackend *backend = nullptr);

    /**
     * Serve one query end to end.
     *
     * @param dense_in Batch x bottom-MLP-input dense features.
     * @param lookups Per-table index/offset arrays with *original*
     *        table IDs.
     * @param batch Number of items.
     * @return Click probability per item.
     */
    ERC_HOT_PATH
    std::vector<float>
    serve(const std::vector<float> &dense_in,
          const std::vector<workload::SparseLookup> &lookups,
          std::size_t batch,
          const obs::TraceContext &ctx = {}) const;

    /** Serve a generated query using synthetic dense features; the
     *  query's propagated TraceContext scopes any recorded spans. */
    ERC_HOT_PATH
    std::vector<float> serve(const workload::Query &query) const;

    /**
     * Run the bottom MLP and the per-shard gather fan-out of every
     * query through an executor (null detaches). With a non-serial
     * executor the bottom MLP and all shard gathers of one query run
     * concurrently, but the shard partials are merged in fixed (table,
     * shard) order, so outputs stay bit-identical to serial mode.
     * serve() itself is thread-safe either way; attach/detach is not
     * and must happen before serving starts.
     */
    void attachExecutor(std::shared_ptr<runtime::Executor> executor);

    /**
     * Attach a flight recorder: traced serve() calls record the
     * bottom-MLP span and one `rpc/gather` span per non-empty shard
     * gather under the caller's serve span, with deterministic
     * slot-derived span ids (identical job enumeration on the serial
     * and concurrent paths). Not thread-safe; attach before serving.
     */
    void attachRecorder(std::shared_ptr<obs::FlightRecorder> recorder);

    const model::Dlrm &model() const { return *dlrm_; }

    /** Queries served end to end by this frontend (load accounting). */
    std::uint64_t queriesServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<const model::Dlrm> dlrm_;
    std::vector<core::Bucketizer> bucketizers_;
    std::vector<std::vector<std::shared_ptr<SparseShardServer>>> shards_;
    const kernels::KernelBackend *backend_;
    std::shared_ptr<runtime::Executor> executor_;
    std::shared_ptr<obs::FlightRecorder> recorder_;
    mutable std::atomic<std::uint64_t> served_{0};
};

} // namespace erec::serving
