#include "elasticrec/serving/sparse_shard_server.h"

#include "elasticrec/common/error.h"
#include "elasticrec/kernels/registry.h"

namespace erec::serving {

namespace {

const obs::NameId kSparseGatherName =
    obs::internSpanName("sparse/gather");

} // namespace

SparseShardServer::SparseShardServer(
    std::shared_ptr<const embedding::ShardedTable> table,
    std::uint32_t shard_id, const kernels::KernelBackend *backend)
    : table_(std::move(table)), shardId_(shard_id),
      backend_(backend != nullptr ? backend : &kernels::defaultBackend())
{
    ERC_CHECK(table_ != nullptr, "null sharded table");
    ERC_CHECK(shard_id < table_->numShards(),
              "shard ID " << shard_id << " out of range");
}

embedding::ShardRange
SparseShardServer::range() const
{
    return table_->shardRange(shardId_);
}

Bytes
SparseShardServer::memBytes() const
{
    return table_->shardBytes(shardId_);
}

std::vector<float>
SparseShardServer::gather(const workload::SparseLookup &local_lookup) const
{
    std::vector<float> pooled;
    gatherInto(local_lookup, &pooled);
    return pooled;
}

void
SparseShardServer::attachRecorder(
    std::shared_ptr<obs::FlightRecorder> recorder)
{
    recorder_ = std::move(recorder);
}

void
SparseShardServer::gatherInto(const workload::SparseLookup &local_lookup,
                              std::vector<float> *pooled,
                              const obs::TraceContext &ctx) const
{
    const std::size_t batch = local_lookup.batchSize();
    ERC_CHECK(batch > 0, "gather request must carry at least one item");
    const bool traced = recorder_ != nullptr && ctx.sampled();
    const std::int64_t start_us = traced ? recorder_->nowUs() : 0;
    // assign() reuses the caller's capacity; gatherPool overwrites the
    // zeroed buffer per batch item, exactly as the by-value path did.
    pooled->assign(batch * table_->table().dim(), 0.0f);
    rowsGathered_.fetch_add(
        table_->gatherPool(shardId_, local_lookup.view(), pooled->data(),
                           *backend_),
        std::memory_order_relaxed);
    if (traced)
        // Service span (slot 0 under the caller's rpc/gather span):
        // the shard-local work, as opposed to the caller-side RPC leg.
        recorder_->recordSpan(ctx.child(0), kSparseGatherName, start_us,
                              recorder_->nowUs(), shardId_);
}

} // namespace erec::serving
