#include "elasticrec/serving/stack_builder.h"

#include "elasticrec/common/error.h"
#include "elasticrec/embedding/frequency_tracker.h"
#include "elasticrec/kernels/registry.h"

namespace erec::serving {

namespace {

obs::Labels
shardLabels(std::uint32_t table, std::uint32_t shard)
{
    return {{"table", "table-" + std::to_string(table)},
            {"shard", "shard-" + std::to_string(shard)}};
}

} // namespace

std::future<std::vector<float>>
ElasticRecStack::submit(workload::Query query) const
{
    ERC_CHECK(dispatcher != nullptr,
              "stack has no dispatcher; build it with "
              "StackOptions::executor set");
    return dispatcher->submit(std::move(query));
}

void
ElasticRecStack::publishStats() const
{
    if (observability == nullptr)
        return;
    observability
        ->gauge("erec_frontend_queries_served",
                "Queries served end to end by the functional frontend.")
        .set(static_cast<double>(frontend->queriesServed()));
    if (executor != nullptr)
        executor->publishStats(*observability);
    if (dispatcher != nullptr)
        dispatcher->publishStats(*observability);
    for (std::uint32_t t = 0; t < shards.size(); ++t) {
        for (std::uint32_t s = 0; s < shards[t].size(); ++s) {
            observability
                ->gauge("erec_shard_rows_gathered",
                        "Rows gathered by one sparse shard server.",
                        shardLabels(t, s))
                .set(static_cast<double>(shards[t][s]->rowsGathered()));
        }
    }
}

ElasticRecStack
buildElasticRecStack(std::shared_ptr<const model::Dlrm> dlrm,
                     std::vector<TablePlan> plans, StackOptions options)
{
    ERC_CHECK(dlrm != nullptr, "null model");
    const std::uint32_t tables = dlrm->config().numTables;
    ERC_CHECK(plans.size() == 1 || plans.size() == tables,
              "pass one TablePlan or one per table");

    auto plan_for = [&](std::uint32_t t) -> const TablePlan & {
        return plans.size() == 1 ? plans[0] : plans[t];
    };

    ElasticRecStack stack;
    stack.observability = options.observability;
    if (options.traceSampleEvery > 0) {
        obs::FlightRecorderOptions ropts;
        ropts.sampleEvery = options.traceSampleEvery;
        ropts.ringCapacity = options.traceRingCapacity;
        stack.recorder = std::make_shared<obs::FlightRecorder>(ropts);
    }
    // One backend handle serves the whole stack: every sparse shard's
    // gathers and the frontend's GEMMs resolve here, once, so a
    // misconfigured name fails at build time rather than mid-query.
    stack.kernelBackend = &kernels::resolveBackend(options.kernelBackend);
    std::vector<core::Bucketizer> bucketizers;
    for (std::uint32_t t = 0; t < tables; ++t) {
        const TablePlan &plan = plan_for(t);
        auto sharded = std::make_shared<embedding::ShardedTable>(
            dlrm->table(t), plan.sortPerm, plan.boundaries);
        stack.tables.push_back(sharded);

        std::vector<std::uint32_t> inv;
        if (!plan.sortPerm.empty())
            inv = embedding::FrequencyTracker::invertPermutation(
                plan.sortPerm);
        bucketizers.emplace_back(plan.boundaries, std::move(inv));

        std::vector<std::shared_ptr<SparseShardServer>> servers;
        for (std::uint32_t s = 0; s < sharded->numShards(); ++s) {
            auto server = std::make_shared<SparseShardServer>(
                sharded, s, stack.kernelBackend);
            if (stack.recorder != nullptr)
                server->attachRecorder(stack.recorder);
            if (options.observability != nullptr) {
                options.observability
                    ->gauge("erec_shard_rows",
                            "Rows owned by one sparse shard.",
                            shardLabels(t, s))
                    .set(static_cast<double>(server->range().rows()));
                options.observability
                    ->gauge("erec_shard_bytes",
                            "Parameter bytes owned by one sparse shard.",
                            shardLabels(t, s))
                    .set(static_cast<double>(server->memBytes()));
            }
            servers.push_back(std::move(server));
        }
        stack.shards.push_back(std::move(servers));
    }
    stack.frontend = std::make_shared<DenseShardServer>(
        dlrm, std::move(bucketizers), stack.shards, stack.kernelBackend);
    if (stack.recorder != nullptr)
        stack.frontend->attachRecorder(stack.recorder);
    if (options.executor != nullptr) {
        stack.executor = options.executor;
        stack.frontend->attachExecutor(stack.executor);
        auto frontend = stack.frontend;
        stack.dispatcher = std::make_shared<QueryDispatcher>(
            [frontend](const workload::Query &q) {
                return frontend->serve(q);
            },
            stack.executor, stack.recorder);
    }
    return stack;
}

} // namespace erec::serving
