#include "elasticrec/serving/stack_builder.h"

#include "elasticrec/common/error.h"
#include "elasticrec/embedding/frequency_tracker.h"

namespace erec::serving {

ElasticRecStack
buildElasticRecStack(
    std::shared_ptr<const model::Dlrm> dlrm,
    std::vector<std::vector<std::uint64_t>> boundaries_per_table,
    std::vector<std::vector<std::uint32_t>> sort_perm_per_table)
{
    ERC_CHECK(dlrm != nullptr, "null model");
    const std::uint32_t tables = dlrm->config().numTables;
    ERC_CHECK(boundaries_per_table.size() == 1 ||
                  boundaries_per_table.size() == tables,
              "pass one boundary set or one per table");
    ERC_CHECK(sort_perm_per_table.empty() ||
                  sort_perm_per_table.size() == 1 ||
                  sort_perm_per_table.size() == tables,
              "pass zero, one, or one-per-table sort permutations");

    auto boundaries_for = [&](std::uint32_t t)
        -> const std::vector<std::uint64_t> & {
        return boundaries_per_table.size() == 1 ? boundaries_per_table[0]
                                                : boundaries_per_table[t];
    };
    auto perm_for = [&](std::uint32_t t) -> std::vector<std::uint32_t> {
        if (sort_perm_per_table.empty())
            return {};
        return sort_perm_per_table.size() == 1 ? sort_perm_per_table[0]
                                               : sort_perm_per_table[t];
    };

    ElasticRecStack stack;
    std::vector<core::Bucketizer> bucketizers;
    for (std::uint32_t t = 0; t < tables; ++t) {
        auto perm = perm_for(t);
        auto sharded = std::make_shared<embedding::ShardedTable>(
            dlrm->table(t), perm, boundaries_for(t));
        stack.tables.push_back(sharded);

        std::vector<std::uint32_t> inv;
        if (!perm.empty())
            inv = embedding::FrequencyTracker::invertPermutation(perm);
        bucketizers.emplace_back(boundaries_for(t), std::move(inv));

        std::vector<std::shared_ptr<SparseShardServer>> servers;
        for (std::uint32_t s = 0; s < sharded->numShards(); ++s)
            servers.push_back(
                std::make_shared<SparseShardServer>(sharded, s));
        stack.shards.push_back(std::move(servers));
    }
    stack.frontend = std::make_shared<DenseShardServer>(
        dlrm, std::move(bucketizers), stack.shards);
    return stack;
}

} // namespace erec::serving
