#pragma once

/**
 * @file
 * Convenience builder wiring a complete ElasticRec functional serving
 * stack: per-table ShardedTable views, one SparseShardServer per shard,
 * per-table Bucketizers, and the DenseShardServer front end.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "elasticrec/serving/dense_shard_server.h"

namespace erec::serving {

/** A fully wired in-process ElasticRec deployment. */
struct ElasticRecStack
{
    std::shared_ptr<DenseShardServer> frontend;
    std::vector<std::shared_ptr<const embedding::ShardedTable>> tables;
    std::vector<std::vector<std::shared_ptr<SparseShardServer>>> shards;
};

/**
 * Build the stack.
 *
 * @param dlrm The model (provides tables and dense layers).
 * @param boundaries_per_table Partitioning points per table in
 *        hotness-sorted space. Pass a single entry to reuse one plan
 *        for every table.
 * @param sort_perm_per_table Hotness permutation per table
 *        (rank -> original ID). Pass an empty vector when tables are
 *        already hotness-sorted; pass a single entry to share one.
 */
ElasticRecStack buildElasticRecStack(
    std::shared_ptr<const model::Dlrm> dlrm,
    std::vector<std::vector<std::uint64_t>> boundaries_per_table,
    std::vector<std::vector<std::uint32_t>> sort_perm_per_table = {});

} // namespace erec::serving
