#pragma once

/**
 * @file
 * Convenience builder wiring a complete ElasticRec functional serving
 * stack: per-table ShardedTable views, one SparseShardServer per shard,
 * per-table Bucketizers, and the DenseShardServer front end.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "elasticrec/obs/metric.h"
#include "elasticrec/runtime/executor.h"
#include "elasticrec/serving/dense_shard_server.h"
#include "elasticrec/serving/query_dispatcher.h"

namespace erec::serving {

/**
 * How one embedding table is partitioned for serving. The builder
 * accepts either one plan shared by every table or one plan per table.
 */
struct TablePlan
{
    /** Partitioning points in hotness-sorted space. */
    std::vector<std::uint64_t> boundaries = {};
    /**
     * Hotness permutation (rank -> original ID). Leave empty when the
     * table is already hotness-sorted.
     */
    std::vector<std::uint32_t> sortPerm = {};
};

/** Knobs of buildElasticRecStack beyond the per-table plans. */
struct StackOptions
{
    /**
     * When set, the builder registers per-shard size gauges
     * (erec_shard_rows / erec_shard_bytes) and publishStats() becomes
     * available on the stack.
     */
    std::shared_ptr<obs::Registry> observability = {};
    /**
     * When set, the frontend's bottom MLP + shard gathers fan out over
     * this executor and the stack gets a QueryDispatcher so queries
     * can be submitted concurrently (stack.submit). A serial executor
     * (workers == 0) keeps everything inline and byte-identical to the
     * executor-less path.
     */
    std::shared_ptr<runtime::Executor> executor = {};
    /**
     * Kernel backend every shard gather and MLP GEMM executes on:
     * "scalar", "avx2", "avx512", or "" for the default (the
     * ERC_KERNEL_BACKEND env var when set, else the widest ISA this
     * host supports). A known name whose ISA is missing here degrades
     * to the best available backend; an unknown name is a ConfigError.
     * Outputs are bit-identical across backends either way.
     */
    std::string kernelBackend = {};
    /**
     * Causal tracing: sample every Nth submitted query into the
     * flight recorder (0 disables tracing entirely). When > 0 the
     * builder creates a FlightRecorder, attaches it to the frontend
     * and every sparse shard server, and hands it to the dispatcher,
     * which starts trace contexts at submit(). Drain the recorder via
     * ElasticRecStack::recorder after serving to build span trees.
     */
    std::uint64_t traceSampleEvery = 0;
    /** Per-thread span ring capacity when tracing is on. */
    std::size_t traceRingCapacity = 4096;
};

/** A fully wired in-process ElasticRec deployment. */
struct ElasticRecStack
{
    std::shared_ptr<DenseShardServer> frontend;
    std::vector<std::shared_ptr<const embedding::ShardedTable>> tables;
    std::vector<std::vector<std::shared_ptr<SparseShardServer>>> shards;
    /** Registry from StackOptions; null when none was supplied. */
    std::shared_ptr<obs::Registry> observability = {};
    /** Executor from StackOptions; null when none was supplied. */
    std::shared_ptr<runtime::Executor> executor = {};
    /** Batching front door; non-null iff an executor was supplied. */
    std::shared_ptr<QueryDispatcher> dispatcher = {};
    /** The kernel backend the whole stack resolved to (never null). */
    const kernels::KernelBackend *kernelBackend = nullptr;
    /** Flight recorder; non-null iff traceSampleEvery > 0. */
    std::shared_ptr<obs::FlightRecorder> recorder = {};

    /**
     * Submit one query through the dispatcher (requires
     * StackOptions::executor). Concurrency-safe; blocks on a full
     * request queue.
     */
    std::future<std::vector<float>> submit(workload::Query query) const;

    /**
     * Snapshot serving counters (frontend queries served, per-shard
     * rows gathered, executor occupancy, dispatcher batching stats)
     * into the registry. No-op without one.
     */
    void publishStats() const;
};

/**
 * Build the stack.
 *
 * @param dlrm The model (provides tables and dense layers).
 * @param plans One TablePlan shared by all tables, or one per table.
 * @param options See StackOptions.
 */
ElasticRecStack buildElasticRecStack(
    std::shared_ptr<const model::Dlrm> dlrm,
    std::vector<TablePlan> plans, StackOptions options = {});

} // namespace erec::serving
