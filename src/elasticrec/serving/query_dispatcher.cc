#include "elasticrec/serving/query_dispatcher.h"

#include <algorithm>
#include <string>
#include <utility>

#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/common/error.h"

namespace erec::serving {

namespace {

/** Charged by the gates around the pump loop's queue interactions. */
AllocRegion &
dispatcherPumpRegion()
{
    static AllocRegion region("dispatcher-pump");
    return region;
}

// Interned once at static-init time; hot-path records carry the ids.
const obs::NameId kQuerySpanName = obs::internSpanName("serving/query");
const obs::NameId kQueueSpanName = obs::internSpanName("serving/queue");
const obs::NameId kServeSpanName = obs::internSpanName("serving/serve");
const obs::NameId kBatchSpanName = obs::internSpanName("serving/batch");
const obs::NameId kBatchLinkName =
    obs::internSpanName("serving/batch_link");

} // namespace

QueryDispatcher::QueryDispatcher(
    ServeFn serve, std::shared_ptr<runtime::Executor> executor,
    std::shared_ptr<obs::FlightRecorder> recorder)
    : serve_(std::move(serve)), executor_(std::move(executor)),
      recorder_(std::move(recorder)),
      tracing_(recorder_ != nullptr && recorder_->enabled()),
      batchHist_(executor_ == nullptr ? 1
                                      : executor_->options().maxBatchSize)
{
    ERC_CHECK(serve_ != nullptr, "null serve function");
    ERC_CHECK(executor_ != nullptr, "null executor");
    if (executor_->serial())
        return; // Inline mode: no queue, no pumps.
    const auto &opts = executor_->options();
    runtime::BatchQueueOptions qopts;
    qopts.capacity = opts.queueCapacity;
    qopts.maxBatchSize = opts.maxBatchSize;
    qopts.maxBatchDelay = std::chrono::microseconds(opts.maxBatchDelayUs);
    queue_ = std::make_unique<runtime::BatchQueue<Job>>(qopts);
    pumps_.reserve(executor_->workers());
    for (std::size_t w = 0; w < executor_->workers(); ++w)
        pumps_.push_back(executor_->submit([this] { pumpLoop(); }));
}

QueryDispatcher::~QueryDispatcher()
{
    drain();
}

std::future<std::vector<float>>
QueryDispatcher::submit(workload::Query query)
{
    ERC_CHECK(!drained_.load(), "submit() on a drained dispatcher");
    Job job{std::move(query), {}, 0};
    if (tracing_) {
        // Deterministic every-Nth sampling in submission order: the
        // same queries are sampled whether the stack runs serial or
        // concurrent, which the byte-identical span-tree gate needs.
        job.query.trace = recorder_->maybeStartTrace();
        if (job.query.trace.sampled())
            job.submitUs = recorder_->nowUs();
    }
    auto future = job.result.get_future();
    if (queue_ == nullptr) {
        // Serial: serve inline on the caller's thread, byte-identical
        // to calling the serve function directly. The queue span is
        // recorded zero-width so serial and concurrent runs build the
        // same tree shape.
        if (job.query.trace.sampled())
            recorder_->recordSpan(job.query.trace.child(kQueueSlot),
                                  kQueueSpanName, job.submitUs,
                                  job.submitUs);
        serveJob(&job);
        batchesServed_.fetch_add(1, std::memory_order_relaxed);
        batchHist_[0].fetch_add(1, std::memory_order_relaxed);
        return future;
    }
    const bool accepted = queue_->push(std::move(job));
    ERC_ASSERT(accepted, "open dispatcher queue rejected a query");
    return future;
}

void
QueryDispatcher::drain()
{
    if (drained_.exchange(true))
        return;
    if (queue_ != nullptr)
        queue_->close();
    for (auto &p : pumps_)
        p.get();
    pumps_.clear();
}

std::uint64_t
QueryDispatcher::queriesServed() const
{
    return queriesServed_.load(std::memory_order_relaxed);
}

std::uint64_t
QueryDispatcher::batchesServed() const
{
    return batchesServed_.load(std::memory_order_relaxed);
}

std::vector<std::uint64_t>
QueryDispatcher::batchSizeHistogram() const
{
    std::vector<std::uint64_t> hist(batchHist_.size());
    for (std::size_t i = 0; i < hist.size(); ++i)
        hist[i] = batchHist_[i].load(std::memory_order_relaxed);
    return hist;
}

double
QueryDispatcher::meanBatchSize() const
{
    const std::uint64_t batches = batchesServed();
    if (batches == 0)
        return 0.0;
    return static_cast<double>(queriesServed()) /
           static_cast<double>(batches);
}

void
QueryDispatcher::publishStats(obs::Registry &registry,
                              const obs::Labels &labels) const
{
    registry
        .gauge("erec_serving_queries_served",
               "Queries served through the dispatcher.", labels)
        .set(static_cast<double>(queriesServed()));
    registry
        .gauge("erec_serving_batches_served",
               "Coalesced batches served through the dispatcher.",
               labels)
        .set(static_cast<double>(batchesServed()));
    registry
        .gauge("erec_serving_queue_depth",
               "Queries waiting in the dispatcher's request queue.",
               labels)
        .set(queue_ == nullptr
                 ? 0.0
                 : static_cast<double>(queue_->depth()));
    const auto hist = batchSizeHistogram();
    for (std::size_t k = 0; k < hist.size(); ++k) {
        obs::Labels child = labels;
        child.emplace_back("batch_size", std::to_string(k + 1));
        registry
            .gauge("erec_serving_batches",
                   "Served batches by coalesced batch size.", child)
            .set(static_cast<double>(hist[k]));
    }
}

void
QueryDispatcher::serveJob(Job *job)
{
    const obs::TraceContext root = job->query.trace;
    std::int64_t serve_start = 0;
    if (root.sampled()) {
        // The serve function sees the serve-span context, so shard
        // servers hang their gather/MLP spans under serving/serve.
        job->query.trace = root.child(kServeSlot);
        serve_start = recorder_->nowUs();
    }
    try {
        job->result.set_value(serve_(job->query));
    } catch (...) {
        job->result.set_exception(std::current_exception());
    }
    queriesServed_.fetch_add(1, std::memory_order_relaxed);
    if (root.sampled()) {
        const std::int64_t end_us = recorder_->nowUs();
        recorder_->recordSpan(root.child(kServeSlot), kServeSpanName,
                              serve_start, end_us);
        recorder_->recordSpan(root, kQuerySpanName, job->submitUs,
                              end_us);
    }
}

void
QueryDispatcher::pumpLoop()
{
    // Pre-register this pump worker's span ring while startup
    // allocation is still fair game: the steady loop below records
    // into the ring without ever touching the registration slow path.
    if (tracing_)
        recorder_->registerThisThread();
    // One batch buffer per pump worker, reused for the worker's whole
    // lifetime: after the first pop its capacity is maxBatchSize and
    // the steady loop performs zero allocations.
    std::vector<Job> batch;
    batch.reserve(queue_->options().maxBatchSize); // ERC_HOT_PATH_ALLOW("reserve-once at pump-worker startup")
    for (;;) {
        {
            // The serve_ call stays outside the gate: model compute
            // owns its own allocation budget (see DESIGN.md section
            // 10); the dispatcher machinery itself must stay at zero.
            const AllocGate gate(dispatcherPumpRegion());
            queue_->popBatch(&batch);
        }
        if (batch.empty())
            return; // Queue closed and drained.
        // Close the members' queue spans and open one batch trace
        // with a fan-in link per sampled member: the causal record of
        // "these N queries were coalesced and served together".
        std::size_t sampled = 0;
        obs::TraceContext batch_ctx;
        std::int64_t pop_us = 0;
        if (tracing_) {
            for (const Job &job : batch)
                if (job.query.trace.sampled())
                    ++sampled;
            if (sampled > 0) {
                pop_us = recorder_->nowUs();
                batch_ctx = recorder_->startBatchTrace();
                for (const Job &job : batch) {
                    if (!job.query.trace.sampled())
                        continue;
                    recorder_->recordSpan(
                        job.query.trace.child(kQueueSlot),
                        kQueueSpanName, job.submitUs, pop_us);
                    recorder_->recordLink(batch_ctx, kBatchLinkName,
                                          job.query.trace.traceId,
                                          pop_us);
                }
            }
        }
        for (auto &job : batch)
            serveJob(&job);
        if (sampled > 0)
            recorder_->recordSpan(batch_ctx, kBatchSpanName, pop_us,
                                  recorder_->nowUs(), batch.size());
        const AllocGate gate(dispatcherPumpRegion());
        batchesServed_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t bin =
            std::min(batch.size(), batchHist_.size()) - 1;
        batchHist_[bin].fetch_add(1, std::memory_order_relaxed);
    }
}

} // namespace erec::serving
