#pragma once

/**
 * @file
 * Model-wise (monolithic) inference server: the baseline architecture
 * of Figure 2(a). The whole model lives in one container; queries run
 * the full DLRM forward locally with no bucketization or RPC.
 */

#include <memory>
#include <vector>

#include "elasticrec/model/dlrm.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::serving {

class MonolithicServer
{
  public:
    explicit MonolithicServer(std::shared_ptr<const model::Dlrm> dlrm);

    /** Serve one query (original-ID lookups) end to end. */
    std::vector<float>
    serve(const std::vector<float> &dense_in,
          const std::vector<workload::SparseLookup> &lookups,
          std::size_t batch) const;

    /** Serve a generated query using synthetic dense features. */
    std::vector<float> serve(const workload::Query &query) const;

    /** Memory footprint of this server's parameters. */
    Bytes memBytes() const;

    const model::Dlrm &model() const { return *dlrm_; }

  private:
    std::shared_ptr<const model::Dlrm> dlrm_;
};

} // namespace erec::serving
