#pragma once

/**
 * @file
 * Model-wise (monolithic) inference server: the baseline architecture
 * of Figure 2(a). The whole model lives in one container; queries run
 * the full DLRM forward locally with no bucketization or RPC.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/model/dlrm.h"
#include "elasticrec/obs/flight_recorder.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::serving {

class MonolithicServer
{
  public:
    /**
     * @param dlrm The model to serve whole.
     * @param backend Kernel backend gathers and GEMMs execute on; null
     *        selects the process-wide dispatched default.
     */
    explicit MonolithicServer(std::shared_ptr<const model::Dlrm> dlrm,
                              const kernels::KernelBackend *backend =
                                  nullptr);

    /**
     * Serve one query (original-ID lookups) end to end. Thread-safe:
     * the model is immutable, so a QueryDispatcher may drive one
     * monolithic server from several executor workers.
     */
    ERC_HOT_PATH
    std::vector<float>
    serve(const std::vector<float> &dense_in,
          const std::vector<workload::SparseLookup> &lookups,
          std::size_t batch,
          const obs::TraceContext &ctx = {}) const;

    /** Serve a generated query using synthetic dense features. */
    ERC_HOT_PATH
    std::vector<float> serve(const workload::Query &query) const;

    /**
     * Attach a flight recorder: traced serve() calls record a single
     * `mono/forward` span under the caller's serve span. Not
     * thread-safe; attach before serving starts.
     */
    void attachRecorder(std::shared_ptr<obs::FlightRecorder> recorder);

    /** Memory footprint of this server's parameters. */
    Bytes memBytes() const;

    const model::Dlrm &model() const { return *dlrm_; }

    /** Queries served by this server (load accounting, like the
     *  dense frontend's counter). */
    std::uint64_t queriesServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

  private:
    std::shared_ptr<const model::Dlrm> dlrm_;
    std::shared_ptr<obs::FlightRecorder> recorder_;
    const kernels::KernelBackend *backend_;
    mutable std::atomic<std::uint64_t> served_{0};
};

} // namespace erec::serving
