#pragma once

/**
 * @file
 * Request front door of a concurrently-served shard: clients submit
 * queries and get futures back; pool workers pull *coalesced batches*
 * off a bounded runtime::BatchQueue and serve them through the
 * wrapped serve function (a DenseShardServer, MonolithicServer, or
 * any other callable). This is the piece that turns the executor's
 * worker threads into QPS — per-shard thread pools plus request
 * batching are where capacity-driven scale-out serving gets its
 * throughput.
 *
 * With a serial executor the dispatcher degrades to inline execution
 * on the caller's thread (byte-identical to calling serve directly),
 * so the determinism tests can pin the concurrent stack against the
 * pre-executor path.
 *
 * While a dispatcher is running, its executor's pool workers are
 * occupied by pump loops; do not block on Executor::parallelFor from
 * *external* threads on the same executor (calls from inside the pump
 * workers degrade inline and are fine).
 */

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/obs/flight_recorder.h"
#include "elasticrec/obs/metric.h"
#include "elasticrec/runtime/batch_queue.h"
#include "elasticrec/runtime/executor.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::serving {

class QueryDispatcher
{
  public:
    using ServeFn =
        std::function<std::vector<float>(const workload::Query &)>;

    /**
     * @param serve Called once per query, possibly concurrently from
     *        several pool workers; it must be thread-safe.
     * @param executor Supplies the worker pool and the batching knobs
     *        (maxBatchSize / maxBatchDelayUs / queueCapacity).
     * @param recorder Optional flight recorder: when set and enabled,
     *        submit() samples queries deterministically (every Nth)
     *        and the dispatcher emits the causal span skeleton —
     *        serving/query root, serving/queue wait, serving/serve —
     *        plus one batch trace per coalesced batch with fan-in
     *        links to its sampled members. The sampled TraceContext
     *        rides in Query::trace so shard servers append their own
     *        child spans.
     */
    QueryDispatcher(ServeFn serve,
                    std::shared_ptr<runtime::Executor> executor,
                    std::shared_ptr<obs::FlightRecorder> recorder =
                        nullptr);

    /** Drains every queued query before returning. */
    ~QueryDispatcher();

    QueryDispatcher(const QueryDispatcher &) = delete;
    QueryDispatcher &operator=(const QueryDispatcher &) = delete;

    /**
     * Enqueue one query; the prediction (or the exception serve threw)
     * arrives through the future. Blocks while the request queue is at
     * capacity (backpressure). Serial executors serve inline.
     */
    ERC_HOT_PATH
    std::future<std::vector<float>> submit(workload::Query query);

    /**
     * Stop accepting queries and wait until everything queued has been
     * served. Idempotent; also run by the destructor.
     */
    void drain();

    std::uint64_t queriesServed() const;
    std::uint64_t batchesServed() const;

    /** histogram[k] counts served batches of size k+1 (capped at the
     *  executor's maxBatchSize). */
    std::vector<std::uint64_t> batchSizeHistogram() const;

    /** Mean coalesced batch size over all served batches (0: none). */
    double meanBatchSize() const;

    /**
     * Publish queue depth, served-query/batch counters and the
     * batch-size histogram (as an erec_serving_batches gauge family
     * labelled by batch_size) into a registry. Single-threaded, like
     * Executor::publishStats.
     */
    void publishStats(obs::Registry &registry,
                      const obs::Labels &labels = {}) const;

    /** Child slots of the serving/query root span (see DESIGN.md
     *  section 12): slot 0 = queue wait, slot 1 = serve. */
    static constexpr unsigned kQueueSlot = 0;
    static constexpr unsigned kServeSlot = 1;

  private:
    struct Job
    {
        workload::Query query;
        std::promise<std::vector<float>> result;
        /** Recorder timestamp of submit(); closes the queue span. */
        std::int64_t submitUs = 0;
    };

    void serveJob(Job *job);
    ERC_HOT_PATH
    void pumpLoop();

    ServeFn serve_;
    std::shared_ptr<runtime::Executor> executor_;
    std::shared_ptr<obs::FlightRecorder> recorder_;
    /** recorder_ set and sampling on; checked on every hot path. */
    bool tracing_ = false;
    std::unique_ptr<runtime::BatchQueue<Job>> queue_;
    std::vector<std::future<void>> pumps_;
    std::atomic<bool> drained_{false};

    std::atomic<std::uint64_t> queriesServed_{0};
    std::atomic<std::uint64_t> batchesServed_{0};
    /** batchHist_[k]: batches of size k+1; sized maxBatchSize. */
    std::vector<std::atomic<std::uint64_t>> batchHist_;
};

} // namespace erec::serving
