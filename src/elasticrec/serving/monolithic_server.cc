#include "elasticrec/serving/monolithic_server.h"

#include "elasticrec/common/error.h"
#include "elasticrec/kernels/registry.h"

namespace erec::serving {

MonolithicServer::MonolithicServer(std::shared_ptr<const model::Dlrm> dlrm,
                                   const kernels::KernelBackend *backend)
    : dlrm_(std::move(dlrm)),
      backend_(backend != nullptr ? backend : &kernels::defaultBackend())
{
    ERC_CHECK(dlrm_ != nullptr, "null model");
}

std::vector<float>
MonolithicServer::serve(const std::vector<float> &dense_in,
                        const std::vector<workload::SparseLookup> &lookups,
                        std::size_t batch) const
{
    served_.fetch_add(1, std::memory_order_relaxed);
    return dlrm_->forward(dense_in, lookups, batch, *backend_);
}

std::vector<float>
MonolithicServer::serve(const workload::Query &query) const
{
    const auto dense_in =
        dlrm_->syntheticDenseInput(query.id, query.batchSize);
    return serve(dense_in, query.lookups, query.batchSize);
}

Bytes
MonolithicServer::memBytes() const
{
    return dlrm_->config().totalParamBytes();
}

} // namespace erec::serving
