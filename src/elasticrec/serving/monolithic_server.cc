#include "elasticrec/serving/monolithic_server.h"

#include "elasticrec/common/error.h"
#include "elasticrec/kernels/registry.h"

namespace erec::serving {

namespace {

const obs::NameId kMonoForwardName =
    obs::internSpanName("mono/forward");

} // namespace

MonolithicServer::MonolithicServer(std::shared_ptr<const model::Dlrm> dlrm,
                                   const kernels::KernelBackend *backend)
    : dlrm_(std::move(dlrm)),
      backend_(backend != nullptr ? backend : &kernels::defaultBackend())
{
    ERC_CHECK(dlrm_ != nullptr, "null model");
}

void
MonolithicServer::attachRecorder(
    std::shared_ptr<obs::FlightRecorder> recorder)
{
    recorder_ = std::move(recorder);
}

std::vector<float>
MonolithicServer::serve(const std::vector<float> &dense_in,
                        const std::vector<workload::SparseLookup> &lookups,
                        std::size_t batch,
                        const obs::TraceContext &ctx) const
{
    served_.fetch_add(1, std::memory_order_relaxed);
    const bool traced = recorder_ != nullptr && ctx.sampled();
    const std::int64_t t0 = traced ? recorder_->nowUs() : 0;
    auto out = dlrm_->forward(dense_in, lookups, batch, *backend_);
    if (traced)
        recorder_->recordSpan(ctx.child(0), kMonoForwardName, t0,
                              recorder_->nowUs());
    return out;
}

std::vector<float>
MonolithicServer::serve(const workload::Query &query) const
{
    const auto dense_in =
        dlrm_->syntheticDenseInput(query.id, query.batchSize);
    return serve(dense_in, query.lookups, query.batchSize, query.trace);
}

Bytes
MonolithicServer::memBytes() const
{
    return dlrm_->config().totalParamBytes();
}

} // namespace erec::serving
