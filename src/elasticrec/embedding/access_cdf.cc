#include "elasticrec/embedding/access_cdf.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::embedding {

void
AccessCdf::init(std::uint64_t num_rows, std::uint32_t granules)
{
    ERC_CHECK(num_rows > 0, "CDF needs at least one row");
    ERC_CHECK(granules > 0, "CDF needs at least one granule");
    numRows_ = num_rows;
    const auto g = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(granules, num_rows));
    rowsPerGranule_ = (num_rows + g - 1) / g;
    // Recompute the granule count after ceiling division so the last
    // granule is non-empty.
    const auto eff = static_cast<std::uint32_t>(
        (num_rows + rowsPerGranule_ - 1) / rowsPerGranule_);
    cum_.assign(eff + 1, 0.0);
}

void
AccessCdf::normalize()
{
    cum_[0] = 0.0;
    double prev = 0.0;
    for (std::size_t g = 1; g < cum_.size(); ++g) {
        // Enforce monotonicity against numeric noise in callers.
        cum_[g] = std::max(cum_[g], prev);
        prev = cum_[g];
    }
    const double total = cum_.back();
    ERC_CHECK(total > 0.0, "CDF has zero total mass");
    for (auto &v : cum_)
        v /= total;
    cum_.back() = 1.0;
}

AccessCdf
AccessCdf::fromSortedCounts(const std::vector<std::uint64_t> &sorted_counts,
                            std::uint32_t granules)
{
    ERC_CHECK(!sorted_counts.empty(), "need at least one row count");
    for (std::size_t i = 1; i < sorted_counts.size(); ++i) {
        ERC_CHECK(sorted_counts[i] <= sorted_counts[i - 1],
                  "counts must be sorted non-increasing (hotness order)");
    }
    AccessCdf cdf;
    cdf.init(sorted_counts.size(), granules);
    double running = 0.0;
    std::uint64_t row = 0;
    for (std::uint32_t g = 1; g <= cdf.granules(); ++g) {
        const std::uint64_t end = cdf.rowsAtGranule(g);
        for (; row < end; ++row)
            running += static_cast<double>(sorted_counts[row]);
        cdf.cum_[g] = running;
    }
    cdf.normalize();
    return cdf;
}

std::uint64_t
AccessCdf::rowsAtGranule(std::uint32_t g) const
{
    return std::min<std::uint64_t>(
        static_cast<std::uint64_t>(g) * rowsPerGranule_, numRows_);
}

std::uint32_t
AccessCdf::granuleForRows(std::uint64_t rows) const
{
    if (rows >= numRows_)
        return granules();
    const auto g = static_cast<std::uint32_t>(
        (rows + rowsPerGranule_ / 2) / rowsPerGranule_);
    return std::min(g, granules());
}

double
AccessCdf::massOfTopRows(std::uint64_t x) const
{
    if (x == 0)
        return 0.0;
    if (x >= numRows_)
        return 1.0;
    const std::uint64_t g = x / rowsPerGranule_;
    const std::uint64_t lo_rows = g * rowsPerGranule_;
    const std::uint64_t hi_rows = rowsAtGranule(
        static_cast<std::uint32_t>(g) + 1);
    const double lo = cum_[g];
    const double hi = cum_[g + 1];
    const double frac = static_cast<double>(x - lo_rows) /
                        static_cast<double>(hi_rows - lo_rows);
    return lo + (hi - lo) * frac;
}

double
AccessCdf::massOfRange(std::uint64_t begin, std::uint64_t end) const
{
    ERC_CHECK(begin <= end, "range begin must not exceed end");
    return massOfTopRows(end) - massOfTopRows(begin);
}

} // namespace erec::embedding
