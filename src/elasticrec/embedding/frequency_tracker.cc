#include "elasticrec/embedding/frequency_tracker.h"

#include <algorithm>
#include <numeric>

#include "elasticrec/common/error.h"

namespace erec::embedding {

FrequencyTracker::FrequencyTracker(std::uint64_t num_rows)
    : counts_(num_rows, 0)
{
    ERC_CHECK(num_rows > 0, "tracker needs at least one row");
}

void
FrequencyTracker::record(std::uint32_t id)
{
    ERC_CHECK(id < counts_.size(), "row ID " << id << " out of range");
    ++counts_[id];
    ++total_;
}

void
FrequencyTracker::recordAll(const std::vector<std::uint32_t> &ids)
{
    for (auto id : ids)
        record(id);
}

std::uint64_t
FrequencyTracker::count(std::uint32_t id) const
{
    ERC_CHECK(id < counts_.size(), "row ID " << id << " out of range");
    return counts_[id];
}

std::vector<std::uint32_t>
FrequencyTracker::sortPermutation() const
{
    std::vector<std::uint32_t> perm(counts_.size());
    std::iota(perm.begin(), perm.end(), 0u);
    std::stable_sort(perm.begin(), perm.end(),
                     [this](std::uint32_t a, std::uint32_t b) {
                         return counts_[a] > counts_[b];
                     });
    return perm;
}

std::vector<std::uint32_t>
FrequencyTracker::invertPermutation(const std::vector<std::uint32_t> &perm)
{
    std::vector<std::uint32_t> inv(perm.size());
    for (std::uint32_t rank = 0; rank < perm.size(); ++rank) {
        ERC_CHECK(perm[rank] < inv.size(),
                  "permutation value out of range");
        inv[perm[rank]] = rank;
    }
    return inv;
}

AccessCdf
FrequencyTracker::buildCdf(std::uint32_t granules) const
{
    ERC_CHECK(total_ > 0, "cannot build a CDF before recording accesses");
    std::vector<std::uint64_t> sorted = counts_;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    return AccessCdf::fromSortedCounts(sorted, granules);
}

double
FrequencyTracker::topRowsCoverage(std::uint64_t rows) const
{
    ERC_CHECK(total_ > 0, "no accesses recorded");
    std::vector<std::uint64_t> sorted = counts_;
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    rows = std::min<std::uint64_t>(rows, sorted.size());
    std::uint64_t covered = 0;
    for (std::uint64_t i = 0; i < rows; ++i)
        covered += sorted[i];
    return static_cast<double>(covered) / static_cast<double>(total_);
}

} // namespace erec::embedding
