#pragma once

/**
 * @file
 * A hotness-sorted, partitioned view of an embedding table.
 *
 * The paper partitions each (sorted) table into shards covering
 * non-overlapping, consecutive sorted-ID ranges (Figure 8(b)); the shard
 * boundaries are the "partitioning points" produced by Algorithm 2. A
 * ShardedTable composes:
 *   - the backing EmbeddingTable (rows stored under original IDs),
 *   - the hotness sort permutation (sorted rank -> original ID),
 *   - the shard boundaries in sorted-rank space,
 * and provides shard-local gather, which is the data path a sparse
 * embedding shard microservice executes.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/common/units.h"
#include "elasticrec/embedding/embedding_table.h"

namespace erec::embedding {

/** Half-open shard range in sorted-rank space. */
struct ShardRange
{
    std::uint64_t begin;
    std::uint64_t end;

    std::uint64_t rows() const { return end - begin; }
};

class ShardedTable
{
  public:
    /**
     * @param table Backing table (original ID order).
     * @param sort_perm Hotness permutation: sort_perm[rank] = original
     *        ID. Pass an empty vector when the table is already stored
     *        in hotness order.
     * @param boundaries Exclusive end rank of each shard, strictly
     *        increasing, last element must equal table->numRows().
     */
    ShardedTable(std::shared_ptr<const EmbeddingTable> table,
                 std::vector<std::uint32_t> sort_perm,
                 std::vector<std::uint64_t> boundaries);

    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(boundaries_.size());
    }

    const EmbeddingTable &table() const { return *table_; }

    /** Rank range of shard s. */
    ShardRange shardRange(std::uint32_t s) const;

    /** Logical bytes of shard s (rows x rowBytes). */
    Bytes shardBytes(std::uint32_t s) const;

    /** Which shard a sorted rank falls into. */
    std::uint32_t shardOfRank(std::uint64_t rank) const;

    /** Shard-local ID of a sorted rank. */
    std::uint64_t localId(std::uint64_t rank) const;

    /** Original table ID of a sorted rank. */
    std::uint32_t originalId(std::uint64_t rank) const;

    /**
     * Execute a gather+pool on shard s with *shard-local* IDs (the
     * output of the bucketizer) carried in the request view. Output
     * layout matches EmbeddingTable::gatherPool. Materialized tables
     * run on the given kernel backend over a shard-bounded TableSlice
     * (rankBase = shard begin, remap = hotness permutation).
     */
    ERC_HOT_PATH
    std::size_t gatherPool(std::uint32_t s,
                           const kernels::GatherRequest &req, float *out,
                           const kernels::KernelBackend &backend =
                               kernels::defaultBackend()) const;

    /** Kernel-layer view of shard s (materialized tables only). */
    kernels::TableSlice shardSlice(std::uint32_t s) const;

    const std::vector<std::uint64_t> &boundaries() const
    {
        return boundaries_;
    }

  private:
    std::shared_ptr<const EmbeddingTable> table_;
    std::vector<std::uint32_t> sortPerm_;
    std::vector<std::uint64_t> boundaries_;
};

} // namespace erec::embedding
