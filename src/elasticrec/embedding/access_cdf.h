#pragma once

/**
 * @file
 * Cumulative access-mass function over a hotness-sorted embedding table.
 *
 * This is the CDF consumed by the paper's deployment-cost model
 * (Algorithm 1, line 11): massOfTopRows(x) is the fraction of all table
 * accesses expected to land on the x hottest rows. It can be built from
 * measured access counts (the production path: a FrequencyTracker
 * history) or directly from an analytic AccessDistribution.
 *
 * Internally the CDF is compressed to a fixed number of granules; the
 * dynamic-programming partitioner also runs on this granule grid, which
 * turns the O(Smax * N^2) recurrence into O(Smax * G^2) with G << N
 * while preserving the achievable partition boundaries up to one granule
 * of rounding.
 */

#include <cstdint>
#include <vector>

namespace erec::embedding {

class AccessCdf
{
  public:
    /**
     * Build from per-row access counts indexed by hotness rank (counts
     * must be sorted non-increasing, i.e. already in Figure 8(b) order).
     *
     * @param sorted_counts Access count for each row, hottest first.
     * @param granules Number of CDF granules (clamped to the row count).
     */
    static AccessCdf fromSortedCounts(
        const std::vector<std::uint64_t> &sorted_counts,
        std::uint32_t granules = 1024);

    /**
     * Build analytically from a cumulative mass function.
     *
     * @param num_rows Table row count.
     * @param mass_of_top_rows Callable double(std::uint64_t x) returning
     *        the fraction of accesses covered by the x hottest rows.
     * @param granules Number of CDF granules.
     */
    template <typename MassFn>
    static AccessCdf
    fromMassFunction(std::uint64_t num_rows, MassFn &&mass_of_top_rows,
                     std::uint32_t granules = 1024)
    {
        AccessCdf cdf;
        cdf.init(num_rows, granules);
        for (std::uint32_t g = 1; g <= cdf.granules(); ++g)
            cdf.cum_[g] = mass_of_top_rows(cdf.rowsAtGranule(g));
        cdf.normalize();
        return cdf;
    }

    /** Number of rows in the underlying table. */
    std::uint64_t numRows() const { return numRows_; }

    /** Number of granules the CDF is resolved to. */
    std::uint32_t granules() const
    {
        return static_cast<std::uint32_t>(cum_.size() - 1);
    }

    /** Rows per granule (last granule may be smaller). */
    std::uint64_t rowsPerGranule() const { return rowsPerGranule_; }

    /** Row index (exclusive end) covered by granules [0, g). */
    std::uint64_t rowsAtGranule(std::uint32_t g) const;

    /** Granule whose end is closest to covering `rows` rows. */
    std::uint32_t granuleForRows(std::uint64_t rows) const;

    /**
     * Fraction of accesses covered by the x hottest rows; linear
     * interpolation between granule boundaries.
     */
    double massOfTopRows(std::uint64_t x) const;

    /** Mass falling inside the half-open rank range [begin, end). */
    double massOfRange(std::uint64_t begin, std::uint64_t end) const;

    /** Cumulative mass at a granule boundary (exact, no interpolation). */
    double massAtGranule(std::uint32_t g) const { return cum_[g]; }

    /** Locality metric P: mass on the top 10% of rows. */
    double localityP() const { return massOfTopRows(numRows_ / 10); }

  private:
    void init(std::uint64_t num_rows, std::uint32_t granules);
    void normalize();

    std::uint64_t numRows_ = 0;
    std::uint64_t rowsPerGranule_ = 0;
    /** cum_[g] = mass of the first g granules; cum_[0] = 0. */
    std::vector<double> cum_;
};

} // namespace erec::embedding
