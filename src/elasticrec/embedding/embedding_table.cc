#include "elasticrec/embedding/embedding_table.h"

#include <cstring>

#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/common/error.h"
#include "elasticrec/common/rng.h"

namespace erec::embedding {

namespace {

/** Charged by the gate around the pooled-gather loop. */
AllocRegion &
gatherRegion()
{
    static AllocRegion region("embedding-gather");
    return region;
}

/** SplitMix64-style row/lane hash for virtual tables. */
std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ull;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBull;
    x ^= x >> 31;
    return x;
}

/** Map a 64-bit hash to a float in [-0.05, 0.05) (DLRM-style init). */
float
hashToFloat(std::uint64_t h)
{
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return static_cast<float>((u - 0.5) * 0.1);
}

} // namespace

EmbeddingTable::EmbeddingTable(std::uint64_t num_rows, std::uint32_t dim,
                               Storage storage, std::uint64_t seed)
    : numRows_(num_rows), dim_(dim), storage_(storage), seed_(seed)
{
    ERC_CHECK(num_rows > 0, "table needs at least one row");
    ERC_CHECK(dim > 0, "embedding dimension must be positive");
    if (storage_ == Storage::Materialized) {
        ERC_CHECK(num_rows * dim <= (1ull << 31),
                  "materialized table too large ("
                      << num_rows << " x " << dim
                      << " floats); use Storage::Virtual");
        data_.resize(num_rows * dim);
        Rng rng(seed_);
        for (auto &v : data_)
            v = static_cast<float>((rng.uniform() - 0.5) * 0.1);
    }
}

void
EmbeddingTable::synthesizeRow(std::uint64_t row, float *out) const
{
    const std::uint64_t base = mix(seed_ ^ (row * 0x9E3779B97F4A7C15ull));
    for (std::uint32_t d = 0; d < dim_; ++d)
        out[d] = hashToFloat(mix(base + d));
}

void
EmbeddingTable::readRow(std::uint64_t row, float *out) const
{
    ERC_CHECK(row < numRows_, "row " << row << " out of range");
    if (storage_ == Storage::Materialized) {
        std::memcpy(out, &data_[row * dim_], dim_ * sizeof(float));
    } else {
        synthesizeRow(row, out);
    }
}

float
EmbeddingTable::at(std::uint64_t row, std::uint32_t d) const
{
    ERC_CHECK(row < numRows_ && d < dim_, "element out of range");
    if (storage_ == Storage::Materialized)
        return data_[row * dim_ + d];
    std::vector<float> tmp(dim_);
    synthesizeRow(row, tmp.data());
    return tmp[d];
}

void
EmbeddingTable::addRowTo(std::uint64_t row, float *acc) const
{
    ERC_CHECK(row < numRows_, "row " << row << " out of range");
    if (storage_ == Storage::Materialized) {
        const float *src = &data_[row * dim_];
        for (std::uint32_t d = 0; d < dim_; ++d)
            acc[d] += src[d];
        return;
    }
    // Virtual rows accumulate straight out of the hash — the same
    // values synthesizeRow() produces, added in the same lane order,
    // so results stay bit-identical to the buffered path.
    const std::uint64_t base = mix(seed_ ^ (row * 0x9E3779B97F4A7C15ull));
    for (std::uint32_t d = 0; d < dim_; ++d)
        acc[d] += hashToFloat(mix(base + d));
}

kernels::TableSlice
EmbeddingTable::wholeSlice() const
{
    ERC_CHECK(storage_ == Storage::Materialized,
              "virtual tables have no materialized rows to view");
    kernels::TableSlice slice;
    slice.rows = data_.data();
    slice.dim = dim_;
    slice.rankCount = numRows_;
    slice.storageRows = numRows_;
    return slice;
}

std::size_t
EmbeddingTable::gatherPool(const kernels::GatherRequest &req, float *out,
                           const kernels::KernelBackend &backend) const
{
    ERC_CHECK(req.batch > 0, "gatherPool needs at least one batch item");
    const AllocGate gate(gatherRegion());
    if (storage_ == Storage::Materialized)
        return backend.gatherSumPool(wholeSlice(), req, out);
    // Virtual rows are synthesized from the hash — there are no
    // materialized bytes for a backend to vectorize over, so pooling
    // accumulates scalar-side in the same lane order as readRow().
    for (std::size_t b = 0; b < req.batch; ++b) {
        const auto [begin, end] = kernels::detail::bagBounds(req, b);
        float *acc = out + b * dim_;
        std::memset(acc, 0, dim_ * sizeof(float));
        for (std::size_t i = begin; i < end; ++i)
            addRowTo(req.indices[i], acc);
    }
    return req.numIndices;
}

} // namespace erec::embedding
