#pragma once

/**
 * @file
 * Per-row access-frequency history, the production mechanism the paper
 * relies on for its table preprocessing step (Section IV-B): "The access
 * frequency of an embedding can be determined by keeping a history of
 * each embedding's access count within a given time period."
 *
 * The tracker records raw access streams (original table IDs), then
 * derives the hotness sort permutation (Figure 8(b)) and the access CDF
 * that feed the partitioning algorithm.
 */

#include <cstdint>
#include <vector>

#include "elasticrec/embedding/access_cdf.h"

namespace erec::embedding {

class FrequencyTracker
{
  public:
    explicit FrequencyTracker(std::uint64_t num_rows);

    std::uint64_t numRows() const { return counts_.size(); }

    /** Record one access to an original table row ID. */
    void record(std::uint32_t id);

    /** Record a batch of accesses (e.g. a query's index array). */
    void recordAll(const std::vector<std::uint32_t> &ids);

    /** Total accesses recorded. */
    std::uint64_t totalAccesses() const { return total_; }

    /** Raw count for one row. */
    std::uint64_t count(std::uint32_t id) const;

    /**
     * Hotness sort permutation: perm[rank] = original ID of the rank-th
     * hottest row (ties broken by ID for determinism). This is the
     * "sorted embedding table" layout of Figure 8(b).
     */
    std::vector<std::uint32_t> sortPermutation() const;

    /**
     * Inverse permutation: inv[originalId] = hotness rank. Used by the
     * bucketizer to translate production IDs into sorted-space IDs.
     */
    static std::vector<std::uint32_t>
    invertPermutation(const std::vector<std::uint32_t> &perm);

    /**
     * Build the access CDF over hotness-sorted rows, compressed to the
     * given number of granules.
     */
    AccessCdf buildCdf(std::uint32_t granules = 1024) const;

    /** Fraction of accesses covered by the top `rows` hottest rows. */
    double topRowsCoverage(std::uint64_t rows) const;

  private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace erec::embedding
