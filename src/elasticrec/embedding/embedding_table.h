#pragma once

/**
 * @file
 * Embedding table storage and gather/pool kernels.
 *
 * Tables can be *materialized* (real float storage, used by unit tests,
 * examples and kernel profiling) or *virtual* (no backing storage; row
 * values are synthesized from a deterministic hash). Virtual mode lets
 * experiments reason about paper-scale tables (20M rows x 32 floats =
 * 2.4 GiB per table, 10-32 tables per model) on a small host while still
 * exercising the full gather/pool code path; byte accounting always
 * reflects the *logical* size.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/common/units.h"
#include "elasticrec/kernels/kernel_backend.h"
#include "elasticrec/kernels/registry.h"

namespace erec::embedding {

enum class Storage
{
    Materialized, //!< Real float backing store.
    Virtual,      //!< Hash-synthesized values, zero resident memory.
};

class EmbeddingTable
{
  public:
    /**
     * @param num_rows Number of embedding vectors.
     * @param dim Embedding vector dimension.
     * @param storage Materialized or Virtual (see file comment).
     * @param seed Seed for value initialization (materialized mode) or
     *             hash salt (virtual mode).
     */
    EmbeddingTable(std::uint64_t num_rows, std::uint32_t dim,
                   Storage storage = Storage::Materialized,
                   std::uint64_t seed = 42);

    std::uint64_t numRows() const { return numRows_; }
    std::uint32_t dim() const { return dim_; }
    Storage storage() const { return storage_; }

    /** Bytes of one embedding vector. */
    Bytes rowBytes() const { return Bytes{dim_} * sizeof(float); }

    /** Logical size of the whole table in bytes. */
    Bytes totalBytes() const { return numRows_ * rowBytes(); }

    /**
     * Read one row into `out` (length dim()). Virtual tables synthesize
     * the row on the fly.
     */
    void readRow(std::uint64_t row, float *out) const;

    /** Element (row, d); convenience for tests. */
    float at(std::uint64_t row, std::uint32_t d) const;

    /**
     * Accumulate one row into `acc` (length dim()): acc[d] += row[d].
     * The pooling primitive of the gather kernels — works directly on
     * the accumulator, so virtual rows need no scratch buffer and the
     * steady gather path stays allocation-free.
     */
    ERC_HOT_PATH
    void addRowTo(std::uint64_t row, float *acc) const;

    /**
     * Gather-and-sum-pool (the paper's embedding layer operation). For
     * each batch item b of the request view, sums the addressed rows
     * into out[b*dim .. (b+1)*dim). Materialized tables execute on the
     * given kernel backend (default: the process-wide dispatched one);
     * virtual tables synthesize rows scalar-side either way.
     *
     * @param req Index/offset view (kernels::GatherRequest has a
     *            vector-pair constructor for callers holding vectors).
     * @param out Output buffer of size req.batch * dim().
     * @return Number of rows gathered.
     */
    ERC_HOT_PATH
    std::size_t gatherPool(const kernels::GatherRequest &req, float *out,
                           const kernels::KernelBackend &backend =
                               kernels::defaultBackend()) const;

    /**
     * Kernel-layer view of the whole materialized table (ranks = row
     * IDs, no remap). Raises ConfigError on a virtual table, which has
     * no materialized bytes to view.
     */
    kernels::TableSlice wholeSlice() const;

    /**
     * Bytes of memory traffic one gatherPool over `num_gathers` rows
     * causes (reads only; used by the hardware latency model).
     */
    Bytes gatherTrafficBytes(std::size_t num_gathers) const
    {
        return num_gathers * rowBytes();
    }

  private:
    void synthesizeRow(std::uint64_t row, float *out) const;

    std::uint64_t numRows_;
    std::uint32_t dim_;
    Storage storage_;
    std::uint64_t seed_;
    std::vector<float> data_;
};

} // namespace erec::embedding
