#include "elasticrec/embedding/sharded_table.h"

#include <algorithm>
#include <cstring>

#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/common/error.h"

namespace erec::embedding {

namespace {

/** Charged by the gate around the shard-local gather loop. */
AllocRegion &
shardGatherRegion()
{
    static AllocRegion region("shard-gather");
    return region;
}

} // namespace

ShardedTable::ShardedTable(std::shared_ptr<const EmbeddingTable> table,
                           std::vector<std::uint32_t> sort_perm,
                           std::vector<std::uint64_t> boundaries)
    : table_(std::move(table)), sortPerm_(std::move(sort_perm)),
      boundaries_(std::move(boundaries))
{
    ERC_CHECK(table_ != nullptr, "null backing table");
    ERC_CHECK(!boundaries_.empty(), "need at least one shard");
    ERC_CHECK(sortPerm_.empty() || sortPerm_.size() == table_->numRows(),
              "sort permutation must cover the whole table");
    std::uint64_t prev = 0;
    for (auto b : boundaries_) {
        ERC_CHECK(b > prev, "shard boundaries must be strictly increasing");
        prev = b;
    }
    ERC_CHECK(boundaries_.back() == table_->numRows(),
              "last boundary must equal the table row count");
}

ShardRange
ShardedTable::shardRange(std::uint32_t s) const
{
    ERC_CHECK(s < numShards(), "shard index out of range");
    const std::uint64_t begin = s == 0 ? 0 : boundaries_[s - 1];
    return {begin, boundaries_[s]};
}

Bytes
ShardedTable::shardBytes(std::uint32_t s) const
{
    return shardRange(s).rows() * table_->rowBytes();
}

std::uint32_t
ShardedTable::shardOfRank(std::uint64_t rank) const
{
    ERC_CHECK(rank < table_->numRows(), "rank out of range");
    const auto it =
        std::upper_bound(boundaries_.begin(), boundaries_.end(), rank);
    return static_cast<std::uint32_t>(it - boundaries_.begin());
}

std::uint64_t
ShardedTable::localId(std::uint64_t rank) const
{
    const auto s = shardOfRank(rank);
    return rank - shardRange(s).begin;
}

std::uint32_t
ShardedTable::originalId(std::uint64_t rank) const
{
    ERC_CHECK(rank < table_->numRows(), "rank out of range");
    if (sortPerm_.empty())
        return static_cast<std::uint32_t>(rank);
    return sortPerm_[rank];
}

kernels::TableSlice
ShardedTable::shardSlice(std::uint32_t s) const
{
    const ShardRange range = shardRange(s);
    kernels::TableSlice slice = table_->wholeSlice();
    slice.rankBase = range.begin;
    slice.rankCount = range.rows();
    slice.remap = sortPerm_.empty() ? nullptr : sortPerm_.data();
    return slice;
}

std::size_t
ShardedTable::gatherPool(std::uint32_t s, const kernels::GatherRequest &req,
                         float *out,
                         const kernels::KernelBackend &backend) const
{
    const ShardRange range = shardRange(s);
    const std::uint32_t dim = table_->dim();
    ERC_CHECK(req.batch > 0, "gatherPool needs at least one batch item");
    const AllocGate gate(shardGatherRegion());
    if (table_->storage() == Storage::Materialized)
        return backend.gatherSumPool(shardSlice(s), req, out);
    // Virtual tables synthesize rows from the hash; rank resolution and
    // pooling stay scalar-side (see EmbeddingTable::gatherPool).
    for (std::size_t b = 0; b < req.batch; ++b) {
        const auto [begin, end] = kernels::detail::bagBounds(req, b);
        float *acc = out + b * dim;
        std::memset(acc, 0, dim * sizeof(float));
        for (std::size_t i = begin; i < end; ++i) {
            const std::uint64_t rank = range.begin + req.indices[i];
            ERC_CHECK(rank < range.end,
                      "local gather index escapes the shard");
            // Accumulate in place: same values, same lane order as the
            // old readRow-into-scratch path, with no row buffer.
            table_->addRowTo(originalId(rank), acc);
        }
    }
    return req.numIndices;
}

} // namespace erec::embedding
