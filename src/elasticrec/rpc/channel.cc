#include "elasticrec/rpc/channel.h"

#include "elasticrec/common/error.h"

namespace erec::rpc {

Channel::Channel(hw::NetworkLink link, double serialization_bytes_per_sec,
                 SimTime per_call_overhead)
    : link_(link), serBytesPerSec_(serialization_bytes_per_sec),
      perCallOverhead_(per_call_overhead)
{
    ERC_CHECK(serialization_bytes_per_sec > 0,
              "serialization rate must be positive");
    ERC_CHECK(per_call_overhead >= 0,
              "per-call overhead must be non-negative");
}

SimTime
Channel::oneWay(Bytes message_bytes) const
{
    const double ser_s =
        static_cast<double>(message_bytes) / serBytesPerSec_;
    return perCallOverhead_ + static_cast<SimTime>(ser_s * 1e6 + 0.5) +
           link_.transferTime(message_bytes);
}

SimTime
Channel::roundTrip(Bytes request_bytes, Bytes response_bytes) const
{
    return oneWay(request_bytes) + oneWay(response_bytes);
}

SimTime
Channel::batchedOneWay(std::size_t n, Bytes per_message_bytes) const
{
    ERC_CHECK(n >= 1, "batched call needs at least one message");
    return oneWay(per_message_bytes * n);
}

SimTime
Channel::batchedRoundTrip(std::size_t n, Bytes request_bytes,
                          Bytes response_bytes) const
{
    return batchedOneWay(n, request_bytes) +
           batchedOneWay(n, response_bytes);
}

} // namespace erec::rpc
