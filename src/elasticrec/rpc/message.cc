#include "elasticrec/rpc/message.h"

// Wire-size accounting is header-only; this translation unit exists so
// the library has a stable archive member for the module.
namespace erec::rpc {
} // namespace erec::rpc
