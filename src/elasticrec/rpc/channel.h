#pragma once

/**
 * @file
 * RPC channel cost model: per-call stack overhead, CPU-side
 * serialization throughput and network transfer. Composes a
 * hw::NetworkLink with gRPC-stack constants.
 */

#include <cstddef>

#include "elasticrec/common/units.h"
#include "elasticrec/hw/network.h"

namespace erec::rpc {

class Channel
{
  public:
    /**
     * @param link The node-to-node network link.
     * @param serialization_bytes_per_sec CPU proto encode/decode rate.
     * @param per_call_overhead Fixed gRPC stack latency per call leg.
     */
    Channel(hw::NetworkLink link,
            double serialization_bytes_per_sec = 2e9,
            SimTime per_call_overhead = 150);

    /** One-way latency for a message of the given size. */
    SimTime oneWay(Bytes message_bytes) const;

    /**
     * Full round trip: request out, response back. The remote service
     * time is *not* included; the simulator adds it between legs.
     */
    SimTime roundTrip(Bytes request_bytes, Bytes response_bytes) const;

    /**
     * One-way latency for `n` requests coalesced into a single call:
     * the fixed gRPC stack overhead is paid once, while serialization
     * and transfer scale with the summed payload. This is the latency
     * model behind the runtime's BatchQueue coalescing — batching n
     * lookups saves (n - 1) per-call overheads per leg.
     */
    SimTime batchedOneWay(std::size_t n, Bytes per_message_bytes) const;

    /** Round trip for a coalesced batch of n request/response pairs. */
    SimTime batchedRoundTrip(std::size_t n, Bytes request_bytes,
                             Bytes response_bytes) const;

    const hw::NetworkLink &link() const { return link_; }

  private:
    hw::NetworkLink link_;
    double serBytesPerSec_;
    SimTime perCallOverhead_;
};

} // namespace erec::rpc
