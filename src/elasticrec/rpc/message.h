#pragma once

/**
 * @file
 * Wire-size accounting for the inter-shard RPC messages (the gRPC
 * protocol of Section IV-A). The simulator never moves real bytes
 * between processes; it charges the serialization and transfer cost of
 * exactly the messages the real system would exchange.
 */

#include <cstdint>

#include "elasticrec/common/units.h"
#include "elasticrec/obs/trace_context.h"

namespace erec::rpc {

/** Fixed protocol overhead per message (HTTP/2 + proto framing). */
inline constexpr Bytes kMessageHeaderBytes = 96;

/**
 * Embedding gather request: the bucketized index and offset arrays for
 * one shard (Figure 11), 4 bytes per element on the wire.
 */
struct GatherRequest
{
    std::uint32_t numIndices = 0;
    std::uint32_t numOffsets = 0;
    /**
     * Propagated trace context (16 bytes: trace id + span id). Rides
     * inside kMessageHeaderBytes — real tracing systems carry the
     * context in existing HTTP/2 metadata (W3C traceparent fits in the
     * 96-byte framing budget) — so wireBytes() is deliberately
     * unchanged and simulated timing is identical traced or not.
     */
    obs::TraceContext trace = {};

    Bytes
    wireBytes() const
    {
        return kMessageHeaderBytes +
               Bytes{4} * (numIndices + numOffsets);
    }
};

/**
 * Embedding gather response: one pooled fp32 vector per batch item.
 */
struct GatherResponse
{
    std::uint32_t batch = 0;
    std::uint32_t dim = 0;

    Bytes
    wireBytes() const
    {
        return kMessageHeaderBytes + Bytes{4} * batch * dim;
    }
};

/** User-facing inference request (dense features + sparse IDs). */
struct InferenceRequest
{
    std::uint32_t batch = 0;
    std::uint32_t denseDim = 0;
    std::uint32_t totalIndices = 0;

    Bytes
    wireBytes() const
    {
        return kMessageHeaderBytes + Bytes{4} * batch * denseDim +
               Bytes{4} * totalIndices;
    }
};

/** Inference response: one probability per batch item. */
struct InferenceResponse
{
    std::uint32_t batch = 0;

    Bytes
    wireBytes() const
    {
        return kMessageHeaderBytes + Bytes{4} * batch;
    }
};

} // namespace erec::rpc
