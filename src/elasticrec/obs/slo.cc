#include "elasticrec/obs/slo.h"

#include <cctype>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <utility>

#include "elasticrec/common/error.h"

namespace erec::obs {

namespace {

/** Lexer over one rule expression; whitespace-insensitive. */
class RuleCursor
{
  public:
    explicit RuleCursor(const std::string &s) : s_(s) {}

    void skipWs()
    {
        while (i_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[i_])))
            ++i_;
    }

    bool atEnd()
    {
        skipWs();
        return i_ >= s_.size();
    }

    bool consume(char c)
    {
        skipWs();
        if (i_ < s_.size() && s_[i_] == c) {
            ++i_;
            return true;
        }
        return false;
    }

    /** [a-zA-Z_][a-zA-Z0-9_-]* — covers deployment and gauge names. */
    std::string ident()
    {
        skipWs();
        const std::size_t start = i_;
        while (i_ < s_.size() &&
               (std::isalnum(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '_' || s_[i_] == '-'))
            ++i_;
        ERC_CHECK(i_ > start,
                  "alert rule: expected identifier at offset " << start
                                                               << " in '"
                                                               << s_ << "'");
        return s_.substr(start, i_ - start);
    }

    double number()
    {
        skipWs();
        const char *begin = s_.c_str() + i_;
        char *end = nullptr;
        const double v = std::strtod(begin, &end);
        ERC_CHECK(end != begin, "alert rule: expected number at offset "
                                    << i_ << " in '" << s_ << "'");
        i_ += static_cast<std::size_t>(end - begin);
        return v;
    }

    /** ms | s | % | nothing (raw units). */
    std::string unit()
    {
        skipWs();
        if (i_ < s_.size() && s_[i_] == '%') {
            ++i_;
            return "%";
        }
        std::size_t j = i_;
        while (j < s_.size() &&
               std::isalpha(static_cast<unsigned char>(s_[j])))
            ++j;
        const std::string word = s_.substr(i_, j - i_);
        if (word == "ms" || word == "s") {
            i_ = j;
            return word;
        }
        return ""; // `for` or end of input: no unit.
    }

    std::size_t offset() const { return i_; }

  private:
    const std::string &s_;
    std::size_t i_ = 0;
};

} // namespace

const char *
toString(SignalKind kind)
{
    switch (kind) {
      case SignalKind::P95:
        return "p95";
      case SignalKind::ViolationRatio:
        return "violation_ratio";
      case SignalKind::Qps:
        return "qps";
      case SignalKind::GaugeValue:
        return "gauge";
      case SignalKind::LostQueries:
        return "lost_queries";
    }
    return "?";
}

AlertRule
parseAlertRule(const std::string &name, const std::string &expr)
{
    ERC_CHECK(!name.empty(), "alert rule needs a name");
    AlertRule rule;
    rule.name = name;
    RuleCursor cur(expr);

    const std::string head = cur.ident();
    if (head == "p95")
        rule.signal.kind = SignalKind::P95;
    else if (head == "violation_ratio")
        rule.signal.kind = SignalKind::ViolationRatio;
    else if (head == "qps")
        rule.signal.kind = SignalKind::Qps;
    else if (head == "gauge")
        rule.signal.kind = SignalKind::GaugeValue;
    else if (head == "lost_queries")
        rule.signal.kind = SignalKind::LostQueries;
    else
        erec::fatal("alert rule '" + name + "': unknown signal '" + head +
                    "'");

    if (rule.signal.kind != SignalKind::LostQueries) {
        ERC_CHECK(cur.consume('('), "alert rule '"
                                        << name << "': expected '(' after "
                                        << head);
        rule.signal.target = cur.ident();
        ERC_CHECK(cur.consume(')'), "alert rule '"
                                        << name
                                        << "': expected ')' after target");
    }

    ERC_CHECK(cur.consume('>'),
              "alert rule '" << name << "': only '>' comparisons are "
                             << "supported");

    rule.threshold = cur.number();
    const std::string u = cur.unit();
    if (u == "%")
        rule.threshold /= 100.0; // ratios are fractions internally
    else if (u == "s")
        rule.threshold *= 1000.0; // latency signals are in ms

    if (!cur.atEnd()) {
        const std::string kw = cur.ident();
        ERC_CHECK(kw == "for", "alert rule '" << name << "': expected "
                                              << "'for', got '" << kw
                                              << "'");
        const double dur = cur.number();
        const std::string du = cur.unit();
        ERC_CHECK(du == "ms" || du == "s",
                  "alert rule '" << name
                                 << "': duration needs an ms or s unit");
        rule.holdFor = static_cast<SimTime>(
            dur * static_cast<double>(du == "s" ? units::kSecond
                                                : units::kMillisecond));
        ERC_CHECK(cur.atEnd(), "alert rule '"
                                   << name
                                   << "': trailing content at offset "
                                   << cur.offset());
    }
    ERC_CHECK(rule.holdFor >= 0,
              "alert rule '" << name << "': negative hold duration");
    return rule;
}

SloTracker::SloTracker(SignalReader reader) : reader_(std::move(reader))
{
    ERC_CHECK(reader_ != nullptr, "SloTracker needs a signal reader");
}

void
SloTracker::addRule(AlertRule rule)
{
    for (const RuleState &rs : rules_)
        ERC_CHECK(rs.rule.name != rule.name,
                  "duplicate alert rule '" << rule.name << "'");
    RuleState rs;
    rs.rule = std::move(rule);
    if (obs_ != nullptr)
        bindRule(rs);
    rules_.push_back(std::move(rs));
}

void
SloTracker::addRule(const std::string &name, const std::string &expr)
{
    addRule(parseAlertRule(name, expr));
}

void
SloTracker::bindRule(RuleState &rs)
{
    rs.obsFired = &obs_->counter(
        "erec_alert_transitions_total",
        "Alert state transitions (firing and resolved).",
        {{"alert", rs.rule.name}, {"transition", "firing"}});
    rs.obsResolved = &obs_->counter(
        "erec_alert_transitions_total",
        "Alert state transitions (firing and resolved).",
        {{"alert", rs.rule.name}, {"transition", "resolved"}});
    rs.obsFiring =
        &obs_->gauge("erec_alert_firing",
                     "1 while the alert rule is firing, else 0.",
                     {{"alert", rs.rule.name}});
    rs.obsFiring->set(rs.firing ? 1.0 : 0.0);
}

void
SloTracker::bindObservability(Registry *registry)
{
    obs_ = registry;
    for (RuleState &rs : rules_) {
        if (obs_ == nullptr) {
            rs.obsFired = nullptr;
            rs.obsResolved = nullptr;
            rs.obsFiring = nullptr;
        } else {
            bindRule(rs);
        }
    }
}

void
SloTracker::evaluate(SimTime now)
{
    for (RuleState &rs : rules_) {
        const double value = reader_(rs.rule.signal, now);
        const bool breach = value > rs.rule.threshold;
        if (!breach) {
            rs.breachSince = -1;
            if (rs.firing) {
                rs.firing = false;
                events_.push_back({now, rs.rule.name, false, value});
                if (rs.obsResolved != nullptr)
                    rs.obsResolved->inc();
                if (rs.obsFiring != nullptr)
                    rs.obsFiring->set(0.0);
            }
            continue;
        }
        if (rs.breachSince < 0)
            rs.breachSince = now;
        if (!rs.firing && now - rs.breachSince >= rs.rule.holdFor) {
            rs.firing = true;
            events_.push_back({now, rs.rule.name, true, value});
            if (rs.obsFired != nullptr)
                rs.obsFired->inc();
            if (rs.obsFiring != nullptr)
                rs.obsFiring->set(1.0);
        }
    }
}

void
SloTracker::reset()
{
    events_.clear();
    for (RuleState &rs : rules_) {
        rs.firing = false;
        rs.breachSince = -1;
        if (rs.obsFiring != nullptr)
            rs.obsFiring->set(0.0);
    }
}

bool
SloTracker::firing(const std::string &name) const
{
    for (const RuleState &rs : rules_)
        if (rs.rule.name == name)
            return rs.firing;
    return false;
}

namespace {

std::string
formatAlertValue(double v)
{
    std::ostringstream oss;
    oss.precision(17);
    oss << v;
    return oss.str();
}

} // namespace

void
writeAlertJsonLines(std::ostream &os, const std::vector<AlertEvent> &events)
{
    for (const AlertEvent &e : events) {
        os << "{\"t_us\":" << e.time << ",\"alert\":\"" << e.alert
           << "\",\"state\":\"" << (e.firing ? "firing" : "resolved")
           << "\",\"value\":" << formatAlertValue(e.value) << "}\n";
    }
}

std::string
toAlertJsonLines(const std::vector<AlertEvent> &events)
{
    std::ostringstream oss;
    writeAlertJsonLines(oss, events);
    return oss.str();
}

namespace {

/** Extract `"key":` position and return the offset just past it. */
std::size_t
fieldOffset(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = line.find(needle);
    ERC_CHECK(pos != std::string::npos,
              "alert json: missing field '" << key << "' in: " << line);
    return pos + needle.size();
}

std::string
stringField(const std::string &line, const std::string &key)
{
    std::size_t i = fieldOffset(line, key);
    ERC_CHECK(i < line.size() && line[i] == '"',
              "alert json: field '" << key << "' is not a string");
    ++i;
    const std::size_t end = line.find('"', i);
    ERC_CHECK(end != std::string::npos,
              "alert json: unterminated string for '" << key << "'");
    return line.substr(i, end - i);
}

double
numberField(const std::string &line, const std::string &key)
{
    const std::size_t i = fieldOffset(line, key);
    const char *begin = line.c_str() + i;
    char *end = nullptr;
    const double v = std::strtod(begin, &end);
    ERC_CHECK(end != begin,
              "alert json: field '" << key << "' is not a number");
    return v;
}

} // namespace

std::vector<AlertEvent>
readAlertJsonLines(const std::string &text)
{
    std::vector<AlertEvent> events;
    std::istringstream iss(text);
    std::string line;
    while (std::getline(iss, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        AlertEvent e;
        e.time = static_cast<SimTime>(numberField(line, "t_us"));
        e.alert = stringField(line, "alert");
        const std::string state = stringField(line, "state");
        ERC_CHECK(state == "firing" || state == "resolved",
                  "alert json: bad state '" << state << "'");
        e.firing = state == "firing";
        e.value = numberField(line, "value");
        events.push_back(std::move(e));
    }
    return events;
}

} // namespace erec::obs
