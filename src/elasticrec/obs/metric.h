#pragma once

/**
 * @file
 * Labelled metric registry: the in-process stand-in for the Prometheus
 * metrics server the paper's testbed scrapes (Section V). Components
 * register counter/gauge/histogram families under stable names, attach
 * label sets (deployment, pod, direction, ...) and publish through the
 * returned child handles; exporters walk the registry and render it as
 * Prometheus text format or feed dashboards.
 *
 * Handles returned by counter()/gauge()/histogram() are stable for the
 * registry's lifetime, so hot paths resolve once and then pay a single
 * pointer-chase per update. All containers are ordered maps keyed by
 * metric name and canonical label string, which makes exports
 * byte-deterministic for deterministic simulations.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace erec::obs {

/** One metric child's labels, in the caller's (stable) order. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing value (completions, scale events, ...). */
class Counter
{
  public:
    void inc(double delta = 1.0) { value_ += delta; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Point-in-time value (queue depth, replica count, utilization). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    void add(double delta) { value_ += delta; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Fixed-bucket histogram with explicit upper bounds, Prometheus-style:
 * bucket i counts samples with bounds[i-1] < x <= bounds[i]; samples
 * above the last bound land in the implicit +Inf overflow bucket.
 */
class Histogram
{
  public:
    /** @param bounds Strictly increasing bucket upper bounds. */
    explicit Histogram(std::vector<double> bounds);

    /** Record one sample. NaN is dropped and negative values saturate
     *  to zero (latencies cannot be negative) so sum() stays sane. */
    void observe(double x);

    const std::vector<double> &bounds() const { return bounds_; }
    /** Non-cumulative count of bucket i (i == bounds().size() is the
     *  +Inf overflow bucket). */
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> counts_; //!< bounds_.size() + 1 entries.
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
};

enum class MetricKind
{
    Counter,
    Gauge,
    Histogram,
};

const char *toString(MetricKind kind);

/**
 * Fixed latency buckets in milliseconds, spanning sub-millisecond RPC
 * legs up to multiples of the paper's 400 ms SLA.
 */
const std::vector<double> &defaultLatencyBucketsMs();

class Registry
{
  public:
    /** One labelled child of a family. Exactly one pointer is set,
     *  matching the family's kind. */
    struct Child
    {
        Labels labels;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    /** A named family of same-kind children (one per label set). */
    struct Family
    {
        std::string name;
        std::string help;
        MetricKind kind = MetricKind::Counter;
        /** Histogram bucket bounds (histogram families only). */
        std::vector<double> bounds;
        /** Children keyed by canonical label rendering. */
        std::map<std::string, Child> children;
    };

    /**
     * Find-or-create the counter `name` with `labels`. The name must
     * match [a-zA-Z_:][a-zA-Z0-9_:]*; re-registering with a different
     * kind is a ConfigError.
     */
    Counter &counter(const std::string &name, const std::string &help,
                     const Labels &labels = {});

    /** Find-or-create a gauge child. */
    Gauge &gauge(const std::string &name, const std::string &help,
                 const Labels &labels = {});

    /**
     * Find-or-create a histogram child. All children of one family
     * share the bucket bounds passed at first registration.
     */
    Histogram &histogram(const std::string &name, const std::string &help,
                         const std::vector<double> &bounds,
                         const Labels &labels = {});

    /**
     * Drop one child (e.g. a per-pod gauge when the pod is reaped) so
     * exports stop reporting stale series. No-op when absent.
     */
    void remove(const std::string &name, const Labels &labels);

    /** Families keyed by metric name, for exporters. */
    const std::map<std::string, Family> &families() const
    {
        return families_;
    }

    /**
     * Value of a counter/gauge child, or 0 when the family or child
     * does not exist (mirrors Prometheus' absent-series semantics).
     */
    double value(const std::string &name, const Labels &labels = {}) const;

    /** Canonical `k="v",...` rendering used as the child map key. */
    static std::string labelKey(const Labels &labels);

  private:
    Family &family(const std::string &name, const std::string &help,
                   MetricKind kind);
    Child &child(Family &fam, const Labels &labels);

    std::map<std::string, Family> families_;
};

} // namespace erec::obs
