#include "elasticrec/obs/report.h"

#include <algorithm>
#include <map>
#include <ostream>

#include "elasticrec/common/table_printer.h"
#include "elasticrec/common/units.h"
#include "elasticrec/obs/sketch.h"

namespace erec::obs {

namespace {

struct StageAccumulator
{
    std::uint64_t spans = 0;
    double totalMs = 0.0;
    QuantileSketch sketch;
};

template <typename Container>
AttributionReport
attributeStagesImpl(const Container &traces)
{
    AttributionReport report;
    // Ordered map: the final largest-first sort breaks ties by the
    // deterministic iteration order of the stage names.
    std::map<std::string, StageAccumulator> stages;
    QuantileSketch e2e;

    for (const QueryTrace &trace : traces) {
        ++report.tracedQueries;
        if (!trace.completed) {
            // A lost/in-flight query has no completion: every one of
            // its spans is still causally open, so none may feed the
            // stage sketches (their durations describe an unfinished
            // query). They surface in openSpans instead of vanishing.
            ++report.lostTraces;
            report.openSpans += trace.spans.size();
            continue;
        }
        ++report.completedTraces;
        const double latency_ms =
            units::toMillis(trace.completion - trace.arrival);
        report.endToEndTotalMs += latency_ms;
        e2e.insert(latency_ms);
        for (const Span &span : trace.spans) {
            if (span.end < span.start) {
                // Never-closed span exported inside a completed trace
                // (end still 0): exclude the bogus negative duration.
                ++report.openSpans;
                continue;
            }
            StageAccumulator &acc = stages[stageOf(span.name)];
            const double ms = units::toMillis(span.end - span.start);
            ++acc.spans;
            acc.totalMs += ms;
            acc.sketch.insert(ms);
        }
    }

    if (report.completedTraces > 0) {
        report.meanEndToEndMs =
            report.endToEndTotalMs /
            static_cast<double>(report.completedTraces);
        report.p95EndToEndMs = e2e.quantile(0.95);
    }
    for (const auto &[name, acc] : stages) {
        StageStats s;
        s.stage = name;
        s.spans = acc.spans;
        s.totalMs = acc.totalMs;
        s.meanMs = acc.totalMs / static_cast<double>(acc.spans);
        s.p95Ms = acc.sketch.quantile(0.95);
        s.shareOfEndToEnd = report.endToEndTotalMs > 0
                                ? acc.totalMs / report.endToEndTotalMs
                                : 0.0;
        report.stages.push_back(std::move(s));
    }
    std::stable_sort(report.stages.begin(), report.stages.end(),
                     [](const StageStats &a, const StageStats &b) {
                         return a.totalMs > b.totalMs;
                     });
    return report;
}

} // namespace

std::string
stageOf(const std::string &span_name)
{
    const std::size_t first = span_name.find('/');
    if (first == std::string::npos)
        return span_name;
    const std::size_t last = span_name.rfind('/');
    if (last == first)
        return span_name; // two segments: already a stage name
    const std::string head = span_name.substr(0, first);
    if (head == "sparse" || head == "rpc")
        return head + span_name.substr(last);
    return span_name;
}

AttributionReport
attributeStages(const std::deque<QueryTrace> &traces)
{
    return attributeStagesImpl(traces);
}

AttributionReport
attributeStages(const std::vector<QueryTrace> &traces)
{
    return attributeStagesImpl(traces);
}

namespace {

/**
 * Stage chain bounding one completed trace's latency: from the root
 * span, repeatedly descend into the child whose end time is largest
 * (ties: later start, then smaller span id — all deterministic). For
 * flat traces without span ids, fall back to the single latest-ending
 * span.
 */
std::vector<std::string>
criticalChainOf(const QueryTrace &trace)
{
    std::vector<std::string> chain;
    const Span *root = nullptr;
    // child spans keyed by parent id; spans are few (O(10)), linear
    // scans are fine.
    bool has_ids = false;
    for (const Span &span : trace.spans) {
        if (span.spanId != 0)
            has_ids = true;
        if (span.spanId == kRootSpanId)
            root = &span;
    }
    if (!has_ids || root == nullptr) {
        // Legacy flat trace: attribute to the latest-ending span.
        const Span *last = nullptr;
        for (const Span &span : trace.spans)
            if (last == nullptr || span.end > last->end)
                last = &span;
        if (last != nullptr)
            chain.push_back(stageOf(last->name));
        return chain;
    }
    const Span *node = root;
    while (node != nullptr) {
        chain.push_back(stageOf(node->name));
        const Span *next = nullptr;
        for (const Span &span : trace.spans) {
            if (span.parentId != node->spanId)
                continue;
            if (next == nullptr || span.end > next->end ||
                (span.end == next->end &&
                 (span.start > next->start ||
                  (span.start == next->start &&
                   span.spanId < next->spanId))))
                next = &span;
        }
        node = next;
    }
    return chain;
}

template <typename Container>
CriticalPathReport
analyzeCriticalPathsImpl(const Container &traces)
{
    CriticalPathReport report;
    struct ChainAccumulator
    {
        std::uint64_t count = 0;
        double totalMs = 0.0;
    };
    std::map<std::string, ChainAccumulator> chains;
    for (const QueryTrace &trace : traces) {
        if (!trace.completed)
            continue;
        const std::vector<std::string> chain = criticalChainOf(trace);
        if (chain.empty())
            continue;
        ++report.analyzedTraces;
        std::string signature;
        for (const std::string &stage : chain) {
            if (!signature.empty())
                signature += " > ";
            signature += stage;
        }
        ChainAccumulator &acc = chains[signature];
        ++acc.count;
        acc.totalMs += units::toMillis(trace.completion - trace.arrival);
    }
    for (const auto &[signature, acc] : chains) {
        CriticalPathStat stat;
        stat.chain = signature;
        stat.count = acc.count;
        stat.totalMs = acc.totalMs;
        stat.meanMs = acc.totalMs / static_cast<double>(acc.count);
        report.chains.push_back(std::move(stat));
    }
    std::stable_sort(report.chains.begin(), report.chains.end(),
                     [](const CriticalPathStat &a,
                        const CriticalPathStat &b) {
                         return a.count > b.count;
                     });
    return report;
}

} // namespace

CriticalPathReport
analyzeCriticalPaths(const std::deque<QueryTrace> &traces)
{
    return analyzeCriticalPathsImpl(traces);
}

CriticalPathReport
analyzeCriticalPaths(const std::vector<QueryTrace> &traces)
{
    return analyzeCriticalPathsImpl(traces);
}

void
writeCriticalPathTable(std::ostream &os, const CriticalPathReport &report)
{
    os << "Critical paths (" << report.analyzedTraces
       << " completed traced quer"
       << (report.analyzedTraces == 1 ? "y" : "ies") << ")\n";
    if (report.chains.empty()) {
        os << "  no completed traces with spans; nothing bounds "
              "completion\n";
        return;
    }
    TablePrinter t({"critical path", "queries", "mean e2e ms"});
    for (const CriticalPathStat &s : report.chains)
        t.addRow({s.chain,
                  TablePrinter::num(static_cast<std::int64_t>(s.count)),
                  TablePrinter::num(s.meanMs, 2)});
    t.print(os);
    os << "  (path = stage chain whose span end times bound each "
          "query's completion)\n";
}

std::vector<SloVerdict>
summarizeAlerts(const std::vector<AlertEvent> &events)
{
    std::map<std::string, SloVerdict> by_alert;
    for (const AlertEvent &e : events) {
        SloVerdict &v = by_alert[e.alert];
        v.alert = e.alert;
        if (e.firing)
            ++v.fired;
        else
            ++v.resolved;
        v.firingAtEnd = e.firing;
    }
    std::vector<SloVerdict> verdicts;
    verdicts.reserve(by_alert.size());
    for (auto &[name, v] : by_alert)
        verdicts.push_back(std::move(v));
    return verdicts;
}

void
writeStageTable(std::ostream &os, const AttributionReport &report)
{
    os << "Per-stage latency attribution (" << report.tracedQueries
       << " traced queries, " << report.completedTraces << " completed";
    if (report.lostTraces > 0)
        os << ", " << report.lostTraces << " lost";
    if (report.openSpans > 0)
        os << ", " << report.openSpans << " open spans excluded";
    os << ")\n";
    if (report.completedTraces == 0) {
        os << "  no completed traces; run with tracing enabled "
              "(--metrics-out) to attribute stages\n";
        return;
    }
    os << "  end-to-end: mean "
       << TablePrinter::num(report.meanEndToEndMs, 2) << " ms, p95 "
       << TablePrinter::num(report.p95EndToEndMs, 2) << " ms\n";
    TablePrinter t({"stage", "spans", "total ms", "mean ms", "p95 ms",
                    "share of e2e"});
    for (const StageStats &s : report.stages)
        t.addRow({s.stage,
                  TablePrinter::num(static_cast<std::int64_t>(s.spans)),
                  TablePrinter::num(s.totalMs, 1),
                  TablePrinter::num(s.meanMs, 2),
                  TablePrinter::num(s.p95Ms, 2),
                  TablePrinter::percent(s.shareOfEndToEnd)});
    t.print(os);
    os << "  (overlapped stages — dense compute vs. the gather path — "
          "can sum past 100%)\n";
}

void
writeSloVerdicts(std::ostream &os,
                 const std::vector<SloVerdict> &verdicts)
{
    if (verdicts.empty()) {
        os << "SLO verdict: PASS (no alert rule fired)\n";
        return;
    }
    os << "SLO verdict: " << verdicts.size() << " alert rule"
       << (verdicts.size() == 1 ? "" : "s") << " fired\n";
    TablePrinter t({"alert", "fired", "resolved", "state at end"});
    for (const SloVerdict &v : verdicts)
        t.addRow({v.alert,
                  TablePrinter::num(static_cast<std::int64_t>(v.fired)),
                  TablePrinter::num(
                      static_cast<std::int64_t>(v.resolved)),
                  v.firingAtEnd ? "FIRING" : "resolved"});
    t.print(os);
}

void
writeAlertTimeline(std::ostream &os,
                   const std::vector<AlertEvent> &events)
{
    if (events.empty()) {
        os << "Alert timeline: empty\n";
        return;
    }
    os << "Alert timeline (" << events.size() << " transition"
       << (events.size() == 1 ? "" : "s") << "):\n";
    for (const AlertEvent &e : events)
        os << "  [" << TablePrinter::num(units::toSeconds(e.time), 1)
           << "s] " << e.alert << " "
           << (e.firing ? "FIRING" : "resolved") << " (value "
           << TablePrinter::num(e.value, 3) << ")\n";
}

} // namespace erec::obs
