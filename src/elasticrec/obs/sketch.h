#pragma once

/**
 * @file
 * Streaming quantile sketches: the O(1)-per-sample quantile backend of
 * the observability layer (DDSketch-style relative-error buckets).
 *
 * The paper's whole control loop hangs off tail-latency targets (the
 * 400 ms SLA, dense shards scaled at 65% of it), so quantile queries
 * sit directly on the HPA evaluation path. A raw sample store (the old
 * WindowedPercentile) re-sorts every query and keeps every sample; the
 * sketch keeps one counter per logarithmic bucket instead:
 *
 *  - insert is O(1) and allocates nothing once the value range has
 *    been seen (warm-up only grows the contiguous bucket array);
 *  - quantile() is O(buckets) and returns a value within a guaranteed
 *    relative error of the exact sample quantile;
 *  - sketches with the same accuracy merge losslessly, so per-pod
 *    sketches can be folded into a deployment-level sketch that is
 *    bit-identical to one fed the union of the samples.
 *
 * Everything is deterministic: same inserts, same bytes out. NaN
 * samples are dropped and negative samples saturate to zero (latencies
 * cannot be negative), mirroring obs::Histogram::observe.
 *
 * WindowedQuantileSketch adds sliding-window semantics with a ring of
 * time-bucketed sub-sketches: the window is covered by `slices`
 * sub-sketches of window/slices span each; add() retires expired
 * slices in place and quantile() merges the live ones, so the window
 * is honoured at slice granularity (effective span in
 * (window - slice, window]) without storing raw samples.
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "elasticrec/common/units.h"

namespace erec::obs {

/**
 * Mergeable log-bucket quantile sketch with bounded relative error.
 *
 * Bucket i counts samples x with gamma^(i-1) < x <= gamma^i where
 * gamma = (1 + alpha) / (1 - alpha); quantile() reports the bucket's
 * log-space midpoint, which is within a factor (1 +/- alpha) of the
 * exact sample quantile.
 */
class QuantileSketch
{
  public:
    /** @param relative_accuracy Bound alpha on the relative error of
     *         quantile(); must be in (0, 1). */
    explicit QuantileSketch(double relative_accuracy = 0.01);

    /**
     * Record one sample. NaN is dropped; negative values (and values
     * below the sketch's resolution floor) count into the exact zero
     * bucket.
     */
    void insert(double x);

    /**
     * Fold another sketch into this one. Both must have been built
     * with the same relative accuracy. Merging per-pod sketches gives
     * exactly the sketch of the concatenated sample streams.
     */
    void merge(const QuantileSketch &other);

    /**
     * Value at quantile q in [0, 1] (nearest-rank over bucket counts),
     * within the configured relative error of the exact sample
     * quantile. Returns 0 when empty.
     */
    double quantile(double q) const;

    std::uint64_t count() const { return count_; }
    /** Sum of recorded samples (negatives saturated to zero). */
    double sum() const { return sum_; }
    /** Mean of recorded samples (0 when empty). */
    double mean() const
    {
        return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
    }
    /**
     * Exact maximum sample seen (not bucket-quantized; negatives
     * saturate to zero like sum()). 0 when empty. Merging takes the
     * max of both sketches, so per-thread sketches report the true
     * tail after folding.
     */
    double maxValue() const { return max_; }
    double relativeAccuracy() const { return alpha_; }
    /** Allocated bucket-array length (diagnostic: stops growing once
     *  the value range has been seen). */
    std::size_t bucketArraySize() const { return buckets_.size(); }

    void clear();

  private:
    int indexFor(double x) const;
    double valueFor(int index) const;

    double alpha_;
    double gamma_;
    double invLogGamma_;
    /** Log-bucket counters, contiguous; buckets_[k] is bucket index
     *  offset_ + k. */
    std::vector<std::uint64_t> buckets_;
    int offset_ = 0;
    /** Samples at or below the resolution floor (incl. negatives). */
    std::uint64_t zeroCount_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double max_ = 0.0;
};

/**
 * Quantile sketch over a sliding window of simulated time, backed by a
 * ring of time-bucketed QuantileSketch slices. Drop-in replacement for
 * the raw-sample WindowedPercentile on SLA-monitoring paths.
 */
class WindowedQuantileSketch
{
  public:
    /**
     * @param window Sliding-window span.
     * @param slices Ring granularity: the window is covered by this
     *         many sub-sketches (higher = tighter window bound).
     * @param relative_accuracy Per-slice sketch accuracy.
     */
    explicit WindowedQuantileSketch(SimTime window,
                                    std::size_t slices = 6,
                                    double relative_accuracy = 0.01);

    /** Record a sample observed at simulated time t (t >= 0,
     *  non-decreasing across calls for exact windowing). */
    void add(SimTime t, double x);

    /** Quantile over the slices still inside (now - window, now]. */
    double quantile(SimTime now, double q) const;

    /** Samples inside the window as of `now`. */
    std::uint64_t count(SimTime now) const;

    SimTime window() const { return window_; }

  private:
    struct Slice
    {
        /** Time-bucket index this slice currently holds (-1: empty). */
        std::int64_t bucket = -1;
        QuantileSketch sketch;
    };

    bool live(const Slice &s, SimTime now) const;

    SimTime window_;
    SimTime span_; //!< Time covered by one slice.
    double alpha_;
    std::vector<Slice> ring_;
};

} // namespace erec::obs
