#pragma once

/**
 * @file
 * Per-stage latency attribution and run reports.
 *
 * Folds sampled QueryTrace spans into the Fig. 3-style stage breakdown
 * the paper argues from — where does a query's latency go: queueing,
 * dense compute, the gather RPCs, or the sparse shards themselves?
 * Per-deployment span names are normalized to a small stable stage set
 * (`sparse/<dep>/queue` -> `sparse/queue`, `rpc/<dep>/request` ->
 * `rpc/request`, ...) so runs with many shards stay readable, and each
 * stage's tail is tracked with a QuantileSketch, keeping attribution
 * O(1) per span.
 *
 * The renderers produce the sections of `erec_report`'s output: stage
 * breakdown table, SLO verdict table (one row per alert rule that
 * transitioned), and the alert timeline. All output is deterministic
 * for deterministic inputs.
 */

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "elasticrec/obs/slo.h"
#include "elasticrec/obs/trace.h"

namespace erec::obs {

/** Aggregate latency contribution of one pipeline stage. */
struct StageStats
{
    std::string stage;
    std::uint64_t spans = 0;
    double totalMs = 0.0;
    double meanMs = 0.0;
    double p95Ms = 0.0;
    /** Share of the summed end-to-end latency of completed traces.
     *  Overlapping stages (dense compute vs. gather) can exceed 1. */
    double shareOfEndToEnd = 0.0;
};

/** Stage attribution over one run's sampled traces. */
struct AttributionReport
{
    /** Stages ordered by total contribution, largest first (ties by
     *  name, so the ordering is deterministic). */
    std::vector<StageStats> stages;
    std::uint64_t tracedQueries = 0;
    std::uint64_t completedTraces = 0;
    /** Traces whose query never completed (lost to a pod crash). */
    std::uint64_t lostTraces = 0;
    /** Spans excluded from the stage sketches because they never
     *  closed: every span of a lost/in-flight trace, plus any span of
     *  a completed trace whose end precedes its start (a stage that
     *  was still open at export time). Mixing them into the stage
     *  statistics would count bogus `end - start` durations. */
    std::uint64_t openSpans = 0;
    /** Summed arrival->completion latency of completed traces. */
    double endToEndTotalMs = 0.0;
    double meanEndToEndMs = 0.0;
    double p95EndToEndMs = 0.0;
};

/** Normalize a span name to its stage: strips the per-deployment path
 *  segment from `sparse/<dep>/...` and `rpc/<dep>/...` spans. */
std::string stageOf(const std::string &span_name);

AttributionReport attributeStages(const std::deque<QueryTrace> &traces);
AttributionReport attributeStages(const std::vector<QueryTrace> &traces);

/** One aggregated critical-path chain: the stage sequence that
 *  bounded completion for `count` traced queries. */
struct CriticalPathStat
{
    /** Normalized stage chain, root first ("query > rpc/request >
     *  sparse/service"). */
    std::string chain;
    std::uint64_t count = 0;
    double totalMs = 0.0;
    double meanMs = 0.0;
};

/** Critical-path analysis over one run's sampled traces. */
struct CriticalPathReport
{
    /** Chains ordered by count (largest first), ties by chain name. */
    std::vector<CriticalPathStat> chains;
    /** Completed traces the analysis covered. */
    std::uint64_t analyzedTraces = 0;
};

/**
 * Per traced query, walk the span tree from the root and follow the
 * child whose end time bounds its parent's completion; the visited
 * stage chain is the query's critical path. Chains are aggregated by
 * their normalized (stageOf) signature. Flat legacy traces (no span
 * ids) degrade to a one-hop chain through the latest-ending span.
 */
CriticalPathReport analyzeCriticalPaths(
    const std::deque<QueryTrace> &traces);
CriticalPathReport analyzeCriticalPaths(
    const std::vector<QueryTrace> &traces);

/** Per-rule rollup of an alert log. */
struct SloVerdict
{
    std::string alert;
    std::uint64_t fired = 0;
    std::uint64_t resolved = 0;
    bool firingAtEnd = false;
};

/** One verdict per alert that transitioned, ordered by alert name. */
std::vector<SloVerdict> summarizeAlerts(
    const std::vector<AlertEvent> &events);

/** `erec_report` sections. Each is a no-op-free renderer: empty input
 *  still prints a summary line, so reports are self-describing. */
void writeStageTable(std::ostream &os, const AttributionReport &report);
void writeCriticalPathTable(std::ostream &os,
                            const CriticalPathReport &report);
void writeSloVerdicts(std::ostream &os,
                      const std::vector<SloVerdict> &verdicts);
void writeAlertTimeline(std::ostream &os,
                        const std::vector<AlertEvent> &events);

} // namespace erec::obs
