#pragma once

/**
 * @file
 * POD causal-trace context propagated across every RPC and runtime
 * boundary: `serving::QueryDispatcher` -> `runtime::BatchQueue` ->
 * shard servers, and `sim::Pod` work items / `rpc` message headers in
 * the simulator. It is the stand-in for the W3C `traceparent` header
 * the paper's Linkerd mesh would inject on every hop.
 *
 * The context is 16 bytes of plain data so it can ride inside the
 * fixed `rpc::kMessageHeaderBytes` budget without perturbing modeled
 * wire sizes, and be copied into queue jobs with no allocation.
 *
 * Child span ids are derived *structurally* rather than drawn from a
 * counter: `child(slot)` packs the slot index into the low byte of a
 * shifted parent id. Two runs that execute the same query through the
 * same stages therefore assign identical span ids regardless of thread
 * interleaving — the property the `workers=0` vs `workers=4`
 * byte-identical span-tree gate relies on. The encoding supports 8
 * nesting levels of up to 255 children each, far beyond the 3-level
 * trees the serving and simulation paths produce.
 */

#include <cstdint>

namespace erec::obs {

/** Span id of the root span of every trace (child slots hang off it). */
inline constexpr std::uint64_t kRootSpanId = 1;

/** Trace-id bit marking internal batch traces (vs. per-query traces).
 *  Batch composition depends on thread timing, so batch traces are
 *  excluded from determinism-sensitive artifacts. */
inline constexpr std::uint64_t kBatchTraceBit = 1ULL << 63;

/** Structural parent of a child() derived span id (0 for the root). */
constexpr std::uint64_t
parentSpanId(std::uint64_t span_id)
{
    return span_id >> 8;
}

struct TraceContext
{
    /** 0 = query not sampled; recording is a no-op. */
    std::uint64_t traceId = 0;
    /** Id of the span this context is scoped to (parent of children
     *  derived via child()). */
    std::uint64_t spanId = 0;

    bool sampled() const { return traceId != 0; }

    /** Deterministic id of this span's `slot`-th child (slot < 255). */
    std::uint64_t childSpanId(unsigned slot) const
    {
        return (spanId << 8) | ((slot & 0xFFU) + 1);
    }

    /** Context scoped to the `slot`-th child span. */
    TraceContext child(unsigned slot) const
    {
        return {traceId, childSpanId(slot)};
    }
};

} // namespace erec::obs
