#include "elasticrec/obs/span_name.h"

#include <deque>
#include <mutex>
#include <unordered_map>

namespace erec::obs {

namespace {

/** Process-wide append-only name table. A deque keeps references to
 *  interned strings stable across growth, so spanName() can hand out
 *  long-lived references. */
struct NameTable
{
    std::mutex mu;
    std::deque<std::string> names; // index 0 = "<invalid>" sentinel
    std::unordered_map<std::string_view, NameId> ids;

    NameTable() { names.emplace_back("<invalid>"); }
};

NameTable &
table()
{
    static NameTable t;
    return t;
}

} // namespace

NameId
internSpanName(std::string_view name)
{
    NameTable &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    const auto it = t.ids.find(name);
    if (it != t.ids.end())
        return it->second;
    t.names.emplace_back(name);
    // Key the map by a view into the deque-owned string (stable for
    // the process lifetime), not the caller's transient buffer.
    const NameId id = static_cast<NameId>(t.names.size() - 1);
    t.ids.emplace(std::string_view(t.names.back()), id);
    return id;
}

const std::string &
spanName(NameId id)
{
    NameTable &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    if (id >= t.names.size())
        return t.names.front(); // "<invalid>"
    return t.names[id];
}

std::size_t
spanNameCount()
{
    NameTable &t = table();
    std::lock_guard<std::mutex> lock(t.mu);
    return t.names.size() - 1; // exclude the sentinel
}

} // namespace erec::obs
