#include "elasticrec/obs/sketch.h"

#include <algorithm>
#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::obs {

namespace {

/** Values at or below this floor land in the exact zero bucket. Far
 *  below one SimTime tick, so every real latency is bucketed. */
constexpr double kZeroFloor = 1e-9;

} // namespace

QuantileSketch::QuantileSketch(double relative_accuracy)
    : alpha_(relative_accuracy),
      gamma_((1.0 + relative_accuracy) / (1.0 - relative_accuracy)),
      invLogGamma_(1.0 / std::log(gamma_))
{
    ERC_CHECK(relative_accuracy > 0.0 && relative_accuracy < 1.0,
              "sketch relative accuracy must be in (0, 1), got "
                  << relative_accuracy);
    // Pre-size the bucket array for the full value span the simulator
    // can produce (sub-microsecond to weeks, in any unit), so insert()
    // never reallocates mid-run: a late outlier extending the range
    // would otherwise break the query path's zero-allocation pin.
    // vector::insert/resize shift in place while size <= capacity.
    const auto span = static_cast<std::size_t>(
        std::ceil(std::log(1e18) * invLogGamma_)) + 2;
    buckets_.reserve(span);
}

int
QuantileSketch::indexFor(double x) const
{
    return static_cast<int>(std::ceil(std::log(x) * invLogGamma_));
}

double
QuantileSketch::valueFor(int index) const
{
    // Log-space midpoint of (gamma^(i-1), gamma^i]: within a factor
    // (1 +/- alpha) of every sample in the bucket.
    return 2.0 * std::pow(gamma_, index) / (1.0 + gamma_);
}

// ERC_HOT_PATH_ALLOW("DDSketch bucket storage extends only on first sight of a value range (the ctor pre-reserves the full span); steady-state inserts recycle buckets and the sim's AllocGate pins them at zero")
void
QuantileSketch::insert(double x)
{
    if (std::isnan(x))
        return; // Rejected: NaN would poison sum() and every quantile.
    ++count_;
    sum_ += std::max(x, 0.0);
    max_ = std::max(max_, x);
    if (x <= kZeroFloor) {
        ++zeroCount_;
        return;
    }
    const int idx = indexFor(x);
    if (buckets_.empty()) {
        offset_ = idx;
        buckets_.push_back(1);
        return;
    }
    if (idx < offset_) {
        buckets_.insert(buckets_.begin(),
                        static_cast<std::size_t>(offset_ - idx), 0);
        offset_ = idx;
    } else if (idx >= offset_ + static_cast<int>(buckets_.size())) {
        buckets_.resize(static_cast<std::size_t>(idx - offset_) + 1, 0);
    }
    ++buckets_[static_cast<std::size_t>(idx - offset_)];
}

void
QuantileSketch::merge(const QuantileSketch &other)
{
    ERC_CHECK(alpha_ == other.alpha_,
              "cannot merge sketches with different accuracies ("
                  << alpha_ << " vs " << other.alpha_ << ")");
    count_ += other.count_;
    sum_ += other.sum_;
    max_ = std::max(max_, other.max_);
    zeroCount_ += other.zeroCount_;
    if (other.buckets_.empty())
        return;
    if (buckets_.empty()) {
        buckets_ = other.buckets_;
        offset_ = other.offset_;
        return;
    }
    const int lo = std::min(offset_, other.offset_);
    const int hi = std::max(
        offset_ + static_cast<int>(buckets_.size()),
        other.offset_ + static_cast<int>(other.buckets_.size()));
    if (lo < offset_) {
        buckets_.insert(buckets_.begin(),
                        static_cast<std::size_t>(offset_ - lo), 0);
        offset_ = lo;
    }
    if (hi > offset_ + static_cast<int>(buckets_.size()))
        buckets_.resize(static_cast<std::size_t>(hi - offset_), 0);
    for (std::size_t k = 0; k < other.buckets_.size(); ++k)
        buckets_[static_cast<std::size_t>(
            other.offset_ - offset_ + static_cast<int>(k))] +=
            other.buckets_[k];
}

double
QuantileSketch::quantile(double q) const
{
    ERC_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    if (count_ == 0)
        return 0.0;
    const double rank = q * static_cast<double>(count_ - 1);
    if (rank < static_cast<double>(zeroCount_))
        return 0.0;
    std::uint64_t cumulative = zeroCount_;
    for (std::size_t k = 0; k < buckets_.size(); ++k) {
        cumulative += buckets_[k];
        if (static_cast<double>(cumulative) > rank)
            return valueFor(offset_ + static_cast<int>(k));
    }
    // Unreachable when counts are consistent; return the top bucket.
    return valueFor(offset_ + static_cast<int>(buckets_.size()) - 1);
}

void
QuantileSketch::clear()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    zeroCount_ = 0;
    count_ = 0;
    sum_ = 0.0;
    max_ = 0.0;
}

WindowedQuantileSketch::WindowedQuantileSketch(SimTime window,
                                               std::size_t slices,
                                               double relative_accuracy)
    : window_(window), span_((window + static_cast<SimTime>(slices) - 1) /
                             static_cast<SimTime>(slices)),
      alpha_(relative_accuracy)
{
    ERC_CHECK(window > 0, "window must be positive");
    ERC_CHECK(slices >= 2, "need at least two window slices");
    ring_.reserve(slices);
    for (std::size_t i = 0; i < slices; ++i)
        ring_.push_back({-1, QuantileSketch(relative_accuracy)});
}

bool
WindowedQuantileSketch::live(const Slice &s, SimTime now) const
{
    if (s.bucket < 0)
        return false;
    // A slice covers [bucket*span, (bucket+1)*span); it is live while
    // any part of that range is inside (now - window, now].
    const SimTime end = (s.bucket + 1) * span_;
    return end > now - window_ && s.bucket * span_ <= now;
}

void
WindowedQuantileSketch::add(SimTime t, double x)
{
    const std::int64_t bucket = t / span_;
    Slice &slot = ring_[static_cast<std::size_t>(bucket) % ring_.size()];
    if (slot.bucket != bucket) {
        slot.sketch.clear();
        slot.bucket = bucket;
    }
    slot.sketch.insert(x);
}

double
WindowedQuantileSketch::quantile(SimTime now, double q) const
{
    QuantileSketch merged(alpha_);
    for (const Slice &s : ring_)
        if (live(s, now))
            merged.merge(s.sketch);
    return merged.quantile(q);
}

std::uint64_t
WindowedQuantileSketch::count(SimTime now) const
{
    std::uint64_t n = 0;
    for (const Slice &s : ring_)
        if (live(s, now))
            n += s.sketch.count();
    return n;
}

} // namespace erec::obs
