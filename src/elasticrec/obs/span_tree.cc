#include "elasticrec/obs/span_tree.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace erec::obs {

namespace {

void
appendNode(std::ostringstream &oss, const SpanTree &tree,
           std::size_t index, int depth)
{
    const SpanNode &node = tree.nodes[index];
    for (int i = 0; i < depth; ++i)
        oss << "  ";
    oss << spanName(node.event.name);
    if (node.event.arg != 0)
        oss << " #" << node.event.arg;
    oss << '\n';
    for (const std::size_t child : node.children)
        appendNode(oss, tree, child, depth + 1);
}

} // namespace

std::vector<SpanTree>
buildSpanTrees(std::vector<SpanEvent> events)
{
    // Ordered map: trees come back sorted by trace id.
    std::map<std::uint64_t, SpanTree> by_trace;
    for (const SpanEvent &e : events) {
        SpanTree &tree = by_trace[e.traceId];
        tree.traceId = e.traceId;
        if (e.kind == EventKind::Link)
            tree.links.push_back(e);
        else
            tree.nodes.push_back({e, {}});
    }

    std::vector<SpanTree> trees;
    trees.reserve(by_trace.size());
    for (auto &[trace_id, tree] : by_trace) {
        // Span-id order is slot-derived, hence deterministic across
        // schedules; it also places every parent before its children
        // (child ids extend the parent id by one low byte).
        std::sort(tree.nodes.begin(), tree.nodes.end(),
                  [](const SpanNode &a, const SpanNode &b) {
                      return a.event.spanId < b.event.spanId;
                  });
        std::sort(tree.links.begin(), tree.links.end(),
                  [](const SpanEvent &a, const SpanEvent &b) {
                      return a.arg < b.arg;
                  });
        std::map<std::uint64_t, std::size_t> index_of;
        for (std::size_t i = 0; i < tree.nodes.size(); ++i)
            index_of[tree.nodes[i].event.spanId] = i;
        tree.root = 0;
        const auto root_it = index_of.find(kRootSpanId);
        if (root_it != index_of.end())
            tree.root = root_it->second;
        for (std::size_t i = 0; i < tree.nodes.size(); ++i) {
            if (i == tree.root)
                continue;
            const auto parent =
                index_of.find(tree.nodes[i].event.parentId);
            // Orphans (parent lost to ring overflow) go to the root.
            const std::size_t p = parent != index_of.end()
                                      ? parent->second
                                      : tree.root;
            if (p != i)
                tree.nodes[p].children.push_back(i);
        }
        trees.push_back(std::move(tree));
    }
    return trees;
}

std::string
canonicalTreeText(const SpanTree &tree)
{
    std::ostringstream oss;
    oss << "trace " << (tree.traceId & ~kBatchTraceBit)
        << (tree.isBatch() ? " (batch)" : "") << '\n';
    if (!tree.nodes.empty())
        appendNode(oss, tree, tree.root, 1);
    return oss.str();
}

std::string
canonicalForestText(const std::vector<SpanTree> &trees)
{
    std::ostringstream oss;
    for (const SpanTree &tree : trees) {
        if (tree.isBatch())
            continue;
        oss << canonicalTreeText(tree);
    }
    return oss.str();
}

} // namespace erec::obs
