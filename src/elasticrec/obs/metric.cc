#include "elasticrec/obs/metric.h"

#include <algorithm>
#include <cctype>
#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::obs {

namespace {

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](unsigned char c) {
        return std::isalpha(c) || c == '_' || c == ':';
    };
    auto tail = [&head](unsigned char c) {
        return head(c) || std::isdigit(c);
    };
    if (!head(static_cast<unsigned char>(name.front())))
        return false;
    return std::all_of(name.begin() + 1, name.end(), [&tail](char c) {
        return tail(static_cast<unsigned char>(c));
    });
}

bool
validLabelName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](unsigned char c) { return std::isalpha(c) || c == '_'; };
    if (!head(static_cast<unsigned char>(name.front())))
        return false;
    return std::all_of(name.begin() + 1, name.end(), [&head](char c) {
        return head(static_cast<unsigned char>(c)) ||
               std::isdigit(static_cast<unsigned char>(c));
    });
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    ERC_CHECK(!bounds_.empty(), "histogram needs at least one bucket");
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        ERC_CHECK(bounds_[i] > bounds_[i - 1],
                  "histogram bounds must be strictly increasing");
}

void
Histogram::observe(double x)
{
    if (std::isnan(x))
        return; // A NaN would poison sum() for the rest of the run.
    x = std::max(x, 0.0); // Latencies cannot be negative; saturate.
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += x;
}

const char *
toString(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "unknown";
}

const std::vector<double> &
defaultLatencyBucketsMs()
{
    static const std::vector<double> kBuckets = {
        0.5, 1, 2, 5, 10, 20, 50, 100, 200, 400, 800, 1600, 3200};
    return kBuckets;
}

std::string
Registry::labelKey(const Labels &labels)
{
    std::string key;
    for (const auto &[k, v] : labels) {
        if (!key.empty())
            key += ',';
        key += k;
        key += "=\"";
        key += v;
        key += '"';
    }
    return key;
}

Registry::Family &
Registry::family(const std::string &name, const std::string &help,
                 MetricKind kind)
{
    auto it = families_.find(name);
    if (it == families_.end()) {
        ERC_CHECK(validMetricName(name),
                  "invalid metric name '" << name << "'");
        Family fam;
        fam.name = name;
        fam.help = help;
        fam.kind = kind;
        it = families_.emplace(name, std::move(fam)).first;
    }
    ERC_CHECK(it->second.kind == kind,
              "metric '" << name << "' re-registered as "
                         << toString(kind) << " but is "
                         << toString(it->second.kind));
    return it->second;
}

Registry::Child &
Registry::child(Family &fam, const Labels &labels)
{
    for (const auto &[k, v] : labels)
        ERC_CHECK(validLabelName(k),
                  "invalid label name '" << k << "' on metric '"
                                         << fam.name << "'");
    return fam.children[labelKey(labels)];
}

Counter &
Registry::counter(const std::string &name, const std::string &help,
                  const Labels &labels)
{
    Family &fam = family(name, help, MetricKind::Counter);
    Child &c = child(fam, labels);
    if (!c.counter) {
        c.labels = labels;
        c.counter = std::make_unique<Counter>();
    }
    return *c.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help,
                const Labels &labels)
{
    Family &fam = family(name, help, MetricKind::Gauge);
    Child &c = child(fam, labels);
    if (!c.gauge) {
        c.labels = labels;
        c.gauge = std::make_unique<Gauge>();
    }
    return *c.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    const std::vector<double> &bounds, const Labels &labels)
{
    Family &fam = family(name, help, MetricKind::Histogram);
    if (fam.bounds.empty())
        fam.bounds = bounds;
    ERC_CHECK(fam.bounds == bounds,
              "histogram '" << name
                            << "' re-registered with different buckets");
    Child &c = child(fam, labels);
    if (!c.histogram) {
        c.labels = labels;
        c.histogram = std::make_unique<Histogram>(fam.bounds);
    }
    return *c.histogram;
}

void
Registry::remove(const std::string &name, const Labels &labels)
{
    const auto it = families_.find(name);
    if (it == families_.end())
        return;
    it->second.children.erase(labelKey(labels));
}

double
Registry::value(const std::string &name, const Labels &labels) const
{
    const auto it = families_.find(name);
    if (it == families_.end())
        return 0.0;
    const auto child = it->second.children.find(labelKey(labels));
    if (child == it->second.children.end())
        return 0.0;
    if (child->second.counter)
        return child->second.counter->value();
    if (child->second.gauge)
        return child->second.gauge->value();
    return 0.0;
}

} // namespace erec::obs
