#include "elasticrec/obs/export.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "elasticrec/common/error.h"

namespace erec::obs {

namespace {

/**
 * Render a sample value: integers without a fraction (counters and
 * bucket counts stay grep-able), everything else with full round-trip
 * precision.
 */
std::string
formatValue(double v)
{
    if (std::isnan(v))
        return "NaN";
    if (std::isinf(v))
        return v > 0 ? "+Inf" : "-Inf";
    if (v == std::rint(v) && std::abs(v) < 1e15) {
        std::ostringstream oss;
        oss << static_cast<long long>(v);
        return oss.str();
    }
    std::ostringstream oss;
    oss << std::setprecision(std::numeric_limits<double>::max_digits10)
        << v;
    return oss.str();
}

std::string
escapeHelp(const std::string &help)
{
    std::string out;
    out.reserve(help.size());
    for (char c : help) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

/** Render `{k="v",...}`, optionally with an extra trailing label. */
std::string
renderLabels(const Labels &labels, const std::string &extra_key = "",
             const std::string &extra_value = "")
{
    std::string out;
    for (const auto &[k, v] : labels) {
        out += out.empty() ? "{" : ",";
        out += k;
        out += "=\"";
        out += escapeLabelValue(v);
        out += '"';
    }
    if (!extra_key.empty()) {
        out += out.empty() ? "{" : ",";
        out += extra_key;
        out += "=\"";
        out += escapeLabelValue(extra_value);
        out += '"';
    }
    if (!out.empty())
        out += '}';
    return out;
}

std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/** Minimal recursive-descent parser for the trace JSON-lines schema. */
class JsonCursor
{
  public:
    explicit JsonCursor(const std::string &text) : s_(text) {}

    void skipWs()
    {
        while (i_ < s_.size() &&
               (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\r'))
            ++i_;
    }

    bool atEnd()
    {
        skipWs();
        return i_ >= s_.size();
    }

    char peek()
    {
        skipWs();
        ERC_CHECK(i_ < s_.size(), "trace json: unexpected end of input");
        return s_[i_];
    }

    void expect(char c)
    {
        ERC_CHECK(peek() == c, "trace json: expected '"
                                   << c << "' at offset " << i_);
        ++i_;
    }

    bool consume(char c)
    {
        if (!atEnd() && peek() == c) {
            ++i_;
            return true;
        }
        return false;
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            ERC_CHECK(i_ < s_.size(), "trace json: unterminated string");
            char c = s_[i_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            ERC_CHECK(i_ < s_.size(), "trace json: dangling escape");
            char e = s_[i_++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out.push_back(e);
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 'u': {
                ERC_CHECK(i_ + 4 <= s_.size(),
                          "trace json: truncated \\u escape");
                unsigned code = 0;
                for (int k = 0; k < 4; ++k) {
                    const char h = s_[i_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code += static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code += static_cast<unsigned>(h - 'A' + 10);
                    else
                        erec::fatal("trace json: bad \\u escape digit");
                }
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xC0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                } else {
                    out.push_back(
                        static_cast<char>(0xE0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3F)));
                }
                break;
              }
              default:
                erec::fatal("trace json: unsupported escape");
            }
        }
    }

    std::int64_t parseInt()
    {
        skipWs();
        const std::size_t start = i_;
        if (i_ < s_.size() && s_[i_] == '-')
            ++i_;
        while (i_ < s_.size() && s_[i_] >= '0' && s_[i_] <= '9')
            ++i_;
        ERC_CHECK(i_ > start && (s_[start] != '-' || i_ > start + 1),
                  "trace json: expected integer at offset " << start);
        return std::stoll(s_.substr(start, i_ - start));
    }

    bool parseBool()
    {
        skipWs();
        if (s_.compare(i_, 4, "true") == 0) {
            i_ += 4;
            return true;
        }
        if (s_.compare(i_, 5, "false") == 0) {
            i_ += 5;
            return false;
        }
        erec::fatal("trace json: expected boolean");
    }

  private:
    const std::string &s_;
    std::size_t i_ = 0;
};

Span
parseSpan(JsonCursor &cur)
{
    Span span;
    cur.expect('{');
    bool first = true;
    while (cur.peek() != '}') {
        if (!first)
            cur.expect(',');
        first = false;
        const std::string key = cur.parseString();
        cur.expect(':');
        if (key == "name")
            span.name = cur.parseString();
        else if (key == "start_us")
            span.start = cur.parseInt();
        else if (key == "end_us")
            span.end = cur.parseInt();
        else if (key == "span_id")
            span.spanId = static_cast<std::uint64_t>(cur.parseInt());
        else if (key == "parent_id")
            span.parentId = static_cast<std::uint64_t>(cur.parseInt());
        else
            erec::fatal("trace json: unknown span key '" + key + "'");
    }
    cur.expect('}');
    return span;
}

QueryTrace
parseTraceLine(const std::string &line)
{
    JsonCursor cur(line);
    QueryTrace trace;
    cur.expect('{');
    bool first = true;
    while (cur.peek() != '}') {
        if (!first)
            cur.expect(',');
        first = false;
        const std::string key = cur.parseString();
        cur.expect(':');
        if (key == "query_id") {
            trace.queryId = static_cast<std::uint64_t>(cur.parseInt());
        } else if (key == "trace_id") {
            trace.traceId = static_cast<std::uint64_t>(cur.parseInt());
        } else if (key == "arrival_us") {
            trace.arrival = cur.parseInt();
        } else if (key == "completion_us") {
            trace.completion = cur.parseInt();
        } else if (key == "completed") {
            trace.completed = cur.parseBool();
        } else if (key == "spans") {
            cur.expect('[');
            if (!cur.consume(']')) {
                do {
                    trace.spans.push_back(parseSpan(cur));
                } while (cur.consume(','));
                cur.expect(']');
            }
        } else {
            erec::fatal("trace json: unknown trace key '" + key + "'");
        }
    }
    cur.expect('}');
    ERC_CHECK(cur.atEnd(), "trace json: trailing content on line");
    return trace;
}

} // namespace

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        if (c == '\\')
            out += "\\\\";
        else if (c == '"')
            out += "\\\"";
        else if (c == '\n')
            out += "\\n";
        else
            out.push_back(c);
    }
    return out;
}

void
writePrometheusText(std::ostream &os, const Registry &registry)
{
    for (const auto &[name, fam] : registry.families()) {
        // A family can outlive its last child (Registry::remove); a
        // header with no samples is useless and trips strict parsers.
        if (fam.children.empty())
            continue;
        os << "# HELP " << name << ' ' << escapeHelp(fam.help) << '\n';
        os << "# TYPE " << name << ' ' << toString(fam.kind) << '\n';
        for (const auto &[key, child] : fam.children) {
            switch (fam.kind) {
              case MetricKind::Counter:
                os << name << renderLabels(child.labels) << ' '
                   << formatValue(child.counter->value()) << '\n';
                break;
              case MetricKind::Gauge:
                os << name << renderLabels(child.labels) << ' '
                   << formatValue(child.gauge->value()) << '\n';
                break;
              case MetricKind::Histogram: {
                const Histogram &h = *child.histogram;
                std::uint64_t cumulative = 0;
                for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                    cumulative += h.bucketCount(i);
                    os << name << "_bucket"
                       << renderLabels(child.labels, "le",
                                       formatValue(h.bounds()[i]))
                       << ' ' << cumulative << '\n';
                }
                os << name << "_bucket"
                   << renderLabels(child.labels, "le", "+Inf") << ' '
                   << h.count() << '\n';
                os << name << "_sum" << renderLabels(child.labels) << ' '
                   << formatValue(h.sum()) << '\n';
                os << name << "_count" << renderLabels(child.labels)
                   << ' ' << h.count() << '\n';
                break;
              }
            }
        }
    }
}

std::string
toPrometheusText(const Registry &registry)
{
    std::ostringstream oss;
    writePrometheusText(oss, registry);
    return oss.str();
}

void
writeTraceJsonLines(std::ostream &os, const std::deque<QueryTrace> &traces)
{
    for (const auto &trace : traces) {
        os << "{\"query_id\":" << trace.queryId
           << ",\"trace_id\":" << trace.traceId
           << ",\"arrival_us\":" << trace.arrival
           << ",\"completion_us\":" << trace.completion
           << ",\"completed\":" << (trace.completed ? "true" : "false")
           << ",\"spans\":[";
        for (std::size_t i = 0; i < trace.spans.size(); ++i) {
            const Span &span = trace.spans[i];
            if (i > 0)
                os << ',';
            os << "{\"name\":\"" << escapeJson(span.name)
               << "\",\"start_us\":" << span.start
               << ",\"end_us\":" << span.end
               << ",\"span_id\":" << span.spanId
               << ",\"parent_id\":" << span.parentId << '}';
        }
        os << "]}\n";
    }
}

std::string
toTraceJsonLines(const std::deque<QueryTrace> &traces)
{
    std::ostringstream oss;
    writeTraceJsonLines(oss, traces);
    return oss.str();
}

std::vector<QueryTrace>
readTraceJsonLines(const std::string &text)
{
    std::vector<QueryTrace> traces;
    std::istringstream iss(text);
    std::string line;
    while (std::getline(iss, line)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        traces.push_back(parseTraceLine(line));
    }
    return traces;
}

void
writeMetricsFiles(const std::string &dir, const std::string &stem,
                  const Registry &registry,
                  const ExportArtifacts &artifacts)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(fs::path(dir), ec);
    ERC_CHECK(!ec, "cannot create metrics directory '" << dir << "'");

    const fs::path prom = fs::path(dir) / (stem + ".prom");
    std::ofstream prom_os(prom);
    ERC_CHECK(prom_os.good(),
              "cannot open '" << prom.string() << "' for writing");
    writePrometheusText(prom_os, registry);

    if (artifacts.traces != nullptr) {
        const fs::path jsonl = fs::path(dir) / (stem + "_traces.jsonl");
        std::ofstream trace_os(jsonl);
        ERC_CHECK(trace_os.good(),
                  "cannot open '" << jsonl.string() << "' for writing");
        writeTraceJsonLines(trace_os, *artifacts.traces);
    }
    if (artifacts.alerts != nullptr) {
        const fs::path jsonl = fs::path(dir) / (stem + "_alerts.jsonl");
        std::ofstream alert_os(jsonl);
        ERC_CHECK(alert_os.good(),
                  "cannot open '" << jsonl.string() << "' for writing");
        writeAlertJsonLines(alert_os, *artifacts.alerts);
    }
}

} // namespace erec::obs
