#pragma once

/**
 * @file
 * Hot-path-safe span recording: the flight recorder every serving
 * thread writes into and a collector drains off the steady path.
 *
 * Design (mirrors in-process tracers like Perfetto's TrackEvent):
 *
 *  - Each producer thread owns a fixed-capacity SPSC ring of POD
 *    SpanEvent records. Producers publish with a single release store;
 *    the (single) collector consumes with acquire loads. No locks, no
 *    allocation, no syscalls on the record path — `ERC_HOT_PATH`
 *    clean, and safe to call inside an AllocGate.
 *  - A full ring *drops* the event and bumps a per-ring counter
 *    instead of blocking or growing: tracing must never add
 *    backpressure to serving.
 *  - Ring registration (first record on a thread, or an explicit
 *    registerThisThread() at worker startup) is the only slow path: it
 *    takes a mutex and allocates the ring. Pump workers pre-register
 *    before entering their AllocGate'd steady loop so the gate never
 *    observes the registration allocation.
 *  - Sampling is deterministic every-Nth in submission order (no RNG,
 *    no clocks), and span ids are derived structurally from
 *    TraceContext slots, so serial (`workers=0`) and concurrent runs
 *    build bit-identical span trees for every sampled query.
 *
 * Timestamps are microseconds on std::chrono::steady_clock relative
 * to the recorder's construction: monotonic, comparable across
 * threads, and small enough for the Chrome trace-event `ts` field.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/common/thread_annotations.h"
#include "elasticrec/obs/span_name.h"
#include "elasticrec/obs/trace_context.h"

namespace erec::obs {

/** Record kind discriminator for SpanEvent. */
enum class EventKind : std::uint32_t
{
    /** A completed span: [startUs, endUs] under (traceId, spanId). */
    Span = 0,
    /** A fan-in link: the batch span `spanId` served the member query
     *  trace `arg` (Perfetto flow event). Timestamps carry the link
     *  instant in both fields. */
    Link = 1,
};

/** Fixed-size POD trace record; the only thing rings ever store. */
struct SpanEvent
{
    std::uint64_t traceId = 0;
    std::uint64_t spanId = 0;
    std::uint64_t parentId = 0;
    std::int64_t startUs = 0;
    std::int64_t endUs = 0;
    /** Kind-specific payload: linked member trace id for Link events,
     *  an optional detail word (e.g. table<<16|shard) for spans. */
    std::uint64_t arg = 0;
    NameId name = kInvalidNameId;
    EventKind kind = EventKind::Span;
};

static_assert(std::is_trivially_copyable_v<SpanEvent>,
              "SpanEvent must stay a POD: rings copy it raw");

/**
 * Single-producer single-consumer ring of SpanEvents. The owning
 * thread pushes; the collector drains. Capacity is fixed at
 * construction (rounded up to a power of two); overflow drops.
 */
class SpanRing
{
  public:
    explicit SpanRing(std::size_t capacity);

    /** Producer side: publish one event, or count a drop when full.
     *  Wait-free, allocation-free. */
    ERC_HOT_PATH
    bool tryPush(const SpanEvent &event) noexcept;

    /** Consumer side: append all published events to `*out` and free
     *  their slots. Returns the number drained. */
    std::size_t drainInto(std::vector<SpanEvent> *out);

    /** Events dropped because the ring was full. */
    std::uint64_t drops() const
    {
        return drops_.load(std::memory_order_relaxed);
    }

    std::size_t capacity() const { return slots_.size(); }

  private:
    std::vector<SpanEvent> slots_;
    std::uint64_t mask_;
    /** Producer-owned write cursor; consumer acquire-reads it. */
    alignas(64) std::atomic<std::uint64_t> head_{0};
    /** Consumer-owned read cursor; producer acquire-reads it. */
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    alignas(64) std::atomic<std::uint64_t> drops_{0};
};

struct FlightRecorderOptions
{
    /** Trace one query in every `sampleEvery` submissions; 0 disables
     *  recording entirely (every call becomes a cheap no-op). */
    std::uint32_t sampleEvery = 0;
    /** Per-thread ring capacity in events (rounded up to 2^k). */
    std::size_t ringCapacity = 4096;
};

class FlightRecorder
{
  public:
    explicit FlightRecorder(const FlightRecorderOptions &options = {});

    bool enabled() const { return options_.sampleEvery != 0; }
    std::uint32_t sampleEvery() const { return options_.sampleEvery; }

    /**
     * Account one query submission; returns a root context
     * (traceId = submission index + 1, spanId = kRootSpanId) when this
     * submission is sampled, an unsampled context otherwise.
     * Deterministic in submission order.
     */
    TraceContext maybeStartTrace();

    /** Root context for an internal batch trace (kBatchTraceBit set).
     *  Batch ids are allocation-order, not deterministic. */
    TraceContext startBatchTrace();

    /**
     * Pre-create the calling thread's ring. Worker threads call this
     * once at startup, before any AllocGate, so the steady-path
     * record() never hits the registration slow path.
     */
    void registerThisThread();

    /** Record one event into the calling thread's ring (drop if
     *  full). Unsampled contexts must be filtered by the caller. */
    ERC_HOT_PATH
    void record(const SpanEvent &event) noexcept;

    /** Convenience: record a completed span scoped to `ctx`. */
    ERC_HOT_PATH
    void recordSpan(const TraceContext &ctx, NameId name,
                    std::int64_t start_us, std::int64_t end_us,
                    std::uint64_t arg = 0) noexcept
    {
        SpanEvent e;
        e.traceId = ctx.traceId;
        e.spanId = ctx.spanId;
        e.parentId = parentSpanId(ctx.spanId);
        e.startUs = start_us;
        e.endUs = end_us;
        e.arg = arg;
        e.name = name;
        e.kind = EventKind::Span;
        record(e);
    }

    /** Convenience: record a batch->member fan-in link at `ts_us`. */
    ERC_HOT_PATH
    void recordLink(const TraceContext &batch_ctx, NameId name,
                    std::uint64_t member_trace_id,
                    std::int64_t ts_us) noexcept
    {
        SpanEvent e;
        e.traceId = batch_ctx.traceId;
        e.spanId = batch_ctx.spanId;
        e.parentId = parentSpanId(batch_ctx.spanId);
        e.startUs = ts_us;
        e.endUs = ts_us;
        e.arg = member_trace_id;
        e.name = name;
        e.kind = EventKind::Link;
        record(e);
    }

    /** Microseconds since recorder construction (steady clock). */
    ERC_HOT_PATH
    std::int64_t nowUs() const noexcept;

    /**
     * Collector side: move all published events out of every ring.
     * Single consumer; safe to run concurrently with producers.
     */
    std::vector<SpanEvent> drain();

    /** Total events dropped across all rings (overflow). */
    std::uint64_t droppedEvents() const;

    /** Number of registered producer threads. */
    std::size_t ringCount() const;

    /** Submissions accounted by maybeStartTrace. */
    std::uint64_t submissions() const
    {
        return submitted_.load(std::memory_order_relaxed);
    }

  private:
    SpanRing *acquireRing();

    FlightRecorderOptions options_;
    /** Unique process-wide recorder id: thread-local ring caches are
     *  validated against it, so stale caches from a destroyed recorder
     *  can never alias a new one. */
    std::uint64_t id_;
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> batchSeq_{0};
    mutable std::mutex registryMu_;
    /** Keyed by a process-unique thread key (not std::thread::id, so
     *  obs stays free of <thread> per the raw-thread rule). */
    std::unordered_map<std::uint64_t, std::size_t>
        ringByThread_ ERC_GUARDED_BY(registryMu_);
    std::vector<std::unique_ptr<SpanRing>>
        rings_ ERC_GUARDED_BY(registryMu_);
};

} // namespace erec::obs
