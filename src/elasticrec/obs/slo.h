#pragma once

/**
 * @file
 * SLO tracking and alert rules.
 *
 * The paper's evaluation is an SLO story — a 400 ms end-to-end SLA with
 * dense shards scaled at 65% of it (Section V) — but metrics alone only
 * answer "what is the value now". SloTracker turns registry signals
 * into *verdicts*: a small set of alert rules is evaluated once per
 * sample tick, each rule holding a breach for a configurable duration
 * before it fires (Prometheus' `for:` clause), and every
 * firing/resolved transition is recorded in a deterministic alert log
 * plus exported counters/gauges:
 *
 *   erec_alert_transitions_total{alert=...,transition=firing|resolved}
 *   erec_alert_firing{alert=...}
 *
 * Rule grammar (parseAlertRule):
 *
 *   <signal> > <threshold>[unit] [for <duration>]
 *
 *   signal    := p95(<deployment>) | violation_ratio(<deployment>)
 *              | qps(<deployment>) | gauge(<name>) | lost_queries
 *   unit      := ms | s | %          (bare numbers are raw units)
 *   duration  := <number>(ms|s)
 *
 * e.g. `p95(dense) > 260ms for 5s`, `violation_ratio(rm1) > 1%`,
 * `lost_queries > 0`. p95 signals are in milliseconds, ratios are
 * fractions (1% == 0.01), `s` thresholds convert to ms.
 *
 * The tracker is decoupled from the cluster layer: the owner supplies a
 * SignalReader callback that resolves (signal, now) -> value, so obs/
 * keeps depending only on common/.
 */

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "elasticrec/common/units.h"
#include "elasticrec/obs/metric.h"

namespace erec::obs {

enum class SignalKind
{
    P95,            //!< p95(<deployment>), milliseconds.
    ViolationRatio, //!< violations / completions, fraction in [0, 1].
    Qps,            //!< qps(<deployment>), queries per second.
    GaugeValue,     //!< gauge(<name>), raw units.
    LostQueries,    //!< queries lost to pod crashes, count.
};

const char *toString(SignalKind kind);

struct SloSignal
{
    SignalKind kind = SignalKind::P95;
    /** Deployment or gauge name; empty for lost_queries. */
    std::string target;
};

struct AlertRule
{
    std::string name;
    SloSignal signal;
    /** Rule fires when the signal exceeds this (strict). */
    double threshold = 0.0;
    /** Breach must persist this long before the rule fires (0 =
     *  immediately, Prometheus `for:` semantics). */
    SimTime holdFor = 0;
};

/**
 * Parse `<signal> > <threshold>[unit] [for <duration>]` into a rule
 * (grammar in the file header). Raises ConfigError on malformed input.
 */
AlertRule parseAlertRule(const std::string &name, const std::string &expr);

/** One firing or resolved transition, in evaluation order. */
struct AlertEvent
{
    SimTime time = 0;
    std::string alert;
    bool firing = false; //!< true: fired; false: resolved.
    /** Signal value observed at the transition. */
    double value = 0.0;
};

class SloTracker
{
  public:
    /** Resolves a rule's signal to its current value. */
    using SignalReader = std::function<double(const SloSignal &, SimTime)>;

    explicit SloTracker(SignalReader reader);

    /** Register a rule (typically via parseAlertRule). Rule names must
     *  be unique. */
    void addRule(AlertRule rule);
    void addRule(const std::string &name, const std::string &expr);

    /**
     * Mirror transitions/firing state into an exportable registry.
     * Pass nullptr to detach; the registry must outlive this object.
     */
    void bindObservability(Registry *registry);

    /**
     * Evaluate every rule at simulated time `now` (call once per sample
     * tick, with non-decreasing times within a run).
     */
    void evaluate(SimTime now);

    /** Clear alert state and the event log (new run, same rules). */
    void reset();

    bool firing(const std::string &name) const;

    /** Firing/resolved transitions in evaluation order. */
    const std::vector<AlertEvent> &events() const { return events_; }

    std::size_t ruleCount() const { return rules_.size(); }

  private:
    struct RuleState
    {
        AlertRule rule;
        bool firing = false;
        /** Time the current breach streak started; -1 = no breach. */
        SimTime breachSince = -1;
        // Resolved obs handles; null when no registry is bound.
        Counter *obsFired = nullptr;
        Counter *obsResolved = nullptr;
        Gauge *obsFiring = nullptr;
    };

    void bindRule(RuleState &rs);

    SignalReader reader_;
    Registry *obs_ = nullptr;
    std::vector<RuleState> rules_;
    std::vector<AlertEvent> events_;
};

/**
 * Alert-log JSON lines: one event per line,
 * `{"t_us":...,"alert":"...","state":"firing|resolved","value":...}`.
 */
void writeAlertJsonLines(std::ostream &os,
                         const std::vector<AlertEvent> &events);
std::string toAlertJsonLines(const std::vector<AlertEvent> &events);

/** Strict reader for writeAlertJsonLines output (ConfigError on
 *  malformed input). */
std::vector<AlertEvent> readAlertJsonLines(const std::string &text);

} // namespace erec::obs
