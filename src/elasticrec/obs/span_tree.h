#pragma once

/**
 * @file
 * Assembles the flat SpanEvents drained from a FlightRecorder into
 * per-trace hierarchical span trees, and serializes them into a
 * *canonical text* form used by the determinism gate: structure, span
 * names, slot-derived span ids and deterministic args only — no
 * wall-clock timestamps, no batch traces (batch composition depends on
 * thread timing). Two runs of the same workload must produce
 * byte-identical canonical forests whether the dispatcher runs serial
 * (`workers=0`) or concurrent (`workers=4`); tests and the bench
 * assert exactly that.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "elasticrec/obs/flight_recorder.h"

namespace erec::obs {

/** One span with its children, indices into SpanTree::nodes. */
struct SpanNode
{
    SpanEvent event;
    std::vector<std::size_t> children;
};

/** The assembled tree of one trace (one sampled query or one batch). */
struct SpanTree
{
    std::uint64_t traceId = 0;
    /** Index of the root node in `nodes` (parentId == 0). */
    std::size_t root = 0;
    /** Nodes sorted by span id (deterministic, slot-ordered). */
    std::vector<SpanNode> nodes;
    /** Fan-in link events recorded under this trace. */
    std::vector<SpanEvent> links;

    bool isBatch() const { return (traceId & kBatchTraceBit) != 0; }
};

/**
 * Group events by trace id and wire up parent/child edges. Orphan
 * spans (parent id never recorded, e.g. after ring overflow) attach
 * under the root. Trees come back sorted by trace id; nodes and child
 * lists by span id — both orderings are scheduling-independent.
 */
std::vector<SpanTree> buildSpanTrees(std::vector<SpanEvent> events);

/** Canonical text of one tree: indented `name [#arg]` lines in span-id
 *  order, no timestamps. */
std::string canonicalTreeText(const SpanTree &tree);

/**
 * Canonical text of a whole run: one canonicalTreeText block per
 * query trace in trace-id (submission) order. Batch traces are
 * excluded — their composition is legitimately scheduling-dependent.
 */
std::string canonicalForestText(const std::vector<SpanTree> &trees);

} // namespace erec::obs
