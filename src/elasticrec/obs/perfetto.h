#pragma once

/**
 * @file
 * Chrome/Perfetto trace-event JSON export ("JSON trace format",
 * loadable in ui.perfetto.dev or chrome://tracing) for both tracing
 * backends:
 *
 *  - the simulator's sampled QueryTraces (one track per traced query,
 *    one complete "X" event per span), and
 *  - the serving stack's drained SpanEvents, where batch->member
 *    fan-in links become flow events ("s" on the batch span, "f" on
 *    the member query's root) so the UI draws the arrow from a query
 *    to the coalesced batch it waited on.
 *
 * The emitter writes one event per line, globally sorted by timestamp,
 * which is what the erec_trace/v1 perfetto profile (validatePerfetto)
 * checks: well-formed event lines, monotonic timestamps, and every
 * flow id resolving to a matched start/finish pair.
 */

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "elasticrec/obs/flight_recorder.h"
#include "elasticrec/obs/trace.h"

namespace erec::obs {

/** Export simulator QueryTraces as Chrome trace-event JSON. */
void writePerfettoJson(std::ostream &os,
                       const std::deque<QueryTrace> &traces);

/** Export drained FlightRecorder events as Chrome trace-event JSON. */
void writePerfettoJson(std::ostream &os,
                       const std::vector<SpanEvent> &events);

std::string toPerfettoJson(const std::deque<QueryTrace> &traces);
std::string toPerfettoJson(const std::vector<SpanEvent> &events);

/**
 * Validate text against the erec_trace/v1 perfetto profile. Returns
 * one message per violation; empty means valid. Backs promcheck's
 * handling of `*_perfetto.json` artifacts.
 */
std::vector<std::string> validatePerfettoJson(const std::string &text);

} // namespace erec::obs
