#include "elasticrec/obs/flight_recorder.h"

#include "elasticrec/common/error.h"

namespace erec::obs {

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

/** Process-unique key for the calling thread (never reused, unlike
 *  std::thread::id, so ring ownership can't alias across joins). */
std::uint64_t
threadKey()
{
    static std::atomic<std::uint64_t> next{1};
    thread_local const std::uint64_t key =
        next.fetch_add(1, std::memory_order_relaxed);
    return key;
}

/** Per-thread cache of the last (recorder, ring) pairing, so the
 *  steady-path record() is a compare + SPSC push. Validated against
 *  the recorder's unique id: a destroyed recorder's id is never
 *  reissued, so a stale cache can only miss, never alias. */
struct RingCache
{
    std::uint64_t owner = 0;
    SpanRing *ring = nullptr;
};

thread_local RingCache t_ringCache;

std::uint64_t
nextRecorderId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

SpanRing::SpanRing(std::size_t capacity)
    : slots_(roundUpPow2(capacity == 0 ? 1 : capacity)),
      mask_(slots_.size() - 1)
{}

bool
SpanRing::tryPush(const SpanEvent &event) noexcept
{
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= slots_.size()) {
        drops_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    slots_[head & mask_] = event;
    head_.store(head + 1, std::memory_order_release);
    return true;
}

std::size_t
SpanRing::drainInto(std::vector<SpanEvent> *out)
{
    ERC_ASSERT(out != nullptr, "drainInto() needs an output vector");
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::size_t n = static_cast<std::size_t>(head - tail);
    out->reserve(out->size() + n);
    while (tail != head) {
        out->push_back(slots_[tail & mask_]);
        ++tail;
    }
    tail_.store(tail, std::memory_order_release);
    return n;
}

FlightRecorder::FlightRecorder(const FlightRecorderOptions &options)
    : options_(options),
      id_(nextRecorderId()),
      epoch_(std::chrono::steady_clock::now())
{}

TraceContext
FlightRecorder::maybeStartTrace()
{
    if (options_.sampleEvery == 0)
        return {};
    const std::uint64_t n =
        submitted_.fetch_add(1, std::memory_order_relaxed);
    if (n % options_.sampleEvery != 0)
        return {};
    return {n + 1, kRootSpanId};
}

TraceContext
FlightRecorder::startBatchTrace()
{
    const std::uint64_t seq =
        batchSeq_.fetch_add(1, std::memory_order_relaxed);
    return {kBatchTraceBit | (seq + 1), kRootSpanId};
}

void
FlightRecorder::registerThisThread()
{
    if (!enabled())
        return;
    acquireRing();
}

ERC_HOT_PATH_ALLOW("ring registration slow path: runs once per thread, pre-triggered by registerThisThread() at worker startup before any AllocGate observes the steady loop")
SpanRing *
FlightRecorder::acquireRing()
{
    const std::uint64_t key = threadKey();
    std::lock_guard<std::mutex> lock(registryMu_);
    auto it = ringByThread_.find(key);
    if (it == ringByThread_.end()) {
        rings_.push_back(
            std::make_unique<SpanRing>(options_.ringCapacity));
        it = ringByThread_.emplace(key, rings_.size() - 1).first;
    }
    SpanRing *ring = rings_[it->second].get();
    t_ringCache = {id_, ring};
    return ring;
}

void
FlightRecorder::record(const SpanEvent &event) noexcept
{
    SpanRing *ring = t_ringCache.owner == id_ ? t_ringCache.ring
                                              : acquireRing();
    ring->tryPush(event);
}

std::int64_t
FlightRecorder::nowUs() const noexcept
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

std::vector<SpanEvent>
FlightRecorder::drain()
{
    std::vector<SpanEvent> out;
    std::lock_guard<std::mutex> lock(registryMu_);
    for (const auto &ring : rings_)
        ring->drainInto(&out);
    return out;
}

std::uint64_t
FlightRecorder::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(registryMu_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_)
        total += ring->drops();
    return total;
}

std::size_t
FlightRecorder::ringCount() const
{
    std::lock_guard<std::mutex> lock(registryMu_);
    return rings_.size();
}

} // namespace erec::obs
