#pragma once

/**
 * @file
 * The `erec_trace/v1` schema: the contract every exported
 * `*_traces.jsonl` artifact must satisfy, validated by promcheck in
 * the CI smoke stage so a broken exporter (or a causality bug in span
 * id assignment) fails the build instead of silently producing
 * garbage traces.
 *
 * Per trace:
 *  - every span closes after it opens (end >= start);
 *  - completed traces list spans in monotonic start order, and the
 *    completion timestamp covers every span end;
 *  - non-zero span ids are unique within the trace;
 *  - every non-zero parent id resolves to a span in the same trace
 *    (parents are never dropped while a child survives), and a parent
 *    never starts after its child ends.
 *
 * Legacy flat traces (all ids zero) remain valid: the causal checks
 * only engage where ids are present.
 */

#include <deque>
#include <string>
#include <vector>

#include "elasticrec/obs/trace.h"

namespace erec::obs {

/** Schema identifier promcheck reports against. */
inline constexpr const char *kTraceSchemaVersion = "erec_trace/v1";

/** Validate traces; returns one message per violation (empty = ok). */
std::vector<std::string> validateTraceSchema(
    const std::vector<QueryTrace> &traces);
std::vector<std::string> validateTraceSchema(
    const std::deque<QueryTrace> &traces);

} // namespace erec::obs
