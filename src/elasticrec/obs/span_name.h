#pragma once

/**
 * @file
 * Interned span names: the hot-path tracing contract is that span
 * records carry a small integer `NameId`, never a string. Call sites
 * register their names once at startup (file-scope `static const
 * NameId` initializers, or per-deployment interning in a constructor)
 * and pass the id on every record — the `trace-name-literal` lint rule
 * rejects string literals / `std::string` temporaries on trace calls
 * in library code, so the recorder stays alloc-free by construction.
 *
 * Both interning and id->string lookup are mutex-guarded; neither is
 * hot-path material. The hot path only ever *copies* a NameId into a
 * fixed-size record — resolution happens at drain/export time.
 */

#include <cstdint>
#include <string>
#include <string_view>

namespace erec::obs {

/** Index into the process-wide span-name table; 0 is reserved. */
using NameId = std::uint32_t;

/** NameId never returned by internSpanName (unset / unknown). */
inline constexpr NameId kInvalidNameId = 0;

/**
 * Register `name` in the process-wide table and return its id;
 * re-interning an existing name returns the same id. Startup-only:
 * takes a mutex and may allocate.
 */
NameId internSpanName(std::string_view name);

/**
 * The string interned under `id`; ids come only from internSpanName.
 * Returns "<invalid>" for kInvalidNameId or out-of-range ids so
 * exporters never crash on a corrupt record.
 */
const std::string &spanName(NameId id);

/** Number of interned names (diagnostics/tests). */
std::size_t spanNameCount();

} // namespace erec::obs
