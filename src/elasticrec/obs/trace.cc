#include "elasticrec/obs/trace.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::obs {

QueryTrace *
Tracer::maybeSample(SimTime arrival)
{
    if (sampleEvery_ == 0)
        return nullptr;
    const std::uint64_t n = seen_++;
    if (n % sampleEvery_ != 0)
        return nullptr;
    QueryTrace trace;
    trace.queryId = n;
    trace.arrival = arrival;
    traces_.push_back(std::move(trace));
    return &traces_.back();
}

void
Tracer::finish(QueryTrace *trace, SimTime completion)
{
    ERC_ASSERT(trace != nullptr, "finish() on a null trace");
    trace->completion = completion;
    trace->completed = true;
    std::stable_sort(trace->spans.begin(), trace->spans.end(),
                     [](const Span &a, const Span &b) {
                         return a.start < b.start;
                     });
}

void
Tracer::reset()
{
    seen_ = 0;
    traces_.clear();
}

} // namespace erec::obs
