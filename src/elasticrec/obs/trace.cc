#include "elasticrec/obs/trace.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::obs {

// ERC_HOT_PATH_ALLOW("trace storage appends only for the 1-in-N sampled queries; sampled queries are excluded from the zero-alloc pin by design")
QueryTrace *
Tracer::maybeSample(SimTime arrival)
{
    if (sampleEvery_ == 0)
        return nullptr;
    const std::uint64_t n = seen_++;
    if (n % sampleEvery_ != 0)
        return nullptr;
    QueryTrace trace;
    trace.queryId = n;
    trace.traceId = n + 1;
    trace.arrival = arrival;
    traces_.push_back(std::move(trace));
    return &traces_.back();
}

void
Tracer::finish(QueryTrace *trace, SimTime completion)
{
    ERC_ASSERT(trace != nullptr, "finish() on a null trace");
    trace->completion = completion;
    trace->completed = true;
    // Start-time order, with the structural span id as tie-break: a
    // child() id is always numerically larger than its parent's, so
    // equal-start parents (root at arrival vs. its queue child) still
    // serialize parent-before-child, which the erec_trace/v1 schema
    // requires.
    std::stable_sort(trace->spans.begin(), trace->spans.end(),
                     [](const Span &a, const Span &b) {
                         if (a.start != b.start)
                             return a.start < b.start;
                         return a.spanId < b.spanId;
                     });
}

void
Tracer::reset()
{
    seen_ = 0;
    traces_.clear();
}

} // namespace erec::obs
