#pragma once

/**
 * @file
 * Exporters for the observability layer.
 *
 *  - Prometheus text exposition format (the format the paper's metrics
 *    server serves to its scraper): HELP/TYPE headers, escaped label
 *    values, cumulative `_bucket{le=...}` histogram series plus `_sum`
 *    and `_count`.
 *  - JSON lines for query traces: one self-contained JSON object per
 *    line, with a strict reader so tooling (and tests) can round-trip
 *    what the writer emits.
 *
 * Output ordering is deterministic (families and children are stored
 * in ordered maps), so two identical runs export byte-identical text.
 */

#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

#include "elasticrec/obs/metric.h"
#include "elasticrec/obs/slo.h"
#include "elasticrec/obs/trace.h"

namespace erec::obs {

/** Escape a label value for the text format (backslash, quote, \n). */
std::string escapeLabelValue(const std::string &value);

/** Render the whole registry in Prometheus text exposition format. */
void writePrometheusText(std::ostream &os, const Registry &registry);
std::string toPrometheusText(const Registry &registry);

/** Write traces as JSON lines (one object per trace). */
void writeTraceJsonLines(std::ostream &os,
                         const std::deque<QueryTrace> &traces);
std::string toTraceJsonLines(const std::deque<QueryTrace> &traces);

/**
 * Parse JSON-lines traces as written by writeTraceJsonLines. Raises
 * ConfigError on malformed input.
 */
std::vector<QueryTrace> readTraceJsonLines(const std::string &text);

/** Optional side artifacts bundled with a metrics dump. */
struct ExportArtifacts
{
    /** Sampled query traces -> `<stem>_traces.jsonl` (null: skip). */
    const std::deque<QueryTrace> *traces = nullptr;
    /** Alert transitions -> `<stem>_alerts.jsonl` (null: skip). */
    const std::vector<AlertEvent> *alerts = nullptr;
};

/**
 * Dump one run's exports into a directory: `<dir>/<stem>.prom` plus
 * the artifact files selected in `artifacts`. The directory is created
 * if needed. This is the backend of the bench binaries'
 * `--metrics-out DIR` flag.
 */
void writeMetricsFiles(const std::string &dir, const std::string &stem,
                       const Registry &registry,
                       const ExportArtifacts &artifacts = {});

} // namespace erec::obs
