#include "elasticrec/obs/perfetto.h"

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <sstream>

namespace erec::obs {

namespace {

/** One rendered event line plus its sort key. */
struct EventLine
{
    std::int64_t ts = 0;
    std::uint64_t tid = 0;
    std::uint64_t order = 0;
    std::string json;
};

void
emitLines(std::ostream &os, std::vector<EventLine> lines)
{
    std::stable_sort(lines.begin(), lines.end(),
                     [](const EventLine &a, const EventLine &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         return a.order < b.order;
                     });
    os << "{\"traceEvents\":[\n";
    for (std::size_t i = 0; i < lines.size(); ++i) {
        os << lines[i].json;
        if (i + 1 < lines.size())
            os << ',';
        os << '\n';
    }
    os << "]}\n";
}

std::string
escapeName(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

void
writePerfettoJson(std::ostream &os, const std::deque<QueryTrace> &traces)
{
    std::vector<EventLine> lines;
    std::uint64_t order = 0;
    for (const QueryTrace &trace : traces) {
        const std::uint64_t tid =
            trace.traceId != 0 ? trace.traceId : trace.queryId + 1;
        for (const Span &span : trace.spans) {
            EventLine line;
            line.ts = span.start;
            line.tid = tid;
            line.order = order++;
            std::ostringstream oss;
            oss << "{\"name\":\"" << escapeName(span.name)
                << "\",\"ph\":\"X\",\"ts\":" << span.start
                << ",\"dur\":" << (span.end - span.start)
                << ",\"pid\":1,\"tid\":" << tid
                << ",\"args\":{\"span_id\":" << span.spanId
                << ",\"parent_id\":" << span.parentId << "}}";
            line.json = oss.str();
            lines.push_back(std::move(line));
        }
    }
    emitLines(os, std::move(lines));
}

void
writePerfettoJson(std::ostream &os, const std::vector<SpanEvent> &events)
{
    std::vector<EventLine> lines;
    std::uint64_t order = 0;
    std::uint64_t flow_id = 0;
    for (const SpanEvent &e : events) {
        const bool batch = (e.traceId & kBatchTraceBit) != 0;
        const std::uint64_t tid = e.traceId & ~kBatchTraceBit;
        // Batch traces live in a separate "process" track group so
        // per-query tracks stay readable.
        const int pid = batch ? 2 : 1;
        if (e.kind == EventKind::Span) {
            EventLine line;
            line.ts = e.startUs;
            line.tid = tid;
            line.order = order++;
            std::ostringstream oss;
            oss << "{\"name\":\"" << escapeName(spanName(e.name))
                << "\",\"ph\":\"X\",\"ts\":" << e.startUs
                << ",\"dur\":" << (e.endUs - e.startUs)
                << ",\"pid\":" << pid << ",\"tid\":" << tid
                << ",\"args\":{\"span_id\":" << e.spanId
                << ",\"parent_id\":" << e.parentId << ",\"arg\":" << e.arg
                << "}}";
            line.json = oss.str();
            lines.push_back(std::move(line));
            continue;
        }
        // Link: a flow arrow from the batch span ("s") to the member
        // query's root track ("f"). Both halves share cat+id+name.
        const std::uint64_t id = ++flow_id;
        const std::uint64_t member_tid = e.arg & ~kBatchTraceBit;
        {
            EventLine line;
            line.ts = e.startUs;
            line.tid = tid;
            line.order = order++;
            std::ostringstream oss;
            oss << "{\"name\":\"" << escapeName(spanName(e.name))
                << "\",\"ph\":\"s\",\"cat\":\"batch\",\"id\":" << id
                << ",\"ts\":" << e.startUs << ",\"pid\":" << pid
                << ",\"tid\":" << tid << "}";
            line.json = oss.str();
            lines.push_back(std::move(line));
        }
        {
            EventLine line;
            line.ts = e.endUs;
            line.tid = member_tid;
            line.order = order++;
            std::ostringstream oss;
            oss << "{\"name\":\"" << escapeName(spanName(e.name))
                << "\",\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"batch\","
                << "\"id\":" << id << ",\"ts\":" << e.endUs
                << ",\"pid\":1,\"tid\":" << member_tid << "}";
            line.json = oss.str();
            lines.push_back(std::move(line));
        }
    }
    emitLines(os, std::move(lines));
}

std::string
toPerfettoJson(const std::deque<QueryTrace> &traces)
{
    std::ostringstream oss;
    writePerfettoJson(oss, traces);
    return oss.str();
}

std::string
toPerfettoJson(const std::vector<SpanEvent> &events)
{
    std::ostringstream oss;
    writePerfettoJson(oss, events);
    return oss.str();
}

namespace {

/** Extract `"key":<integer>` from an event line; false when absent. */
bool
findIntField(const std::string &line, const std::string &key,
             std::int64_t *out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    std::size_t i = at + needle.size();
    bool neg = false;
    if (i < line.size() && line[i] == '-') {
        neg = true;
        ++i;
    }
    if (i >= line.size() || line[i] < '0' || line[i] > '9')
        return false;
    std::int64_t v = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
        v = v * 10 + (line[i] - '0');
        ++i;
    }
    *out = neg ? -v : v;
    return true;
}

bool
findStrField(const std::string &line, const std::string &key,
             std::string *out)
{
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    const std::size_t begin = at + needle.size();
    const std::size_t end = line.find('"', begin);
    if (end == std::string::npos)
        return false;
    *out = line.substr(begin, end - begin);
    return true;
}

} // namespace

std::vector<std::string>
validatePerfettoJson(const std::string &text)
{
    std::vector<std::string> errors;
    std::vector<std::string> lines;
    {
        std::istringstream iss(text);
        std::string line;
        while (std::getline(iss, line)) {
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            lines.push_back(line);
        }
    }
    if (lines.size() < 2 || lines.front() != "{\"traceEvents\":[" ||
        lines.back() != "]}") {
        errors.push_back(
            "not an erec_trace/v1 perfetto file: expected a "
            "{\"traceEvents\":[ ... ]} envelope with one event per "
            "line");
        return errors;
    }

    std::int64_t prev_ts = -1;
    std::vector<std::int64_t> flow_starts;
    std::vector<std::int64_t> flow_finishes;
    for (std::size_t i = 1; i + 1 < lines.size(); ++i) {
        const std::string &line = lines[i];
        const std::string where = "event " + std::to_string(i);
        std::string name;
        std::string ph;
        std::int64_t ts = 0;
        std::int64_t pid = 0;
        std::int64_t tid = 0;
        if (!findStrField(line, "name", &name) ||
            !findStrField(line, "ph", &ph) ||
            !findIntField(line, "ts", &ts) ||
            !findIntField(line, "pid", &pid) ||
            !findIntField(line, "tid", &tid)) {
            errors.push_back(where +
                             ": missing required field "
                             "(name/ph/ts/pid/tid)");
            continue;
        }
        if (ts < prev_ts)
            errors.push_back(where + ": timestamp " +
                             std::to_string(ts) +
                             " goes backwards (previous " +
                             std::to_string(prev_ts) + ")");
        prev_ts = ts;
        if (ph == "X") {
            std::int64_t dur = 0;
            if (!findIntField(line, "dur", &dur) || dur < 0)
                errors.push_back(where +
                                 ": complete event needs dur >= 0");
        } else if (ph == "s" || ph == "f") {
            std::int64_t id = 0;
            std::string cat;
            if (!findIntField(line, "id", &id) ||
                !findStrField(line, "cat", &cat)) {
                errors.push_back(where + ": flow event needs id + cat");
                continue;
            }
            (ph == "s" ? flow_starts : flow_finishes).push_back(id);
        } else {
            errors.push_back(where + ": unsupported phase '" + ph +
                             "'");
        }
    }
    std::sort(flow_starts.begin(), flow_starts.end());
    std::sort(flow_finishes.begin(), flow_finishes.end());
    for (const std::int64_t id : flow_starts)
        if (!std::binary_search(flow_finishes.begin(),
                                flow_finishes.end(), id))
            errors.push_back("flow " + std::to_string(id) +
                             ": link start has no finish (unresolved "
                             "batch->member link)");
    for (const std::int64_t id : flow_finishes)
        if (!std::binary_search(flow_starts.begin(), flow_starts.end(),
                                id))
            errors.push_back("flow " + std::to_string(id) +
                             ": link finish has no start (unresolved "
                             "batch->member link)");
    return errors;
}

} // namespace erec::obs
