#include "elasticrec/obs/trace_schema.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace erec::obs {

namespace {

void
validateOne(const QueryTrace &trace, std::vector<std::string> *errors)
{
    const auto fail = [&](const std::string &what) {
        std::ostringstream oss;
        oss << "trace query_id=" << trace.queryId << ": " << what;
        errors->push_back(oss.str());
    };

    std::map<std::uint64_t, const Span *> by_id;
    SimTime prev_start = 0;
    SimTime max_end = 0;
    bool first = true;
    for (const Span &span : trace.spans) {
        if (span.end < span.start)
            fail("span '" + span.name + "' ends before it starts");
        max_end = std::max(max_end, span.end);
        if (trace.completed) {
            // Open traces are exported mid-flight in whatever order
            // their legs finished; only closed traces promise sorted
            // spans.
            if (!first && span.start < prev_start)
                fail("span '" + span.name +
                     "' breaks monotonic start order");
            prev_start = span.start;
            first = false;
        }
        if (span.spanId != 0) {
            if (!by_id.emplace(span.spanId, &span).second)
                fail("duplicate span id " +
                     std::to_string(span.spanId));
        }
    }
    for (const Span &span : trace.spans) {
        if (span.parentId == 0)
            continue;
        const auto parent = by_id.find(span.parentId);
        if (parent == by_id.end()) {
            // Open traces are exported mid-flight: enclosing spans
            // (e.g. the root query span) only close at completion, so
            // a dangling parent is legitimate there.
            if (trace.completed)
                fail("span '" + span.name +
                     "' links to missing parent " +
                     std::to_string(span.parentId));
            continue;
        }
        if (parent->second->start > span.end)
            fail("span '" + span.name +
                 "' completes before its parent '" +
                 parent->second->name + "' starts");
    }
    if (trace.completed) {
        if (trace.completion < trace.arrival)
            fail("completion precedes arrival");
        if (trace.completion < max_end)
            fail("a span outlives the trace completion");
    }
}

} // namespace

template <typename Container>
static std::vector<std::string>
validateImpl(const Container &traces)
{
    std::vector<std::string> errors;
    for (const QueryTrace &trace : traces)
        validateOne(trace, &errors);
    return errors;
}

std::vector<std::string>
validateTraceSchema(const std::vector<QueryTrace> &traces)
{
    return validateImpl(traces);
}

std::vector<std::string>
validateTraceSchema(const std::deque<QueryTrace> &traces)
{
    return validateImpl(traces);
}

} // namespace erec::obs
