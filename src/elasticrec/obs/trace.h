#pragma once

/**
 * @file
 * Sampled per-query tracing: the stand-in for the request-level
 * visibility the paper's testbed gets from routing every RPC through
 * Linkerd. A sampled query carries a QueryTrace with one span per
 * pipeline stage (arrival -> frontend LB -> dense compute in parallel
 * with per-shard gather RPCs -> sparse pod queue/service -> merge ->
 * completion), so a slow query can be attributed to the stage that
 * caused it.
 *
 * Sampling is deterministic (every Nth arrival) so traced runs stay
 * bit-reproducible, and the whole layer sits behind a cheap enabled()
 * check: with sampling off, the simulator's hot loop does one integer
 * compare per query and allocates nothing.
 */

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "elasticrec/common/units.h"
#include "elasticrec/obs/span_name.h"
#include "elasticrec/obs/trace_context.h"

namespace erec::obs {

/** One timed pipeline stage of a traced query. */
struct Span
{
    std::string name;
    SimTime start = 0;
    SimTime end = 0;
    /** Causal position in the trace's span tree. 0 ids mean "flat
     *  legacy span" (pre-causal traces still parse and report). */
    std::uint64_t spanId = 0;
    std::uint64_t parentId = 0;
};

/** The full record of one sampled query. */
struct QueryTrace
{
    /** Arrival index of the query in its run (0-based). */
    std::uint64_t queryId = 0;
    /** Causal trace id (queryId + 1 for sampled queries; 0 legacy). */
    std::uint64_t traceId = 0;
    SimTime arrival = 0;
    /** Valid only when completed (lost queries keep 0). */
    SimTime completion = 0;
    /** False when the query died with a crashed pod or the run ended. */
    bool completed = false;
    std::vector<Span> spans;

    void addSpan(std::string name, SimTime start, SimTime end)
    {
        spans.push_back({std::move(name), start, end, 0, 0});
    }

    /** Causal span: interned name plus tree position. Library call
     *  sites use this form (the trace-name-literal lint rule bans
     *  string temporaries on trace calls). */
    void addSpan(NameId name, SimTime start, SimTime end,
                 std::uint64_t span_id, std::uint64_t parent_id)
    {
        spans.push_back({spanName(name), start, end, span_id,
                         parent_id});
    }
};

class Tracer
{
  public:
    /** @param sample_every Trace one query in every `sample_every`
     *        arrivals; 0 disables tracing entirely. */
    explicit Tracer(std::uint32_t sample_every = 0)
        : sampleEvery_(sample_every)
    {}

    bool enabled() const { return sampleEvery_ != 0; }
    std::uint32_t sampleEvery() const { return sampleEvery_; }

    /**
     * Account one arrival; returns a trace to fill when this arrival
     * is sampled, nullptr otherwise. Returned pointers stay valid for
     * the tracer's lifetime.
     */
    QueryTrace *maybeSample(SimTime arrival);

    /** Close a trace: stamp completion and sort spans by start time. */
    void finish(QueryTrace *trace, SimTime completion);

    /** Arrivals seen (sampled or not). */
    std::uint64_t seen() const { return seen_; }

    const std::deque<QueryTrace> &traces() const { return traces_; }

    void reset();

  private:
    std::uint32_t sampleEvery_;
    std::uint64_t seen_ = 0;
    std::deque<QueryTrace> traces_;
};

} // namespace erec::obs
