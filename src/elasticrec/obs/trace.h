#pragma once

/**
 * @file
 * Sampled per-query tracing: the stand-in for the request-level
 * visibility the paper's testbed gets from routing every RPC through
 * Linkerd. A sampled query carries a QueryTrace with one span per
 * pipeline stage (arrival -> frontend LB -> dense compute in parallel
 * with per-shard gather RPCs -> sparse pod queue/service -> merge ->
 * completion), so a slow query can be attributed to the stage that
 * caused it.
 *
 * Sampling is deterministic (every Nth arrival) so traced runs stay
 * bit-reproducible, and the whole layer sits behind a cheap enabled()
 * check: with sampling off, the simulator's hot loop does one integer
 * compare per query and allocates nothing.
 */

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "elasticrec/common/units.h"

namespace erec::obs {

/** One timed pipeline stage of a traced query. */
struct Span
{
    std::string name;
    SimTime start = 0;
    SimTime end = 0;
};

/** The full record of one sampled query. */
struct QueryTrace
{
    /** Arrival index of the query in its run (0-based). */
    std::uint64_t queryId = 0;
    SimTime arrival = 0;
    /** Valid only when completed (lost queries keep 0). */
    SimTime completion = 0;
    /** False when the query died with a crashed pod or the run ended. */
    bool completed = false;
    std::vector<Span> spans;

    void addSpan(std::string name, SimTime start, SimTime end)
    {
        spans.push_back({std::move(name), start, end});
    }
};

class Tracer
{
  public:
    /** @param sample_every Trace one query in every `sample_every`
     *        arrivals; 0 disables tracing entirely. */
    explicit Tracer(std::uint32_t sample_every = 0)
        : sampleEvery_(sample_every)
    {}

    bool enabled() const { return sampleEvery_ != 0; }
    std::uint32_t sampleEvery() const { return sampleEvery_; }

    /**
     * Account one arrival; returns a trace to fill when this arrival
     * is sampled, nullptr otherwise. Returned pointers stay valid for
     * the tracer's lifetime.
     */
    QueryTrace *maybeSample(SimTime arrival);

    /** Close a trace: stamp completion and sort spans by start time. */
    void finish(QueryTrace *trace, SimTime completion);

    /** Arrivals seen (sampled or not). */
    std::uint64_t seen() const { return seen_; }

    const std::deque<QueryTrace> &traces() const { return traces_; }

    void reset();

  private:
    std::uint32_t sampleEvery_;
    std::uint64_t seen_ = 0;
    std::deque<QueryTrace> traces_;
};

} // namespace erec::obs
