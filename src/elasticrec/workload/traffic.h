#pragma once

/**
 * @file
 * Input query traffic modeling: piecewise-constant target-QPS patterns
 * and open-loop Poisson arrival processes driven by them. Used for the
 * paper's dynamic-traffic experiment (Figure 19).
 */

#include <vector>

#include "elasticrec/common/rng.h"
#include "elasticrec/common/units.h"

namespace erec::workload {

/**
 * A piecewise-constant target-QPS schedule. Steps are (startTime, qps)
 * pairs; the rate before the first step is the first step's rate.
 */
class TrafficPattern
{
  public:
    struct Step
    {
        SimTime start;
        double qps;
    };

    explicit TrafficPattern(std::vector<Step> steps);

    /** Constant traffic at the given rate. */
    static TrafficPattern constant(double qps);

    /**
     * The Figure 19 schedule: traffic rises in `upSteps` equal increments
     * between rampStart and rampEnd, holds, then drops back to the base
     * rate at dropTime.
     */
    // Grandfathered positional defaults predating the options-struct
    // convention.
    static TrafficPattern fig19(double base_qps = 20.0, // erec-lint: allow(excess-default-params)
                                double peak_qps = 100.0, int up_steps = 5,
                                SimTime ramp_start = 5 * units::kMinute,
                                SimTime ramp_end = 20 * units::kMinute,
                                SimTime drop_time = 24 * units::kMinute);

    /**
     * Bursty random-walk traffic: every `step` the rate multiplies by
     * a random factor in [0.5, 2.0], clamped to [min_qps, max_qps].
     * Used to stress-test autoscaling beyond the paper's smooth ramp.
     */
    static TrafficPattern randomWalk(double start_qps, double min_qps,
                                     double max_qps, SimTime step,
                                     SimTime duration,
                                     std::uint64_t seed = 17);

    struct DiurnalOptions
    {
        /** Rate at the daily trough (t = 0). */
        double troughQps = 20.0;
        /** Rate at the daily peak (t = period / 2). */
        double peakQps = 100.0;
        /** Length of one trough-to-trough cycle. */
        SimTime period = 60 * units::kMinute;
        /** Width of each piecewise-constant step. */
        SimTime step = units::kMinute;
        /** Total schedule length (cycles repeat until here). */
        SimTime duration = 120 * units::kMinute;
    };

    /**
     * Smooth diurnal (day/night) traffic: a raised-cosine cycle between
     * troughQps and peakQps, discretized into piecewise-constant steps.
     * This is the shape production recommender fleets autoscale
     * against — long, predictable swells rather than fig19's abrupt
     * staircase — and the schedule the sim throughput bench replays at
     * million-query scale.
     */
    static TrafficPattern diurnal(const DiurnalOptions &options);

    /** Target rate at simulated time t (queries per second). */
    double qpsAt(SimTime t) const;

    /** Last moment at which the rate changes. */
    SimTime lastChange() const;

    const std::vector<Step> &steps() const { return steps_; }

  private:
    std::vector<Step> steps_;
};

/**
 * Open-loop Poisson arrival process whose instantaneous rate follows a
 * TrafficPattern. Piecewise-constant rates are handled exactly: an
 * exponential gap that would cross a rate boundary is restarted at the
 * boundary with the new rate (memorylessness makes this exact).
 */
class PoissonArrivals
{
  public:
    PoissonArrivals(TrafficPattern pattern, std::uint64_t seed = 7);

    /**
     * Time of the next arrival strictly after `now`. Returns
     * std::numeric_limits<SimTime>::max() when the pattern's rate has
     * dropped to zero with no later step (no more arrivals, ever).
     */
    SimTime nextAfter(SimTime now);

    const TrafficPattern &pattern() const { return pattern_; }

  private:
    TrafficPattern pattern_;
    Rng rng_;
};

} // namespace erec::workload
