#pragma once

/**
 * @file
 * Inference query modeling.
 *
 * A query carries a batch of items to rank for one user (batch size 32
 * following the paper's query model, Section V-C). For every embedding
 * table it carries an index array and an offset array in exactly the
 * layout of the paper's Figure 11: offsets[i] is the position within the
 * index array where batch item i's lookups begin.
 */

#include <cstdint>
#include <vector>

#include "elasticrec/common/rng.h"
#include "elasticrec/common/units.h"
#include "elasticrec/obs/trace_context.h"
#include "elasticrec/kernels/kernel_backend.h"
#include "elasticrec/workload/access_distribution.h"

namespace erec::workload {

/** Index/offset arrays addressing one embedding table (Figure 11). */
struct SparseLookup
{
    /** Embedding row IDs to gather, grouped by batch item. */
    std::vector<std::uint32_t> indices;
    /** Start position of each batch item's IDs within `indices`. */
    std::vector<std::uint32_t> offsets;

    /** Number of batch items encoded. */
    std::size_t batchSize() const { return offsets.size(); }
    /** Total number of gathers. */
    std::size_t numGathers() const { return indices.size(); }

    /**
     * Raw kernel-layer view of this lookup, valid while the vectors
     * are alive and unmodified — what gatherPool consumes.
     */
    kernels::GatherRequest view() const
    {
        return kernels::GatherRequest(indices, offsets);
    }
};

/** One inference request. */
struct Query
{
    std::uint64_t id = 0;
    SimTime arrival = 0;
    std::uint32_t batchSize = 0;
    /** Causal trace context stamped by the sampling dispatcher and
     *  propagated through queues and shard-server calls — the moral
     *  equivalent of a traceparent header on the request. Unsampled
     *  queries carry the zero context and record nothing. */
    obs::TraceContext trace;
    /** One lookup set per embedding table. */
    std::vector<SparseLookup> lookups;

    /** Total gathers across all tables. */
    std::size_t totalGathers() const;
};

/** Static query-shape parameters. */
struct QueryShape
{
    std::uint32_t batchSize = 32;
    std::uint32_t numTables = 10;
    /** Embedding gathers per batch item per table (pooling factor). */
    std::uint32_t gathersPerItem = 128;
};

/**
 * Generates queries whose table lookups follow per-table access
 * distributions.
 *
 * Distributions produce hotness *ranks*; an optional per-table ID map
 * (e.g. the inverse of the hotness sort permutation) converts ranks to
 * original table IDs, modeling unsorted production tables
 * (Figure 8(a)). With no ID map, emitted IDs are already in sorted-
 * hotness space (Figure 8(b)).
 */
class QueryGenerator
{
  public:
    /**
     * @param shape Query shape (batch size, tables, pooling factor).
     * @param dists One access distribution per table (size must equal
     *              shape.numTables); all tables may share one pointer.
     * @param seed  Seed for this generator's private RNG stream.
     */
    QueryGenerator(QueryShape shape,
                   std::vector<AccessDistributionPtr> dists,
                   std::uint64_t seed = 1);

    /** Convenience: all tables share one distribution. */
    QueryGenerator(QueryShape shape, AccessDistributionPtr dist,
                   std::uint64_t seed = 1);

    /**
     * Install a rank -> original-ID map for a table. The map must be a
     * permutation of [0, numRows).
     */
    void setIdMap(std::uint32_t table, std::vector<std::uint32_t> map);

    /** Generate the next query, stamped with the given arrival time. */
    Query next(SimTime arrival = 0);

    const QueryShape &shape() const { return shape_; }

  private:
    QueryShape shape_;
    std::vector<AccessDistributionPtr> dists_;
    std::vector<std::vector<std::uint32_t>> idMaps_;
    Rng rng_;
    std::uint64_t nextId_ = 0;
};

} // namespace erec::workload
