#include "elasticrec/workload/access_distribution.h"

#include <algorithm>
#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::workload {

// ---------------------------------------------------------------------
// LocalityDistribution
// ---------------------------------------------------------------------

LocalityDistribution::LocalityDistribution(std::uint64_t num_rows, double p,
                                           double hot_row_fraction,
                                           double hot_shape,
                                           double cold_shape)
    : numRows_(num_rows), p_(p), hotFrac_(hot_row_fraction),
      hotShape_(hot_shape), coldShape_(cold_shape)
{
    ERC_CHECK(num_rows > 0, "table must have at least one row");
    ERC_CHECK(p > 0.0 && p < 1.0, "locality P must be in (0, 1)");
    ERC_CHECK(hot_row_fraction > 0.0 && hot_row_fraction < 1.0,
              "hot row fraction must be in (0, 1)");
    ERC_CHECK(hot_shape > 0.0 && cold_shape > 0.0,
              "CDF shape exponents must be positive");
}

double
LocalityDistribution::cdfAtFraction(double u) const
{
    if (u <= 0.0)
        return 0.0;
    if (u >= 1.0)
        return 1.0;
    if (u <= hotFrac_)
        return p_ * std::pow(u / hotFrac_, hotShape_);
    return p_ +
           (1.0 - p_) *
               std::pow((u - hotFrac_) / (1.0 - hotFrac_), coldShape_);
}

std::uint64_t
LocalityDistribution::sampleRank(Rng &rng) const
{
    const double v = rng.uniform();
    double u;
    if (v < p_) {
        u = hotFrac_ * std::pow(v / p_, 1.0 / hotShape_);
    } else {
        u = hotFrac_ +
            (1.0 - hotFrac_) *
                std::pow((v - p_) / (1.0 - p_), 1.0 / coldShape_);
    }
    auto rank = static_cast<std::uint64_t>(
        u * static_cast<double>(numRows_));
    return std::min(rank, numRows_ - 1);
}

double
LocalityDistribution::massOfTopRows(std::uint64_t x) const
{
    if (x >= numRows_)
        return 1.0;
    const double u =
        static_cast<double>(x) / static_cast<double>(numRows_);
    return cdfAtFraction(u);
}

// ---------------------------------------------------------------------
// ZipfDistribution (Hormann rejection-inversion, as popularized by the
// Apache Commons RejectionInversionZipfSampler)
// ---------------------------------------------------------------------

ZipfDistribution::ZipfDistribution(std::uint64_t num_rows, double skew)
    : numRows_(num_rows), s_(skew)
{
    ERC_CHECK(num_rows > 0, "table must have at least one row");
    ERC_CHECK(skew > 0.0, "zipf skew must be positive");
    totalMass_ = harmonic(static_cast<double>(numRows_));
    hImaxPlus1_ = hIntegral(static_cast<double>(numRows_) + 0.5);
    hIx1_ = hIntegral(1.5) - 1.0;
    sBound_ = 2.0 - hIntegralInverse(hIntegral(2.5) - h(2.0));
}

double
ZipfDistribution::harmonic(double n) const
{
    // Generalized harmonic number H_{n,s} via Euler-Maclaurin; exact sum
    // for small n.
    if (n <= 64) {
        double sum = 0.0;
        for (std::uint64_t k = 1; k <= static_cast<std::uint64_t>(n); ++k)
            sum += std::pow(static_cast<double>(k), -s_);
        return sum;
    }
    double sum = 0.0;
    constexpr int kExact = 16;
    for (int k = 1; k <= kExact; ++k)
        sum += std::pow(static_cast<double>(k), -s_);
    const double a = kExact;
    if (std::abs(s_ - 1.0) < 1e-12) {
        sum += std::log(n / a);
    } else {
        sum += (std::pow(n, 1.0 - s_) - std::pow(a, 1.0 - s_)) / (1.0 - s_);
    }
    sum += 0.5 * (std::pow(n, -s_) - std::pow(a, -s_));
    return sum;
}

double
ZipfDistribution::hIntegral(double x) const
{
    const double log_x = std::log(x);
    // Integral of x^-s: (x^(1-s) - 1)/(1-s), with the s == 1 limit log x.
    const double t = log_x * (1.0 - s_);
    // Use expm1-based evaluation for numerical stability near s == 1.
    double helper;
    if (std::abs(t) > 1e-8)
        helper = std::expm1(t) / t;
    else
        helper = 1.0 + t * 0.5 * (1.0 + t / 3.0 * (1.0 + 0.25 * t));
    return log_x * helper;
}

double
ZipfDistribution::hIntegralInverse(double x) const
{
    double t = x * (1.0 - s_);
    if (t < -1.0)
        t = -1.0;
    double log_res;
    if (std::abs(t) > 1e-8)
        log_res = std::log1p(t) / (1.0 - s_);
    else
        log_res = x * (1.0 + t * (-0.5 + t * (1.0 / 3.0 - 0.25 * t)));
    return std::exp(log_res);
}

double
ZipfDistribution::h(double x) const
{
    return std::exp(-s_ * std::log(x));
}

std::uint64_t
ZipfDistribution::sampleRank(Rng &rng) const
{
    // Returns a 1-based zipf value in [1, numRows], converted to a
    // 0-based rank on return.
    while (true) {
        const double u =
            hImaxPlus1_ + rng.uniform() * (hIx1_ - hImaxPlus1_);
        const double x = hIntegralInverse(u);
        auto k = static_cast<double>(static_cast<std::uint64_t>(x + 0.5));
        k = std::clamp(k, 1.0, static_cast<double>(numRows_));
        if (k - x <= sBound_ || u >= hIntegral(k + 0.5) - h(k)) {
            return static_cast<std::uint64_t>(k) - 1;
        }
    }
}

double
ZipfDistribution::massOfTopRows(std::uint64_t x) const
{
    if (x == 0)
        return 0.0;
    if (x >= numRows_)
        return 1.0;
    return harmonic(static_cast<double>(x)) / totalMass_;
}

// ---------------------------------------------------------------------
// PiecewiseCdfDistribution
// ---------------------------------------------------------------------

PiecewiseCdfDistribution::PiecewiseCdfDistribution(
    std::uint64_t num_rows, std::vector<Anchor> anchors)
    : numRows_(num_rows), anchors_(std::move(anchors))
{
    ERC_CHECK(num_rows > 0, "table must have at least one row");
    ERC_CHECK(anchors_.size() >= 2, "need at least two CDF anchors");
    // Normalize: force endpoints and validate monotonicity.
    if (anchors_.front().rowFraction > 0.0)
        anchors_.insert(anchors_.begin(), Anchor{0.0, 0.0});
    if (anchors_.back().rowFraction < 1.0)
        anchors_.push_back(Anchor{1.0, 1.0});
    anchors_.front() = Anchor{0.0, 0.0};
    anchors_.back() = Anchor{1.0, 1.0};
    for (std::size_t i = 1; i < anchors_.size(); ++i) {
        ERC_CHECK(anchors_[i].rowFraction >= anchors_[i - 1].rowFraction &&
                      anchors_[i].massFraction >=
                          anchors_[i - 1].massFraction,
                  "CDF anchors must be monotone");
    }
}

std::uint64_t
PiecewiseCdfDistribution::sampleRank(Rng &rng) const
{
    const double v = rng.uniform();
    // Find the segment that brackets mass v, then invert linearly.
    auto it = std::lower_bound(
        anchors_.begin(), anchors_.end(), v,
        [](const Anchor &a, double mass) { return a.massFraction < mass; });
    if (it == anchors_.begin())
        ++it;
    if (it == anchors_.end())
        --it;
    const Anchor &hi = *it;
    const Anchor &lo = *(it - 1);
    const double dm = hi.massFraction - lo.massFraction;
    const double frac = dm > 0 ? (v - lo.massFraction) / dm : 0.0;
    const double u =
        lo.rowFraction + frac * (hi.rowFraction - lo.rowFraction);
    auto rank = static_cast<std::uint64_t>(
        u * static_cast<double>(numRows_));
    return std::min(rank, numRows_ - 1);
}

double
PiecewiseCdfDistribution::massOfTopRows(std::uint64_t x) const
{
    if (x >= numRows_)
        return 1.0;
    const double u =
        static_cast<double>(x) / static_cast<double>(numRows_);
    auto it = std::lower_bound(
        anchors_.begin(), anchors_.end(), u,
        [](const Anchor &a, double uu) { return a.rowFraction < uu; });
    if (it == anchors_.begin())
        ++it;
    if (it == anchors_.end())
        --it;
    const Anchor &hi = *it;
    const Anchor &lo = *(it - 1);
    const double du = hi.rowFraction - lo.rowFraction;
    const double frac = du > 0 ? (u - lo.rowFraction) / du : 0.0;
    return lo.massFraction + frac * (hi.massFraction - lo.massFraction);
}

// ---------------------------------------------------------------------
// UniformDistribution
// ---------------------------------------------------------------------

UniformDistribution::UniformDistribution(std::uint64_t num_rows)
    : numRows_(num_rows)
{
    ERC_CHECK(num_rows > 0, "table must have at least one row");
}

std::uint64_t
UniformDistribution::sampleRank(Rng &rng) const
{
    return rng.uniformInt(numRows_);
}

double
UniformDistribution::massOfTopRows(std::uint64_t x) const
{
    if (x >= numRows_)
        return 1.0;
    return static_cast<double>(x) / static_cast<double>(numRows_);
}

} // namespace erec::workload
