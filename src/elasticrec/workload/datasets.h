#pragma once

/**
 * @file
 * Synthetic stand-ins for the real-world dataset access distributions
 * used in the paper's Figure 6: Amazon Books, Criteo Display Ads and
 * MovieLens.
 *
 * The raw datasets are not shipped with this repository; what the
 * evaluation depends on is only the *shape* of the sorted access
 * frequency curve (a power-law where, e.g., the top 10% of MovieLens
 * items cover 94% of accesses). Each factory below returns a
 * PiecewiseCdfDistribution whose anchors reproduce the published curve
 * shape: the top-10% coverage (locality P) and the long, thin tail.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "elasticrec/workload/access_distribution.h"

namespace erec::workload {

/** Descriptor of a synthesized dataset access shape. */
struct DatasetShape
{
    std::string name;
    std::uint64_t numRows;
    /** Fraction of accesses covered by the top 10% hottest rows. */
    double localityP;
    AccessDistributionPtr distribution;
};

/**
 * Amazon Books review dataset shape [6]: ~2.9M book items with a strong
 * head (top 10% of items cover about 85% of review interactions).
 */
DatasetShape amazonBooks();

/**
 * Criteo Display Advertising Challenge shape [8]: multi-million-entry
 * categorical features; top 10% of entries cover roughly 90% of lookups.
 */
DatasetShape criteo();

/**
 * MovieLens shape [16]: ~60K movies where the top 10% cover 94% of
 * ratings (the P = 94% figure quoted in the paper, Section V-C).
 */
DatasetShape movieLens();

/** All three shapes, in the paper's Figure 6 order. */
std::vector<DatasetShape> allDatasetShapes();

/**
 * Sorted access-frequency curve (Figure 6): expected access count for
 * each of `points` geometrically spaced rank positions, assuming
 * `totalAccesses` lookups. Returned pairs are (rank, expectedCount).
 */
std::vector<std::pair<std::uint64_t, double>>
sortedFrequencyCurve(const AccessDistribution &dist,
                     std::uint64_t total_accesses, int points = 64);

} // namespace erec::workload
