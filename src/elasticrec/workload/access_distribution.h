#pragma once

/**
 * @file
 * Embedding-table access distributions.
 *
 * All distributions are defined over *hotness rank* space: rank 0 is the
 * hottest row, rank (numRows-1) the coldest. Real tables store rows in an
 * arbitrary order; the embedding module composes these distributions with
 * a permutation to obtain original-ID access streams (Figure 8(a) vs (b)
 * in the paper).
 *
 * Every distribution exposes its exact cumulative mass function
 * massOfTopRows(x): the fraction of all accesses that fall on the x
 * hottest rows. This is the CDF used by the paper's deployment-cost model
 * (Algorithm 1, line 11).
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "elasticrec/common/rng.h"

namespace erec::workload {

/** Interface for a hotness-ranked access distribution. */
class AccessDistribution
{
  public:
    virtual ~AccessDistribution() = default;

    /** Number of rows (embedding vectors) in the table. */
    virtual std::uint64_t numRows() const = 0;

    /** Sample a hotness rank in [0, numRows). */
    virtual std::uint64_t sampleRank(Rng &rng) const = 0;

    /**
     * Fraction of total accesses covered by the x hottest rows
     * (x in [0, numRows]). Monotone non-decreasing with
     * massOfTopRows(0) == 0 and massOfTopRows(numRows) == 1.
     */
    virtual double massOfTopRows(std::uint64_t x) const = 0;

    /**
     * Locality metric P from the paper: the fraction of accesses covered
     * by the top 10% hottest rows.
     */
    double localityP() const { return massOfTopRows(numRows() / 10); }
};

/**
 * The paper's locality model. A fraction `hotRowFraction` of rows (10% by
 * default) receives fraction P of all accesses. Within the hot and cold
 * regions mass decays as a power law, giving the concave sorted-frequency
 * curves of Figure 6.
 *
 * The CDF over the normalized rank u in [0, 1] is
 *   F(u) = P * (u/h)^a                      for u <= h
 *   F(u) = P + (1-P) * ((u-h)/(1-h))^b      for u >  h
 * with h = hotRowFraction, a = hotShape (< 1, strong skew inside the hot
 * set) and b = coldShape (~1, near uniform over cold rows). Sampling is
 * exact inverse-CDF, so the analytic CDF and the empirical stream agree.
 */
class LocalityDistribution : public AccessDistribution
{
  public:
    // Grandfathered positional defaults predating the options-struct
    // convention.
    LocalityDistribution(std::uint64_t num_rows, // erec-lint: allow(excess-default-params)
                         double p, double hot_row_fraction = 0.10,
                         double hot_shape = 0.35, double cold_shape = 1.0);

    std::uint64_t numRows() const override { return numRows_; }
    std::uint64_t sampleRank(Rng &rng) const override;
    double massOfTopRows(std::uint64_t x) const override;

    double p() const { return p_; }
    double hotRowFraction() const { return hotFrac_; }

  private:
    double cdfAtFraction(double u) const;

    std::uint64_t numRows_;
    double p_;
    double hotFrac_;
    double hotShape_;
    double coldShape_;
};

/**
 * Classic Zipf distribution over ranks: P(rank k) ~ 1/(k+1)^s.
 *
 * Sampling uses Hormann's rejection-inversion so it is O(1) even for
 * tables with tens of millions of rows. The cumulative mass function is
 * computed from the generalized harmonic number approximation.
 */
class ZipfDistribution : public AccessDistribution
{
  public:
    ZipfDistribution(std::uint64_t num_rows, double skew);

    std::uint64_t numRows() const override { return numRows_; }
    std::uint64_t sampleRank(Rng &rng) const override;
    double massOfTopRows(std::uint64_t x) const override;

    double skew() const { return s_; }

  private:
    double harmonic(double n) const;
    double hIntegral(double x) const;
    double hIntegralInverse(double x) const;
    double h(double x) const;

    std::uint64_t numRows_;
    double s_;
    double totalMass_;
    // Rejection-inversion precomputed constants.
    double hImaxPlus1_;
    double hIx1_;
    double sBound_;
};

/**
 * Piecewise CDF distribution described by anchor points
 * (rowFraction, massFraction). Used to mimic the sorted access-frequency
 * shape of real datasets (Amazon Books, Criteo, MovieLens) without the
 * raw data; see workload/datasets.h.
 *
 * The CDF is linearly interpolated between anchors and sampled by exact
 * inversion.
 */
class PiecewiseCdfDistribution : public AccessDistribution
{
  public:
    struct Anchor
    {
        double rowFraction;  //!< u in [0, 1]
        double massFraction; //!< F(u) in [0, 1]
    };

    PiecewiseCdfDistribution(std::uint64_t num_rows,
                             std::vector<Anchor> anchors);

    std::uint64_t numRows() const override { return numRows_; }
    std::uint64_t sampleRank(Rng &rng) const override;
    double massOfTopRows(std::uint64_t x) const override;

    const std::vector<Anchor> &anchors() const { return anchors_; }

  private:
    std::uint64_t numRows_;
    std::vector<Anchor> anchors_;
};

/** Uniform access over all rows (the zero-locality baseline). */
class UniformDistribution : public AccessDistribution
{
  public:
    explicit UniformDistribution(std::uint64_t num_rows);

    std::uint64_t numRows() const override { return numRows_; }
    std::uint64_t sampleRank(Rng &rng) const override;
    double massOfTopRows(std::uint64_t x) const override;

  private:
    std::uint64_t numRows_;
};

/** Owning handle used throughout configuration structs. */
using AccessDistributionPtr = std::shared_ptr<const AccessDistribution>;

} // namespace erec::workload
