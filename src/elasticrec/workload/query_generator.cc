#include "elasticrec/workload/query_generator.h"

#include "elasticrec/common/error.h"

namespace erec::workload {

std::size_t
Query::totalGathers() const
{
    std::size_t n = 0;
    for (const auto &l : lookups)
        n += l.numGathers();
    return n;
}

QueryGenerator::QueryGenerator(QueryShape shape,
                               std::vector<AccessDistributionPtr> dists,
                               std::uint64_t seed)
    : shape_(shape), dists_(std::move(dists)),
      idMaps_(shape.numTables), rng_(seed)
{
    ERC_CHECK(shape_.batchSize > 0, "batch size must be positive");
    ERC_CHECK(shape_.numTables > 0, "need at least one table");
    ERC_CHECK(dists_.size() == shape_.numTables,
              "need one distribution per table (got "
                  << dists_.size() << ", want " << shape_.numTables << ")");
    for (const auto &d : dists_)
        ERC_CHECK(d != nullptr, "null access distribution");
}

QueryGenerator::QueryGenerator(QueryShape shape, AccessDistributionPtr dist,
                               std::uint64_t seed)
    : QueryGenerator(shape,
                     std::vector<AccessDistributionPtr>(shape.numTables,
                                                        std::move(dist)),
                     seed)
{
}

void
QueryGenerator::setIdMap(std::uint32_t table, std::vector<std::uint32_t> map)
{
    ERC_CHECK(table < shape_.numTables, "table index out of range");
    ERC_CHECK(map.size() == dists_[table]->numRows(),
              "ID map must cover every row of the table");
    idMaps_[table] = std::move(map);
}

// ERC_HOT_PATH_ALLOW("workload generation: shares the `next` base name with Rng's PRNG step, but runs in the driver ahead of submit(), not on the serving path")
Query
QueryGenerator::next(SimTime arrival)
{
    Query q;
    q.id = nextId_++;
    q.arrival = arrival;
    q.batchSize = shape_.batchSize;
    q.lookups.resize(shape_.numTables);

    for (std::uint32_t t = 0; t < shape_.numTables; ++t) {
        auto &lookup = q.lookups[t];
        const auto &dist = *dists_[t];
        const auto &map = idMaps_[t];
        const std::size_t total =
            static_cast<std::size_t>(shape_.batchSize) *
            shape_.gathersPerItem;
        lookup.indices.reserve(total);
        lookup.offsets.reserve(shape_.batchSize);
        for (std::uint32_t b = 0; b < shape_.batchSize; ++b) {
            lookup.offsets.push_back(
                static_cast<std::uint32_t>(lookup.indices.size()));
            for (std::uint32_t g = 0; g < shape_.gathersPerItem; ++g) {
                const auto rank = dist.sampleRank(rng_);
                const auto id =
                    map.empty()
                        ? static_cast<std::uint32_t>(rank)
                        : map[static_cast<std::size_t>(rank)];
                lookup.indices.push_back(id);
            }
        }
    }
    return q;
}

} // namespace erec::workload
