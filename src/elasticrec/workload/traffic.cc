#include "elasticrec/workload/traffic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "elasticrec/common/error.h"

namespace erec::workload {

TrafficPattern::TrafficPattern(std::vector<Step> steps)
    : steps_(std::move(steps))
{
    ERC_CHECK(!steps_.empty(), "traffic pattern needs at least one step");
    for (std::size_t i = 1; i < steps_.size(); ++i)
        ERC_CHECK(steps_[i].start > steps_[i - 1].start,
                  "traffic steps must have strictly increasing times");
    for (const auto &s : steps_)
        ERC_CHECK(s.qps >= 0.0, "traffic rate must be non-negative");
}

TrafficPattern
TrafficPattern::constant(double qps)
{
    return TrafficPattern({Step{0, qps}});
}

TrafficPattern
TrafficPattern::fig19(double base_qps, double peak_qps, int up_steps,
                      SimTime ramp_start, SimTime ramp_end,
                      SimTime drop_time)
{
    ERC_CHECK(up_steps >= 1, "need at least one ramp step");
    ERC_CHECK(ramp_end > ramp_start, "ramp must have positive duration");
    ERC_CHECK(drop_time > ramp_end, "drop must follow the ramp");
    std::vector<Step> steps;
    steps.push_back({0, base_qps});
    const double dq = (peak_qps - base_qps) / static_cast<double>(up_steps);
    const SimTime dt = (ramp_end - ramp_start) /
                       static_cast<SimTime>(up_steps);
    for (int i = 1; i <= up_steps; ++i) {
        steps.push_back({ramp_start + dt * static_cast<SimTime>(i - 1),
                         base_qps + dq * static_cast<double>(i)});
    }
    steps.push_back({drop_time, base_qps});
    return TrafficPattern(std::move(steps));
}

TrafficPattern
TrafficPattern::randomWalk(double start_qps, double min_qps,
                           double max_qps, SimTime step,
                           SimTime duration, std::uint64_t seed)
{
    ERC_CHECK(min_qps > 0 && min_qps <= start_qps &&
                  start_qps <= max_qps,
              "need min <= start <= max with positive rates");
    ERC_CHECK(step > 0 && duration > step,
              "need a positive step shorter than the duration");
    Rng rng(seed);
    std::vector<Step> steps;
    double rate = start_qps;
    for (SimTime t = 0; t < duration; t += step) {
        steps.push_back({t, rate});
        rate = std::clamp(rate * rng.uniform(0.5, 2.0), min_qps,
                          max_qps);
    }
    return TrafficPattern(std::move(steps));
}

TrafficPattern
TrafficPattern::diurnal(const DiurnalOptions &options)
{
    ERC_CHECK(options.troughQps > 0 &&
                  options.troughQps <= options.peakQps,
              "need 0 < trough <= peak");
    ERC_CHECK(options.step > 0 && options.period > options.step,
              "need a positive step shorter than the period");
    ERC_CHECK(options.duration > options.step,
              "need a duration longer than one step");
    const double swing = options.peakQps - options.troughQps;
    std::vector<Step> steps;
    for (SimTime t = 0; t < options.duration; t += options.step) {
        // Raised cosine: trough at phase 0, peak at phase pi.
        const double phase = 2.0 * std::numbers::pi *
                             static_cast<double>(t % options.period) /
                             static_cast<double>(options.period);
        const double rate =
            options.troughQps + swing * 0.5 * (1.0 - std::cos(phase));
        steps.push_back({t, rate});
    }
    return TrafficPattern(std::move(steps));
}

double
TrafficPattern::qpsAt(SimTime t) const
{
    double rate = steps_.front().qps;
    for (const auto &s : steps_) {
        if (s.start <= t)
            rate = s.qps;
        else
            break;
    }
    return rate;
}

SimTime
TrafficPattern::lastChange() const
{
    return steps_.back().start;
}

PoissonArrivals::PoissonArrivals(TrafficPattern pattern, std::uint64_t seed)
    : pattern_(std::move(pattern)), rng_(seed)
{
}

SimTime
PoissonArrivals::nextAfter(SimTime now)
{
    SimTime t = now;
    const auto &steps = pattern_.steps();
    while (true) {
        const double rate = pattern_.qpsAt(t);
        // Find the next rate-change boundary after t.
        SimTime boundary = std::numeric_limits<SimTime>::max();
        for (const auto &s : steps) {
            if (s.start > t) {
                boundary = s.start;
                break;
            }
        }
        if (rate <= 0.0) {
            // Idle until the next boundary; with no boundary left the
            // process has ended — report "never".
            if (boundary == std::numeric_limits<SimTime>::max())
                return boundary;
            t = boundary;
            continue;
        }
        const double gap_sec = rng_.exponential(rate);
        const SimTime candidate = t + units::fromSeconds(gap_sec);
        if (candidate < boundary)
            return std::max(candidate, now + 1);
        t = boundary;
    }
}

} // namespace erec::workload
