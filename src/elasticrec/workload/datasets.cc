#include "elasticrec/workload/datasets.h"

#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::workload {

namespace {

/**
 * Build anchors for a power-law-shaped CDF hitting (0.1, p10) and having
 * curvature controlled by a head exponent. Anchors are geometrically
 * spaced in rank fraction so the log-scale head of the curve is well
 * resolved.
 */
std::vector<PiecewiseCdfDistribution::Anchor>
powerLawAnchors(double p10, double head_shape, double tail_shape)
{
    std::vector<PiecewiseCdfDistribution::Anchor> anchors;
    anchors.push_back({0.0, 0.0});
    // Head: u in (0, 0.1], F(u) = p10 * (u/0.1)^head_shape.
    for (double u = 1e-6; u < 0.1; u *= 2.5) {
        anchors.push_back({u, p10 * std::pow(u / 0.1, head_shape)});
    }
    anchors.push_back({0.1, p10});
    // Tail: u in (0.1, 1], F = p10 + (1-p10)*((u-0.1)/0.9)^tail_shape.
    for (double u : {0.2, 0.35, 0.5, 0.7, 0.85}) {
        anchors.push_back(
            {u, p10 + (1.0 - p10) *
                          std::pow((u - 0.1) / 0.9, tail_shape)});
    }
    anchors.push_back({1.0, 1.0});
    return anchors;
}

} // namespace

DatasetShape
amazonBooks()
{
    const std::uint64_t rows = 2'930'000;
    const double p = 0.85;
    auto dist = std::make_shared<PiecewiseCdfDistribution>(
        rows, powerLawAnchors(p, 0.30, 0.95));
    return {"amazon-books", rows, p, dist};
}

DatasetShape
criteo()
{
    const std::uint64_t rows = 10'131'227;
    const double p = 0.90;
    auto dist = std::make_shared<PiecewiseCdfDistribution>(
        rows, powerLawAnchors(p, 0.25, 0.90));
    return {"criteo", rows, p, dist};
}

DatasetShape
movieLens()
{
    const std::uint64_t rows = 62'423;
    const double p = 0.94;
    auto dist = std::make_shared<PiecewiseCdfDistribution>(
        rows, powerLawAnchors(p, 0.35, 1.0));
    return {"movielens", rows, p, dist};
}

std::vector<DatasetShape>
allDatasetShapes()
{
    return {amazonBooks(), criteo(), movieLens()};
}

std::vector<std::pair<std::uint64_t, double>>
sortedFrequencyCurve(const AccessDistribution &dist,
                     std::uint64_t total_accesses, int points)
{
    ERC_CHECK(points >= 2, "need at least two curve points");
    std::vector<std::pair<std::uint64_t, double>> curve;
    curve.reserve(static_cast<std::size_t>(points));
    const auto n = dist.numRows();
    const double log_n = std::log(static_cast<double>(n));
    std::uint64_t prev_rank = static_cast<std::uint64_t>(-1);
    for (int i = 0; i < points; ++i) {
        const double frac =
            static_cast<double>(i) / static_cast<double>(points - 1);
        auto rank = static_cast<std::uint64_t>(
            std::exp(frac * log_n)) - 1;
        rank = std::min(rank, n - 1);
        if (rank == prev_rank)
            continue;
        prev_rank = rank;
        // Expected per-row count at this rank: the local CDF slope.
        const double mass_here = dist.massOfTopRows(rank + 1) -
                                 dist.massOfTopRows(rank);
        curve.emplace_back(
            rank, mass_here * static_cast<double>(total_accesses));
    }
    return curve;
}

} // namespace erec::workload
