#pragma once

/**
 * @file
 * Runtime registry of compute-kernel backends (DESIGN.md §11).
 *
 * The registry is built once per process: `scalar` always registers;
 * `avx2` / `avx512` register only when the translation unit was built
 * with the ISA *and* CPUID reports the host supports it, so one binary
 * serves every machine. Selection order for resolveBackend(""):
 * the ERC_KERNEL_BACKEND environment variable if set, else the widest
 * ISA available. A known-but-unsupported name degrades gracefully to
 * the best available backend (with a warning) instead of failing the
 * stack — an operator pinning `avx512` in a fleet-wide config must not
 * crash the AVX2-only stragglers.
 */

#include <string>
#include <vector>

#include "elasticrec/kernels/kernel_backend.h"

namespace erec::kernels {

/** The scalar reference backend (always registered). */
const KernelBackend &scalarBackend();

/** Backends usable on this host; scalar first, widest ISA last. */
const std::vector<const KernelBackend *> &availableBackends();

/** The widest-ISA backend usable on this host. */
const KernelBackend &bestBackend();

/** Usable backend by name, or nullptr when not usable on this host. */
const KernelBackend *findBackend(const std::string &name);

/**
 * Resolve a configuration string to a backend:
 *  - ""                        -> ERC_KERNEL_BACKEND env var when set,
 *                                 else bestBackend()
 *  - a usable backend name     -> that backend
 *  - a known name whose ISA is
 *    missing on this host      -> bestBackend(), with a logged warning
 *  - anything else             -> ConfigError
 */
const KernelBackend &resolveBackend(const std::string &name = {});

/** resolveBackend("") computed once and cached for the process. */
const KernelBackend &defaultBackend();

namespace detail {

/**
 * Pure name-resolution logic behind resolveBackend, factored out so
 * tests can drive env/host combinations without faking CPUID. `usable`
 * is ordered scalar-first/widest-last; returns the chosen name and
 * raises ConfigError for names outside the known backend set.
 */
std::string resolveName(const std::string &requested, const char *env,
                        const std::vector<std::string> &usable);

} // namespace detail
} // namespace erec::kernels
