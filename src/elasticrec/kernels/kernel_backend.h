#pragma once

/**
 * @file
 * The pluggable compute-kernel interface behind the embedding gather
 * and MLP GEMM hot paths.
 *
 * The paper's one-time profiling pass (Figure 9) shows embedding
 * gather and MLP GEMM dominate per-query compute. A KernelBackend
 * bundles exactly those two kernels:
 *
 *  - gatherSumPool: gather-and-sum-pool over a raw index/offset view
 *    (Figure 11 layout) against a row-major table slice, and
 *  - gemmBiasAct: a blocked GEMM microkernel with fused bias add and
 *    optional ReLU (the MLP layer primitive).
 *
 * Backends register in kernels/registry.h and are dispatched at
 * runtime by CPUID (`scalar` always; `avx2` / `avx512` when the host
 * supports them; selectable via ERC_KERNEL_BACKEND and
 * serving::StackOptions). Every backend must produce *bit-identical*
 * outputs to the scalar reference: kernels vectorize across the
 * embedding / output dimension only, so each output lane accumulates
 * the same values in the same order as the scalar loops. That is what
 * lets the serving stack switch backends without perturbing a single
 * output byte — and what lets later backends (a modeled near-memory
 * gather, a GPU shard) plug into the same seam.
 */

#include <cstdint>
#include <utility>
#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/common/hotpath.h"

namespace erec::kernels {

/**
 * {ptr,len} view of one gather-sum-pool request: embedding ranks
 * grouped per batch item by an offset array — the paper's Figure 11
 * layout, exactly what a sparse shard RPC carries. Non-owning: the
 * caller keeps both arrays alive for the duration of the call.
 */
struct GatherRequest
{
    /** Ranks to gather, relative to the slice (see TableSlice). */
    const std::uint32_t *indices = nullptr;
    std::size_t numIndices = 0;
    /** Start of each batch item's ranks within `indices`; item b owns
     *  [offsets[b], offsets[b+1]) and the last item runs to the end. */
    const std::uint32_t *offsets = nullptr;
    /** Number of batch items (= length of the offset array). */
    std::size_t batch = 0;

    GatherRequest() = default;

    /** View over a query lookup's index/offset vectors. */
    GatherRequest(const std::vector<std::uint32_t> &idx,
                  const std::vector<std::uint32_t> &off)
        : indices(idx.data()), numIndices(idx.size()),
          offsets(off.data()), batch(off.size())
    {}
};

/**
 * Non-owning view of the materialized embedding rows a gather executes
 * against. A request index i addresses rank `rankBase + indices[i]`,
 * which must fall in [rankBase, rankBase + rankCount); the storage row
 * is `remap[rank]` when a hotness permutation is attached and `rank`
 * itself otherwise. `rows` is the base of the *full* table storage
 * (row-major, `dim` floats per row), because remapped ranks may land
 * anywhere in the backing table.
 */
struct TableSlice
{
    const float *rows = nullptr;
    std::uint32_t dim = 0;
    /** First valid rank (shard begin; 0 for a whole table). */
    std::uint64_t rankBase = 0;
    /** Ranks owned by this slice. */
    std::uint64_t rankCount = 0;
    /** Optional rank -> storage-row map (hotness sort permutation). */
    const std::uint32_t *remap = nullptr;
    /** Rows in the backing storage (bounds remapped rows). */
    std::uint64_t storageRows = 0;
};

namespace detail {

/** Bounds of batch item b's ranks; validates offset monotonicity. */
inline std::pair<std::size_t, std::size_t>
bagBounds(const GatherRequest &req, std::size_t b)
{
    const std::size_t begin = req.offsets[b];
    const std::size_t end =
        (b + 1 < req.batch) ? req.offsets[b + 1] : req.numIndices;
    ERC_CHECK(begin <= end && end <= req.numIndices,
              "offset array is not monotone within the index array");
    return {begin, end};
}

/** Rank -> bounds-checked storage row. */
inline std::uint64_t
resolveRow(const TableSlice &t, std::uint32_t index)
{
    const std::uint64_t rank = t.rankBase + index;
    ERC_CHECK(rank < t.rankBase + t.rankCount,
              "gather rank " << rank << " escapes the table slice");
    const std::uint64_t row = t.remap != nullptr ? t.remap[rank] : rank;
    ERC_CHECK(row < t.storageRows,
              "remapped row " << row << " escapes the backing table");
    return row;
}

/**
 * Row address for software prefetch only: never raises, returns null
 * for an out-of-range rank (the real access will fault through
 * resolveRow with a proper error instead).
 */
inline const float *
prefetchRow(const TableSlice &t, std::uint32_t index)
{
    const std::uint64_t rank = t.rankBase + index;
    if (rank >= t.rankBase + t.rankCount)
        return nullptr;
    const std::uint64_t row = t.remap != nullptr ? t.remap[rank] : rank;
    if (row >= t.storageRows)
        return nullptr;
    return t.rows + row * t.dim;
}

} // namespace detail

/**
 * One implementation of the hot compute kernels. Stateless and
 * thread-safe: a single registered instance serves every table and
 * every MLP concurrently.
 */
class KernelBackend
{
  public:
    virtual ~KernelBackend() = default;

    /** Registry name ("scalar", "avx2", "avx512"). */
    virtual const char *name() const = 0;

    /**
     * Gather-and-sum-pool: for each batch item b, sums the rows
     * addressed by its ranks into out[b*dim .. (b+1)*dim). The output
     * is fully overwritten (empty bags produce zeros). Returns the
     * number of rows gathered. Raises ConfigError on a non-monotone
     * offset array or a rank escaping the slice.
     */
    ERC_HOT_PATH
    virtual std::size_t gatherSumPool(const TableSlice &table,
                                      const GatherRequest &req,
                                      float *out) const = 0;

    /**
     * Dense-layer microkernel: C = act(A x W + bias) with A m-by-k
     * (row-major), W k-by-n (row-major by input, model::Mlp's weight
     * layout), bias of length n, and act = ReLU (v > 0 ? v : 0) when
     * `relu` is set, identity otherwise. Accumulation runs over k in
     * ascending order per output lane — the contract that keeps every
     * backend bit-identical to the scalar reference.
     */
    ERC_HOT_PATH
    virtual void gemmBiasAct(const float *a, const float *w,
                             const float *bias, std::size_t m,
                             std::size_t k, std::size_t n, bool relu,
                             float *c) const = 0;
};

} // namespace erec::kernels
