#include "elasticrec/kernels/registry.h"

#include <cstdlib>

#include "elasticrec/common/error.h"
#include "elasticrec/common/logging.h"
#include "elasticrec/kernels/backend_impl.h"

namespace erec::kernels {
namespace {

/** Every name the registry understands, whether or not this host can
 *  run it — the boundary between "fall back" and "reject". */
constexpr const char *kKnownBackends[] = {"scalar", "avx2", "avx512"};

bool
isKnownName(const std::string &name)
{
    for (const char *known : kKnownBackends)
        if (name == known)
            return true;
    return false;
}

std::vector<const KernelBackend *>
buildRegistry()
{
    std::vector<const KernelBackend *> backends;
    backends.push_back(&detail::scalarBackendImpl());
#ifdef ERC_KERNELS_HAVE_AVX2
    if (__builtin_cpu_supports("avx2"))
        backends.push_back(&detail::avx2BackendImpl());
#endif
#ifdef ERC_KERNELS_HAVE_AVX512
    if (__builtin_cpu_supports("avx512f"))
        backends.push_back(&detail::avx512BackendImpl());
#endif
    return backends;
}

} // namespace

const KernelBackend &
scalarBackend()
{
    return detail::scalarBackendImpl();
}

const std::vector<const KernelBackend *> &
availableBackends()
{
    static const std::vector<const KernelBackend *> registry =
        buildRegistry();
    return registry;
}

const KernelBackend &
bestBackend()
{
    return *availableBackends().back();
}

const KernelBackend *
findBackend(const std::string &name)
{
    for (const KernelBackend *backend : availableBackends())
        if (name == backend->name())
            return backend;
    return nullptr;
}

const KernelBackend &
resolveBackend(const std::string &name)
{
    std::vector<std::string> usable;
    usable.reserve(availableBackends().size());
    for (const KernelBackend *backend : availableBackends())
        usable.emplace_back(backend->name());
    const std::string chosen =
        detail::resolveName(name, std::getenv("ERC_KERNEL_BACKEND"), usable);
    const KernelBackend *backend = findBackend(chosen);
    ERC_ASSERT(backend != nullptr,
               "resolved kernel backend '" << chosen << "' not registered");
    return *backend;
}

const KernelBackend &
defaultBackend()
{
    static const KernelBackend &backend = resolveBackend();
    return backend;
}

namespace detail {

std::string
resolveName(const std::string &requested, const char *env,
            const std::vector<std::string> &usable)
{
    ERC_CHECK(!usable.empty(), "kernel backend registry is empty");
    std::string name = requested;
    if (name.empty() && env != nullptr)
        name = env;
    if (name.empty())
        return usable.back(); // Widest ISA this host supports.
    for (const std::string &candidate : usable)
        if (name == candidate)
            return name;
    // Known backend, missing ISA: degrade instead of failing the stack
    // (a fleet-wide `avx512` pin must not crash AVX2-only stragglers).
    if (isKnownName(name)) {
        ERC_LOG_WARN << "kernel backend '" << name
                     << "' is not supported on this host; falling back to '"
                     << usable.back() << "'";
        return usable.back();
    }
    erec::fatal("unknown kernel backend '" + name +
                "' (known: scalar, avx2, avx512)");
}

} // namespace detail
} // namespace erec::kernels
