/**
 * @file
 * The scalar reference backend. This translation unit is compiled with
 * auto-vectorization disabled (see kernels/CMakeLists.txt) so it stays
 * a genuinely scalar baseline: the bit-identity contract and the bench
 * gate's speedup numbers are both measured against these loops.
 */

#include <cstring>

#include "elasticrec/common/error.h"
#include "elasticrec/kernels/backend_impl.h"

namespace erec::kernels {
namespace {

class ScalarBackend final : public KernelBackend
{
  public:
    const char *
    name() const override
    {
        return "scalar";
    }

    std::size_t
    gatherSumPool(const TableSlice &table, const GatherRequest &req,
                  float *out) const override
    {
        ERC_CHECK(req.batch > 0, "gather needs at least one batch item");
        const std::uint32_t dim = table.dim;
        for (std::size_t b = 0; b < req.batch; ++b) {
            const auto [begin, end] = detail::bagBounds(req, b);
            float *acc = out + b * static_cast<std::size_t>(dim);
            std::memset(acc, 0, dim * sizeof(float));
            for (std::size_t i = begin; i < end; ++i) {
                const float *src =
                    table.rows + detail::resolveRow(table, req.indices[i]) *
                                     dim;
                for (std::uint32_t d = 0; d < dim; ++d)
                    acc[d] += src[d];
            }
        }
        return req.numIndices;
    }

    void
    gemmBiasAct(const float *a, const float *w, const float *bias,
                std::size_t m, std::size_t k, std::size_t n, bool relu,
                float *c) const override
    {
        for (std::size_t mi = 0; mi < m; ++mi) {
            const float *x = a + mi * k;
            float *y = c + mi * n;
            std::memset(y, 0, n * sizeof(float));
            for (std::size_t i = 0; i < k; ++i) {
                const float xi = x[i];
                const float *wrow = w + i * n;
                for (std::size_t o = 0; o < n; ++o)
                    y[o] += xi * wrow[o];
            }
            for (std::size_t o = 0; o < n; ++o) {
                const float v = y[o] + bias[o];
                y[o] = relu ? (v > 0.0f ? v : 0.0f) : v;
            }
        }
    }
};

} // namespace

namespace detail {

const KernelBackend &
scalarBackendImpl()
{
    static const ScalarBackend backend;
    return backend;
}

} // namespace detail
} // namespace erec::kernels
