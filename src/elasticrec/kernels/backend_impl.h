#pragma once

/**
 * @file
 * Internal seam between the registry and the per-ISA translation
 * units. Each backend lives in its own .cc compiled with exactly the
 * ISA flags it needs (see kernels/CMakeLists.txt); this header stays
 * intrinsics-free so it is safe to include from baseline-ISA code.
 * The ERC_KERNELS_HAVE_* macros are defined by the build system when
 * the corresponding TU is compiled in; registry.cc still gates each
 * backend behind a runtime CPUID check before registering it.
 */

#include "elasticrec/kernels/kernel_backend.h"

namespace erec::kernels::detail {

const KernelBackend &scalarBackendImpl();

#ifdef ERC_KERNELS_HAVE_AVX2
const KernelBackend &avx2BackendImpl();
#endif

#ifdef ERC_KERNELS_HAVE_AVX512
const KernelBackend &avx512BackendImpl();
#endif

} // namespace erec::kernels::detail
