/**
 * @file
 * AVX-512 backend: 16-lane gather-pool and GEMM, same blocking scheme
 * as the AVX2 backend at twice the lane width (column blocks of 128
 * floats in eight ZMM accumulators; GEMM register tiles of 64
 * columns). Compiled with -mavx512f and -ffp-contract=off; see
 * backend_avx2.cc for the bit-identity reasoning, which is unchanged:
 * lanes map 1:1 onto output dimensions, so per-lane accumulation
 * order matches the scalar reference exactly.
 */

#include "elasticrec/kernels/backend_impl.h"

#ifdef ERC_KERNELS_HAVE_AVX512

#include <immintrin.h>

#include <cstring>

#include "elasticrec/common/error.h"

namespace erec::kernels {
namespace {

/** Rows gathered ahead of the current one to hide DRAM latency. */
constexpr std::size_t kPrefetchDistance = 8;

/** Accumulate columns [c0, c0 + 16*kBlocks) of one bag into `acc`. */
template <int kBlocks>
void
poolColumns(const TableSlice &table, const GatherRequest &req,
            std::size_t begin, std::size_t end, std::uint32_t c0,
            bool prefetch, float *acc)
{
    __m512 sum[kBlocks];
    for (int v = 0; v < kBlocks; ++v)
        sum[v] = _mm512_setzero_ps();
    const std::uint32_t dim = table.dim;
    for (std::size_t i = begin; i < end; ++i) {
        if (prefetch && i + kPrefetchDistance < end) {
            const float *ahead = detail::prefetchRow(
                table, req.indices[i + kPrefetchDistance]);
            if (ahead != nullptr)
                _mm_prefetch(reinterpret_cast<const char *>(ahead + c0),
                             _MM_HINT_T0);
        }
        const float *src =
            table.rows + detail::resolveRow(table, req.indices[i]) * dim + c0;
        for (int v = 0; v < kBlocks; ++v)
            sum[v] = _mm512_add_ps(sum[v], _mm512_loadu_ps(src + 16 * v));
    }
    for (int v = 0; v < kBlocks; ++v)
        _mm512_storeu_ps(acc + c0 + 16 * v, sum[v]);
}

/** One register tile of kBlocks*16 output columns starting at o0. */
template <int kBlocks>
void
gemmTile(const float *x, const float *w, const float *bias, std::size_t k,
         std::size_t n, std::size_t o0, bool relu, float *y)
{
    __m512 acc[kBlocks];
    for (int v = 0; v < kBlocks; ++v)
        acc[v] = _mm512_setzero_ps();
    for (std::size_t i = 0; i < k; ++i) {
        const __m512 xi = _mm512_set1_ps(x[i]);
        const float *wrow = w + i * n + o0;
        for (int v = 0; v < kBlocks; ++v)
            acc[v] = _mm512_add_ps(
                acc[v], _mm512_mul_ps(xi, _mm512_loadu_ps(wrow + 16 * v)));
    }
    const __m512 zero = _mm512_setzero_ps();
    for (int v = 0; v < kBlocks; ++v) {
        __m512 r = _mm512_add_ps(acc[v], _mm512_loadu_ps(bias + o0 + 16 * v));
        if (relu)
            r = _mm512_max_ps(r, zero);
        _mm512_storeu_ps(y + o0 + 16 * v, r);
    }
}

class Avx512Backend final : public KernelBackend
{
  public:
    const char *
    name() const override
    {
        return "avx512";
    }

    std::size_t
    gatherSumPool(const TableSlice &table, const GatherRequest &req,
                  float *out) const override
    {
        ERC_CHECK(req.batch > 0, "gather needs at least one batch item");
        const std::uint32_t dim = table.dim;
        for (std::size_t b = 0; b < req.batch; ++b) {
            const auto [begin, end] = detail::bagBounds(req, b);
            float *acc = out + b * static_cast<std::size_t>(dim);
            std::uint32_t c0 = 0;
            for (; c0 + 128 <= dim; c0 += 128)
                poolColumns<8>(table, req, begin, end, c0,
                               /*prefetch=*/c0 == 0, acc);
            for (; c0 + 16 <= dim; c0 += 16)
                poolColumns<1>(table, req, begin, end, c0,
                               /*prefetch=*/c0 == 0, acc);
            if (c0 < dim) {
                std::memset(acc + c0, 0, (dim - c0) * sizeof(float));
                for (std::size_t i = begin; i < end; ++i) {
                    const float *src =
                        table.rows +
                        detail::resolveRow(table, req.indices[i]) * dim;
                    for (std::uint32_t d = c0; d < dim; ++d)
                        acc[d] += src[d];
                }
            }
        }
        return req.numIndices;
    }

    void
    gemmBiasAct(const float *a, const float *w, const float *bias,
                std::size_t m, std::size_t k, std::size_t n, bool relu,
                float *c) const override
    {
        for (std::size_t mi = 0; mi < m; ++mi) {
            const float *x = a + mi * k;
            float *y = c + mi * n;
            std::size_t o0 = 0;
            for (; o0 + 64 <= n; o0 += 64)
                gemmTile<4>(x, w, bias, k, n, o0, relu, y);
            for (; o0 + 16 <= n; o0 += 16)
                gemmTile<1>(x, w, bias, k, n, o0, relu, y);
            for (; o0 < n; ++o0) {
                float acc = 0.0f;
                for (std::size_t i = 0; i < k; ++i)
                    acc += x[i] * w[i * n + o0];
                const float v = acc + bias[o0];
                y[o0] = relu ? (v > 0.0f ? v : 0.0f) : v;
            }
        }
    }
};

} // namespace

namespace detail {

const KernelBackend &
avx512BackendImpl()
{
    static const Avx512Backend backend;
    return backend;
}

} // namespace detail
} // namespace erec::kernels

#endif // ERC_KERNELS_HAVE_AVX512
