#include "elasticrec/model/dlrm_config.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::model {

std::uint64_t
DlrmConfig::gathersPerQueryPerTable() const
{
    return static_cast<std::uint64_t>(poolingFactor) * batchSize;
}

std::uint32_t
DlrmConfig::interactionOutputDim() const
{
    // Pairwise dot products between the (numTables + 1) feature vectors
    // (pooled embeddings + bottom-MLP output), concatenated with the
    // bottom-MLP output itself, as in the DLRM reference implementation.
    const std::uint32_t f = numTables + 1;
    return f * (f - 1) / 2 + bottomMlp.outputDim();
}

std::uint64_t
DlrmConfig::denseFlopsPerQuery() const
{
    const std::uint64_t per_item =
        bottomMlp.flopsPerItem() + topMlp.flopsPerItem() +
        // Interaction: each pair is a dim-wide dot product (2 FLOPs per
        // element).
        2ull * (numTables + 1) * numTables / 2 * embeddingDim;
    return per_item * batchSize;
}

std::uint64_t
DlrmConfig::sparseFlopsPerQuery() const
{
    // Pooling: one addition per gathered element.
    return gathersPerQueryPerTable() * numTables * embeddingDim;
}

double
DlrmConfig::sparseFlopsFraction() const
{
    const double s = static_cast<double>(sparseFlopsPerQuery());
    const double d = static_cast<double>(denseFlopsPerQuery());
    return s / (s + d);
}

Bytes
DlrmConfig::denseParamBytes() const
{
    return bottomMlp.paramBytes() + topMlp.paramBytes();
}

Bytes
DlrmConfig::tableBytes() const
{
    return rowsPerTable * Bytes{embeddingDim} * sizeof(float);
}

Bytes
DlrmConfig::embeddingBytes() const
{
    return tableBytes() * numTables;
}

Bytes
DlrmConfig::totalParamBytes() const
{
    return denseParamBytes() + embeddingBytes();
}

double
DlrmConfig::denseMemoryFraction() const
{
    return static_cast<double>(denseParamBytes()) /
           static_cast<double>(totalParamBytes());
}

Bytes
DlrmConfig::sparseTrafficPerQuery() const
{
    return gathersPerQueryPerTable() * numTables *
           Bytes{embeddingDim} * sizeof(float);
}

double
DlrmConfig::embeddingTouchFraction() const
{
    // Per the paper's argument this is per *inference item*: a pooling
    // factor of ~100 touches about 0.001% of a 20M-row table.
    return std::min(1.0, static_cast<double>(poolingFactor) /
                             static_cast<double>(rowsPerTable));
}

DlrmConfig
rm1()
{
    DlrmConfig c;
    c.name = "RM1";
    c.bottomMlp = MlpSpec{{256, 128, 32}};
    c.topMlp = MlpSpec{{256, 64, 1}};
    c.numTables = 10;
    c.rowsPerTable = 20'000'000;
    c.embeddingDim = 32;
    c.poolingFactor = 128;
    c.localityP = 0.90;
    return c;
}

DlrmConfig
rm2()
{
    DlrmConfig c;
    c.name = "RM2";
    c.bottomMlp = MlpSpec{{256, 128, 32}};
    c.topMlp = MlpSpec{{512, 128, 1}};
    c.numTables = 32;
    c.rowsPerTable = 20'000'000;
    c.embeddingDim = 32;
    c.poolingFactor = 128;
    c.localityP = 0.90;
    return c;
}

DlrmConfig
rm3()
{
    DlrmConfig c;
    c.name = "RM3";
    c.bottomMlp = MlpSpec{{2560, 512, 32}};
    c.topMlp = MlpSpec{{512, 128, 1}};
    c.numTables = 10;
    c.rowsPerTable = 20'000'000;
    c.embeddingDim = 32;
    c.poolingFactor = 32;
    c.localityP = 0.90;
    return c;
}

std::vector<DlrmConfig>
tableIIModels()
{
    return {rm1(), rm2(), rm3()};
}

double
localityValue(LocalityLevel level)
{
    switch (level) {
      case LocalityLevel::Low: return 0.10;
      case LocalityLevel::Medium: return 0.50;
      case LocalityLevel::High: return 0.90;
    }
    panic("unknown locality level");
}

const char *
toString(MlpSize s)
{
    switch (s) {
      case MlpSize::Light: return "Light";
      case MlpSize::Medium: return "Medium";
      case MlpSize::Heavy: return "Heavy";
    }
    return "?";
}

const char *
toString(LocalityLevel l)
{
    switch (l) {
      case LocalityLevel::Low: return "Low";
      case LocalityLevel::Medium: return "Medium";
      case LocalityLevel::High: return "High";
    }
    return "?";
}

DlrmConfig
microBenchmark(MlpSize mlp, LocalityLevel locality,
               std::uint32_t num_tables)
{
    // Table I: the default configuration is RM1; the MLP variant swaps
    // the bottom/top specs and the locality variant swaps P.
    DlrmConfig c = rm1();
    c.numTables = num_tables;
    switch (mlp) {
      case MlpSize::Light:
        c.bottomMlp = MlpSpec{{64, 32, 32}};
        c.topMlp = MlpSpec{{64, 32, 1}};
        break;
      case MlpSize::Medium:
        c.bottomMlp = MlpSpec{{256, 128, 32}};
        c.topMlp = MlpSpec{{256, 64, 1}};
        break;
      case MlpSize::Heavy:
        c.bottomMlp = MlpSpec{{512, 256, 32}};
        c.topMlp = MlpSpec{{512, 64, 1}};
        break;
    }
    c.localityP = localityValue(locality);
    c.name = std::string("micro-") + toString(mlp) + "-" +
             toString(locality) + "-N" + std::to_string(num_tables);
    return c;
}

} // namespace erec::model
