#pragma once

/**
 * @file
 * Multi-layer perceptron: the dense compute block of a DLRM model.
 *
 * MlpSpec captures the layer widths the paper's Table I/II list (e.g.
 * bottom MLP "256-128-32" = widths {256, 128, 32}: a 256-wide input
 * followed by two weight layers). Mlp materializes real float weights
 * and runs an actual forward pass (GEMM + ReLU on a pluggable kernel
 * backend), used by unit tests, the examples and kernel-level
 * calibration; the analytic FLOP / byte accounting drives the hardware
 * latency model.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/common/units.h"
#include "elasticrec/kernels/kernel_backend.h"
#include "elasticrec/kernels/registry.h"

namespace erec::model {

/** Layer-width description of an MLP. */
struct MlpSpec
{
    /** Widths including the input width, e.g. {256, 128, 32}. */
    std::vector<std::uint32_t> widths;

    std::uint32_t inputDim() const { return widths.front(); }
    std::uint32_t outputDim() const { return widths.back(); }
    std::size_t numLayers() const { return widths.size() - 1; }

    /** Multiply-accumulate FLOPs for one sample's forward pass. */
    std::uint64_t flopsPerItem() const;

    /** Parameter bytes (weights + biases, fp32). */
    Bytes paramBytes() const;

    /** "256-128-32"-style rendering. */
    std::string toString() const;
};

/** A real MLP with ReLU hidden activations and a linear output layer. */
class Mlp
{
  public:
    explicit Mlp(MlpSpec spec, std::uint64_t seed = 123);

    const MlpSpec &spec() const { return spec_; }

    /**
     * Forward one batch on the given kernel backend (default: the
     * process-wide dispatched one). `in` is batch x inputDim, `out` is
     * batch x outputDim. Uses per-thread activation scratch:
     * allocation-free once a thread's buffers reached the steady
     * working-set size.
     */
    ERC_HOT_PATH
    void forward(const float *in, std::size_t batch, float *out,
                 const kernels::KernelBackend &backend =
                     kernels::defaultBackend()) const;

  private:
    MlpSpec spec_;
    /** weights_[l] is widths[l] x widths[l+1], row-major by input. */
    std::vector<std::vector<float>> weights_;
    std::vector<std::vector<float>> biases_;
};

} // namespace erec::model
