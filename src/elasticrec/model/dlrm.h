#pragma once

/**
 * @file
 * An executable DLRM model (Figure 1): bottom MLP over dense features,
 * embedding gather + pooling over sparse features, pairwise-dot feature
 * interaction, top MLP and a sigmoid click-probability output.
 *
 * This is the reference single-process model: the monolithic baseline
 * serves it whole, while ElasticRec splits exactly this computation
 * across dense/sparse microservice shards. Unit tests assert that the
 * sharded execution path is numerically identical to this model.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "elasticrec/embedding/embedding_table.h"
#include "elasticrec/model/dlrm_config.h"
#include "elasticrec/model/mlp.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::model {

class Dlrm
{
  public:
    /**
     * Build the model. Pass Storage::Virtual for paper-scale tables
     * (hash-synthesized rows); tests use small materialized tables.
     */
    Dlrm(DlrmConfig config,
         embedding::Storage storage = embedding::Storage::Materialized,
         std::uint64_t seed = 42);

    const DlrmConfig &config() const { return config_; }
    const Mlp &bottomMlp() const { return bottomMlp_; }
    const Mlp &topMlp() const { return topMlp_; }

    std::shared_ptr<const embedding::EmbeddingTable>
    table(std::uint32_t t) const;

    /**
     * Full forward pass. Gathers and GEMMs execute on the given kernel
     * backend (default: the process-wide dispatched one).
     *
     * @param dense_in Batch x bottomMlp.inputDim dense features.
     * @param lookups One SparseLookup per table, each with batch items
     *        matching `batch`.
     * @param batch Number of items.
     * @return Click probabilities, one per item.
     */
    std::vector<float>
    forward(const std::vector<float> &dense_in,
            const std::vector<workload::SparseLookup> &lookups,
            std::size_t batch,
            const kernels::KernelBackend &backend =
                kernels::defaultBackend()) const;

    /**
     * The dense-shard tail computation: takes the bottom-MLP output and
     * the per-table pooled embeddings (each batch x dim) and runs
     * feature interaction + top MLP + sigmoid. Exposed so the
     * microservice dense shard can reuse the exact same code.
     */
    std::vector<float>
    interactAndPredict(const std::vector<float> &bottom_out,
                       const std::vector<std::vector<float>> &pooled,
                       std::size_t batch,
                       const kernels::KernelBackend &backend =
                           kernels::defaultBackend()) const;

    /** Run only the bottom MLP (dense shard head computation). */
    std::vector<float>
    runBottom(const std::vector<float> &dense_in, std::size_t batch,
              const kernels::KernelBackend &backend =
                  kernels::defaultBackend()) const;

    /** Generate a deterministic synthetic dense input for a query id. */
    std::vector<float> syntheticDenseInput(std::uint64_t query_id,
                                           std::size_t batch) const;

  private:
    DlrmConfig config_;
    Mlp bottomMlp_;
    Mlp topMlp_;
    std::vector<std::shared_ptr<const embedding::EmbeddingTable>> tables_;
};

} // namespace erec::model
