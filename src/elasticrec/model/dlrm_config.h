#pragma once

/**
 * @file
 * DLRM model configurations: the paper's Table II workloads (RM1, RM2,
 * RM3), the Table I microbenchmark variants, and the analytic FLOP /
 * byte accounting behind Figure 3.
 */

#include <cstdint>
#include <string>

#include "elasticrec/common/units.h"
#include "elasticrec/model/mlp.h"

namespace erec::model {

/** Complete static description of a DLRM workload. */
struct DlrmConfig
{
    std::string name;
    MlpSpec bottomMlp;
    MlpSpec topMlp;
    std::uint32_t numTables = 10;
    std::uint64_t rowsPerTable = 20'000'000;
    std::uint32_t embeddingDim = 32;
    /**
     * Pooling factor: embedding gathers per batch item per table (the
     * paper's "Number of embedding gathers": 128 for RM1/RM2, 32 for
     * RM3). A query batches `batchSize` items, so one query issues
     * poolingFactor x batchSize gathers against every table (the n_t of
     * Algorithm 1).
     */
    std::uint32_t poolingFactor = 128;
    /** Locality metric P (fraction of accesses on the top 10% rows). */
    double localityP = 0.90;
    /** Items ranked per query (input batch size; Section V-C). */
    std::uint32_t batchSize = 32;

    // ------------------------------------------------------------------
    // Derived accounting (architecture-independent, Figure 3(a)).
    // ------------------------------------------------------------------

    /** Gathers per query per table: poolingFactor x batchSize (n_t). */
    std::uint64_t gathersPerQueryPerTable() const;

    /** Width of the feature-interaction output (pairwise dots + dense). */
    std::uint32_t interactionOutputDim() const;

    /** Dense-layer FLOPs for one query (bottom + interaction + top). */
    std::uint64_t denseFlopsPerQuery() const;

    /** Sparse-layer FLOPs for one query (pooling additions). */
    std::uint64_t sparseFlopsPerQuery() const;

    /** Fraction of model FLOPs spent in sparse layers. */
    double sparseFlopsFraction() const;

    /** Dense parameter bytes (bottom + top MLP). */
    Bytes denseParamBytes() const;

    /** Bytes of one embedding table. */
    Bytes tableBytes() const;

    /** Bytes of all embedding tables. */
    Bytes embeddingBytes() const;

    /** Total model parameter bytes. */
    Bytes totalParamBytes() const;

    /** Fraction of parameter bytes held by dense layers. */
    double denseMemoryFraction() const;

    /** Memory traffic of one query's embedding gathers (bytes). */
    Bytes sparseTrafficPerQuery() const;

    /**
     * Fraction of embedding parameters touched by one query assuming
     * distinct rows (the paper's "0.001% utility" argument).
     */
    double embeddingTouchFraction() const;
};

/** Table II: RM1 (DLRM-style, 10 tables, 128 gathers). */
DlrmConfig rm1();

/** Table II: RM2 (32 tables, 128 gathers). */
DlrmConfig rm2();

/** Table II: RM3 (heavy MLPs, 32 gathers). */
DlrmConfig rm3();

/** All three Table II workloads in order. */
std::vector<DlrmConfig> tableIIModels();

// ----------------------------------------------------------------------
// Table I microbenchmark variants (defaults derived from RM1).
// ----------------------------------------------------------------------

enum class MlpSize { Light, Medium, Heavy };
enum class LocalityLevel { Low, Medium, High };

/** Table I MLP variant: Light / Medium / Heavy bottom and top MLPs. */
DlrmConfig microBenchmark(MlpSize mlp, LocalityLevel locality,
                          std::uint32_t num_tables = 10);

/** Table I locality parameter value: 10% / 50% / 90%. */
double localityValue(LocalityLevel level);

const char *toString(MlpSize s);
const char *toString(LocalityLevel l);

} // namespace erec::model
