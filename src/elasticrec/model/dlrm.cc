#include "elasticrec/model/dlrm.h"

#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::model {

Dlrm::Dlrm(DlrmConfig config, embedding::Storage storage,
           std::uint64_t seed)
    : config_(std::move(config)), bottomMlp_(config_.bottomMlp, seed),
      topMlp_(config_.topMlp, seed + 1)
{
    ERC_CHECK(config_.bottomMlp.outputDim() == config_.embeddingDim,
              "bottom MLP output dim ("
                  << config_.bottomMlp.outputDim()
                  << ") must equal the embedding dim ("
                  << config_.embeddingDim
                  << ") for feature interaction");
    tables_.reserve(config_.numTables);
    for (std::uint32_t t = 0; t < config_.numTables; ++t) {
        tables_.push_back(std::make_shared<embedding::EmbeddingTable>(
            config_.rowsPerTable, config_.embeddingDim, storage,
            seed + 100 + t));
    }
}

std::shared_ptr<const embedding::EmbeddingTable>
Dlrm::table(std::uint32_t t) const
{
    ERC_CHECK(t < tables_.size(), "table index out of range");
    return tables_[t];
}

std::vector<float>
Dlrm::runBottom(const std::vector<float> &dense_in, std::size_t batch,
                const kernels::KernelBackend &backend) const
{
    ERC_CHECK(dense_in.size() == batch * config_.bottomMlp.inputDim(),
              "dense input size mismatch");
    std::vector<float> out(batch * config_.bottomMlp.outputDim());
    bottomMlp_.forward(dense_in.data(), batch, out.data(), backend);
    return out;
}

std::vector<float>
Dlrm::interactAndPredict(const std::vector<float> &bottom_out,
                         const std::vector<std::vector<float>> &pooled,
                         std::size_t batch,
                         const kernels::KernelBackend &backend) const
{
    const std::uint32_t dim = config_.embeddingDim;
    const std::uint32_t f = config_.numTables + 1;
    ERC_CHECK(pooled.size() == config_.numTables,
              "need one pooled vector set per table");
    ERC_CHECK(bottom_out.size() == batch * dim,
              "bottom output size mismatch");
    for (const auto &p : pooled)
        ERC_CHECK(p.size() == batch * dim, "pooled output size mismatch");

    const std::uint32_t top_in = config_.topMlp.inputDim();
    std::vector<float> top_input(batch * top_in, 0.0f);

    // Build the interaction feature vector per item: all pairwise dot
    // products among {bottom, pooled tables}, then the bottom output
    // itself, padded (or truncated) to the top MLP's input width.
    std::vector<const float *> feats(f);
    for (std::size_t b = 0; b < batch; ++b) {
        feats[0] = &bottom_out[b * dim];
        for (std::uint32_t t = 0; t < config_.numTables; ++t)
            feats[t + 1] = &pooled[t][b * dim];

        float *dst = &top_input[b * top_in];
        std::uint32_t w = 0;
        for (std::uint32_t i = 0; i < f && w < top_in; ++i) {
            for (std::uint32_t j = i + 1; j < f && w < top_in; ++j) {
                float dot = 0.0f;
                for (std::uint32_t d = 0; d < dim; ++d)
                    dot += feats[i][d] * feats[j][d];
                dst[w++] = dot;
            }
        }
        for (std::uint32_t d = 0; d < dim && w < top_in; ++d)
            dst[w++] = feats[0][d];
        // Remaining entries stay zero (width padding).
    }

    std::vector<float> logits(batch * config_.topMlp.outputDim());
    topMlp_.forward(top_input.data(), batch, logits.data(), backend);

    std::vector<float> probs(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        const float z = logits[b * config_.topMlp.outputDim()];
        probs[b] = 1.0f / (1.0f + std::exp(-z));
    }
    return probs;
}

std::vector<float>
Dlrm::forward(const std::vector<float> &dense_in,
              const std::vector<workload::SparseLookup> &lookups,
              std::size_t batch,
              const kernels::KernelBackend &backend) const
{
    ERC_CHECK(lookups.size() == config_.numTables,
              "need one lookup set per table");
    const std::uint32_t dim = config_.embeddingDim;

    auto bottom = runBottom(dense_in, batch, backend);

    std::vector<std::vector<float>> pooled(config_.numTables);
    for (std::uint32_t t = 0; t < config_.numTables; ++t) {
        ERC_CHECK(lookups[t].batchSize() == batch,
                  "lookup batch size mismatch for table " << t);
        pooled[t].assign(batch * dim, 0.0f);
        tables_[t]->gatherPool(lookups[t].view(), pooled[t].data(),
                               backend);
    }

    return interactAndPredict(bottom, pooled, batch, backend);
}

std::vector<float>
Dlrm::syntheticDenseInput(std::uint64_t query_id, std::size_t batch) const
{
    Rng rng(0xD15EA5Eull ^ query_id);
    std::vector<float> in(batch * config_.bottomMlp.inputDim());
    for (auto &v : in)
        v = static_cast<float>(rng.uniform());
    return in;
}

} // namespace erec::model
