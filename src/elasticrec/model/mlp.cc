#include "elasticrec/model/mlp.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "elasticrec/common/error.h"
#include "elasticrec/common/rng.h"

namespace erec::model {

std::uint64_t
MlpSpec::flopsPerItem() const
{
    std::uint64_t flops = 0;
    for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
        flops += 2ull * widths[l] * widths[l + 1];
    }
    return flops;
}

Bytes
MlpSpec::paramBytes() const
{
    Bytes params = 0;
    for (std::size_t l = 0; l + 1 < widths.size(); ++l)
        params += Bytes{widths[l]} * widths[l + 1] + widths[l + 1];
    return params * sizeof(float);
}

std::string
MlpSpec::toString() const
{
    std::ostringstream oss;
    for (std::size_t i = 0; i < widths.size(); ++i) {
        if (i)
            oss << '-';
        oss << widths[i];
    }
    return oss.str();
}

Mlp::Mlp(MlpSpec spec, std::uint64_t seed) : spec_(std::move(spec))
{
    ERC_CHECK(spec_.widths.size() >= 2,
              "an MLP needs an input width and at least one layer");
    for (auto w : spec_.widths)
        ERC_CHECK(w > 0, "layer widths must be positive");
    Rng rng(seed);
    weights_.resize(spec_.numLayers());
    biases_.resize(spec_.numLayers());
    for (std::size_t l = 0; l < spec_.numLayers(); ++l) {
        const std::size_t fan_in = spec_.widths[l];
        const std::size_t fan_out = spec_.widths[l + 1];
        // Xavier-uniform initialization.
        const double bound =
            std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
        weights_[l].resize(fan_in * fan_out);
        for (auto &w : weights_[l])
            w = static_cast<float>(rng.uniform(-bound, bound));
        biases_[l].assign(fan_out, 0.0f);
    }
}

void
Mlp::forward(const float *in, std::size_t batch, float *out,
             const kernels::KernelBackend &backend) const
{
    const auto &widths = spec_.widths;
    // Per-thread activation scratch, reused across calls: assign()
    // only reallocates while a buffer is still growing toward the
    // steady batch-times-width working set, so warm forward passes
    // allocate nothing. Safe because forward() never calls itself.
    static thread_local std::vector<float> cur;
    static thread_local std::vector<float> next;
    cur.assign(in, in + batch * widths.front());
    for (std::size_t l = 0; l < spec_.numLayers(); ++l) {
        const std::size_t fan_in = widths[l];
        const std::size_t fan_out = widths[l + 1];
        const bool last = (l + 1 == spec_.numLayers());
        next.assign(batch * fan_out, 0.0f);
        backend.gemmBiasAct(cur.data(), weights_[l].data(),
                            biases_[l].data(), batch, fan_in, fan_out,
                            /*relu=*/!last, next.data());
        cur.swap(next);
    }
    std::copy(cur.begin(), cur.end(), out);
}

} // namespace erec::model
