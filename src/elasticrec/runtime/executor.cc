#include "elasticrec/runtime/executor.h"

#include <algorithm>
#include <vector>

#include "elasticrec/common/error.h"

namespace erec::runtime {

Executor::Executor(ExecutorOptions options) : opts_(options)
{
    ERC_CHECK(opts_.maxBatchSize >= 1, "max batch size must be >= 1");
    ERC_CHECK(opts_.queueCapacity >= 1, "queue capacity must be >= 1");
    if (opts_.workers > 0)
        pool_ = std::make_unique<ThreadPool>(opts_.workers);
}

void
Executor::parallelFor(std::size_t n,
                      const std::function<void(std::size_t)> &body)
{
    if (n == 0)
        return;
    if (pool_ == nullptr || n == 1 || ThreadPool::onWorkerThread()) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    // Stride the index space over the workers plus the calling thread;
    // the caller takes stride 0 so it always participates and the call
    // cannot deadlock on a busy pool unless the pool is wedged by
    // unrelated long-running tasks.
    // External fork-join only: calls from pump workers degrade inline
    // above, so the steady serving path never reaches this fan-out.
    const std::size_t strides = std::min(n, pool_->numThreads() + 1);
    std::vector<std::future<void>> pending;
    pending.reserve(strides - 1); // ERC_HOT_PATH_ALLOW("external fork-join callers only; pump workers take the inline path above")
    for (std::size_t s = 1; s < strides; ++s) {
        pending.push_back(pool_->submit([&body, s, strides, n] { // ERC_HOT_PATH_ALLOW("external fork-join callers only; pump workers take the inline path above")
            for (std::size_t i = s; i < n; i += strides)
                body(i);
        }));
    }
    for (std::size_t i = 0; i < n; i += strides)
        body(i);
    for (auto &f : pending)
        f.get();
}

ExecutorStats
Executor::stats() const
{
    ExecutorStats s;
    if (pool_ != nullptr) {
        s.workers = pool_->numThreads();
        s.queueDepth = pool_->queueDepth();
        s.busyWorkers = pool_->busyWorkers();
        s.tasksExecuted = pool_->tasksExecuted();
    }
    return s;
}

void
Executor::publishStats(obs::Registry &registry,
                       const obs::Labels &labels) const
{
    const ExecutorStats s = stats();
    registry
        .gauge("erec_executor_workers",
               "Worker threads of the serving executor (0 = serial).",
               labels)
        .set(static_cast<double>(s.workers));
    registry
        .gauge("erec_executor_queue_depth",
               "Tasks queued on the executor's pool right now.", labels)
        .set(static_cast<double>(s.queueDepth));
    registry
        .gauge("erec_executor_busy_workers",
               "Pool workers currently executing a task (occupancy).",
               labels)
        .set(static_cast<double>(s.busyWorkers));
    registry
        .gauge("erec_executor_tasks_executed",
               "Tasks completed by the executor's pool since start.",
               labels)
        .set(static_cast<double>(s.tasksExecuted));
}

} // namespace erec::runtime
