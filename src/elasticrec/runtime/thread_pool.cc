#include "elasticrec/runtime/thread_pool.h"

#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/common/error.h"

namespace erec::runtime {

namespace {

/** Set for the lifetime of a worker thread's loop. */
thread_local bool t_onPoolWorker = false;

/** Charged by the gate around the worker loop's dequeue section. */
AllocRegion &
threadPoolRegion()
{
    static AllocRegion region("thread-pool-dequeue");
    return region;
}

} // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
{
    ERC_CHECK(num_threads >= 1, "thread pool needs at least one worker");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ERC_CHECK(!stopping_, "submit() on a stopping thread pool");
        // Feed side of the pool, not the per-query steady state: pump
        // loops are posted once at dispatcher construction.
        tasks_.push_back(std::move(task)); // ERC_HOT_PATH_ALLOW("pool feed; steady serving posts long-lived pumps once, not per-query tasks")
    }
    cv_.notify_one();
}

std::size_t
ThreadPool::queueDepth() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return tasks_.size();
}

std::size_t
ThreadPool::busyWorkers() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return busy_;
}

std::uint64_t
ThreadPool::tasksExecuted() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return executed_;
}

bool
ThreadPool::onWorkerThread()
{
    return t_onPoolWorker;
}

// The unlock-run-relock shape below is the classic false positive of
// the static analysis, hence the escape hatch; TSan covers the real
// interleavings in tests/thread_pool_test.cpp.
void
ThreadPool::workerLoop() ERC_NO_THREAD_SAFETY_ANALYSIS
{
    t_onPoolWorker = true;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        while (tasks_.empty() && !stopping_)
            cv_.wait(lock);
        if (tasks_.empty())
            return; // Stopping and fully drained.
        std::function<void()> task;
        {
            // Steady-state dequeue: moving the task off the deque must
            // not allocate (the AllocGate proves it at test time).
            const AllocGate gate(threadPoolRegion());
            task = std::move(tasks_.front());
            tasks_.pop_front();
            ++busy_;
        }
        lock.unlock();
        task();
        lock.lock();
        --busy_;
        ++executed_;
    }
}

} // namespace erec::runtime
