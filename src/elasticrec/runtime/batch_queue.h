#pragma once

/**
 * @file
 * Bounded MPMC queue with request coalescing: the admission path of
 * the concurrent serving executor. Producers push individual items
 * (lookup requests); consumers pop *batches*, letting a worker
 * amortize per-request overheads (RPC stack cost, cache warmup) the
 * way DeepRecSys-style serving stacks batch inference queries.
 *
 * Coalescing policy, per popBatch() call:
 *  - block until at least one item (or close()) is available;
 *  - take everything queued, up to maxBatchSize;
 *  - if the batch is still short and maxBatchDelay is non-zero, keep
 *    waiting up to the delay for more items before returning.
 *
 * The capacity bound gives producers backpressure: push() blocks while
 * the queue is full, so an overloaded executor slows its clients down
 * instead of growing an unbounded backlog (the functional analogue of
 * the simulator's bounded pod queues).
 */

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "elasticrec/common/error.h"
#include "elasticrec/common/thread_annotations.h"

namespace erec::runtime {

/** Coalescing and backpressure knobs of a BatchQueue. */
struct BatchQueueOptions
{
    /** Maximum queued items before push() blocks (backpressure). */
    std::size_t capacity = 1024;
    /** Largest batch one popBatch() call returns. */
    std::size_t maxBatchSize = 8;
    /**
     * How long popBatch() lingers for more items once it holds a
     * non-empty, non-full batch. Zero flushes immediately.
     */
    std::chrono::microseconds maxBatchDelay{100};
};

template <typename T>
class BatchQueue
{
  public:
    explicit BatchQueue(BatchQueueOptions options) : opts_(options)
    {
        ERC_CHECK(opts_.capacity >= 1, "queue capacity must be >= 1");
        ERC_CHECK(opts_.maxBatchSize >= 1, "max batch size must be >= 1");
        ERC_CHECK(opts_.maxBatchDelay.count() >= 0,
                  "max batch delay must be non-negative");
    }

    /**
     * Enqueue one item, blocking while the queue is at capacity.
     * Returns false (item dropped) when the queue has been closed.
     */
    bool push(T item)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (items_.size() >= opts_.capacity && !closed_)
            notFull_.wait(lock);
        if (closed_)
            return false;
        items_.push_back(std::move(item));
        ++totalPushed_;
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue the next coalesced batch (1..maxBatchSize items, FIFO).
     * An empty result means the queue is closed and fully drained.
     */
    std::vector<T> popBatch()
    {
        std::vector<T> batch;
        std::unique_lock<std::mutex> lock(mutex_);
        while (items_.empty() && !closed_)
            notEmpty_.wait(lock);
        if (items_.empty())
            return batch; // Closed and drained.
        takeAvailable(&batch);
        if (batch.size() < opts_.maxBatchSize &&
            opts_.maxBatchDelay.count() > 0) {
            const auto deadline =
                std::chrono::steady_clock::now() + opts_.maxBatchDelay;
            while (batch.size() < opts_.maxBatchSize && !closed_) {
                if (notEmpty_.wait_until(lock, deadline) ==
                    std::cv_status::timeout) {
                    takeAvailable(&batch);
                    break;
                }
                takeAvailable(&batch);
            }
        }
        notFull_.notify_all();
        return batch;
    }

    /**
     * Reject future pushes and wake every waiter. Items already queued
     * still drain through popBatch().
     */
    void close()
    {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    std::size_t depth() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    bool closed() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Items accepted since construction (drops excluded). */
    std::uint64_t totalPushed() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return totalPushed_;
    }

    const BatchQueueOptions &options() const { return opts_; }

  private:
    void takeAvailable(std::vector<T> *batch) ERC_REQUIRES(mutex_)
    {
        while (batch->size() < opts_.maxBatchSize && !items_.empty()) {
            batch->push_back(std::move(items_.front()));
            items_.pop_front();
        }
    }

    const BatchQueueOptions opts_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    std::deque<T> items_ ERC_GUARDED_BY(mutex_);
    bool closed_ ERC_GUARDED_BY(mutex_) = false;
    std::uint64_t totalPushed_ ERC_GUARDED_BY(mutex_) = 0;
};

} // namespace erec::runtime
