#pragma once

/**
 * @file
 * Bounded MPMC queue with request coalescing: the admission path of
 * the concurrent serving executor. Producers push individual items
 * (lookup requests); consumers pop *batches*, letting a worker
 * amortize per-request overheads (RPC stack cost, cache warmup) the
 * way DeepRecSys-style serving stacks batch inference queries.
 *
 * Coalescing policy, per popBatch() call:
 *  - block until at least one item (or close()) is available;
 *  - take everything queued, up to maxBatchSize;
 *  - if the batch is still short and maxBatchDelay is non-zero, keep
 *    waiting up to the delay for more items before returning.
 *
 * The capacity bound gives producers backpressure: push() blocks while
 * the queue is full, so an overloaded executor slows its clients down
 * instead of growing an unbounded backlog (the functional analogue of
 * the simulator's bounded pod queues).
 *
 * Hot-path discipline: storage is a fixed ring buffer sized at
 * construction and popBatch() fills a caller-owned batch vector, so
 * the steady state allocates nothing — push/pop are wrapped in
 * AllocGate scopes charged to the "batch-queue" region, and the
 * `erec_hotpath` static pass treats both as roots.
 */

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/common/error.h"
#include "elasticrec/common/hotpath.h"
#include "elasticrec/common/thread_annotations.h"

namespace erec::runtime {

/** Coalescing and backpressure knobs of a BatchQueue. */
struct BatchQueueOptions
{
    /** Maximum queued items before push() blocks (backpressure). */
    std::size_t capacity = 1024;
    /** Largest batch one popBatch() call returns. */
    std::size_t maxBatchSize = 8;
    /**
     * How long popBatch() lingers for more items once it holds a
     * non-empty, non-full batch. Zero flushes immediately.
     */
    std::chrono::microseconds maxBatchDelay{100};
};

/** Region charged by the AllocGates inside push() and popBatch(). */
inline AllocRegion &
batchQueueRegion()
{
    static AllocRegion region("batch-queue");
    return region;
}

template <typename T>
class BatchQueue
{
  public:
    explicit BatchQueue(BatchQueueOptions options) : opts_(options)
    {
        ERC_CHECK(opts_.capacity >= 1, "queue capacity must be >= 1");
        ERC_CHECK(opts_.maxBatchSize >= 1, "max batch size must be >= 1");
        ERC_CHECK(opts_.maxBatchDelay.count() >= 0,
                  "max batch delay must be non-negative");
        // All storage up front: the steady state never reallocates.
        ring_.resize(opts_.capacity);
    }

    /**
     * Enqueue one item, blocking while the queue is at capacity.
     * Returns false (item dropped) when the queue has been closed.
     */
    ERC_HOT_PATH
    bool push(T item)
    {
        const AllocGate gate(batchQueueRegion());
        std::unique_lock<std::mutex> lock(mutex_);
        while (size_ >= opts_.capacity && !closed_)
            notFull_.wait(lock);
        if (closed_)
            return false;
        ring_[(head_ + size_) % opts_.capacity] = std::move(item);
        ++size_;
        ++totalPushed_;
        notEmpty_.notify_one();
        return true;
    }

    /**
     * Dequeue the next coalesced batch (1..maxBatchSize items, FIFO)
     * into `batch`, which is cleared first and whose capacity is
     * reused across calls (hence allocation-free once warm). An empty
     * result means the queue is closed and fully drained.
     *
     * Shutdown contract (drain-then-empty): items queued before
     * close() are never lost. Every popBatch() call after close()
     * returns residual items in FIFO order — without lingering for
     * maxBatchDelay, since no more producers can arrive — until the
     * queue is empty, and from then on returns an empty batch
     * immediately. "Empty batch" is therefore the one and only
     * termination signal a consumer needs.
     */
    ERC_HOT_PATH
    void popBatch(std::vector<T> *batch)
    {
        batch->clear();
        // No-op once the buffer ever reached maxBatchSize capacity.
        batch->reserve(opts_.maxBatchSize); // ERC_HOT_PATH_ALLOW("reserve-once: amortized to zero after the first pop")
        const AllocGate gate(batchQueueRegion());
        std::unique_lock<std::mutex> lock(mutex_);
        while (size_ == 0 && !closed_)
            notEmpty_.wait(lock);
        if (size_ == 0)
            return; // Closed and drained.
        takeAvailable(batch);
        if (batch->size() < opts_.maxBatchSize &&
            opts_.maxBatchDelay.count() > 0) {
            const auto deadline =
                std::chrono::steady_clock::now() + opts_.maxBatchDelay;
            while (batch->size() < opts_.maxBatchSize && !closed_) {
                if (notEmpty_.wait_until(lock, deadline) ==
                    std::cv_status::timeout) {
                    takeAvailable(batch);
                    break;
                }
                takeAvailable(batch);
            }
        }
        notFull_.notify_all();
    }

    /**
     * Reject future pushes and wake every waiter. Items already queued
     * still drain through popBatch() — see the drain-then-empty
     * contract on popBatch(). Idempotent.
     */
    void close()
    {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        notEmpty_.notify_all();
        notFull_.notify_all();
    }

    std::size_t depth() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return size_;
    }

    bool closed() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    /** Items accepted since construction (drops excluded). */
    std::uint64_t totalPushed() const
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        return totalPushed_;
    }

    const BatchQueueOptions &options() const { return opts_; }

  private:
    void takeAvailable(std::vector<T> *batch) ERC_REQUIRES(mutex_)
    {
        while (batch->size() < opts_.maxBatchSize && size_ > 0) {
            // Bounded by the reserve() in popBatch(): never grows.
            batch->push_back(std::move(ring_[head_])); // ERC_HOT_PATH_ALLOW("bounded by maxBatchSize; the caller's buffer is pre-reserved")
            head_ = (head_ + 1) % opts_.capacity;
            --size_;
        }
    }

    const BatchQueueOptions opts_;
    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable notFull_;
    /** Fixed-size ring; [head_, head_+size_) mod capacity is live. */
    std::vector<T> ring_ ERC_GUARDED_BY(mutex_);
    std::size_t head_ ERC_GUARDED_BY(mutex_) = 0;
    std::size_t size_ ERC_GUARDED_BY(mutex_) = 0;
    bool closed_ ERC_GUARDED_BY(mutex_) = false;
    std::uint64_t totalPushed_ ERC_GUARDED_BY(mutex_) = 0;
};

} // namespace erec::runtime
