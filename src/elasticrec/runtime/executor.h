#pragma once

/**
 * @file
 * Concurrent serving executor: the facade the serving layer runs on.
 * An Executor bundles a fixed-size ThreadPool with the batching knobs
 * its request queue(s) use, behind one options struct, and publishes
 * occupancy/queue-depth statistics into an obs::Registry.
 *
 * Determinism contract:
 *  - workers == 0 ("serial mode"): there is no pool; submit() runs the
 *    callable inline on the caller's thread and parallelFor() is a
 *    plain loop. Every byte of output is identical to the pre-executor
 *    code path, which is what the byte-determinism tests pin.
 *  - workers > 0: callables run concurrently, but consumers that need
 *    reproducible floats keep them by construction — the serving layer
 *    computes per-shard partials in parallel and merges them in fixed
 *    shard order, so per-query outputs stay bit-identical to serial
 *    mode. Only cross-query interleaving (stat counter ordering, batch
 *    composition) is scheduling-dependent.
 *  - Causal tracing inherits both halves: span ids are slot-derived
 *    from TraceContext (never from a counter) and sampling follows
 *    submission order, so the canonical span forest of a traced run
 *    is byte-identical between serial and concurrent mode. Because a
 *    pump worker's nested parallelFor() degrades inline, only pump
 *    threads and the caller ever record spans — the recorder's
 *    per-thread ring count stays bounded by workers + 1.
 *
 * Nesting: parallelFor() called from a pool worker (e.g. a query
 * batch handler fanning out per-shard gathers) degrades to inline
 * execution instead of deadlocking on its own pool. Do not block an
 * external thread on parallelFor() while long-running pump tasks
 * occupy every worker (serving::QueryDispatcher documents this).
 */

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>

#include "elasticrec/obs/metric.h"
#include "elasticrec/runtime/thread_pool.h"

namespace erec::runtime {

/** All executor knobs in one place (serving passes these through). */
struct ExecutorOptions
{
    /** Worker threads; 0 selects the deterministic serial mode. */
    std::size_t workers = 0;
    /** Largest coalesced request batch a worker serves at once. */
    std::size_t maxBatchSize = 8;
    /** How long a short batch lingers for more requests, microseconds. */
    std::uint64_t maxBatchDelayUs = 100;
    /** Bounded request-queue capacity (producer backpressure). */
    std::size_t queueCapacity = 1024;
};

/** Point-in-time executor statistics (all snapshots). */
struct ExecutorStats
{
    std::size_t workers = 0;
    std::size_t queueDepth = 0;
    std::size_t busyWorkers = 0;
    std::uint64_t tasksExecuted = 0;
};

class Executor
{
  public:
    explicit Executor(ExecutorOptions options = {});

    /** True in serial mode (no pool; everything runs inline). */
    bool serial() const { return pool_ == nullptr; }

    std::size_t workers() const
    {
        return pool_ == nullptr ? 0 : pool_->numThreads();
    }

    const ExecutorOptions &options() const { return opts_; }

    /**
     * Run a callable: inline (already-ready future) in serial mode, on
     * the pool otherwise. Exceptions surface at future.get() in both
     * modes.
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        if (pool_ != nullptr)
            return pool_->submit(std::forward<F>(fn));
        std::packaged_task<R()> task(std::forward<F>(fn));
        task();
        return task.get_future();
    }

    /**
     * Run body(0..n-1), fork-join. Serial mode, n == 1, or a call from
     * a pool worker runs inline; otherwise the index space is strided
     * across the pool with the caller working too, and the call
     * returns after every index completed. The body must only write
     * disjoint state per index.
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &body);

    /** Snapshot of pool occupancy and task counters. */
    ExecutorStats stats() const;

    /**
     * Publish the stats() snapshot as labelled gauges
     * (erec_executor_workers / _queue_depth / _busy_workers /
     * _tasks_executed). Call from one thread at a time — obs::Registry
     * handles are not internally synchronized.
     */
    void publishStats(obs::Registry &registry,
                      const obs::Labels &labels = {}) const;

    /** The underlying pool; null in serial mode. */
    ThreadPool *pool() { return pool_.get(); }

  private:
    ExecutorOptions opts_;
    std::unique_ptr<ThreadPool> pool_;
};

} // namespace erec::runtime
