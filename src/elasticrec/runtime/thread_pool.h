#pragma once

/**
 * @file
 * Fixed-size worker thread pool: the only place in the library that is
 * allowed to construct std::thread (enforced by the `raw-thread` lint
 * rule). Every concurrent serving path funnels work through here so
 * thread counts stay an explicit, observable resource — the functional
 * analogue of the per-pod CPU requests the paper's Kubernetes setup
 * hands each microservice shard.
 *
 * Semantics:
 *  - submit() never drops work: the destructor drains every queued
 *    task before joining the workers.
 *  - submit() returns a std::future, so exceptions thrown by a task
 *    surface at future.get() instead of terminating a worker.
 *  - onWorkerThread() lets nested fork-join code (Executor::
 *    parallelFor) detect that it already runs on a pool worker and
 *    degrade to inline execution rather than deadlock waiting for a
 *    slot on the pool it occupies.
 */

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/common/thread_annotations.h"

namespace erec::runtime {

class ThreadPool
{
  public:
    /** @param num_threads Worker count; must be at least 1. */
    explicit ThreadPool(std::size_t num_threads);

    /** Drains all queued tasks, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a callable; its result (or exception) is delivered
     * through the returned future. Submitting after destruction has
     * begun is a caller bug (ConfigError).
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        // One task handle per submission: steady-state serving submits
        // long-lived pump loops once, not per-query tasks.
        auto task = std::make_shared<std::packaged_task<R()>>( // ERC_HOT_PATH_ALLOW("one handle per submission; pumps are submitted once, fork-join degrades inline on pool workers")
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        post([task] { (*task)(); });
        return future;
    }

    std::size_t numThreads() const { return workers_.size(); }

    /** Tasks currently queued (excludes tasks being executed). */
    std::size_t queueDepth() const;

    /** Workers currently executing a task (pool occupancy). */
    std::size_t busyWorkers() const;

    /** Tasks completed since construction. */
    std::uint64_t tasksExecuted() const;

    /** True when called from one of this process' pool workers. */
    static bool onWorkerThread();

  private:
    /** Type-erased enqueue behind the template submit(). */
    void post(std::function<void()> task);

    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> tasks_ ERC_GUARDED_BY(mutex_);
    bool stopping_ ERC_GUARDED_BY(mutex_) = false;
    std::size_t busy_ ERC_GUARDED_BY(mutex_) = 0;
    std::uint64_t executed_ ERC_GUARDED_BY(mutex_) = 0;
    std::vector<std::thread> workers_;
};

} // namespace erec::runtime
