#include "elasticrec/core/bucketizer.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::core {

Bucketizer::Bucketizer(std::vector<std::uint64_t> boundaries,
                       std::vector<std::uint32_t> inverse_perm)
    : boundaries_(std::move(boundaries)),
      inversePerm_(std::move(inverse_perm))
{
    ERC_CHECK(!boundaries_.empty(), "need at least one shard");
    std::uint64_t prev = 0;
    for (auto b : boundaries_) {
        ERC_CHECK(b > prev, "boundaries must be strictly increasing");
        prev = b;
    }
    ERC_CHECK(inversePerm_.empty() ||
                  inversePerm_.size() == boundaries_.back(),
              "inverse permutation must cover the whole table");
}

std::uint64_t
Bucketizer::rankOf(std::uint32_t original_id) const
{
    ERC_CHECK(original_id < boundaries_.back(),
              "index ID " << original_id << " out of table range");
    if (inversePerm_.empty())
        return original_id;
    return inversePerm_[original_id];
}

std::uint32_t
Bucketizer::shardOf(std::uint32_t original_id) const
{
    const std::uint64_t rank = rankOf(original_id);
    const auto it =
        std::upper_bound(boundaries_.begin(), boundaries_.end(), rank);
    return static_cast<std::uint32_t>(it - boundaries_.begin());
}

std::vector<workload::SparseLookup>
Bucketizer::bucketize(const workload::SparseLookup &in) const
{
    std::vector<workload::SparseLookup> out;
    bucketizeInto(in, &out);
    return out;
}

void
Bucketizer::bucketizeInto(const workload::SparseLookup &in,
                          std::vector<workload::SparseLookup> *out) const
{
    const std::uint32_t shards = numShards();
    // Refit the buffer: entries keep their index/offset capacity, so
    // warm callers (the dense frontend's per-thread scratch) stop
    // allocating once the per-shard arrays reached steady size.
    out->resize(shards); // ERC_HOT_PATH_ALLOW("refit to shard count; no-op for a warm caller buffer")
    for (auto &lookup : *out) {
        lookup.indices.clear();
        lookup.offsets.clear();
    }
    const std::size_t batch = in.batchSize();

    for (std::size_t b = 0; b < batch; ++b) {
        // Each batch item opens a new offset entry in every shard
        // (Figure 11(b): both shards keep offsets for input 0 and 1).
        for (std::uint32_t s = 0; s < shards; ++s) {
            (*out)[s].offsets.push_back( // ERC_HOT_PATH_ALLOW("amortized: shard buffers reuse capacity across queries")
                static_cast<std::uint32_t>((*out)[s].indices.size()));
        }
        const std::size_t begin = in.offsets[b];
        const std::size_t end =
            (b + 1 < batch) ? in.offsets[b + 1] : in.indices.size();
        ERC_CHECK(begin <= end && end <= in.indices.size(),
                  "offset array is not monotone within the index array");
        for (std::size_t i = begin; i < end; ++i) {
            const std::uint64_t rank = rankOf(in.indices[i]);
            const auto it = std::upper_bound(boundaries_.begin(),
                                             boundaries_.end(), rank);
            const auto s = static_cast<std::uint32_t>(
                it - boundaries_.begin());
            const std::uint64_t shard_begin =
                s == 0 ? 0 : boundaries_[s - 1];
            // Rebase to a shard-local ID (the "subtract the size of the
            // preceding shards" step of Figure 11).
            (*out)[s].indices.push_back( // ERC_HOT_PATH_ALLOW("amortized: shard buffers reuse capacity across queries")
                static_cast<std::uint32_t>(rank - shard_begin));
        }
    }
}

} // namespace erec::core
