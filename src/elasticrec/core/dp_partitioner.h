#pragma once

/**
 * @file
 * Dynamic-programming embedding-table partitioner (Algorithm 2 and
 * Figure 10 of the paper).
 *
 * Given a hotness-sorted table of N rows and a shard-cost function
 * COST(begin, end), the partitioner finds the number of shards and the
 * partitioning points minimizing total estimated memory consumption:
 *
 *   Mem[s][x] = min over m < x of Mem[s-1][m] + COST(m, x)
 *
 * Candidate boundaries may be every row (exact mode, used for small
 * tables and the Figure 10 unit test) or a granule grid (the default
 * for paper-scale 20M-row tables: the recurrence runs over G uniform
 * granules, preserving achievable boundaries up to one granule).
 */

#include <cstdint>
#include <functional>
#include <vector>

namespace erec::core {

/** Cost of a shard covering hotness-sorted rows [begin, end). */
using ShardCostFn =
    std::function<double(std::uint64_t begin, std::uint64_t end)>;

/** The output of the partitioner: shard end boundaries and plan cost. */
struct PartitionPlan
{
    /**
     * Exclusive end row of each shard, strictly increasing; the last
     * element equals the table row count. These are the paper's
     * "partitioning points".
     */
    std::vector<std::uint64_t> boundaries;
    /** Estimated total memory cost of the plan (cost-model units). */
    double cost = 0.0;

    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(boundaries.size());
    }
};

class DpPartitioner
{
  public:
    struct Options
    {
        /** S_max: largest shard count explored. */
        std::uint32_t maxShards = 16;
        /**
         * Number of uniform candidate boundaries. Clamped to the row
         * count; pass >= numRows (or UINT32_MAX) for exact row-level
         * partitioning.
         */
        std::uint32_t granules = 512;
    };

    /**
     * @param num_rows Rows in the (sorted) table.
     * @param cost COST(begin, end) function, half-open 0-based range.
     * @param options Search-space controls.
     */
    DpPartitioner(std::uint64_t num_rows, ShardCostFn cost,
                  Options options);

    /** As above with default Options. */
    DpPartitioner(std::uint64_t num_rows, ShardCostFn cost);

    /** As above, but with explicit candidate boundaries (row indices,
     *  strictly increasing, last == num_rows). */
    DpPartitioner(std::uint64_t num_rows, ShardCostFn cost,
                  std::vector<std::uint64_t> candidates,
                  std::uint32_t max_shards);

    /**
     * Run Algorithm 2: evaluate Mem[s][N] for s = 1..maxShards and
     * return the plan with the minimum memory cost.
     */
    PartitionPlan findOptimalPlan() const;

    /**
     * Best plan using exactly `num_shards` shards (used by the
     * Figure 12(d) manual shard-count sweep).
     */
    PartitionPlan planWithShards(std::uint32_t num_shards) const;

    /**
     * Full cost frontier: entry s-1 holds the optimal plan with exactly
     * s shards, for s = 1..maxShards. One DP pass computes all.
     */
    std::vector<PartitionPlan> costFrontier() const;

    const std::vector<std::uint64_t> &candidates() const
    {
        return candidates_;
    }

  private:
    void runDp() const;

    std::uint64_t numRows_;
    ShardCostFn cost_;
    std::uint32_t maxShards_;
    std::vector<std::uint64_t> candidates_;

    // Memoized DP state (lazily computed once).
    mutable bool solved_ = false;
    /** mem_[s][g]: min cost of covering candidates [0, g] with s+1 shards. */
    mutable std::vector<std::vector<double>> mem_;
    /** parent_[s][g]: candidate index where the last shard begins. */
    mutable std::vector<std::vector<std::uint32_t>> parent_;
};

} // namespace erec::core
