#pragma once

/**
 * @file
 * Memory-utility measurement (Figures 14 and 17 of the paper): the
 * percentage of embeddings within a shard that are actually touched
 * while servicing queries. The paper measures utility over the first
 * 1,000 queries of a run.
 */

#include <cstdint>
#include <vector>

namespace erec::core {

class UtilityTracker
{
  public:
    /**
     * @param boundaries Shard partitioning points in hotness-sorted
     *        space (last entry = table row count). Pass a single
     *        boundary {numRows} for the model-wise monolithic layout.
     */
    explicit UtilityTracker(std::vector<std::uint64_t> boundaries);

    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(boundaries_.size());
    }

    /** Mark one hotness rank as touched. */
    void recordRank(std::uint64_t rank);

    /** Mark many ranks. */
    void recordRanks(const std::vector<std::uint64_t> &ranks);

    /** Rows touched within shard s so far. */
    std::uint64_t touchedRows(std::uint32_t s) const;

    /** Utility of shard s: touched rows / shard rows. */
    double shardUtility(std::uint32_t s) const;

    /** Utility of the whole table. */
    double overallUtility() const;

    /** Rows covered by shard s. */
    std::uint64_t shardRows(std::uint32_t s) const;

  private:
    std::vector<std::uint64_t> boundaries_;
    std::vector<bool> touched_;
    std::vector<std::uint64_t> touchedPerShard_;
};

} // namespace erec::core
