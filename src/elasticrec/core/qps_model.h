#pragma once

/**
 * @file
 * Profiling-based QPS regression model (Section IV-B, Figure 9).
 *
 * ElasticRec performs a one-time profiling of embedding gather
 * operations swept over the number of gathered vectors, records the
 * sustained QPS at each point, and fits a regression the cost model
 * evaluates as QPS(x) for fractional x (Algorithm 1, lines 10/13).
 *
 * The regression is piecewise log-log linear interpolation over the
 * profiled points, which reproduces the lookup-table-plus-regression
 * approach of the paper and is monotone whenever the profile is.
 */

#include <cstdint>
#include <vector>

#include "elasticrec/common/units.h"
#include "elasticrec/hw/latency_model.h"

namespace erec::core {

/** One profiled (gather count, sustained QPS) sample. */
struct ProfilePoint
{
    double gathers;
    double qps;
};

class QpsModel
{
  public:
    /** Fit from explicit profile points (gathers strictly increasing). */
    explicit QpsModel(std::vector<ProfilePoint> points);

    /**
     * One-time profiling pass against a hardware latency model: sweeps
     * gather counts geometrically from 1 to max_gathers and records the
     * QPS a container with `cores` cores sustains (Figure 9).
     *
     * @param lat Hardware latency model of the serving node.
     * @param row_bytes Bytes per embedding row (dim x 4).
     * @param cores Cores allocated to the profiled container.
     * @param max_gathers Largest gather count to profile.
     * @param service_overhead Fixed per-request service overhead added
     *        on top of the raw gather kernel (the microservice RPC
     *        path); pass 0 to profile the bare kernel.
     */
    static QpsModel profile(const hw::LatencyModel &lat, Bytes row_bytes,
                            std::uint32_t cores,
                            std::uint64_t max_gathers = 65536,
                            SimTime service_overhead = 0);

    /** Estimated QPS for gathering x vectors per query (x >= 0). */
    double qps(double gathers) const;

    /** Estimated per-query service latency at x gathers. */
    SimTime serviceTime(double gathers) const;

    const std::vector<ProfilePoint> &points() const { return points_; }

  private:
    std::vector<ProfilePoint> points_;
};

} // namespace erec::core
