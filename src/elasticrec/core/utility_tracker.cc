#include "elasticrec/core/utility_tracker.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::core {

UtilityTracker::UtilityTracker(std::vector<std::uint64_t> boundaries)
    : boundaries_(std::move(boundaries))
{
    ERC_CHECK(!boundaries_.empty(), "need at least one shard");
    std::uint64_t prev = 0;
    for (auto b : boundaries_) {
        ERC_CHECK(b > prev, "boundaries must be strictly increasing");
        prev = b;
    }
    touched_.assign(boundaries_.back(), false);
    touchedPerShard_.assign(boundaries_.size(), 0);
}

void
UtilityTracker::recordRank(std::uint64_t rank)
{
    ERC_CHECK(rank < touched_.size(), "rank out of range");
    if (touched_[rank])
        return;
    touched_[rank] = true;
    const auto it =
        std::upper_bound(boundaries_.begin(), boundaries_.end(), rank);
    ++touchedPerShard_[static_cast<std::size_t>(
        it - boundaries_.begin())];
}

void
UtilityTracker::recordRanks(const std::vector<std::uint64_t> &ranks)
{
    for (auto r : ranks)
        recordRank(r);
}

std::uint64_t
UtilityTracker::touchedRows(std::uint32_t s) const
{
    ERC_CHECK(s < numShards(), "shard index out of range");
    return touchedPerShard_[s];
}

std::uint64_t
UtilityTracker::shardRows(std::uint32_t s) const
{
    ERC_CHECK(s < numShards(), "shard index out of range");
    const std::uint64_t begin = s == 0 ? 0 : boundaries_[s - 1];
    return boundaries_[s] - begin;
}

double
UtilityTracker::shardUtility(std::uint32_t s) const
{
    return static_cast<double>(touchedRows(s)) /
           static_cast<double>(shardRows(s));
}

double
UtilityTracker::overallUtility() const
{
    std::uint64_t touched = 0;
    for (auto t : touchedPerShard_)
        touched += t;
    return static_cast<double>(touched) /
           static_cast<double>(touched_.size());
}

} // namespace erec::core
