#pragma once

/**
 * @file
 * Deployment planning: turns a DLRM workload, a hardware platform and
 * per-table access CDFs into a set of shard specifications that the
 * cluster layer deploys and autoscales.
 *
 * Three planners are provided:
 *  - ElasticRec (the paper's proposal): one dense DNN shard type plus
 *    per-table embedding shards produced by the DP partitioner
 *    (Algorithm 2) over the utility-based cost model (Algorithm 1).
 *  - Model-wise (the baseline): one monolithic shard holding the entire
 *    model; dense and sparse execute as tandem stages inside one
 *    container.
 *  - Model-wise + GPU embedding cache (Section VI-E): monolithic, but a
 *    fraction of embedding gathers hit a GPU-resident cache.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "elasticrec/common/units.h"
#include "elasticrec/core/cost_model.h"
#include "elasticrec/core/dp_partitioner.h"
#include "elasticrec/core/qps_model.h"
#include "elasticrec/embedding/access_cdf.h"
#include "elasticrec/hw/latency_model.h"
#include "elasticrec/model/dlrm_config.h"

namespace erec::core {

enum class ShardKind
{
    Dense,           //!< Bottom/top MLP + interaction microservice.
    SparseEmbedding, //!< One partitioned embedding shard microservice.
    Monolithic,      //!< Whole model in one container (baseline).
};

const char *toString(ShardKind kind);

/** One deployable shard (containerized microservice) type. */
struct ShardSpec
{
    std::string name;
    ShardKind kind = ShardKind::Dense;

    /** Sparse only: which embedding table this shard belongs to. */
    std::uint32_t tableId = 0;
    /** Sparse only: shard index within the table (0 = hottest). */
    std::uint32_t shardId = 0;
    /** Sparse only: covered hotness-sorted row range. */
    std::uint64_t beginRow = 0;
    std::uint64_t endRow = 0;

    /** Container memory request (parameters + min allocation). */
    Bytes memBytes = 0;
    /** Cores requested by one replica. */
    std::uint32_t cpuCores = 1;
    /** True when the container also requests the node's GPU. */
    bool usesGpu = false;

    /** Sustained throughput of one replica (queries/sec). */
    double qpsPerReplica = 0.0;
    /**
     * Per-query processing latency of one replica, excluding queueing
     * and network (for monolithic shards this is the sum of the dense
     * and sparse stage latencies; throughput is set by the slower
     * stage).
     */
    SimTime serviceLatency = 0;
    /**
     * Per-stage processing latencies. Dense and sparse shards have one
     * stage; monolithic shards have two (dense stage, sparse stage)
     * that pipeline across queries inside the container.
     */
    std::vector<SimTime> stageLatencies;
    /** Sparse only: expected gathers per query landing here (n_s). */
    double expectedGathers = 0.0;
};

/** A complete deployment plan for one serving policy. */
struct DeploymentPlan
{
    std::string policy;
    model::DlrmConfig config;
    std::vector<ShardSpec> shards;

    /** Replicas of `spec` needed to sustain target_qps (>= 1). */
    static std::uint32_t replicasForTarget(const ShardSpec &spec,
                                           double target_qps);

    /** Total memory consumption at the given fleet target QPS. */
    Bytes memoryForTarget(double target_qps) const;

    /** Total replica count across all shard types at the target. */
    std::uint32_t totalReplicasForTarget(double target_qps) const;

    /** Shards belonging to one table, sorted by shardId. */
    std::vector<const ShardSpec *> tableShards(std::uint32_t table) const;

    /** The dense (or monolithic) shard spec. */
    const ShardSpec &frontendShard() const;
};

/** Planner knobs. */
struct PlannerOptions
{
    /** DP candidate granularity over each table. */
    std::uint32_t granules = 512;
    /** S_max for the DP partitioner. */
    std::uint32_t maxShards = 16;
    /** Per-container minimum memory allocation. */
    Bytes minMemAlloc = 256 * units::kMiB;
    /** Cores requested by one dense shard replica. */
    std::uint32_t denseCores = 16;
    /** Cores requested by one sparse shard replica. */
    std::uint32_t sparseCores = 1;
    /** Target-traffic constant of the DP cost model (Algorithm 1). */
    double dpTargetTraffic = 1000.0;
    /**
     * Manual shard-count override for the Figure 12(d) sweep: when
     * non-zero, every table is partitioned into exactly this many
     * shards instead of the DP optimum.
     */
    std::uint32_t forceShards = 0;
    /**
     * When false, skip the hotness sort (Figure 8(a) ablation): the
     * CDF degenerates to uniform mass per row.
     */
    bool sortTables = true;
};

/**
 * Platform-tuned default options: sparse shards request 1 core on the
 * 64-core CPU-only nodes and 2 cores on the 32-core CPU-GPU nodes
 * (where each container's memory-bandwidth share would otherwise be
 * too thin to sustain hot-shard traffic).
 */
PlannerOptions defaultPlannerOptions(const hw::NodeSpec &node);

class Planner
{
  public:
    Planner(model::DlrmConfig config, hw::NodeSpec node,
            PlannerOptions options = {});

    /** Construct with platform-tuned default options. */
    static Planner forPlatform(model::DlrmConfig config,
                               const hw::NodeSpec &node);

    const model::DlrmConfig &config() const { return config_; }
    const hw::NodeSpec &nodeSpec() const { return lat_.node(); }
    const PlannerOptions &options() const { return options_; }

    /**
     * Build the ElasticRec plan.
     * @param cdfs Access CDF per table. Pass a single-element vector to
     *        reuse one CDF for every table.
     */
    DeploymentPlan planElasticRec(
        const std::vector<std::shared_ptr<const embedding::AccessCdf>>
            &cdfs) const;

    /** Build the model-wise baseline plan. */
    DeploymentPlan planModelWise() const;

    /**
     * Model-wise + GPU embedding cache (Section VI-E): `hit_rate` of
     * embedding gathers are served from GPU HBM (the paper evaluates
     * 0.9). Requires a GPU platform.
     */
    DeploymentPlan planModelWiseGpuCache(double hit_rate = 0.9) const;

    /**
     * Column-wise partitioning baseline (the alternative table-
     * partitioning scheme discussed in Section II-D via Mudigere et
     * al.): each table is split across the embedding dimension into
     * `columns` shards of dim/columns elements. Every gather touches
     * every shard (each returns a partial vector), so all shards see
     * identical load and scale together — no utility-based savings are
     * possible, which is exactly why ElasticRec partitions row-wise by
     * hotness instead.
     */
    DeploymentPlan planColumnWise(std::uint32_t columns) const;

    /**
     * Extension (beyond the paper): ElasticRec with the hottest rows
     * of every table resident in the dense shard's GPU HBM. The dense
     * container serves hot gathers from a fused HBM lookup (no RPC, no
     * CPU hot-shard replicas); only the cold remainder of each table
     * is partitioned into CPU sparse shards. A natural synthesis of
     * Section IV's elastic shards with Section VI-E's GPU embedding
     * cache. Requires a GPU platform.
     *
     * @param cdfs Access CDF per table (or a single shared one).
     * @param hot_rows_per_table Rows of each table pinned in HBM;
     *        must leave room for the dense parameters and fit the
     *        device (validated against half the HBM capacity).
     */
    DeploymentPlan planElasticRecHotCache(
        const std::vector<std::shared_ptr<const embedding::AccessCdf>>
            &cdfs,
        std::uint64_t hot_rows_per_table) const;

    /** Run Algorithm 2 on one table's CDF (exposed for benchmarks). */
    PartitionPlan partitionTable(const embedding::AccessCdf &cdf) const;

    /** The profiling-based QPS regression for a sparse container. */
    std::shared_ptr<const QpsModel> sparseQpsModel() const;

    /** One dense shard replica's throughput. */
    double denseQpsPerReplica() const;

    /** One dense shard replica's per-query latency. */
    SimTime denseLatency() const;

    /** Monolithic sparse-stage latency (all tables, local). */
    SimTime monolithicSparseLatency() const;

    const hw::LatencyModel &latencyModel() const { return lat_; }

  private:
    CostModelParams costParams() const;
    ShardSpec makeDenseSpec() const;
    SimTime denseStageLatency(std::uint32_t cores) const;

    model::DlrmConfig config_;
    hw::LatencyModel lat_;
    PlannerOptions options_;
    std::shared_ptr<const QpsModel> sparseQps_;
};

} // namespace erec::core
