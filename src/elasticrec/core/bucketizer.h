#pragma once

/**
 * @file
 * Query bucketization (Section IV-C, Figure 11).
 *
 * A query addresses the original, un-partitioned table through an index
 * array and an offset array. After partitioning, the dense shard must
 * split those arrays per embedding shard and rebase each shard's index
 * IDs to shard-local values (subtracting the sizes of the preceding
 * shards). Every shard keeps a full-batch offset array so the shard can
 * pool per batch item independently, exactly as in Figure 11(b).
 */

#include <cstdint>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::core {

class Bucketizer
{
  public:
    /**
     * @param boundaries Exclusive end rank of each shard in
     *        hotness-sorted space (the partitioning points); the last
     *        entry is the table row count.
     * @param inverse_perm inverse_perm[originalId] = hotness rank.
     *        Pass empty when queries already carry sorted-space IDs.
     */
    Bucketizer(std::vector<std::uint64_t> boundaries,
               std::vector<std::uint32_t> inverse_perm = {});

    std::uint32_t numShards() const
    {
        return static_cast<std::uint32_t>(boundaries_.size());
    }

    /**
     * Split one table's lookup into per-shard lookups with shard-local
     * index IDs. The result always has numShards() entries; shards that
     * receive no gathers still carry a full-batch offset array with an
     * empty index array.
     */
    std::vector<workload::SparseLookup>
    bucketize(const workload::SparseLookup &in) const;

    /**
     * bucketize() into a caller-owned buffer whose per-shard index and
     * offset arrays keep their capacity across calls — the serving
     * path's variant, allocation-free once the buffers are warm.
     * Results are identical to bucketize().
     */
    ERC_HOT_PATH
    void bucketizeInto(const workload::SparseLookup &in,
                       std::vector<workload::SparseLookup> *out) const;

    /** Shard that will serve the given original index ID. */
    std::uint32_t shardOf(std::uint32_t original_id) const;

    const std::vector<std::uint64_t> &boundaries() const
    {
        return boundaries_;
    }

  private:
    std::uint64_t rankOf(std::uint32_t original_id) const;

    std::vector<std::uint64_t> boundaries_;
    std::vector<std::uint32_t> inversePerm_;
};

} // namespace erec::core
