#include "elasticrec/core/dp_partitioner.h"

#include <algorithm>
#include <limits>

#include "elasticrec/common/error.h"

namespace erec::core {

namespace {

std::vector<std::uint64_t>
uniformCandidates(std::uint64_t num_rows, std::uint32_t granules)
{
    // num_rows == 0 is rejected by the constructor body; return a
    // placeholder so the mem-initializer stays well-defined.
    if (num_rows == 0 || granules == 0)
        return {num_rows};
    const std::uint64_t g =
        std::min<std::uint64_t>(granules, num_rows);
    const std::uint64_t per = (num_rows + g - 1) / g;
    std::vector<std::uint64_t> candidates;
    for (std::uint64_t row = per; row < num_rows; row += per)
        candidates.push_back(row);
    candidates.push_back(num_rows);
    return candidates;
}

} // namespace

DpPartitioner::DpPartitioner(std::uint64_t num_rows, ShardCostFn cost,
                             Options options)
    : DpPartitioner(num_rows, std::move(cost),
                    uniformCandidates(num_rows, options.granules),
                    options.maxShards)
{
}

DpPartitioner::DpPartitioner(std::uint64_t num_rows, ShardCostFn cost)
    : DpPartitioner(num_rows, std::move(cost), Options{})
{
}

DpPartitioner::DpPartitioner(std::uint64_t num_rows, ShardCostFn cost,
                             std::vector<std::uint64_t> candidates,
                             std::uint32_t max_shards)
    : numRows_(num_rows), cost_(std::move(cost)),
      maxShards_(max_shards), candidates_(std::move(candidates))
{
    ERC_CHECK(num_rows > 0, "table needs at least one row");
    ERC_CHECK(cost_ != nullptr, "null cost function");
    ERC_CHECK(max_shards >= 1, "need at least one shard");
    ERC_CHECK(!candidates_.empty() && candidates_.back() == numRows_,
              "last candidate boundary must equal the row count");
    std::uint64_t prev = 0;
    for (auto c : candidates_) {
        ERC_CHECK(c > prev || (c == candidates_.front() && c > 0),
                  "candidates must be strictly increasing and positive");
        prev = c;
    }
    maxShards_ = std::min<std::uint32_t>(
        maxShards_, static_cast<std::uint32_t>(candidates_.size()));
}

void
DpPartitioner::runDp() const
{
    if (solved_)
        return;

    const auto g_count = static_cast<std::uint32_t>(candidates_.size());
    constexpr double kInf = std::numeric_limits<double>::infinity();
    constexpr std::uint32_t kNoParent =
        std::numeric_limits<std::uint32_t>::max();

    mem_.assign(maxShards_, std::vector<double>(g_count, kInf));
    parent_.assign(maxShards_,
                   std::vector<std::uint32_t>(g_count, kNoParent));

    // Row index where the shard beginning at candidate slot m starts:
    // slot 0 means row 0, slot m means candidates_[m - 1].
    auto begin_row = [&](std::uint32_t m) -> std::uint64_t {
        return m == 0 ? 0 : candidates_[m - 1];
    };

    // Initialization (Algorithm 2, lines 2-4): one shard covering the
    // first (g+1) candidate ranges.
    for (std::uint32_t g = 0; g < g_count; ++g) {
        mem_[0][g] = cost_(0, candidates_[g]);
        parent_[0][g] = 0;
    }

    // Recurrence (lines 5-19): the last shard spans candidate slots
    // [m+1, g]; the first s shards cover slots [0, m].
    for (std::uint32_t s = 1; s < maxShards_; ++s) {
        for (std::uint32_t g = s; g < g_count; ++g) {
            double best = kInf;
            std::uint32_t best_m = kNoParent;
            for (std::uint32_t m = s - 1; m < g; ++m) {
                const double prev_mem = mem_[s - 1][m];
                if (prev_mem == kInf)
                    continue;
                const double last_mem =
                    cost_(begin_row(m + 1), candidates_[g]);
                const double total = prev_mem + last_mem;
                if (total < best) {
                    best = total;
                    best_m = m;
                }
            }
            mem_[s][g] = best;
            parent_[s][g] = best_m;
        }
    }
    solved_ = true;
}

PartitionPlan
DpPartitioner::planWithShards(std::uint32_t num_shards) const
{
    ERC_CHECK(num_shards >= 1 && num_shards <= maxShards_,
              "shard count " << num_shards << " outside [1, "
                             << maxShards_ << "]");
    runDp();

    const auto g_last = static_cast<std::uint32_t>(candidates_.size() - 1);
    const std::uint32_t s = num_shards - 1;
    ERC_CHECK(mem_[s][g_last] !=
                  std::numeric_limits<double>::infinity(),
              "no feasible plan with " << num_shards << " shards");

    PartitionPlan plan;
    plan.cost = mem_[s][g_last];
    plan.boundaries.resize(num_shards);
    std::uint32_t g = g_last;
    for (std::uint32_t level = s; ; --level) {
        plan.boundaries[level] = candidates_[g];
        if (level == 0)
            break;
        g = parent_[level][g];
    }
    return plan;
}

PartitionPlan
DpPartitioner::findOptimalPlan() const
{
    runDp();
    const auto g_last = static_cast<std::uint32_t>(candidates_.size() - 1);
    std::uint32_t best_s = 0;
    for (std::uint32_t s = 1; s < maxShards_; ++s) {
        if (mem_[s][g_last] < mem_[best_s][g_last])
            best_s = s;
    }
    return planWithShards(best_s + 1);
}

std::vector<PartitionPlan>
DpPartitioner::costFrontier() const
{
    std::vector<PartitionPlan> frontier;
    frontier.reserve(maxShards_);
    for (std::uint32_t s = 1; s <= maxShards_; ++s)
        frontier.push_back(planWithShards(s));
    return frontier;
}

} // namespace erec::core
