#include "elasticrec/core/qps_model.h"

#include <algorithm>
#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::core {

QpsModel::QpsModel(std::vector<ProfilePoint> points)
    : points_(std::move(points))
{
    ERC_CHECK(points_.size() >= 2, "need at least two profile points");
    for (std::size_t i = 0; i < points_.size(); ++i) {
        ERC_CHECK(points_[i].gathers > 0 && points_[i].qps > 0,
                  "profile points must be positive");
        if (i > 0)
            ERC_CHECK(points_[i].gathers > points_[i - 1].gathers,
                      "profile gather counts must be strictly increasing");
    }
}

QpsModel
QpsModel::profile(const hw::LatencyModel &lat, Bytes row_bytes,
                  std::uint32_t cores, std::uint64_t max_gathers,
                  SimTime service_overhead)
{
    ERC_CHECK(max_gathers >= 2, "profile sweep needs a range");
    std::vector<ProfilePoint> pts;
    std::uint64_t prev = 0;
    for (double x = 1.0; ; x *= 1.6) {
        auto g = static_cast<std::uint64_t>(x);
        g = std::min(g, max_gathers);
        if (g == prev) {
            if (g == max_gathers)
                break;
            continue;
        }
        prev = g;
        const SimTime t =
            lat.gatherCpuTime(g, row_bytes, cores) + service_overhead;
        pts.push_back({static_cast<double>(g),
                       1.0 / units::toSeconds(std::max<SimTime>(t, 1))});
        if (g == max_gathers)
            break;
    }
    return QpsModel(std::move(pts));
}

double
QpsModel::qps(double gathers) const
{
    const double x = std::max(gathers, points_.front().gathers);
    if (x >= points_.back().gathers) {
        // Extrapolate beyond the profiled range with the last segment's
        // log-log slope.
        const auto &a = points_[points_.size() - 2];
        const auto &b = points_.back();
        const double slope = std::log(b.qps / a.qps) /
                             std::log(b.gathers / a.gathers);
        return b.qps * std::pow(x / b.gathers, slope);
    }
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), x,
        [](const ProfilePoint &p, double g) { return p.gathers < g; });
    const auto hi = (it == points_.begin()) ? it + 1 : it;
    const auto lo = hi - 1;
    const double frac = std::log(x / lo->gathers) /
                        std::log(hi->gathers / lo->gathers);
    return lo->qps * std::pow(hi->qps / lo->qps, frac);
}

SimTime
QpsModel::serviceTime(double gathers) const
{
    const double q = qps(gathers);
    return units::fromSeconds(1.0 / q);
}

} // namespace erec::core
