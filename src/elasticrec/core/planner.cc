#include "elasticrec/core/planner.h"

#include <algorithm>
#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::core {

const char *
toString(ShardKind kind)
{
    switch (kind) {
      case ShardKind::Dense: return "dense";
      case ShardKind::SparseEmbedding: return "sparse";
      case ShardKind::Monolithic: return "monolithic";
    }
    return "?";
}

std::uint32_t
DeploymentPlan::replicasForTarget(const ShardSpec &spec, double target_qps)
{
    ERC_CHECK(spec.qpsPerReplica > 0, "shard has no throughput estimate");
    const double raw = target_qps / spec.qpsPerReplica;
    return static_cast<std::uint32_t>(std::max(1.0, std::ceil(raw)));
}

Bytes
DeploymentPlan::memoryForTarget(double target_qps) const
{
    Bytes total = 0;
    for (const auto &s : shards)
        total += Bytes{replicasForTarget(s, target_qps)} * s.memBytes;
    return total;
}

std::uint32_t
DeploymentPlan::totalReplicasForTarget(double target_qps) const
{
    std::uint32_t total = 0;
    for (const auto &s : shards)
        total += replicasForTarget(s, target_qps);
    return total;
}

std::vector<const ShardSpec *>
DeploymentPlan::tableShards(std::uint32_t table) const
{
    std::vector<const ShardSpec *> out;
    for (const auto &s : shards) {
        if (s.kind == ShardKind::SparseEmbedding && s.tableId == table)
            out.push_back(&s);
    }
    std::sort(out.begin(), out.end(),
              [](const ShardSpec *a, const ShardSpec *b) {
                  return a->shardId < b->shardId;
              });
    return out;
}

const ShardSpec &
DeploymentPlan::frontendShard() const
{
    for (const auto &s : shards) {
        if (s.kind == ShardKind::Dense || s.kind == ShardKind::Monolithic)
            return s;
    }
    panic("deployment plan has no frontend shard");
}

PlannerOptions
defaultPlannerOptions(const hw::NodeSpec &node)
{
    PlannerOptions opt;
    if (node.hasGpu) {
        opt.sparseCores = 2;
        // GPU-centric dense containers only need host cores to feed
        // the accelerator.
        opt.denseCores = 4;
        // GKE container images (CUDA runtime included) carry a larger
        // baseline footprint; with this the DP chooses 3 shards per
        // table for all three workloads, matching Section VI-C.
        opt.minMemAlloc = 512 * units::kMiB;
    }
    return opt;
}

Planner
Planner::forPlatform(model::DlrmConfig config, const hw::NodeSpec &node)
{
    return Planner(std::move(config), node, defaultPlannerOptions(node));
}

Planner::Planner(model::DlrmConfig config, hw::NodeSpec node,
                 PlannerOptions options)
    : config_(std::move(config)), lat_(std::move(node)),
      options_(options)
{
    ERC_CHECK(options_.denseCores > 0 && options_.sparseCores > 0,
              "shard core requests must be positive");
    ERC_CHECK(options_.denseCores <= lat_.node().cpu.logicalCores &&
                  options_.sparseCores <= lat_.node().cpu.logicalCores,
              "shard core request exceeds the node size");
    const Bytes row_bytes = Bytes{config_.embeddingDim} * sizeof(float);
    const auto max_gathers = std::max<std::uint64_t>(
        65536, 4 * config_.gathersPerQueryPerTable());
    sparseQps_ = std::make_shared<QpsModel>(QpsModel::profile(
        lat_, row_bytes, options_.sparseCores, max_gathers,
        static_cast<SimTime>(lat_.node().cpu.sparseRpcOverheadUs)));
}

CostModelParams
Planner::costParams() const
{
    CostModelParams p;
    p.targetTraffic = options_.dpTargetTraffic;
    p.gathersPerQuery =
        static_cast<double>(config_.gathersPerQueryPerTable());
    p.rowBytes = Bytes{config_.embeddingDim} * sizeof(float);
    p.minMemAlloc = options_.minMemAlloc;
    return p;
}

SimTime
Planner::denseStageLatency(std::uint32_t cores) const
{
    const std::uint64_t flops = config_.denseFlopsPerQuery();
    if (lat_.node().hasGpu) {
        // Inputs (dense features), pooled embeddings (produced on the
        // CPU side) and outputs cross PCIe each query.
        const Bytes io =
            Bytes{4} * config_.batchSize *
                (config_.bottomMlp.inputDim() +
                 config_.embeddingDim * config_.numTables + 1);
        return lat_.denseGpuTime(flops, io);
    }
    return lat_.denseCpuTime(flops, cores);
}

SimTime
Planner::denseLatency() const
{
    return denseStageLatency(options_.denseCores);
}

double
Planner::denseQpsPerReplica() const
{
    return 1.0 / units::toSeconds(std::max<SimTime>(denseLatency(), 1));
}

SimTime
Planner::monolithicSparseLatency() const
{
    const Bytes row_bytes = Bytes{config_.embeddingDim} * sizeof(float);
    const SimTime per_table = lat_.gatherCpuTime(
        config_.gathersPerQueryPerTable(), row_bytes,
        lat_.node().cpu.logicalCores);
    return per_table * config_.numTables;
}

ShardSpec
Planner::makeDenseSpec() const
{
    ShardSpec spec;
    spec.name = "dense";
    spec.kind = ShardKind::Dense;
    spec.memBytes = config_.denseParamBytes() + options_.minMemAlloc;
    spec.cpuCores = options_.denseCores;
    spec.usesGpu = lat_.node().hasGpu;
    spec.serviceLatency = denseLatency();
    spec.stageLatencies = {spec.serviceLatency};
    spec.qpsPerReplica = denseQpsPerReplica();
    return spec;
}

std::shared_ptr<const QpsModel>
Planner::sparseQpsModel() const
{
    return sparseQps_;
}

PartitionPlan
Planner::partitionTable(const embedding::AccessCdf &cdf) const
{
    auto cdf_ptr = std::make_shared<embedding::AccessCdf>(cdf);
    CostModel cost(cdf_ptr, sparseQps_, costParams());
    // Align the DP candidate grid with the CDF granules so boundary
    // interpolation error stays inside one granule.
    std::vector<std::uint64_t> candidates;
    const auto g = std::min(options_.granules, cdf.granules());
    for (std::uint32_t i = 1; i <= g; ++i) {
        const std::uint64_t row =
            cdf.rowsAtGranule(cdf.granules() * i / g);
        if (candidates.empty() || row > candidates.back())
            candidates.push_back(row);
    }
    DpPartitioner dp(
        cdf.numRows(),
        [&cost](std::uint64_t b, std::uint64_t e) {
            return cost.cost(b, e);
        },
        std::move(candidates), options_.maxShards);
    if (options_.forceShards > 0)
        return dp.planWithShards(options_.forceShards);
    return dp.findOptimalPlan();
}

DeploymentPlan
Planner::planElasticRec(
    const std::vector<std::shared_ptr<const embedding::AccessCdf>> &cdfs)
    const
{
    ERC_CHECK(cdfs.size() == 1 || cdfs.size() == config_.numTables,
              "pass one CDF or one per table");
    DeploymentPlan plan;
    plan.policy = "elasticrec";
    plan.config = config_;
    plan.shards.push_back(makeDenseSpec());

    const Bytes row_bytes = Bytes{config_.embeddingDim} * sizeof(float);
    const double n_t =
        static_cast<double>(config_.gathersPerQueryPerTable());

    // When two tables share the same CDF object their partition plans
    // are identical; cache by pointer.
    std::shared_ptr<const embedding::AccessCdf> cached_cdf;
    PartitionPlan cached_plan;

    for (std::uint32_t t = 0; t < config_.numTables; ++t) {
        auto cdf = cdfs.size() == 1 ? cdfs[0] : cdfs[t];
        ERC_CHECK(cdf != nullptr, "null CDF for table " << t);
        ERC_CHECK(cdf->numRows() == config_.rowsPerTable,
                  "CDF row count mismatch for table " << t);
        auto effective = cdf;
        if (!options_.sortTables) {
            // Figure 8(a) ablation: partition the unsorted table, where
            // hot rows are dispersed uniformly, i.e. mass is linear in
            // the row count.
            const std::uint64_t rows = cdf->numRows();
            effective = std::make_shared<embedding::AccessCdf>(
                embedding::AccessCdf::fromMassFunction(
                    rows,
                    [rows](std::uint64_t x) {
                        return static_cast<double>(x) /
                               static_cast<double>(rows);
                    },
                    cdf->granules()));
        }
        if (effective != cached_cdf) {
            cached_plan = partitionTable(*effective);
            cached_cdf = effective;
        }
        const PartitionPlan &pp = cached_plan;

        std::uint64_t begin = 0;
        for (std::uint32_t s = 0; s < pp.numShards(); ++s) {
            const std::uint64_t end = pp.boundaries[s];
            ShardSpec spec;
            spec.name = "t" + std::to_string(t) + "-s" +
                        std::to_string(s);
            spec.kind = ShardKind::SparseEmbedding;
            spec.tableId = t;
            spec.shardId = s;
            spec.beginRow = begin;
            spec.endRow = end;
            spec.memBytes =
                (end - begin) * row_bytes + options_.minMemAlloc;
            spec.cpuCores = options_.sparseCores;
            spec.usesGpu = false;
            spec.expectedGathers =
                effective->massOfRange(begin, end) * n_t;
            spec.qpsPerReplica = sparseQps_->qps(spec.expectedGathers);
            spec.serviceLatency =
                sparseQps_->serviceTime(spec.expectedGathers);
            spec.stageLatencies = {spec.serviceLatency};
            plan.shards.push_back(std::move(spec));
            begin = end;
        }
    }
    return plan;
}

DeploymentPlan
Planner::planModelWise() const
{
    DeploymentPlan plan;
    plan.policy = "model-wise";
    plan.config = config_;

    const std::uint32_t cores = lat_.node().cpu.logicalCores;
    const SimTime dense_t = denseStageLatency(cores);
    const SimTime sparse_t = monolithicSparseLatency();

    ShardSpec spec;
    spec.name = "model-wise";
    spec.kind = ShardKind::Monolithic;
    spec.memBytes = config_.totalParamBytes() + options_.minMemAlloc;
    spec.cpuCores = cores;
    spec.usesGpu = lat_.node().hasGpu;
    // Dense and sparse stages pipeline across queries inside the
    // container: throughput is set by the slower stage, latency is the
    // sum (Figure 4's premise).
    spec.serviceLatency = dense_t + sparse_t;
    spec.stageLatencies = {dense_t, sparse_t};
    spec.qpsPerReplica =
        1.0 /
        units::toSeconds(std::max<SimTime>(std::max(dense_t, sparse_t),
                                           1));
    spec.expectedGathers = static_cast<double>(
        config_.gathersPerQueryPerTable() * config_.numTables);
    plan.shards.push_back(std::move(spec));
    return plan;
}

DeploymentPlan
Planner::planColumnWise(std::uint32_t columns) const
{
    ERC_CHECK(columns >= 1 && columns <= config_.embeddingDim,
              "column count must be in [1, embedding dim]");
    ERC_CHECK(config_.embeddingDim % columns == 0,
              "embedding dim must divide evenly into column shards");
    DeploymentPlan plan;
    plan.policy = "column-wise";
    plan.config = config_;
    plan.shards.push_back(makeDenseSpec());

    const std::uint32_t cols_per_shard = config_.embeddingDim / columns;
    const Bytes shard_row_bytes = Bytes{cols_per_shard} * sizeof(float);
    const double n_t =
        static_cast<double>(config_.gathersPerQueryPerTable());

    // Column shards answer every gather of every query, moving a
    // 1/columns slice of each row; profile a QPS model for the
    // narrower rows.
    const auto col_qps = QpsModel::profile(
        lat_, shard_row_bytes, options_.sparseCores,
        std::max<std::uint64_t>(65536,
                                4 * config_.gathersPerQueryPerTable()),
        static_cast<SimTime>(lat_.node().cpu.sparseRpcOverheadUs));

    for (std::uint32_t t = 0; t < config_.numTables; ++t) {
        for (std::uint32_t c = 0; c < columns; ++c) {
            ShardSpec spec;
            spec.name = "t" + std::to_string(t) + "-c" +
                        std::to_string(c);
            spec.kind = ShardKind::SparseEmbedding;
            spec.tableId = t;
            spec.shardId = c;
            spec.beginRow = 0;
            spec.endRow = config_.rowsPerTable;
            spec.memBytes = config_.rowsPerTable * shard_row_bytes +
                            options_.minMemAlloc;
            spec.cpuCores = options_.sparseCores;
            spec.expectedGathers = n_t;
            spec.qpsPerReplica = col_qps.qps(n_t);
            spec.serviceLatency = col_qps.serviceTime(n_t);
            spec.stageLatencies = {spec.serviceLatency};
            plan.shards.push_back(std::move(spec));
        }
    }
    return plan;
}

DeploymentPlan
Planner::planElasticRecHotCache(
    const std::vector<std::shared_ptr<const embedding::AccessCdf>> &cdfs,
    std::uint64_t hot_rows_per_table) const
{
    ERC_CHECK(lat_.node().hasGpu,
              "the hot-cache extension needs a GPU platform");
    ERC_CHECK(cdfs.size() == 1 || cdfs.size() == config_.numTables,
              "pass one CDF or one per table");
    ERC_CHECK(hot_rows_per_table > 0 &&
                  hot_rows_per_table < config_.rowsPerTable,
              "hot prefix must be a proper, non-empty table prefix");
    const Bytes row_bytes = Bytes{config_.embeddingDim} * sizeof(float);
    const Bytes hbm_use = hot_rows_per_table * row_bytes *
                          config_.numTables;
    ERC_CHECK(hbm_use <= lat_.node().gpu.hbmCapacity / 2,
              "hot prefixes ("
                  << units::formatBytes(hbm_use)
                  << ") exceed half the HBM capacity");

    DeploymentPlan plan;
    plan.policy = "elasticrec-hot-cache";
    plan.config = config_;

    const double n_t =
        static_cast<double>(config_.gathersPerQueryPerTable());

    // Dense shard: original dense stage plus the fused HBM lookups of
    // every table's hot prefix. HBM-resident rows also count toward
    // the container's memory footprint.
    ShardSpec dense = makeDenseSpec();
    SimTime cache_t = 0;
    double hot_mass_total = 0.0;
    for (std::uint32_t t = 0; t < config_.numTables; ++t) {
        const auto &cdf = cdfs.size() == 1 ? cdfs[0] : cdfs[t];
        ERC_CHECK(cdf != nullptr, "null CDF for table " << t);
        const double hot_mass =
            cdf->massOfTopRows(hot_rows_per_table);
        hot_mass_total += hot_mass;
        const auto hot_gathers = static_cast<std::size_t>(
            hot_mass * n_t);
        cache_t += lat_.cachedGatherTime(
            std::max<std::size_t>(1, hot_gathers), 1.0, row_bytes,
            dense.cpuCores);
    }
    dense.serviceLatency += cache_t;
    dense.stageLatencies = {dense.serviceLatency};
    dense.qpsPerReplica =
        1.0 / units::toSeconds(std::max<SimTime>(dense.serviceLatency,
                                                 1));
    dense.memBytes += hbm_use;
    dense.expectedGathers =
        hot_mass_total / config_.numTables * n_t;
    plan.shards.push_back(std::move(dense));

    // Cold remainder: DP-partition rows [hot, N) of each table using
    // the cost of absolute row ranges shifted into the cold region.
    std::shared_ptr<const embedding::AccessCdf> cached_cdf;
    PartitionPlan cached_plan;
    for (std::uint32_t t = 0; t < config_.numTables; ++t) {
        const auto &cdf = cdfs.size() == 1 ? cdfs[0] : cdfs[t];
        if (cdf != cached_cdf) {
            CostModel cost(cdf, sparseQps_, costParams());
            const std::uint64_t cold_rows =
                config_.rowsPerTable - hot_rows_per_table;
            DpPartitioner::Options dp_opt;
            dp_opt.maxShards = options_.maxShards;
            dp_opt.granules = options_.granules;
            DpPartitioner dp(
                cold_rows,
                [&cost, hot_rows_per_table](std::uint64_t b,
                                            std::uint64_t e) {
                    return cost.cost(hot_rows_per_table + b,
                                     hot_rows_per_table + e);
                },
                dp_opt);
            cached_plan = dp.findOptimalPlan();
            cached_cdf = cdf;
        }
        std::uint64_t begin = hot_rows_per_table;
        for (std::uint32_t s = 0; s < cached_plan.numShards(); ++s) {
            const std::uint64_t end =
                hot_rows_per_table + cached_plan.boundaries[s];
            ShardSpec spec;
            spec.name = "t" + std::to_string(t) + "-s" +
                        std::to_string(s);
            spec.kind = ShardKind::SparseEmbedding;
            spec.tableId = t;
            spec.shardId = s;
            spec.beginRow = begin;
            spec.endRow = end;
            spec.memBytes =
                (end - begin) * row_bytes + options_.minMemAlloc;
            spec.cpuCores = options_.sparseCores;
            spec.expectedGathers = cdf->massOfRange(begin, end) * n_t;
            spec.qpsPerReplica =
                sparseQps_->qps(spec.expectedGathers);
            spec.serviceLatency =
                sparseQps_->serviceTime(spec.expectedGathers);
            spec.stageLatencies = {spec.serviceLatency};
            plan.shards.push_back(std::move(spec));
            begin = end;
        }
    }
    return plan;
}

DeploymentPlan
Planner::planModelWiseGpuCache(double hit_rate) const
{
    ERC_CHECK(lat_.node().hasGpu,
              "the GPU-cache baseline needs a GPU platform");
    ERC_CHECK(hit_rate > 0.0 && hit_rate < 1.0,
              "cache hit rate must be in (0, 1)");
    DeploymentPlan plan;
    plan.policy = "model-wise-cache";
    plan.config = config_;

    const std::uint32_t cores = lat_.node().cpu.logicalCores;
    const Bytes row_bytes = Bytes{config_.embeddingDim} * sizeof(float);
    const auto n_t = config_.gathersPerQueryPerTable();

    const SimTime dense_t = denseStageLatency(cores);
    const SimTime sparse_t =
        lat_.cachedGatherTime(n_t, hit_rate, row_bytes, cores) *
        config_.numTables;

    ShardSpec spec;
    spec.name = "model-wise-cache";
    spec.kind = ShardKind::Monolithic;
    // CPU memory still holds every table (the cache is HBM-resident).
    spec.memBytes = config_.totalParamBytes() + options_.minMemAlloc;
    spec.cpuCores = cores;
    spec.usesGpu = true;
    spec.serviceLatency = dense_t + sparse_t;
    spec.stageLatencies = {dense_t, sparse_t};
    spec.qpsPerReplica =
        1.0 /
        units::toSeconds(std::max<SimTime>(std::max(dense_t, sparse_t),
                                           1));
    spec.expectedGathers =
        static_cast<double>(n_t * config_.numTables);
    plan.shards.push_back(std::move(spec));
    return plan;
}

} // namespace erec::core
