#pragma once

/**
 * @file
 * Deployment-cost estimation (Algorithm 1 of the paper).
 *
 * For a candidate embedding shard covering sorted rows [begin, end):
 *
 *   REPLICAS(begin, end):
 *     probability   = CDF(end) - CDF(begin)
 *     n_s           = probability x n_t
 *     estimated_QPS = QPS(n_s)            (profiling regression)
 *     num_replicas  = target_traffic / estimated_QPS
 *
 *   CAPACITY(begin, end) = rows x row_bytes
 *
 *   COST(begin, end) = num_replicas x (CAPACITY + min_mem_alloc)
 *
 * Ranges here are half-open and 0-based (the paper uses inclusive
 * 1-based IDs k..j; COST(k, j) == cost(k-1, j)).
 */

#include <cstdint>
#include <memory>

#include "elasticrec/common/units.h"
#include "elasticrec/core/qps_model.h"
#include "elasticrec/embedding/access_cdf.h"

namespace erec::core {

/** Parameters of the cost model. */
struct CostModelParams
{
    /**
     * Target traffic constant (queries/sec). Any value that keeps
     * replica counts above one works (the DP compares plans under the
     * same constant); the paper uses 1000.
     */
    double targetTraffic = 1000.0;
    /** Average gathers per query against the whole table (n_t). */
    double gathersPerQuery = 4096.0;
    /** Bytes of one embedding row. */
    Bytes rowBytes = 128;
    /**
     * Minimum memory allocation of any shard container (code, runtime,
     * input buffers) — the term that penalizes over-sharding and
     * produces the Figure 12(d) plateau.
     */
    Bytes minMemAlloc = 512 * units::kMiB;
    /**
     * When true (deployment semantics), replica counts are rounded up
     * and floored at one. When false, fractional replicas are used,
     * matching Algorithm 1 literally; the DP default keeps the ceil so
     * plans account for the at-least-one-replica cost of cold shards.
     */
    bool ceilReplicas = true;
};

class CostModel
{
  public:
    /**
     * @param cdf Access CDF over the hotness-sorted table.
     * @param qps Profiling-based QPS regression for this platform.
     * @param params Cost parameters (n_t, row bytes, min alloc, target).
     */
    CostModel(std::shared_ptr<const embedding::AccessCdf> cdf,
              std::shared_ptr<const QpsModel> qps, CostModelParams params);

    /** Expected gathers per query landing in rows [begin, end): n_s. */
    double shardGathers(std::uint64_t begin, std::uint64_t end) const;

    /** Estimated QPS of a shard covering rows [begin, end). */
    double shardQps(std::uint64_t begin, std::uint64_t end) const;

    /** REPLICAS(begin, end): replicas needed to meet targetTraffic. */
    double replicas(std::uint64_t begin, std::uint64_t end) const;

    /** CAPACITY(begin, end): shard embedding bytes. */
    Bytes capacity(std::uint64_t begin, std::uint64_t end) const;

    /** COST(begin, end): expected memory consumption in bytes. */
    double cost(std::uint64_t begin, std::uint64_t end) const;

    const CostModelParams &params() const { return params_; }
    const embedding::AccessCdf &cdf() const { return *cdf_; }
    const QpsModel &qpsModel() const { return *qps_; }

  private:
    std::shared_ptr<const embedding::AccessCdf> cdf_;
    std::shared_ptr<const QpsModel> qps_;
    CostModelParams params_;
};

} // namespace erec::core
