#include "elasticrec/core/cost_model.h"

#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::core {

CostModel::CostModel(std::shared_ptr<const embedding::AccessCdf> cdf,
                     std::shared_ptr<const QpsModel> qps,
                     CostModelParams params)
    : cdf_(std::move(cdf)), qps_(std::move(qps)), params_(params)
{
    ERC_CHECK(cdf_ != nullptr, "null access CDF");
    ERC_CHECK(qps_ != nullptr, "null QPS model");
    ERC_CHECK(params_.targetTraffic > 0, "target traffic must be positive");
    ERC_CHECK(params_.gathersPerQuery > 0, "n_t must be positive");
    ERC_CHECK(params_.rowBytes > 0, "row bytes must be positive");
}

double
CostModel::shardGathers(std::uint64_t begin, std::uint64_t end) const
{
    ERC_CHECK(begin < end && end <= cdf_->numRows(),
              "invalid shard range [" << begin << ", " << end << ")");
    const double probability = cdf_->massOfRange(begin, end);
    return probability * params_.gathersPerQuery;
}

double
CostModel::shardQps(std::uint64_t begin, std::uint64_t end) const
{
    return qps_->qps(shardGathers(begin, end));
}

double
CostModel::replicas(std::uint64_t begin, std::uint64_t end) const
{
    const double raw = params_.targetTraffic / shardQps(begin, end);
    if (!params_.ceilReplicas)
        return raw;
    return std::max(1.0, std::ceil(raw));
}

Bytes
CostModel::capacity(std::uint64_t begin, std::uint64_t end) const
{
    ERC_CHECK(begin < end && end <= cdf_->numRows(),
              "invalid shard range [" << begin << ", " << end << ")");
    return (end - begin) * params_.rowBytes;
}

double
CostModel::cost(std::uint64_t begin, std::uint64_t end) const
{
    const double shard_size = static_cast<double>(
        capacity(begin, end) + params_.minMemAlloc);
    return replicas(begin, end) * shard_size;
}

} // namespace erec::core
