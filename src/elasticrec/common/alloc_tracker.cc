/**
 * @file
 * Counting operator new/delete replacements plus the AllocRegion
 * registry. Replacing the global allocation functions is standard C++
 * (\[new.delete.single]); any binary that links this translation unit
 * gets the counting hooks. The hooks forward to std::malloc/std::free,
 * which sanitizer runtimes still intercept.
 */

#include "elasticrec/common/alloc_tracker.h"

#include <cstdlib>
#include <new>

namespace erec {

namespace {

// Plain thread_local integers: constant-initialized (no TLS guard) and
// trivially destructible, so the hooks stay safe during thread start
// and teardown when allocations can happen very early or very late.
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_deallocs = 0;
thread_local std::uint64_t t_bytes = 0;

inline void
recordAlloc(std::size_t bytes) noexcept
{
    ++t_allocs;
    t_bytes += bytes;
}

inline void
recordDealloc() noexcept
{
    ++t_deallocs;
}

/** malloc with the required alignment; nullptr on failure. */
void *
alignedAlloc(std::size_t size, std::size_t align) noexcept
{
    if (align <= alignof(std::max_align_t))
        return std::malloc(size);
    // aligned_alloc requires size to be a multiple of the alignment.
    const std::size_t rounded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, rounded);
}

/** Registry head; regions are pushed once and never removed. */
std::atomic<AllocRegion *> g_regions{nullptr};

} // namespace

AllocCounts
threadAllocCounts()
{
    AllocCounts c;
    c.allocs = t_allocs;
    c.deallocs = t_deallocs;
    c.bytes = t_bytes;
    return c;
}

bool
allocTrackerInstalled()
{
    return true;
}

AllocRegion::AllocRegion(const char *name) : name_(name)
{
    next_ = g_regions.load(std::memory_order_relaxed);
    while (!g_regions.compare_exchange_weak(next_, this,
                                            std::memory_order_release,
                                            std::memory_order_relaxed)) {
    }
}

void
AllocRegion::reset()
{
    enters_.store(0, std::memory_order_relaxed);
    allocs_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
}

AllocGate::AllocGate(AllocRegion &region)
    : region_(region), entry_(threadAllocCounts())
{
}

AllocGate::~AllocGate()
{
    const AllocCounts now = threadAllocCounts();
    region_.enters_.fetch_add(1, std::memory_order_relaxed);
    region_.allocs_.fetch_add(now.allocs - entry_.allocs,
                              std::memory_order_relaxed);
    region_.bytes_.fetch_add(now.bytes - entry_.bytes,
                             std::memory_order_relaxed);
}

std::uint64_t
AllocGate::allocsInScope() const
{
    return threadAllocCounts().allocs - entry_.allocs;
}

std::vector<AllocRegionStats>
allocRegionStats()
{
    std::vector<AllocRegionStats> out;
    for (const AllocRegion *r = g_regions.load(std::memory_order_acquire);
         r != nullptr; r = r->next_) {
        AllocRegionStats s;
        s.name = r->name();
        s.enters = r->enters();
        s.allocs = r->allocs();
        s.bytes = r->bytes();
        out.push_back(s);
    }
    return out;
}

void
resetAllocRegionStats()
{
    for (AllocRegion *r = g_regions.load(std::memory_order_acquire);
         r != nullptr; r = r->next_)
        r->reset();
}

} // namespace erec

// Global replacement allocation functions. Raw `throw` is the
// contract of the replaceable operator new, so the raw-throw lint rule
// is suppressed line by line.

void *
operator new(std::size_t size)
{
    if (void *p = std::malloc(size ? size : 1)) {
        erec::recordAlloc(size);
        return p;
    }
    throw std::bad_alloc(); // erec-lint: allow(raw-throw)
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    if (void *p = erec::alignedAlloc(size ? size : 1,
                                     static_cast<std::size_t>(align))) {
        erec::recordAlloc(size);
        return p;
    }
    throw std::bad_alloc(); // erec-lint: allow(raw-throw)
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    if (void *p = std::malloc(size ? size : 1)) {
        erec::recordAlloc(size);
        return p;
    }
    return nullptr;
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return ::operator new(size, std::nothrow);
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    if (void *p = erec::alignedAlloc(size ? size : 1,
                                     static_cast<std::size_t>(align))) {
        erec::recordAlloc(size);
        return p;
    }
    return nullptr;
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return ::operator new(size, align, std::nothrow);
}

void
operator delete(void *p) noexcept
{
    if (p == nullptr)
        return;
    erec::recordDealloc();
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    ::operator delete(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    ::operator delete(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    ::operator delete(p);
}
