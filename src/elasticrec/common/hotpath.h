#pragma once

/**
 * @file
 * Hot-path discipline annotations, consumed by the `erec_hotpath`
 * static pass (tools/hotpath). Both macros expand to nothing: the
 * annotations carry zero runtime cost and exist purely as tokens the
 * analyzer can see.
 *
 *  - ERC_HOT_PATH marks a function declaration as a hot-path *root*:
 *    the steady-state serving path enters through it, so the function
 *    and everything transitively reachable from it must not heap-
 *    allocate, block on I/O, throw, or take a non-try mutex (outside
 *    runtime/'s annotated queues). Place it directly before the
 *    declaration:
 *
 *        ERC_HOT_PATH
 *        std::vector<float> serve(const workload::Query &query) const;
 *
 *  - ERC_HOT_PATH_ALLOW("reason") suppresses analyzer findings. On a
 *    statement line inside a function body it exempts that line (and
 *    the line below it, for statements that wrap); directly before a
 *    function definition it exempts the whole function and stops
 *    traversal into it. The reason string is mandatory and must say
 *    *why* the violation is acceptable (e.g. "reserve-once at worker
 *    startup", "bounded by maxBatchSize"); erec_lint's
 *    hot-path-annotation rule rejects empty reasons.
 *
 * DESIGN.md section 10 documents what counts as steady state and when
 * an ALLOW is appropriate.
 *
 * Pure preprocessor header, deliberately not inside namespace erec:
 */
// erec-lint: allow(header-namespace)

/** Marks a function declaration as a hot-path root. */
#define ERC_HOT_PATH

/** Suppresses erec_hotpath findings; see file comment for scope. */
#define ERC_HOT_PATH_ALLOW(reason)
