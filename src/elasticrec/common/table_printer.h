#pragma once

/**
 * @file
 * Console table and CSV rendering used by the benchmark harnesses to
 * print paper-style result tables.
 */

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace erec {

/**
 * Collects rows of string cells and renders them either as an aligned
 * console table or as CSV. The first row added is treated as the header.
 */
class TablePrinter
{
  public:
    /** Start a table with the given column headers. */
    explicit TablePrinter(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format doubles with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format an integer cell. */
    static std::string num(std::int64_t v);

    /** Convenience: format "3.3x"-style ratio cells. */
    static std::string ratio(double v, int precision = 2);

    /** Convenience: format a percentage cell, e.g. "94.0%". */
    static std::string percent(double fraction, int precision = 1);

    /** Render as an aligned, boxed console table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace erec
