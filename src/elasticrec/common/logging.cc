#include "elasticrec/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

#include "elasticrec/common/thread_annotations.h"

namespace erec {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

/** Serializes sink replacement and record emission. */
std::mutex g_sinkMutex;

/** Installed sink; falls back to stderr when empty. */
LogSink g_sink ERC_GUARDED_BY(g_sinkMutex);

} // namespace

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogSink(LogSink sink)
{
    const std::lock_guard<std::mutex> lock(g_sinkMutex);
    g_sink = std::move(sink);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    const std::lock_guard<std::mutex> lock(g_sinkMutex);
    if (g_sink) {
        g_sink(level, msg);
        return;
    }
    // ERC_CONCLINT_ALLOW("cold path; the lock exists to serialize this fallback write against sink swaps")
    std::fprintf(stderr, "[%s] %s\n", logLevelName(level), msg.c_str());
}

} // namespace erec
