#include "elasticrec/common/logging.h"

#include <atomic>
#include <cstdio>

namespace erec {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Info};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
      case LogLevel::Error: return "ERROR";
      case LogLevel::Off: return "OFF";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(logLevel()))
        return;
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}

} // namespace erec
