#pragma once

/**
 * @file
 * Statistics primitives used by the metrics registry, the simulator and
 * the benchmark harnesses: running moments, percentile tracking over both
 * complete samples and sliding time windows, rate (QPS) windows, and
 * simple time series.
 */

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "elasticrec/common/ring.h"
#include "elasticrec/common/units.h"

namespace erec {

/**
 * Numerically stable running mean / variance / min / max (Welford).
 */
class RunningStat
{
  public:
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Exact percentile tracker over all recorded samples.
 *
 * Stores every sample; suited to experiment-scale sample counts (up to a
 * few million doubles). quantile() sorts lazily and caches.
 */
class PercentileTracker
{
  public:
    void add(double x);

    std::size_t count() const { return samples_.size(); }

    /**
     * Value at quantile q in [0, 1] using linear interpolation between
     * closest ranks. Returns 0 when empty.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }
    double mean() const;

    void reset();

  private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * Percentile tracker over a sliding window of simulated time.
 *
 * Used for SLA monitoring (e.g. P95 tail latency over the trailing 10
 * simulated seconds) and as the metric source for autoscaling decisions.
 */
class WindowedPercentile
{
  public:
    explicit WindowedPercentile(SimTime window) : window_(window) {}

    /** Record a sample observed at simulated time t. */
    void add(SimTime t, double x);

    /** Drop samples older than (now - window). */
    void expire(SimTime now);

    /** Quantile over the samples currently inside the window. */
    double quantile(SimTime now, double q);

    std::size_t count() const { return samples_.size(); }
    SimTime window() const { return window_; }

  private:
    SimTime window_;
    std::deque<std::pair<SimTime, double>> samples_;
};

/**
 * Event-rate window: counts events over a sliding window of simulated
 * time and reports a rate in events per second. This is how the metrics
 * server measures QPS.
 *
 * Backed by a Ring rather than a deque: add() sits on the simulator's
 * per-completion path, which must be allocation-free once the window
 * has reached its steady population.
 */
class RateWindow
{
  public:
    explicit RateWindow(SimTime window) : window_(window) {}

    void add(SimTime t, std::uint64_t count = 1);

    /** Events per second over the trailing window ending at now. */
    double rate(SimTime now);

    std::uint64_t total() const { return total_; }

  private:
    void expire(SimTime now);

    SimTime window_;
    Ring<std::pair<SimTime, std::uint64_t>> events_;
    std::uint64_t inWindow_ = 0;
    std::uint64_t total_ = 0;
};

/**
 * A (time, value) series with CSV export, used for Figure 19-style
 * longitudinal plots.
 */
class TimeSeries
{
  public:
    void add(SimTime t, double v) { points_.emplace_back(t, v); }

    const std::vector<std::pair<SimTime, double>> &points() const
    {
        return points_;
    }

    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

    double maxValue() const;
    double meanValue() const;

  private:
    std::vector<std::pair<SimTime, double>> points_;
};

/**
 * Fixed-bucket histogram over a linear range, used for latency
 * distribution reporting.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);

    std::size_t bucketCount() const { return counts_.size(); }
    std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace erec
