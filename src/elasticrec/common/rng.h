#pragma once

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components of the library (workload generators, the
 * discrete-event simulator, table initialization) draw from erec::Rng so
 * that every experiment is reproducible from a single seed. The engine is
 * xoshiro256** seeded through SplitMix64, which is fast, high quality and
 * trivially portable.
 */

#include <cstdint>

namespace erec {

/**
 * xoshiro256** PRNG with convenience samplers.
 *
 * Satisfies the UniformRandomBitGenerator requirements so it can also be
 * handed to <random> distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit output. */
    result_type operator()() { return next(); }

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Exponentially distributed double with the given rate (1/mean). */
    double exponential(double rate);

    /** Standard normal (Box-Muller). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Poisson-distributed count with the given mean. */
    std::uint64_t poisson(double mean);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Derive an independent child stream. Used to give each component
     * (tables, traffic, service jitter) its own stream so adding draws in
     * one place does not perturb another.
     */
    Rng split();

  private:
    std::uint64_t s_[4];
};

} // namespace erec
