#pragma once

/**
 * @file
 * Minimal leveled logger used throughout the library.
 *
 * Logging is stderr-based and globally leveled; benchmarks and tests set
 * the level to Warn to keep output clean, examples use Info.
 */

#include <functional>
#include <sstream>
#include <string>

namespace erec {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/** Set the global log level; messages below it are dropped. */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

/** Receives every emitted record (already level-filtered). */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Replace the global sink (default: one line per record on stderr).
 * Pass nullptr to restore the default. Sink installation and every
 * record emission are serialized by an internal mutex, so concurrent
 * logMessage() calls never interleave within one record.
 */
void setLogSink(LogSink sink);

/** Emit a log record (no-op if below the global level). */
void logMessage(LogLevel level, const std::string &msg);

/** Printable name of a level ("DEBUG", "INFO", ...). */
const char *logLevelName(LogLevel level);

namespace detail {

class LogLine
{
  public:
    explicit LogLine(LogLevel level) : level_(level) {}

    ~LogLine() { logMessage(level_, oss_.str()); }

    template <typename T>
    LogLine &
    operator<<(const T &v)
    {
        oss_ << v;
        return *this;
    }

  private:
    LogLevel level_;
    std::ostringstream oss_;
};

} // namespace detail
} // namespace erec

#define ERC_LOG_DEBUG ::erec::detail::LogLine(::erec::LogLevel::Debug)
#define ERC_LOG_INFO ::erec::detail::LogLine(::erec::LogLevel::Info)
#define ERC_LOG_WARN ::erec::detail::LogLine(::erec::LogLevel::Warn)
#define ERC_LOG_ERROR ::erec::detail::LogLine(::erec::LogLevel::Error)
