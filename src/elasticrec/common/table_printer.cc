#include "elasticrec/common/table_printer.h"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

#include "elasticrec/common/error.h"

namespace erec {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header))
{
    ERC_CHECK(!header_.empty(), "table header must not be empty");
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    ERC_CHECK(row.size() == header_.size(),
              "row width " << row.size() << " != header width "
                           << header_.size());
    rows_.push_back(std::move(row));
}

std::string
TablePrinter::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
TablePrinter::num(std::int64_t v)
{
    return std::to_string(v);
}

std::string
TablePrinter::ratio(double v, int precision)
{
    return num(v, precision) + "x";
}

std::string
TablePrinter::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto rule = [&]() {
        os << '+';
        for (auto w : widths)
            os << std::string(w + 2, '-') << '+';
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c]
               << std::string(widths[c] - cells[c].size() + 1, ' ') << '|';
        }
        os << '\n';
    };

    rule();
    line(header_);
    rule();
    for (const auto &row : rows_)
        line(row);
    rule();
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            os << cells[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace erec
