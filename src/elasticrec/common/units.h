#pragma once

/**
 * @file
 * Basic unit types and constants shared across all ElasticRec modules.
 *
 * Simulated time is kept in integer microseconds so that discrete-event
 * ordering is exact and runs are bit-reproducible. Memory sizes are kept
 * in bytes as unsigned 64-bit integers.
 */

#include <cstdint>
#include <string>

namespace erec {

/** Simulated time, in microseconds since simulation start. */
using SimTime = std::int64_t;

/** Memory size in bytes. */
using Bytes = std::uint64_t;

namespace units {

// Time constants, expressed in SimTime ticks (microseconds).
inline constexpr SimTime kMicrosecond = 1;
inline constexpr SimTime kMillisecond = 1000;
inline constexpr SimTime kSecond = 1000 * 1000;
inline constexpr SimTime kMinute = 60 * kSecond;

// Memory size constants.
inline constexpr Bytes kKiB = 1024ull;
inline constexpr Bytes kMiB = 1024ull * kKiB;
inline constexpr Bytes kGiB = 1024ull * kMiB;

/** Convert a SimTime to floating-point seconds. */
inline double
toSeconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Convert a SimTime to floating-point milliseconds. */
inline double
toMillis(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/** Convert floating-point seconds to a SimTime, rounding to nearest tick. */
inline SimTime
fromSeconds(double s)
{
    return static_cast<SimTime>(s * static_cast<double>(kSecond) + 0.5);
}

/** Convert floating-point milliseconds to a SimTime. */
inline SimTime
fromMillis(double ms)
{
    return static_cast<SimTime>(ms * static_cast<double>(kMillisecond) + 0.5);
}

/** Convert a byte count to floating-point GiB. */
inline double
toGiB(Bytes b)
{
    return static_cast<double>(b) / static_cast<double>(kGiB);
}

/** Convert a byte count to floating-point MiB. */
inline double
toMiB(Bytes b)
{
    return static_cast<double>(b) / static_cast<double>(kMiB);
}

/**
 * Render a byte count with a human-friendly suffix, e.g. "2.5 GiB".
 */
std::string formatBytes(Bytes b);

} // namespace units
} // namespace erec
