#pragma once

/**
 * @file
 * Fixed-overhead FIFO ring over a power-of-two vector.
 *
 * The simulator's steady path (pod stage queues, pending-dispatch
 * queues, QPS rate windows) needs a FIFO that never allocates once
 * warm. std::deque allocates a node per block and never shrinks its
 * map; this ring doubles its backing store on overflow (cold) and then
 * recycles it forever, so AllocGate-pinned regions stay at zero.
 */

#include <cstddef>
#include <utility>
#include <vector>

#include "elasticrec/common/hotpath.h"

namespace erec {

template <typename T>
class Ring
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    /** Element i positions past the front (0 = front). */
    const T &at(std::size_t i) const
    {
        return buf_[(head_ + i) & (buf_.size() - 1)];
    }

    /** Append one element; amortized O(1), allocation-free once the
     *  ring has reached its steady-state capacity. */
    ERC_HOT_PATH
    void
    push(T v)
    {
        if (count_ == buf_.size())
            grow();
        buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(v);
        ++count_;
    }

    /** Remove and return the front element. */
    ERC_HOT_PATH
    T
    pop()
    {
        T v = std::move(buf_[head_]);
        head_ = (head_ + 1) & (buf_.size() - 1);
        --count_;
        return v;
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
    }

    /** Grow capacity to at least n elements up front (rounded to a
     *  power of two; never shrinks), so the first pushes of a fresh
     *  ring don't allocate inside a gated region. */
    void
    reserve(std::size_t n)
    {
        while (buf_.size() < n)
            grow();
    }

    /** Current backing-store capacity. */
    std::size_t capacity() const { return buf_.size(); }

  private:
    // ERC_HOT_PATH_ALLOW("cold growth path: doubles the power-of-two backing store only when the ring is full; the steady state recycles capacity and never re-enters")
    void
    grow()
    {
        std::vector<T> wider(buf_.empty() ? 8 : buf_.size() * 2);
        for (std::size_t i = 0; i < count_; ++i)
            wider[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(wider);
        head_ = 0;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace erec
