#pragma once

/**
 * @file
 * Clang thread-safety analysis annotations (the Abseil/LLVM macro
 * vocabulary, ERC_-prefixed). Under Clang the root CMakeLists enables
 * -Wthread-safety so mislocked access to ERC_GUARDED_BY state is a
 * compile-time diagnostic; under GCC the macros expand to nothing.
 *
 * Pure preprocessor header, deliberately not inside namespace erec:
 */
// erec-lint: allow(header-namespace)

#if defined(__clang__)
#define ERC_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ERC_THREAD_ANNOTATION_ATTRIBUTE(x) // no-op
#endif

/** Marks a type as a lockable capability (e.g. a mutex wrapper). */
#define ERC_CAPABILITY(x) ERC_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/** Marks an RAII type that acquires a capability for its lifetime. */
#define ERC_SCOPED_CAPABILITY \
    ERC_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/** Data member readable/writable only with `x` held. */
#define ERC_GUARDED_BY(x) ERC_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/** Pointer member whose pointee is protected by `x`. */
#define ERC_PT_GUARDED_BY(x) \
    ERC_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/** Function that must be called with the given capabilities held. */
#define ERC_REQUIRES(...) \
    ERC_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/** Function that must be called with the capabilities NOT held. */
#define ERC_EXCLUDES(...) \
    ERC_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/** Function that acquires the given capabilities. */
#define ERC_ACQUIRE(...) \
    ERC_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/** Function that releases the given capabilities. */
#define ERC_RELEASE(...) \
    ERC_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/** Function returning a reference to the capability guarding it. */
#define ERC_RETURN_CAPABILITY(x) \
    ERC_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/** Escape hatch: function body is exempt from the analysis. */
#define ERC_NO_THREAD_SAFETY_ANALYSIS \
    ERC_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/**
 * Waiver marker for the static concurrency gate (`erec_conclint`,
 * scripts/check.sh concurrency). Expands to nothing — the analyzer
 * reads it lexically from the raw source:
 *
 *  - On a line (or the line directly above a statement) inside a
 *    function body it suppresses conclint findings reported at that
 *    line, and on a mutex member declaration it waives the
 *    ERC_GUARDED_BY coverage requirement for that member.
 *  - Directly before a function definition it exempts the whole
 *    function: the body is not scanned and contributes no lock or
 *    blocking summaries to callers.
 *
 * The reason string is mandatory and should say why the blocking call
 * or annotation gap is safe (e.g. "cold path; lock only serializes the
 * write"). Mirrors the hotpath gate's waiver macro (common/hotpath.h).
 */
#define ERC_CONCLINT_ALLOW(reason)
