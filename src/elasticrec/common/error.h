#pragma once

/**
 * @file
 * Error-handling helpers.
 *
 * Following the gem5 fatal()/panic() convention:
 *  - ERC_CHECK / erec::fatal  -> user-facing error (bad configuration,
 *    invalid arguments); throws erec::ConfigError.
 *  - ERC_ASSERT / erec::panic -> internal invariant violation (a bug in
 *    the library itself); throws erec::InternalError.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace erec {

/** Raised when a user-supplied configuration or argument is invalid. */
class ConfigError : public std::runtime_error
{
  public:
    explicit ConfigError(const std::string &msg)
        : std::runtime_error("ConfigError: " + msg)
    {}
};

/** Raised when an internal invariant of the library is violated. */
class InternalError : public std::logic_error
{
  public:
    explicit InternalError(const std::string &msg)
        : std::logic_error("InternalError: " + msg)
    {}
};

[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw ConfigError(msg);
}

// ERC_HOT_PATH_ALLOW("failure path: builds and throws only on an internal invariant violation, never on the steady path")
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw InternalError(msg);
}

} // namespace erec

/** Validate a user-facing precondition; throws erec::ConfigError. */
#define ERC_CHECK(cond, msg)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream erc_oss_;                                   \
            erc_oss_ << msg << " [" << #cond << " at " << __FILE__ << ":"  \
                     << __LINE__ << "]";                                   \
            ::erec::fatal(erc_oss_.str());                                 \
        }                                                                  \
    } while (0)

/** Validate an internal invariant; throws erec::InternalError. */
#define ERC_ASSERT(cond, msg)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            std::ostringstream erc_oss_;                                   \
            erc_oss_ << msg << " [" << #cond << " at " << __FILE__ << ":"  \
                     << __LINE__ << "]";                                   \
            ::erec::panic(erc_oss_.str());                                 \
        }                                                                  \
    } while (0)
