#include "elasticrec/common/stats.h"

#include <algorithm>
#include <cmath>

#include "elasticrec/common/error.h"

namespace erec {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    if (n_ == 1) {
        mean_ = min_ = max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

void
PercentileTracker::add(double x)
{
    samples_.push_back(x);
    sorted_ = false;
}

double
PercentileTracker::quantile(double q) const
{
    ERC_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
    if (samples_.empty())
        return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double rank = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double
PercentileTracker::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

void
PercentileTracker::reset()
{
    samples_.clear();
    sorted_ = true;
}

void
WindowedPercentile::add(SimTime t, double x)
{
    samples_.emplace_back(t, x);
}

void
WindowedPercentile::expire(SimTime now)
{
    const SimTime cutoff = now - window_;
    while (!samples_.empty() && samples_.front().first < cutoff)
        samples_.pop_front();
}

double
WindowedPercentile::quantile(SimTime now, double q)
{
    expire(now);
    if (samples_.empty())
        return 0.0;
    std::vector<double> vals;
    vals.reserve(samples_.size());
    for (const auto &[t, v] : samples_)
        vals.push_back(v);
    std::sort(vals.begin(), vals.end());
    const double rank = q * static_cast<double>(vals.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, vals.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return vals[lo] * (1.0 - frac) + vals[hi] * frac;
}

void
RateWindow::add(SimTime t, std::uint64_t count)
{
    events_.push({t, count});
    inWindow_ += count;
    total_ += count;
    expire(t);
}

void
RateWindow::expire(SimTime now)
{
    const SimTime cutoff = now - window_;
    while (!events_.empty() && events_.front().first < cutoff) {
        inWindow_ -= events_.front().second;
        events_.pop();
    }
}

double
RateWindow::rate(SimTime now)
{
    expire(now);
    if (window_ <= 0)
        return 0.0;
    return static_cast<double>(inWindow_) / units::toSeconds(window_);
}

double
TimeSeries::maxValue() const
{
    double m = 0.0;
    for (const auto &[t, v] : points_)
        m = std::max(m, v);
    return m;
}

double
TimeSeries::meanValue() const
{
    if (points_.empty())
        return 0.0;
    double s = 0.0;
    for (const auto &[t, v] : points_)
        s += v;
    return s / static_cast<double>(points_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi),
      width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0)
{
    ERC_CHECK(hi > lo, "Histogram range must be non-empty");
    ERC_CHECK(buckets > 0, "Histogram needs at least one bucket");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < lo_) {
        ++underflow_;
        return;
    }
    if (x >= hi_) {
        ++overflow_;
        return;
    }
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

double
Histogram::bucketLow(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

double
Histogram::bucketHigh(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i + 1);
}

} // namespace erec
