#include "elasticrec/common/rng.h"

#include <cmath>

#include "elasticrec/common/error.h"

namespace erec {

namespace {

/** SplitMix64 step, used for seeding and stream splitting. */
std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    ERC_ASSERT(n > 0, "uniformInt(n) requires n > 0");
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        std::uint64_t threshold = (-n) % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    ERC_ASSERT(lo <= hi, "uniformInt(lo, hi) requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniformInt(span));
}

double
Rng::exponential(double rate)
{
    ERC_ASSERT(rate > 0, "exponential() requires a positive rate");
    // uniform() can return 0; 1-u is in (0, 1].
    return -std::log(1.0 - uniform()) / rate;
}

double
Rng::normal()
{
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

std::uint64_t
Rng::poisson(double mean)
{
    ERC_ASSERT(mean >= 0, "poisson() requires a non-negative mean");
    if (mean == 0)
        return 0;
    if (mean < 30) {
        // Knuth's product-of-uniforms method.
        const double limit = std::exp(-mean);
        double prod = uniform();
        std::uint64_t n = 0;
        while (prod > limit) {
            prod *= uniform();
            ++n;
        }
        return n;
    }
    // Normal approximation for large means.
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    return Rng(next());
}

} // namespace erec
