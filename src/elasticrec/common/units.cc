#include "elasticrec/common/units.h"

#include <iomanip>
#include <sstream>

namespace erec {
namespace units {

std::string
formatBytes(Bytes b)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(2);
    if (b >= kGiB) {
        oss << toGiB(b) << " GiB";
    } else if (b >= kMiB) {
        oss << toMiB(b) << " MiB";
    } else if (b >= kKiB) {
        oss << static_cast<double>(b) / static_cast<double>(kKiB) << " KiB";
    } else {
        oss << b << " B";
    }
    return oss.str();
}

} // namespace units
} // namespace erec
