#pragma once

/**
 * @file
 * Dynamic counterpart of the `erec_hotpath` static pass: thread-local
 * operator-new/delete counting plus a scoped RAII gate that charges the
 * allocations a code region performs to a named AllocRegion.
 *
 * Linking `common/alloc_tracker.cc` into a binary installs global
 * replacement operator new/delete that bump thread-local counters on
 * the way to std::malloc / std::free (the replacements are standard
 * C++; ASan/TSan still intercept the underlying malloc). The counters
 * are per-thread and monotone, so reading them costs a few TLS loads
 * and the hooks add a handful of instructions per allocation.
 *
 * Usage — wrap a steady-state region and charge it to a region:
 *
 *     {
 *         AllocGate gate(myRegion());
 *         ... steady-state work that must not allocate ...
 *     }  // destructor adds this scope's allocations to the region
 *
 * Tests and benches then assert `region.allocs() == 0` (or publish
 * allocs-per-query) after a warm-up phase. Regions self-register into
 * a global list so bench harnesses can snapshot/reset every region
 * without naming them (allocRegionStats / resetAllocRegionStats).
 *
 * Nested gates double-charge inner allocations to both regions; the
 * steady-state regions this repo gates are all expected to sit at
 * zero, so the overlap is harmless and keeps the gate trivial. A gate
 * only observes its *own* thread's allocations — exactly the hot-path
 * contract, where each worker's steady loop must be allocation-free.
 */

#include <cstddef>
#include <cstdint>
#include <atomic>
#include <vector>

namespace erec {

/** Snapshot of one thread's allocation counters (monotone). */
struct AllocCounts
{
    std::uint64_t allocs = 0;
    std::uint64_t deallocs = 0;
    std::uint64_t bytes = 0;
};

/** This thread's counters since thread start. */
AllocCounts threadAllocCounts();

/**
 * True when the counting operator new/delete replacements are linked
 * into this binary. Calling any alloc_tracker function pulls in the
 * defining translation unit, so this returns true whenever it is
 * callable; it exists to document the linkage contract.
 */
bool allocTrackerInstalled();

/** Snapshot of one region for allocRegionStats(). */
struct AllocRegionStats
{
    const char *name = nullptr;
    std::uint64_t enters = 0;
    std::uint64_t allocs = 0;
    std::uint64_t bytes = 0;
};

/**
 * A named accumulator for the allocations observed inside AllocGate
 * scopes. Construct as a namespace-scope or function-local static (the
 * constructor registers the region in a global list and regions are
 * never unregistered), then gate scopes against it.
 */
class AllocRegion
{
  public:
    explicit AllocRegion(const char *name);

    AllocRegion(const AllocRegion &) = delete;
    AllocRegion &operator=(const AllocRegion &) = delete;

    const char *name() const { return name_; }

    /** Gate scopes entered against this region since last reset(). */
    std::uint64_t enters() const
    {
        return enters_.load(std::memory_order_relaxed);
    }

    /** Allocations observed inside this region's gate scopes. */
    std::uint64_t allocs() const
    {
        return allocs_.load(std::memory_order_relaxed);
    }

    /** Bytes requested inside this region's gate scopes. */
    std::uint64_t bytes() const
    {
        return bytes_.load(std::memory_order_relaxed);
    }

    /** Zero the accumulators (e.g. after a warm-up phase). */
    void reset();

  private:
    friend class AllocGate;
    friend std::vector<AllocRegionStats> allocRegionStats();
    friend void resetAllocRegionStats();

    const char *name_;
    // Relaxed atomics: gates on different threads add concurrently and
    // nothing is ordered against these counters.
    std::atomic<std::uint64_t> enters_{0};
    std::atomic<std::uint64_t> allocs_{0};
    std::atomic<std::uint64_t> bytes_{0};
    /** Intrusive registry link (registration order, never removed). */
    AllocRegion *next_ = nullptr;
};

/**
 * RAII scope: snapshots this thread's counters on entry and adds the
 * delta to the region on exit. Construction and destruction never
 * allocate, so a gate can wrap a region that must stay at zero.
 */
class AllocGate
{
  public:
    explicit AllocGate(AllocRegion &region);
    ~AllocGate();

    AllocGate(const AllocGate &) = delete;
    AllocGate &operator=(const AllocGate &) = delete;

    /** Allocations this thread performed since the gate opened. */
    std::uint64_t allocsInScope() const;

  private:
    AllocRegion &region_;
    AllocCounts entry_;
};

/** Snapshot every registered region, in registration order. */
std::vector<AllocRegionStats> allocRegionStats();

/** Zero every registered region's accumulators. */
void resetAllocRegionStats();

} // namespace erec
