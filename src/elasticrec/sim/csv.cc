#include "elasticrec/sim/csv.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::sim {

void
writeSimResultCsv(std::ostream &os, const SimResult &result)
{
    const auto &t = result.targetQps.points();
    const std::size_t rows = std::min({
        t.size(),
        result.achievedQps.size(),
        result.memoryGiB.size(),
        result.p95LatencyMs.size(),
        result.readyReplicas.size(),
        result.nodesInUse.size(),
    });
    os << "time_s,target_qps,achieved_qps,memory_gib,p95_ms,replicas,"
          "nodes\n";
    for (std::size_t i = 0; i < rows; ++i) {
        os << units::toSeconds(t[i].first) << ',' << t[i].second << ','
           << result.achievedQps.points()[i].second << ','
           << result.memoryGiB.points()[i].second << ','
           << result.p95LatencyMs.points()[i].second << ','
           << result.readyReplicas.points()[i].second << ','
           << result.nodesInUse.points()[i].second << '\n';
    }
}

} // namespace erec::sim
