#pragma once

/**
 * @file
 * CSV export of simulation results, for plotting Figure 19-style
 * longitudinal series with external tools.
 */

#include <ostream>

#include "elasticrec/sim/cluster_sim.h"

namespace erec::sim {

/**
 * Write the sampled time series of a run as CSV with the columns
 * time_s, target_qps, achieved_qps, memory_gib, p95_ms, replicas,
 * nodes. All series share the sampling clock, so rows align.
 */
void writeSimResultCsv(std::ostream &os, const SimResult &result);

} // namespace erec::sim
