#include "elasticrec/sim/experiment.h"

#include "elasticrec/cluster/scheduler.h"
#include "elasticrec/common/error.h"
#include "elasticrec/core/utility_tracker.h"
#include "elasticrec/workload/query_generator.h"

namespace erec::sim {

workload::AccessDistributionPtr
distributionFor(const model::DlrmConfig &config)
{
    return std::make_shared<workload::LocalityDistribution>(
        config.rowsPerTable, config.localityP);
}

std::shared_ptr<const embedding::AccessCdf>
cdfFor(const model::DlrmConfig &config, std::uint32_t granules)
{
    auto dist = distributionFor(config);
    return std::make_shared<embedding::AccessCdf>(
        embedding::AccessCdf::fromMassFunction(
            dist->numRows(),
            [&dist](std::uint64_t x) { return dist->massOfTopRows(x); },
            granules));
}

StaticDeployment
evaluateStatic(const core::DeploymentPlan &plan, const hw::NodeSpec &node,
               double target_qps, const ExperimentOptions &options)
{
    ERC_CHECK(options.utilization > 0.0 && options.utilization <= 1.0,
              "utilization must be in (0, 1]");
    const double sized_qps = target_qps / options.utilization;
    StaticDeployment out;
    out.policy = plan.policy;
    out.targetQps = target_qps;
    out.memory = plan.memoryForTarget(sized_qps);
    out.totalReplicas = plan.totalReplicasForTarget(sized_qps);

    std::vector<cluster::PodRequest> pods;
    for (const auto &spec : plan.shards) {
        const auto replicas =
            core::DeploymentPlan::replicasForTarget(spec, sized_qps);
        out.replicas[spec.name] = replicas;
        cluster::ResourceRequest req = cluster::resourceRequestFor(spec);
        for (std::uint32_t i = 0; i < replicas; ++i)
            pods.push_back({spec.name, req});
    }
    out.nodes = cluster::Scheduler(node).pack(pods).numNodes();
    return out;
}

SteadyStateResult
runSteadyState(const core::DeploymentPlan &plan, const hw::NodeSpec &node,
               double target_qps, const ExperimentOptions &options)
{
    SteadyStateResult result;
    result.staticView = evaluateStatic(plan, node, target_qps, options);

    SimOptions sim_options = options.sim;
    sim_options.autoscale = false;
    sim_options.warmStart = true;
    ClusterSimulation sim(plan, node,
                          workload::TrafficPattern::constant(target_qps),
                          sim_options);
    for (const auto &[name, replicas] : result.staticView.replicas)
        sim.setFixedReplicas(name, replicas);
    const SimResult r = sim.run(options.duration);

    result.achievedQps = static_cast<double>(r.completed) /
                         units::toSeconds(options.duration);
    result.meanLatencyMs = r.meanLatencyMs;
    result.p95LatencyMs = r.p95LatencyOverallMs;
    result.slaViolationFraction =
        r.completed == 0
            ? 0.0
            : static_cast<double>(r.slaViolations) /
                  static_cast<double>(r.completed);
    return result;
}

UtilityReport
measureUtility(const model::DlrmConfig &config,
               const std::vector<std::uint64_t> &boundaries,
               const std::vector<const core::ShardSpec *> &shard_specs,
               double target_qps, const ExperimentOptions &options)
{
    ERC_CHECK(!boundaries.empty(), "need at least one shard boundary");
    ERC_CHECK(boundaries.back() == config.rowsPerTable,
              "boundaries must cover the whole table");

    auto dist = distributionFor(config);
    core::UtilityTracker tracker(boundaries);

    // Stream queries for one table: batchSize items x poolingFactor
    // gathers, sampled in hotness-rank space.
    Rng rng(options.seed);
    const std::uint64_t gathers_per_query =
        config.gathersPerQueryPerTable();
    for (std::uint32_t q = 0; q < options.numQueries; ++q) {
        for (std::uint64_t g = 0; g < gathers_per_query; ++g)
            tracker.recordRank(dist->sampleRank(rng));
    }

    UtilityReport report;
    report.overallUtility = tracker.overallUtility();
    for (std::uint32_t s = 0; s < tracker.numShards(); ++s)
        report.shardUtility.push_back(tracker.shardUtility(s));
    for (const auto *spec : shard_specs) {
        ERC_CHECK(spec != nullptr, "null shard spec");
        report.shardReplicas.push_back(
            core::DeploymentPlan::replicasForTarget(*spec, target_qps));
    }
    return report;
}

} // namespace erec::sim
