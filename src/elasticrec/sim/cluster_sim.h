#pragma once

/**
 * @file
 * Cluster-scale serving simulation.
 *
 * Binds together a deployment plan (ElasticRec or a baseline), the
 * hardware platform, a traffic pattern, load balancing, the RPC fabric
 * and Kubernetes-style autoscaling, and plays inference traffic through
 * it as a discrete-event simulation:
 *
 *   arrival -> frontend LB -> dense (or monolithic) pod
 *            -> scatter: per-shard gather RPC -> sparse LB -> pod
 *            -> gather: all responses merged -> completion
 *
 * ElasticRec's dense shard overlaps its bottom-MLP compute with the
 * gather RPCs (Section IV-A), so a query's processing time at the
 * frontend is max(dense compute, slowest shard round trip). The
 * monolithic baseline runs dense and sparse as two pipelined stages
 * inside one pod and pays no network.
 *
 * The HPA controller reconciles every sync period: sparse deployments
 * scale on QPS-per-replica against their stress-tested QPS_max
 * (Section IV-D), dense/monolithic deployments scale on P95 latency
 * against 65% of the SLA. New pods charge a cold-start delay that
 * includes loading their parameters at a fixed bandwidth — the term
 * that makes baseline scale-out sluggish in Figure 19.
 *
 * ## Event engine
 *
 * The simulation is the EventSink of a POD-record event queue and the
 * PodSink of every pod: queries fan out as typed events (kArrival,
 * kRpcArrive, kStageDone, kComponentDone) whose payloads are query
 * arena slots and deployment ordinals, never captured closures. The
 * steady query path performs zero heap allocations (AllocGate-pinned
 * by the sim throughput gate and walked statically by erec_hotpath);
 * sampling, HPA reconciliation, SLO evaluation and failure injection
 * are events of the same queue. DESIGN.md §13 documents the taxonomy
 * and the arena lifetime rules.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "elasticrec/cluster/deployment.h"
#include "elasticrec/cluster/hpa.h"
#include "elasticrec/cluster/load_balancer.h"
#include "elasticrec/cluster/metrics.h"
#include "elasticrec/cluster/scheduler.h"
#include "elasticrec/common/ring.h"
#include "elasticrec/common/rng.h"
#include "elasticrec/common/stats.h"
#include "elasticrec/core/planner.h"
#include "elasticrec/obs/metric.h"
#include "elasticrec/obs/sketch.h"
#include "elasticrec/obs/slo.h"
#include "elasticrec/obs/trace.h"
#include "elasticrec/rpc/channel.h"
#include "elasticrec/sim/event_queue.h"
#include "elasticrec/sim/pod.h"
#include "elasticrec/sim/query_arena.h"
#include "elasticrec/workload/traffic.h"

namespace erec::sim {

/**
 * How the per-interval sample tick publishes telemetry.
 *
 * Both modes sample on event time (a kSampleTick event per interval)
 * and produce identical SimResults; they differ only in per-pod gauge
 * export. CompatTick publishes an `erec_pod_queue_depth` gauge per
 * ready pod each tick — the legacy export surface, kept byte-stable
 * for the fig19 golden and the telemetry smoke. EventTime skips the
 * per-pod gauges (their label strings are the one remaining per-tick
 * allocation source), which is what the million-query throughput
 * harness runs.
 */
enum class SamplingMode
{
    CompatTick,
    EventTime,
};

struct SimOptions
{
    /** End-to-end SLA bound (the paper uses 400 ms). */
    SimTime sla = 400 * units::kMillisecond;
    /** Dense/monolithic HPA latency target as a fraction of the SLA. */
    double denseLatencyTargetFraction = 0.65;
    /**
     * Sparse HPA target utilization: scale out when per-replica QPS
     * exceeds this fraction of the shard's QPS_max.
     */
    double sparseUtilizationTarget = 0.70;
    /** HPA sync period. */
    SimTime hpaSyncPeriod = 15 * units::kSecond;
    /** Scale-down stabilization window. */
    SimTime hpaStabilization = 180 * units::kSecond;
    /** Container cold-start latency excluding parameter loading. */
    SimTime podStartBase = 2 * units::kSecond;
    /** Parameter-load bandwidth during pod start (bytes/sec). */
    double modelLoadBandwidth = 1e9;
    /** Multiplicative service-time jitter (lognormal sigma). */
    double serviceJitterSigma = 0.05;
    /** Metrics sampling interval for the result time series. */
    SimTime sampleInterval = units::kSecond;
    /** Enable the HPA (disable for fixed-replica steady-state runs). */
    bool autoscale = true;
    /**
     * Start each deployment with the replica count the plan predicts
     * for the traffic pattern's initial rate (otherwise start at 1).
     */
    bool warmStart = true;
    /** Load-balancing policy across a deployment's ready replicas. */
    cluster::LbPolicy lbPolicy = cluster::LbPolicy::PowerOfTwoChoices;
    /** RNG seed. */
    std::uint64_t seed = 2024;
    /**
     * Trace one query in every `traceSampleEvery` arrivals (0 = off,
     * 100 = 1% sampling). Sampling is deterministic and consumes no
     * randomness, so traced and untraced runs produce identical
     * SimResults.
     */
    std::uint32_t traceSampleEvery = 0;
    /** Telemetry publication mode of the sample tick. */
    SamplingMode sampling = SamplingMode::CompatTick;
    /**
     * Exportable metrics registry to publish into. When null the
     * simulation creates its own (reachable via observability()).
     */
    std::shared_ptr<obs::Registry> observability = {};
};

/** Aggregate results of one simulation run. */
struct SimResult
{
    /** Sampled time series (time in SimTime, value units noted). */
    TimeSeries targetQps;
    TimeSeries achievedQps;
    TimeSeries memoryGiB;
    TimeSeries p95LatencyMs;
    TimeSeries readyReplicas;
    TimeSeries nodesInUse;

    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    std::uint64_t slaViolations = 0;
    double meanLatencyMs = 0.0;
    double p95LatencyOverallMs = 0.0;
    Bytes peakMemory = 0;
    std::uint32_t peakNodes = 0;
    /** Final replica count per deployment. */
    std::map<std::string, std::uint32_t> finalReplicas;
    /** HPA desired-count changes during the run (up + down). */
    std::uint64_t scaleEvents = 0;
    std::map<std::string, std::uint64_t> scaleEventsByDeployment;
};

class ClusterSimulation final : private EventSink, private PodSink
{
  public:
    ClusterSimulation(core::DeploymentPlan plan, hw::NodeSpec node,
                      workload::TrafficPattern traffic,
                      SimOptions options);

    /** Fix a deployment's replica count (implies no HPA for it). */
    void setFixedReplicas(const std::string &deployment,
                          std::uint32_t replicas);

    /**
     * Failure injection: at simulated time t, crash `count` pods of a
     * deployment. Crashed pods vanish immediately; their queued work
     * is re-dispatched, in-flight work is lost (those queries never
     * complete), and the HPA/reconciler replaces the capacity on its
     * next tick. Call before run().
     */
    void injectPodFailure(const std::string &deployment, SimTime t,
                          std::uint32_t count = 1);

    /** Queries whose in-flight work died with a crashed pod. */
    std::uint64_t lostQueries() const { return lostQueries_; }

    /** Run for the given simulated duration and collect results. */
    SimResult run(SimTime duration);

    /** Total events the engine has executed since construction (all
     *  runs); the throughput bench reports events per query from it. */
    std::uint64_t eventsExecuted() const { return queue_.executed(); }

    const core::DeploymentPlan &plan() const { return plan_; }

    /** Exportable metrics registry (shared with SimOptions' owner). */
    obs::Registry &observability() { return *obs_; }
    std::shared_ptr<obs::Registry> observabilityPtr() const
    {
        return obs_;
    }

    /** Sampled query traces collected by the last run. */
    const obs::Tracer &tracer() const { return tracer_; }
    const std::deque<obs::QueryTrace> &traces() const
    {
        return tracer_.traces();
    }

    /**
     * SLO alert engine, evaluated once per sample tick. Three default
     * rules watch the frontend (p95 against the dense HPA target held
     * for 5 s, cumulative SLA-violation ratio above 1%, any lost
     * queries); add more with slo().addRule() before run().
     */
    obs::SloTracker &slo() { return slo_; }
    const std::vector<obs::AlertEvent> &alertEvents() const
    {
        return slo_.events();
    }

  private:
    struct DeploymentState
    {
        std::unique_ptr<cluster::Deployment> deployment;
        std::unique_ptr<cluster::Hpa> hpa;
        std::vector<std::unique_ptr<Pod>> pods;
        Ring<WorkItem> pending; //!< Waiting for a ready pod.
        std::unique_ptr<cluster::LoadBalancer> balancer;
        bool fixed = false;
        /** Position in the plan's shard order; WorkItems and event
         *  payloads carry this instead of the deployment name. */
        std::uint16_t ordinal = 0;
        /** Wire bytes of one request/response to this deployment. */
        Bytes requestBytes = 0;
        Bytes responseBytes = 0;
        /** One-way RPC leg times for those sizes, precomputed (the
         *  channel model is pure, so per-query evaluation is waste). */
        SimTime rpcOut = 0;
        SimTime rpcBack = 0;
        /** Completion-series handle, resolved lazily at first record
         *  so export registration order matches the by-name path. */
        cluster::MetricsRegistry::Series *series = nullptr;
        /** Causal span names ("rpc/<dep>/request", ...), interned once
         *  at construction so traced queries record ids, never build
         *  strings. Sparse deployments only. */
        obs::NameId nameRpcRequest = obs::kInvalidNameId;
        obs::NameId nameRpcResponse = obs::kInvalidNameId;
        obs::NameId nameSparseQueue = obs::kInvalidNameId;
        obs::NameId nameSparseService = obs::kInvalidNameId;
        /** Ordinal among the plan's sparse deployments; fixes this
         *  deployment's child-slot pair under the root query span. */
        unsigned sparseOrdinal = 0;
        // Exported telemetry handles (owned by obs_).
        obs::Counter *obsColdStarts = nullptr;
        obs::Gauge *obsQueueDepth = nullptr;
        obs::Gauge *obsUtilization = nullptr;
        obs::Gauge *obsReady = nullptr;
        obs::Gauge *obsDesired = nullptr;
        /** Busy time carried by pods reaped since the run started. */
        SimTime reapedBusy = 0;
        /** Busy-time snapshot at the previous sample tick. */
        SimTime lastBusySample = 0;
    };

    // EventSink: route a typed event to its handler.
    void onEvent(const EventRecord &event) override;

    // PodSink: per-leg lifecycle, static dispatch on item.kind.
    void workStarted(const WorkItem &item, SimTime start) override;
    ERC_HOT_PATH
    void workDone(const WorkItem &item, SimTime done) override;
    void workLost(const WorkItem &item) override;

    // Span recording for sampled queries (cold relative to the gated
    // query path; the hot handlers call these only when a trace is
    // attached).
    void tracedWorkStarted(const WorkItem &item, SimTime start);
    void tracedMonoDone(const WorkItem &item, SimTime done);
    void tracedDenseDone(const WorkItem &item, SimTime done);
    void tracedRpcArrive(const DeploymentState &ds, std::uint32_t slot,
                         obs::TraceContext rpc, SimTime rpc_arrive);
    void tracedSparseDone(const WorkItem &item, SimTime done);
    void tracedQueryDone(std::uint32_t slot);

    DeploymentState &state(const std::string &name);
    double readSloSignal(const obs::SloSignal &signal, SimTime now);
    std::uint32_t readyReplicas(const DeploymentState &ds) const;
    Bytes liveMemory() const;
    std::uint32_t liveNodes() const;
    double jitter();

    void addPod(DeploymentState &ds, bool instant);
    void removePod(DeploymentState &ds);
    void reapDrained(DeploymentState &ds);
    void dispatch(DeploymentState &ds, const WorkItem &item);
    ERC_HOT_PATH
    void onArrival();
    ERC_HOT_PATH
    void rpcArrive(std::uint32_t slot, std::uint16_t ordinal);
    ERC_HOT_PATH
    void componentDone(std::uint32_t slot, SimTime done);
    void monoDone(const WorkItem &item, SimTime done);
    void sparseLegDone(const WorkItem &item, SimTime done);
    void podReady(std::uint64_t pod_id, std::uint16_t ordinal);
    void onFailure(std::size_t failure_idx);
    void scheduleNextArrival();
    void hpaTick();
    void sampleTick(SimTime end);
    void startQuery();

    core::DeploymentPlan plan_;
    hw::NodeSpec node_;
    workload::TrafficPattern traffic_;
    SimOptions options_;

    EventQueue queue_;
    Rng rng_;
    workload::PoissonArrivals arrivals_;
    rpc::Channel channel_;
    cluster::MetricsRegistry metrics_;
    cluster::Scheduler scheduler_;
    std::shared_ptr<obs::Registry> obs_;
    obs::Tracer tracer_;
    obs::SloTracker slo_;
    obs::Counter *obsArrivals_ = nullptr;

    std::vector<std::string> deploymentOrder_;
    std::map<std::string, DeploymentState> deployments_;
    /** Plan-order view of deployments_ (map nodes are stable). */
    std::vector<DeploymentState *> depByOrdinal_;
    std::string frontendName_;
    DeploymentState *frontend_ = nullptr;
    cluster::MetricsRegistry::Series *frontendSeries_ = nullptr;
    std::uint32_t numSparse_ = 0;
    std::uint64_t nextPodId_ = 1;

    QueryArena arena_;
    /** Scratch for dispatch(): reused across calls, bounded by the
     *  largest deployment's pod count. */
    std::vector<cluster::LbCandidate> lbScratch_;

    /** Bin-pack result cache: the pod population changes only on pod
     *  add/reap, not per sample, so liveNodes() reuses the last pack
     *  until the set is dirtied. */
    mutable bool packDirty_ = true;
    mutable std::uint32_t packedNodes_ = 0;

    // Run-scoped accumulators.
    SimResult result_;
    /** Streaming sketch over all completion latencies (ms): exact
     *  count/mean, p95 within the sketch's 1% relative accuracy. */
    obs::QuantileSketch latencyAll_;
    SimTime endTime_ = 0;
    std::uint64_t lostQueries_ = 0;

    struct PlannedFailure
    {
        std::string deployment;
        SimTime time;
        std::uint32_t count;
    };
    std::vector<PlannedFailure> plannedFailures_;
};

} // namespace erec::sim
