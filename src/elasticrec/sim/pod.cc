#include "elasticrec/sim/pod.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::sim {

Pod::Pod(std::uint64_t id, std::vector<SimTime> stage_latencies)
    : id_(id)
{
    ERC_CHECK(!stage_latencies.empty(), "pod needs at least one stage");
    stages_.resize(stage_latencies.size());
    for (std::size_t i = 0; i < stage_latencies.size(); ++i) {
        ERC_CHECK(stage_latencies[i] > 0,
                  "stage latency must be positive");
        stages_[i].nominal = stage_latencies[i];
        // Pre-size the stage queue: pod construction is a cold
        // (scale-up) step, while push() runs inside the gated query
        // path — a fresh pod's early ring doublings would show up as
        // per-query allocations there.
        stages_[i].queue.reserve(64);
    }
}

void
Pod::submit(EventQueue &queue, PodSink &sink, const WorkItem &item)
{
    ERC_CHECK(state_ == PodState::Ready,
              "cannot submit work to a pod that is not ready");
    ++inFlight_;
    stages_[0].queue.push(item);
    tryStart(queue, sink, 0);
}

void
Pod::tryStart(EventQueue &queue, PodSink &sink, std::size_t stage_idx)
{
    Stage &stage = stages_[stage_idx];
    if (stage.busy || stage.queue.empty())
        return;
    stage.busy = true;
    stage.inService = stage.queue.pop();

    const auto service = std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(stage.nominal) *
                                    stage.inService.jitter +
                                0.5));
    busyTime_ += service;
    if (stage_idx == 0) {
        stage.inService.svcStart = queue.now();
        sink.workStarted(stage.inService, queue.now());
    }
    queue.scheduleAfter(
        service, EventType::kStageDone,
        static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(this)),
        stage_idx);
}

void
Pod::stageDone(EventQueue &queue, PodSink &sink, std::size_t stage_idx)
{
    Stage &stage = stages_[stage_idx];
    ERC_CHECK(stage.busy, "kStageDone for an idle stage");
    stage.busy = false;
    const WorkItem item = stage.inService;
    if (state_ == PodState::Crashed) {
        // The container died while this request was in service: the
        // work is lost.
        --inFlight_;
        ++lost_;
        sink.workLost(item);
        return;
    }
    if (stage_idx + 1 < stages_.size()) {
        stages_[stage_idx + 1].queue.push(item);
        tryStart(queue, sink, stage_idx + 1);
        tryStart(queue, sink, stage_idx);
    } else {
        --inFlight_;
        ++served_;
        tryStart(queue, sink, stage_idx);
        // The completion notification runs last: the sink may
        // terminate and destroy this pod once it observes drained().
        sink.workDone(item, queue.now());
    }
}

std::vector<WorkItem>
Pod::crash(PodSink &sink)
{
    auto requeue = stealQueued();
    state_ = PodState::Crashed;
    // Work parked between pipeline stages dies with the container.
    // In-service work (busy stages) is lost later, when its pending
    // kStageDone event fires and sees the Crashed state.
    for (std::size_t i = 1; i < stages_.size(); ++i) {
        auto &q = stages_[i].queue;
        lost_ += q.size();
        inFlight_ -= static_cast<std::uint32_t>(q.size());
        while (!q.empty())
            sink.workLost(q.pop());
    }
    return requeue;
}

bool
Pod::removable() const
{
    if (drained())
        return true;
    if (state_ != PodState::Crashed)
        return false;
    for (const auto &stage : stages_)
        if (stage.busy)
            return false;
    return inFlight_ == 0;
}

std::vector<WorkItem>
Pod::stealQueued()
{
    std::vector<WorkItem> stolen;
    auto &q = stages_[0].queue;
    stolen.reserve(q.size());
    while (!q.empty())
        stolen.push_back(q.pop());
    inFlight_ -= static_cast<std::uint32_t>(stolen.size());
    return stolen;
}

} // namespace erec::sim
