#include "elasticrec/sim/pod.h"

#include <algorithm>

#include "elasticrec/common/error.h"

namespace erec::sim {

Pod::Pod(std::uint64_t id, std::vector<SimTime> stage_latencies)
    : id_(id)
{
    ERC_CHECK(!stage_latencies.empty(), "pod needs at least one stage");
    for (auto t : stage_latencies) {
        ERC_CHECK(t > 0, "stage latency must be positive");
        stages_.push_back(Stage{t, false, {}});
    }
}

// ERC_HOT_PATH_ALLOW("simulator time-domain: shares the `submit` base name with the dispatcher root, but models queueing in virtual time, not the serving hot path")
void
Pod::submit(EventQueue &queue, WorkItem item)
{
    ERC_CHECK(state_ == PodState::Ready,
              "cannot submit work to a pod that is not ready");
    ERC_CHECK(item.onDone != nullptr, "work item needs a completion");
    ++inFlight_;
    stages_[0].queue.push_back(std::move(item));
    tryStart(queue, 0);
}

void
Pod::tryStart(EventQueue &queue, std::size_t stage_idx)
{
    Stage &stage = stages_[stage_idx];
    if (stage.busy || stage.queue.empty())
        return;
    stage.busy = true;
    WorkItem item = std::move(stage.queue.front());
    stage.queue.pop_front();

    const auto service = std::max<SimTime>(
        1, static_cast<SimTime>(
               static_cast<double>(stage.nominal) * item.jitter + 0.5));
    busyTime_ += service;
    if (stage_idx == 0 && item.onStart)
        item.onStart(queue.now());
    queue.scheduleAfter(
        service, [this, &queue, stage_idx, item = std::move(item)]() mutable {
            stages_[stage_idx].busy = false;
            if (state_ == PodState::Crashed) {
                // The container died while this request was in
                // service: the work is lost.
                --inFlight_;
                ++lost_;
                return;
            }
            if (stage_idx + 1 < stages_.size()) {
                stages_[stage_idx + 1].queue.push_back(std::move(item));
                tryStart(queue, stage_idx + 1);
                tryStart(queue, stage_idx);
            } else {
                --inFlight_;
                ++served_;
                tryStart(queue, stage_idx);
                // The completion callback runs last: it may terminate
                // and destroy this pod once it observes drained().
                item.onDone(queue.now());
            }
        });
}

std::vector<WorkItem>
Pod::crash()
{
    auto requeue = stealQueued();
    state_ = PodState::Crashed;
    // Work parked between pipeline stages dies with the container.
    for (std::size_t i = 1; i < stages_.size(); ++i) {
        auto &q = stages_[i].queue;
        lost_ += q.size();
        inFlight_ -= static_cast<std::uint32_t>(q.size());
        q.clear();
    }
    return requeue;
}

bool
Pod::removable() const
{
    if (drained())
        return true;
    if (state_ != PodState::Crashed)
        return false;
    for (const auto &stage : stages_)
        if (stage.busy)
            return false;
    return inFlight_ == 0;
}

std::vector<WorkItem>
Pod::stealQueued()
{
    std::vector<WorkItem> stolen;
    auto &q = stages_[0].queue;
    stolen.reserve(q.size());
    for (auto &item : q)
        stolen.push_back(std::move(item));
    inFlight_ -= static_cast<std::uint32_t>(q.size());
    q.clear();
    return stolen;
}

} // namespace erec::sim
