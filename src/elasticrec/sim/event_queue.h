#pragma once

/**
 * @file
 * Discrete-event simulation core: a binary-heap queue over POD event
 * records with deterministic FIFO tie-breaking.
 *
 * Events carry a typed tag plus two integer payload words (an arena
 * index, a pod id, a deployment ordinal, ...) instead of a heap-bound
 * std::function closure, so scheduling and dispatch are allocation-free
 * on the steady path: the only allocation is the amortized growth of
 * the heap's backing vector. Execution is routed through an EventSink,
 * whose implementor interprets the tag — static dispatch over a
 * closed event taxonomy rather than dynamic dispatch over captured
 * lambdas.
 *
 * ## Ordering contract (FIFO tie-break)
 *
 * Events execute in nondecreasing time order. Events scheduled for the
 * *same* timestamp execute in the exact order their schedule() calls
 * were made (each record carries a monotone sequence number that breaks
 * heap ties), independent of the heap's internal layout or of how many
 * unrelated events were interleaved. This is load-bearing for
 * reproducibility: simulation results are a pure function of (plan,
 * options, seed), and the compat-tick fig19 golden test pins it.
 */

#include <cstdint>
#include <type_traits>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/common/units.h"

namespace erec::sim {

/**
 * Closed taxonomy of simulator events. kGeneric is reserved for unit
 * tests and sinks that interpret payloads themselves; the remaining
 * tags are the cluster simulation's event alphabet (see DESIGN.md §13).
 */
enum class EventType : std::uint16_t
{
    kGeneric = 0,
    /** A query arrives at the frontend (payload unused). */
    kArrival,
    /** A gather RPC reaches a sparse deployment
     *  (a = query arena slot, b = deployment ordinal). */
    kRpcArrive,
    /** One pod stage finished service
     *  (a = Pod pointer, b = stage index). */
    kStageDone,
    /** A fan-out leg's response lands at the frontend
     *  (a = query arena slot). */
    kComponentDone,
    /** A cold-started pod becomes Ready
     *  (a = pod id, b = deployment ordinal). */
    kPodReady,
    /** HPA reconcile tick (payload unused). */
    kHpaTick,
    /** Metrics/SLO sample tick (payload unused). */
    kSampleTick,
    /** Planned failure injection (a = failure index). */
    kFailure,
};

/** One scheduled event. POD by design: records live in the heap's
 *  backing vector and are moved wholesale during sift operations. */
struct EventRecord
{
    SimTime time = 0;
    /** Monotone schedule order; breaks same-time heap ties (FIFO). */
    std::uint64_t seq = 0;
    /** Payload words; meaning depends on type (see EventType). */
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    EventType type = EventType::kGeneric;
};
static_assert(std::is_trivially_copyable_v<EventRecord>,
              "event records must stay POD: the heap moves them in bulk "
              "and resume/replay tooling memcpys them");

/** Receiver of dispatched events. */
class EventSink
{
  public:
    virtual void onEvent(const EventRecord &event) = 0;

  protected:
    ~EventSink() = default;
};

class EventQueue
{
  public:
    EventQueue()
    {
        // Records are 40 bytes; reserving a few thousand up front costs
        // ~160 KB and keeps early heap doublings out of gated regions
        // (schedule() runs inside the zero-alloc query path).
        heap_.reserve(4096);
    }

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule an event at absolute time t (>= now). */
    ERC_HOT_PATH
    void schedule(SimTime t, EventType type, std::uint64_t a = 0,
                  std::uint64_t b = 0);

    /**
     * Schedule an event after a delay. Rejects negative delays and
     * delays that would overflow SimTime past the current clock —
     * silent wraparound would schedule "in the past" and corrupt the
     * heap order.
     */
    ERC_HOT_PATH
    void scheduleAfter(SimTime delay, EventType type, std::uint64_t a = 0,
                       std::uint64_t b = 0);

    /** True when no events remain. */
    bool empty() const { return heap_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

    /**
     * Execute the earliest event through the sink; returns false when
     * empty. Time-then-sequence order per the class contract.
     */
    bool runOne(EventSink &sink);

    /**
     * Run all events with time <= end, then advance the clock to end.
     */
    void runUntil(SimTime end, EventSink &sink);

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    /** Pop the earliest record and advance the clock to it. */
    ERC_HOT_PATH
    EventRecord popTop();

    /** Min-heap order: earliest time first, schedule order on ties. */
    struct Later
    {
        bool
        operator()(const EventRecord &a, const EventRecord &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::vector<EventRecord> heap_;
};

} // namespace erec::sim
