#pragma once

/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * deterministic FIFO tie-breaking for events scheduled at the same
 * tick.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "elasticrec/common/units.h"

namespace erec::sim {

class EventQueue
{
  public:
    using Action = std::function<void()>;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule an action at absolute time t (>= now). */
    void schedule(SimTime t, Action action);

    /** Schedule an action after a delay (>= 0). */
    void scheduleAfter(SimTime delay, Action action);

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events_.size(); }

    /** Execute the earliest event; returns false when empty. */
    bool runOne();

    /**
     * Run all events with time <= end, then advance the clock to end.
     */
    void runUntil(SimTime end);

    /** Total events executed so far. */
    std::uint64_t executed() const { return executed_; }

  private:
    struct Event
    {
        SimTime time;
        std::uint64_t seq;
        Action action;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    SimTime now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t executed_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> events_;
};

} // namespace erec::sim
