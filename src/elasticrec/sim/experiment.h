#pragma once

/**
 * @file
 * Experiment harness helpers shared by the benchmark binaries: access
 * CDF construction for a workload config, static deployment math
 * (memory, replicas, node packing), steady-state simulation runs, and
 * the Figure 14/17 memory-utility measurement.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "elasticrec/core/planner.h"
#include "elasticrec/embedding/access_cdf.h"
#include "elasticrec/sim/cluster_sim.h"
#include "elasticrec/workload/access_distribution.h"

namespace erec::sim {

/**
 * Build the access distribution the paper's locality model prescribes
 * for a workload config (P over the top 10% of rows).
 */
workload::AccessDistributionPtr
distributionFor(const model::DlrmConfig &config);

/**
 * Build the (analytic) access CDF for a workload config at the given
 * granularity — the input to the partitioning planner.
 */
std::shared_ptr<const embedding::AccessCdf>
cdfFor(const model::DlrmConfig &config, std::uint32_t granules = 1024);

/**
 * Shared knobs of the experiment helpers below. One options struct
 * instead of trailing positional defaults, so call sites name what
 * they override (designated initializers) and new knobs do not churn
 * every caller.
 */
struct ExperimentOptions
{
    /**
     * Peak per-replica utilization the deployment is sized for;
     * replicas are provisioned at target/utilization. Mirrors the
     * HPA's 65-70% scaling targets (Section IV-D) so tail latency
     * stays inside the SLA. Pass 1.0 for exact sizing.
     */
    double utilization = 0.85;
    /** Simulated duration of steady-state runs. */
    SimTime duration = 120 * units::kSecond;
    /** Queries streamed by measureUtility (the paper measures 1,000). */
    std::uint32_t numQueries = 1000;
    /** RNG seed for measureUtility's query stream. */
    std::uint64_t seed = 99;
    /**
     * Simulation options for runSteadyState. The harness forces
     * autoscale off and warmStart on (steady state is fixed-replica).
     */
    SimOptions sim = {};
};

/** Static deployment summary at a fleet target QPS. */
struct StaticDeployment
{
    std::string policy;
    double targetQps = 0.0;
    Bytes memory = 0;
    std::uint32_t totalReplicas = 0;
    std::uint32_t nodes = 0;
    std::map<std::string, std::uint32_t> replicas;
};

/**
 * Evaluate a plan statically: replica counts from the planner's
 * per-shard QPS estimates, total memory, and bin-packed node count.
 * Uses options.utilization for sizing.
 */
StaticDeployment evaluateStatic(const core::DeploymentPlan &plan,
                                const hw::NodeSpec &node,
                                double target_qps,
                                const ExperimentOptions &options = {});

/** Result of a steady-state (fixed-replica) simulation run. */
struct SteadyStateResult
{
    StaticDeployment staticView;
    double achievedQps = 0.0;
    double meanLatencyMs = 0.0;
    double p95LatencyMs = 0.0;
    double slaViolationFraction = 0.0;
};

/**
 * Run a fixed-replica steady-state simulation of a plan at the target
 * QPS and report achieved throughput and latency alongside the static
 * deployment view. Uses options.duration, options.utilization and
 * options.sim.
 */
SteadyStateResult runSteadyState(const core::DeploymentPlan &plan,
                                 const hw::NodeSpec &node,
                                 double target_qps,
                                 const ExperimentOptions &options = {});

/** Per-shard utility measurement (Figures 14 and 17). */
struct UtilityReport
{
    /** Utility (touched fraction) per shard, hottest first. */
    std::vector<double> shardUtility;
    /** Replicas the plan deploys per shard at the target QPS. */
    std::vector<std::uint32_t> shardReplicas;
    /** Whole-table utility. */
    double overallUtility = 0.0;
};

/**
 * Measure the memory utility of one table's shards by streaming
 * options.numQueries generated queries (the paper measures the first
 * 1,000) through the access distribution and recording which rows are
 * touched.
 *
 * @param config Workload config (row count, pooling factor, locality).
 * @param boundaries Table partitioning points (pass {rowsPerTable} for
 *        the model-wise monolithic layout).
 * @param shard_specs Shard specs of this table (for replica counts);
 *        may be empty when only utility is needed.
 * @param target_qps Fleet target used for the replica counts.
 */
UtilityReport measureUtility(
    const model::DlrmConfig &config,
    const std::vector<std::uint64_t> &boundaries,
    const std::vector<const core::ShardSpec *> &shard_specs,
    double target_qps, const ExperimentOptions &options = {});

} // namespace erec::sim
