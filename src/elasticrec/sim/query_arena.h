#pragma once

/**
 * @file
 * Arena for in-flight query fan-out/fan-in state.
 *
 * Replaces the per-query shared_ptr<QueryCtx> of the closure-based
 * simulator: query context lives in SoA vectors indexed by a slot id
 * that rides in WorkItems and event payloads. Slots are recycled
 * through a LIFO free list, so the steady path allocates nothing; the
 * backing vectors double (cold) only when the in-flight population
 * exceeds every previous peak.
 *
 * ## Lifetime rules (see DESIGN.md §13)
 *
 * A slot is allocated with an `outstanding` leg count (1 for
 * monolithic queries, 1 + #sparse shards for ElasticRec queries).
 * Every leg accounts for itself exactly once — via accountLeg() when
 * its response lands, or markDead() + accountLeg() when it is lost
 * with a crashed pod. The slot is released only when the count hits
 * zero, so a pending kRpcArrive/kComponentDone event can never refer
 * to a recycled slot: each such event belongs to a leg that has not
 * yet accounted. Dead slots (any leg lost) release without recording
 * a completion, mirroring the closure engine where a lost leg's
 * callback simply never fired.
 */

#include <cstdint>
#include <vector>

#include "elasticrec/common/hotpath.h"
#include "elasticrec/common/units.h"
#include "elasticrec/obs/trace_context.h"

namespace erec::obs {
struct QueryTrace;
}

namespace erec::sim {

class QueryArena
{
  public:
    /**
     * Claim a slot for a query arriving at `arrival` with
     * `outstanding` fan-out legs. `trace` is non-null only for
     * sampled queries; `root` is its root span context.
     */
    ERC_HOT_PATH
    std::uint32_t allocate(SimTime arrival, std::uint32_t outstanding,
                           obs::QueryTrace *trace,
                           obs::TraceContext root);

    /** Fold a leg's completion time into the query's last-done time. */
    void
    noteDone(std::uint32_t slot, SimTime done)
    {
        if (done > lastDone_[slot])
            lastDone_[slot] = done;
    }

    /**
     * Account one leg; true when it was the last (the query settled
     * and the caller must release() after reading the slot).
     */
    bool accountLeg(std::uint32_t slot)
    {
        return --outstanding_[slot] == 0;
    }

    /** Mark the query dead: a leg was lost, no completion may be
     *  recorded. The slot still releases once every leg accounts. */
    void markDead(std::uint32_t slot) { dead_[slot] = 1; }
    bool dead(std::uint32_t slot) const { return dead_[slot] != 0; }

    SimTime arrival(std::uint32_t slot) const { return arrival_[slot]; }
    SimTime lastDone(std::uint32_t slot) const
    {
        return lastDone_[slot];
    }
    obs::QueryTrace *trace(std::uint32_t slot) const
    {
        return trace_[slot];
    }
    obs::TraceContext root(std::uint32_t slot) const
    {
        return root_[slot];
    }

    /** Return a settled slot to the free list. */
    ERC_HOT_PATH
    void
    release(std::uint32_t slot)
    {
        // ERC_HOT_PATH_ALLOW("LIFO free-list push reuses capacity reserved by grow(); the list can never exceed the arena's capacity")
        freeList_.push_back(slot);
    }

    /** Total slots ever created (capacity high-water mark). */
    std::size_t capacity() const { return arrival_.size(); }
    /** Slots currently in flight. */
    std::size_t liveCount() const
    {
        return arrival_.size() - freeList_.size();
    }

  private:
    void grow();

    std::vector<SimTime> arrival_;
    std::vector<SimTime> lastDone_;
    std::vector<std::uint32_t> outstanding_;
    std::vector<std::uint8_t> dead_;
    std::vector<obs::QueryTrace *> trace_;
    std::vector<obs::TraceContext> root_;
    std::vector<std::uint32_t> freeList_;
};

} // namespace erec::sim
