#include "elasticrec/sim/query_arena.h"

namespace erec::sim {

std::uint32_t
QueryArena::allocate(SimTime arrival, std::uint32_t outstanding,
                     obs::QueryTrace *trace, obs::TraceContext root)
{
    if (freeList_.empty())
        grow();
    const std::uint32_t slot = freeList_.back();
    freeList_.pop_back();
    arrival_[slot] = arrival;
    lastDone_[slot] = 0;
    outstanding_[slot] = outstanding;
    dead_[slot] = 0;
    trace_[slot] = trace;
    root_[slot] = root;
    return slot;
}

// ERC_HOT_PATH_ALLOW("cold growth path: the SoA vectors double only when the in-flight population exceeds every previous peak; steady-state allocation cycles through the free list")
void
QueryArena::grow()
{
    const std::size_t old = arrival_.size();
    const std::size_t wider = old == 0 ? 64 : old * 2;
    arrival_.resize(wider, 0);
    lastDone_.resize(wider, 0);
    outstanding_.resize(wider, 0);
    dead_.resize(wider, 0);
    trace_.resize(wider, nullptr);
    root_.resize(wider, obs::TraceContext{});
    // Reserve free-list capacity for every slot up front so release()
    // can push without ever allocating.
    freeList_.reserve(wider);
    // Hand out low slots first (the list is LIFO).
    for (std::size_t s = wider; s > old; --s)
        freeList_.push_back(static_cast<std::uint32_t>(s - 1));
}

} // namespace erec::sim
