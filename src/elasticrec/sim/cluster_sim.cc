#include "elasticrec/sim/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "elasticrec/common/alloc_tracker.h"
#include "elasticrec/common/error.h"
#include "elasticrec/rpc/message.h"

namespace erec::sim {

namespace {

// Interned once at static-init time; trace records carry the ids.
const obs::NameId kQueryName = obs::internSpanName("query");
const obs::NameId kMonoQueueName = obs::internSpanName("mono/queue");
const obs::NameId kMonoServiceName =
    obs::internSpanName("mono/service");
const obs::NameId kDenseQueueName = obs::internSpanName("dense/queue");
const obs::NameId kDenseComputeName =
    obs::internSpanName("dense/compute");

/** Child slots under the root query span. Sparse deployment k owns
 *  the (2 + 2k, 3 + 2k) request/response pair, so every traced query
 *  of one plan produces the same structural span ids. */
constexpr unsigned kMonoQueueSlot = 0;
constexpr unsigned kMonoServiceSlot = 1;
constexpr unsigned kDenseQueueSlot = 0;
constexpr unsigned kDenseComputeSlot = 1;

constexpr unsigned
sparseRequestSlot(unsigned ordinal)
{
    return 2 + 2 * ordinal;
}

constexpr unsigned
sparseResponseSlot(unsigned ordinal)
{
    return 3 + 2 * ordinal;
}

/** Record one causal span: the context's structural id fixes its
 *  position in the trace's span tree. */
// ERC_HOT_PATH_ALLOW("span storage appends to the sampled query's trace; runs only for traced queries, which are excluded from the zero-alloc pin")
void
addCtxSpan(obs::QueryTrace *trace, const obs::TraceContext &ctx,
           obs::NameId name, SimTime start, SimTime end)
{
    trace->addSpan(name, start, end, ctx.spanId,
                   obs::parentSpanId(ctx.spanId));
}

// ERC_HOT_PATH_ALLOW("label construction for pod-scoped gauges: used at reap and per-pod sampling, never on the query path")
obs::Labels
podLabels(const std::string &deployment, std::uint64_t pod_id)
{
    return {{"deployment", deployment},
            {"pod", "pod-" + std::to_string(pod_id)}};
}

/** Allocation region charged by the gated query-path event handlers
 *  (kArrival, kRpcArrive, kStageDone, kComponentDone). */
AllocRegion &
simQueryRegion()
{
    static AllocRegion region("sim.query_path");
    return region;
}

} // namespace

ClusterSimulation::ClusterSimulation(core::DeploymentPlan plan,
                                     hw::NodeSpec node,
                                     workload::TrafficPattern traffic,
                                     SimOptions options)
    : plan_(std::move(plan)), node_(std::move(node)),
      traffic_(std::move(traffic)), options_(options),
      rng_(options.seed), arrivals_(traffic_, options.seed ^ 0xA551),
      channel_(hw::NetworkLink(node_)),
      scheduler_(node_),
      obs_(options.observability ? options.observability
                                 : std::make_shared<obs::Registry>()),
      tracer_(options.traceSampleEvery),
      slo_([this](const obs::SloSignal &signal, SimTime now) {
          return readSloSignal(signal, now);
      })
{
    ERC_CHECK(!plan_.shards.empty(), "deployment plan has no shards");
    metrics_.bindObservability(obs_.get());
    obsArrivals_ = &obs_->counter("erec_arrivals_total",
                                  "Queries arrived at the frontend.");
    const double initial_qps = traffic_.qpsAt(0);

    unsigned sparseCount = 0;
    for (const auto &spec : plan_.shards) {
        DeploymentState ds;
        const std::uint32_t initial =
            options_.warmStart
                ? core::DeploymentPlan::replicasForTarget(spec,
                                                          initial_qps)
                : 1;
        ds.deployment =
            std::make_unique<cluster::Deployment>(spec, initial);

        cluster::HpaPolicy policy;
        policy.syncPeriod = options_.hpaSyncPeriod;
        policy.stabilizationWindow = options_.hpaStabilization;
        if (spec.kind == core::ShardKind::SparseEmbedding) {
            policy.metric = cluster::HpaMetric::QpsPerReplica;
            policy.target =
                spec.qpsPerReplica * options_.sparseUtilizationTarget;
        } else {
            policy.metric = cluster::HpaMetric::TailLatency;
            policy.target = static_cast<double>(options_.sla) *
                            options_.denseLatencyTargetFraction;
        }
        ds.hpa = std::make_unique<cluster::Hpa>(policy);
        ds.hpa->bindObservability(obs_.get(), spec.name);

        const obs::Labels labels = {{"deployment", spec.name}};
        ds.obsColdStarts = &obs_->counter(
            "erec_cold_starts_total",
            "Pods started cold (container boot + parameter load).",
            labels);
        ds.obsQueueDepth = &obs_->gauge(
            "erec_queue_depth",
            "Requests pending or in flight across the deployment.",
            labels);
        ds.obsUtilization = &obs_->gauge(
            "erec_utilization",
            "Fraction of ready-replica service capacity busy over the "
            "last sample interval.",
            labels);
        ds.obsReady = &obs_->gauge(
            "erec_ready_replicas", "Pods in the Ready state.", labels);
        ds.obsDesired = &obs_->gauge(
            "erec_desired_replicas",
            "Replica count the controller is converging toward.",
            labels);

        ds.balancer = std::make_unique<cluster::LoadBalancer>(
            options_.lbPolicy,
            options_.seed ^ std::hash<std::string>{}(spec.name));

        if (spec.kind == core::ShardKind::SparseEmbedding) {
            ds.nameRpcRequest =
                obs::internSpanName("rpc/" + spec.name + "/request");
            ds.nameRpcResponse =
                obs::internSpanName("rpc/" + spec.name + "/response");
            ds.nameSparseQueue =
                obs::internSpanName("sparse/" + spec.name + "/queue");
            ds.nameSparseService =
                obs::internSpanName("sparse/" + spec.name + "/service");
            ds.sparseOrdinal = sparseCount++;
            rpc::GatherRequest req;
            req.numIndices = static_cast<std::uint32_t>(
                std::ceil(spec.expectedGathers));
            req.numOffsets = plan_.config.batchSize;
            rpc::GatherResponse resp;
            resp.batch = plan_.config.batchSize;
            resp.dim = plan_.config.embeddingDim;
            ds.requestBytes = req.wireBytes();
            ds.responseBytes = resp.wireBytes();
            // The channel model is pure: one-way leg times per
            // deployment are constants of the plan.
            ds.rpcOut = channel_.oneWay(ds.requestBytes);
            ds.rpcBack = channel_.oneWay(ds.responseBytes);
        }

        if (spec.kind == core::ShardKind::Dense ||
            spec.kind == core::ShardKind::Monolithic) {
            ERC_CHECK(frontendName_.empty(),
                      "plan has more than one frontend shard");
            frontendName_ = spec.name;
        }
        ds.ordinal =
            static_cast<std::uint16_t>(deploymentOrder_.size());
        deploymentOrder_.push_back(spec.name);
        auto [it, inserted] =
            deployments_.emplace(spec.name, std::move(ds));
        ERC_CHECK(inserted, "duplicate deployment " << spec.name);
        depByOrdinal_.push_back(&it->second);
        if (it->first == frontendName_)
            frontend_ = &it->second;
    }
    ERC_CHECK(!frontendName_.empty(), "plan has no frontend shard");
    numSparse_ = sparseCount;

    // Default SLO rules: mirror the control loop's own targets so a
    // run's verdict is "did the autoscaler hold the line".
    {
        obs::AlertRule p95;
        p95.name = "frontend-p95";
        p95.signal = {obs::SignalKind::P95, frontendName_};
        p95.threshold = units::toMillis(options_.sla) *
                        options_.denseLatencyTargetFraction;
        p95.holdFor = 5 * units::kSecond;
        slo_.addRule(std::move(p95));

        obs::AlertRule ratio;
        ratio.name = "sla-violation-ratio";
        ratio.signal = {obs::SignalKind::ViolationRatio, frontendName_};
        ratio.threshold = 0.01;
        slo_.addRule(std::move(ratio));

        obs::AlertRule lost;
        lost.name = "lost-queries";
        lost.signal = {obs::SignalKind::LostQueries, ""};
        slo_.addRule(std::move(lost));
    }
    slo_.bindObservability(obs_.get());
}

double
ClusterSimulation::readSloSignal(const obs::SloSignal &signal, SimTime now)
{
    switch (signal.kind) {
      case obs::SignalKind::P95:
        return units::toMillis(
            metrics_.latencyQuantile(signal.target, now, 0.95));
      case obs::SignalKind::ViolationRatio: {
        const std::uint64_t done = metrics_.completions(signal.target);
        if (done == 0)
            return 0.0;
        return static_cast<double>(
                   metrics_.slaViolations(signal.target)) /
               static_cast<double>(done);
      }
      case obs::SignalKind::Qps:
        return metrics_.qps(signal.target, now);
      case obs::SignalKind::GaugeValue:
        return metrics_.gauge(signal.target);
      case obs::SignalKind::LostQueries:
        return static_cast<double>(lostQueries_);
    }
    return 0.0;
}

ClusterSimulation::DeploymentState &
ClusterSimulation::state(const std::string &name)
{
    auto it = deployments_.find(name);
    ERC_ASSERT(it != deployments_.end(),
               "unknown deployment " << name);
    return it->second;
}

void
ClusterSimulation::setFixedReplicas(const std::string &deployment,
                                    std::uint32_t replicas)
{
    auto &ds = state(deployment);
    ds.deployment->setDesiredReplicas(replicas);
    ds.fixed = true;
}

void
ClusterSimulation::injectPodFailure(const std::string &deployment,
                                    SimTime t, std::uint32_t count)
{
    state(deployment); // validate the name early
    plannedFailures_.push_back({deployment, t, count});
}

std::uint32_t
ClusterSimulation::readyReplicas(const DeploymentState &ds) const
{
    std::uint32_t n = 0;
    for (const auto &p : ds.pods)
        if (p->state() == PodState::Ready)
            ++n;
    return n;
}

Bytes
ClusterSimulation::liveMemory() const
{
    Bytes total = 0;
    for (const auto &[name, ds] : deployments_)
        total += Bytes{ds.pods.size()} * ds.deployment->spec().memBytes;
    return total;
}

std::uint32_t
ClusterSimulation::liveNodes() const
{
    // The pod population changes on add/reap only; between changes the
    // bin-pack result is a pure function of it, so reuse the cache.
    if (!packDirty_)
        return packedNodes_;
    std::vector<cluster::PodRequest> pods;
    for (const auto &[name, ds] : deployments_) {
        const auto req = ds.deployment->request();
        for (std::size_t i = 0; i < ds.pods.size(); ++i)
            pods.push_back({name, req});
    }
    packedNodes_ = scheduler_.pack(pods).numNodes();
    packDirty_ = false;
    return packedNodes_;
}

double
ClusterSimulation::jitter()
{
    if (options_.serviceJitterSigma <= 0)
        return 1.0;
    return std::exp(rng_.normal(0.0, options_.serviceJitterSigma));
}

void
ClusterSimulation::addPod(DeploymentState &ds, bool instant)
{
    const auto &spec = ds.deployment->spec();
    auto pod = std::make_unique<Pod>(nextPodId_++, spec.stageLatencies);
    Pod *raw = pod.get();
    ds.pods.push_back(std::move(pod));
    packDirty_ = true;
    if (instant) {
        raw->markReady();
        return;
    }
    ds.obsColdStarts->inc();
    // Cold start: container scheduling plus loading this shard's
    // parameters into memory. The ready event carries the pod id, not
    // the pointer: the pod may be terminated — even reaped — while
    // starting, and the handler looks it up before touching it.
    const SimTime load = units::fromSeconds(
        static_cast<double>(spec.memBytes) /
        options_.modelLoadBandwidth);
    queue_.scheduleAfter(options_.podStartBase + load,
                         EventType::kPodReady, raw->id(), ds.ordinal);
}

void
ClusterSimulation::podReady(std::uint64_t pod_id, std::uint16_t ordinal)
{
    DeploymentState &ds = *depByOrdinal_[ordinal];
    Pod *raw = nullptr;
    for (const auto &p : ds.pods) {
        if (p->id() == pod_id) {
            raw = p.get();
            break;
        }
    }
    // The pod may have been terminated (or reaped) while starting.
    if (raw == nullptr || raw->state() != PodState::Starting)
        return;
    raw->markReady();
    // Drain any requests that queued while no pod was ready.
    while (!ds.pending.empty()) {
        const WorkItem item = ds.pending.pop();
        dispatch(ds, item);
    }
}

void
ClusterSimulation::removePod(DeploymentState &ds)
{
    // Prefer terminating a pod that is still starting, else the ready
    // pod with the least in-flight work.
    Pod *victim = nullptr;
    for (const auto &p : ds.pods) {
        if (p->state() == PodState::Starting) {
            victim = p.get();
            break;
        }
    }
    if (victim == nullptr) {
        for (const auto &p : ds.pods) {
            if (p->state() != PodState::Ready)
                continue;
            if (victim == nullptr ||
                p->inFlight() < victim->inFlight())
                victim = p.get();
        }
    }
    if (victim == nullptr)
        return; // Nothing removable (all already terminating).

    victim->markTerminating();
    for (const auto &item : victim->stealQueued())
        dispatch(ds, item);
    reapDrained(ds);
}

// ERC_HOT_PATH_ALLOW("reap allocates (gauge label removal) only when a drained or crash-settled pod is actually destroyed — a scale-down/crash consequence, not a per-query step")
void
ClusterSimulation::reapDrained(DeploymentState &ds)
{
    const auto removed =
        std::erase_if(ds.pods, [this, &ds](const std::unique_ptr<Pod> &p) {
            if (!p->removable())
                return false;
            lostQueries_ += p->lostItems();
            // Keep the utilization accounting and the export clean:
            // carry the dead pod's busy time, drop its per-pod gauge.
            ds.reapedBusy += p->busyTime();
            obs_->remove("erec_pod_queue_depth",
                         podLabels(ds.deployment->name(), p->id()));
            return true;
        });
    if (removed != 0)
        packDirty_ = true;
}

void
ClusterSimulation::dispatch(DeploymentState &ds, const WorkItem &item)
{
    // Route across ready replicas with the configured policy
    // (Linkerd's default is power-of-two-choices). The candidate list
    // is a member scratch vector: cleared per call, capacity bounded
    // by the largest deployment's pod count.
    lbScratch_.clear();
    for (std::uint32_t i = 0; i < ds.pods.size(); ++i) {
        if (ds.pods[i]->state() == PodState::Ready) {
            // ERC_HOT_PATH_ALLOW("scratch vector reuses capacity across dispatches; bounded by the pod count, it stops growing once the fleet peaks")
            lbScratch_.push_back({i, ds.pods[i]->inFlight()});
        }
    }
    if (lbScratch_.empty()) {
        ds.pending.push(item);
        return;
    }
    const auto chosen = ds.balancer->pick(lbScratch_);
    ds.pods[chosen]->submit(queue_, *this, item);
}

void
ClusterSimulation::startQuery()
{
    DeploymentState &fe = *frontend_;
    const SimTime arrival = queue_.now();
    const bool monolithic =
        fe.deployment->spec().kind == core::ShardKind::Monolithic;

    // Deterministic sampling: no RNG draw, no extra events, so traced
    // and untraced runs play out identically.
    obs::QueryTrace *trace = tracer_.maybeSample(arrival);

    const obs::TraceContext root =
        trace != nullptr
            ? obs::TraceContext{trace->traceId, obs::kRootSpanId}
            : obs::TraceContext{};

    if (monolithic) {
        WorkItem item;
        item.jitter = jitter();
        item.t0 = arrival;
        item.ctx = arena_.allocate(arrival, 1, trace, root);
        item.dep = fe.ordinal;
        item.kind = WorkKind::Mono;
        if (trace != nullptr)
            item.trace = root;
        dispatch(fe, item);
        return;
    }

    // ElasticRec: the dense shard computes its MLP while the gather
    // RPCs fan out to every sparse shard; the query completes when the
    // dense compute and the slowest shard round trip have both
    // finished. The arena slot carries the fan-in state.
    const std::uint32_t slot =
        arena_.allocate(arrival, 1 + numSparse_, trace, root);

    // Dense leg: overlaps the bottom-MLP compute with the gathers.
    {
        WorkItem item;
        item.jitter = jitter();
        item.t0 = arrival;
        item.ctx = slot;
        item.dep = fe.ordinal;
        item.kind = WorkKind::DenseLeg;
        if (trace != nullptr)
            item.trace = root.child(kDenseComputeSlot);
        dispatch(fe, item);
    }

    // Sparse legs: request network delay, shard service, response
    // network delay. The kRpcArrive event stands in for the request
    // leg's network flight.
    for (DeploymentState *dsp : depByOrdinal_) {
        DeploymentState &ds = *dsp;
        if (ds.deployment->spec().kind !=
            core::ShardKind::SparseEmbedding)
            continue;
        queue_.scheduleAfter(ds.rpcOut, EventType::kRpcArrive, slot,
                             ds.ordinal);
    }
}

void
ClusterSimulation::rpcArrive(std::uint32_t slot, std::uint16_t ordinal)
{
    DeploymentState &ds = *depByOrdinal_[ordinal];
    const SimTime rpc_arrive = queue_.now();
    WorkItem item;
    item.jitter = jitter();
    item.t0 = rpc_arrive;
    item.ctx = slot;
    item.dep = ordinal;
    item.kind = WorkKind::SparseLeg;
    // The RPC leg's context rides on the work item exactly as the
    // functional stack propagates it in the GatherRequest header;
    // shard-side spans hang under the request span.
    const obs::TraceContext rpc =
        arena_.root(slot).child(sparseRequestSlot(ds.sparseOrdinal));
    if (arena_.trace(slot) != nullptr) {
        item.trace = rpc;
        tracedRpcArrive(ds, slot, rpc, rpc_arrive);
    }
    dispatch(ds, item);
}

void
ClusterSimulation::onArrival()
{
    ++result_.arrivals;
    obsArrivals_->inc();
    startQuery();
    scheduleNextArrival();
}

void
ClusterSimulation::workStarted(const WorkItem &item, SimTime start)
{
    if (arena_.trace(item.ctx) != nullptr)
        tracedWorkStarted(item, start);
}

void
ClusterSimulation::workDone(const WorkItem &item, SimTime done)
{
    switch (item.kind) {
      case WorkKind::Mono:
        monoDone(item, done);
        break;
      case WorkKind::DenseLeg:
        if (arena_.trace(item.ctx) != nullptr)
            tracedDenseDone(item, done);
        componentDone(item.ctx, done);
        break;
      case WorkKind::SparseLeg:
        sparseLegDone(item, done);
        break;
      case WorkKind::None:
        break;
    }
}

void
ClusterSimulation::workLost(const WorkItem &item)
{
    // A leg died with its pod: the query can never complete, but its
    // slot must still wait for every other leg to account before it
    // recycles (pending kComponentDone events refer to it).
    arena_.markDead(item.ctx);
    if (arena_.accountLeg(item.ctx))
        arena_.release(item.ctx);
}

void
ClusterSimulation::monoDone(const WorkItem &item, SimTime done)
{
    const std::uint32_t slot = item.ctx;
    const SimTime latency = done - arena_.arrival(slot);
    if (frontendSeries_ == nullptr)
        frontendSeries_ = &metrics_.seriesFor(frontendName_);
    metrics_.recordCompletion(*frontendSeries_, done, latency);
    // ERC_HOT_PATH_ALLOW("DDSketch insert: bucket storage extends only on first sight of a value range; steady-state inserts are allocation-free and the AllocGate pins them")
    latencyAll_.insert(units::toMillis(latency));
    ++result_.completed;
    if (latency > options_.sla) {
        metrics_.recordSlaViolation(*frontendSeries_);
        ++result_.slaViolations;
    }
    if (arena_.trace(slot) != nullptr)
        tracedMonoDone(item, done);
    arena_.release(slot);
}

void
ClusterSimulation::sparseLegDone(const WorkItem &item, SimTime done)
{
    DeploymentState &ds = *depByOrdinal_[item.dep];
    if (ds.series == nullptr)
        ds.series = &metrics_.seriesFor(ds.deployment->name());
    metrics_.recordCompletion(*ds.series, done, 0);
    if (arena_.trace(item.ctx) != nullptr)
        tracedSparseDone(item, done);
    reapDrained(ds);
    // Response leg flies back; fan-in happens when it lands.
    queue_.schedule(done + ds.rpcBack, EventType::kComponentDone,
                    item.ctx);
}

void
ClusterSimulation::componentDone(std::uint32_t slot, SimTime done)
{
    arena_.noteDone(slot, done);
    if (!arena_.accountLeg(slot))
        return;
    if (arena_.dead(slot)) {
        // A sibling leg was lost: no completion, just recycle.
        arena_.release(slot);
        return;
    }
    const SimTime last = arena_.lastDone(slot);
    const SimTime latency = last - arena_.arrival(slot);
    if (frontendSeries_ == nullptr)
        frontendSeries_ = &metrics_.seriesFor(frontendName_);
    metrics_.recordCompletion(*frontendSeries_, last, latency);
    // ERC_HOT_PATH_ALLOW("DDSketch insert: bucket storage extends only on first sight of a value range; steady-state inserts are allocation-free and the AllocGate pins them")
    latencyAll_.insert(units::toMillis(latency));
    ++result_.completed;
    if (latency > options_.sla) {
        metrics_.recordSlaViolation(*frontendSeries_);
        ++result_.slaViolations;
    }
    if (arena_.trace(slot) != nullptr)
        tracedQueryDone(slot);
    arena_.release(slot);
}

// ERC_HOT_PATH_ALLOW("span recording runs only for sampled queries; the sampled path is excluded from the zero-alloc pin by design")
void
ClusterSimulation::tracedWorkStarted(const WorkItem &item, SimTime start)
{
    obs::QueryTrace *trace = arena_.trace(item.ctx);
    const obs::TraceContext root = arena_.root(item.ctx);
    switch (item.kind) {
      case WorkKind::Mono:
        addCtxSpan(trace, root.child(kMonoQueueSlot), kMonoQueueName,
                   item.t0, start);
        break;
      case WorkKind::DenseLeg:
        addCtxSpan(trace, root.child(kDenseQueueSlot), kDenseQueueName,
                   item.t0, start);
        break;
      case WorkKind::SparseLeg: {
        const DeploymentState &ds = *depByOrdinal_[item.dep];
        addCtxSpan(trace, item.trace.child(0), ds.nameSparseQueue,
                   item.t0, start);
        break;
      }
      case WorkKind::None:
        break;
    }
}

// ERC_HOT_PATH_ALLOW("span recording runs only for sampled queries; the sampled path is excluded from the zero-alloc pin by design")
void
ClusterSimulation::tracedMonoDone(const WorkItem &item, SimTime done)
{
    obs::QueryTrace *trace = arena_.trace(item.ctx);
    const obs::TraceContext root = arena_.root(item.ctx);
    addCtxSpan(trace, root.child(kMonoServiceSlot), kMonoServiceName,
               item.svcStart, done);
    addCtxSpan(trace, root, kQueryName, arena_.arrival(item.ctx), done);
    tracer_.finish(trace, done);
}

// ERC_HOT_PATH_ALLOW("span recording runs only for sampled queries; the sampled path is excluded from the zero-alloc pin by design")
void
ClusterSimulation::tracedDenseDone(const WorkItem &item, SimTime done)
{
    addCtxSpan(arena_.trace(item.ctx), item.trace, kDenseComputeName,
               item.svcStart, done);
}

// ERC_HOT_PATH_ALLOW("span recording runs only for sampled queries; the sampled path is excluded from the zero-alloc pin by design")
void
ClusterSimulation::tracedRpcArrive(const DeploymentState &ds,
                                   std::uint32_t slot,
                                   obs::TraceContext rpc,
                                   SimTime rpc_arrive)
{
    addCtxSpan(arena_.trace(slot), rpc, ds.nameRpcRequest,
               arena_.arrival(slot), rpc_arrive);
}

// ERC_HOT_PATH_ALLOW("span recording runs only for sampled queries; the sampled path is excluded from the zero-alloc pin by design")
void
ClusterSimulation::tracedSparseDone(const WorkItem &item, SimTime done)
{
    const DeploymentState &ds = *depByOrdinal_[item.dep];
    obs::QueryTrace *trace = arena_.trace(item.ctx);
    addCtxSpan(trace, item.trace.child(1), ds.nameSparseService,
               item.svcStart, done);
    addCtxSpan(trace,
               arena_.root(item.ctx).child(
                   sparseResponseSlot(ds.sparseOrdinal)),
               ds.nameRpcResponse, done, done + ds.rpcBack);
}

// ERC_HOT_PATH_ALLOW("span recording runs only for sampled queries; the sampled path is excluded from the zero-alloc pin by design")
void
ClusterSimulation::tracedQueryDone(std::uint32_t slot)
{
    obs::QueryTrace *trace = arena_.trace(slot);
    addCtxSpan(trace, arena_.root(slot), kQueryName,
               arena_.arrival(slot), arena_.lastDone(slot));
    tracer_.finish(trace, arena_.lastDone(slot));
}

void
ClusterSimulation::scheduleNextArrival()
{
    const SimTime next = arrivals_.nextAfter(queue_.now());
    if (next > endTime_)
        return;
    queue_.schedule(next, EventType::kArrival);
}

void
ClusterSimulation::onFailure(std::size_t failure_idx)
{
    const PlannedFailure &failure = plannedFailures_[failure_idx];
    auto &ds = state(failure.deployment);
    for (std::uint32_t k = 0; k < failure.count; ++k) {
        // Crash the most-loaded ready pod (worst case).
        Pod *victim = nullptr;
        for (const auto &p : ds.pods) {
            if (p->state() != PodState::Ready)
                continue;
            if (victim == nullptr ||
                p->inFlight() > victim->inFlight())
                victim = p.get();
        }
        if (victim == nullptr)
            break;
        for (const auto &item : victim->crash(*this))
            dispatch(ds, item);
        reapDrained(ds);
    }
}

void
ClusterSimulation::hpaTick()
{
    if (options_.autoscale) {
        for (const auto &name : deploymentOrder_) {
            auto &ds = state(name);
            if (ds.fixed)
                continue;
            const std::uint32_t ready = readyReplicas(ds);
            if (ready == 0)
                continue;
            const auto &spec = ds.deployment->spec();
            double measured = 0.0;
            if (spec.kind == core::ShardKind::SparseEmbedding) {
                measured = metrics_.qps(name, queue_.now()) /
                           static_cast<double>(ready);
            } else {
                measured = static_cast<double>(metrics_.latencyQuantile(
                    frontendName_, queue_.now(), 0.95));
            }
            const std::uint32_t desired =
                ds.hpa->reconcile(queue_.now(), ready, measured);
            ds.deployment->setDesiredReplicas(desired);
        }
    }

    // Reconcile pod counts toward desired (fixed deployments too).
    for (const auto &name : deploymentOrder_) {
        auto &ds = state(name);
        reapDrained(ds);
        std::uint32_t live = 0;
        for (const auto &p : ds.pods)
            if (p->state() == PodState::Ready ||
                p->state() == PodState::Starting)
                ++live;
        const std::uint32_t desired = ds.deployment->desiredReplicas();
        while (live < desired) {
            addPod(ds, false);
            ++live;
        }
        while (live > desired) {
            removePod(ds);
            --live;
        }
    }

    if (queue_.now() + options_.hpaSyncPeriod <= endTime_)
        queue_.scheduleAfter(options_.hpaSyncPeriod,
                             EventType::kHpaTick);
}

void
ClusterSimulation::sampleTick(SimTime end)
{
    const SimTime now = queue_.now();
    result_.targetQps.add(now, traffic_.qpsAt(now));
    result_.achievedQps.add(now, metrics_.qps(frontendName_, now));
    const Bytes mem = liveMemory();
    result_.memoryGiB.add(now, units::toGiB(mem));
    result_.peakMemory = std::max(result_.peakMemory, mem);
    result_.p95LatencyMs.add(
        now, units::toMillis(metrics_.latencyQuantile(frontendName_,
                                                      now, 0.95)));
    std::uint32_t ready = 0;
    for (const auto &[name, ds] : deployments_)
        ready += readyReplicas(ds);
    result_.readyReplicas.add(now, ready);
    const std::uint32_t nodes = liveNodes();
    result_.nodesInUse.add(now, nodes);
    result_.peakNodes = std::max(result_.peakNodes, nodes);

    // Publish per-deployment (and, in compat mode, per-pod) gauges
    // for the export.
    for (auto &[name, ds] : deployments_) {
        std::uint32_t depth =
            static_cast<std::uint32_t>(ds.pending.size());
        SimTime busy = ds.reapedBusy;
        std::uint32_t dep_ready = 0;
        for (const auto &p : ds.pods) {
            depth += p->inFlight();
            busy += p->busyTime();
            if (p->state() == PodState::Ready) {
                ++dep_ready;
                if (options_.sampling == SamplingMode::CompatTick)
                    obs_->gauge(
                            "erec_pod_queue_depth",
                            "Requests queued or in service at one pod.",
                            podLabels(name, p->id()))
                        .set(p->inFlight());
            }
        }
        ds.obsQueueDepth->set(depth);
        ds.obsReady->set(dep_ready);
        ds.obsDesired->set(ds.deployment->desiredReplicas());
        const auto stages = static_cast<double>(
            ds.deployment->spec().stageLatencies.size());
        const double capacity =
            static_cast<double>(options_.sampleInterval) *
            static_cast<double>(dep_ready) * stages;
        const double util =
            capacity > 0
                ? static_cast<double>(busy - ds.lastBusySample) /
                      capacity
                : 0.0;
        ds.obsUtilization->set(util);
        ds.lastBusySample = busy;
    }

    slo_.evaluate(now);

    if (now + options_.sampleInterval <= end)
        queue_.scheduleAfter(options_.sampleInterval,
                             EventType::kSampleTick);
}

void
ClusterSimulation::onEvent(const EventRecord &event)
{
    switch (event.type) {
      case EventType::kArrival: {
        const AllocGate gate(simQueryRegion());
        onArrival();
        break;
      }
      case EventType::kRpcArrive: {
        const AllocGate gate(simQueryRegion());
        rpcArrive(static_cast<std::uint32_t>(event.a),
                  static_cast<std::uint16_t>(event.b));
        break;
      }
      case EventType::kStageDone: {
        const AllocGate gate(simQueryRegion());
        reinterpret_cast<Pod *>(static_cast<std::uintptr_t>(event.a))
            ->stageDone(queue_, *this,
                        static_cast<std::size_t>(event.b));
        break;
      }
      case EventType::kComponentDone: {
        const AllocGate gate(simQueryRegion());
        componentDone(static_cast<std::uint32_t>(event.a),
                      queue_.now());
        break;
      }
      case EventType::kPodReady:
        podReady(event.a, static_cast<std::uint16_t>(event.b));
        break;
      case EventType::kHpaTick:
        hpaTick();
        break;
      case EventType::kSampleTick:
        sampleTick(endTime_);
        break;
      case EventType::kFailure:
        onFailure(static_cast<std::size_t>(event.a));
        break;
      case EventType::kGeneric:
        break;
    }
}

SimResult
ClusterSimulation::run(SimTime duration)
{
    ERC_CHECK(duration > 0, "simulation duration must be positive");
    result_ = SimResult{};
    latencyAll_.clear();
    lostQueries_ = 0;
    endTime_ = duration;
    tracer_.reset();
    slo_.reset();

    // Baseline the scale-event counters so result_ reports only this
    // run's events even when the simulation object is reused.
    std::map<std::string, std::uint64_t> scaleBaseline;
    for (const auto &name : deploymentOrder_) {
        const auto &hpa = *state(name).hpa;
        scaleBaseline[name] =
            hpa.scaleUpEvents() + hpa.scaleDownEvents();
    }

    // Instantiate the initial replica set, ready at t = 0.
    for (const auto &name : deploymentOrder_) {
        auto &ds = state(name);
        while (ds.pods.size() < ds.deployment->desiredReplicas())
            addPod(ds, true);
    }

    for (std::size_t i = 0; i < plannedFailures_.size(); ++i)
        queue_.schedule(plannedFailures_[i].time, EventType::kFailure,
                        i);

    scheduleNextArrival();
    queue_.scheduleAfter(options_.hpaSyncPeriod, EventType::kHpaTick);
    sampleTick(duration);
    queue_.runUntil(duration, *this);

    result_.meanLatencyMs = latencyAll_.mean();
    result_.p95LatencyOverallMs = latencyAll_.quantile(0.95);
    for (const auto &name : deploymentOrder_) {
        auto &ds = state(name);
        for (const auto &p : ds.pods)
            lostQueries_ += p->lostItems();
        result_.finalReplicas[name] =
            static_cast<std::uint32_t>(ds.pods.size());
        const std::uint64_t events = ds.hpa->scaleUpEvents() +
                                     ds.hpa->scaleDownEvents() -
                                     scaleBaseline[name];
        result_.scaleEventsByDeployment[name] = events;
        result_.scaleEvents += events;
    }
    obs_->gauge("erec_lost_queries",
                "Queries whose in-flight work died with a crashed pod.")
        .set(static_cast<double>(lostQueries_));
    return result_;
}

} // namespace erec::sim
