#include "elasticrec/sim/cluster_sim.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "elasticrec/common/error.h"
#include "elasticrec/rpc/message.h"

namespace erec::sim {

namespace {

/** Shared fan-out/fan-in context of one in-flight query. */
struct QueryCtx
{
    SimTime arrival = 0;
    std::uint32_t outstanding = 0;
    SimTime lastDone = 0;
    /** Non-null when this query was sampled for tracing. */
    obs::QueryTrace *trace = nullptr;
    /** Root span context of the sampled query (zero when untraced). */
    obs::TraceContext root;
};

// Interned once at static-init time; trace records carry the ids.
const obs::NameId kQueryName = obs::internSpanName("query");
const obs::NameId kMonoQueueName = obs::internSpanName("mono/queue");
const obs::NameId kMonoServiceName =
    obs::internSpanName("mono/service");
const obs::NameId kDenseQueueName = obs::internSpanName("dense/queue");
const obs::NameId kDenseComputeName =
    obs::internSpanName("dense/compute");

/** Child slots under the root query span. Sparse deployment k owns
 *  the (2 + 2k, 3 + 2k) request/response pair, so every traced query
 *  of one plan produces the same structural span ids. */
constexpr unsigned kMonoQueueSlot = 0;
constexpr unsigned kMonoServiceSlot = 1;
constexpr unsigned kDenseQueueSlot = 0;
constexpr unsigned kDenseComputeSlot = 1;

constexpr unsigned
sparseRequestSlot(unsigned ordinal)
{
    return 2 + 2 * ordinal;
}

constexpr unsigned
sparseResponseSlot(unsigned ordinal)
{
    return 3 + 2 * ordinal;
}

/** Record one causal span: the context's structural id fixes its
 *  position in the trace's span tree. */
void
addCtxSpan(obs::QueryTrace *trace, const obs::TraceContext &ctx,
           obs::NameId name, SimTime start, SimTime end)
{
    trace->addSpan(name, start, end, ctx.spanId,
                   obs::parentSpanId(ctx.spanId));
}

obs::Labels
podLabels(const std::string &deployment, std::uint64_t pod_id)
{
    return {{"deployment", deployment},
            {"pod", "pod-" + std::to_string(pod_id)}};
}

} // namespace

ClusterSimulation::ClusterSimulation(core::DeploymentPlan plan,
                                     hw::NodeSpec node,
                                     workload::TrafficPattern traffic,
                                     SimOptions options)
    : plan_(std::move(plan)), node_(std::move(node)),
      traffic_(std::move(traffic)), options_(options),
      rng_(options.seed), arrivals_(traffic_, options.seed ^ 0xA551),
      channel_(hw::NetworkLink(node_)),
      scheduler_(node_),
      obs_(options.observability ? options.observability
                                 : std::make_shared<obs::Registry>()),
      tracer_(options.traceSampleEvery),
      slo_([this](const obs::SloSignal &signal, SimTime now) {
          return readSloSignal(signal, now);
      })
{
    ERC_CHECK(!plan_.shards.empty(), "deployment plan has no shards");
    metrics_.bindObservability(obs_.get());
    obsArrivals_ = &obs_->counter("erec_arrivals_total",
                                  "Queries arrived at the frontend.");
    const double initial_qps = traffic_.qpsAt(0);

    unsigned sparseCount = 0;
    for (const auto &spec : plan_.shards) {
        DeploymentState ds;
        const std::uint32_t initial =
            options_.warmStart
                ? core::DeploymentPlan::replicasForTarget(spec,
                                                          initial_qps)
                : 1;
        ds.deployment =
            std::make_unique<cluster::Deployment>(spec, initial);

        cluster::HpaPolicy policy;
        policy.syncPeriod = options_.hpaSyncPeriod;
        policy.stabilizationWindow = options_.hpaStabilization;
        if (spec.kind == core::ShardKind::SparseEmbedding) {
            policy.metric = cluster::HpaMetric::QpsPerReplica;
            policy.target =
                spec.qpsPerReplica * options_.sparseUtilizationTarget;
        } else {
            policy.metric = cluster::HpaMetric::TailLatency;
            policy.target = static_cast<double>(options_.sla) *
                            options_.denseLatencyTargetFraction;
        }
        ds.hpa = std::make_unique<cluster::Hpa>(policy);
        ds.hpa->bindObservability(obs_.get(), spec.name);

        const obs::Labels labels = {{"deployment", spec.name}};
        ds.obsColdStarts = &obs_->counter(
            "erec_cold_starts_total",
            "Pods started cold (container boot + parameter load).",
            labels);
        ds.obsQueueDepth = &obs_->gauge(
            "erec_queue_depth",
            "Requests pending or in flight across the deployment.",
            labels);
        ds.obsUtilization = &obs_->gauge(
            "erec_utilization",
            "Fraction of ready-replica service capacity busy over the "
            "last sample interval.",
            labels);
        ds.obsReady = &obs_->gauge(
            "erec_ready_replicas", "Pods in the Ready state.", labels);
        ds.obsDesired = &obs_->gauge(
            "erec_desired_replicas",
            "Replica count the controller is converging toward.",
            labels);

        ds.balancer = std::make_unique<cluster::LoadBalancer>(
            options_.lbPolicy,
            options_.seed ^ std::hash<std::string>{}(spec.name));

        if (spec.kind == core::ShardKind::SparseEmbedding) {
            ds.nameRpcRequest =
                obs::internSpanName("rpc/" + spec.name + "/request");
            ds.nameRpcResponse =
                obs::internSpanName("rpc/" + spec.name + "/response");
            ds.nameSparseQueue =
                obs::internSpanName("sparse/" + spec.name + "/queue");
            ds.nameSparseService =
                obs::internSpanName("sparse/" + spec.name + "/service");
            ds.sparseOrdinal = sparseCount++;
            rpc::GatherRequest req;
            req.numIndices = static_cast<std::uint32_t>(
                std::ceil(spec.expectedGathers));
            req.numOffsets = plan_.config.batchSize;
            rpc::GatherResponse resp;
            resp.batch = plan_.config.batchSize;
            resp.dim = plan_.config.embeddingDim;
            ds.requestBytes = req.wireBytes();
            ds.responseBytes = resp.wireBytes();
        }

        if (spec.kind == core::ShardKind::Dense ||
            spec.kind == core::ShardKind::Monolithic) {
            ERC_CHECK(frontendName_.empty(),
                      "plan has more than one frontend shard");
            frontendName_ = spec.name;
        }
        deploymentOrder_.push_back(spec.name);
        deployments_.emplace(spec.name, std::move(ds));
    }
    ERC_CHECK(!frontendName_.empty(), "plan has no frontend shard");

    // Default SLO rules: mirror the control loop's own targets so a
    // run's verdict is "did the autoscaler hold the line".
    {
        obs::AlertRule p95;
        p95.name = "frontend-p95";
        p95.signal = {obs::SignalKind::P95, frontendName_};
        p95.threshold = units::toMillis(options_.sla) *
                        options_.denseLatencyTargetFraction;
        p95.holdFor = 5 * units::kSecond;
        slo_.addRule(std::move(p95));

        obs::AlertRule ratio;
        ratio.name = "sla-violation-ratio";
        ratio.signal = {obs::SignalKind::ViolationRatio, frontendName_};
        ratio.threshold = 0.01;
        slo_.addRule(std::move(ratio));

        obs::AlertRule lost;
        lost.name = "lost-queries";
        lost.signal = {obs::SignalKind::LostQueries, ""};
        slo_.addRule(std::move(lost));
    }
    slo_.bindObservability(obs_.get());
}

double
ClusterSimulation::readSloSignal(const obs::SloSignal &signal, SimTime now)
{
    switch (signal.kind) {
      case obs::SignalKind::P95:
        return units::toMillis(
            metrics_.latencyQuantile(signal.target, now, 0.95));
      case obs::SignalKind::ViolationRatio: {
        const std::uint64_t done = metrics_.completions(signal.target);
        if (done == 0)
            return 0.0;
        return static_cast<double>(
                   metrics_.slaViolations(signal.target)) /
               static_cast<double>(done);
      }
      case obs::SignalKind::Qps:
        return metrics_.qps(signal.target, now);
      case obs::SignalKind::GaugeValue:
        return metrics_.gauge(signal.target);
      case obs::SignalKind::LostQueries:
        return static_cast<double>(lostQueries_);
    }
    return 0.0;
}

ClusterSimulation::DeploymentState &
ClusterSimulation::state(const std::string &name)
{
    auto it = deployments_.find(name);
    ERC_ASSERT(it != deployments_.end(),
               "unknown deployment " << name);
    return it->second;
}

void
ClusterSimulation::setFixedReplicas(const std::string &deployment,
                                    std::uint32_t replicas)
{
    auto &ds = state(deployment);
    ds.deployment->setDesiredReplicas(replicas);
    ds.fixed = true;
}

void
ClusterSimulation::injectPodFailure(const std::string &deployment,
                                    SimTime t, std::uint32_t count)
{
    state(deployment); // validate the name early
    plannedFailures_.push_back({deployment, t, count});
}

std::uint32_t
ClusterSimulation::readyReplicas(const DeploymentState &ds) const
{
    std::uint32_t n = 0;
    for (const auto &p : ds.pods)
        if (p->state() == PodState::Ready)
            ++n;
    return n;
}

Bytes
ClusterSimulation::liveMemory() const
{
    Bytes total = 0;
    for (const auto &[name, ds] : deployments_)
        total += Bytes{ds.pods.size()} * ds.deployment->spec().memBytes;
    return total;
}

std::uint32_t
ClusterSimulation::liveNodes() const
{
    std::vector<cluster::PodRequest> pods;
    for (const auto &[name, ds] : deployments_) {
        const auto req = ds.deployment->request();
        for (std::size_t i = 0; i < ds.pods.size(); ++i)
            pods.push_back({name, req});
    }
    return scheduler_.pack(pods).numNodes();
}

double
ClusterSimulation::jitter()
{
    if (options_.serviceJitterSigma <= 0)
        return 1.0;
    return std::exp(rng_.normal(0.0, options_.serviceJitterSigma));
}

void
ClusterSimulation::addPod(DeploymentState &ds, bool instant)
{
    const auto &spec = ds.deployment->spec();
    auto pod = std::make_unique<Pod>(nextPodId_++, spec.stageLatencies);
    Pod *raw = pod.get();
    ds.pods.push_back(std::move(pod));
    if (instant) {
        raw->markReady();
        return;
    }
    ds.obsColdStarts->inc();
    // Cold start: container scheduling plus loading this shard's
    // parameters into memory.
    const SimTime load = units::fromSeconds(
        static_cast<double>(spec.memBytes) /
        options_.modelLoadBandwidth);
    queue_.scheduleAfter(
        options_.podStartBase + load, [this, &ds, raw]() {
            // The pod may have been terminated while starting.
            if (raw->state() != PodState::Starting)
                return;
            raw->markReady();
            // Drain any requests that queued while no pod was ready.
            while (!ds.pending.empty()) {
                WorkItem item = std::move(ds.pending.front());
                ds.pending.pop_front();
                dispatch(ds, std::move(item));
            }
        });
}

void
ClusterSimulation::removePod(DeploymentState &ds)
{
    // Prefer terminating a pod that is still starting, else the ready
    // pod with the least in-flight work.
    Pod *victim = nullptr;
    for (const auto &p : ds.pods) {
        if (p->state() == PodState::Starting) {
            victim = p.get();
            break;
        }
    }
    if (victim == nullptr) {
        for (const auto &p : ds.pods) {
            if (p->state() != PodState::Ready)
                continue;
            if (victim == nullptr ||
                p->inFlight() < victim->inFlight())
                victim = p.get();
        }
    }
    if (victim == nullptr)
        return; // Nothing removable (all already terminating).

    victim->markTerminating();
    for (auto &item : victim->stealQueued())
        dispatch(ds, std::move(item));
    reapDrained(ds);
}

void
ClusterSimulation::reapDrained(DeploymentState &ds)
{
    std::erase_if(ds.pods, [this, &ds](const std::unique_ptr<Pod> &p) {
        if (!p->removable())
            return false;
        lostQueries_ += p->lostItems();
        // Keep the utilization accounting and the export clean: carry
        // the dead pod's busy time, drop its per-pod gauge.
        ds.reapedBusy += p->busyTime();
        obs_->remove("erec_pod_queue_depth",
                     podLabels(ds.deployment->name(), p->id()));
        return true;
    });
}

void
ClusterSimulation::dispatch(DeploymentState &ds, WorkItem item)
{
    // Route across ready replicas with the configured policy
    // (Linkerd's default is power-of-two-choices).
    std::vector<cluster::LbCandidate> candidates;
    candidates.reserve(ds.pods.size());
    for (std::uint32_t i = 0; i < ds.pods.size(); ++i) {
        if (ds.pods[i]->state() == PodState::Ready)
            candidates.push_back({i, ds.pods[i]->inFlight()});
    }
    if (candidates.empty()) {
        ds.pending.push_back(std::move(item));
        return;
    }
    const auto chosen = ds.balancer->pick(candidates);
    ds.pods[chosen]->submit(queue_, std::move(item));
}

void
ClusterSimulation::startQuery()
{
    auto &fe = state(frontendName_);
    const SimTime arrival = queue_.now();
    const bool monolithic =
        fe.deployment->spec().kind == core::ShardKind::Monolithic;

    // Deterministic sampling: no RNG draw, no extra events, so traced
    // and untraced runs play out identically.
    obs::QueryTrace *trace = tracer_.maybeSample(arrival);

    const obs::TraceContext root =
        trace != nullptr
            ? obs::TraceContext{trace->traceId, obs::kRootSpanId}
            : obs::TraceContext{};

    if (monolithic) {
        WorkItem item;
        item.jitter = jitter();
        std::shared_ptr<SimTime> svc_start;
        if (trace != nullptr) {
            item.trace = root;
            svc_start = std::make_shared<SimTime>(arrival);
            item.onStart = [trace, root, arrival,
                            svc_start](SimTime start) {
                *svc_start = start;
                addCtxSpan(trace, root.child(kMonoQueueSlot),
                           kMonoQueueName, arrival, start);
            };
        }
        item.onDone = [this, arrival, trace, root,
                       svc_start](SimTime done) {
            const SimTime latency = done - arrival;
            metrics_.recordCompletion(frontendName_, done, latency);
            latencyAll_.add(units::toMillis(latency));
            ++result_.completed;
            if (latency > options_.sla) {
                metrics_.recordSlaViolation(frontendName_);
                ++result_.slaViolations;
            }
            if (trace != nullptr) {
                addCtxSpan(trace, root.child(kMonoServiceSlot),
                           kMonoServiceName, *svc_start, done);
                addCtxSpan(trace, root, kQueryName, arrival, done);
                tracer_.finish(trace, done);
            }
        };
        dispatch(fe, std::move(item));
        return;
    }

    // ElasticRec: the dense shard computes its MLP while the gather
    // RPCs fan out to every sparse shard; the query completes when the
    // dense compute and the slowest shard round trip have both
    // finished.
    auto ctx = std::make_shared<QueryCtx>();
    ctx->arrival = arrival;
    ctx->trace = trace;
    ctx->root = root;
    ctx->outstanding = 1; // dense leg
    for (const auto &name : deploymentOrder_) {
        const auto &ds = deployments_.at(name);
        if (ds.deployment->spec().kind ==
            core::ShardKind::SparseEmbedding)
            ++ctx->outstanding;
    }

    auto component_done = [this, ctx](SimTime done) {
        ctx->lastDone = std::max(ctx->lastDone, done);
        if (--ctx->outstanding > 0)
            return;
        const SimTime latency = ctx->lastDone - ctx->arrival;
        metrics_.recordCompletion(frontendName_, ctx->lastDone, latency);
        latencyAll_.add(units::toMillis(latency));
        ++result_.completed;
        if (latency > options_.sla) {
            metrics_.recordSlaViolation(frontendName_);
            ++result_.slaViolations;
        }
        if (ctx->trace != nullptr) {
            addCtxSpan(ctx->trace, ctx->root, kQueryName, ctx->arrival,
                       ctx->lastDone);
            tracer_.finish(ctx->trace, ctx->lastDone);
        }
    };

    // Dense leg: overlaps the bottom-MLP compute with the gathers.
    {
        WorkItem item;
        item.jitter = jitter();
        if (ctx->trace != nullptr) {
            item.trace = root.child(kDenseComputeSlot);
            auto svc_start = std::make_shared<SimTime>(arrival);
            item.onStart = [ctx, arrival, svc_start](SimTime start) {
                *svc_start = start;
                addCtxSpan(ctx->trace,
                           ctx->root.child(kDenseQueueSlot),
                           kDenseQueueName, arrival, start);
            };
            item.onDone = [ctx, svc_start,
                           component_done](SimTime done) {
                addCtxSpan(ctx->trace,
                           ctx->root.child(kDenseComputeSlot),
                           kDenseComputeName, *svc_start, done);
                component_done(done);
            };
        } else {
            item.onDone = component_done;
        }
        dispatch(fe, std::move(item));
    }

    // Sparse legs: request network delay, shard service, response
    // network delay.
    for (const auto &name : deploymentOrder_) {
        auto &ds = state(name);
        if (ds.deployment->spec().kind !=
            core::ShardKind::SparseEmbedding)
            continue;
        const SimTime out = channel_.oneWay(ds.requestBytes);
        const SimTime back = channel_.oneWay(ds.responseBytes);
        queue_.scheduleAfter(out, [this, &ds, back, component_done,
                                   ctx]() {
            const SimTime rpc_arrive = queue_.now();
            WorkItem item;
            item.jitter = jitter();
            std::shared_ptr<SimTime> svc_start;
            // The RPC leg's context rides on the work item exactly as
            // the functional stack propagates it in the GatherRequest
            // header; shard-side spans hang under the request span.
            const obs::TraceContext rpc =
                ctx->root.child(sparseRequestSlot(ds.sparseOrdinal));
            if (ctx->trace != nullptr) {
                item.trace = rpc;
                svc_start = std::make_shared<SimTime>(rpc_arrive);
                addCtxSpan(ctx->trace, rpc, ds.nameRpcRequest,
                           ctx->arrival, rpc_arrive);
                item.onStart = [ctx, &ds, rpc, rpc_arrive,
                                svc_start](SimTime start) {
                    *svc_start = start;
                    addCtxSpan(ctx->trace, rpc.child(0),
                               ds.nameSparseQueue, rpc_arrive, start);
                };
            }
            item.onDone = [this, &ds, back, component_done, ctx, rpc,
                           svc_start](SimTime done) {
                metrics_.recordCompletion(ds.deployment->name(), done,
                                          0);
                if (ctx->trace != nullptr) {
                    addCtxSpan(ctx->trace, rpc.child(1),
                               ds.nameSparseService, *svc_start, done);
                    addCtxSpan(
                        ctx->trace,
                        ctx->root.child(
                            sparseResponseSlot(ds.sparseOrdinal)),
                        ds.nameRpcResponse, done, done + back);
                }
                reapDrained(ds);
                queue_.schedule(done + back,
                                [component_done, done, back]() {
                                    component_done(done + back);
                                });
            };
            dispatch(ds, std::move(item));
        });
    }
}

void
ClusterSimulation::scheduleNextArrival()
{
    const SimTime next = arrivals_.nextAfter(queue_.now());
    if (next > endTime_)
        return;
    queue_.schedule(next, [this]() {
        ++result_.arrivals;
        obsArrivals_->inc();
        startQuery();
        scheduleNextArrival();
    });
}

void
ClusterSimulation::hpaTick()
{
    if (options_.autoscale) {
        for (const auto &name : deploymentOrder_) {
            auto &ds = state(name);
            if (ds.fixed)
                continue;
            const std::uint32_t ready = readyReplicas(ds);
            if (ready == 0)
                continue;
            const auto &spec = ds.deployment->spec();
            double measured = 0.0;
            if (spec.kind == core::ShardKind::SparseEmbedding) {
                measured = metrics_.qps(name, queue_.now()) /
                           static_cast<double>(ready);
            } else {
                measured = static_cast<double>(metrics_.latencyQuantile(
                    frontendName_, queue_.now(), 0.95));
            }
            const std::uint32_t desired =
                ds.hpa->reconcile(queue_.now(), ready, measured);
            ds.deployment->setDesiredReplicas(desired);
        }
    }

    // Reconcile pod counts toward desired (fixed deployments too).
    for (const auto &name : deploymentOrder_) {
        auto &ds = state(name);
        reapDrained(ds);
        std::uint32_t live = 0;
        for (const auto &p : ds.pods)
            if (p->state() == PodState::Ready ||
                p->state() == PodState::Starting)
                ++live;
        const std::uint32_t desired = ds.deployment->desiredReplicas();
        while (live < desired) {
            addPod(ds, false);
            ++live;
        }
        while (live > desired) {
            removePod(ds);
            --live;
        }
    }

    if (queue_.now() + options_.hpaSyncPeriod <= endTime_)
        queue_.scheduleAfter(options_.hpaSyncPeriod,
                             [this]() { hpaTick(); });
}

void
ClusterSimulation::sampleTick(SimTime end)
{
    const SimTime now = queue_.now();
    result_.targetQps.add(now, traffic_.qpsAt(now));
    result_.achievedQps.add(now, metrics_.qps(frontendName_, now));
    const Bytes mem = liveMemory();
    result_.memoryGiB.add(now, units::toGiB(mem));
    result_.peakMemory = std::max(result_.peakMemory, mem);
    result_.p95LatencyMs.add(
        now, units::toMillis(metrics_.latencyQuantile(frontendName_,
                                                      now, 0.95)));
    std::uint32_t ready = 0;
    for (const auto &[name, ds] : deployments_)
        ready += readyReplicas(ds);
    result_.readyReplicas.add(now, ready);
    const std::uint32_t nodes = liveNodes();
    result_.nodesInUse.add(now, nodes);
    result_.peakNodes = std::max(result_.peakNodes, nodes);

    // Publish per-deployment (and per-pod) gauges for the export.
    for (auto &[name, ds] : deployments_) {
        std::uint32_t depth =
            static_cast<std::uint32_t>(ds.pending.size());
        SimTime busy = ds.reapedBusy;
        std::uint32_t dep_ready = 0;
        for (const auto &p : ds.pods) {
            depth += p->inFlight();
            busy += p->busyTime();
            if (p->state() == PodState::Ready) {
                ++dep_ready;
                obs_->gauge("erec_pod_queue_depth",
                            "Requests queued or in service at one pod.",
                            podLabels(name, p->id()))
                    .set(p->inFlight());
            }
        }
        ds.obsQueueDepth->set(depth);
        ds.obsReady->set(dep_ready);
        ds.obsDesired->set(ds.deployment->desiredReplicas());
        const auto stages = static_cast<double>(
            ds.deployment->spec().stageLatencies.size());
        const double capacity =
            static_cast<double>(options_.sampleInterval) *
            static_cast<double>(dep_ready) * stages;
        const double util =
            capacity > 0
                ? static_cast<double>(busy - ds.lastBusySample) /
                      capacity
                : 0.0;
        ds.obsUtilization->set(util);
        ds.lastBusySample = busy;
    }

    slo_.evaluate(now);

    if (now + options_.sampleInterval <= end)
        queue_.scheduleAfter(options_.sampleInterval,
                             [this, end]() { sampleTick(end); });
}

SimResult
ClusterSimulation::run(SimTime duration)
{
    ERC_CHECK(duration > 0, "simulation duration must be positive");
    result_ = SimResult{};
    latencyAll_.reset();
    lostQueries_ = 0;
    endTime_ = duration;
    tracer_.reset();
    slo_.reset();

    // Baseline the scale-event counters so result_ reports only this
    // run's events even when the simulation object is reused.
    std::map<std::string, std::uint64_t> scaleBaseline;
    for (const auto &name : deploymentOrder_) {
        const auto &hpa = *state(name).hpa;
        scaleBaseline[name] =
            hpa.scaleUpEvents() + hpa.scaleDownEvents();
    }

    // Instantiate the initial replica set, ready at t = 0.
    for (const auto &name : deploymentOrder_) {
        auto &ds = state(name);
        while (ds.pods.size() < ds.deployment->desiredReplicas())
            addPod(ds, true);
    }

    for (const auto &failure : plannedFailures_) {
        queue_.schedule(failure.time, [this, failure]() {
            auto &ds = state(failure.deployment);
            for (std::uint32_t k = 0; k < failure.count; ++k) {
                // Crash the most-loaded ready pod (worst case).
                Pod *victim = nullptr;
                for (const auto &p : ds.pods) {
                    if (p->state() != PodState::Ready)
                        continue;
                    if (victim == nullptr ||
                        p->inFlight() > victim->inFlight())
                        victim = p.get();
                }
                if (victim == nullptr)
                    break;
                for (auto &item : victim->crash())
                    dispatch(ds, std::move(item));
                reapDrained(ds);
            }
        });
    }

    scheduleNextArrival();
    queue_.scheduleAfter(options_.hpaSyncPeriod,
                         [this]() { hpaTick(); });
    sampleTick(duration);
    queue_.runUntil(duration);

    result_.meanLatencyMs = latencyAll_.mean();
    result_.p95LatencyOverallMs = latencyAll_.p95();
    for (const auto &name : deploymentOrder_) {
        auto &ds = state(name);
        for (const auto &p : ds.pods)
            lostQueries_ += p->lostItems();
        result_.finalReplicas[name] =
            static_cast<std::uint32_t>(ds.pods.size());
        const std::uint64_t events = ds.hpa->scaleUpEvents() +
                                     ds.hpa->scaleDownEvents() -
                                     scaleBaseline[name];
        result_.scaleEventsByDeployment[name] = events;
        result_.scaleEvents += events;
    }
    obs_->gauge("erec_lost_queries",
                "Queries whose in-flight work died with a crashed pod.")
        .set(static_cast<double>(lostQueries_));
    return result_;
}

} // namespace erec::sim
