#include "elasticrec/sim/event_queue.h"

#include <algorithm>
#include <limits>

#include "elasticrec/common/error.h"

namespace erec::sim {

void
EventQueue::schedule(SimTime t, EventType type, std::uint64_t a,
                     std::uint64_t b)
{
    ERC_CHECK(t >= now_, "cannot schedule an event in the past (t="
                             << t << ", now=" << now_ << ")");
    // ERC_HOT_PATH_ALLOW("amortized heap growth: the backing vector doubles cold and is recycled for the rest of the run; AllocGate pins the steady state at zero")
    heap_.push_back(EventRecord{t, nextSeq_++, a, b, type});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void
EventQueue::scheduleAfter(SimTime delay, EventType type, std::uint64_t a,
                          std::uint64_t b)
{
    ERC_CHECK(delay >= 0, "delay must be non-negative (delay=" << delay
                                                              << ")");
    ERC_CHECK(delay <= std::numeric_limits<SimTime>::max() - now_,
              "delay overflows the simulation clock (now="
                  << now_ << ", delay=" << delay << ")");
    schedule(now_ + delay, type, a, b);
}

EventRecord
EventQueue::popTop()
{
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const EventRecord ev = heap_.back();
    heap_.pop_back();
    now_ = ev.time;
    ++executed_;
    return ev;
}

bool
EventQueue::runOne(EventSink &sink)
{
    if (heap_.empty())
        return false;
    const EventRecord ev = popTop();
    sink.onEvent(ev);
    return true;
}

void
EventQueue::runUntil(SimTime end, EventSink &sink)
{
    while (!heap_.empty() && heap_.front().time <= end) {
        const EventRecord ev = popTop();
        sink.onEvent(ev);
    }
    if (now_ < end)
        now_ = end;
}

} // namespace erec::sim
