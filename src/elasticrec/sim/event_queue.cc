#include "elasticrec/sim/event_queue.h"

#include "elasticrec/common/error.h"

namespace erec::sim {

void
EventQueue::schedule(SimTime t, Action action)
{
    ERC_CHECK(t >= now_, "cannot schedule an event in the past (t="
                             << t << ", now=" << now_ << ")");
    ERC_CHECK(action != nullptr, "null event action");
    events_.push(Event{t, nextSeq_++, std::move(action)});
}

void
EventQueue::scheduleAfter(SimTime delay, Action action)
{
    ERC_CHECK(delay >= 0, "delay must be non-negative");
    schedule(now_ + delay, std::move(action));
}

bool
EventQueue::runOne()
{
    if (events_.empty())
        return false;
    // priority_queue::top returns const&; move out via const_cast is
    // unsafe with heap invariants, so copy the action handle instead.
    Event ev = events_.top();
    events_.pop();
    now_ = ev.time;
    ++executed_;
    ev.action();
    return true;
}

void
EventQueue::runUntil(SimTime end)
{
    while (!events_.empty() && events_.top().time <= end)
        runOne();
    if (now_ < end)
        now_ = end;
}

} // namespace erec::sim
