#pragma once

/**
 * @file
 * Simulated pod: one replica of a shard container.
 *
 * A pod is a chain of service stages (dense and sparse shards have one
 * stage; the monolithic baseline has a dense stage and a sparse stage
 * that pipeline across queries). Each stage serves one request at a
 * time from a FIFO queue, so a pod's sustained throughput is set by its
 * slowest stage while its processing latency is the sum of stage
 * latencies — exactly the premise of the paper's Figure 4.
 *
 * Lifecycle: Starting (container scheduled, model parameters loading)
 * -> Ready (serving) -> Terminating (draining) -> removed. Memory is
 * held from Starting until removal, which is what makes the baseline's
 * slow, heavyweight scale-out visible in Figure 19.
 *
 * Completion is static dispatch, not captured closures: a stage finish
 * is a kStageDone event (payload = this pod + stage index) whose
 * handler calls stageDone(), and queue-exit/completion/loss are
 * reported through the PodSink interface. WorkItems are POD and ride
 * through Ring queues by value, so the steady path never allocates.
 */

#include <cstdint>
#include <type_traits>
#include <vector>

#include "elasticrec/common/ring.h"
#include "elasticrec/obs/trace_context.h"
#include "elasticrec/sim/event_queue.h"

namespace erec::sim {

enum class PodState
{
    Starting,
    Ready,
    Terminating,
    Crashed,
};

/** What a work item is a leg of; the sink switches on this. */
enum class WorkKind : std::uint8_t
{
    None = 0,
    /** Whole query on a monolithic pod. */
    Mono,
    /** Dense (bottom-MLP) leg of an ElasticRec query. */
    DenseLeg,
    /** One sparse shard's gather leg of an ElasticRec query. */
    SparseLeg,
};

/** Work submitted to a pod. POD: items are copied through stage rings
 *  and event payloads; all context is plain data. */
struct WorkItem
{
    /** Multiplicative service-time jitter (1.0 = nominal). */
    double jitter = 1.0;
    /** Causal trace context this item runs under; zero for untraced
     *  work. Pods don't record spans themselves — the context rides
     *  along so the sink can scope what it records, exactly like the
     *  RPC-header propagation in the functional stack. */
    obs::TraceContext trace = {};
    /** Queue-entry reference time (query arrival for frontend legs,
     *  RPC arrival for sparse legs); anchors the sink's queue spans. */
    SimTime t0 = 0;
    /** First-stage service start, written by the pod at queue exit;
     *  anchors the sink's service spans. */
    SimTime svcStart = 0;
    /** Owning query's arena slot. */
    std::uint32_t ctx = 0;
    /** Deployment ordinal (plan order) this item targets. */
    std::uint16_t dep = 0;
    WorkKind kind = WorkKind::None;
};
static_assert(std::is_trivially_copyable_v<WorkItem>,
              "work items must stay POD: they are queued by value and "
              "carried through event payloads");

/**
 * Receiver of pod-side work lifecycle notifications. One implementor
 * (the cluster simulation) handles every pod; item.kind/ctx/dep say
 * what completed.
 */
class PodSink
{
  public:
    /** First stage started serving the item (queue exit). */
    virtual void workStarted(const WorkItem &item, SimTime start) = 0;
    /** Last stage completed the item. */
    virtual void workDone(const WorkItem &item, SimTime done) = 0;
    /** The item died with a crashed pod (never completes). */
    virtual void workLost(const WorkItem &item) = 0;

  protected:
    ~PodSink() = default;
};

class Pod
{
  public:
    /**
     * @param id Unique pod id.
     * @param stage_latencies Nominal per-stage service times.
     */
    Pod(std::uint64_t id, std::vector<SimTime> stage_latencies);

    std::uint64_t id() const { return id_; }
    PodState state() const { return state_; }

    void markReady() { state_ = PodState::Ready; }
    void markTerminating() { state_ = PodState::Terminating; }

    /**
     * Crash the pod (failure injection). Work queued at the first
     * stage is returned for re-dispatch; work deeper in the pipeline
     * is lost immediately (reported via sink.workLost), and work in
     * service is lost when its pending stage event fires.
     */
    std::vector<WorkItem> crash(PodSink &sink);

    /** Items lost to a crash so far. */
    std::uint64_t lostItems() const { return lost_; }

    /** Requests queued or in service. */
    std::uint32_t inFlight() const { return inFlight_; }

    /** True once a terminating pod has fully drained. */
    bool drained() const
    {
        return state_ == PodState::Terminating && inFlight_ == 0;
    }

    /** True when the pod can be destroyed (drained or crash-settled:
     *  every outstanding service event has fired). A removable pod has
     *  no pending kStageDone events, so destroying it cannot leave a
     *  dangling pod pointer in the event heap. */
    bool removable() const;

    /** Submit one request; the pod must be Ready. */
    ERC_HOT_PATH
    void submit(EventQueue &queue, PodSink &sink, const WorkItem &item);

    /**
     * Handle a kStageDone event for this pod: the given stage's
     * in-service item finished. Advances it to the next stage, or
     * reports completion/loss through the sink.
     */
    ERC_HOT_PATH
    void stageDone(EventQueue &queue, PodSink &sink,
                   std::size_t stage_idx);

    /**
     * Remove not-yet-started work from the first stage (used when the
     * pod terminates); returns the removed items.
     */
    std::vector<WorkItem> stealQueued();

    /** Total requests fully served by this pod. */
    std::uint64_t served() const { return served_; }

    /** Cumulative busy time across all stages (service time booked at
     *  service start). Feeds the exported utilization gauge. */
    SimTime busyTime() const { return busyTime_; }

  private:
    struct Stage
    {
        SimTime nominal = 0;
        bool busy = false;
        Ring<WorkItem> queue;
        /** The item being served while busy; the pending kStageDone
         *  event refers to it implicitly. */
        WorkItem inService = {};
    };

    ERC_HOT_PATH
    void tryStart(EventQueue &queue, PodSink &sink,
                  std::size_t stage_idx);

    std::uint64_t id_;
    PodState state_ = PodState::Starting;
    std::vector<Stage> stages_;
    std::uint32_t inFlight_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t lost_ = 0;
    SimTime busyTime_ = 0;
};

} // namespace erec::sim
