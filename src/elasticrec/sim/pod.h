#pragma once

/**
 * @file
 * Simulated pod: one replica of a shard container.
 *
 * A pod is a chain of service stages (dense and sparse shards have one
 * stage; the monolithic baseline has a dense stage and a sparse stage
 * that pipeline across queries). Each stage serves one request at a
 * time from a FIFO queue, so a pod's sustained throughput is set by its
 * slowest stage while its processing latency is the sum of stage
 * latencies — exactly the premise of the paper's Figure 4.
 *
 * Lifecycle: Starting (container scheduled, model parameters loading)
 * -> Ready (serving) -> Terminating (draining) -> removed. Memory is
 * held from Starting until removal, which is what makes the baseline's
 * slow, heavyweight scale-out visible in Figure 19.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "elasticrec/obs/trace_context.h"
#include "elasticrec/sim/event_queue.h"

namespace erec::sim {

enum class PodState
{
    Starting,
    Ready,
    Terminating,
    Crashed,
};

/** Work submitted to a pod. */
struct WorkItem
{
    /** Multiplicative service-time jitter (1.0 = nominal). */
    double jitter = 1.0;
    /** Causal trace context this item runs under; zero for untraced
     *  work. Pods don't record spans themselves — the context rides
     *  along so dispatch callbacks can scope what they record, exactly
     *  like the RPC-header propagation in the functional stack. */
    obs::TraceContext trace = {};
    /** Invoked when the first stage starts serving (queue exit). Used
     *  by tracing to split queueing delay from service time; null for
     *  untraced work. */
    std::function<void(SimTime start)> onStart;
    /** Invoked when the last stage completes. */
    std::function<void(SimTime completion)> onDone;
};

class Pod
{
  public:
    /**
     * @param id Unique pod id.
     * @param stage_latencies Nominal per-stage service times.
     */
    Pod(std::uint64_t id, std::vector<SimTime> stage_latencies);

    std::uint64_t id() const { return id_; }
    PodState state() const { return state_; }

    void markReady() { state_ = PodState::Ready; }
    void markTerminating() { state_ = PodState::Terminating; }

    /**
     * Crash the pod (failure injection). Work queued at the first
     * stage is returned for re-dispatch; work deeper in the pipeline
     * or in service is lost (its completion callback never fires).
     */
    std::vector<WorkItem> crash();

    /** Items lost to a crash so far. */
    std::uint64_t lostItems() const { return lost_; }

    /** Requests queued or in service. */
    std::uint32_t inFlight() const { return inFlight_; }

    /** True once a terminating pod has fully drained. */
    bool drained() const
    {
        return state_ == PodState::Terminating && inFlight_ == 0;
    }

    /** True when the pod can be destroyed (drained or crash-settled:
     *  every outstanding service event has fired). */
    bool removable() const;

    /** Submit one request; the pod must be Ready. */
    void submit(EventQueue &queue, WorkItem item);

    /**
     * Remove not-yet-started work from the first stage (used when the
     * pod terminates); returns the removed items.
     */
    std::vector<WorkItem> stealQueued();

    /** Total requests fully served by this pod. */
    std::uint64_t served() const { return served_; }

    /** Cumulative busy time across all stages (service time booked at
     *  service start). Feeds the exported utilization gauge. */
    SimTime busyTime() const { return busyTime_; }

  private:
    struct Stage
    {
        SimTime nominal;
        bool busy = false;
        std::deque<WorkItem> queue;
    };

    void tryStart(EventQueue &queue, std::size_t stage_idx);

    std::uint64_t id_;
    PodState state_ = PodState::Starting;
    std::vector<Stage> stages_;
    std::uint32_t inFlight_ = 0;
    std::uint64_t served_ = 0;
    std::uint64_t lost_ = 0;
    SimTime busyTime_ = 0;
};

} // namespace erec::sim
