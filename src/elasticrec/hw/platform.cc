#include "elasticrec/hw/platform.h"

#include "elasticrec/common/error.h"

namespace erec::hw {

NodeSpec
cpuOnlyNode()
{
    NodeSpec node;
    node.name = "xeon6242-dual";
    node.cpu.name = "2x Xeon Gold 6242";
    node.cpu.logicalCores = 64;
    node.cpu.memCapacity = 384 * units::kGiB;
    node.cpu.memBandwidth = 256e9; // 2 sockets x 128 GB/s
    node.hasGpu = false;
    node.netBandwidth = 10e9 / 8.0; // 10 Gbps
    node.netBaseLatency = 100;
    node.costUnits = 1.0;
    return node;
}

NodeSpec
cpuGpuNode()
{
    NodeSpec node;
    node.name = "n1-standard-32-t4";
    node.cpu.name = "n1-standard-32";
    node.cpu.logicalCores = 32;
    node.cpu.memCapacity = 120 * units::kGiB;
    node.cpu.memBandwidth = 128e9;
    // The GKE cluster's 32 Gbps fabric and leaner dataplane make the
    // per-request microservice overhead lighter than the on-prem
    // CPU-only cluster's 10 Gbps + Linkerd path.
    node.cpu.sparseRpcOverheadUs = 2000.0;
    node.hasGpu = true;
    node.gpu.name = "Tesla T4";
    node.gpu.peakFlops = 8.1e12;
    node.gpu.hbmBandwidth = 320e9;
    node.gpu.hbmCapacity = 16 * units::kGiB;
    node.gpu.pcieBandwidth = 12e9;
    node.gpu.kernelOverheadUs = 4500.0;
    node.netBandwidth = 32e9 / 8.0; // 32 Gbps
    node.netBaseLatency = 60;
    // A GPU node is costlier than a CPU node; relative on-demand price
    // of n1-standard-32 + T4 vs a comparable CPU-only machine.
    node.costUnits = 1.6;
    return node;
}

NodeRegistry::NodeRegistry()
{
    nodes_["cpu"] = cpuOnlyNode();
    nodes_["cpu-gpu"] = cpuGpuNode();
}

NodeRegistry &
NodeRegistry::instance()
{
    static NodeRegistry registry;
    return registry;
}

void
NodeRegistry::registerNode(const std::string &name, const NodeSpec &spec)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    nodes_[name] = spec;
}

bool
NodeRegistry::hasNode(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return nodes_.count(name) > 0;
}

NodeSpec
NodeRegistry::nodeByName(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = nodes_.find(name);
    if (it == nodes_.end()) {
        std::string all;
        for (const auto &[n, spec] : nodes_)
            all += (all.empty() ? "" : ", ") + n;
        fatal("unknown platform '" + name + "'; registered names: " + all);
    }
    return it->second;
}

std::vector<std::string>
NodeRegistry::nodeNames() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(nodes_.size());
    for (const auto &[name, spec] : nodes_)
        names.push_back(name);
    return names;
}

NodeSpec
nodeByName(const std::string &name)
{
    return NodeRegistry::instance().nodeByName(name);
}

} // namespace erec::hw
