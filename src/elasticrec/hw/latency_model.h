#pragma once

/**
 * @file
 * Analytic (roofline-style) operator latency model.
 *
 * Dense MLP work is compute-bound: time = dispatch overhead +
 * FLOPs / (allocated cores x effective per-core throughput), or the GPU
 * equivalent with PCIe input transfer and kernel-launch overhead.
 *
 * Sparse embedding gathers are memory-bound: time = dispatch overhead +
 * per-gather software overhead (parallelized over allocated cores) +
 * gather traffic / the container's random-access bandwidth share.
 *
 * Containers receive a bandwidth share proportional to their core share
 * of the node, matching how cgroup cpu limits throttle achievable
 * memory parallelism in practice.
 */

#include <cstdint>

#include "elasticrec/common/units.h"
#include "elasticrec/hw/platform.h"

namespace erec::hw {

class LatencyModel
{
  public:
    explicit LatencyModel(NodeSpec node);

    const NodeSpec &node() const { return node_; }

    /**
     * Dense MLP + interaction latency on CPU.
     * @param flops Total FLOPs of the query's dense work.
     * @param cores Cores allocated to the container.
     */
    SimTime denseCpuTime(std::uint64_t flops, std::uint32_t cores) const;

    /**
     * Dense MLP + interaction latency on the node's GPU.
     * @param flops Total FLOPs of the query's dense work.
     * @param io_bytes Host-to-device input + device-to-host output
     *        bytes moved over PCIe for the query.
     */
    SimTime denseGpuTime(std::uint64_t flops, Bytes io_bytes) const;

    /**
     * Embedding gather + pool latency from CPU DRAM.
     * @param num_gathers Number of rows gathered.
     * @param row_bytes Bytes per embedding row.
     * @param cores Cores allocated to the container.
     */
    SimTime gatherCpuTime(std::size_t num_gathers, Bytes row_bytes,
                          std::uint32_t cores) const;

    /**
     * Embedding gather latency when rows are resident in GPU HBM (used
     * by the model-wise + GPU-cache baseline of Section VI-E).
     */
    SimTime gatherGpuTime(std::size_t num_gathers, Bytes row_bytes) const;

    /**
     * One table's embedding-layer latency with a GPU-side embedding
     * cache: `hit_rate` of the gathers are served by a fused HBM
     * lookup kernel, the rest fall back to the CPU gather path.
     */
    SimTime cachedGatherTime(std::size_t num_gathers, double hit_rate,
                             Bytes row_bytes, std::uint32_t cores) const;

    /** The container's random-access bandwidth share (bytes/sec). */
    double randomBandwidthShare(std::uint32_t cores) const;

  private:
    NodeSpec node_;
};

} // namespace erec::hw
