#include "elasticrec/hw/latency_model.h"

#include <algorithm>
#include <cmath>

#include "elasticrec/common/error.h"

namespace erec::hw {

namespace {

SimTime
secondsToTicks(double s)
{
    return static_cast<SimTime>(s * 1e6 + 0.5);
}

} // namespace

LatencyModel::LatencyModel(NodeSpec node) : node_(std::move(node))
{
    ERC_CHECK(node_.cpu.logicalCores > 0, "node needs CPU cores");
    ERC_CHECK(node_.cpu.effFlopsPerCore > 0 && node_.cpu.memBandwidth > 0,
              "CPU throughput parameters must be positive");
}

SimTime
LatencyModel::denseCpuTime(std::uint64_t flops, std::uint32_t cores) const
{
    ERC_CHECK(cores > 0, "container needs at least one core");
    const std::uint32_t effective =
        std::min(cores, node_.cpu.intraOpParallelism);
    const double compute_s =
        static_cast<double>(flops) /
        (static_cast<double>(effective) * node_.cpu.effFlopsPerCore);
    const double dispatch_s = node_.cpu.denseDispatchUs * 1e-6;
    return secondsToTicks(compute_s + dispatch_s);
}

SimTime
LatencyModel::denseGpuTime(std::uint64_t flops, Bytes io_bytes) const
{
    ERC_CHECK(node_.hasGpu, "node has no GPU");
    const double compute_s =
        static_cast<double>(flops) / node_.gpu.peakFlops;
    const double pcie_s =
        static_cast<double>(io_bytes) / node_.gpu.pcieBandwidth;
    const double overhead_s = node_.gpu.kernelOverheadUs * 1e-6;
    // PCIe transfers overlap poorly with tiny serving kernels; charge
    // them serially.
    return secondsToTicks(compute_s + pcie_s + overhead_s);
}

double
LatencyModel::randomBandwidthShare(std::uint32_t cores) const
{
    const double share = std::min(
        1.0, static_cast<double>(cores) /
                 static_cast<double>(node_.cpu.logicalCores));
    return node_.cpu.memBandwidth * node_.cpu.randomAccessEfficiency *
           share;
}

SimTime
LatencyModel::gatherCpuTime(std::size_t num_gathers, Bytes row_bytes,
                            std::uint32_t cores) const
{
    ERC_CHECK(cores > 0, "container needs at least one core");
    const double traffic_s =
        static_cast<double>(num_gathers * row_bytes) /
        randomBandwidthShare(cores);
    const double overhead_s = static_cast<double>(num_gathers) *
                              node_.cpu.perLookupOverheadNs * 1e-9 /
                              static_cast<double>(cores);
    const double dispatch_s = node_.cpu.sparseDispatchUs * 1e-6;
    return secondsToTicks(traffic_s + overhead_s + dispatch_s);
}

SimTime
LatencyModel::cachedGatherTime(std::size_t num_gathers, double hit_rate,
                               Bytes row_bytes,
                               std::uint32_t cores) const
{
    ERC_CHECK(node_.hasGpu, "embedding cache needs a GPU");
    ERC_CHECK(hit_rate >= 0.0 && hit_rate <= 1.0,
              "hit rate must be in [0, 1]");
    const auto hits = static_cast<std::size_t>(
        hit_rate * static_cast<double>(num_gathers));
    const std::size_t misses = num_gathers - hits;

    // Fused cache-probe kernel on HBM for the hits.
    const double hbm_s = static_cast<double>(hits * row_bytes) /
                         (node_.gpu.hbmBandwidth * 0.5);
    double total_s =
        node_.gpu.cacheLookupOverheadUs * 1e-6 + hbm_s;
    if (misses > 0) {
        // CPU fallback path shares the cached operator's dispatch, so
        // only the per-lookup and traffic terms are charged.
        const double miss_s =
            static_cast<double>(misses) *
                node_.cpu.perLookupOverheadNs * 1e-9 /
                static_cast<double>(cores) +
            static_cast<double>(misses * row_bytes) /
                randomBandwidthShare(cores);
        total_s += miss_s;
    }
    return secondsToTicks(total_s);
}

SimTime
LatencyModel::gatherGpuTime(std::size_t num_gathers, Bytes row_bytes) const
{
    ERC_CHECK(node_.hasGpu, "node has no GPU");
    // HBM gathers achieve a higher efficiency than CPU DRAM thanks to
    // massive memory-level parallelism.
    const double eff_bw = node_.gpu.hbmBandwidth * 0.5;
    const double traffic_s =
        static_cast<double>(num_gathers * row_bytes) / eff_bw;
    const double overhead_s = node_.gpu.kernelOverheadUs * 1e-6;
    return secondsToTicks(traffic_s + overhead_s);
}

} // namespace erec::hw
