#pragma once

/**
 * @file
 * Datacenter network link model: a fixed one-way base latency plus a
 * size-proportional serialization delay. Used by the RPC fabric to
 * charge inter-shard communication (the source of ElasticRec's reported
 * 31 ms / 60 ms added latency).
 */

#include "elasticrec/common/units.h"
#include "elasticrec/hw/platform.h"

namespace erec::hw {

class NetworkLink
{
  public:
    /**
     * @param bytes_per_sec Link bandwidth.
     * @param base_latency One-way propagation + switching latency.
     */
    NetworkLink(double bytes_per_sec, SimTime base_latency);

    /** Link derived from a node spec's NIC parameters. */
    explicit NetworkLink(const NodeSpec &node);

    /** One-way latency for a message of the given size. */
    SimTime transferTime(Bytes message_bytes) const;

    double bandwidth() const { return bytesPerSec_; }
    SimTime baseLatency() const { return baseLatency_; }

  private:
    double bytesPerSec_;
    SimTime baseLatency_;
};

} // namespace erec::hw
