#pragma once

/**
 * @file
 * Hardware platform descriptions.
 *
 * The paper evaluates two clusters (Section V-A):
 *  - CPU-only: dual-socket Intel Xeon Gold 6242 nodes (2 x 32 logical
 *    cores, 2 x 192 GB DRAM, 128 GB/s per socket), 10 Gbps network.
 *  - CPU-GPU: GKE n1-standard-32 nodes (32 vCPUs, 120 GB DRAM) with an
 *    NVIDIA Tesla T4 over PCIe, 32 Gbps network.
 *
 * Since the physical machines are unavailable, each spec also carries
 * *serving-efficiency* calibration constants (effective small-batch GEMM
 * throughput, per-gather software overhead, per-query dispatch cost)
 * that model a PyTorch/libtorch-style inference stack. Absolute numbers
 * are approximations; the evaluation relies on the relative behaviour
 * (compute-bound MLPs vs bandwidth-bound gathers), which these models
 * preserve.
 */

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "elasticrec/common/thread_annotations.h"
#include "elasticrec/common/units.h"

namespace erec::hw {

/** CPU complex of a node (all sockets combined). */
struct CpuSpec
{
    std::string name;
    /** Logical cores available to containers on the node. */
    std::uint32_t logicalCores = 64;
    /** DRAM capacity of the node. */
    Bytes memCapacity = 384 * units::kGiB;
    /** Aggregate DRAM bandwidth (bytes/sec). */
    double memBandwidth = 256e9;
    /**
     * Effective per-core fp32 throughput for small-batch inference
     * GEMMs (FLOPs/sec). Orders of magnitude below peak AVX-512
     * throughput: production serving runs tiny batches through an
     * interpreted framework (libtorch operator dispatch, memory-bound
     * activations), and the constant is calibrated so per-replica QPS
     * and the dense/sparse latency split land in the regime the
     * paper's Figures 3(b) and 5 report.
     */
    double effFlopsPerCore = 4e7;
    /**
     * Intra-op parallelism cap: one query's dense operators scale to
     * at most this many cores (framework thread-pool scaling
     * saturates well below a dual-socket node's 64 threads). Larger
     * containers run more queries, not faster ones.
     */
    std::uint32_t intraOpParallelism = 24;
    /** Fraction of peak bandwidth achieved by random row gathers. */
    double randomAccessEfficiency = 0.15;
    /**
     * Per-gather software overhead (framework lookup path: bounds
     * checks, pointer chasing, TLB/cache misses on a multi-GiB
     * table), ns; parallelized across the container's cores.
     */
    double perLookupOverheadNs = 8000.0;
    /** Per-query dense-layer dispatch overhead (framework), us. */
    double denseDispatchUs = 35000.0;
    /** Per-table gather-operator dispatch overhead (EmbeddingBag
     *  launch inside a local, monolithic server), us. */
    double sparseDispatchUs = 1500.0;
    /**
     * Fixed software-path overhead of serving one gather request as a
     * standalone microservice (gRPC server decode/encode, Linkerd
     * proxy hop, response assembly), us. This is what makes the
     * Figure 9 QPS curve flat below ~1000 gathers.
     */
    double sparseRpcOverheadUs = 5000.0;
};

/** Discrete GPU attached to a node. */
struct GpuSpec
{
    std::string name;
    /** Peak usable fp32 throughput (FLOPs/sec). */
    double peakFlops = 8.1e12;
    /** HBM/GDDR bandwidth (bytes/sec). */
    double hbmBandwidth = 320e9;
    /** Device memory capacity. */
    Bytes hbmCapacity = 16 * units::kGiB;
    /** Host-to-device transfer bandwidth (bytes/sec, PCIe 3.0 x16). */
    double pcieBandwidth = 12e9;
    /** Per-query kernel-launch + framework overhead (one inference
     *  runs tens of kernels plus a host sync), us. */
    double kernelOverheadUs = 4500.0;
    /**
     * Per-table overhead of a fused GPU embedding-cache lookup
     * (hash-table probe kernel + launch), us. Calibrated so a 90%-hit
     * cache cuts embedding-layer latency by roughly the 47% reported
     * in Section VI-E.
     */
    double cacheLookupOverheadUs = 1200.0;
};

/** A cluster node. */
struct NodeSpec
{
    std::string name;
    CpuSpec cpu;
    bool hasGpu = false;
    GpuSpec gpu;
    /** NIC bandwidth (bytes/sec). */
    double netBandwidth = 10e9 / 8.0;
    /** One-way base network latency between nodes. */
    SimTime netBaseLatency = 100; // 100 us

    /** Dollar-cost weight of one node (relative units, for Fig 15/18). */
    double costUnits = 1.0;
};

/** Paper CPU-only node: dual-socket Xeon Gold 6242, 10 Gbps network. */
NodeSpec cpuOnlyNode();

/** Paper CPU-GPU node: GKE n1-standard-32 + Tesla T4, 32 Gbps network. */
NodeSpec cpuGpuNode();

/**
 * Thread-safe registry of named node specs.
 *
 * Experiments and CLI tools reference platforms by name ("cpu",
 * "cpu-gpu", or a user-registered custom spec); autoscaling loops may
 * read specs from worker threads while a control thread registers new
 * ones, so all access is serialized by an internal mutex (checked by
 * clang -Wthread-safety via the ERC_* annotations).
 */
class NodeRegistry
{
  public:
    /** The process-wide registry, pre-seeded with the two paper
     *  platforms as "cpu" and "cpu-gpu". */
    static NodeRegistry &instance();

    /** Register (or replace) a spec under `name`. */
    void registerNode(const std::string &name, const NodeSpec &spec)
        ERC_EXCLUDES(mutex_);

    /** True when a spec is registered under `name`. */
    bool hasNode(const std::string &name) const ERC_EXCLUDES(mutex_);

    /** Look up a spec by name; erec::fatal on unknown names. */
    NodeSpec nodeByName(const std::string &name) const
        ERC_EXCLUDES(mutex_);

    /** Registered names in sorted order. */
    std::vector<std::string> nodeNames() const ERC_EXCLUDES(mutex_);

    NodeRegistry(const NodeRegistry &) = delete;
    NodeRegistry &operator=(const NodeRegistry &) = delete;

  private:
    NodeRegistry();

    mutable std::mutex mutex_;
    std::map<std::string, NodeSpec> nodes_ ERC_GUARDED_BY(mutex_);
};

/** Shorthand for NodeRegistry::instance().nodeByName(name). */
NodeSpec nodeByName(const std::string &name);

} // namespace erec::hw
